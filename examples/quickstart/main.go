// Quickstart: the smallest complete DIET deployment — a naming service, a
// Master Agent, one Local Agent and one SeD offering a "scale" service — and
// a client call through the full GridRPC path, all inside one process.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// Describe the service: one IN vector, one IN scalar factor, one OUT
	// vector (the profile layout a C DIET server would declare with
	// diet_profile_desc_alloc("scale", 1, 1, 2)).
	desc, err := core.NewProfileDesc("scale", 1, 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	desc.Set(0, core.Vector, core.Double)
	desc.Set(1, core.Scalar, core.Double)
	desc.Set(2, core.Vector, core.Double)

	solve := func(p *core.Profile) error {
		v, err := p.VectorDouble(0)
		if err != nil {
			return err
		}
		f, err := p.ScalarDouble(1)
		if err != nil {
			return err
		}
		out := make([]float64, len(v))
		for i := range v {
			out[i] = f * v[i]
		}
		return p.SetVectorDouble(2, out, core.Volatile)
	}

	// Deploy the platform: MA ← LA ← SeD, all in-process.
	deployment, err := core.Deploy(core.DeploymentSpec{
		MAName: "MA1",
		LAs:    []string{"LA1"},
		SeDs: []core.SeDSpec{{
			Name: "SeD1", Parent: "LA1", Capacity: 1, PowerGFlops: 4,
			Services: []core.ServiceSpec{{Desc: desc, Solve: solve}},
		}},
		Local: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer deployment.Close()

	// The client side: diet_initialize / diet_call / diet_finalize.
	client, err := deployment.Client()
	if err != nil {
		log.Fatal(err)
	}
	defer core.GrpcFinalize(client)

	profile, err := core.NewProfile("scale", 1, 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	profile.SetVectorDouble(0, []float64{1, 2, 3, 4}, core.Volatile)
	profile.SetScalarDouble(1, 2.5, core.Volatile)
	profile.SetVectorDouble(2, nil, core.Volatile) // OUT placeholder

	info, err := client.Call(profile)
	if err != nil {
		log.Fatal(err)
	}
	result, err := profile.VectorDouble(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solved on %s: scale(1..4, 2.5) = %v\n", info.Server, result)
	fmt.Printf("finding time %v, total %v\n", info.Finding, info.Total)
}
