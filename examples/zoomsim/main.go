// Zoomsim runs the paper's two-phase campaign end to end at laptop scale,
// through the real middleware: a low-resolution ramsesZoom1 survey finds the
// dark-matter halos, then every halo is re-simulated at higher resolution
// with ramsesZoom2 on a small grid of SeDs, and the GALICS results come back
// as tarballs — §4–§6 of the paper in one process.
//
//	go run ./examples/zoomsim
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/halo"
	"repro/internal/ramses"
	"repro/internal/services"
)

func main() {
	base, err := os.MkdirTemp("", "zoomsim-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)

	// Three SeDs on two "clusters" with different processing powers, a
	// miniature of the paper's heterogeneous 11-SeD deployment.
	var seds []core.SeDSpec
	for _, s := range []struct {
		name    string
		cluster string
		power   float64
	}{
		{"Nancy1", "nancy", 63.8},
		{"Toulouse1", "toulouse", 44.8},
		{"Lyon1", "lyon", 53.8},
	} {
		seds = append(seds, core.SeDSpec{
			Name: s.name, Parent: "LA-" + s.cluster, Cluster: s.cluster,
			Capacity: 1, PowerGFlops: s.power,
			Services: []core.ServiceSpec{
				{Desc: services.Zoom1Desc(), Solve: services.SolveZoom1(base)},
				{Desc: services.Zoom2Desc(), Solve: services.SolveZoom2(base)},
			},
		})
	}
	deployment, err := core.Deploy(core.DeploymentSpec{
		MAName: "MA1",
		LAs:    []string{"LA-nancy", "LA-toulouse", "LA-lyon"},
		SeDs:   seds,
		Local:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer deployment.Close()

	client, err := deployment.Client()
	if err != nil {
		log.Fatal(err)
	}

	cfg := ramses.DefaultConfig()
	cfg.NPart = 16
	cfg.Astart = 0.1
	cfg.Aout = []float64{0.5, 1.0}
	cfg.StepsPerOutput = 6
	cfg.FoF = halo.Params{LinkingLength: 0.25, MinParticles: 8}

	// Phase 1: the survey.
	start := time.Now()
	p1, err := services.NewZoom1Profile(cfg)
	if err != nil {
		log.Fatal(err)
	}
	info1, err := client.Call(p1)
	if err != nil {
		log.Fatal(err)
	}
	catalog, err := services.Zoom1Result(p1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1 on %s (%v): %d halos\n",
		info1.Server, info1.Total.Round(time.Millisecond), len(catalog.Halos))

	// Phase 2: re-simulate every halo, all requests at once.
	nzoom := len(catalog.Halos)
	if nzoom > 6 {
		nzoom = 6
	}
	var calls []*core.AsyncCall
	var profiles []*core.Profile
	for i := 0; i < nzoom; i++ {
		h := catalog.Halos[i]
		p, err := services.NewZoom2Profile(cfg,
			int(h.Pos[0]*float64(cfg.NPart)),
			int(h.Pos[1]*float64(cfg.NPart)),
			int(h.Pos[2]*float64(cfg.NPart)), 2)
		if err != nil {
			log.Fatal(err)
		}
		profiles = append(profiles, p)
		calls = append(calls, client.CallAsync(p))
	}
	if err := core.WaitAll(calls); err != nil {
		log.Fatal(err)
	}

	perServer := map[string]int{}
	for i, c := range calls {
		info, _ := c.Wait()
		perServer[info.Server]++
		name, tarball, err := services.Zoom2Result(profiles[i])
		if err != nil {
			log.Fatalf("zoom %d: %v", i, err)
		}
		fmt.Printf("zoom %d: halo %d re-simulated on %-10s → %s (%d bytes, latency %v)\n",
			i, catalog.Halos[i].ID, info.Server, name, len(tarball),
			info.Latency.Round(time.Millisecond))
	}

	fmt.Printf("\ncampaign of 1+%d simulations finished in %v\n", nzoom,
		time.Since(start).Round(time.Millisecond))
	var names []string
	for s := range perServer {
		names = append(names, s)
	}
	sort.Strings(names)
	for _, s := range names {
		fmt.Printf("  %-10s served %d zoom requests\n", s, perServer[s])
	}
}
