// Zoomsim runs the paper's two-phase campaign end to end at laptop scale,
// through the real middleware — as a workflow: the Figure 4 idea with live
// services. A low-resolution ramsesZoom1 survey finds the dark-matter halos,
// then every halo is re-simulated at higher resolution with ramsesZoom2, and
// a local report stage aggregates the GALICS tarballs. The whole DAG goes
// through workflow.DietRunner, so each stage is a diet.Client.Call priced
// from the SeDs' CoRI forecasts and launched critical-path-first; the
// campaign runs twice to show the second pass pricing stages from measured
// models instead of advertised powers. Workflow spans land on a logsvc bus
// and diet_workflow_* metrics in a registry, like a dietmon-attached run.
//
//	go run ./examples/zoomsim
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/diet"
	"repro/internal/halo"
	"repro/internal/logsvc"
	"repro/internal/metrics"
	"repro/internal/ramses"
	"repro/internal/services"
	"repro/internal/workflow"
)

// nZoom is the campaign's fixed number of zoom re-simulations; the survey
// usually finds more halos, and the zoom stages pick round-robin among them.
const nZoom = 4

// buildCampaign returns the campaign DAG and its per-node DIET bindings:
// heterogeneous services per stage, plus a local (non-DIET) report node.
func buildCampaign(cfg ramses.Config) (*workflow.DAG, map[string]workflow.TaskSpec, error) {
	dag := workflow.New("zoomCampaign")
	specs := make(map[string]workflow.TaskSpec)

	if err := dag.Add("survey", "ramsesZoom1", nil, nil); err != nil {
		return nil, nil, err
	}
	specs["survey"] = workflow.TaskSpec{
		Profile: func(*workflow.TaskContext) (*diet.Profile, error) {
			return services.NewZoom1Profile(cfg)
		},
		Consume: func(ctx *workflow.TaskContext, p *diet.Profile, _ *diet.CallInfo) error {
			catalog, err := services.Zoom1Result(p)
			if err != nil {
				return err
			}
			if len(catalog.Halos) == 0 {
				return fmt.Errorf("survey found no halos to zoom into")
			}
			ctx.SetOutput(catalog)
			return nil
		},
	}

	var zoomIDs []string
	for i := 0; i < nZoom; i++ {
		i := i
		id := fmt.Sprintf("zoom_%d", i)
		zoomIDs = append(zoomIDs, id)
		if err := dag.Add(id, "ramsesZoom2", []string{"survey"}, nil); err != nil {
			return nil, nil, err
		}
		specs[id] = workflow.TaskSpec{
			Profile: func(ctx *workflow.TaskContext) (*diet.Profile, error) {
				v, _ := ctx.DepOutput("survey")
				catalog := v.(*halo.Catalog)
				h := catalog.Halos[i%len(catalog.Halos)]
				return services.NewZoom2Profile(cfg,
					int(h.Pos[0]*float64(cfg.NPart)),
					int(h.Pos[1]*float64(cfg.NPart)),
					int(h.Pos[2]*float64(cfg.NPart)), 2)
			},
			Consume: func(ctx *workflow.TaskContext, p *diet.Profile, info *diet.CallInfo) error {
				name, tarball, err := services.Zoom2Result(p)
				if err != nil {
					return err
				}
				ctx.SetOutput(fmt.Sprintf("%s (%d bytes) on %s", name, len(tarball), info.Server))
				return nil
			},
		}
	}

	// The report stage is local: no DIET call, just aggregation — the runner
	// mixes bound actions and remote specs in one DAG.
	if err := dag.Add("report", "localReport", zoomIDs, func(ctx *workflow.TaskContext) error {
		var lines []string
		for _, id := range zoomIDs {
			if v, ok := ctx.DepOutput(id); ok {
				lines = append(lines, fmt.Sprintf("  %s: %v", id, v))
			}
		}
		sort.Strings(lines)
		ctx.SetOutput(lines)
		for _, l := range lines {
			fmt.Println(l)
		}
		return nil
	}); err != nil {
		return nil, nil, err
	}
	return dag, specs, nil
}

func main() {
	base, err := os.MkdirTemp("", "zoomsim-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)

	bus := logsvc.New(8192)
	reg := metrics.NewRegistry()

	// Three SeDs on two "clusters" with different processing powers, a
	// miniature of the paper's heterogeneous 11-SeD deployment.
	var seds []core.SeDSpec
	for _, s := range []struct {
		name    string
		cluster string
		power   float64
	}{
		{"Nancy1", "nancy", 63.8},
		{"Toulouse1", "toulouse", 44.8},
		{"Lyon1", "lyon", 53.8},
	} {
		seds = append(seds, core.SeDSpec{
			Name: s.name, Parent: "LA-" + s.cluster, Cluster: s.cluster,
			Capacity: 1, PowerGFlops: s.power,
			Services: []core.ServiceSpec{
				{Desc: services.Zoom1Desc(), Solve: services.SolveZoom1(base)},
				{Desc: services.Zoom2Desc(), Solve: services.SolveZoom2(base)},
			},
		})
	}
	deployment, err := core.Deploy(core.DeploymentSpec{
		MAName:  "MA1",
		LAs:     []string{"LA-nancy", "LA-toulouse", "LA-lyon"},
		SeDs:    seds,
		Local:   true,
		Events:  bus,
		Metrics: reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer deployment.Close()

	client, err := deployment.Client()
	if err != nil {
		log.Fatal(err)
	}

	cfg := ramses.DefaultConfig()
	cfg.NPart = 16
	cfg.Astart = 0.1
	cfg.Aout = []float64{0.5, 1.0}
	cfg.StepsPerOutput = 6
	cfg.FoF = halo.Params{LinkingLength: 0.25, MinParticles: 8}

	runner := &workflow.DietRunner{
		Client:      client,
		MaxParallel: 3,
		// Stage work hints for pricing and the WithWork scheduler hint: the
		// zooms are the heavy stages, as in the paper's campaign.
		ServiceWork: map[string]float64{"ramsesZoom1": 400, "ramsesZoom2": 2500},
		Events:      bus,
		Metrics:     reg,
		Retries:     1,
	}

	for campaign := 1; campaign <= 2; campaign++ {
		dag, specs, err := buildCampaign(cfg)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		rep, err := runner.Run(dag, specs)
		if err != nil {
			log.Fatal(err)
		}
		if rep.Err != nil {
			log.Fatalf("campaign %d: %v", campaign, rep.Err)
		}
		fmt.Printf("campaign %d (%s): 1 survey + %d zooms in %v\n",
			campaign, rep.RunID, nZoom, time.Since(start).Round(time.Millisecond))
		perServer := map[string]int{}
		for id, info := range rep.Calls {
			if id != "survey" {
				perServer[info.Server]++
			}
		}
		var names []string
		for s := range perServer {
			names = append(names, s)
		}
		sort.Strings(names)
		for _, s := range names {
			fmt.Printf("  %-10s served %d zoom requests\n", s, perServer[s])
		}
		fmt.Printf("  forecast-priced services: %d of %d (critical-path weights: survey %.2fs, report %.2fs)\n\n",
			rep.ForecastPricedCount(), len(rep.ForecastPriced),
			rep.Priorities["survey"], rep.Priorities["report"])
	}

	counts := bus.CountsByKind()
	fmt.Printf("logsvc bus: %d workflow spans among %d solve spans — same bus dietmon tails\n",
		counts[logsvc.KindWorkflow], counts[logsvc.KindSolve])
}
