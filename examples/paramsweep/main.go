// Paramsweep explores "new research axes in cosmological simulations (on
// various low resolutions initial conditions)" — the use case the paper's
// conclusion names. It sweeps the σ₈ normalisation and the random seed over
// a pool of SeDs whose *advertised* powers differ with the contention-aware
// plug-in scheduler. The sweep submits as one burst, so placement is
// scheduled cold and the policy degrades to its power-aware fallback;
// meanwhile every SeD's CoRI monitor records the solves. The run ends by
// closing the forecast loop the way a follow-up sweep would: it prints the
// measured models, the measured-power replan (deploy.Replan — in-process
// the pool delivers *homogeneous* throughput, so the advertised ranking is
// flattened), and the forecast-sized batch walltime each SeD would reserve
// instead of a fixed grant. It reports how structure formation responds
// (halo counts at z=0) together with the load balance achieved.
//
//	go run ./examples/paramsweep
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/cori"
	"repro/internal/deploy"
	"repro/internal/halo"
	"repro/internal/platform"
	"repro/internal/ramses"
	"repro/internal/services"
)

// sweepWorkGFlops is the nominal work estimate of one sweep point (16³
// particles, 6 steps); the absolute scale only anchors the measured
// throughput units, consistency across points is what the models need.
const sweepWorkGFlops = 2.0

func main() {
	base, err := os.MkdirTemp("", "paramsweep-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)

	var seds []core.SeDSpec
	powers := []float64{40, 50, 60, 70}
	for i, p := range powers {
		seds = append(seds, core.SeDSpec{
			Name: fmt.Sprintf("SeD%d", i+1), Parent: "LA1",
			Capacity: 1, PowerGFlops: p,
			Services: []core.ServiceSpec{
				{Desc: services.Zoom1Desc(), Solve: services.SolveZoom1(base)},
			},
		})
	}
	deployment, err := core.Deploy(core.DeploymentSpec{
		MAName: "MA1",
		LAs:    []string{"LA1"},
		SeDs:   seds,
		Policy: core.NewContentionAware(), // history-aware; power-aware fallback while cold
		Local:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer deployment.Close()

	client, err := deployment.Client()
	if err != nil {
		log.Fatal(err)
	}

	type point struct {
		sigma8 float64
		seed   int64
	}
	var sweep []point
	for _, s8 := range []float64{0.6, 0.74, 0.9} {
		for seed := int64(1); seed <= 3; seed++ {
			sweep = append(sweep, point{s8, seed})
		}
	}

	start := time.Now()
	type outcome struct {
		point
		server string
		halos  int
		mass   float64
	}
	results := make([]outcome, len(sweep))
	calls := make([]*core.AsyncCall, len(sweep))
	profiles := make([]*core.Profile, len(sweep))
	for i, pt := range sweep {
		cfg := ramses.DefaultConfig()
		cfg.NPart = 16
		cfg.Astart = 0.1
		cfg.Aout = []float64{1.0}
		cfg.StepsPerOutput = 6
		cfg.Seed = pt.seed
		cfg.FoF = halo.Params{LinkingLength: 0.25, MinParticles: 8}
		c := *cfg.Cosmo
		c.Sigma8 = pt.sigma8
		cfg.Cosmo = &c
		p, err := services.NewZoom1Profile(cfg)
		if err != nil {
			log.Fatal(err)
		}
		profiles[i] = p
		// The work hint rides the profile to the SeD, so the CoRI monitors
		// can pair durations with a work size and measure delivered power.
		calls[i] = client.CallAsync(p, core.WithWork(sweepWorkGFlops))
	}
	if err := core.WaitAll(calls); err != nil {
		log.Fatal(err)
	}
	for i := range sweep {
		info, _ := calls[i].Wait()
		cat, err := services.Zoom1Result(profiles[i])
		if err != nil {
			log.Fatalf("sweep point %d: %v", i, err)
		}
		var topMass float64
		if len(cat.Halos) > 0 {
			topMass = cat.Halos[0].Mass
		}
		results[i] = outcome{point: sweep[i], server: info.Server, halos: len(cat.Halos), mass: topMass}
	}

	fmt.Printf("parameter sweep: %d simulations in %v over %d SeDs (contention-aware scheduling)\n\n",
		len(sweep), time.Since(start).Round(time.Millisecond), len(powers))
	fmt.Println("sigma8  seed  server  halos  top-halo mass (M☉/h)")
	for _, r := range results {
		fmt.Printf("%6.2f  %4d  %-6s  %5d  %.3e\n", r.sigma8, r.seed, r.server, r.halos, r.mass)
	}

	// Higher σ₈ ⇒ more collapsed structure; verify the trend seed by seed.
	fmt.Println("\nhalo counts by sigma8 (averaged over seeds):")
	bySigma := map[float64][]int{}
	for _, r := range results {
		bySigma[r.sigma8] = append(bySigma[r.sigma8], r.halos)
	}
	var sigmas []float64
	for s := range bySigma {
		sigmas = append(sigmas, s)
	}
	sort.Float64s(sigmas)
	for _, s := range sigmas {
		sum := 0
		for _, h := range bySigma[s] {
			sum += h
		}
		fmt.Printf("  sigma8=%.2f  mean halos %.1f\n", s, float64(sum)/float64(len(bySigma[s])))
	}

	// The CoRI models trained by this burst — what a follow-up sweep would
	// actually be scheduled on, in place of the advertised powers above.
	fmt.Println("\nCoRI models learned during the sweep (EST_* metrics):")
	monitors := make(map[string]*cori.Monitor, len(deployment.SeDs))
	for _, sed := range deployment.SeDs {
		monitors[sed.Name()] = sed.Monitor()
		for _, svc := range sed.Monitor().Services() {
			met := sed.Monitor().Metrics(svc)
			fmt.Printf("  %-6s %s: %2.0f solves, EWMA %.2fs, delivered %.1f GFlops, confidence %.2f\n",
				sed.Name(), svc, met["EST_NBSAMPLES"], met["EST_TCOMP"], met["EST_DELIVERED"], met["EST_CONFIDENCE"])
		}
	}

	// Close the loop at the planning layer: re-plan the pool from measured
	// powers. In-process every SeD runs on the same machine, so the
	// heterogeneous advertisement is a lie the replan corrects.
	svcName := services.Zoom1Desc().Service
	pool := platform.Deployment{MASite: "local"}
	for i, p := range powers {
		pool.SeDs = append(pool.SeDs, platform.SeDPlacement{
			Name: fmt.Sprintf("SeD%d", i+1), Site: "local", Cluster: "pool",
			Machines: 1, CPU: platform.CPU{Model: "pool", GFlops: p / 0.7},
		})
	}
	_, changes, err := deploy.Replan(pool, deploy.Options{
		Capabilities: deploy.MonitorSource(monitors, svcName),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmeasured-power replan a follow-up sweep would deploy on:")
	if len(changes) == 0 {
		fmt.Println("  no placements change")
	}
	for _, c := range changes {
		fmt.Printf("  %s\n", c)
	}

	// And at the reservation layer: the walltime a follow-up solve would
	// reserve on each SeD — forecast-sized instead of a fixed grant.
	pol := batch.WalltimePolicy{Fixed: time.Hour}
	fmt.Printf("\nforecast-sized reservations for the next solve (fixed grant %v):\n", pol.Fixed)
	for _, sed := range deployment.SeDs {
		wall, sized := pol.Size(sed.Monitor(), svcName, sweepWorkGFlops)
		how := "forecast-sized"
		if !sized {
			how = "fixed fallback"
		}
		fmt.Printf("  %-6s walltime %8v (%s)\n", sed.Name(), wall.Round(time.Millisecond), how)
	}
}
