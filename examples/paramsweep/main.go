// Paramsweep explores "new research axes in cosmological simulations (on
// various low resolutions initial conditions)" — the use case the paper's
// conclusion names. It sweeps the σ₈ normalisation and the random seed over
// a pool of SeDs whose *advertised* powers differ with the contention-aware
// plug-in scheduler. The sweep submits as one burst, so placement is
// scheduled cold and the policy degrades to its power-aware fallback;
// meanwhile every SeD's CoRI monitor records the solves. The run ends by
// closing the forecast loop the way a follow-up sweep would: it prints the
// measured models, the measured-power replan (deploy.Replan — in-process
// the pool delivers *homogeneous* throughput, so the advertised ranking is
// flattened), and the forecast-sized batch walltime each SeD would reserve
// instead of a fixed grant. It reports how structure formation responds
// (halo counts at z=0) together with the load balance achieved.
//
// The sweep is data-wired (A13): each point's namelist is published once as
// a persistent dataset on a staging node, and the calls carry only DataIDs —
// the solving SeD fetches the bytes through the platform catalog, keeping a
// local replica. A second, bit-reproducibility pass re-runs every point; by
// then the inputs are resident on the platform, so the estimates price them,
// re-fetches are served from replicas, and the run reports the bytes each
// pass actually moved plus the bandwidth models those transfers trained.
//
//	go run ./examples/paramsweep
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/cori"
	"repro/internal/dataman"
	"repro/internal/deploy"
	"repro/internal/halo"
	"repro/internal/platform"
	"repro/internal/ramses"
	"repro/internal/rpc"
	"repro/internal/services"
)

// sweepWorkGFlops is the nominal work estimate of one sweep point (16³
// particles, 6 steps); the absolute scale only anchors the measured
// throughput units, consistency across points is what the models need.
const sweepWorkGFlops = 2.0

func main() {
	base, err := os.MkdirTemp("", "paramsweep-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)

	var seds []core.SeDSpec
	powers := []float64{40, 50, 60, 70}
	for i, p := range powers {
		seds = append(seds, core.SeDSpec{
			Name: fmt.Sprintf("SeD%d", i+1), Parent: "LA1",
			Capacity: 1, PowerGFlops: p,
			Services: []core.ServiceSpec{
				{Desc: services.Zoom1Desc(), Solve: services.SolveZoom1(base)},
			},
		})
	}
	// The platform data manager: a catalog every SeD joins, plus a staging
	// node standing in for the NFS server the namelists are published from.
	catalog := core.NewDataCatalog()
	staging := core.NewDataStore("staging")
	ss := rpc.NewServer()
	ss.Register(dataman.ObjectName, staging.Handler())
	stagingAddr, err := rpc.ServeLocal("paramsweep-staging", ss)
	if err != nil {
		log.Fatal(err)
	}
	defer ss.Close()
	catalog.AddNode("staging", stagingAddr)

	// Count what actually moves, pass by pass.
	var transferMu sync.Mutex
	var movedKB float64
	var transfers int
	catalog.AddTransferObserver(func(from, to string, sizeMB float64, d time.Duration) {
		transferMu.Lock()
		movedKB += sizeMB * 1024
		transfers++
		transferMu.Unlock()
	})
	snapshotTransfers := func() (float64, int) {
		transferMu.Lock()
		defer transferMu.Unlock()
		return movedKB, transfers
	}

	deployment, err := core.Deploy(core.DeploymentSpec{
		MAName: "MA1",
		LAs:    []string{"LA1"},
		SeDs:   seds,
		Policy: core.NewContentionAware(), // history-aware; power-aware fallback while cold
		Local:  true,
		Data:   catalog,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer deployment.Close()

	client, err := deployment.Client()
	if err != nil {
		log.Fatal(err)
	}

	type point struct {
		sigma8 float64
		seed   int64
	}
	var sweep []point
	for _, s8 := range []float64{0.6, 0.74, 0.9} {
		for seed := int64(1); seed <= 3; seed++ {
			sweep = append(sweep, point{s8, seed})
		}
	}

	// Publish every point's namelist once, as persistent data on the staging
	// node. The calls below reference it by DataID only — the bytes travel
	// through the data manager, not inline with the request.
	dataIDs := make([]string, len(sweep))
	for i, pt := range sweep {
		cfg := ramses.DefaultConfig()
		cfg.NPart = 16
		cfg.Astart = 0.1
		cfg.Aout = []float64{1.0}
		cfg.StepsPerOutput = 6
		cfg.Seed = pt.seed
		cfg.FoF = halo.Params{LinkingLength: 0.25, MinParticles: 8}
		c := *cfg.Cosmo
		c.Sigma8 = pt.sigma8
		cfg.Cosmo = &c
		dataIDs[i] = fmt.Sprintf("nml/s8=%.2f/seed=%d", pt.sigma8, pt.seed)
		nml := ramses.NamelistFromConfig(cfg)
		if err := catalog.Put(dataIDs[i], "staging", dataman.Persistent, []byte(nml)); err != nil {
			log.Fatal(err)
		}
	}

	// newRefProfile builds a ramsesZoom1 call whose namelist is a platform
	// data reference instead of an inline payload.
	newRefProfile := func(id string) *core.Profile {
		p, err := core.NewProfile(services.Zoom1Name, 0, 0, 2)
		if err != nil {
			log.Fatal(err)
		}
		if err := p.SetFileRef(0, "namelist.nml", id, core.Persistent); err != nil {
			log.Fatal(err)
		}
		p.SetFileBytes(1, "", nil, core.Volatile)
		p.SetScalarInt(2, 0, core.Volatile)
		return p
	}

	type outcome struct {
		point
		server string
		halos  int
		mass   float64
	}
	runPass := func() []outcome {
		results := make([]outcome, len(sweep))
		calls := make([]*core.AsyncCall, len(sweep))
		profiles := make([]*core.Profile, len(sweep))
		for i := range sweep {
			profiles[i] = newRefProfile(dataIDs[i])
			// The work hint rides the profile to the SeD, so the CoRI monitors
			// can pair durations with a work size and measure delivered power.
			calls[i] = client.CallAsync(profiles[i], core.WithWork(sweepWorkGFlops))
		}
		if err := core.WaitAll(calls); err != nil {
			log.Fatal(err)
		}
		for i := range sweep {
			info, _ := calls[i].Wait()
			cat, err := services.Zoom1Result(profiles[i])
			if err != nil {
				log.Fatalf("sweep point %d: %v", i, err)
			}
			var topMass float64
			if len(cat.Halos) > 0 {
				topMass = cat.Halos[0].Mass
			}
			results[i] = outcome{point: sweep[i], server: info.Server, halos: len(cat.Halos), mass: topMass}
		}
		return results
	}

	start := time.Now()
	results := runPass()
	pass1KB, pass1Transfers := snapshotTransfers()

	fmt.Printf("parameter sweep: %d simulations in %v over %d SeDs (contention-aware scheduling)\n\n",
		len(sweep), time.Since(start).Round(time.Millisecond), len(powers))
	fmt.Println("sigma8  seed  server  halos  top-halo mass (M☉/h)")
	for _, r := range results {
		fmt.Printf("%6.2f  %4d  %-6s  %5d  %.3e\n", r.sigma8, r.seed, r.server, r.halos, r.mass)
	}

	// Higher σ₈ ⇒ more collapsed structure; verify the trend seed by seed.
	fmt.Println("\nhalo counts by sigma8 (averaged over seeds):")
	bySigma := map[float64][]int{}
	for _, r := range results {
		bySigma[r.sigma8] = append(bySigma[r.sigma8], r.halos)
	}
	var sigmas []float64
	for s := range bySigma {
		sigmas = append(sigmas, s)
	}
	sort.Float64s(sigmas)
	for _, s := range sigmas {
		sum := 0
		for _, h := range bySigma[s] {
			sum += h
		}
		fmt.Printf("  sigma8=%.2f  mean halos %.1f\n", s, float64(sum)/float64(len(bySigma[s])))
	}

	// Reproducibility pass: re-run every point. The namelists are already
	// resident on the platform, so the data-aware estimates price them and
	// replica-local solves re-fetch nothing; identical halo catalogs confirm
	// the pipeline is deterministic end to end.
	repro := runPass()
	pass2KB, pass2Transfers := snapshotTransfers()
	mismatches := 0
	for i := range results {
		if repro[i].halos != results[i].halos || repro[i].mass != results[i].mass {
			mismatches++
		}
	}
	fmt.Printf("\nreproducibility pass: %d/%d points bit-identical", len(results)-mismatches, len(results))
	if mismatches > 0 {
		fmt.Printf("  (%d MISMATCHED)", mismatches)
	}
	fmt.Println()

	// KB-scale namelists make the transfer term negligible, so placement
	// stays compute-driven and points that land on a new SeD re-fetch from
	// the nearest replica; the GB-scale case where locality wins placement
	// is the A13 simulation (experiment -data-ablation).
	fmt.Println("\ndata plane (persistent namelists, fetched by DataID through the catalog):")
	fmt.Printf("  pass 1: %d transfers, %.1f KB moved — every namelist pulled from staging once\n", pass1Transfers, pass1KB)
	fmt.Printf("  pass 2: %d transfers, %.1f KB moved — points landing on a fresh SeD pulled a replica\n",
		pass2Transfers-pass1Transfers, pass2KB-pass1KB)
	replicated := 0
	for _, id := range dataIDs {
		if catalog.ReplicaCount(id) > 1 {
			replicated++
		}
	}
	fmt.Printf("  %d/%d datasets now replicated beyond staging\n", replicated, len(dataIDs))
	if tm := deployment.Transfers; tm != nil {
		for _, pair := range tm.Pairs() {
			nodes := strings.SplitN(pair, "|", 2)
			if m, ok := tm.Model(nodes[0], nodes[1]); ok {
				fmt.Printf("  link %-18s %2d transfers, EWMA %.1f MB/s\n", pair, m.Window, m.EWMAMBps)
			}
		}
	}

	// The CoRI models trained by this burst — what a follow-up sweep would
	// actually be scheduled on, in place of the advertised powers above.
	fmt.Println("\nCoRI models learned during the sweep (EST_* metrics):")
	monitors := make(map[string]*cori.Monitor, len(deployment.SeDs))
	for _, sed := range deployment.SeDs {
		monitors[sed.Name()] = sed.Monitor()
		for _, svc := range sed.Monitor().Services() {
			met := sed.Monitor().Metrics(svc)
			fmt.Printf("  %-6s %s: %2.0f solves, EWMA %.2fs, delivered %.1f GFlops, confidence %.2f\n",
				sed.Name(), svc, met["EST_NBSAMPLES"], met["EST_TCOMP"], met["EST_DELIVERED"], met["EST_CONFIDENCE"])
		}
	}

	// Close the loop at the planning layer: re-plan the pool from measured
	// powers. In-process every SeD runs on the same machine, so the
	// heterogeneous advertisement is a lie the replan corrects.
	svcName := services.Zoom1Desc().Service
	pool := platform.Deployment{MASite: "local"}
	for i, p := range powers {
		pool.SeDs = append(pool.SeDs, platform.SeDPlacement{
			Name: fmt.Sprintf("SeD%d", i+1), Site: "local", Cluster: "pool",
			Machines: 1, CPU: platform.CPU{Model: "pool", GFlops: p / 0.7},
		})
	}
	_, changes, err := deploy.Replan(pool, deploy.Options{
		Capabilities: deploy.MonitorSource(monitors, svcName),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmeasured-power replan a follow-up sweep would deploy on:")
	if len(changes) == 0 {
		fmt.Println("  no placements change")
	}
	for _, c := range changes {
		fmt.Printf("  %s\n", c)
	}

	// And at the reservation layer: the walltime a follow-up solve would
	// reserve on each SeD — forecast-sized instead of a fixed grant.
	pol := batch.WalltimePolicy{Fixed: time.Hour}
	fmt.Printf("\nforecast-sized reservations for the next solve (fixed grant %v):\n", pol.Fixed)
	for _, sed := range deployment.SeDs {
		wall, sized := pol.Size(sed.Monitor(), svcName, sweepWorkGFlops)
		how := "forecast-sized"
		if !sized {
			how = "fixed fallback"
		}
		fmt.Printf("  %-6s walltime %8v (%s)\n", sed.Name(), wall.Round(time.Millisecond), how)
	}
}
