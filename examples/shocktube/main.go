// Shocktube exercises the finite-volume Euler solver RAMSES couples to its
// N-body core (paper §4): the Sod shock tube, solved on a thin 3-D box and
// compared against the exact Riemann solution, followed by a gravity-kick
// demonstration of the coupling hook. This is the gas half of the "N body
// solver coupled to a finite volume Euler solver" sentence.
//
//	go run ./examples/shocktube
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/hydro"
)

func main() {
	g, err := hydro.NewBox(256, 4, 4, 1.4)
	if err != nil {
		log.Fatal(err)
	}
	hydro.SodX(g)
	s := hydro.NewSolver(g)

	m0, _, _, _, e0 := g.Totals()
	steps, err := s.Run(0.1)
	if err != nil {
		log.Fatal(err)
	}
	m1, _, _, _, e1 := g.Totals()

	fmt.Printf("Sod shock tube, 256 cells, t=0.1, %d CFL steps\n\n", steps)

	// Density profile as a text plot.
	fmt.Println("density profile (x: 0 → 1, y: 0.1 → 1.1):")
	const rows, cols = 16, 96
	profile := make([]float64, cols)
	for c := 0; c < cols; c++ {
		ix := c * g.NX / cols
		profile[c] = g.Rho[g.Idx(ix, g.NY/2, g.NZ/2)]
	}
	var plot strings.Builder
	for r := rows - 1; r >= 0; r-- {
		lo := 0.1 + (1.1-0.1)*float64(r)/rows
		hi := 0.1 + (1.1-0.1)*float64(r+1)/rows
		for c := 0; c < cols; c++ {
			if profile[c] >= lo && profile[c] < hi {
				plot.WriteByte('*')
			} else if profile[c] >= hi {
				plot.WriteByte('|')
			} else {
				plot.WriteByte(' ')
			}
		}
		plot.WriteByte('\n')
	}
	fmt.Print(plot.String())

	// Key values against the exact Riemann solution (Toro ch. 4).
	at := func(x float64) int { return g.Idx(int(x*float64(g.NX)), g.NY/2, g.NZ/2) }
	fmt.Printf("\n                         measured   exact\n")
	fmt.Printf("contact plateau rho      %7.4f   0.4263\n", g.Rho[at(0.55)])
	fmt.Printf("post-shock rho           %7.4f   0.2656\n", g.Rho[at(0.64)])
	fmt.Printf("plateau pressure         %7.4f   0.3031\n", g.Pressure(at(0.60)))
	fmt.Printf("plateau velocity         %7.4f   0.9274\n", g.Mx[at(0.60)]/g.Rho[at(0.60)])
	fmt.Printf("mass conservation        %.2e relative drift\n", (m1-m0)/m0)
	fmt.Printf("energy conservation      %.2e relative drift\n", (e1-e0)/e0)

	// The gravity hook: a uniform kick accelerates the gas bulk without
	// touching the density field — the interface the coupled RAMSES solver
	// drives with the PM force.
	size := g.Size()
	meanVel := func() float64 {
		var v float64
		for i := 0; i < size; i++ {
			v += g.Mx[i] / g.Rho[i]
		}
		return v / float64(size)
	}
	before := meanVel()
	gx := make([]float64, size)
	for i := range gx {
		gx[i] = 0.3
	}
	if err := s.ApplyGravity(gx, make([]float64, size), make([]float64, size), 0.1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngravity hook: a 0.3 × 0.1 kick shifted the mean velocity by %.4f (expect 0.0300)\n",
		meanVel()-before)
}
