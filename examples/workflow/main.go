// Workflow executes the paper's Figure 4 as a DAG under the workflow engine
// the conclusion proposes: the XML document represents the nodes and data
// dependencies, and each node runs a real stage of the pipeline — GRAFIC
// initial conditions, RAMSES3d under the in-process MPI substrate, one
// HaloMaker per snapshot (in parallel), TreeMaker, then GalaxyMaker.
//
//	go run ./examples/workflow
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/cosmo"
	"repro/internal/fft"
	"repro/internal/galics"
	"repro/internal/grafic"
	"repro/internal/halo"
	"repro/internal/mergertree"
	"repro/internal/ramses"
	"repro/internal/workflow"
)

func main() {
	const (
		n       = 16
		box     = 100.0
		astart  = 0.1
		nLevels = 1 // standard run: the "if nb levels == 0" branch of Figure 4
	)
	aout := []float64{0.4, 0.7, 1.0}

	doc := workflow.RamsesZoomDocument(0, len(aout))
	fmt.Println("Figure 4 workflow document:")
	doc.WriteXML(os.Stdout)
	fmt.Println()

	dag, err := workflow.FromDocument(doc)
	if err != nil {
		log.Fatal(err)
	}

	// Shared pipeline state, flowing along the DAG edges.
	var (
		c        = cosmo.WMAP3()
		gen      *grafic.Generator
		noise    *fft.Grid3 // the rolled white noise feeds the second run
		ics      *grafic.ICs
		result   *ramses.Result
		catalogs = make([]*halo.Catalog, len(aout))
	)

	bind := func(id string, fn workflow.Action) {
		if err := dag.Bind(id, fn); err != nil {
			log.Fatal(err)
		}
	}

	bind("params", func(ctx *workflow.TaskContext) error {
		var err error
		gen, err = grafic.New(c, 42)
		return err
	})
	bind("grafic1_first", func(ctx *workflow.TaskContext) error {
		var err error
		noise, err = gen.WhiteNoise(n, 0)
		return err
	})
	bind("rollwhitenoise", func(ctx *workflow.TaskContext) error {
		// Centre the region of interest; a standard run rolls by zero.
		noise = grafic.RollWhiteNoise(noise, 0, 0, 0)
		return nil
	})
	bind("grafic1_second", func(ctx *workflow.TaskContext) error {
		var err error
		ics, err = gen.MultiLevel(n, box, astart, [3]float64{0.5, 0.5, 0.5}, nLevels)
		return err
	})
	bind("mpi_setup", func(ctx *workflow.TaskContext) error { return nil })
	bind("ramses3d", func(ctx *workflow.TaskContext) error {
		cfg := ramses.DefaultConfig()
		cfg.NPart = n
		cfg.Box = box
		cfg.Astart = astart
		cfg.Aout = aout
		cfg.StepsPerOutput = 5
		cfg.NCPU = 2 // run the MPI solver on two in-process ranks
		var err error
		result, err = ramses.RunFromICs(cfg, ics.Parts, "")
		return err
	})
	bind("mpi_stop", func(ctx *workflow.TaskContext) error { return nil })
	for i := range aout {
		i := i
		bind(fmt.Sprintf("halomaker_s%d", i+1), func(ctx *workflow.TaskContext) error {
			snap := result.Outputs[i].Snap
			cat, err := halo.FindHalos(snap.Parts, snap.A, snap.Box,
				halo.Params{LinkingLength: 0.25, MinParticles: 8})
			catalogs[i] = cat
			return err
		})
	}
	var forest *mergertree.Forest
	bind("treemaker", func(ctx *workflow.TaskContext) error {
		var err error
		forest, err = mergertree.Build(catalogs, mergertree.DefaultParams())
		return err
	})
	var galaxies *galics.Catalog
	bind("galaxymaker", func(ctx *workflow.TaskContext) error {
		var err error
		galaxies, err = galics.Run(forest, c, galics.DefaultParams())
		return err
	})
	bind("send_results", func(ctx *workflow.TaskContext) error { return nil })

	start := time.Now()
	report := dag.Execute(4)
	if report.Err != nil {
		log.Fatal(report.Err)
	}

	fmt.Printf("workflow of %d nodes completed in %v\n", dag.Size(), time.Since(start).Round(time.Millisecond))
	fmt.Println("\nnode timings:")
	for _, nd := range doc.Nodes {
		r := report.Results[nd.ID]
		fmt.Printf("  %-16s %8v\n", nd.ID, r.End.Sub(r.Start).Round(time.Microsecond))
	}
	st := forest.Stats()
	fmt.Printf("\npipeline products: %d halos in %d snapshots, %d mergers, %d galaxies (M* total %.3e)\n",
		st.Halos, st.Snapshots, st.Mergers, len(galaxies.Galaxies), galaxies.TotalStellarMass())
}
