package repro

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/diet"
	"repro/internal/rpc"
)

var benchDeployCounter atomic.Int64

// runMiddlewareOverhead deploys a minimal in-process platform and measures
// the full client→MA→LA→SeD→client path on a no-op service.
func runMiddlewareOverhead(b *testing.B) {
	b.Helper()
	id := benchDeployCounter.Add(1)
	desc, err := diet.NewProfileDesc("noop", 0, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	desc.Set(0, diet.Scalar, diet.Int)
	desc.Set(1, diet.Scalar, diet.Int)
	d, err := diet.Deploy(diet.DeploymentSpec{
		MAName: fmt.Sprintf("MA-bench-%d", id),
		LAs:    []string{fmt.Sprintf("LA-bench-%d", id)},
		SeDs: []diet.SeDSpec{{
			Name: fmt.Sprintf("SeD-bench-%d", id), Parent: fmt.Sprintf("LA-bench-%d", id),
			Capacity: 4, PowerGFlops: 4,
			Services: []diet.ServiceSpec{{
				Desc: desc,
				Solve: func(p *diet.Profile) error {
					v, err := p.ScalarInt(0)
					if err != nil {
						return err
					}
					return p.SetScalarInt(1, v, diet.Volatile)
				},
			}},
		}},
		Local: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		d.Close()
		rpc.ResetLocal()
	}()
	client, err := d.Client()
	if err != nil {
		b.Fatal(err)
	}

	var totalFind time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := diet.NewProfile("noop", 0, 0, 1)
		if err != nil {
			b.Fatal(err)
		}
		p.SetScalarInt(0, int64(i), diet.Volatile)
		info, err := client.Call(p)
		if err != nil {
			b.Fatal(err)
		}
		totalFind += info.Finding
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(totalFind.Microseconds())/float64(b.N)/1000, "find_ms")
	}
}
