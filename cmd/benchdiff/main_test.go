package main

import (
	"os"
	"strings"
	"testing"
)

func TestParseBenchFixture(t *testing.T) {
	f, err := os.Open("testdata/old.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := ParseBench(f)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"repro/internal/cori/BenchmarkObserve":             1052,
		"repro/internal/cori/BenchmarkModelFit":            8210,
		"repro/internal/scheduler/BenchmarkRankForecast":   2200,
		"repro/internal/simgrid/BenchmarkAblationForecast": 52000000,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Fatalf("%s = %g, want %g", name, got[name], ns)
		}
	}
}

func TestParseBenchSurvivesGarbage(t *testing.T) {
	in := strings.NewReader(`not json at all
{"Action":"output","Package":"p","Output":"BenchmarkX-4 \t 10\t 500 ns/op\n"}
{"Action":"output","Package":"p","Output":"no benchmark here\n"}
{truncated
{"Action":"run","Package":"p","Output":"BenchmarkY-4 \t 10\t 900 ns/op\n"}
{"Action":"output","Package":"p","Output":"BenchmarkZ-4 \t 10\t -7 ns/op\n"}
`)
	got, err := ParseBench(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got["p/BenchmarkX"] != 500 {
		t.Fatalf("want only p/BenchmarkX=500, got %v", got)
	}
}

func TestDiffThresholds(t *testing.T) {
	prev := map[string]float64{"p/A": 100, "p/B": 100, "p/C": 100, "p/Gone": 10}
	curr := map[string]float64{"p/A": 124, "p/B": 126, "p/C": 40, "p/Fresh": 5}
	deltas, gone, fresh := Diff(prev, curr, 25)
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if len(deltas) != 3 {
		t.Fatalf("want 3 compared, got %v", deltas)
	}
	if byName["p/A"].Regred {
		t.Fatalf("+24%% must pass a 25%% threshold: %+v", byName["p/A"])
	}
	if !byName["p/B"].Regred {
		t.Fatalf("+26%% must fail a 25%% threshold: %+v", byName["p/B"])
	}
	if byName["p/C"].Regred || byName["p/C"].Pct > 0 {
		t.Fatalf("a speedup must never regress: %+v", byName["p/C"])
	}
	if len(gone) != 1 || gone[0] != "p/Gone" || len(fresh) != 1 || fresh[0] != "p/Fresh" {
		t.Fatalf("gone=%v fresh=%v", gone, fresh)
	}
}

// TestRunFailsOnSlowdownFixture is the CI acceptance pair: the gate must
// fail the synthetic 2× slowdown fixture and pass the parity fixture.
func TestRunFailsOnSlowdownFixture(t *testing.T) {
	var out strings.Builder
	err := Run([]string{"-old", "testdata/old.json", "-new", "testdata/slow2x.json"}, &out)
	if err == nil {
		t.Fatalf("2x slowdown must fail the gate; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "BenchmarkObserve") || !strings.Contains(out.String(), "! ") {
		t.Fatalf("report must flag the regressed benchmark:\n%s", out.String())
	}
}

func TestRunPassesOnParityFixture(t *testing.T) {
	var out strings.Builder
	if err := Run([]string{"-old", "testdata/old.json", "-new", "testdata/parity.json"}, &out); err != nil {
		t.Fatalf("parity must pass the gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "4 compared, 0 regressed") {
		t.Fatalf("unexpected summary:\n%s", out.String())
	}
}

func TestRunOverrideAllowsRegression(t *testing.T) {
	var out strings.Builder
	err := Run([]string{"-old", "testdata/old.json", "-new", "testdata/slow2x.json", "-allow-regression"}, &out)
	if err != nil {
		t.Fatalf("-allow-regression must downgrade the failure: %v", err)
	}
	if !strings.Contains(out.String(), "1 regressed") {
		t.Fatalf("override must still report the regression:\n%s", out.String())
	}
}

func TestRunRejectsEmptyInputs(t *testing.T) {
	empty := "testdata/empty.json"
	if err := os.WriteFile(empty, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Remove(empty) })
	var out strings.Builder
	if err := Run([]string{"-old", empty, "-new", "testdata/parity.json"}, &out); err == nil {
		t.Fatal("an artifact with no benchmarks must fail loudly, not pass vacuously")
	}
	if err := Run([]string{"-old", "testdata/old.json"}, &out); err == nil {
		t.Fatal("missing -new must be rejected")
	}
}
