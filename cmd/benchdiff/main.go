// Command benchdiff gates benchmark trends in CI: it parses two `go test
// -json -bench` streams (the BENCH_ci.json artifacts successive CI runs
// archive), diffs ns/op per benchmark, and fails when any benchmark regressed
// past a threshold — the trend gate the bench job applies between a run and
// its predecessor.
//
//	benchdiff -old prev/BENCH_ci.json -new BENCH_ci.json -threshold 25
//
// Benchmarks present on only one side are reported but never fail the gate
// (new benchmarks appear, retired ones vanish). -allow-regression downgrades
// failures to warnings — the CI escape hatch behind the bench-regression-ok
// label.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// testEvent is the subset of the `go test -json` stream benchdiff reads.
type testEvent struct {
	Action  string
	Package string
	Output  string
}

// benchLine matches a benchmark result line inside an Output event:
// name, optional -GOMAXPROCS suffix, iteration count, ns/op.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op`)

// ParseBench extracts benchmark results from a `go test -json` stream,
// keyed "package/BenchmarkName" (the -N GOMAXPROCS suffix is stripped so a
// runner-core change does not rename every key). A benchmark appearing more
// than once keeps its last value. Non-JSON lines and events without
// benchmark output are skipped.
func ParseBench(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || !strings.HasPrefix(line, "{") {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			continue // a truncated artifact line must not kill the gate
		}
		if ev.Action != "output" {
			continue
		}
		m := benchLine.FindStringSubmatch(strings.TrimSpace(ev.Output))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil || ns <= 0 {
			continue
		}
		out[ev.Package+"/"+m[1]] = ns
	}
	return out, sc.Err()
}

// Delta is one benchmark's old-vs-new comparison.
type Delta struct {
	Name   string
	OldNS  float64
	NewNS  float64
	Pct    float64 // (new-old)/old × 100; positive = slower
	Regred bool    // past the threshold
}

// Diff compares two parsed benchmark sets against a regression threshold in
// percent. Only benchmarks present on both sides are compared; the returned
// slices list those only-old (gone) and only-new (fresh) names, sorted.
func Diff(prev, curr map[string]float64, thresholdPct float64) (deltas []Delta, gone, fresh []string) {
	for name, o := range prev {
		n, ok := curr[name]
		if !ok {
			gone = append(gone, name)
			continue
		}
		pct := 100 * (n - o) / o
		deltas = append(deltas, Delta{
			Name: name, OldNS: o, NewNS: n, Pct: pct,
			Regred: pct > thresholdPct,
		})
	}
	for name := range curr {
		if _, ok := prev[name]; !ok {
			fresh = append(fresh, name)
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	sort.Strings(gone)
	sort.Strings(fresh)
	return deltas, gone, fresh
}

// Run executes the gate and writes the report; it returns an error when the
// gate fails (a regression without -allow-regression, or unusable input).
func Run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		oldPath   = fs.String("old", "", "previous run's go test -json bench stream")
		newPath   = fs.String("new", "", "this run's go test -json bench stream")
		threshold = fs.Float64("threshold", 25, "ns/op regression threshold, percent")
		allow     = fs.Bool("allow-regression", false, "report regressions but exit 0 (CI override label)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *oldPath == "" || *newPath == "" {
		return fmt.Errorf("benchdiff: both -old and -new are required")
	}
	parse := func(path string) (map[string]float64, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ParseBench(f)
	}
	prev, err := parse(*oldPath)
	if err != nil {
		return fmt.Errorf("benchdiff: reading old: %w", err)
	}
	curr, err := parse(*newPath)
	if err != nil {
		return fmt.Errorf("benchdiff: reading new: %w", err)
	}
	if len(prev) == 0 {
		return fmt.Errorf("benchdiff: %s holds no benchmark results", *oldPath)
	}
	if len(curr) == 0 {
		return fmt.Errorf("benchdiff: %s holds no benchmark results", *newPath)
	}

	deltas, gone, fresh := Diff(prev, curr, *threshold)
	regressed := 0
	for _, d := range deltas {
		mark := " "
		if d.Regred {
			mark = "!"
			regressed++
		}
		fmt.Fprintf(stdout, "%s %-60s %12.0f -> %12.0f ns/op  %+7.1f%%\n", mark, d.Name, d.OldNS, d.NewNS, d.Pct)
	}
	for _, name := range gone {
		fmt.Fprintf(stdout, "- %-60s retired\n", name)
	}
	for _, name := range fresh {
		fmt.Fprintf(stdout, "+ %-60s new\n", name)
	}
	fmt.Fprintf(stdout, "%d compared, %d regressed past %+.0f%%, %d retired, %d new\n",
		len(deltas), regressed, *threshold, len(gone), len(fresh))
	if regressed > 0 && !*allow {
		return fmt.Errorf("benchdiff: %d benchmark(s) regressed past %.0f%%", regressed, *threshold)
	}
	return nil
}

func main() {
	if err := Run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
