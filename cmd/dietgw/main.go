// Command dietgw runs the client gateway in front of a (possibly federated)
// DIET deployment: it pools sessions to the Master Agents, sticky-routes
// each service to one MA, batches concurrent submissions of the same
// service into one finding phase, sheds load once its bounded admission
// queue fills, and exposes the HTTP JSON API (POST /api/v1/solve, GET
// /api/v1/status) plus /metrics, /statusz and /debug/pprof/.
//
// Typical bring-up in front of a two-MA federation:
//
//	dietgw -naming host:9001 -mas MA1,MA2 -listen :8080
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/gateway"
	"repro/internal/logsvc"
	"repro/internal/metrics"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	var (
		namingAddr = flag.String("naming", "", "naming service address (host:port), required")
		mas        = flag.String("mas", "MA1", "comma-separated Master Agent names to pool over; sticky routing hashes services onto this list, so keep its order identical across gateway replicas")
		listen     = flag.String("listen", ":8080", "HTTP listen address for the API and observability endpoints")
		queueCap   = flag.Int("queue-cap", 256, "admission queue bound: calls admitted (queued or running) at once; beyond it requests are shed with HTTP 503")
		workers    = flag.Int("workers", 16, "admitted calls solved concurrently; the rest wait in the admission queue")
		logsvcAddr = flag.String("logservice", "", "publish trace events and request spans to the LogService bus at this address")
	)
	flag.Parse()

	if *namingAddr == "" {
		log.Fatal("-naming is required: the gateway fronts a running deployment")
	}
	var maNames []string
	for _, ma := range strings.Split(*mas, ",") {
		if ma = strings.TrimSpace(ma); ma != "" {
			maNames = append(maNames, ma)
		}
	}

	cfg := gateway.Config{
		Naming:   *namingAddr,
		MAs:      maNames,
		QueueCap: *queueCap,
		Workers:  *workers,
		Metrics:  metrics.NewRegistry(),
	}
	if *logsvcAddr != "" {
		cfg.Events = &logsvc.Remote{Addr: *logsvcAddr}
	}

	gw, err := gateway.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()

	addr, shutdown, err := gw.Serve(*listen)
	if err != nil {
		log.Fatal(err)
	}
	defer shutdown()
	log.Printf("dietgw serving on %s: /api/v1/solve /api/v1/status /metrics /statusz (MAs %v, queue %d, workers %d)",
		addr, maNames, *queueCap, *workers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Print("shutting down dietgw")
}
