// Command halomaker is the first GALICS post-processing stage (paper §4):
// it detects dark-matter halos in a RAMSES snapshot with friends-of-friends
// and writes the halo catalog.
//
//	halomaker -in run/output_00002/part.dat -o halos_002.dat
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/halo"
	"repro/internal/ramses"
)

func main() {
	var (
		in      = flag.String("in", "", "input RAMSES snapshot (part.dat)")
		out     = flag.String("o", "halos.dat", "output catalog file")
		b       = flag.Float64("b", 0.2, "FoF linking length, mean-separation units")
		minPart = flag.Int("minpart", 20, "minimum particles per halo")
	)
	flag.Parse()
	if *in == "" {
		log.Fatal("-in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	snap, err := ramses.ReadSnapshot(bufio.NewReader(f))
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	cat, err := halo.FindHalos(snap.Parts, snap.A, snap.Box, halo.Params{
		LinkingLength: *b, MinParticles: *minPart,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := halo.SaveCatalog(*out, cat); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot a=%.3f: %d particles → %d halos (b=%.2f, min %d)\n",
		snap.A, len(snap.Parts), len(cat.Halos), *b, *minPart)
	for i, h := range cat.Halos {
		if i >= 10 {
			fmt.Printf("  … %d more\n", len(cat.Halos)-10)
			break
		}
		fmt.Printf("  halo %3d: %6d particles  M=%.3e M☉/h  pos=(%.3f %.3f %.3f)\n",
			h.ID, h.NPart, h.Mass, h.Pos[0], h.Pos[1], h.Pos[2])
	}
	fmt.Printf("wrote %s\n", *out)
}
