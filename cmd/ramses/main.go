// Command ramses runs a cosmological N-body simulation from a namelist file,
// the way the paper's RAMSES3d runs inside the service: initial conditions,
// (optionally MPI-parallel) particle-mesh integration, snapshots at the
// requested expansion factors and AMR statistics per output. With -render it
// also prints the projected density field of each snapshot — the paper's
// Figure 2 time sequence — as ASCII art.
//
//	ramses -nml run.nml -o /tmp/run -render
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/ramses"
)

func main() {
	var (
		nml    = flag.String("nml", "", "namelist file (default: built-in small run)")
		out    = flag.String("o", "", "output directory (default: in-memory only)")
		render = flag.Bool("render", false, "print projected density as ASCII per output")
		ncpu   = flag.Int("ncpu", 0, "override namelist ncpu (0 = keep)")
	)
	flag.Parse()

	cfg := ramses.DefaultConfig()
	if *nml != "" {
		parsed, err := ramses.ParseNamelistFile(*nml)
		if err != nil {
			log.Fatal(err)
		}
		cfg, err = ramses.ConfigFromNamelist(parsed)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *ncpu > 0 {
		cfg.NCPU = *ncpu
	}

	fmt.Printf("RAMSES run: %d^3 particles, %.0f Mpc/h, a=%g→%g, ncpu=%d, zoom levels=%d\n",
		cfg.NPart, cfg.Box, cfg.Astart, cfg.Aout[len(cfg.Aout)-1], cfg.NCPU, cfg.ZoomLevels)

	res, err := ramses.Run(cfg, *out)
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range res.Outputs {
		fmt.Printf("output %d: a=%.3f  particles=%d  AMR depth=%d (effective %d^3)  leaves=%d\n",
			o.Index, o.A, len(o.Snap.Parts), o.Tree.MaxDepth, o.Tree.EffectiveN, o.Tree.Leaves)
		if o.Path != "" {
			fmt.Printf("  wrote %s\n", o.Path)
		}
		if *render {
			m, err := ramses.ProjectedDensity(o.Snap, cfg.Cosmo, 48, 2)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(ramses.RenderASCII(m, 48))
		}
	}
}
