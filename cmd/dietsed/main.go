// Command dietsed launches a Server Daemon hosting the two RAMSES services
// of the paper (ramsesZoom1 and ramsesZoom2) and blocks forever, like the C
// API's diet_SeD() call which "will never return".
//
//	dietsed -name Nancy1 -parent LA-Nancy -naming host:9001 -power 63.8 -workdir /tmp/sed
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/batch"
	"repro/internal/cori"
	"repro/internal/dataman"
	"repro/internal/diet"
	"repro/internal/logsvc"
	"repro/internal/metrics"
	"repro/internal/services"
)

// logForecastAccuracy prints live forecast quality per service: the mean
// |predicted − measured| relative error over the SeD's recent solves, and how
// many predictions came from a trusted CoRI model vs the power fallback.
func logForecastAccuracy(sed *diet.SeD) {
	acc := sed.ForecastAccuracy()
	svcs := make([]string, 0, len(acc))
	for svc := range acc {
		svcs = append(svcs, svc)
	}
	sort.Strings(svcs)
	for _, svc := range svcs {
		a := acc[svc]
		log.Printf("forecast %s: %d solves, mean |pred-meas| %.1f%%, %.0f%% model-predicted",
			svc, a.Solves, a.MeanAbsPct, 100*a.ModelShare)
	}
}

// writeForecastAccuracy renders the same summary into the /statusz page.
func writeForecastAccuracy(w http.ResponseWriter, sed *diet.SeD) {
	acc := sed.ForecastAccuracy()
	svcs := make([]string, 0, len(acc))
	for svc := range acc {
		svcs = append(svcs, svc)
	}
	sort.Strings(svcs)
	for _, svc := range svcs {
		a := acc[svc]
		fmt.Fprintf(w, "forecast %s: %d solves, mean |pred-meas| %.1f%%, %.0f%% model-predicted\n",
			svc, a.Solves, a.MeanAbsPct, 100*a.ModelShare)
	}
}

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	var (
		name       = flag.String("name", "SeD1", "component name")
		parent     = flag.String("parent", "", "parent agent name")
		namingAddr = flag.String("naming", "", "naming service address (required)")
		listen     = flag.String("listen", ":0", "SeD listen address")
		capacity   = flag.Int("capacity", 1, "concurrent solves (the paper's SeDs run 1)")
		power      = flag.Float64("power", 50, "advertised processing power, GFlops")
		cluster    = flag.String("cluster", "", "cluster label for reporting")
		workdir    = flag.String("workdir", "", "working directory (default: a temp dir)")
		// Self-healing: watch the parent agent and re-adopt under a fallback
		// when it goes silent (orphaned-SeD recovery).
		parentProbe  = flag.Duration("parent-probe", 0, "probe the parent agent at this interval and re-register when it lost us (0 = off)")
		parentMissed = flag.Int("parent-max-missed", 3, "consecutive failed parent probes before the SeD declares itself orphaned and tries the fallback parents")
		fallbacks    = flag.String("fallback-parents", "", "comma-separated agent names to adopt the SeD when its parent dies")
		// CoRI monitor tuning: every SeD records its solve history and
		// forecasts durations for the history-aware schedulers
		// (forecastaware, contentionaware on the agent side).
		coriWindow   = flag.Int("cori-window", 64, "CoRI history ring size per service")
		coriHalfLife = flag.Duration("cori-halflife", time.Hour, "CoRI forecast-confidence half-life")
		coriStats    = flag.Duration("cori-stats", 0, "log CoRI metrics every interval (0 = off)")
		// Persistence: snapshot the monitor so restarts keep their training.
		coriSnapshot = flag.String("cori-snapshot", "", "persist the CoRI monitor to this file: loaded at boot when present, saved on shutdown")
		coriSnapInt  = flag.Duration("cori-snapshot-interval", 0, "additionally save the CoRI snapshot every interval (0 = only on shutdown)")
		// Batch reservations: route every solve through an OAR-style queue
		// with walltime enforcement, forecast-sized grants and backfill.
		batchNodes    = flag.Int("batch-nodes", 0, "route solves through a batch queue managing this many nodes (0 = run solves inline)")
		batchJobNodes = flag.Int("batch-job-nodes", 1, "nodes each solve's reservation requests")
		batchBackfill = flag.Bool("batch-backfill", true, "conservative backfilling in the batch queue, preferring forecast-sized jobs")
		batchWall     = flag.Duration("batch-wall", 2*time.Hour, "fixed fallback walltime granted while the CoRI model is cold")
		// Data management: join a platform data catalog so the SeD serves a
		// DAGDA-style store, fetches persistent inputs by DataID, publishes
		// persistent outputs, and prices input transfers into its estimates.
		dataCatalog  = flag.String("data-catalog", "", "join the platform data catalog served at this address (empty = no data plane)")
		dataFallback = flag.Float64("data-fallback-mbps", 0, "assumed bandwidth for transfer estimates while a node pair's model is untrusted (0 = the default, 100)")
		// Observability: route events + request spans to the process log or a
		// remote LogService bus, and expose Prometheus metrics over HTTP.
		logEvents  = flag.Bool("log-events", false, "log middleware trace events and request spans")
		logsvcAddr = flag.String("logservice", "", "publish trace events and request spans to the LogService bus at this address")
		httpAddr   = flag.String("http", "", "serve /metrics, /statusz and /debug/pprof/ on this address (empty = off)")
	)
	flag.Parse()
	if *namingAddr == "" {
		log.Fatal("-naming is required")
	}
	dir := *workdir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "dietsed-"+*name+"-")
		if err != nil {
			log.Fatal(err)
		}
	}

	var executor diet.Executor
	var batchExec *batch.ForecastExecutor
	if *batchNodes > 0 {
		if *batchJobNodes < 1 || *batchJobNodes > *batchNodes {
			log.Fatalf("-batch-job-nodes %d must be between 1 and -batch-nodes %d", *batchJobNodes, *batchNodes)
		}
		sys, err := batch.New(batch.Config{
			TotalNodes: *batchNodes, Backfill: *batchBackfill, EnforceWalltime: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		// The monitor is bound by NewSeD (MonitorBinder), so walltimes are
		// sized from the same history the SeD's estimates report.
		batchExec = &batch.ForecastExecutor{
			System: sys, JobName: *name, Nodes: *batchJobNodes,
			Policy: batch.WalltimePolicy{Fixed: *batchWall},
		}
		executor = batchExec
	}

	var events diet.EventSink
	var sinks logsvc.Tee
	if *logsvcAddr != "" {
		sinks = append(sinks, &logsvc.Remote{Addr: *logsvcAddr})
	}
	if *logEvents {
		sinks = append(sinks, logsvc.Printer{Logf: log.Printf})
	}
	switch len(sinks) {
	case 0:
	case 1:
		events = sinks[0]
	default:
		events = sinks
	}
	var reg *metrics.Registry
	if *httpAddr != "" {
		reg = metrics.NewRegistry()
	}

	var fallbackParents []string
	for _, p := range strings.Split(*fallbacks, ",") {
		if p = strings.TrimSpace(p); p != "" {
			fallbackParents = append(fallbackParents, p)
		}
	}
	cfg := diet.SeDConfig{
		Name: *name, Parent: *parent, Naming: *namingAddr,
		Capacity: *capacity, PowerGFlops: *power, Cluster: *cluster,
		WorkDir: dir, ListenAddr: *listen, Executor: executor,
		CoRI:   cori.Config{Window: *coriWindow, HalfLife: *coriHalfLife},
		Events: events, Metrics: reg,
		ParentProbe:      *parentProbe,
		ParentMaxMissed:  *parentMissed,
		FallbackParents:  fallbackParents,
		DataFallbackMBps: *dataFallback,
	}
	if *dataCatalog != "" {
		cfg.Data = &dataman.Remote{Addr: *dataCatalog}
		// Each process trains its own pair models from the transfers it sees;
		// estimates fall back to -data-fallback-mbps until a pair is trusted.
		cfg.Transfers = cori.NewTransferMonitor(cori.Config{Window: *coriWindow, HalfLife: *coriHalfLife})
	}
	sed, err := diet.NewSeD(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if reg != nil {
		addr, shutdown, err := metrics.Serve(*httpAddr, reg, func(w http.ResponseWriter) {
			fmt.Fprintf(w, "SeD %s parent %s services %v\n\n", *name, *parent, sed.ServiceNames())
			writeForecastAccuracy(w, sed)
		})
		if err != nil {
			log.Fatal(err)
		}
		defer shutdown()
		log.Printf("observability HTTP on %s (/metrics /statusz /debug/pprof/)", addr)
	}
	if err := services.Register(sed, dir); err != nil {
		log.Fatal(err)
	}
	if *coriSnapshot != "" {
		// Restore before Start so the first estimates already carry the
		// previous life's training; a missing file just means a first boot.
		switch err := sed.Monitor().LoadFile(*coriSnapshot); {
		case err == nil:
			log.Printf("CoRI monitor restored from %s (services %v)", *coriSnapshot, sed.Monitor().Services())
		case errors.Is(err, os.ErrNotExist):
			log.Printf("CoRI snapshot %s not found, starting cold", *coriSnapshot)
		default:
			log.Fatalf("loading CoRI snapshot: %v", err)
		}
	}
	if err := sed.Start(); err != nil {
		log.Fatal(err)
	}
	log.Printf("SeD %s serving on %s (services %v, workdir %s)",
		*name, sed.Addr(), sed.ServiceNames(), dir)

	if *coriStats > 0 {
		go func() {
			for range time.Tick(*coriStats) {
				for _, svc := range sed.Monitor().Services() {
					log.Printf("CoRI %s: %v", svc, sed.Monitor().Metrics(svc))
				}
				logForecastAccuracy(sed)
				if batchExec != nil {
					log.Printf("batch: %+v exec: %+v", batchExec.System.Stats(), batchExec.Stats())
				}
			}
		}()
	}
	if *coriSnapshot != "" && *coriSnapInt > 0 {
		go func() {
			for range time.Tick(*coriSnapInt) {
				if err := sed.Monitor().SaveFile(*coriSnapshot); err != nil {
					log.Printf("saving CoRI snapshot: %v", err)
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down SeD %s", *name)
	if batchExec != nil {
		st := batchExec.System.Stats()
		log.Printf("batch queue: %d started, mean wait %s, %d backfilled (%d forecast-sized), %d overrun kills",
			st.Started, st.MeanQueueWait(), st.Backfilled, st.ForecastSizedBackfills, st.OverrunKills)
		batchExec.System.Close()
	}
	if *coriSnapshot != "" {
		if err := sed.Monitor().SaveFile(*coriSnapshot); err != nil {
			log.Printf("saving CoRI snapshot: %v", err)
		} else {
			log.Printf("CoRI monitor saved to %s", *coriSnapshot)
		}
	}
	sed.Close()
}
