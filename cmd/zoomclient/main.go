// Command zoomclient is the paper's client (§6.1): it requests one
// low-resolution ramsesZoom1 survey, extracts the halo catalog, then submits
// all the ramsesZoom2 sub-simulations simultaneously and reports the same
// quantities the paper measures — per-SeD distribution, finding time and
// latency per request, and the campaign totals.
//
//	zoomclient -config client.cfg -requests 100 -npart 16 -out /tmp/results
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/diet"
	"repro/internal/halo"
	"repro/internal/logsvc"
	"repro/internal/ramses"
	"repro/internal/services"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	var (
		config   = flag.String("config", "", "client configuration file (namingAddr=..., MAName=...)")
		requests = flag.Int("requests", 10, "number of phase-2 sub-simulations")
		npart    = flag.Int("npart", 16, "particles per axis (power of two)")
		box      = flag.Float64("box", 100, "box size, Mpc/h")
		levels   = flag.Int("levels", 2, "nested zoom levels per sub-simulation")
		steps    = flag.Int("steps", 4, "integrator steps per output")
		seed     = flag.Int64("seed", 42, "initial-conditions seed")
		outDir   = flag.String("out", "", "directory for returned tarballs (default: discard)")
		fofB     = flag.Float64("fof-b", 0.2, "FoF linking length, mean-separation units")
		fofMin   = flag.Int("fof-minpart", 8, "minimum particles per halo")
		logAddr  = flag.String("logservice", "", "publish this client's request spans (submit/complete) to the LogService bus at this address")
	)
	flag.Parse()
	if *config == "" {
		log.Fatal("-config is required")
	}

	clientCfg, err := diet.ParseClientConfig(*config)
	if err != nil {
		log.Fatalf("diet_initialize: %v", err)
	}
	if *logAddr != "" {
		clientCfg.Events = &logsvc.Remote{Addr: *logAddr}
	}
	client, err := diet.InitializeConfig(clientCfg)
	if err != nil {
		log.Fatalf("diet_initialize: %v", err)
	}
	defer client.Finalize()

	cfg := ramses.DefaultConfig()
	cfg.NPart = *npart
	cfg.Box = *box
	cfg.Seed = *seed
	cfg.StepsPerOutput = *steps
	cfg.FoF = halo.Params{LinkingLength: *fofB, MinParticles: *fofMin}

	// ----- Phase 1: the low-resolution survey.
	start := time.Now()
	p1, err := services.NewZoom1Profile(cfg)
	if err != nil {
		log.Fatal(err)
	}
	info1, err := client.Call(p1)
	if err != nil {
		log.Fatalf("ramsesZoom1 failed: %v", err)
	}
	catalog, err := services.Zoom1Result(p1)
	if err != nil {
		log.Fatalf("ramsesZoom1 returned no catalog: %v", err)
	}
	log.Printf("phase 1 done on %s in %v: %d halos found",
		info1.Server, info1.Total.Round(time.Millisecond), len(catalog.Halos))
	if len(catalog.Halos) == 0 {
		log.Fatal("no halos to re-simulate; increase -npart or -steps")
	}

	// ----- Phase 2: all sub-simulations at once, one per halo (cycling).
	var calls []*diet.AsyncCall
	var profiles []*diet.Profile
	for i := 0; i < *requests; i++ {
		h := catalog.Halos[i%len(catalog.Halos)]
		cx := int(h.Pos[0] * float64(cfg.NPart))
		cy := int(h.Pos[1] * float64(cfg.NPart))
		cz := int(h.Pos[2] * float64(cfg.NPart))
		p, err := services.NewZoom2Profile(cfg, cx, cy, cz, *levels)
		if err != nil {
			log.Fatal(err)
		}
		profiles = append(profiles, p)
		calls = append(calls, client.CallAsync(p))
	}
	if err := diet.WaitAll(calls); err != nil {
		log.Fatalf("phase 2: %v", err)
	}
	total := time.Since(start)

	// ----- Collect results and report the paper's quantities.
	perServer := make(map[string]int)
	perServerBusy := make(map[string]time.Duration)
	var sumFind, sumLatency, sumCompute time.Duration
	fmt.Println("req  server          find        latency       compute")
	for i, c := range calls {
		info, err := c.Wait()
		if err != nil {
			log.Fatalf("request %d: %v", i, err)
		}
		perServer[info.Server]++
		perServerBusy[info.Server] += info.Compute
		sumFind += info.Finding
		sumLatency += info.Latency
		sumCompute += info.Compute
		fmt.Printf("%3d  %-12s %9.1fms %12.1fms %12.1fms\n", i, info.Server,
			ms(info.Finding), ms(info.Latency), ms(info.Compute))
		if *outDir != "" {
			name, tarball, err := services.Zoom2Result(profiles[i])
			if err != nil {
				log.Printf("request %d result: %v", i, err)
				continue
			}
			path := filepath.Join(*outDir, fmt.Sprintf("zoom_%03d_%s", i, name))
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(path, tarball, 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Println("\nDistribution over the SeDs (paper Figure 5):")
	var names []string
	for s := range perServer {
		names = append(names, s)
	}
	sort.Strings(names)
	for _, s := range names {
		fmt.Printf("  %-12s %3d requests  busy %v\n", s, perServer[s], perServerBusy[s].Round(time.Millisecond))
	}
	n := float64(len(calls))
	fmt.Printf("\nTotals (paper §6.2):\n")
	fmt.Printf("  whole experiment        %v\n", total.Round(time.Millisecond))
	fmt.Printf("  phase 1                 %v\n", info1.Total.Round(time.Millisecond))
	fmt.Printf("  mean find time          %.1f ms\n", ms(sumFind)/n)
	fmt.Printf("  mean latency            %.1f ms\n", ms(sumLatency)/n)
	fmt.Printf("  sequential baseline     %v\n", (sumCompute + info1.Compute).Round(time.Millisecond))
	fmt.Printf("  speedup                 %.2fx\n", float64(sumCompute+info1.Compute)/float64(total))
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
