// Command galaxymaker is the third GALICS stage (paper §4): it applies the
// semi-analytical model to the merger trees built from the halo catalogs and
// writes the galaxy catalog.
//
//	galaxymaker -o galaxies.txt halos_001.dat halos_002.dat halos_003.dat
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cosmo"
	"repro/internal/galics"
	"repro/internal/halo"
	"repro/internal/mergertree"
)

func main() {
	var (
		out = flag.String("o", "galaxies.txt", "output galaxy catalog (text)")
	)
	flag.Parse()
	files := flag.Args()
	if len(files) < 1 {
		log.Fatal("usage: galaxymaker [flags] catalog1 catalog2 ... (chronological order)")
	}
	var cats []*halo.Catalog
	for _, f := range files {
		cat, err := halo.LoadCatalog(f)
		if err != nil {
			log.Fatalf("%s: %v", f, err)
		}
		cats = append(cats, cat)
	}
	forest, err := mergertree.Build(cats, mergertree.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	gal, err := galics.Run(forest, cosmo.WMAP3(), galics.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(f, "# halo_id stellar_mass cold_gas hot_gas sfr mergers bursts\n")
	for _, g := range gal.Galaxies {
		fmt.Fprintf(f, "%d %.6e %.6e %.6e %.6e %d %d\n",
			g.HaloID, g.StellarMass, g.ColdGas, g.HotGas, g.SFR, g.Mergers, g.Bursts)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("galaxy catalog at a=%.3f: %d galaxies, total M* = %.3e M☉/h\n",
		gal.A, len(gal.Galaxies), gal.TotalStellarMass())
	centers, counts := gal.StellarMassFunction(7, 13, 6)
	fmt.Println("stellar mass function (log10 M* bins):")
	for i := range centers {
		fmt.Printf("  %5.1f  %d\n", centers[i], counts[i])
	}
	fmt.Printf("wrote %s\n", *out)
}
