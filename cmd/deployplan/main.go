// Command deployplan prints the topology-aware launch plan for the paper's
// Grid'5000 deployment (§3.1/§6.1): which component runs at which site, the
// shell commands that bring the hierarchy up with dietagent/dietsed, and the
// wide-area cost comparison against a naive flat hierarchy.
//
// With -replan it closes the forecast loop: it trains per-SeD CoRI monitors
// by simulating -train-rounds campaigns (optionally on the canonical
// miscalibrated platform with -skew), re-plans from the measured delivered
// powers, and prints which placements changed — the deployment the launch
// commands then advertise.
//
//	deployplan -naming ma-host:9001
//	deployplan -flat            # show the naive plan instead
//	deployplan -replan -skew    # measured-power plan after simulated training
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cori"
	"repro/internal/deploy"
	"repro/internal/platform"
	"repro/internal/scheduler"
	"repro/internal/simgrid"
)

func main() {
	var (
		namingAddr = flag.String("naming", "127.0.0.1:9001", "naming service host:port")
		flat       = flag.Bool("flat", false, "plan a flat single-LA hierarchy instead")
		replan     = flag.Bool("replan", false, "train CoRI monitors in simulation and plan from measured powers")
		skew       = flag.Bool("skew", false, "with -replan: train on the canonical miscalibrated platform")
		rounds     = flag.Int("train-rounds", 1, "with -replan: simulated training campaigns")
	)
	flag.Parse()

	dep := platform.PaperDeployment()
	plat := platform.Grid5000()

	opts := deploy.Options{}
	var topo *deploy.Plan
	var changes []deploy.Change
	var err error
	if *replan {
		monitors, err := trainMonitors(dep, *rounds, *skew)
		if err != nil {
			log.Fatal(err)
		}
		opts.Capabilities = deploy.MonitorSource(monitors, "ramsesZoom2")
		// Replan returns the measured topology plan itself, so the printed
		// plan is exactly the one the change list was diffed from.
		topo, changes, err = deploy.Replan(dep, opts)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		topo, err = deploy.TopologyWith(dep, opts)
		if err != nil {
			log.Fatal(err)
		}
	}
	flatPlan, err := deploy.FlatWith(dep, opts)
	if err != nil {
		log.Fatal(err)
	}
	plan := topo
	label := "topology-aware (paper §3.1)"
	if *flat {
		plan = flatPlan
		label = "flat (naive baseline)"
	}
	if *replan {
		label += ", measured-power placement"
	}

	fmt.Printf("deployment plan: %s\n", label)
	fmt.Printf("  components: 1 MA + %d LAs + %d SeDs (+ naming)\n", len(plan.LAs), len(plan.SeDs))
	fmt.Printf("  WAN messages per scheduling request: %d (flat plan: %d)\n",
		plan.WANMessagesPerRequest(), flatPlan.WANMessagesPerRequest())
	fmt.Printf("  estimate-collection latency bound: %.1f ms\n\n", 1000*plan.CollectLatency(plat))

	if *replan {
		advertised := make(map[string]float64, len(dep.SeDs))
		for _, p := range dep.SeDs {
			advertised[p.Name] = p.PowerGFlops()
		}
		fmt.Printf("measured-power replan after %d training campaign(s):\n", *rounds)
		fmt.Println("  SeD          advertised  measured  confidence  effective")
		for _, s := range plan.SeDs {
			measured, conf := "       -", "    -"
			if s.MeasuredGFlops > 0 {
				measured = fmt.Sprintf("%8.1f", s.MeasuredGFlops)
				conf = fmt.Sprintf("%5.2f", s.Confidence)
			}
			fmt.Printf("  %-12s %10.1f  %s  %10s  %9.1f\n", s.Name, advertised[s.Name], measured, conf, s.Power)
		}
		if len(changes) == 0 {
			fmt.Println("  no placements would change")
		} else {
			fmt.Println("  placements that change:")
			for _, c := range changes {
				fmt.Printf("    %s\n", c)
			}
		}
		fmt.Println()
	}

	for _, cmd := range plan.Commands(*namingAddr) {
		fmt.Println(cmd)
	}
}

// trainMonitors runs simulated campaigns to give every SeD's monitor the
// solve history a real observing night would leave behind.
func trainMonitors(dep platform.Deployment, rounds int, skew bool) (map[string]*cori.Monitor, error) {
	cfg := simgrid.DefaultExperiment(scheduler.NewPowerAware())
	cfg.Deployment = dep
	cfg.Forecast = true
	cfg.CoRI.HalfLife = simgrid.TrainingHalfLife
	cfg.Monitors = make(map[string]*cori.Monitor, len(dep.SeDs))
	if skew {
		cfg.TruePowerFactor = simgrid.CanonicalSkew
	}
	for r := 0; r < rounds; r++ {
		cfg.Seed = 1000 + int64(r)
		if _, err := simgrid.RunExperiment(cfg); err != nil {
			return nil, err
		}
	}
	return cfg.Monitors, nil
}
