// Command deployplan prints the topology-aware launch plan for the paper's
// Grid'5000 deployment (§3.1/§6.1): which component runs at which site, the
// shell commands that bring the hierarchy up with dietagent/dietsed, and the
// wide-area cost comparison against a naive flat hierarchy.
//
//	deployplan -naming ma-host:9001
//	deployplan -flat            # show the naive plan instead
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/deploy"
	"repro/internal/platform"
)

func main() {
	var (
		namingAddr = flag.String("naming", "127.0.0.1:9001", "naming service host:port")
		flat       = flag.Bool("flat", false, "plan a flat single-LA hierarchy instead")
	)
	flag.Parse()

	dep := platform.PaperDeployment()
	plat := platform.Grid5000()

	topo, err := deploy.Topology(dep)
	if err != nil {
		log.Fatal(err)
	}
	flatPlan, err := deploy.Flat(dep)
	if err != nil {
		log.Fatal(err)
	}
	plan := topo
	label := "topology-aware (paper §3.1)"
	if *flat {
		plan = flatPlan
		label = "flat (naive baseline)"
	}

	fmt.Printf("deployment plan: %s\n", label)
	fmt.Printf("  components: 1 MA + %d LAs + %d SeDs (+ naming)\n", len(plan.LAs), len(plan.SeDs))
	fmt.Printf("  WAN messages per scheduling request: %d (flat plan: %d)\n",
		plan.WANMessagesPerRequest(), flatPlan.WANMessagesPerRequest())
	fmt.Printf("  estimate-collection latency bound: %.1f ms\n\n", 1000*plan.CollectLatency(plat))

	for _, cmd := range plan.Commands(*namingAddr) {
		fmt.Println(cmd)
	}
}
