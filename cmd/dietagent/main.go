// Command dietagent launches a DIET scheduling agent — the Master Agent or a
// Local Agent — over TCP, optionally hosting the naming service for the
// whole deployment (the role omniORB's name server plays in the paper's
// §6.1 deployment).
//
// Typical bring-up, mirroring the paper's 1 MA + 6 LA hierarchy:
//
//	dietagent -name MA1 -kind MA -with-naming -listen :9000
//	dietagent -name LA-Nancy -kind LA -parent MA1 -naming host:9001 -listen :9100
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/dataman"
	"repro/internal/deploy"
	"repro/internal/diet"
	"repro/internal/logsvc"
	"repro/internal/metrics"
	"repro/internal/naming"
	"repro/internal/platform"
	"repro/internal/rpc"
	"repro/internal/scheduler"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	var (
		name       = flag.String("name", "MA1", "component name")
		kind       = flag.String("kind", "MA", "agent kind: MA or LA")
		parent     = flag.String("parent", "", "parent agent name (LA only)")
		namingAddr = flag.String("naming", "", "naming service address (host:port)")
		withNaming = flag.Bool("with-naming", false, "host the naming service in this process")
		namingPort = flag.String("naming-listen", ":9001", "naming service listen address (with -with-naming)")
		listen     = flag.String("listen", ":9000", "agent listen address")
		policy     = flag.String("policy", "roundrobin", "MA scheduling policy: roundrobin, random, mct, poweraware, forecastaware, contentionaware")
		peers      = flag.String("peers", "", "comma-separated peer Master Agent names to federate with; a Submit this MA cannot satisfy locally is forwarded to the federation (MA only)")
		fwdHops    = flag.Int("forward-hops", diet.DefaultForwardHops, "how many MAs a federated request may traverse, counting this MA's forward as the first hop")
		seed       = flag.Int64("seed", 1, "seed for the random policy")
		heartbeat  = flag.Duration("heartbeat", 0, "ping children every interval, evicting dead ones; each sweep also gossips CoRI models through the hierarchy (0 = off)")
		maxMissed  = flag.Int("max-missed", 3, "consecutive missed heartbeats before a child is evicted")
		missEvict  = flag.Int("heartbeat-miss-evict", 0, "evict a child after this many consecutive failed estimate collections, independent of the heartbeat sweeps (0 = off)")
		replanInt  = flag.Duration("replan-interval", 0, "live replanning cadence: re-plan the paper deployment from the gossip registry and migrate SeDs online (needs -heartbeat; 0 = off)")
		replanSvc  = flag.String("replan-service", "ramsesZoom2", "service whose measured models drive live replanning")
		replanMin  = flag.Float64("replan-min-delta", 0, "hysteresis: drop replan power refreshes within this percentage of the applied figure (0 = keep every refresh)")
		replanDwel = flag.Duration("replan-dwell", 0, "hysteresis: minimum time between parent moves of the same SeD; moves wanted sooner are deferred (0 = move freely)")
		evictConf  = flag.Float64("evict-confidence", 0, "expire gossip-registry contributions whose decayed confidence falls below this floor (0 = keep forever)")
		evictHL    = flag.Duration("evict-halflife", time.Hour, "confidence decay half-life registry eviction uses")
		withCat    = flag.Bool("with-datacatalog", false, "host the platform data catalog in this process; SeDs join it with dietsed -data-catalog")
		catPort    = flag.String("datacatalog-listen", ":9003", "data catalog listen address (with -with-datacatalog)")
		catCap     = flag.Int("datacatalog-replica-cap", 0, "replicas per dataset the hosted catalog mints on demand-fetch paths (0 = unlimited)")
		logEvents  = flag.Bool("log-events", false, "log middleware trace events (registrations, evictions, replans, migrations)")
		// Observability: host the LogService bus (typically beside the MA,
		// like the paper's monitoring node), publish to a remote one, and/or
		// expose Prometheus metrics over HTTP.
		withLogsvc = flag.Bool("with-logservice", false, "host the LogService bus in this process (the monitoring node beside the MA)")
		logsvcPort = flag.String("logservice-listen", ":9002", "LogService listen address (with -with-logservice)")
		logsvcHist = flag.Int("logservice-history", 4096, "events the hosted LogService bus retains")
		logsvcAddr = flag.String("logservice", "", "publish trace events and request spans to the LogService bus at this address")
		httpAddr   = flag.String("http", "", "serve /metrics, /statusz and /debug/pprof/ on this address (empty = off)")
	)
	flag.Parse()

	if *withNaming {
		ns := naming.NewService()
		server := rpc.NewServer()
		server.Register(naming.ObjectName, ns.Handler())
		addr, err := server.Start(*namingPort)
		if err != nil {
			log.Fatalf("starting naming service: %v", err)
		}
		defer server.Close()
		*namingAddr = addr
		log.Printf("naming service listening on %s", addr)
	}
	if *namingAddr == "" {
		fmt.Fprintln(os.Stderr, "either -naming or -with-naming is required")
		os.Exit(2)
	}

	var agentKind diet.AgentKind
	switch *kind {
	case "MA":
		agentKind = diet.MasterAgent
	case "LA":
		agentKind = diet.LocalAgent
	default:
		log.Fatalf("unknown agent kind %q (want MA or LA)", *kind)
	}
	pol, err := scheduler.ByName(*policy, *seed)
	if err != nil {
		log.Fatal(err)
	}

	cfg := diet.AgentConfig{
		Name: *name, Kind: agentKind, Parent: *parent,
		Naming: *namingAddr, Policy: pol, ListenAddr: *listen,
		HeartbeatInterval: *heartbeat, MaxMissed: *maxMissed,
		CollectMissEvict:     *missEvict,
		EvictConfidenceFloor: *evictConf, EvictHalfLife: *evictHL,
		ForwardHops: *fwdHops,
	}
	if *peers != "" {
		if agentKind != diet.MasterAgent {
			log.Fatal("-peers is a Master Agent role: only MAs federate")
		}
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.Peers = append(cfg.Peers, p)
			}
		}
		log.Printf("federating with %v (forward budget %d hops)", cfg.Peers, *fwdHops)
	}

	if *withCat {
		cat := dataman.NewCatalog()
		if *catCap > 0 {
			cat.SetReplicaCap(*catCap)
		}
		cs := rpc.NewServer()
		cs.Register(dataman.CatalogObjectName, cat.Handler())
		addr, err := cs.Start(*catPort)
		if err != nil {
			log.Fatalf("starting data catalog: %v", err)
		}
		defer cs.Close()
		log.Printf("data catalog on %s; join SeDs with dietsed -data-catalog %s", addr, addr)
	}

	var sinks logsvc.Tee
	if *withLogsvc {
		bus := logsvc.New(*logsvcHist)
		ls := rpc.NewServer()
		ls.Register(logsvc.ObjectName, bus.Handler())
		addr, err := ls.Start(*logsvcPort)
		if err != nil {
			log.Fatalf("starting LogService bus: %v", err)
		}
		defer ls.Close()
		log.Printf("LogService bus on %s (history %d); attach with dietmon -logservice %s", addr, *logsvcHist, addr)
		sinks = append(sinks, bus)
	}
	if *logsvcAddr != "" {
		sinks = append(sinks, &logsvc.Remote{Addr: *logsvcAddr})
	}
	if *logEvents {
		sinks = append(sinks, logsvc.Printer{Logf: log.Printf})
	}
	switch len(sinks) {
	case 0:
	case 1:
		cfg.Events = sinks[0]
	default:
		cfg.Events = sinks
	}

	if *httpAddr != "" {
		reg := metrics.NewRegistry()
		cfg.Metrics = reg
		addr, shutdown, err := metrics.Serve(*httpAddr, reg, func(w http.ResponseWriter) {
			fmt.Fprintf(w, "agent %s kind %s policy %s naming %s\n", *name, *kind, *policy, *namingAddr)
		})
		if err != nil {
			log.Fatal(err)
		}
		defer shutdown()
		log.Printf("observability HTTP on %s (/metrics /statusz /debug/pprof/)", addr)
	}
	if *replanInt > 0 {
		if *heartbeat <= 0 {
			log.Fatal("-replan-interval rides the heartbeat sweeps; set -heartbeat too")
		}
		if agentKind != diet.MasterAgent {
			log.Fatal("-replan-interval is a Master Agent role")
		}
		cfg.ReplanInterval = *replanInt
		if *replanMin > 0 || *replanDwel > 0 {
			// Damped: migration thrash costs a drain pause per move, so noisy
			// measurements shouldn't bounce SeDs between parents.
			h := deploy.NewHysteresis(deploy.HysteresisConfig{
				MinPowerDeltaPct: *replanMin, Dwell: *replanDwel,
			})
			cfg.Replanner = deploy.LiveReplannerWith(platform.PaperDeployment(), *replanSvc, h)
			log.Printf("live replanning every %s from %q models (hysteresis: min delta %.1f%%, dwell %s)",
				*replanInt, *replanSvc, *replanMin, *replanDwel)
		} else {
			cfg.Replanner = deploy.LiveReplanner(platform.PaperDeployment(), *replanSvc)
			log.Printf("live replanning every %s from %q models", *replanInt, *replanSvc)
		}
	}
	agent, err := diet.NewAgent(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := agent.Start(); err != nil {
		log.Fatal(err)
	}
	log.Printf("%s %s serving on %s (policy %s, naming %s)",
		*kind, *name, agent.Addr(), pol.Name(), *namingAddr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down %s", *name)
	agent.Close()
}
