// Command treemaker is the second GALICS stage (paper §4): given the halo
// catalogs of successive snapshots it builds the merger trees, following
// position, mass and velocity of the halos through cosmic time.
//
//	treemaker halos_001.dat halos_002.dat halos_003.dat
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/halo"
	"repro/internal/mergertree"
)

func main() {
	minShared := flag.Float64("minshared", 0.5, "minimum shared-particle fraction to keep a link")
	flag.Parse()
	files := flag.Args()
	if len(files) < 2 {
		log.Fatal("usage: treemaker [flags] catalog1 catalog2 ... (chronological order)")
	}
	var cats []*halo.Catalog
	for _, f := range files {
		cat, err := halo.LoadCatalog(f)
		if err != nil {
			log.Fatalf("%s: %v", f, err)
		}
		cats = append(cats, cat)
	}
	forest, err := mergertree.Build(cats, mergertree.Params{MinSharedFraction: *minShared})
	if err != nil {
		log.Fatal(err)
	}
	st := forest.Stats()
	fmt.Printf("merger forest over %d snapshots:\n", st.Snapshots)
	fmt.Printf("  halos       %d\n", st.Halos)
	fmt.Printf("  links       %d\n", st.Links)
	fmt.Printf("  mergers     %d\n", st.Mergers)
	fmt.Printf("  dissolved   %d\n", st.Dissolved)
	fmt.Printf("  max branch  %d\n", st.MaxBranch)
	fmt.Printf("  final halos %d\n", st.FinalHalos)

	for _, root := range forest.Roots() {
		branch := mergertree.MainBranch(root)
		fmt.Printf("  halo %d (z=0, M=%.3e): main branch %d steps, %d direct progenitors\n",
			root.HaloID, root.Mass, len(branch), len(root.Progenitors))
	}
}
