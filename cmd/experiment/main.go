// Command experiment regenerates the paper's evaluation (§6) at full scale
// with the discrete-event simulator: the Figure 5 distribution and per-SeD
// execution times, the Figure 6 finding-time and latency series, the §6.2
// totals, and — with -compare — the scheduling ablation the paper proposes
// as future work.
//
//	experiment -all                      # everything, round-robin (the paper's run)
//	experiment -fig5 -scheduler poweraware
//	experiment -compare                  # round-robin vs the plug-in schedulers
//	experiment -forecast -scheduler forecastaware   # CoRI monitors on every SeD
//	experiment -forecast-ablation        # A5: cold vs trained forecasting arms
//	experiment -deploy-ablation          # A6: measured-power planning + forecast-sized reservations
//	experiment -warmstart-ablation       # A7: cold vs warm-started SeD join (cluster model gossip)
//	experiment -failure-ablation         # A10: chaos schedule, self-healing vs fragile hierarchy
//	experiment -workflow-ablation        # A11: zoom-campaign DAGs, topo round-robin vs forecast critical-path
//	experiment -federation-ablation      # A12: 1 MA vs N federated MAs under a saturating stream
//	experiment -data-ablation            # A13: data-blind vs transfer-priced placement on a data-heavy sweep
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/scheduler"
	"repro/internal/simgrid"
)

func main() {
	var (
		policyName = flag.String("scheduler", "roundrobin", "policy: roundrobin, random, mct, poweraware, forecastaware, contentionaware")
		requests   = flag.Int("requests", 100, "phase-2 sub-simulations")
		seed       = flag.Int64("seed", 1, "workload seed")
		fig5       = flag.Bool("fig5", false, "print the Figure 5 distribution")
		fig6       = flag.Bool("fig6", false, "print the Figure 6 series")
		totals     = flag.Bool("totals", false, "print the §6.2 totals")
		all        = flag.Bool("all", false, "print everything")
		compare    = flag.Bool("compare", false, "run the scheduler ablation (A1)")
		batch      = flag.Bool("batch", false, "route solves through OAR-style reservations (A3)")
		grantS     = flag.Float64("batch-grant", 30, "reservation grant delay, seconds")
		batchWall  = flag.Float64("batch-wall", 7200, "fixed reservation walltime, seconds; overruns are killed and requeued (0 = unbounded)")
		batchFc    = flag.Bool("batch-forecast", false, "size each reservation's walltime from the SeD's CoRI forecast (implies -batch and -forecast)")
		sweep      = flag.Bool("sweep", false, "run the capacity/workload scaling sweeps (A4)")
		arrivalGap = flag.Float64("arrival-gap", 0, "seconds between phase-2 submissions (0 = the paper's burst)")
		forecast   = flag.Bool("forecast", false, "attach a CoRI monitor to every SeD (history for forecastaware/contentionaware)")
		fcAblation = flag.Bool("forecast-ablation", false, "run the forecasting ablation (A5): static vs cold vs trained scheduling")
		dpAblation = flag.Bool("deploy-ablation", false, "run the deployment+reservation ablation (A6): static plan + fixed grants vs measured-power plan + forecast-sized walltimes")
		wsAblation = flag.Bool("warmstart-ablation", false, "run the warm-start ablation (A7): a SeD joins mid-campaign cold vs warm-started from its cluster's gossiped models")
		joinSeD    = flag.String("join", "Nancy2", "SeD that joins in the warm-start ablation (needs a cluster sibling)")
		rpAblation = flag.Bool("replan-ablation", false, "run the live-replanning ablation (A8): frozen plan vs live mid-campaign replanning+migration vs offline replan restart")
		rpInterval = flag.Float64("replan-interval", 0, "live arm replanning cadence, seconds (0 = the A8 default, 6h)")
		bfAblation = flag.Bool("backfill-ablation", false, "run the backfill ablation (A9): no backfill vs fixed-grant backfill vs forecast-sized backfill in the batch queue")
		bfNodes    = flag.Int("backfill-nodes", 0, "virtual cluster size for the backfill ablation (0 = the A9 default, 8)")
		flAblation = flag.Bool("failure-ablation", false, "run the failure ablation (A10): the canonical chaos schedule with self-healing armed vs a fragile hierarchy, against a zero-failure reference")
		flDetect   = flag.Float64("failure-detect", 0, "failure-ablation detection delay, seconds (0 = the default, 90 — three missed heartbeats)")
		wfAblation = flag.Bool("workflow-ablation", false, "run the workflow ablation (A11): zoom campaigns as Figure 4 DAGs, topo-order round-robin vs forecast-critical-path scheduling, honest and under CanonicalSkew")
		wfRuns     = flag.Int("workflow-campaigns", 0, "back-to-back campaigns per workflow-ablation arm (0 = the A11 default, 5; early ones train the models)")
		wfParallel = flag.Int("workflow-parallel", 0, "in-flight node cap per workflow campaign (0 = the A11 default, 3)")
		fedAblate  = flag.Bool("federation-ablation", false, "run the federation ablation (A12): the same saturating submission stream against one MA vs N federated MAs with sticky routing and peer forwarding")
		fedMAs     = flag.Int("federation-mas", 0, "federated arm width for the federation ablation (0 = the A12 default, 4)")
		fedRate    = flag.Float64("federation-rate", 0, "open-loop arrival rate of the federation ablation stream, requests/s (0 = the default, 100)")
		daAblation = flag.Bool("data-ablation", false, "run the data ablation (A13): data-blind vs transfer-priced placement on a persistent-data parameter sweep")
		daSizeMB   = flag.Float64("data-size-mb", 0, "snapshot size for the data ablation, MB (0 = the A13 default, 3000)")
		daSets     = flag.Int("data-sets", 0, "distinct snapshots in the data ablation sweep (0 = the A13 default, 6)")
		rounds     = flag.Int("rounds", 2, "campaigns per trained arm in the ablations (rounds-1 train, the last measures)")
	)
	flag.Parse()
	if !*fig5 && !*fig6 && !*totals && !*compare && !*sweep && !*fcAblation && !*dpAblation && !*wsAblation && !*rpAblation && !*bfAblation && !*flAblation && !*wfAblation && !*fedAblate && !*daAblation {
		*all = true
	}

	run := func(name string) *simgrid.ExperimentResult {
		pol, err := scheduler.ByName(name, *seed)
		if err != nil {
			log.Fatal(err)
		}
		cfg := simgrid.DefaultExperiment(pol)
		cfg.NRequests = *requests
		cfg.Seed = *seed
		cfg.BatchMode = *batch || *batchFc // forecast-sized walltimes need reservations on
		cfg.BatchGrantS = *grantS
		cfg.BatchFixedWallS = *batchWall
		cfg.BatchForecast = *batchFc
		cfg.ArrivalGapS = *arrivalGap
		cfg.Forecast = *forecast || *batchFc || name == "forecastaware" || name == "contentionaware"
		res, err := simgrid.RunExperiment(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	if *sweep {
		mk := func() scheduler.Policy {
			pol, err := scheduler.ByName(*policyName, *seed)
			if err != nil {
				log.Fatal(err)
			}
			return pol
		}
		fmt.Printf("Sweep A4a — makespan vs SeD count (%d requests, policy=%s):\n", *requests, *policyName)
		points, err := simgrid.SweepSeDs(mk, []int{1, 2, 3, 4}, *requests)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("  SeDs  makespan_h  speedup  mean_latency_h")
		for _, p := range points {
			fmt.Printf("  %4d  %10.2f  %7.1f  %14.2f\n", p.SeDs, p.MakespanHours, p.Speedup, p.MeanLatencyMS/3.6e6)
		}
		fmt.Printf("\nSweep A4b — makespan vs campaign size (11 SeDs, policy=%s):\n", *policyName)
		points, err = simgrid.SweepRequests(mk, []int{25, 50, 100, 200, 400})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("  reqs  makespan_h  speedup  mean_latency_h")
		for _, p := range points {
			fmt.Printf("  %4d  %10.2f  %7.1f  %14.2f\n", p.Requests, p.MakespanHours, p.Speedup, p.MeanLatencyMS/3.6e6)
		}
		return
	}

	if *fcAblation {
		fmt.Println("Ablation A5 — CoRI forecasting vs static scheduling (paper §8 future work):")
		res, err := simgrid.RunForecastAblation(func() simgrid.ExperimentConfig {
			cfg := simgrid.DefaultExperiment(nil)
			cfg.NRequests = *requests
			cfg.Seed = *seed
			cfg.BatchMode = *batch
			cfg.BatchGrantS = *grantS
			cfg.BatchFixedWallS = *batchWall
			cfg.ArrivalGapS = *arrivalGap
			return cfg
		}, *rounds)
		if err != nil {
			log.Fatal(err)
		}
		row := func(name string, r *simgrid.ExperimentResult) {
			fmt.Printf("  %-20s makespan %s  (%.2fh)  speedup %.1fx\n",
				name, simgrid.Hours(r.TotalS), r.MakespanHours(), r.SequentialS/r.TotalS)
		}
		fmt.Println(" honest platform (advertised power = delivered power):")
		row("roundrobin", res.RoundRobin)
		row("poweraware", res.PowerAware)
		row("forecast (cold)", res.ForecastCold)
		row("forecast (trained)", res.ForecastTrained)
		row("contention (trained)", res.Contention)
		fmt.Printf("  → plug-in scheduling saves %.1f%% over round-robin (mostly the static A1 effect)\n",
			res.ImprovementPct())
		fmt.Println(" miscalibrated platform (Nancy delivers 35%, Sophia1 50% of advertised):")
		row("roundrobin", res.SkewRoundRobin)
		row("poweraware (misled)", res.SkewPowerAware)
		row("forecast (trained)", res.SkewTrained)
		fmt.Printf("  → measuring speed instead of trusting it saves %.1f%% over the misled static plug-in\n",
			res.ForecastGainPct())
		return
	}

	if *dpAblation {
		fmt.Println("Ablation A6 — static planning + fixed grants vs measured-power planning + forecast-sized reservations:")
		res, err := simgrid.RunDeployAblation(func() simgrid.ExperimentConfig {
			cfg := simgrid.DefaultExperiment(nil)
			cfg.NRequests = *requests
			cfg.Seed = *seed
			cfg.BatchGrantS = *grantS
			cfg.BatchFixedWallS = *batchWall
			cfg.ArrivalGapS = *arrivalGap
			return cfg
		}, *rounds)
		if err != nil {
			log.Fatal(err)
		}
		row := func(name string, r *simgrid.ExperimentResult) {
			fmt.Printf("  %-28s makespan %s (%.2fh)  kills %3d  requeues %3d  idle pad %6.1fh  wasted %6.1fh\n",
				name, simgrid.Hours(r.TotalS), r.MakespanHours(),
				r.Batch.OverrunKills, r.Batch.Requeues,
				r.Batch.IdlePadS/3600, r.Batch.WastedS/3600)
		}
		row("honest / static plan", res.Honest)
		fmt.Println(" miscalibrated platform (Nancy delivers 35%, Sophia1 50% of advertised):")
		row("static plan + fixed grants", res.Static)
		row("measured plan + forecasts", res.Trained)
		fmt.Printf("  → closing the forecast loop saves %.1f%% makespan and %.1f%% overrun+pad cost\n",
			res.MakespanGainPct(), res.ReservationGainPct())
		if len(res.Changes) > 0 {
			fmt.Printf("  replanned placements (after %d training round(s)):\n", res.Rounds-1)
			for _, c := range res.Changes {
				fmt.Printf("    %s\n", c)
			}
		}
		return
	}

	if *wsAblation {
		fmt.Println("Ablation A7 — cold vs warm-started SeD join on a characterized cluster:")
		res, err := simgrid.RunWarmStartAblation(func() simgrid.ExperimentConfig {
			cfg := simgrid.DefaultExperiment(nil)
			cfg.NRequests = *requests
			cfg.Seed = *seed
			cfg.ArrivalGapS = *arrivalGap
			return cfg
		}, *joinSeD, *rounds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf(" %s joins cluster %q after %d training round(s); prior services:\n", res.JoinSeD, res.Cluster, res.Rounds-1)
		for _, p := range res.Prior {
			fmt.Printf("   %-12s %d merged samples, confidence %.2f, delivered %.1f GFlops\n",
				p.Service, p.Samples, p.Confidence, p.DeliveredGFlops())
		}
		row := func(name string, r *simgrid.ExperimentResult, j simgrid.JoinStats) {
			fmt.Printf("  %-12s makespan %s (%.2fh)  join solves %3d  mean mispredict %5.1f%%  solves before trusted forecast %d\n",
				name, simgrid.Hours(r.TotalS), r.MakespanHours(), j.Solves, j.MeanMispredictPct, j.SolvesToForecast)
		}
		row("cold join", res.Cold, res.ColdJoin)
		row("warm join", res.Warm, res.WarmJoin)
		fmt.Printf("  → the gossiped prior removes %.1f points of forecast error and saves %.1f%% makespan\n",
			res.MispredictDeltaPts(), res.MakespanDeltaPct())
		return
	}

	if *rpAblation {
		fmt.Println("Ablation A8 — frozen static plan vs live replanning+migration vs offline replan restart:")
		res, err := simgrid.RunReplanAblation(func() simgrid.ExperimentConfig {
			cfg := simgrid.DefaultExperiment(nil)
			cfg.NRequests = *requests
			cfg.Seed = *seed
			cfg.ArrivalGapS = *arrivalGap
			return cfg
		}, simgrid.ReplanAblationConfig{Rounds: *rounds, ReplanIntervalS: *rpInterval})
		if err != nil {
			log.Fatal(err)
		}
		c := res.Config
		fmt.Printf(" drifting/miscalibrated platform: CanonicalSkew, plus %s drifting to %.0f%% at %s;\n",
			c.DriftSeD, 100*c.DriftFactor, simgrid.Hours(c.DriftAtS))
		fmt.Printf(" %s misdeployed under %s at bring-up; live arm replans every %s\n",
			c.MisplacedSeD, c.MisplacedParent, simgrid.Hours(c.ReplanIntervalS))
		row := func(name string, r *simgrid.ExperimentResult) {
			fmt.Printf("  %-26s makespan %s (%.2fh)\n", name, simgrid.Hours(r.TotalS), r.MakespanHours())
		}
		row("static plan (frozen)", res.Static)
		row("live replanning", res.Live)
		row("offline replan (restart)", res.Offline)
		fmt.Printf("  → live replanning saves %.1f%% makespan with no restart — %.1f%% of the offline-replan win (%.1f%%)\n",
			res.LiveGainPct(), res.RecoveryPct(), res.OfflineGainPct())
		for _, ev := range res.Live.Replans {
			if ev.PowerUpdates == 0 && len(ev.Moved) == 0 {
				continue
			}
			fmt.Printf("  replan @%6s: %d power update(s), migrated %v\n",
				simgrid.Hours(ev.AtS), ev.PowerUpdates, ev.Moved)
		}
		if ok, why := res.FirstPostMoveForecastTrusted(); ok {
			fmt.Println("  every migrated SeD kept a trusted model through its move (snapshot travels with the reparent)")
		} else {
			fmt.Printf("  WARNING: %s\n", why)
		}
		if len(res.Changes) > 0 {
			fmt.Printf("  offline replan placements (after %d training round(s)):\n", res.Config.Rounds-1)
			for _, ch := range res.Changes {
				fmt.Printf("    %s\n", ch)
			}
		}
		return
	}

	if *bfAblation {
		fmt.Println("Ablation A9 — queue-wait cost of walltime sizing under conservative backfilling:")
		res, err := simgrid.RunBackfillAblation(func() simgrid.ExperimentConfig {
			cfg := simgrid.DefaultExperiment(nil)
			cfg.NRequests = *requests
			cfg.Seed = *seed
			cfg.ArrivalGapS = *arrivalGap
			return cfg
		}, simgrid.BackfillAblationConfig{Rounds: *rounds, Nodes: *bfNodes})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf(" %d jobs from the measured CanonicalSkew campaign packed onto a %d-node cluster\n", res.Jobs, res.Nodes)
		row := func(a simgrid.BackfillArm) {
			fmt.Printf("  %-24s mean wait %s  max wait %s  makespan %s  sized walltimes %3d  backfilled %3d (%d of them sized)  kills %d\n",
				a.Name, simgrid.Hours(a.MeanWaitS), simgrid.Hours(a.MaxWaitS), simgrid.Hours(a.MakespanS),
				a.ForecastSized, a.Backfilled, a.SizedBackfills, a.OverrunKills)
		}
		row(res.NoBackfill)
		row(res.FixedGrant)
		row(res.Forecast)
		fmt.Printf("  → forecast-sized walltimes cut mean queue wait %.1f%% vs fixed-grant backfill (%.1f%% vs no backfill) and makespan %.1f%%\n",
			res.WaitGainPct(), res.BackfillValuePct(), res.MakespanGainPct())
		return
	}

	if *flAblation {
		fmt.Println("Ablation A10 — failure injection: self-healing hierarchy vs fragile hierarchy:")
		res, err := simgrid.RunFailureAblation(func() simgrid.ExperimentConfig {
			cfg := simgrid.DefaultExperiment(nil)
			cfg.NRequests = *requests
			cfg.Seed = *seed
			cfg.ArrivalGapS = *arrivalGap
			return cfg
		}, simgrid.FailureAblationConfig{DetectS: *flDetect})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(" canonical schedule: crash+restart, partition+heal, in-flight losses, one permanent node death, one tail outage")
		row := func(name string, r *simgrid.ExperimentResult) {
			fmt.Printf("  %-22s makespan %s (%.2fh)  solves lost %2d  requeued %2d\n",
				name, simgrid.Hours(r.TotalS), r.MakespanHours(), r.SolvesLost, r.Requeued)
		}
		row("no failures", res.Healthy)
		row("failures, self-healing", res.Healing)
		row("failures, fragile", res.Fragile)
		fmt.Printf("  → self-healing saves %.1f%% makespan and %d solves vs the fragile hierarchy, costing %.1f%% over the failure-free run\n",
			res.MakespanGainPct(), res.SolvesSaved(), res.HealingOverheadPct())
		if ok, why := res.RestartsWarm(); ok {
			fmt.Println("  every healed restart rejoined with a trusted forecast model (snapshot warm restore)")
		} else {
			fmt.Printf("  WARNING: %s\n", why)
		}
		for _, e := range res.Healing.FailureLog {
			fmt.Printf("  %8s  %-10s %-12s %s\n", simgrid.Hours(e.AtS), e.Node, e.Kind, e.Detail)
		}
		return
	}

	if *wfAblation {
		fmt.Println("Ablation A11 — zoom campaigns as workflow DAGs: topo round-robin vs forecast critical-path:")
		res, err := simgrid.RunWorkflowAblation(simgrid.WorkflowAblationConfig{
			Campaigns:   *wfRuns,
			MaxParallel: *wfParallel,
		})
		if err != nil {
			log.Fatal(err)
		}
		res.Print(os.Stdout)
		fmt.Printf("  → pricing stages from measured models saves %.1f%% of the trained campaign under CanonicalSkew\n",
			res.SkewGainPct())
		return
	}

	if *fedAblate {
		fmt.Println("Ablation A12 — multi-MA federation: single Master Agent vs federated mesh:")
		res, err := simgrid.RunFederationAblation(simgrid.FederationAblationConfig{
			MAs:  *fedMAs,
			Base: simgrid.FederationConfig{ArrivalRateHz: *fedRate},
		})
		if err != nil {
			log.Fatal(err)
		}
		cfg := res.Federated.Config
		fmt.Printf(" stream: %d requests over %d services at %.0f/s; finding costs %.0fms serial per MA, misses %.0fms, forward RTT %.0fms, %.0f%% of services foreign\n",
			cfg.Requests, cfg.Services, cfg.ArrivalRateHz, cfg.SubmitCostMS, cfg.MissCostMS, cfg.ForwardRTTMS, 100*cfg.ForeignFrac)
		row := func(name string, r *simgrid.FederationResult) {
			fmt.Printf("  %-18s throughput %6.1f/s  p99 submit latency %8.3fs  mean %7.3fs  span %6.1fs  forwards %d\n",
				name, r.ThroughputPerSec(), r.P99LatencyS(), r.MeanLatencyS(), r.TotalS, r.Forwards)
		}
		row("1 MA", res.Single)
		row(fmt.Sprintf("%d federated MAs", cfg.MAs), res.Federated)
		fmt.Printf("  → federation lifts saturation throughput %.2fx and cuts p99 submit latency %.1fx under the same stream\n",
			res.ThroughputGainX(), res.P99GainX())
		return
	}

	if *daAblation {
		fmt.Println("Ablation A13 — data-aware scheduling: transfer-priced vs data-blind placement:")
		res := simgrid.RunDataAblation(simgrid.DataAblationConfig{
			DatasetMB: *daSizeMB,
			Datasets:  *daSets,
			Seed:      *seed,
		})
		res.Print(os.Stdout)
		fmt.Printf("  → pricing input transfers from the trained pair models saves %.1f%% makespan and %.1f%% of the bytes moved\n",
			res.MakespanGainPct(), res.BytesSavedPct())
		return
	}

	if *compare {
		fmt.Println("Ablation A1 — default equal distribution vs the plug-in scheduler (paper §8):")
		for _, name := range []string{"roundrobin", "random", "mct", "poweraware", "forecastaware", "contentionaware"} {
			res := run(name)
			fmt.Printf("  %-15s makespan %s  (%.2fh)  speedup %.1fx\n",
				name, simgrid.Hours(res.TotalS), res.MakespanHours(),
				res.SequentialS/res.TotalS)
		}
		rr, pa := run("roundrobin"), run("poweraware")
		fmt.Printf("  plug-in scheduler saves %s (%.1f%%)\n",
			simgrid.Hours(rr.TotalS-pa.TotalS), 100*(rr.TotalS-pa.TotalS)/rr.TotalS)
		return
	}

	res := run(*policyName)
	if *all || *fig5 {
		res.PrintGantt(os.Stdout, 96)
		fmt.Println()
		res.PrintFig5(os.Stdout)
		fmt.Println()
	}
	if *all || *fig6 {
		res.PrintFig6(os.Stdout)
		fmt.Println()
	}
	if *all || *totals {
		res.PrintTotals(os.Stdout)
	}
}
