package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/logsvc"
	"repro/internal/rpc"
)

// serveBus exposes a bus over the rpc transport and returns its address —
// the shape dietmon attaches to in a real deployment.
func serveBus(t *testing.T, bus *logsvc.Bus) string {
	t.Helper()
	srv := rpc.NewServer()
	srv.Register(logsvc.ObjectName, bus.Handler())
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

func publishSampleTrace(bus *logsvc.Bus) {
	bus.Publish("SeD:Nancy1", "start", "booted")
	for i, kind := range []string{logsvc.KindSubmit, logsvc.KindSchedule,
		logsvc.KindQueue, logsvc.KindSolve, logsvc.KindComplete} {
		bus.PublishSpan(logsvc.Span{
			RequestID: "c1-1", Component: "SeD:Nancy1", Kind: kind,
			Service: "ramsesZoom2", StartNanos: int64(i) * 1000, EndNanos: int64(i+1) * 1000,
		})
	}
}

// TestMonitorAttachesAndExportsTrace is the dietmon acceptance test: the
// collector attaches to a live rpc-served bus, tails it incrementally, and
// the exported chrome://tracing JSON round-trips.
func TestMonitorAttachesAndExportsTrace(t *testing.T) {
	bus := logsvc.New(256)
	publishSampleTrace(bus)
	addr := serveBus(t, bus)

	col := &collector{src: &logsvc.Remote{Addr: addr}}
	n, err := col.poll()
	if err != nil {
		t.Fatalf("attach poll: %v", err)
	}
	if n != 6 {
		t.Fatalf("first poll fetched %d events, want 6", n)
	}
	// A second poll is incremental: nothing new yet, then only the new event.
	if n, _ := col.poll(); n != 0 {
		t.Fatalf("idle poll fetched %d events, want 0", n)
	}
	bus.Publish("MA1", "evict", "LA-Lyon missed 3 heartbeats")
	if n, _ := col.poll(); n != 1 {
		t.Fatalf("incremental poll fetched %d events, want exactly the new one", n)
	}

	line := countsLine(col.events)
	for _, want := range []string{"solve 1", "complete 1", "evict 1"} {
		if !strings.Contains(line, want) {
			t.Errorf("counts line %q missing %q", line, want)
		}
	}
	if st, err := col.src.Stats(); err != nil || st.Published != 7 {
		t.Errorf("remote stats %+v err %v, want 7 published", st, err)
	}

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := writeTrace(path, col.events); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := logsvc.ReadChromeTrace(f)
	if err != nil {
		t.Fatalf("exported trace does not parse: %v", err)
	}
	if len(back) < 6 {
		t.Fatalf("trace round-trip kept %d events, want >= 6", len(back))
	}
	names := map[string]bool{}
	for _, te := range back {
		names[te.Name] = true
	}
	for _, want := range []string{logsvc.KindSolve, logsvc.KindComplete} {
		if !names[want] {
			t.Errorf("round-tripped trace missing %q events (have %v)", want, names)
		}
	}
}

func TestRenderGantt(t *testing.T) {
	bus := logsvc.New(64)
	publishSampleTrace(bus)
	var sb strings.Builder
	renderGantt(&sb, bus.History(), 40)
	out := sb.String()
	for _, want := range []string{"c1-1", logsvc.KindSolve, "SeD:Nancy1", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("gantt output missing %q:\n%s", want, out)
		}
	}
	var empty strings.Builder
	renderGantt(&empty, nil, 40)
	if !strings.Contains(empty.String(), "no request spans") {
		t.Errorf("empty gantt output %q", empty.String())
	}
}
