// Command dietmon is the VizDIET analog of the paper's monitoring setup: it
// attaches to a running LogService bus (see dietagent -with-logservice),
// tails the event stream, renders live per-kind counts and a Gantt of the
// request spans, and can export the whole trace as chrome://tracing JSON.
//
//	dietmon -logservice host:9002                 # live tail until interrupted
//	dietmon -logservice host:9002 -once -gantt    # snapshot + Gantt, then exit
//	dietmon -logservice host:9002 -for 30s -trace trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/logsvc"
)

// eventSource is the slice of the bus a monitor needs; *logsvc.Remote
// implements it over rpc, *logsvc.Bus in-process (tests).
type eventSource interface {
	HistorySince(since int64) ([]logsvc.Event, error)
	Stats() (logsvc.BusStats, error)
}

// collector incrementally tails a bus through HistorySince polling — the
// subscription model that works over the rpc transport.
type collector struct {
	src    eventSource
	since  int64
	events []logsvc.Event
}

// poll fetches events newer than the last seen sequence number and returns
// how many arrived.
func (c *collector) poll() (int, error) {
	evs, err := c.src.HistorySince(c.since)
	if err != nil {
		return 0, err
	}
	if len(evs) > 0 {
		c.since = evs[len(evs)-1].Seq
		c.events = append(c.events, evs...)
	}
	return len(evs), nil
}

// countsLine summarises the collected events as "kind n" pairs, sorted by
// count descending then name, e.g. "solve 102 | queue 102 | evict 1".
func countsLine(events []logsvc.Event) string {
	counts := map[string]int{}
	for _, ev := range events {
		counts[ev.Kind]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool {
		if counts[kinds[i]] != counts[kinds[j]] {
			return counts[kinds[i]] > counts[kinds[j]]
		}
		return kinds[i] < kinds[j]
	})
	parts := make([]string, len(kinds))
	for i, k := range kinds {
		parts[i] = fmt.Sprintf("%s %d", k, counts[k])
	}
	return strings.Join(parts, " | ")
}

// renderGantt draws the request spans as one bar per span, grouped by
// request and ordered by start time — a textual take on VizDIET's Gantt
// view. Width is the bar area in columns; the time axis spans the whole
// trace.
func renderGantt(w io.Writer, events []logsvc.Event, width int) {
	if width < 10 {
		width = 10
	}
	groups := logsvc.SpansByRequest(events)
	if len(groups) == 0 {
		fmt.Fprintln(w, "no request spans recorded")
		return
	}
	ids := make([]string, 0, len(groups))
	minT, maxT := int64(1<<62), int64(-1<<62)
	for id, spans := range groups {
		ids = append(ids, id)
		for _, sp := range spans {
			if sp.StartNanos < minT {
				minT = sp.StartNanos
			}
			if sp.EndNanos > maxT {
				maxT = sp.EndNanos
			}
		}
	}
	// Order requests by the start of their earliest span.
	sort.Slice(ids, func(i, j int) bool {
		return groups[ids[i]][0].StartNanos < groups[ids[j]][0].StartNanos
	})
	span := maxT - minT
	if span <= 0 {
		span = 1
	}
	col := func(t int64) int {
		c := int(int64(width-1) * (t - minT) / span)
		if c < 0 {
			c = 0
		}
		if c > width-1 {
			c = width - 1
		}
		return c
	}
	fmt.Fprintf(w, "trace window %s, %d requests\n",
		time.Duration(maxT-minT), len(ids))
	for _, id := range ids {
		fmt.Fprintf(w, "%s\n", id)
		for _, sp := range groups[id] {
			bar := make([]byte, width)
			for i := range bar {
				bar[i] = ' '
			}
			lo, hi := col(sp.StartNanos), col(sp.EndNanos)
			for i := lo; i <= hi; i++ {
				bar[i] = '#'
			}
			fmt.Fprintf(w, "  %-14s %-18s |%s| %s\n",
				sp.Kind, sp.Component, bar, time.Duration(sp.DurNanos()))
		}
	}
}

// writeTrace exports the collected events as chrome://tracing JSON.
func writeTrace(path string, events []logsvc.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := logsvc.WriteChromeTrace(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	var (
		addr      = flag.String("logservice", "", "LogService bus address to attach to (required)")
		poll      = flag.Duration("poll", time.Second, "poll interval for new events")
		runFor    = flag.Duration("for", 0, "detach after this long (0 = until interrupted)")
		once      = flag.Bool("once", false, "fetch the current history once, summarise, exit")
		gantt     = flag.Bool("gantt", false, "render a Gantt of the request spans on exit")
		ganttCols = flag.Int("gantt-width", 72, "Gantt bar area width, columns")
		traceOut  = flag.String("trace", "", "write the trace as chrome://tracing JSON to this file on exit")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "-logservice is required")
		os.Exit(2)
	}
	col := &collector{src: &logsvc.Remote{Addr: *addr}}
	if _, err := col.poll(); err != nil {
		log.Fatalf("attaching to LogService at %s: %v", *addr, err)
	}
	log.Printf("attached to %s: %d retained events", *addr, len(col.events))

	if !*once {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		var deadline <-chan time.Time
		if *runFor > 0 {
			deadline = time.After(*runFor)
		}
		ticker := time.NewTicker(*poll)
	tail:
		for {
			select {
			case <-ticker.C:
				n, err := col.poll()
				if err != nil {
					log.Printf("poll: %v", err)
					continue
				}
				if n > 0 {
					log.Printf("%d events (+%d) | %s", len(col.events), n, countsLine(col.events))
				}
			case <-sig:
				break tail
			case <-deadline:
				break tail
			}
		}
		ticker.Stop()
	}

	fmt.Printf("events: %d | %s\n", len(col.events), countsLine(col.events))
	if st, err := col.src.Stats(); err == nil {
		fmt.Printf("bus: %d published, %d dropped, %d subscribers, %d retained\n",
			st.Published, st.Dropped, st.Subscribers, st.HistoryLen)
	}
	if *gantt {
		renderGantt(os.Stdout, col.events, *ganttCols)
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, col.events); err != nil {
			log.Fatalf("writing trace: %v", err)
		}
		fmt.Printf("chrome trace written to %s (open via chrome://tracing or ui.perfetto.dev)\n", *traceOut)
	}
}
