package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a minimal repository under a temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for path, content := range files {
		full := filepath.Join(root, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const goodCLI = "# CLI\n\n### `cmd/tool`\n\n| `-alpha` | first |\n| `-beta-gamma` | second |\n"

const toolMain = `package main

import "flag"

func main() {
	flag.String("alpha", "", "")
	flag.Duration("beta-gamma", 0, "")
	flag.Parse()
}
`

func TestCheckCleanTreePasses(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md":        "see [the CLI](docs/cli.md) and [tool](cmd/tool/main.go)\n",
		"docs/cli.md":      goodCLI,
		"cmd/tool/main.go": toolMain,
	})
	problems, err := Check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("clean tree must pass, got %v", problems)
	}
}

func TestCheckFlagsCatchesDrift(t *testing.T) {
	// cli.md documents a flag the binary dropped and misses one it gained.
	root := writeTree(t, map[string]string{
		"docs/cli.md": "### `cmd/tool`\n\n| `-alpha` | kept |\n| `-gone` | removed |\n",
		"cmd/tool/main.go": `package main

import "flag"

func main() {
	flag.String("alpha", "", "")
	flag.Bool("added", false, "")
}
`,
	})
	problems, err := CheckCLIDocs(root)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"missing flag `-added`", "documents `-gone`"}
	for _, w := range want {
		found := false
		for _, p := range problems {
			if strings.Contains(p, w) {
				found = true
			}
		}
		if !found {
			t.Fatalf("problems %v must include %q", problems, w)
		}
	}
	if len(problems) != 2 {
		t.Fatalf("exactly two problems expected, got %v", problems)
	}
}

func TestCheckFlagsSeesFlagSets(t *testing.T) {
	// Flags registered on a named FlagSet count too (cmd/benchdiff's style).
	root := writeTree(t, map[string]string{
		"docs/cli.md": "### `cmd/tool`\n",
		"cmd/tool/main.go": `package main

import "flag"

func main() {
	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	fs.Float64("threshold", 25, "")
}
`,
	})
	problems, err := CheckCLIDocs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "missing flag `-threshold`") {
		t.Fatalf("FlagSet flag must be required in the docs, got %v", problems)
	}
}

func TestCheckMissingSection(t *testing.T) {
	root := writeTree(t, map[string]string{
		"docs/cli.md":         "# CLI\n",
		"cmd/newtool/main.go": "package main\n\nfunc main() {}\n",
	})
	problems, err := CheckCLIDocs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "no section for cmd/newtool") {
		t.Fatalf("missing section must be reported, got %v", problems)
	}
}

func TestCheckLinksCatchesBrokenRelative(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md": "[ok](docs/cli.md) [broken](docs/missing.md) " +
			"[external](https://example.org/x.md) [anchor](#local) [frag](docs/cli.md#sec)\n",
		"docs/cli.md": "# CLI\n",
	})
	problems, err := CheckLinks(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], `broken relative link "docs/missing.md"`) {
		t.Fatalf("exactly the broken link must be reported, got %v", problems)
	}
}

func TestCheckLinksSkipsSnippets(t *testing.T) {
	root := writeTree(t, map[string]string{
		"SNIPPETS.md": "[quoted](design/elsewhere.md)\n",
		"docs/cli.md": "# CLI\n",
	})
	problems, err := CheckLinks(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("SNIPPETS.md quotes other repos and must be skipped, got %v", problems)
	}
}

func TestCheckAblationIndexFlagsMissingRow(t *testing.T) {
	// A2 is indexed, A10 is implemented but has no row; test files and
	// markers outside internal/simgrid never count.
	root := writeTree(t, map[string]string{
		"README.md": "| Ablation | Question |\n|---|---|\n| A2 | indexed |\n",
		"internal/simgrid/a.go": "package simgrid\n\n// RunX is the x ablation (A2): indexed.\n" +
			"// RunY is the y ablation (A10): not indexed.\n",
		"internal/simgrid/a_test.go": "package simgrid\n\n// the z ablation (A99) in a test file\n",
		"internal/other/b.go":        "package other\n\n// the w ablation (A77) outside simgrid\n",
	})
	problems, err := CheckAblationIndex(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "no | A10 | row") {
		t.Fatalf("exactly the unindexed A10 must be reported, got %v", problems)
	}
	if !strings.Contains(problems[0], "internal/simgrid/a.go") {
		t.Fatalf("the problem must name the implementing file, got %v", problems)
	}
}

func TestCheckAblationIndexOrdersNumerically(t *testing.T) {
	// With several missing rows the report is stable and numeric: A2 before
	// A10, never lexicographic.
	root := writeTree(t, map[string]string{
		"README.md": "no table at all\n",
		"internal/simgrid/a.go": "package simgrid\n\n// the big ablation (A10).\n" +
			"// the small ablation (A2).\n",
	})
	problems, err := CheckAblationIndex(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 2 ||
		!strings.Contains(problems[0], "| A2 |") || !strings.Contains(problems[1], "| A10 |") {
		t.Fatalf("want A2 then A10, got %v", problems)
	}
}

func TestCheckAblationIndexCoversWorkflowAblation(t *testing.T) {
	// The A11 marker in the workflow ablation must demand its README row
	// like every other ablation, and be satisfied once the row exists.
	files := map[string]string{
		"README.md": "| Ablation | Question |\n|---|---|\n| A10 | indexed |\n",
		"internal/simgrid/workflowablation.go": "package simgrid\n\n" +
			"// This file runs the workflow ablation (A11): campaign DAGs.\n",
	}
	problems, err := CheckAblationIndex(writeTree(t, files))
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "no | A11 | row") {
		t.Fatalf("unindexed A11 must be reported, got %v", problems)
	}
	files["README.md"] += "| A11 | workflow campaigns |\n"
	problems, err = CheckAblationIndex(writeTree(t, files))
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("indexed A11 must satisfy the check, got %v", problems)
	}
}

func TestCheckAblationIndexCoversDataAblation(t *testing.T) {
	// Same contract for the A13 marker in the data ablation.
	files := map[string]string{
		"README.md": "| Ablation | Question |\n|---|---|\n| A11 | indexed |\n",
		"internal/simgrid/dataablation.go": "package simgrid\n\n" +
			"// This file runs the data ablation (A13): transfer-priced placement.\n",
	}
	problems, err := CheckAblationIndex(writeTree(t, files))
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "no | A13 | row") {
		t.Fatalf("unindexed A13 must be reported, got %v", problems)
	}
	files["README.md"] += "| A13 | data-aware scheduling |\n"
	problems, err = CheckAblationIndex(writeTree(t, files))
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("indexed A13 must satisfy the check, got %v", problems)
	}
}
