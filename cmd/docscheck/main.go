// Command docscheck is the CI documentation gate. It fails when the docs
// have drifted from the tree:
//
//   - a relative link in any *.md file points at a path that does not exist;
//
//   - a cmd/* binary has no section in docs/cli.md;
//
//   - a flag defined by a cmd/* binary is missing from its docs/cli.md
//     section;
//
//   - a cmd/* section in docs/cli.md documents a flag the binary no longer
//     defines (stale docs);
//
//   - an ablation implemented in internal/simgrid ("... ablation (A<n>)")
//     has no row in README.md's ablation index.
//
//     docscheck            # check the repository rooted at the working dir
//     docscheck -root ../..
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()
	problems, err := Check(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Printf("docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: docs are consistent with the tree")
}

// Check runs every documentation gate over the repository at root and
// returns the problems found (empty = docs are consistent).
func Check(root string) ([]string, error) {
	var problems []string
	links, err := CheckLinks(root)
	if err != nil {
		return nil, err
	}
	problems = append(problems, links...)
	flags, err := CheckCLIDocs(root)
	if err != nil {
		return nil, err
	}
	problems = append(problems, flags...)
	ablations, err := CheckAblationIndex(root)
	if err != nil {
		return nil, err
	}
	return append(problems, ablations...), nil
}

var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// CheckLinks verifies every relative link in every tracked *.md file points
// at an existing file or directory. External schemes and pure-anchor links
// are skipped; a trailing #fragment is ignored.
func CheckLinks(root string) ([]string, error) {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		if d.Name() == "SNIPPETS.md" {
			// Quoted exemplar material from other repositories; its links
			// point into trees we do not carry.
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s: broken relative link %q", rel, m[1]))
			}
		}
		return nil
	})
	return problems, err
}

var (
	// Matches definitions on the global flag package and on named FlagSets
	// (benchdiff builds one for testability).
	flagDefRe = regexp.MustCompile(`\b\w+\.(?:Bool|Duration|Float64|Int|Int64|String|Uint|Uint64)\(\s*"([^"]+)"`)
	flagDocRe = regexp.MustCompile("`-([a-zA-Z0-9][a-zA-Z0-9-]*)`")
	sectionRe = regexp.MustCompile("(?m)^### `?cmd/([a-zA-Z0-9_-]+)`?")
)

// CheckCLIDocs verifies docs/cli.md covers every cmd/* binary: each binary
// has a section, each defined flag appears in that section, and each flag
// the section documents still exists in the binary.
func CheckCLIDocs(root string) ([]string, error) {
	cliPath := filepath.Join(root, "docs", "cli.md")
	data, err := os.ReadFile(cliPath)
	if err != nil {
		return nil, fmt.Errorf("docscheck: %w", err)
	}
	sections := splitSections(string(data))

	dirs, err := filepath.Glob(filepath.Join(root, "cmd", "*"))
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, dir := range dirs {
		info, err := os.Stat(dir)
		if err != nil || !info.IsDir() {
			continue
		}
		name := filepath.Base(dir)
		section, ok := sections[name]
		if !ok {
			problems = append(problems, fmt.Sprintf("docs/cli.md: no section for cmd/%s", name))
			continue
		}
		defined, err := definedFlags(dir)
		if err != nil {
			return nil, err
		}
		for _, f := range sortedKeys(defined) {
			if !strings.Contains(section, "`-"+f+"`") {
				problems = append(problems, fmt.Sprintf("docs/cli.md: cmd/%s section is missing flag `-%s`", name, f))
			}
		}
		for _, m := range flagDocRe.FindAllStringSubmatch(section, -1) {
			if !defined[m[1]] {
				problems = append(problems, fmt.Sprintf("docs/cli.md: cmd/%s section documents `-%s`, which the binary does not define", name, m[1]))
			}
		}
	}
	return problems, nil
}

var ablationMarkRe = regexp.MustCompile(`ablation \((A\d+)\)`)

// CheckAblationIndex verifies README.md's ablation index covers every
// ablation the simulator implements: each "... ablation (A<n>)" marker in a
// non-test internal/simgrid source file must have an "| A<n> |" row in the
// README table. New ablations land with their row or CI fails.
func CheckAblationIndex(root string) ([]string, error) {
	readme, err := os.ReadFile(filepath.Join(root, "README.md"))
	if err != nil {
		return nil, fmt.Errorf("docscheck: %w", err)
	}
	files, err := filepath.Glob(filepath.Join(root, "internal", "simgrid", "*.go"))
	if err != nil {
		return nil, err
	}
	seen := make(map[string]string) // ablation id → first file implementing it
	for _, f := range files {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		rel, _ := filepath.Rel(root, f)
		for _, m := range ablationMarkRe.FindAllStringSubmatch(string(data), -1) {
			if _, dup := seen[m[1]]; !dup {
				seen[m[1]] = rel
			}
		}
	}
	var problems []string
	for _, id := range sortedKeys2(seen) {
		if !strings.Contains(string(readme), "| "+id+" |") {
			problems = append(problems, fmt.Sprintf("README.md: ablation index has no | %s | row (%s implements it)", id, seen[id]))
		}
	}
	return problems, nil
}

// sortedKeys2 sorts ablation ids numerically (A2 before A10).
func sortedKeys2(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return out[i] < out[j]
	})
	return out
}

// splitSections maps each "### cmd/<name>" heading in cli.md to the text of
// its section (up to the next ### or ## heading).
func splitSections(doc string) map[string]string {
	out := make(map[string]string)
	idx := sectionRe.FindAllStringSubmatchIndex(doc, -1)
	for i, m := range idx {
		name := doc[m[2]:m[3]]
		end := len(doc)
		if i+1 < len(idx) {
			end = idx[i+1][0]
		}
		body := doc[m[1]:end]
		// A "## ..." heading also ends the section.
		if j := strings.Index(body, "\n## "); j >= 0 {
			body = body[:j]
		}
		out[name] = body
	}
	return out
}

// definedFlags collects the flag names a cmd/* package defines.
func definedFlags(dir string) (map[string]bool, error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	out := make(map[string]bool)
	for _, f := range files {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		for _, m := range flagDefRe.FindAllStringSubmatch(string(data), -1) {
			out[m[1]] = true
		}
	}
	return out, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
