// Command grafic generates cosmological initial conditions, like the
// (modified) GRAFIC code of the paper: single-level Gaussian random fields
// or nested multi-level "Russian doll" boxes for zoom re-simulations. It
// writes the overdensity field in the GRAFIC Fortran format plus the
// particle set as a RAMSES snapshot.
//
//	grafic -n 64 -box 100 -astart 0.05 -o ics/           # single level
//	grafic -n 32 -levels 3 -cx 0.5 -cy 0.5 -cz 0.5 -o z/  # zoom
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"

	"repro/internal/cosmo"
	"repro/internal/grafic"
	"repro/internal/ramses"
)

func main() {
	var (
		n      = flag.Int("n", 32, "grid points per axis (power of two)")
		box    = flag.Float64("box", 100, "box size, Mpc/h")
		astart = flag.Float64("astart", 0.05, "starting expansion factor")
		seed   = flag.Int64("seed", 42, "white-noise seed")
		levels = flag.Int("levels", 1, "total nested levels (1 = standard single level)")
		cx     = flag.Float64("cx", 0.5, "zoom centre x, box units")
		cy     = flag.Float64("cy", 0.5, "zoom centre y, box units")
		cz     = flag.Float64("cz", 0.5, "zoom centre z, box units")
		out    = flag.String("o", "ics", "output directory")
	)
	flag.Parse()

	gen, err := grafic.New(cosmo.WMAP3(), *seed)
	if err != nil {
		log.Fatal(err)
	}
	var ics *grafic.ICs
	if *levels > 1 {
		ics, err = gen.MultiLevel(*n, *box, *astart, [3]float64{*cx, *cy, *cz}, *levels)
	} else {
		ics, err = gen.SingleLevel(*n, *box, *astart)
	}
	if err != nil {
		log.Fatal(err)
	}

	deltaPath := filepath.Join(*out, "ic_deltab")
	if err := grafic.WriteDeltaFile(deltaPath, ics); err != nil {
		log.Fatal(err)
	}
	snap := &ramses.Snapshot{A: ics.Astart, Box: ics.Box, Parts: ics.Parts}
	partPath, err := ramses.SaveSnapshot(*out, 0, snap)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("initial conditions: %d levels, %d particles, a=%g\n",
		len(ics.Levels), len(ics.Parts), ics.Astart)
	for _, lvl := range ics.Levels {
		fmt.Printf("  level %d: %d^3 grid, box %.2f Mpc/h, dx %.4f Mpc/h, origin %v\n",
			lvl.Index, lvl.N, lvl.BoxSize, lvl.Dx, lvl.Origin)
	}
	fmt.Printf("wrote %s (GRAFIC field) and %s (particles)\n", deltaPath, partPath)
}
