// Package repro holds the benchmark harness that regenerates every table and
// figure of the paper's evaluation (§6), one Benchmark per artifact:
//
//	BenchmarkFig2DensitySequence  — Figure 2: projected density time sequence
//	BenchmarkFig3ZoomResimulation — Figure 3: zoom re-simulation of a halo
//	BenchmarkFig4Workflow         — Figure 4: the full service workflow
//	BenchmarkFig5Distribution     — Figure 5: request distribution + per-SeD hours
//	BenchmarkFig6FindLatency      — Figure 6: finding time and latency series
//	BenchmarkTable1Totals         — §6.2 totals: durations, baseline, overhead
//	BenchmarkAblationScheduler    — A1: plug-in scheduler vs equal distribution
//	BenchmarkAblationWorkflow     — A2: workflow engine vs hard-coded pipeline
//	BenchmarkAblationBatch        — A3: OAR-style reservations vs direct fork
//	BenchmarkAblationForecast     — A5: CoRI forecasting vs static scheduling
//
// Figures 5/6 and the totals replay the full Grid'5000 campaign in the
// discrete-event simulator; headline values are exported as benchmark
// metrics, and `go test -bench Fig5 -v` additionally prints the same rows
// the paper plots. Run `go run ./cmd/experiment -all` for the stand-alone
// report.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/galics"
	"repro/internal/halo"
	"repro/internal/mergertree"
	"repro/internal/ramses"
	"repro/internal/scheduler"
	"repro/internal/simgrid"
	"repro/internal/workflow"
)

// benchConfig is the laptop-scale simulation configuration the physics
// benchmarks share.
func benchConfig() ramses.Config {
	cfg := ramses.DefaultConfig()
	cfg.NPart = 16
	cfg.Astart = 0.1
	cfg.Aout = []float64{0.3, 0.55, 0.8, 1.0} // the Figure 2 time sequence
	cfg.StepsPerOutput = 4
	cfg.FoF = halo.Params{LinkingLength: 0.25, MinParticles: 8}
	return cfg
}

// BenchmarkFig2DensitySequence regenerates Figure 2: a periodic-box run with
// snapshots at increasing expansion factors and the projected density field
// of each. The reported metric is the density contrast growth across the
// sequence — the quantity the figure visualises.
func BenchmarkFig2DensitySequence(b *testing.B) {
	cfg := benchConfig()
	var contrastFirst, contrastLast float64
	for i := 0; i < b.N; i++ {
		res, err := ramses.Run(cfg, "")
		if err != nil {
			b.Fatal(err)
		}
		for j, out := range res.Outputs {
			m, err := ramses.ProjectedDensity(out.Snap, cfg.Cosmo, 32, 2)
			if err != nil {
				b.Fatal(err)
			}
			var max float64
			for _, v := range m {
				if v > max {
					max = v
				}
			}
			if j == 0 {
				contrastFirst = max
			}
			contrastLast = max
			if i == 0 {
				b.Logf("a=%.2f  max surface overdensity %.1f", out.A, max)
			}
		}
	}
	b.ReportMetric(contrastFirst, "contrast_first")
	b.ReportMetric(contrastLast, "contrast_last")
	if contrastLast <= contrastFirst {
		b.Fatalf("density contrast must grow through the sequence: %g -> %g", contrastFirst, contrastLast)
	}
}

// BenchmarkFig3ZoomResimulation regenerates Figure 3: a supercluster region
// from the survey run re-simulated with nested boxes at higher resolution.
// Metrics report the resolution gain (particle-mass ratio) in the region.
func BenchmarkFig3ZoomResimulation(b *testing.B) {
	cfg := benchConfig()
	cfg.Aout = []float64{0.5, 1.0}
	var massRatio float64
	for i := 0; i < b.N; i++ {
		p1, err := ramses.Phase1(cfg, "")
		if err != nil {
			b.Fatal(err)
		}
		center := [3]float64{0.5, 0.5, 0.5}
		if len(p1.Catalog.Halos) > 0 {
			center = p1.Catalog.Halos[0].Pos
		}
		p2, err := ramses.Phase2(cfg, center, 2, "")
		if err != nil {
			b.Fatal(err)
		}
		// Resolution contrast: coarsest vs finest particle mass in the box.
		var mMin, mMax float64
		for _, p := range p2.Run.FinalSnapshot().Parts {
			if mMin == 0 || p.Mass < mMin {
				mMin = p.Mass
			}
			if p.Mass > mMax {
				mMax = p.Mass
			}
		}
		massRatio = mMax / mMin
	}
	b.ReportMetric(massRatio, "mass_ratio")
	if massRatio < 7.9 || massRatio > 8.1 {
		b.Fatalf("one nested level must refine particle mass 8x, got %.2f", massRatio)
	}
}

// BenchmarkFig4Workflow regenerates Figure 4: the whole simulation pipeline
// — GRAFIC, RAMSES3d under MPI, HaloMaker per snapshot, TreeMaker,
// GalaxyMaker — executed as the DAG of the paper's workflow document.
func BenchmarkFig4Workflow(b *testing.B) {
	cfg := benchConfig()
	cfg.NCPU = 2
	var galaxies int
	for i := 0; i < b.N; i++ {
		doc := workflow.RamsesZoomDocument(0, len(cfg.Aout))
		dag, err := workflow.FromDocument(doc)
		if err != nil {
			b.Fatal(err)
		}
		var result *ramses.Result
		catalogs := make([]*halo.Catalog, len(cfg.Aout))
		var forest *mergertree.Forest
		var gals *galics.Catalog
		noop := func(*workflow.TaskContext) error { return nil }
		dag.Bind("params", noop)
		dag.Bind("grafic1_first", noop)
		dag.Bind("rollwhitenoise", noop)
		dag.Bind("grafic1_second", noop)
		dag.Bind("mpi_setup", noop)
		dag.Bind("ramses3d", func(*workflow.TaskContext) error {
			var err error
			result, err = ramses.Run(cfg, "")
			return err
		})
		dag.Bind("mpi_stop", noop)
		for s := range cfg.Aout {
			s := s
			dag.Bind(fmt.Sprintf("halomaker_s%d", s+1), func(*workflow.TaskContext) error {
				snap := result.Outputs[s].Snap
				var err error
				catalogs[s], err = halo.FindHalos(snap.Parts, snap.A, snap.Box, cfg.FoF)
				return err
			})
		}
		dag.Bind("treemaker", func(*workflow.TaskContext) error {
			var err error
			forest, err = mergertree.Build(catalogs, mergertree.DefaultParams())
			return err
		})
		dag.Bind("galaxymaker", func(*workflow.TaskContext) error {
			var err error
			gals, err = galics.Run(forest, cfg.Cosmo, galics.DefaultParams())
			return err
		})
		dag.Bind("send_results", noop)
		if rep := dag.Execute(4); rep.Err != nil {
			b.Fatal(rep.Err)
		}
		galaxies = len(gals.Galaxies)
	}
	b.ReportMetric(float64(galaxies), "galaxies")
}

// paperExperiment runs the full-scale campaign in the DES.
func paperExperiment(b *testing.B, policy scheduler.Policy) *simgrid.ExperimentResult {
	b.Helper()
	res, err := simgrid.RunExperiment(simgrid.DefaultExperiment(policy))
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig5Distribution regenerates Figure 5: the Gantt distribution of
// the 100 sub-simulations over the 11 SeDs and the per-SeD total execution
// times, with the paper's Toulouse-vs-Nancy imbalance as metrics.
func BenchmarkFig5Distribution(b *testing.B) {
	var res *simgrid.ExperimentResult
	for i := 0; i < b.N; i++ {
		res = paperExperiment(b, scheduler.NewRoundRobin())
	}
	busy := res.BusyHoursBySeD()
	counts := res.RequestCounts()
	if b.N > 0 {
		for _, s := range res.PerSeD {
			b.Logf("%-11s %2d requests  %6.2f h", s.Name, len(s.Requests), s.BusyHours)
		}
	}
	b.ReportMetric(busy["Toulouse1"], "toulouse_hours") // paper ≈ 15
	b.ReportMetric(busy["Nancy1"], "nancy_hours")       // paper ≈ 10.5
	b.ReportMetric(float64(counts["Lille1"]), "max_requests_per_sed")
}

// BenchmarkFig6FindLatency regenerates Figure 6: per-request finding time
// (flat, ≈ 49.8 ms) and latency (queue-driven growth to ~10⁷ ms).
func BenchmarkFig6FindLatency(b *testing.B) {
	var res *simgrid.ExperimentResult
	for i := 0; i < b.N; i++ {
		res = paperExperiment(b, scheduler.NewRoundRobin())
	}
	var maxLatency float64
	for _, r := range res.Records {
		if r.LatencyMS > maxLatency {
			maxLatency = r.LatencyMS
		}
	}
	if testing.Verbose() {
		for _, r := range res.Records {
			b.Logf("req %3d  find %6.1f ms  latency %12.1f ms", r.ID, r.FindingMS, r.LatencyMS)
		}
	}
	b.ReportMetric(res.MeanFindingMS(), "find_ms")   // paper 49.8
	b.ReportMetric(maxLatency/1e6, "max_latency_Ms") // paper ~50 (×10⁶ ms)
}

// BenchmarkTable1Totals regenerates the §6.2 headline numbers.
func BenchmarkTable1Totals(b *testing.B) {
	var res *simgrid.ExperimentResult
	for i := 0; i < b.N; i++ {
		res = paperExperiment(b, scheduler.NewRoundRobin())
	}
	b.Logf("whole experiment     %s (paper 16h 18min 43s)", simgrid.Hours(res.TotalS))
	b.Logf("phase 1              %s (paper 1h 15min 11s)", simgrid.Hours(res.Phase1.DurationS()))
	b.Logf("phase 2 mean         %s (paper 1h 24min 1s)", simgrid.Hours(res.MeanPhase2S))
	b.Logf("sequential baseline  %s (paper >141h)", simgrid.Hours(res.SequentialS))
	b.ReportMetric(res.MakespanHours(), "makespan_hours")     // paper 16.31
	b.ReportMetric(res.SequentialS/3600, "sequential_hours")  // paper >141
	b.ReportMetric(res.OverheadMS, "overhead_ms_per_request") // paper 70.6
	b.ReportMetric(res.TotalOverhead, "total_overhead_s")     // paper ≈7
	b.ReportMetric(res.SequentialS/res.TotalS, "speedup")     // paper ≈8.7
}

// BenchmarkAblationScheduler measures ablation A1: the §8 plug-in scheduler
// ("to best map the simulations on the available resources according to
// their processing power") against the paper's default equal distribution.
func BenchmarkAblationScheduler(b *testing.B) {
	var rr, pa *simgrid.ExperimentResult
	for i := 0; i < b.N; i++ {
		rr = paperExperiment(b, scheduler.NewRoundRobin())
		pa = paperExperiment(b, scheduler.NewPowerAware())
	}
	b.Logf("roundrobin makespan %s, poweraware %s",
		simgrid.Hours(rr.TotalS), simgrid.Hours(pa.TotalS))
	b.ReportMetric(rr.MakespanHours(), "roundrobin_hours")
	b.ReportMetric(pa.MakespanHours(), "poweraware_hours")
	b.ReportMetric(100*(rr.TotalS-pa.TotalS)/rr.TotalS, "improvement_pct")
	if pa.TotalS >= rr.TotalS {
		b.Fatal("the plug-in scheduler must improve the makespan")
	}
}

// BenchmarkAblationWorkflow measures ablation A2: running the pipeline
// through the workflow engine versus the hard-coded service sequence the
// paper currently uses ("the whole simulation process is hard-coded within
// the server").
func BenchmarkAblationWorkflow(b *testing.B) {
	cfg := benchConfig()
	cfg.Aout = []float64{0.5, 1.0}

	hardcoded := func() error {
		_, err := ramses.Phase2(cfg, [3]float64{0.5, 0.5, 0.5}, 2, "")
		return err
	}
	engine := func() error {
		dag := workflow.New("phase2")
		dag.Add("run", "ramsesZoom2", nil, func(*workflow.TaskContext) error {
			return hardcoded()
		})
		rep := dag.Execute(1)
		return rep.Err
	}

	b.Run("hardcoded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := hardcoded(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("workflow-engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := engine(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationBatch measures ablation A3: routing every solve through
// an OAR-style reservation (the §8 batch integration) versus direct
// execution, at full campaign scale in the DES.
func BenchmarkAblationBatch(b *testing.B) {
	var direct, batched *simgrid.ExperimentResult
	for i := 0; i < b.N; i++ {
		direct = paperExperiment(b, scheduler.NewRoundRobin())
		cfg := simgrid.DefaultExperiment(scheduler.NewRoundRobin())
		cfg.BatchMode = true
		cfg.BatchGrantS = 30
		var err error
		batched, err = simgrid.RunExperiment(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(direct.MakespanHours(), "direct_hours")
	b.ReportMetric(batched.MakespanHours(), "batch_hours")
	b.ReportMetric(batched.TotalS-direct.TotalS, "batch_cost_s")
}

// BenchmarkAblationForecast measures ablation A5: the CoRI-style resource
// forecasting subsystem (internal/cori) feeding the history-aware plug-in
// schedulers, at full campaign scale on the paper's heterogeneous Figure-5
// platform. Reported arms: the paper's round-robin, the static power-aware
// plug-in, forecast-aware with no prior history (cold), and forecast-aware
// after a training campaign (trained).
func BenchmarkAblationForecast(b *testing.B) {
	var res *simgrid.ForecastAblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = simgrid.RunForecastAblation(func() simgrid.ExperimentConfig {
			return simgrid.DefaultExperiment(nil)
		}, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("honest: roundrobin %s, poweraware %s, forecast cold %s, trained %s, contention %s",
		simgrid.Hours(res.RoundRobin.TotalS), simgrid.Hours(res.PowerAware.TotalS),
		simgrid.Hours(res.ForecastCold.TotalS), simgrid.Hours(res.ForecastTrained.TotalS),
		simgrid.Hours(res.Contention.TotalS))
	b.Logf("miscalibrated: roundrobin %s, poweraware %s, forecast trained %s",
		simgrid.Hours(res.SkewRoundRobin.TotalS), simgrid.Hours(res.SkewPowerAware.TotalS),
		simgrid.Hours(res.SkewTrained.TotalS))
	b.ReportMetric(res.RoundRobin.MakespanHours(), "roundrobin_hours")
	b.ReportMetric(res.PowerAware.MakespanHours(), "poweraware_hours")
	b.ReportMetric(res.ForecastCold.MakespanHours(), "forecast_cold_hours")
	b.ReportMetric(res.ForecastTrained.MakespanHours(), "forecast_trained_hours")
	b.ReportMetric(res.Contention.MakespanHours(), "contention_hours")
	b.ReportMetric(res.SkewPowerAware.MakespanHours(), "skew_poweraware_hours")
	b.ReportMetric(res.SkewTrained.MakespanHours(), "skew_forecast_hours")
	b.ReportMetric(res.ImprovementPct(), "improvement_pct")
	b.ReportMetric(res.ForecastGainPct(), "forecast_gain_pct")
	if res.ForecastTrained.TotalS >= res.RoundRobin.TotalS {
		b.Fatal("the forecast-fed plug-in scheduler must improve on round-robin")
	}
	if res.SkewTrained.TotalS >= res.SkewPowerAware.TotalS {
		b.Fatal("on a miscalibrated platform, measured forecasting must beat the misled static plug-in")
	}
}

// BenchmarkMiddlewareOverhead measures the real (not simulated) middleware
// path: an in-process deployment servicing trivial requests, isolating the
// per-call cost of submission + scheduling + transfer the paper bounds at
// ~70 ms on Grid'5000 hardware.
func BenchmarkMiddlewareOverhead(b *testing.B) {
	runMiddlewareOverhead(b)
}

// BenchmarkScalingSweep measures ablation A4: how the campaign scales with
// platform capacity — the paper's deployment grown 1×/2×/4× — reporting the
// makespan at each size.
func BenchmarkScalingSweep(b *testing.B) {
	var points []simgrid.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = simgrid.SweepSeDs(func() scheduler.Policy { return scheduler.NewRoundRobin() },
			[]int{1, 2, 4}, 100)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.Logf("%2d SeDs: makespan %.2f h, speedup %.1f×", p.SeDs, p.MakespanHours, p.Speedup)
	}
	b.ReportMetric(points[0].MakespanHours, "seds11_hours")
	b.ReportMetric(points[1].MakespanHours, "seds22_hours")
	b.ReportMetric(points[2].MakespanHours, "seds44_hours")
	if points[2].MakespanHours >= points[0].MakespanHours {
		b.Fatal("scaling the platform must cut the makespan")
	}
}
