// Package cosmo holds the background cosmology the whole pipeline shares:
// Friedmann expansion history, linear growth of structure, and the CDM matter
// power spectrum used by the GRAFIC initial-conditions generator.
//
// Conventions: distances are comoving Mpc/h, wavenumbers h/Mpc, and the
// Hubble constant enters only through the dimensionless h. Times are in units
// of the Hubble time 1/H0 unless stated otherwise.
package cosmo

import (
	"fmt"
	"math"
)

// Params describes a flat-ish FLRW cosmology plus the primordial spectrum.
type Params struct {
	OmegaM float64 // total matter density today, in units of critical
	OmegaL float64 // cosmological constant density today
	OmegaB float64 // baryon density today (enters the transfer function)
	H      float64 // dimensionless Hubble constant, H0 = 100 h km/s/Mpc
	Sigma8 float64 // rms linear fluctuation in 8 Mpc/h spheres at z=0
	Ns     float64 // primordial spectral index

	ampl float64 // cached P(k) amplitude fixed by Sigma8 (lazily computed)
}

// WMAP3 returns the WMAP 3-year parameters, the data the paper's GRAFIC
// initial conditions were consistent with ("current observational data
// obtained by the WMAP satellite").
func WMAP3() *Params {
	return &Params{OmegaM: 0.24, OmegaL: 0.76, OmegaB: 0.042, H: 0.73, Sigma8: 0.74, Ns: 0.95}
}

// Validate checks the parameters are physically sensible.
func (p *Params) Validate() error {
	switch {
	case p.OmegaM <= 0:
		return fmt.Errorf("cosmo: OmegaM must be positive, got %g", p.OmegaM)
	case p.OmegaB < 0 || p.OmegaB > p.OmegaM:
		return fmt.Errorf("cosmo: OmegaB %g must be in [0, OmegaM=%g]", p.OmegaB, p.OmegaM)
	case p.H <= 0:
		return fmt.Errorf("cosmo: h must be positive, got %g", p.H)
	case p.Sigma8 <= 0:
		return fmt.Errorf("cosmo: sigma8 must be positive, got %g", p.Sigma8)
	}
	return nil
}

// OmegaK returns the curvature density 1 - OmegaM - OmegaL.
func (p *Params) OmegaK() float64 { return 1 - p.OmegaM - p.OmegaL }

// E returns H(a)/H0 for expansion factor a.
func (p *Params) E(a float64) float64 {
	return math.Sqrt(p.OmegaM/(a*a*a) + p.OmegaK()/(a*a) + p.OmegaL)
}

// OmegaMAt returns the matter density parameter at expansion factor a.
func (p *Params) OmegaMAt(a float64) float64 {
	e := p.E(a)
	return p.OmegaM / (a * a * a * e * e)
}

// Age returns the cosmic time at expansion factor a in units of 1/H0,
// t(a) = ∫₀ᵃ da' / (a' E(a')).
func (p *Params) Age(a float64) float64 {
	if a <= 0 {
		return 0
	}
	return simpson(func(x float64) float64 {
		if x == 0 {
			return 0
		}
		return 1 / (x * p.E(x))
	}, 0, a, 2048)
}

// GrowthFactor returns the linear growth factor D(a), normalised so that
// D(1) = 1. It uses the standard integral solution
// D ∝ (5 ΩM/2) E(a) ∫₀ᵃ da' / (a' E(a'))³.
func (p *Params) GrowthFactor(a float64) float64 {
	if a <= 0 {
		return 0
	}
	return p.growthUnnormalised(a) / p.growthUnnormalised(1)
}

func (p *Params) growthUnnormalised(a float64) float64 {
	integral := simpson(func(x float64) float64 {
		if x == 0 {
			return 0
		}
		e := x * p.E(x)
		return 1 / (e * e * e)
	}, 0, a, 2048)
	return 2.5 * p.OmegaM * p.E(a) * integral
}

// GrowthRate returns f = dlnD/dlna at expansion factor a, using the accurate
// ΩM(a)^0.55 approximation (Linder 2005).
func (p *Params) GrowthRate(a float64) float64 {
	return math.Pow(p.OmegaMAt(a), 0.55)
}

// Transfer returns the BBKS (Bardeen et al. 1986) CDM transfer function at
// wavenumber k in h/Mpc, with the Sugiyama (1995) baryon shape correction —
// the fitting form GRAFIC-era codes used.
func (p *Params) Transfer(k float64) float64 {
	if k <= 0 {
		return 1
	}
	gamma := p.OmegaM * p.H * math.Exp(-p.OmegaB*(1+math.Sqrt(2*p.H)/p.OmegaM))
	q := k / gamma
	t := math.Log(1+2.34*q) / (2.34 * q)
	poly := 1 + 3.89*q + math.Pow(16.1*q, 2) + math.Pow(5.46*q, 3) + math.Pow(6.71*q, 4)
	return t * math.Pow(poly, -0.25)
}

// Power returns the z=0 linear matter power spectrum P(k) in (Mpc/h)³ for k
// in h/Mpc, normalised so that Sigma(8 Mpc/h) = Sigma8.
func (p *Params) Power(k float64) float64 {
	if k <= 0 {
		return 0
	}
	if p.ampl == 0 {
		p.ampl = 1
		s8 := p.Sigma(8)
		p.ampl = (p.Sigma8 / s8) * (p.Sigma8 / s8)
	}
	t := p.Transfer(k)
	return p.ampl * math.Pow(k, p.Ns) * t * t
}

// PowerAt returns the linear power spectrum at expansion factor a,
// P(k, a) = D(a)² P(k, z=0).
func (p *Params) PowerAt(k, a float64) float64 {
	d := p.GrowthFactor(a)
	return d * d * p.Power(k)
}

// Sigma returns the rms linear mass fluctuation in top-hat spheres of
// comoving radius r (Mpc/h) at z = 0:
// σ²(r) = 1/(2π²) ∫ k² P(k) W²(kr) dk, W(x) = 3(sin x − x cos x)/x³.
func (p *Params) Sigma(r float64) float64 {
	integrand := func(lnk float64) float64 {
		k := math.Exp(lnk)
		x := k * r
		var w float64
		if x < 1e-4 {
			w = 1 - x*x/10 // series expansion avoids 0/0
		} else {
			w = 3 * (math.Sin(x) - x*math.Cos(x)) / (x * x * x)
		}
		pk := 1.0
		if p.ampl != 0 {
			pk = p.ampl
		}
		t := p.Transfer(k)
		pk *= math.Pow(k, p.Ns) * t * t
		return k * k * k * pk * w * w // extra k from d(lnk) measure
	}
	integral := simpson(integrand, math.Log(1e-5), math.Log(1e3), 4096)
	return math.Sqrt(integral / (2 * math.Pi * math.Pi))
}

// RhoCritMsunMpc3 is the critical density in h² M☉/Mpc³.
const RhoCritMsunMpc3 = 2.77536627e11

// ParticleMass returns the dark-matter particle mass in M☉/h for a box of
// side boxSize Mpc/h sampled with n³ particles.
func (p *Params) ParticleMass(boxSize float64, n int) float64 {
	vol := boxSize * boxSize * boxSize
	return p.OmegaM * RhoCritMsunMpc3 * vol / float64(n*n*n)
}

// HubbleTimeGyr returns 1/H0 in gigayears.
func (p *Params) HubbleTimeGyr() float64 {
	// 1/H0 = 9.7779 h⁻¹ Gyr.
	return 9.77792 / p.H
}

// AgeGyr returns the cosmic time at expansion factor a in gigayears.
func (p *Params) AgeGyr(a float64) float64 { return p.Age(a) * p.HubbleTimeGyr() }

// ExpansionOfRedshift converts redshift z to expansion factor a = 1/(1+z).
func ExpansionOfRedshift(z float64) float64 { return 1 / (1 + z) }

// RedshiftOfExpansion converts expansion factor a to redshift z = 1/a - 1.
func RedshiftOfExpansion(a float64) float64 { return 1/a - 1 }

// simpson integrates f over [a, b] with n (even) composite Simpson panels.
func simpson(f func(float64) float64, a, b float64, n int) float64 {
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}
