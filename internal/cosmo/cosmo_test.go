package cosmo

import (
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	if err := WMAP3().Validate(); err != nil {
		t.Errorf("WMAP3 should validate: %v", err)
	}
	bad := []Params{
		{OmegaM: 0, OmegaL: 1, H: 0.7, Sigma8: 0.8},
		{OmegaM: 0.3, OmegaB: 0.5, OmegaL: 0.7, H: 0.7, Sigma8: 0.8},
		{OmegaM: 0.3, OmegaL: 0.7, H: -1, Sigma8: 0.8},
		{OmegaM: 0.3, OmegaL: 0.7, H: 0.7, Sigma8: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestHubbleFlat(t *testing.T) {
	c := WMAP3()
	if math.Abs(c.E(1)-1) > 1e-12 {
		t.Errorf("E(1) = %g, want 1", c.E(1))
	}
	// Deep matter era: E(a) ≈ sqrt(ΩM/a³).
	a := 0.01
	want := math.Sqrt(c.OmegaM / (a * a * a))
	if math.Abs(c.E(a)-want)/want > 1e-3 {
		t.Errorf("E(%g) = %g, want ≈ %g", a, c.E(a), want)
	}
}

func TestOmegaMAt(t *testing.T) {
	c := WMAP3()
	if math.Abs(c.OmegaMAt(1)-c.OmegaM) > 1e-12 {
		t.Errorf("ΩM(1) = %g, want %g", c.OmegaMAt(1), c.OmegaM)
	}
	// Matter dominates early.
	if om := c.OmegaMAt(0.01); om < 0.99 {
		t.Errorf("ΩM(0.01) = %g, want ≈ 1", om)
	}
}

func TestEinsteinDeSitterLimits(t *testing.T) {
	eds := &Params{OmegaM: 1, OmegaL: 0, OmegaB: 0.05, H: 0.7, Sigma8: 0.8, Ns: 1}
	// Age(1) = 2/3 in Hubble units.
	if got := eds.Age(1); math.Abs(got-2.0/3) > 1e-3 {
		t.Errorf("EdS age = %g, want 2/3", got)
	}
	// Growth factor D(a) = a.
	for _, a := range []float64{0.1, 0.25, 0.5, 0.9} {
		if got := eds.GrowthFactor(a); math.Abs(got-a)/a > 1e-3 {
			t.Errorf("EdS D(%g) = %g, want %g", a, got, a)
		}
	}
	// Growth rate f = 1.
	if f := eds.GrowthRate(0.5); math.Abs(f-1) > 1e-6 {
		t.Errorf("EdS f = %g, want 1", f)
	}
}

func TestGrowthFactorMonotonic(t *testing.T) {
	c := WMAP3()
	if d1 := c.GrowthFactor(1); math.Abs(d1-1) > 1e-9 {
		t.Fatalf("D(1) = %g, want 1", d1)
	}
	prev := 0.0
	for a := 0.05; a <= 1.0; a += 0.05 {
		d := c.GrowthFactor(a)
		if d <= prev {
			t.Fatalf("D not monotonic at a=%g: %g <= %g", a, d, prev)
		}
		prev = d
	}
	// ΛCDM growth is suppressed relative to EdS: D(0.5) < 0.5... actually
	// D(a) > a for normalised ΛCDM growth (growth slows at late times, so
	// early values are relatively larger).
	if d := c.GrowthFactor(0.5); d <= 0.5 {
		t.Errorf("ΛCDM D(0.5) = %g, expected > 0.5", d)
	}
}

func TestAgeIncreasing(t *testing.T) {
	c := WMAP3()
	prev := -1.0
	for a := 0.1; a <= 1.0; a += 0.1 {
		age := c.Age(a)
		if age <= prev {
			t.Fatalf("Age not increasing at a=%g", a)
		}
		prev = age
	}
	// WMAP3 age of universe ≈ 13.7 Gyr.
	age := c.AgeGyr(1)
	if age < 13 || age > 14.5 {
		t.Errorf("age of universe = %g Gyr, want ≈ 13.7", age)
	}
}

func TestTransferLimits(t *testing.T) {
	c := WMAP3()
	if tk := c.Transfer(1e-6); math.Abs(tk-1) > 0.01 {
		t.Errorf("T(k→0) = %g, want 1", tk)
	}
	// Monotonically decreasing.
	prev := 2.0
	for _, k := range []float64{1e-4, 1e-3, 1e-2, 0.1, 1, 10} {
		tk := c.Transfer(k)
		if tk >= prev {
			t.Errorf("T(%g) = %g not decreasing", k, tk)
		}
		prev = tk
	}
}

func TestSigma8Normalisation(t *testing.T) {
	c := WMAP3()
	c.Power(0.1) // force amplitude calibration
	got := c.Sigma(8)
	if math.Abs(got-c.Sigma8)/c.Sigma8 > 1e-3 {
		t.Errorf("Sigma(8) = %g, want %g", got, c.Sigma8)
	}
}

func TestPowerSpectrumShape(t *testing.T) {
	c := WMAP3()
	// P(k) rises at low k, turns over, falls at high k.
	pLow, pPeak, pHigh := c.Power(0.001), c.Power(0.02), c.Power(5)
	if pPeak <= pLow || pPeak <= pHigh {
		t.Errorf("P(k) not peaked: P(0.001)=%g P(0.02)=%g P(5)=%g", pLow, pPeak, pHigh)
	}
	if c.Power(0) != 0 || c.Power(-1) != 0 {
		t.Error("P(k<=0) should be 0")
	}
}

func TestPowerAtGrowsWithA(t *testing.T) {
	c := WMAP3()
	k := 0.1
	if !(c.PowerAt(k, 0.3) < c.PowerAt(k, 0.7) && c.PowerAt(k, 0.7) < c.PowerAt(k, 1.0)) {
		t.Error("P(k,a) should grow with a")
	}
	if math.Abs(c.PowerAt(k, 1)-c.Power(k)) > 1e-9*c.Power(k) {
		t.Error("P(k,1) should equal P(k)")
	}
}

func TestParticleMass(t *testing.T) {
	c := WMAP3()
	// The full box mass must be ΩM·ρc·V regardless of sampling.
	box := 100.0
	for _, n := range []int{16, 32, 64} {
		total := c.ParticleMass(box, n) * float64(n*n*n)
		want := c.OmegaM * RhoCritMsunMpc3 * box * box * box
		if math.Abs(total-want)/want > 1e-12 {
			t.Errorf("n=%d: total mass %g, want %g", n, total, want)
		}
	}
	// 128³ in 100 Mpc/h: ~3e10 M☉/h per particle, the paper's survey scale.
	m := c.ParticleMass(100, 128)
	if m < 1e9 || m > 1e11 {
		t.Errorf("particle mass %g outside plausible range", m)
	}
}

func TestRedshiftConversions(t *testing.T) {
	if a := ExpansionOfRedshift(0); a != 1 {
		t.Errorf("a(z=0) = %g", a)
	}
	if z := RedshiftOfExpansion(0.5); math.Abs(z-1) > 1e-12 {
		t.Errorf("z(a=0.5) = %g, want 1", z)
	}
	for _, z := range []float64{0, 0.5, 3, 49} {
		if got := RedshiftOfExpansion(ExpansionOfRedshift(z)); math.Abs(got-z) > 1e-9 {
			t.Errorf("round trip z=%g gives %g", z, got)
		}
	}
}

func TestGrowthRateRange(t *testing.T) {
	c := WMAP3()
	for a := 0.1; a <= 1.0; a += 0.1 {
		f := c.GrowthRate(a)
		if f <= 0 || f > 1.01 {
			t.Errorf("f(%g) = %g outside (0,1]", a, f)
		}
	}
	// f decreases toward late times in ΛCDM.
	if !(c.GrowthRate(0.2) > c.GrowthRate(1.0)) {
		t.Error("f should decrease with a in ΛCDM")
	}
}

func TestHubbleTimeGyr(t *testing.T) {
	c := WMAP3()
	want := 9.77792 / 0.73
	if math.Abs(c.HubbleTimeGyr()-want) > 1e-9 {
		t.Errorf("HubbleTimeGyr = %g, want %g", c.HubbleTimeGyr(), want)
	}
}
