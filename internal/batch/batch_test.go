package batch

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{TotalNodes: 0}); err == nil {
		t.Error("zero nodes should fail")
	}
}

func TestSubmitValidation(t *testing.T) {
	s, _ := New(Config{TotalNodes: 4})
	noop := func() error { return nil }
	if _, err := s.Submit("j", 0, time.Second, noop); err == nil {
		t.Error("zero nodes should fail")
	}
	if _, err := s.Submit("j", 8, time.Second, noop); err == nil {
		t.Error("too many nodes should fail")
	}
	if _, err := s.Submit("j", 1, 0, noop); err == nil {
		t.Error("zero walltime should fail")
	}
	if _, err := s.Submit("j", 1, time.Second, nil); err == nil {
		t.Error("nil script should fail")
	}
}

func TestJobRunsAndCompletes(t *testing.T) {
	s, _ := New(Config{TotalNodes: 4})
	var ran atomic.Bool
	j, err := s.Submit("hello", 2, time.Minute, func() error {
		ran.Store(true)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(j); err != nil {
		t.Fatal(err)
	}
	if !ran.Load() {
		t.Error("script did not run")
	}
	if j.State() != Done {
		t.Errorf("state %s, want Done", j.State())
	}
	st := s.Stats()
	if st.Completed != 1 || st.FreeNodes != 4 {
		t.Errorf("stats %+v", st)
	}
}

func TestJobFailure(t *testing.T) {
	s, _ := New(Config{TotalNodes: 2})
	boom := errors.New("boom")
	j, _ := s.Submit("bad", 1, time.Minute, func() error { return boom })
	if err := s.Wait(j); !errors.Is(err, boom) {
		t.Errorf("Wait = %v", err)
	}
	if j.State() != Failed {
		t.Errorf("state %s", j.State())
	}
	if s.Stats().Failed != 1 {
		t.Error("failure not counted")
	}
}

func TestQueueingWhenFull(t *testing.T) {
	s, _ := New(Config{TotalNodes: 2})
	release := make(chan struct{})
	var order []int
	var mu chan struct{} = make(chan struct{}, 1)
	mu <- struct{}{}
	record := func(id int) func() error {
		return func() error {
			<-release
			<-mu
			order = append(order, id)
			mu <- struct{}{}
			return nil
		}
	}
	j1, _ := s.Submit("a", 2, time.Minute, record(1))
	j2, _ := s.Submit("b", 2, time.Minute, record(2))
	// j2 must be waiting: the cluster is full.
	time.Sleep(10 * time.Millisecond)
	if j1.State() != Running {
		t.Errorf("j1 state %s, want Running", j1.State())
	}
	if j2.State() != Waiting {
		t.Errorf("j2 state %s, want Waiting", j2.State())
	}
	if st := s.Stats(); st.Waiting != 1 || st.Running != 1 {
		t.Errorf("stats %+v", st)
	}
	close(release)
	if err := s.Wait(j2); err != nil {
		t.Fatal(err)
	}
	if j2.WaitTime() <= 0 {
		t.Error("queued job should record a wait time")
	}
}

func TestBackfillSmallJobJumps(t *testing.T) {
	// 4 nodes; a 4-node head job is blocked behind a long 2-node runner.
	// With backfilling, a short 1-node job jumps the queue.
	s, _ := New(Config{TotalNodes: 4, Backfill: true})
	blockRunning := make(chan struct{})
	long, _ := s.Submit("long", 2, time.Hour, func() error {
		<-blockRunning
		return nil
	})
	time.Sleep(10 * time.Millisecond) // let it start

	head, _ := s.Submit("head", 4, time.Hour, func() error { return nil })
	var backfilled atomic.Bool
	small, _ := s.Submit("small", 1, time.Millisecond, func() error {
		backfilled.Store(true)
		return nil
	})
	if err := s.Wait(small); err != nil {
		t.Fatal(err)
	}
	if !backfilled.Load() {
		t.Error("small job should have backfilled")
	}
	if head.State() != Waiting {
		t.Errorf("head state %s, want still Waiting", head.State())
	}
	close(blockRunning)
	if err := s.Wait(long); err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(head); err != nil {
		t.Fatal(err)
	}
}

func TestNoBackfillKeepsFIFO(t *testing.T) {
	s, _ := New(Config{TotalNodes: 4})
	block := make(chan struct{})
	s.Submit("long", 2, time.Hour, func() error { <-block; return nil })
	time.Sleep(5 * time.Millisecond)
	s.Submit("head", 4, time.Hour, func() error { return nil })
	var jumped atomic.Bool
	small, _ := s.Submit("small", 1, time.Millisecond, func() error {
		jumped.Store(true)
		return nil
	})
	time.Sleep(20 * time.Millisecond)
	if jumped.Load() {
		t.Error("small job must not jump without backfill")
	}
	if small.State() != Waiting {
		t.Errorf("small state %s", small.State())
	}
	close(block)
}

func TestCancelWaitingJob(t *testing.T) {
	s, _ := New(Config{TotalNodes: 1})
	block := make(chan struct{})
	s.Submit("runner", 1, time.Hour, func() error { <-block; return nil })
	time.Sleep(5 * time.Millisecond)
	j, _ := s.Submit("victim", 1, time.Hour, func() error { return nil })
	if err := s.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	if j.State() != Cancelled {
		t.Errorf("state %s", j.State())
	}
	if err := s.Cancel(j.ID); err == nil {
		t.Error("double cancel should fail")
	}
	close(block)
}

func TestCloseRefusesSubmission(t *testing.T) {
	s, _ := New(Config{TotalNodes: 1})
	s.Close()
	if _, err := s.Submit("late", 1, time.Second, func() error { return nil }); err == nil {
		t.Error("submission after close should fail")
	}
}

func TestExecutorAdapter(t *testing.T) {
	s, _ := New(Config{TotalNodes: 2})
	e := &Executor{System: s, JobName: "solve", Nodes: 1, Walltime: time.Minute}
	var ran bool
	if err := e.Execute(func() error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("executor did not run the body")
	}
	boom := errors.New("bad solve")
	if err := e.Execute(func() error { return boom }); !errors.Is(err, boom) {
		t.Errorf("Execute error = %v", err)
	}
	if st := s.Stats(); st.Submitted != 2 {
		t.Errorf("stats %+v", st)
	}
}

func TestManyJobsDrain(t *testing.T) {
	s, _ := New(Config{TotalNodes: 3, Backfill: true})
	var done atomic.Int32
	var jobs []*Job
	for i := 0; i < 30; i++ {
		j, err := s.Submit("batch", 1+i%3, time.Minute, func() error {
			done.Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		if err := s.Wait(j); err != nil {
			t.Fatal(err)
		}
	}
	if done.Load() != 30 {
		t.Errorf("%d jobs ran, want 30", done.Load())
	}
	st := s.Stats()
	if st.Completed != 30 || st.FreeNodes != 3 || st.Running != 0 || st.Waiting != 0 {
		t.Errorf("final stats %+v", st)
	}
}
