// Package batch implements an OAR-style cluster batch system: jobs request a
// number of nodes and a walltime, wait in a queue scheduled FIFO with
// conservative backfilling, and run when their reservation starts. The paper
// names "transparent reservations of the resources on batch systems like
// OAR" as the DIET batch-system integration (§8); this package provides that
// substrate plus the Executor adapters a SeD plugs in.
//
// Walltimes can be enforced (Config.EnforceWalltime): a job still running
// when its grant expires is killed, the way OAR reclaims a reservation. That
// makes walltime sizing a real trade-off — too short and the job is killed
// and must requeue, too long and the reservation pads idle — which
// WalltimePolicy resolves by sizing each grant from the SeD's CoRI duration
// forecast plus a confidence-scaled margin, falling back to a fixed grant
// while the monitor is cold. ForecastExecutor wires that policy into
// diet.SeD solves and tracks the overrun-kill and idle-pad metrics.
//
// Forecast sizing also feeds back into the queue: the backfill pass prefers
// forecast-sized jobs when several candidates fit a shadow window
// (OrderBackfill), because their tight walltimes waste the least of the
// window, and per-job queue waits are tracked (SystemStats, Job.WaitTime)
// so the ForecastExecutor can report each solve's real reservation wait to
// the SeD's CoRI wait-on-depth regression.
package batch

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrWalltime reports a job killed because its script outlived its
// reservation (EnforceWalltime).
var ErrWalltime = errors.New("batch: walltime exceeded")

// JobState is the lifecycle state of a batch job.
type JobState int

// Job states.
const (
	Waiting JobState = iota
	Running
	Done
	Failed
	Cancelled
)

// String implements fmt.Stringer.
func (s JobState) String() string {
	switch s {
	case Waiting:
		return "Waiting"
	case Running:
		return "Running"
	case Done:
		return "Done"
	case Failed:
		return "Failed"
	}
	return "Cancelled"
}

// Job is one batch submission.
type Job struct {
	ID       int
	Name     string
	Nodes    int
	Walltime time.Duration
	// ForecastSized marks a walltime derived from a trusted CoRI forecast
	// rather than a fixed user grant. Sized walltimes are tight bounds, so
	// the backfill pass prefers these jobs when several candidates fit the
	// shadow window (see OrderBackfill).
	ForecastSized bool
	Script        func() error

	mu         sync.Mutex
	state      JobState
	err        error
	submit     time.Time
	start      time.Time
	end        time.Time
	backfilled bool        // started ahead of FIFO order by the backfill pass
	headBound  time.Time   // tightest shadow bound recorded while this job was the protected head
	watchdog   *time.Timer // walltime kill timer (EnforceWalltime); guarded by mu
	finished   chan struct{}
}

// State returns the job's current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the script error after completion.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// WaitTime returns how long the job waited in queue (valid once started).
func (j *Job) WaitTime() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.start.IsZero() {
		return 0
	}
	return j.start.Sub(j.submit)
}

// Backfilled reports whether the job was started ahead of FIFO order by the
// backfill pass (valid once started).
func (j *Job) Backfilled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.backfilled
}

// Config sizes the managed cluster.
type Config struct {
	TotalNodes int
	// Backfill enables conservative backfilling: a queued job may jump ahead
	// when it fits in the currently free nodes without delaying the head job
	// (using walltime as the head job's runtime bound).
	Backfill bool
	// EnforceWalltime kills a job whose script is still running when its
	// walltime expires: the job fails with ErrWalltime and its nodes are
	// reclaimed. The script's goroutine cannot be interrupted from outside,
	// so it keeps running to completion with its result discarded — scripts
	// that hold external resources should watch for cancellation themselves.
	EnforceWalltime bool
}

// System is the batch scheduler for one cluster.
type System struct {
	cfg Config

	mu      sync.Mutex
	nextID  int
	free    int
	queue   []*Job
	running map[int]*Job
	closed  bool

	// stats
	submitted      int
	started        int
	completed      int
	failed         int
	overrunKills   int
	idlePad        time.Duration // walltime minus runtime, summed over completed jobs
	reserved       time.Duration // walltime granted, summed over finished jobs
	queueWait      time.Duration // submit→start, summed over started jobs
	backfilled     int           // jobs started ahead of FIFO order
	backfillWait   time.Duration // submit→start, summed over backfilled jobs
	sizedBackfills int           // forecast-sized jobs among the backfilled
}

// New creates a batch system managing cfg.TotalNodes nodes.
func New(cfg Config) (*System, error) {
	if cfg.TotalNodes < 1 {
		return nil, fmt.Errorf("batch: TotalNodes must be >= 1, got %d", cfg.TotalNodes)
	}
	return &System{cfg: cfg, free: cfg.TotalNodes, running: make(map[int]*Job)}, nil
}

// Request describes one batch submission.
type Request struct {
	Name     string
	Nodes    int
	Walltime time.Duration
	// ForecastSized tags the walltime as derived from a trusted CoRI
	// forecast; the backfill pass prefers such jobs (see Job.ForecastSized).
	ForecastSized bool
	Script        func() error
}

// Submit enqueues a job; the script will run on a goroutine once the
// scheduler grants the reservation. Like "oarsub" it returns immediately.
func (s *System) Submit(name string, nodes int, walltime time.Duration, script func() error) (*Job, error) {
	return s.SubmitRequest(Request{Name: name, Nodes: nodes, Walltime: walltime, Script: script})
}

// SubmitRequest is Submit with the full request description, including the
// walltime's sizing provenance.
func (s *System) SubmitRequest(r Request) (*Job, error) {
	if r.Nodes < 1 || r.Nodes > s.cfg.TotalNodes {
		return nil, fmt.Errorf("batch: job %q requests %d nodes, cluster has %d", r.Name, r.Nodes, s.cfg.TotalNodes)
	}
	if r.Walltime <= 0 {
		return nil, fmt.Errorf("batch: job %q needs a positive walltime", r.Name)
	}
	if r.Script == nil {
		return nil, fmt.Errorf("batch: job %q has no script", r.Name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("batch: system is shut down")
	}
	s.nextID++
	j := &Job{
		ID: s.nextID, Name: r.Name, Nodes: r.Nodes, Walltime: r.Walltime,
		ForecastSized: r.ForecastSized,
		Script:        r.Script, state: Waiting, submit: time.Now(),
		finished: make(chan struct{}),
	}
	s.queue = append(s.queue, j)
	s.submitted++
	s.schedule()
	return j, nil
}

// schedule starts every queued job that may run now. Caller holds s.mu.
// FIFO order; with Backfill enabled, later jobs that fit in the free nodes
// may start as long as the head job is not delayed (its start bound is the
// earliest completion among running jobs that frees enough nodes, estimated
// with walltimes — conservative backfilling). When several candidates fit
// the shadow window, forecast-sized jobs go first: their walltimes are
// tight bounds, so promoting them packs more real work into the window than
// the padded fixed grants (OrderBackfill is the shared policy).
func (s *System) schedule() {
	if len(s.queue) == 0 {
		return
	}
	// Start from the head while it fits.
	for len(s.queue) > 0 && s.queue[0].Nodes <= s.free {
		s.startLocked(s.queue[0], false)
		s.queue = s.queue[1:]
	}
	if !s.cfg.Backfill || len(s.queue) < 2 || s.free == 0 {
		return
	}
	head := s.queue[0]
	shadow := s.headStartBound(head)
	cands := make([]BackfillCandidate, 0, len(s.queue)-1)
	for i, j := range s.queue[1:] {
		cands = append(cands, BackfillCandidate{
			Queue: i + 1, Nodes: j.Nodes, Walltime: j.Walltime, ForecastSized: j.ForecastSized,
		})
	}
	picks := SelectBackfill(cands, s.free, shadow.Sub(time.Now()))
	if len(picks) == 0 {
		return
	}
	// Record the bound this pass promises the head; every later start must
	// keep it (the shadow-time invariant the property tests assert).
	head.mu.Lock()
	if head.headBound.IsZero() || shadow.Before(head.headBound) {
		head.headBound = shadow
	}
	head.mu.Unlock()
	started := make(map[int]bool, len(picks))
	for _, c := range picks {
		started[c.Queue] = true
		s.startLocked(s.queue[c.Queue], true)
	}
	rest := make([]*Job, 0, len(s.queue)-len(started))
	for i, j := range s.queue {
		if !started[i] {
			rest = append(rest, j)
		}
	}
	s.queue = rest
}

// BackfillCandidate is the scheduler-independent view of one queued job a
// backfill pass may promote. It exists so the live System and the
// simulator's virtual-time batch mirror rank candidates through one policy.
type BackfillCandidate struct {
	Queue         int // position in the wait queue — the FIFO tiebreak
	Nodes         int
	Walltime      time.Duration
	ForecastSized bool
}

// OrderBackfill sorts backfill candidates into the order the scheduler
// tries them: forecast-sized jobs first (their walltimes are tight bounds,
// so they waste the least of the shadow window and their projected ends are
// trustworthy), then tighter walltimes, then submission order.
func OrderBackfill(cands []BackfillCandidate) {
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].ForecastSized != cands[j].ForecastSized {
			return cands[i].ForecastSized
		}
		if cands[i].Walltime != cands[j].Walltime {
			return cands[i].Walltime < cands[j].Walltime
		}
		return cands[i].Queue < cands[j].Queue
	})
}

// SelectBackfill is the complete conservative-backfill candidate policy:
// from the queued jobs behind the head, keep those that fit the free nodes
// now and whose walltime ends inside the head's shadow window, rank them
// with OrderBackfill, and greedily admit while nodes remain. The picks are
// returned in start order. Both System.schedule and the simulator's
// virtual-time batch model (simgrid.SimulateBatchQueue) select through this
// one function, so the two policies cannot drift.
func SelectBackfill(cands []BackfillCandidate, free int, window time.Duration) []BackfillCandidate {
	fit := make([]BackfillCandidate, 0, len(cands))
	for _, c := range cands {
		if c.Nodes <= free && c.Walltime < window {
			fit = append(fit, c)
		}
	}
	OrderBackfill(fit)
	var picks []BackfillCandidate
	for _, c := range fit {
		if c.Nodes <= free {
			free -= c.Nodes
			picks = append(picks, c)
		}
	}
	return picks
}

// headStartBound estimates when enough nodes free up for the head job,
// assuming running jobs use their full walltime.
func (s *System) headStartBound(head *Job) time.Time {
	type release struct {
		at    time.Time
		nodes int
	}
	var rel []release
	for _, j := range s.running {
		j.mu.Lock()
		rel = append(rel, release{at: j.start.Add(j.Walltime), nodes: j.Nodes})
		j.mu.Unlock()
	}
	sort.Slice(rel, func(i, k int) bool { return rel[i].at.Before(rel[k].at) })
	free := s.free
	for _, r := range rel {
		free += r.nodes
		if free >= head.Nodes {
			return r.at
		}
	}
	// Should not happen (job validated against TotalNodes); far future.
	return time.Now().Add(24 * time.Hour)
}

// startLocked transitions a job to Running and launches its script. The job
// settles exactly once: on script completion, or — with EnforceWalltime —
// at walltime expiry if the script is still running, whichever comes first.
// Queue wait (submit→start) is accounted here, split out for backfilled
// jobs: those waits are what the backfill policy exists to shrink, and what
// feeds the CoRI wait-on-depth regression through the ForecastExecutor.
func (s *System) startLocked(j *Job, backfilled bool) {
	s.free -= j.Nodes
	s.running[j.ID] = j
	j.mu.Lock()
	j.state = Running
	j.start = time.Now()
	j.backfilled = backfilled
	wait := j.start.Sub(j.submit)
	j.mu.Unlock()
	s.started++
	s.queueWait += wait
	if backfilled {
		s.backfilled++
		s.backfillWait += wait
		if j.ForecastSized {
			s.sizedBackfills++
		}
	}

	settle := func(err error) {
		j.mu.Lock()
		if j.state != Running { // the other path settled first
			j.mu.Unlock()
			return
		}
		j.end = time.Now()
		runtime := j.end.Sub(j.start)
		if err != nil {
			j.state = Failed
			j.err = err
		} else {
			j.state = Done
		}
		if j.watchdog != nil {
			j.watchdog.Stop()
		}
		j.mu.Unlock()
		close(j.finished)

		s.mu.Lock()
		delete(s.running, j.ID)
		s.free += j.Nodes
		s.reserved += j.Walltime
		switch {
		case errors.Is(err, ErrWalltime):
			s.failed++
			s.overrunKills++
		case err != nil:
			s.failed++
		default:
			s.completed++
			if pad := j.Walltime - runtime; pad > 0 {
				s.idlePad += pad
			}
		}
		s.schedule()
		s.mu.Unlock()
	}

	if s.cfg.EnforceWalltime {
		// Publish the timer handle under j.mu: the AfterFunc callback may
		// fire before the assignment would otherwise be visible, and settle
		// reads the handle from other goroutines.
		t := time.AfterFunc(j.Walltime, func() { settle(ErrWalltime) })
		j.mu.Lock()
		if j.state == Running {
			j.watchdog = t
		} else {
			t.Stop() // the watchdog itself already settled this job
		}
		j.mu.Unlock()
	}
	go func() { settle(j.Script()) }()
}

// Wait blocks until the job finishes and returns its script error.
func (s *System) Wait(j *Job) error {
	<-j.finished
	return j.Err()
}

// Cancel removes a waiting job from the queue. Running jobs cannot be
// cancelled (like oardel on a running reservation without checkpointing).
func (s *System) Cancel(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, j := range s.queue {
		if j.ID == id {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			j.mu.Lock()
			j.state = Cancelled
			j.mu.Unlock()
			close(j.finished)
			return nil
		}
	}
	return fmt.Errorf("batch: job %d is not waiting", id)
}

// SystemStats is a snapshot of the system.
type SystemStats struct {
	TotalNodes int
	FreeNodes  int
	Waiting    int
	Running    int
	Submitted  int
	Completed  int
	Failed     int
	// OverrunKills counts jobs killed at walltime expiry (EnforceWalltime);
	// they are included in Failed.
	OverrunKills int
	// IdlePad is the reservation time completed jobs granted but never used
	// (walltime − runtime, summed) — what oversized grants cost the cluster.
	IdlePad time.Duration
	// Reserved is the total walltime granted to finished jobs, the
	// denominator that turns IdlePad into a utilisation figure.
	Reserved time.Duration
	// Started counts jobs that have left the queue (includes running ones).
	Started int
	// QueueWait is submit→start time summed over started jobs; divide by
	// Started for the mean wait the batch queue imposed.
	QueueWait time.Duration
	// Backfilled counts jobs started ahead of FIFO order, and
	// BackfillQueueWait their summed waits — the queue time the backfill
	// pass recovered from shadow windows.
	Backfilled        int
	BackfillQueueWait time.Duration
	// ForecastSizedBackfills counts backfilled jobs whose walltime came from
	// a trusted CoRI forecast — the candidates OrderBackfill prefers.
	ForecastSizedBackfills int
}

// MeanQueueWait is the average submit→start wait over started jobs.
func (st SystemStats) MeanQueueWait() time.Duration {
	if st.Started == 0 {
		return 0
	}
	return st.QueueWait / time.Duration(st.Started)
}

// Stats returns a snapshot of queue and node occupancy.
func (s *System) Stats() SystemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SystemStats{
		TotalNodes:             s.cfg.TotalNodes,
		FreeNodes:              s.free,
		Waiting:                len(s.queue),
		Running:                len(s.running),
		Submitted:              s.submitted,
		Completed:              s.completed,
		Failed:                 s.failed,
		OverrunKills:           s.overrunKills,
		IdlePad:                s.idlePad,
		Reserved:               s.reserved,
		Started:                s.started,
		QueueWait:              s.queueWait,
		Backfilled:             s.backfilled,
		BackfillQueueWait:      s.backfillWait,
		ForecastSizedBackfills: s.sizedBackfills,
	}
}

// Close refuses further submissions (queued/running jobs drain normally).
func (s *System) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
}

// Executor adapts the batch system to the diet.Executor interface: each SeD
// solve becomes a batch job reserving Nodes for Walltime — the "transparent
// reservations" integration of the paper's conclusion.
type Executor struct {
	System   *System
	JobName  string
	Nodes    int
	Walltime time.Duration
}

// Execute implements the Executor contract used by diet.SeD.
func (e *Executor) Execute(run func() error) error {
	j, err := e.System.Submit(e.JobName, e.Nodes, e.Walltime, run)
	if err != nil {
		return err
	}
	return e.System.Wait(j)
}
