package batch

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// headBoundOf reads the shadow bound recorded while j was the protected
// head of a backfill pass (zero when no pass ever backfilled against it).
func headBoundOf(j *Job) time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.headBound
}

func startOf(j *Job) time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.start
}

// TestBackfillPrefersForecastSized pins the candidate-selection policy on
// the live System: when one node frees under a blocked wide head, the
// forecast-sized candidate wins it over an earlier-submitted fixed-grant
// candidate of the same walltime.
func TestBackfillPrefersForecastSized(t *testing.T) {
	s, err := New(Config{TotalNodes: 2, Backfill: true})
	if err != nil {
		t.Fatal(err)
	}
	var seq atomic.Int32
	order := make(map[string]int32)
	var orderMu sync.Mutex
	script := func(name string, d time.Duration) func() error {
		return func() error {
			orderMu.Lock()
			order[name] = seq.Add(1)
			orderMu.Unlock()
			time.Sleep(d)
			return nil
		}
	}
	// Both nodes busy: a1 releases first, a2 keeps a 10 s walltime bound the
	// shadow window is computed from.
	a1, _ := s.Submit("a1", 1, 10*time.Second, script("a1", 60*time.Millisecond))
	a2, _ := s.Submit("a2", 1, 10*time.Second, script("a2", 250*time.Millisecond))
	// Wide head: must wait for both nodes.
	head, _ := s.Submit("head", 2, time.Second, script("head", time.Millisecond))
	// Two 1-node candidates with identical walltimes; the sized one was
	// submitted later but must win the node a1 frees.
	fixed, _ := s.Submit("fixed", 1, 200*time.Millisecond, script("fixed", 40*time.Millisecond))
	sized, _ := s.SubmitRequest(Request{
		Name: "sized", Nodes: 1, Walltime: 200 * time.Millisecond, ForecastSized: true,
		Script: script("sized", 40*time.Millisecond),
	})
	for _, j := range []*Job{a1, a2, head, fixed, sized} {
		if err := s.Wait(j); err != nil {
			t.Fatalf("%s: %v", j.Name, err)
		}
	}
	if !sized.Backfilled() || !fixed.Backfilled() {
		t.Fatalf("both candidates must backfill (sized %v, fixed %v)", sized.Backfilled(), fixed.Backfilled())
	}
	if order["sized"] > order["fixed"] {
		t.Fatalf("the forecast-sized candidate must start first: order %v", order)
	}
	st := s.Stats()
	if st.Backfilled < 2 || st.ForecastSizedBackfills < 1 {
		t.Fatalf("backfill accounting: %+v", st)
	}
	if st.QueueWait <= 0 || st.Started != 5 {
		t.Fatalf("queue-wait accounting: %+v", st)
	}
	if bound := headBoundOf(head); bound.IsZero() {
		t.Fatal("the blocked head must have been promised a shadow bound")
	} else if startOf(head).After(bound) {
		t.Fatalf("head start %v is past its promised bound %v", startOf(head), bound)
	}
}

// TestBackfillNeverDelaysHead is the shadow-time property test: under
// random arrival/walltime mixes — with and without forecast sizing — no job
// that was the protected head of a backfill pass ever starts later than the
// shadow bound the pass was built on. Runs under -race in CI.
func TestBackfillNeverDelaysHead(t *testing.T) {
	// Scheduling happens on completion events; the bound itself is built
	// from walltimes, which the scripts undershoot by 2-5x, so the slack
	// only absorbs goroutine wake-up latency.
	const slack = 250 * time.Millisecond
	for seed := int64(0); seed < 6; seed++ {
		for _, sizing := range []bool{false, true} {
			rng := rand.New(rand.NewSource(seed))
			nodes := 2 + rng.Intn(4)
			s, err := New(Config{TotalNodes: nodes, Backfill: true})
			if err != nil {
				t.Fatal(err)
			}
			njobs := 15 + rng.Intn(21)
			jobs := make([]*Job, 0, njobs)
			for i := 0; i < njobs; i++ {
				width := 1
				switch rng.Intn(5) {
				case 3:
					width = 1 + rng.Intn(nodes)
				case 4:
					width = nodes
				}
				wall := time.Duration(20+rng.Intn(41)) * time.Millisecond
				run := wall * time.Duration(20+rng.Intn(31)) / 100
				j, err := s.SubmitRequest(Request{
					Name: "j", Nodes: width, Walltime: wall,
					ForecastSized: sizing && rng.Intn(2) == 0,
					Script:        func() error { time.Sleep(run); return nil },
				})
				if err != nil {
					t.Fatal(err)
				}
				jobs = append(jobs, j)
				if rng.Intn(3) == 0 {
					time.Sleep(time.Duration(rng.Intn(4)) * time.Millisecond)
				}
			}
			backfilled := 0
			for _, j := range jobs {
				if err := s.Wait(j); err != nil {
					t.Fatalf("seed %d sizing %v: %v", seed, sizing, err)
				}
				if j.Backfilled() {
					backfilled++
				}
				if bound := headBoundOf(j); !bound.IsZero() {
					if d := startOf(j).Sub(bound); d > slack {
						t.Fatalf("seed %d sizing %v: head job %d delayed %v past its shadow bound", seed, sizing, j.ID, d)
					}
				}
			}
			st := s.Stats()
			if st.Completed != njobs || st.FreeNodes != nodes || st.Started != njobs {
				t.Fatalf("seed %d sizing %v: conservation broken: %+v", seed, sizing, st)
			}
			if st.Backfilled != backfilled {
				t.Fatalf("seed %d sizing %v: stats count %d backfills, jobs say %d", seed, sizing, st.Backfilled, backfilled)
			}
			if st.QueueWait < st.BackfillQueueWait {
				t.Fatalf("seed %d sizing %v: backfill wait cannot exceed total wait: %+v", seed, sizing, st)
			}
		}
	}
}

// TestForecastExecutorReportsQueueWait checks the wait plumbing the SeD
// feeds to the CoRI wait-on-depth regression: ExecuteSizedWait reports the
// time the reservation actually waited for nodes.
func TestForecastExecutorReportsQueueWait(t *testing.T) {
	s, _ := New(Config{TotalNodes: 1, Backfill: true})
	release := make(chan struct{})
	blocker, _ := s.Submit("blocker", 1, time.Minute, func() error { <-release; return nil })

	now := time.Unix(1_000_000, 0)
	e := &ForecastExecutor{
		System: s, JobName: "solve", Nodes: 1, Monitor: trainedMonitor(&now),
		Policy: WalltimePolicy{Fixed: time.Minute},
	}
	done := make(chan error, 1)
	var wait time.Duration
	go func() {
		var err error
		wait, err = e.ExecuteSizedWait("svc", 0, func() error { return nil })
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(blocker); err != nil {
		t.Fatal(err)
	}
	if wait < 30*time.Millisecond {
		t.Fatalf("reported queue wait %v, want >= the ~50 ms the node was held", wait)
	}
	st := e.Stats()
	if st.QueueWait < wait {
		t.Fatalf("executor stats wait %v must accumulate the reported %v", st.QueueWait, wait)
	}
	if st.ForecastSized != 1 {
		t.Fatalf("trained monitor must size the reservation: %+v", st)
	}
}
