package batch

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// TestRandomJobStreams drives the scheduler with random job mixes and checks
// the conservation invariants: every submitted job finishes exactly once,
// nothing is lost, and all nodes return to the pool.
func TestRandomJobStreams(t *testing.T) {
	f := func(seed int64, backfill bool) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 1 + rng.Intn(8)
		s, err := New(Config{TotalNodes: nodes, Backfill: backfill})
		if err != nil {
			return false
		}
		njobs := 5 + rng.Intn(25)
		var ran atomic.Int32
		jobs := make([]*Job, 0, njobs)
		for i := 0; i < njobs; i++ {
			req := 1 + rng.Intn(nodes)
			wall := time.Duration(1+rng.Intn(50)) * time.Millisecond
			j, err := s.Submit("j", req, wall, func() error {
				ran.Add(1)
				return nil
			})
			if err != nil {
				return false
			}
			jobs = append(jobs, j)
		}
		for _, j := range jobs {
			if err := s.Wait(j); err != nil {
				return false
			}
			if j.State() != Done {
				return false
			}
		}
		st := s.Stats()
		return ran.Load() == int32(njobs) &&
			st.Completed == njobs &&
			st.Failed == 0 &&
			st.FreeNodes == nodes &&
			st.Running == 0 &&
			st.Waiting == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestNodeOccupancyNeverExceedsTotal samples occupancy while a random stream
// drains and checks the scheduler never over-commits the cluster.
func TestNodeOccupancyNeverExceedsTotal(t *testing.T) {
	const nodes = 4
	s, err := New(Config{TotalNodes: nodes, Backfill: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var jobs []*Job
	for i := 0; i < 40; i++ {
		j, err := s.Submit("j", 1+rng.Intn(nodes), 20*time.Millisecond, func() error {
			time.Sleep(time.Millisecond)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	deadline := time.After(10 * time.Second)
	for {
		st := s.Stats()
		if st.FreeNodes < 0 || st.FreeNodes > nodes {
			t.Fatalf("free nodes out of range: %+v", st)
		}
		if st.Completed == len(jobs) {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("stream did not drain: %+v", st)
		case <-time.After(time.Millisecond):
		}
	}
}
