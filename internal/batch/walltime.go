package batch

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cori"
	"repro/internal/scheduler"
)

// WalltimePolicy sizes reservation walltimes from CoRI duration forecasts,
// replacing the fixed grant the paper's batch submissions used. The sized
// walltime is forecast × (1 + Margin/confidence): at full confidence the pad
// is Margin, and as the model goes stale the pad widens in proportion, so a
// half-trusted model gets twice the safety margin. With no trusted forecast
// at all (cold monitor, or confidence below MinConfidence) the policy falls
// back to the Fixed grant.
type WalltimePolicy struct {
	// Fixed is the fallback grant when no trusted forecast exists
	// (default 2h, a typical user walltime request).
	Fixed time.Duration
	// Margin is the fractional safety pad at full confidence (default 0.2).
	Margin float64
	// MinConfidence is the trust floor below which the model is ignored
	// (default scheduler.DefaultMinConfidence, shared with the forecast-aware
	// policies so every layer agrees on which models count).
	MinConfidence float64
	// Max caps the sized walltime (0 = uncapped).
	Max time.Duration
	// RequeueFactor multiplies the walltime after an overrun kill
	// (default 2): the kill proves the grant too small, so the requeue
	// doubles it rather than re-trusting the forecast.
	RequeueFactor float64
}

// WithDefaults resolves the zero-value fields to the documented defaults;
// the simulator mirror calls it so virtual-time sizing matches the live
// executor exactly.
func (p WalltimePolicy) WithDefaults() WalltimePolicy {
	if p.Fixed <= 0 {
		p.Fixed = 2 * time.Hour
	}
	if p.Margin <= 0 {
		p.Margin = 0.2
	}
	if p.MinConfidence <= 0 {
		p.MinConfidence = scheduler.DefaultMinConfidence
	}
	if p.RequeueFactor <= 1 {
		p.RequeueFactor = 2
	}
	return p
}

// FromForecast converts a duration forecast (seconds) and model confidence
// into a walltime. ok is false when the forecast is unusable (non-positive,
// or confidence below the floor) and the caller must fall back to Fixed.
// This pure form is shared by the live ForecastExecutor and the simulator's
// virtual-time mirror, so the two paths cannot drift.
func (p WalltimePolicy) FromForecast(forecastS, confidence float64) (time.Duration, bool) {
	p = p.WithDefaults()
	if forecastS <= 0 || confidence < p.MinConfidence {
		return 0, false
	}
	if confidence > 1 {
		confidence = 1
	}
	wall := time.Duration(forecastS * (1 + p.Margin/confidence) * float64(time.Second))
	if p.Max > 0 && wall > p.Max {
		wall = p.Max
	}
	return wall, true
}

// Size picks the walltime for one solve: the forecast-derived walltime when
// the monitor holds a trusted model for the service, else the fixed grant.
// sized reports which path was taken.
func (p WalltimePolicy) Size(m *cori.Monitor, service string, workGFlops float64) (wall time.Duration, sized bool) {
	p = p.WithDefaults()
	if m != nil {
		if model, ok := m.Model(service); ok {
			if w, ok := p.FromForecast(model.SolveSeconds(workGFlops), model.Confidence); ok {
				return w, true
			}
		}
	}
	return p.Fixed, false
}

// ExecStats counts a ForecastExecutor's sizing decisions and their outcomes.
type ExecStats struct {
	ForecastSized int // reservations sized from a trusted forecast
	FixedFallback int // cold or stale monitor → fixed grant
	OverrunKills  int // attempts killed at their walltime
	Requeues      int // resubmissions after a kill
	Backfilled    int // attempts the batch scheduler started ahead of FIFO order
	// QueueWait is the batch-queue wait (submit→start) summed over every
	// attempt this executor ran — the reservation wait component of each
	// solve's observed wait, which the SeD feeds to cori.Sample.Wait.
	QueueWait time.Duration
}

// ForecastExecutor routes each solve through a reservation whose walltime is
// sized by a WalltimePolicy from the SeD's CoRI monitor — the
// forecast-closed version of Executor. It implements the sized-executor
// contract diet.SeD probes for, so the service name and work estimate of
// every solve reach the sizing policy; a plain Execute call falls back to
// the fixed grant. Attempts killed at walltime expiry requeue with a
// RequeueFactor-widened grant up to MaxAttempts. Invocations of the body
// are serialised across attempts (Go cannot kill a killed attempt's
// goroutine, so the requeue waits it out rather than overlapping it), but a
// body that completed inside a killed grant may still re-run — solve bodies
// routed through a walltime-enforced System must be idempotent.
type ForecastExecutor struct {
	System  *System
	JobName string
	Nodes   int
	Monitor *cori.Monitor
	Policy  WalltimePolicy
	// MaxAttempts bounds kill-and-requeue retries (default 3).
	MaxAttempts int

	mu    sync.Mutex
	stats ExecStats
}

// BindMonitor adopts the SeD's monitor when the executor was built without
// one — diet.NewSeD probes for this, so a ForecastExecutor in a
// DeploymentSpec needs no explicit monitor wiring.
func (e *ForecastExecutor) BindMonitor(m *cori.Monitor) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.Monitor == nil {
		e.Monitor = m
	}
}

// Stats returns a snapshot of the executor's sizing counters.
func (e *ForecastExecutor) Stats() ExecStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Execute implements diet.Executor for callers without work information:
// the reservation uses the fixed grant.
func (e *ForecastExecutor) Execute(run func() error) error {
	return e.ExecuteSized("", 0, run)
}

// ExecuteSized implements the diet sized-executor contract: size the
// walltime from the monitor's forecast for this service and work, submit,
// and on an overrun kill requeue with a widened grant.
func (e *ForecastExecutor) ExecuteSized(service string, workGFlops float64, run func() error) error {
	_, err := e.ExecuteSizedWait(service, workGFlops, run)
	return err
}

// ExecuteSizedWait is ExecuteSized returning the measured batch-queue wait:
// submit→start, summed over every reservation attempt the solve took. This
// is the wait the queue actually imposed — a backfilled reservation reports
// the shortened wait it won, and a killed attempt's thrown-away compute is
// not counted as waiting — which diet.SeD folds into cori.Sample.Wait so
// the wait-on-depth regression trains on real backfill behaviour instead of
// the FIFO drain it would otherwise assume. Attempt bodies are serialised
// and abandoned attempts (killed while a previous invocation was still
// draining) skip the body entirely, so `run` never executes twice
// concurrently.
func (e *ForecastExecutor) ExecuteSizedWait(service string, workGFlops float64, run func() error) (time.Duration, error) {
	return e.ExecuteSizedTrace(service, workGFlops, run, nil)
}

// ExecuteSizedTrace is ExecuteSizedWait with a per-attempt lifecycle
// callback: after each reservation attempt finishes (normally or killed at
// its walltime) the callback receives the attempt number, the batch-queue
// wait that attempt paid, whether it was killed, and its submit/end stamps.
// diet.SeD probes for this (TracingExecutor) to turn attempts into reserve
// and overrun_kill spans of the request's trace. A nil trace skips the
// bookkeeping, making this exactly ExecuteSizedWait.
func (e *ForecastExecutor) ExecuteSizedTrace(service string, workGFlops float64, run func() error,
	trace func(attempt int, wait time.Duration, killed bool, start, end time.Time)) (time.Duration, error) {
	pol := e.Policy.WithDefaults()
	nodes := e.Nodes
	if nodes < 1 {
		nodes = 1
	}
	maxAttempts := e.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 3
	}
	e.mu.Lock()
	monitor := e.Monitor
	e.mu.Unlock()
	var wall time.Duration
	var sized bool
	if service != "" {
		wall, sized = pol.Size(monitor, service, workGFlops)
	} else {
		wall, sized = pol.Fixed, false
	}
	e.mu.Lock()
	if sized {
		e.stats.ForecastSized++
	} else {
		e.stats.FixedFallback++
	}
	e.mu.Unlock()

	// A killed attempt's goroutine cannot be stopped, so it may still be
	// inside `run` when the requeued attempt starts. runMu serialises the
	// invocations and the abandoned flag makes a killed attempt's zombie
	// goroutine skip the body once it finally acquires the lock, so `run`
	// never executes concurrently with itself.
	var runMu sync.Mutex
	var queueWait time.Duration
	for attempt := 1; ; attempt++ {
		abandoned := &atomic.Bool{}
		script := func() error {
			runMu.Lock()
			defer runMu.Unlock()
			if abandoned.Load() {
				return ErrWalltime
			}
			return run()
		}
		attemptStart := time.Now()
		j, err := e.System.SubmitRequest(Request{
			Name: e.JobName, Nodes: nodes, Walltime: wall,
			ForecastSized: sized, Script: script,
		})
		if err != nil {
			return queueWait, err
		}
		err = e.System.Wait(j)
		if trace != nil {
			trace(attempt, j.WaitTime(), errors.Is(err, ErrWalltime), attemptStart, time.Now())
		}
		queueWait += j.WaitTime()
		e.mu.Lock()
		e.stats.QueueWait += j.WaitTime()
		if j.Backfilled() {
			e.stats.Backfilled++
		}
		e.mu.Unlock()
		if !errors.Is(err, ErrWalltime) {
			return queueWait, err
		}
		abandoned.Store(true)
		e.mu.Lock()
		e.stats.OverrunKills++
		if attempt >= maxAttempts {
			e.mu.Unlock()
			return queueWait, err
		}
		e.stats.Requeues++
		e.mu.Unlock()
		wall = time.Duration(float64(wall) * pol.RequeueFactor)
	}
}
