package batch

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cori"
)

// trainedMonitor returns a monitor whose model for "svc" predicts ~1 s
// solves, with an injectable clock to drive staleness.
func trainedMonitor(now *time.Time) *cori.Monitor {
	m := cori.NewMonitor(cori.Config{HalfLife: time.Hour, Now: func() time.Time { return *now }})
	for i := 0; i < 8; i++ {
		m.Observe(cori.Sample{Service: "svc", Duration: time.Second, At: *now})
	}
	return m
}

func TestWalltimeColdMonitorFallsBackToFixedGrant(t *testing.T) {
	pol := WalltimePolicy{Fixed: 90 * time.Minute}
	// Nil monitor and cold monitor both take the fixed-grant path.
	if wall, sized := pol.Size(nil, "svc", 100); sized || wall != 90*time.Minute {
		t.Fatalf("nil monitor: wall %v sized %v, want fixed 90m", wall, sized)
	}
	cold := cori.NewMonitor(cori.Config{})
	if wall, sized := pol.Size(cold, "svc", 100); sized || wall != 90*time.Minute {
		t.Fatalf("cold monitor: wall %v sized %v, want fixed 90m", wall, sized)
	}
	// A monitor trained on a *different* service is still cold for this one.
	now := time.Unix(1_000_000, 0)
	other := trainedMonitor(&now)
	if _, sized := pol.Size(other, "unseen", 100); sized {
		t.Fatal("history for another service must not size this one")
	}
}

func TestWalltimeStaleModelWidensMargin(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	m := trainedMonitor(&now)
	pol := WalltimePolicy{Fixed: time.Hour, Margin: 0.2}

	fresh, sized := pol.Size(m, "svc", 0)
	if !sized {
		t.Fatal("fresh model must size the walltime")
	}
	// Fresh: ~1 s forecast × (1 + 0.2/1.0) = 1.2 s.
	if fresh < 1100*time.Millisecond || fresh > 1300*time.Millisecond {
		t.Fatalf("fresh walltime %v, want ≈1.2 s", fresh)
	}

	// One half-life later, confidence halves and the margin doubles:
	// 1 s × (1 + 0.2/0.5) = 1.4 s.
	now = now.Add(time.Hour)
	stale, sized := pol.Size(m, "svc", 0)
	if !sized {
		t.Fatal("half-life-old model is still trusted")
	}
	if stale <= fresh {
		t.Fatalf("stale walltime %v must be wider than fresh %v", stale, fresh)
	}
	if stale < 1300*time.Millisecond || stale > 1500*time.Millisecond {
		t.Fatalf("stale walltime %v, want ≈1.4 s", stale)
	}

	// Far past the trust floor (~4.4 half-lives = conf 0.047 < 0.05) the
	// model is ignored entirely: back to the fixed grant.
	now = now.Add(10 * time.Hour)
	wall, sized := pol.Size(m, "svc", 0)
	if sized || wall != time.Hour {
		t.Fatalf("decayed model: wall %v sized %v, want fixed grant", wall, sized)
	}
}

func TestWalltimeEnforcementKillsOverrun(t *testing.T) {
	s, _ := New(Config{TotalNodes: 1, EnforceWalltime: true})
	release := make(chan struct{})
	j, _ := s.Submit("overrun", 1, 20*time.Millisecond, func() error {
		<-release
		return nil
	})
	err := s.Wait(j)
	close(release)
	if !errors.Is(err, ErrWalltime) {
		t.Fatalf("Wait = %v, want ErrWalltime", err)
	}
	if j.State() != Failed {
		t.Fatalf("state %s, want Failed", j.State())
	}
	st := s.Stats()
	if st.OverrunKills != 1 || st.Failed != 1 {
		t.Fatalf("stats %+v, want one overrun kill", st)
	}
	if st.FreeNodes != 1 {
		t.Fatalf("killed job must release its nodes, free = %d", st.FreeNodes)
	}
}

func TestWalltimeEnforcementLeavesFinishersAlone(t *testing.T) {
	s, _ := New(Config{TotalNodes: 1, EnforceWalltime: true})
	j, _ := s.Submit("quick", 1, time.Minute, func() error { return nil })
	if err := s.Wait(j); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.OverrunKills != 0 || st.Completed != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.IdlePad <= 0 || st.Reserved != time.Minute {
		t.Fatalf("pad accounting: pad %v reserved %v", st.IdlePad, st.Reserved)
	}
}

func TestForecastExecutorOverrunKillAndRequeue(t *testing.T) {
	s, _ := New(Config{TotalNodes: 1, EnforceWalltime: true})
	now := time.Unix(1_000_000, 0)
	// The model predicts 1 s but margin is tiny and the real solve takes
	// longer than the first sized grant: sized ≈ 10 ms × 1.01 → killed,
	// requeued at ~20 ms, killed, then ~40 ms succeeds.
	m := cori.NewMonitor(cori.Config{Now: func() time.Time { return now }})
	for i := 0; i < 4; i++ {
		m.Observe(cori.Sample{Service: "svc", Duration: 10 * time.Millisecond, At: now})
	}
	e := &ForecastExecutor{
		System: s, JobName: "sized", Nodes: 1, Monitor: m,
		Policy:      WalltimePolicy{Fixed: time.Minute, Margin: 0.01},
		MaxAttempts: 5,
	}
	var runs atomic.Int32
	err := e.ExecuteSized("svc", 0, func() error {
		runs.Add(1)
		time.Sleep(35 * time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatalf("ExecuteSized = %v, want eventual success after requeues", err)
	}
	st := e.Stats()
	if st.ForecastSized != 1 {
		t.Fatalf("stats %+v: the first attempt must be forecast-sized", st)
	}
	if st.OverrunKills == 0 || st.Requeues == 0 {
		t.Fatalf("stats %+v: the undersized grant must be killed and requeued", st)
	}
	if st.OverrunKills != st.Requeues {
		t.Fatalf("stats %+v: every kill must requeue on success", st)
	}
	if sys := s.Stats(); sys.OverrunKills != st.OverrunKills {
		t.Fatalf("system kills %d must match executor kills %d", sys.OverrunKills, st.OverrunKills)
	}
}

func TestForecastExecutorGivesUpAfterMaxAttempts(t *testing.T) {
	s, _ := New(Config{TotalNodes: 1, EnforceWalltime: true})
	e := &ForecastExecutor{
		System: s, JobName: "doomed", Nodes: 1,
		Policy:      WalltimePolicy{Fixed: 5 * time.Millisecond},
		MaxAttempts: 2,
	}
	block := make(chan struct{})
	defer close(block)
	err := e.Execute(func() error { <-block; return nil })
	if !errors.Is(err, ErrWalltime) {
		t.Fatalf("Execute = %v, want ErrWalltime after exhausting attempts", err)
	}
	st := e.Stats()
	if st.FixedFallback != 1 || st.OverrunKills != 2 || st.Requeues != 1 {
		t.Fatalf("stats %+v, want 2 kills / 1 requeue / fixed fallback", st)
	}
}

// TestExecuteSizedTraceReportsAttempts checks the per-attempt lifecycle
// callback against a real kill-and-requeue sequence: every attempt fires
// exactly once, attempts are numbered in order, kills carry the killed flag,
// and the successful final attempt does not.
func TestExecuteSizedTraceReportsAttempts(t *testing.T) {
	s, _ := New(Config{TotalNodes: 1, EnforceWalltime: true})
	now := time.Unix(1_000_000, 0)
	m := cori.NewMonitor(cori.Config{Now: func() time.Time { return now }})
	for i := 0; i < 4; i++ {
		m.Observe(cori.Sample{Service: "svc", Duration: 10 * time.Millisecond, At: now})
	}
	e := &ForecastExecutor{
		System: s, JobName: "traced", Nodes: 1, Monitor: m,
		Policy:      WalltimePolicy{Fixed: time.Minute, Margin: 0.01},
		MaxAttempts: 5,
	}
	type attemptRec struct {
		attempt int
		wait    time.Duration
		killed  bool
	}
	var mu sync.Mutex
	var seen []attemptRec
	_, err := e.ExecuteSizedTrace("svc", 0, func() error {
		time.Sleep(35 * time.Millisecond)
		return nil
	}, func(attempt int, wait time.Duration, killed bool, start, end time.Time) {
		mu.Lock()
		defer mu.Unlock()
		if end.Before(start) {
			t.Errorf("attempt %d ends before it starts", attempt)
		}
		seen = append(seen, attemptRec{attempt, wait, killed})
	})
	if err != nil {
		t.Fatalf("ExecuteSizedTrace = %v, want eventual success", err)
	}
	st := e.Stats()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != st.OverrunKills+1 {
		t.Fatalf("callback fired %d times, want one per attempt (%d kills + success)", len(seen), st.OverrunKills)
	}
	for i, rec := range seen {
		if rec.attempt != i+1 {
			t.Errorf("attempt numbering: got %d at position %d", rec.attempt, i)
		}
		wantKilled := i < len(seen)-1
		if rec.killed != wantKilled {
			t.Errorf("attempt %d killed=%v, want %v", rec.attempt, rec.killed, wantKilled)
		}
	}
	// The traced path must account queue wait identically to the untraced
	// one: the sum over attempts.
	var sum time.Duration
	for _, rec := range seen {
		sum += rec.wait
	}
	if sum != st.QueueWait {
		t.Errorf("traced waits sum %v, stats say %v", sum, st.QueueWait)
	}
}
