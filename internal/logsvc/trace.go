package logsvc

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TraceEvent is one entry of the Chrome Trace Event format (the JSON array
// flavour chrome://tracing and Perfetto load). Spans become complete events
// (ph "X"), plain events become instants (ph "i").
type TraceEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Phase string            `json:"ph"`
	TsUS  float64           `json:"ts"`            // microseconds
	DurUS float64           `json:"dur,omitempty"` // microseconds, complete events only
	PID   int               `json:"pid"`
	TID   string            `json:"tid"`
	Scope string            `json:"s,omitempty"` // instant scope
	Args  map[string]string `json:"args,omitempty"`
}

// ChromeTrace converts bus events into Chrome Trace Event entries: each
// component becomes a track (tid), spans draw with their measured duration,
// and timestamps are rebased so the earliest event sits at t=0 (virtual-time
// simulator traces and wall-clock live traces both render from the origin).
func ChromeTrace(events []Event) []TraceEvent {
	var t0 int64 = 0
	first := true
	for _, ev := range events {
		ts := ev.TimeNanos
		if ev.IsSpan() {
			ts = ev.StartNanos
		}
		if first || ts < t0 {
			t0, first = ts, false
		}
	}
	out := make([]TraceEvent, 0, len(events))
	for _, ev := range events {
		te := TraceEvent{Name: ev.Kind, Cat: ev.Service, PID: 1, TID: ev.Component}
		args := map[string]string{}
		if ev.Detail != "" {
			args["detail"] = ev.Detail
		}
		if ev.IsSpan() {
			args["request_id"] = ev.RequestID
			te.Phase = "X"
			te.TsUS = float64(ev.StartNanos-t0) / 1e3
			te.DurUS = float64(ev.DurNanos()) / 1e3
			if te.DurUS == 0 {
				// Zero-width complete events vanish in the viewer; draw a
				// hair-width slice instead.
				te.DurUS = 0.001
			}
		} else {
			te.Phase = "i"
			te.Scope = "t"
			te.TsUS = float64(ev.TimeNanos-t0) / 1e3
		}
		if len(args) > 0 {
			te.Args = args
		}
		out = append(out, te)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TsUS < out[j].TsUS })
	return out
}

// WriteChromeTrace writes events as a chrome://tracing-compatible JSON array.
func WriteChromeTrace(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ChromeTrace(events))
}

// ReadChromeTrace parses a JSON trace written by WriteChromeTrace; tests use
// it to round-trip a recorded event stream.
func ReadChromeTrace(r io.Reader) ([]TraceEvent, error) {
	var out []TraceEvent
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("logsvc: parsing chrome trace: %w", err)
	}
	return out, nil
}

// SpansByRequest groups the span events by request ID, each group ordered by
// start time — the per-request view a trace inspector wants.
func SpansByRequest(events []Event) map[string][]Event {
	out := make(map[string][]Event)
	for _, ev := range events {
		if ev.IsSpan() {
			out[ev.RequestID] = append(out[ev.RequestID], ev)
		}
	}
	for id := range out {
		sp := out[id]
		sort.SliceStable(sp, func(i, j int) bool { return sp[i].StartNanos < sp[j].StartNanos })
	}
	return out
}
