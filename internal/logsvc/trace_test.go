package logsvc

import (
	"bytes"
	"testing"
)

// recordedStream is a miniature request trace the way the live middleware
// publishes it: one request's spans across four components, plus a plain
// lifecycle event.
func recordedStream(b *Bus) {
	b.Publish("SeD:N1", "start", "local:sed-N1")
	b.PublishSpan(Span{RequestID: "req-1", Component: "client", Kind: KindSubmit,
		Service: "ramsesZoom2", StartNanos: 1_000, EndNanos: 2_000})
	b.PublishSpan(Span{RequestID: "req-1", Component: "MA:MA1", Kind: KindSchedule,
		Service: "ramsesZoom2", StartNanos: 1_200, EndNanos: 1_800, Detail: "3 candidates"})
	b.PublishSpan(Span{RequestID: "req-1", Component: "SeD:N1", Kind: KindQueue,
		Service: "ramsesZoom2", StartNanos: 2_100, EndNanos: 5_000})
	b.PublishSpan(Span{RequestID: "req-1", Component: "SeD:N1", Kind: KindSolve,
		Service: "ramsesZoom2", StartNanos: 5_000, EndNanos: 9_000})
	b.PublishSpan(Span{RequestID: "req-1", Component: "client", Kind: KindComplete,
		Service: "ramsesZoom2", StartNanos: 1_000, EndNanos: 9_500})
}

func TestChromeTraceRoundTrip(t *testing.T) {
	b := New(100)
	recordedStream(b)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, b.History()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 6 {
		t.Fatalf("round-tripped %d trace events, want 6", len(back))
	}
	spans, instants := 0, 0
	var reqIDs = map[string]int{}
	for _, te := range back {
		switch te.Phase {
		case "X":
			spans++
			if te.DurUS <= 0 {
				t.Errorf("complete event %q has no duration", te.Name)
			}
			reqIDs[te.Args["request_id"]]++
		case "i":
			instants++
		default:
			t.Errorf("unexpected phase %q", te.Phase)
		}
	}
	if spans != 5 || instants != 1 {
		t.Fatalf("got %d spans + %d instants, want 5 + 1", spans, instants)
	}
	if reqIDs["req-1"] != 5 {
		t.Errorf("request grouping lost in export: %v", reqIDs)
	}
	// Timestamps are rebased to the earliest event and ordered.
	if back[0].TsUS != 0 {
		t.Errorf("first event at %v µs, want 0 (rebased)", back[0].TsUS)
	}
	for i := 1; i < len(back); i++ {
		if back[i].TsUS < back[i-1].TsUS {
			t.Error("trace events must be start-ordered")
		}
	}
}

func TestSpansByRequest(t *testing.T) {
	b := New(100)
	recordedStream(b)
	b.PublishSpan(Span{RequestID: "req-2", Component: "client", Kind: KindSubmit,
		StartNanos: 10_000, EndNanos: 10_500})

	groups := SpansByRequest(b.History())
	if len(groups) != 2 {
		t.Fatalf("grouped %d requests, want 2", len(groups))
	}
	if len(groups["req-1"]) != 5 || len(groups["req-2"]) != 1 {
		t.Errorf("group sizes req-1=%d req-2=%d", len(groups["req-1"]), len(groups["req-2"]))
	}
	sp := groups["req-1"]
	for i := 1; i < len(sp); i++ {
		if sp[i].StartNanos < sp[i-1].StartNanos {
			t.Error("spans within a request must be start-ordered")
		}
	}
	// Submit and complete share a start stamp; the stable sort keeps the
	// publication order, so submit leads and solve is the latest starter.
	if sp[0].Kind != KindSubmit || sp[len(sp)-1].Kind != KindSolve {
		t.Errorf("span order wrong: first %q last %q", sp[0].Kind, sp[len(sp)-1].Kind)
	}
}
