// Package logsvc is the monitoring component of the deployment — the role
// DIET's LogService/VizDIET play in the paper's §6.1 setup, where the MA
// node also hosts "the monitoring tools". Components publish trace events
// (start-up, registrations, solve begin/end, evictions) and request-scoped
// spans (submit, schedule, queue, solve, complete); the bus keeps a bounded
// history, fans events out to live subscribers, and aggregates counts —
// enough to drive a Gantt view, a chrome://tracing export, or the
// experiment bookkeeping. cmd/dietmon is the VizDIET-analog client.
package logsvc

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/rpc"
)

// ObjectName is the rpc object under which a bus is exposed.
const ObjectName = "logservice"

// Span kinds of the request-trace taxonomy. The live middleware
// (internal/diet) and the virtual-time simulator (internal/simgrid) emit the
// same kinds, so an ablation trace and a live trace are directly comparable.
const (
	KindSubmit   = "submit"       // client: the MA round trip (the Figure 6 "find" phase)
	KindSchedule = "schedule"     // MA: estimate collection + policy ranking
	KindCollect  = "collect"      // sub-agent: its share of the estimate fan-out
	KindQueue    = "queue"        // SeD: admission to compute start (FIFO + grants)
	KindReserve  = "reserve"      // batch: one reservation attempt (submit → outcome)
	KindKill     = "overrun_kill" // batch: an attempt killed at walltime expiry
	KindRequeue  = "requeue"      // recovery: work resubmitted after a node loss or failed attempt
	KindSolve    = "solve"        // SeD: the compute body
	KindComplete = "complete"     // client: the whole call, submission to reply
	KindWorkflow = "workflow"     // runner: one DAG node (or the whole campaign), ready to done
)

// Event is one trace record. Plain events carry only the first five fields;
// request-scoped spans also carry the trace fields (RequestID onward), with
// StartNanos/EndNanos bracketing the spanned work (StartNanos == EndNanos
// for instant events such as an overrun kill).
type Event struct {
	Seq       int64
	TimeNanos int64
	Component string // emitting component, e.g. "SeD:Nancy1"
	Kind      string // e.g. "start", "solve_begin", or a span kind ("solve")
	Detail    string

	RequestID  string // trace identity; empty for plain events
	Service    string
	StartNanos int64
	EndNanos   int64
}

// IsSpan reports whether the event is a request-scoped span.
func (e Event) IsSpan() bool { return e.RequestID != "" }

// DurNanos is the span duration (0 for plain or instant events).
func (e Event) DurNanos() int64 {
	if e.EndNanos > e.StartNanos {
		return e.EndNanos - e.StartNanos
	}
	return 0
}

// Span is one request-scoped trace span, the unit the middleware publishes
// while a request moves through client → MA → LA → SeD → batch → solve.
type Span struct {
	RequestID  string // shared by every span of one request
	Component  string // emitting component
	Kind       string // one of the Kind* constants
	Service    string
	Detail     string
	StartNanos int64
	EndNanos   int64
}

// SpanSink receives request-trace spans. *Bus and *Remote implement it;
// internal/diet probes its EventSink for this interface and falls back to a
// flattened Publish when the sink is plain.
type SpanSink interface {
	PublishSpan(Span)
}

// BusStats aggregates the bus's delivery accounting. Dropped events are the
// price of the never-block contract: a slow subscriber loses events rather
// than stalling the middleware, and the loss is counted, not silent.
type BusStats struct {
	Published   int64 // events accepted since New
	Dropped     int64 // per-subscriber deliveries lost to full buffers
	Subscribers int   // live subscribers
	HistoryLen  int   // retained events
}

// Bus is the event collector. The zero value is not usable; construct with
// New.
type Bus struct {
	mu        sync.Mutex
	seq       int64
	published int64
	dropped   int64
	history   []Event
	max       int
	subs      map[int]chan Event
	nextSub   int
}

// New returns a bus keeping at most maxHistory events (older ones drop).
func New(maxHistory int) *Bus {
	if maxHistory < 1 {
		maxHistory = 1
	}
	return &Bus{max: maxHistory, subs: make(map[int]chan Event)}
}

// Publish records a plain event and fans it out to subscribers.
func (b *Bus) Publish(component, kind, detail string) {
	b.PublishEvent(Event{Component: component, Kind: kind, Detail: detail})
}

// PublishSpan records a request-trace span; implements SpanSink.
func (b *Bus) PublishSpan(sp Span) {
	b.PublishEvent(Event{
		Component: sp.Component, Kind: sp.Kind, Detail: sp.Detail,
		RequestID: sp.RequestID, Service: sp.Service,
		StartNanos: sp.StartNanos, EndNanos: sp.EndNanos,
		TimeNanos: sp.EndNanos,
	})
}

// PublishEvent records a fully-formed event (the remote handler and the
// simulator use this to carry trace fields and virtual timestamps). Seq is
// assigned by the bus; a zero TimeNanos is stamped with wall-clock now.
// Slow subscribers lose events rather than block the platform (monitoring
// must never stall the middleware); every loss is counted in Stats.
func (b *Bus) PublishEvent(ev Event) {
	b.mu.Lock()
	b.seq++
	b.published++
	ev.Seq = b.seq
	if ev.TimeNanos == 0 {
		ev.TimeNanos = time.Now().UnixNano()
	}
	b.history = append(b.history, ev)
	if len(b.history) > b.max {
		b.history = b.history[len(b.history)-b.max:]
	}
	for _, ch := range b.subs {
		select {
		case ch <- ev:
		default: // drop for laggards — counted, never blocking
			b.dropped++
		}
	}
	b.mu.Unlock()
}

// Subscribe registers a live listener with the given channel buffer and
// returns the channel plus a cancel function.
func (b *Bus) Subscribe(buffer int) (<-chan Event, func()) {
	if buffer < 1 {
		buffer = 16
	}
	ch := make(chan Event, buffer)
	b.mu.Lock()
	id := b.nextSub
	b.nextSub++
	b.subs[id] = ch
	b.mu.Unlock()
	cancel := func() {
		b.mu.Lock()
		if _, ok := b.subs[id]; ok {
			delete(b.subs, id)
			close(ch)
		}
		b.mu.Unlock()
	}
	return ch, cancel
}

// History returns a copy of the retained events in order.
func (b *Bus) History() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, len(b.history))
	copy(out, b.history)
	return out
}

// HistorySince returns the retained events with Seq > since, in order — the
// polling form of Subscribe that works over the rpc bus (cmd/dietmon tails
// a remote deployment with it).
func (b *Bus) HistorySince(since int64) []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	i := sort.Search(len(b.history), func(i int) bool { return b.history[i].Seq > since })
	out := make([]Event, len(b.history)-i)
	copy(out, b.history[i:])
	return out
}

// Stats returns the bus's delivery accounting.
func (b *Bus) Stats() BusStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BusStats{
		Published: b.published, Dropped: b.dropped,
		Subscribers: len(b.subs), HistoryLen: len(b.history),
	}
}

// Dropped reports how many per-subscriber deliveries have been lost to full
// buffers since New.
func (b *Bus) Dropped() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// CountsByKind aggregates retained events per kind.
func (b *Bus) CountsByKind() map[string]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int)
	for _, ev := range b.history {
		out[ev.Kind]++
	}
	return out
}

// Components lists the distinct components seen, sorted.
func (b *Bus) Components() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	set := make(map[string]struct{})
	for _, ev := range b.history {
		set[ev.Component] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Handler exposes the bus over rpc so remote components can publish and
// tools can query.
func (b *Bus) Handler() rpc.Handler {
	return rpc.HandlerFunc(map[string]func([]byte) ([]byte, error){
		"Publish": func(body []byte) ([]byte, error) {
			var ev Event
			if err := rpc.Decode(body, &ev); err != nil {
				return nil, err
			}
			if ev.Component == "" || ev.Kind == "" {
				return nil, fmt.Errorf("logsvc: event needs component and kind")
			}
			ev.Seq = 0 // the bus owns sequence numbers
			b.PublishEvent(ev)
			return rpc.Encode(true)
		},
		"History": func([]byte) ([]byte, error) {
			return rpc.Encode(b.History())
		},
		"HistorySince": func(body []byte) ([]byte, error) {
			var since int64
			if err := rpc.Decode(body, &since); err != nil {
				return nil, err
			}
			return rpc.Encode(b.HistorySince(since))
		},
		"Counts": func([]byte) ([]byte, error) {
			return rpc.Encode(b.CountsByKind())
		},
		"Stats": func([]byte) ([]byte, error) {
			return rpc.Encode(b.Stats())
		},
	})
}

// Remote is a client-side handle publishing to a remote bus. It implements
// both the plain EventSink shape and SpanSink, so a daemon started with
// -logservice routes its whole trace — plain events and request spans — to
// the bus beside the MA.
type Remote struct {
	Addr string
}

// Publish sends one event to the remote bus; errors are swallowed because
// monitoring must never fail the caller.
func (r *Remote) Publish(component, kind, detail string) {
	var ok bool
	_ = rpc.Call(r.Addr, ObjectName, "Publish", Event{Component: component, Kind: kind, Detail: detail}, &ok)
}

// PublishSpan sends one request-trace span to the remote bus; implements
// SpanSink. Errors are swallowed like Publish's.
func (r *Remote) PublishSpan(sp Span) {
	var ok bool
	_ = rpc.Call(r.Addr, ObjectName, "Publish", Event{
		Component: sp.Component, Kind: sp.Kind, Detail: sp.Detail,
		RequestID: sp.RequestID, Service: sp.Service,
		StartNanos: sp.StartNanos, EndNanos: sp.EndNanos,
		TimeNanos: sp.EndNanos,
	}, &ok)
}

// History fetches the remote bus history.
func (r *Remote) History() ([]Event, error) {
	var out []Event
	err := rpc.Call(r.Addr, ObjectName, "History", struct{}{}, &out)
	return out, err
}

// HistorySince fetches the remote events with Seq > since — the polling
// subscription cmd/dietmon tails a live deployment with.
func (r *Remote) HistorySince(since int64) ([]Event, error) {
	var out []Event
	err := rpc.Call(r.Addr, ObjectName, "HistorySince", since, &out)
	return out, err
}

// Counts fetches the remote per-kind event counts.
func (r *Remote) Counts() (map[string]int, error) {
	var out map[string]int
	err := rpc.Call(r.Addr, ObjectName, "Counts", struct{}{}, &out)
	return out, err
}

// Stats fetches the remote bus's delivery accounting.
func (r *Remote) Stats() (BusStats, error) {
	var out BusStats
	err := rpc.Call(r.Addr, ObjectName, "Stats", struct{}{}, &out)
	return out, err
}
