// Package logsvc is the monitoring component of the deployment — the role
// DIET's LogService/VizDIET play in the paper's §6.1 setup, where the MA
// node also hosts "the monitoring tools". Components publish trace events
// (start-up, registrations, solve begin/end, evictions); the bus keeps a
// bounded history, fans events out to live subscribers, and aggregates
// counts — enough to drive a Gantt view or the experiment bookkeeping.
package logsvc

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/rpc"
)

// ObjectName is the rpc object under which a bus is exposed.
const ObjectName = "logservice"

// Event is one trace record.
type Event struct {
	Seq       int64
	TimeNanos int64
	Component string // emitting component, e.g. "SeD:Nancy1"
	Kind      string // e.g. "start", "solve_begin", "solve_end", "evict"
	Detail    string
}

// Bus is the event collector. The zero value is not usable; construct with
// New.
type Bus struct {
	mu      sync.Mutex
	seq     int64
	history []Event
	max     int
	subs    map[int]chan Event
	nextSub int
}

// New returns a bus keeping at most maxHistory events (older ones drop).
func New(maxHistory int) *Bus {
	if maxHistory < 1 {
		maxHistory = 1
	}
	return &Bus{max: maxHistory, subs: make(map[int]chan Event)}
}

// Publish records an event and fans it out to subscribers. Slow subscribers
// lose events rather than block the platform (monitoring must never stall
// the middleware).
func (b *Bus) Publish(component, kind, detail string) {
	b.mu.Lock()
	b.seq++
	ev := Event{
		Seq: b.seq, TimeNanos: time.Now().UnixNano(),
		Component: component, Kind: kind, Detail: detail,
	}
	b.history = append(b.history, ev)
	if len(b.history) > b.max {
		b.history = b.history[len(b.history)-b.max:]
	}
	for _, ch := range b.subs {
		select {
		case ch <- ev:
		default: // drop for laggards
		}
	}
	b.mu.Unlock()
}

// Subscribe registers a live listener with the given channel buffer and
// returns the channel plus a cancel function.
func (b *Bus) Subscribe(buffer int) (<-chan Event, func()) {
	if buffer < 1 {
		buffer = 16
	}
	ch := make(chan Event, buffer)
	b.mu.Lock()
	id := b.nextSub
	b.nextSub++
	b.subs[id] = ch
	b.mu.Unlock()
	cancel := func() {
		b.mu.Lock()
		if _, ok := b.subs[id]; ok {
			delete(b.subs, id)
			close(ch)
		}
		b.mu.Unlock()
	}
	return ch, cancel
}

// History returns a copy of the retained events in order.
func (b *Bus) History() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, len(b.history))
	copy(out, b.history)
	return out
}

// CountsByKind aggregates retained events per kind.
func (b *Bus) CountsByKind() map[string]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int)
	for _, ev := range b.history {
		out[ev.Kind]++
	}
	return out
}

// Components lists the distinct components seen, sorted.
func (b *Bus) Components() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	set := make(map[string]struct{})
	for _, ev := range b.history {
		set[ev.Component] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Handler exposes the bus over rpc so remote components can publish and
// tools can query.
func (b *Bus) Handler() rpc.Handler {
	return rpc.HandlerFunc(map[string]func([]byte) ([]byte, error){
		"Publish": func(body []byte) ([]byte, error) {
			var ev Event
			if err := rpc.Decode(body, &ev); err != nil {
				return nil, err
			}
			if ev.Component == "" || ev.Kind == "" {
				return nil, fmt.Errorf("logsvc: event needs component and kind")
			}
			b.Publish(ev.Component, ev.Kind, ev.Detail)
			return rpc.Encode(true)
		},
		"History": func([]byte) ([]byte, error) {
			return rpc.Encode(b.History())
		},
		"Counts": func([]byte) ([]byte, error) {
			return rpc.Encode(b.CountsByKind())
		},
	})
}

// Remote is a client-side handle publishing to a remote bus.
type Remote struct {
	Addr string
}

// Publish sends one event to the remote bus; errors are swallowed because
// monitoring must never fail the caller.
func (r *Remote) Publish(component, kind, detail string) {
	var ok bool
	_ = rpc.Call(r.Addr, ObjectName, "Publish", Event{Component: component, Kind: kind, Detail: detail}, &ok)
}

// History fetches the remote bus history.
func (r *Remote) History() ([]Event, error) {
	var out []Event
	err := rpc.Call(r.Addr, ObjectName, "History", struct{}{}, &out)
	return out, err
}
