package logsvc

import (
	"fmt"
	"testing"

	"repro/internal/rpc"
)

func TestPublishHistoryCounts(t *testing.T) {
	b := New(100)
	b.Publish("MA:MA1", "start", "local:agent-MA1")
	b.Publish("SeD:Nancy1", "start", "addr")
	b.Publish("SeD:Nancy1", "solve_begin", "ramsesZoom2")
	b.Publish("SeD:Nancy1", "solve_end", "ramsesZoom2")

	h := b.History()
	if len(h) != 4 {
		t.Fatalf("history %d events, want 4", len(h))
	}
	for i := 1; i < len(h); i++ {
		if h[i].Seq <= h[i-1].Seq {
			t.Error("sequence numbers must increase")
		}
	}
	counts := b.CountsByKind()
	if counts["start"] != 2 || counts["solve_begin"] != 1 {
		t.Errorf("counts %v", counts)
	}
	comps := b.Components()
	if len(comps) != 2 || comps[0] != "MA:MA1" {
		t.Errorf("components %v", comps)
	}
}

func TestHistoryBounded(t *testing.T) {
	b := New(5)
	for i := 0; i < 20; i++ {
		b.Publish("c", "k", fmt.Sprint(i))
	}
	h := b.History()
	if len(h) != 5 {
		t.Fatalf("history %d, want 5", len(h))
	}
	if h[0].Detail != "15" || h[4].Detail != "19" {
		t.Errorf("kept wrong window: %v … %v", h[0].Detail, h[4].Detail)
	}
}

func TestSubscribe(t *testing.T) {
	b := New(10)
	ch, cancel := b.Subscribe(4)
	b.Publish("c", "k1", "")
	b.Publish("c", "k2", "")
	if ev := <-ch; ev.Kind != "k1" {
		t.Errorf("first event %v", ev)
	}
	if ev := <-ch; ev.Kind != "k2" {
		t.Errorf("second event %v", ev)
	}
	cancel()
	if _, open := <-ch; open {
		t.Error("cancel should close the channel")
	}
	cancel() // idempotent
	b.Publish("c", "k3", "")
}

func TestSlowSubscriberDropsNotBlocks(t *testing.T) {
	b := New(10)
	_, cancel := b.Subscribe(1)
	defer cancel()
	// Fill the buffer and keep publishing; Publish must never block.
	for i := 0; i < 50; i++ {
		b.Publish("c", "k", "")
	}
	if len(b.History()) != 10 {
		t.Error("history should hold the cap")
	}
}

func TestRemotePublish(t *testing.T) {
	defer rpc.ResetLocal()
	b := New(50)
	srv := rpc.NewServer()
	srv.Register(ObjectName, b.Handler())
	addr, err := rpc.ServeLocal("logsvc-test", srv)
	if err != nil {
		t.Fatal(err)
	}
	r := &Remote{Addr: addr}
	r.Publish("SeD:X", "start", "detail")
	r.Publish("SeD:X", "solve_begin", "svc")
	h, err := r.History()
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 2 || h[0].Component != "SeD:X" {
		t.Errorf("remote history %v", h)
	}
	// Invalid events are rejected server-side but swallowed client-side.
	r.Publish("", "", "")
	if len(b.History()) != 2 {
		t.Error("invalid event must not be recorded")
	}
}
