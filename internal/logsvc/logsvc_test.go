package logsvc

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/rpc"
)

func TestPublishHistoryCounts(t *testing.T) {
	b := New(100)
	b.Publish("MA:MA1", "start", "local:agent-MA1")
	b.Publish("SeD:Nancy1", "start", "addr")
	b.Publish("SeD:Nancy1", "solve_begin", "ramsesZoom2")
	b.Publish("SeD:Nancy1", "solve_end", "ramsesZoom2")

	h := b.History()
	if len(h) != 4 {
		t.Fatalf("history %d events, want 4", len(h))
	}
	for i := 1; i < len(h); i++ {
		if h[i].Seq <= h[i-1].Seq {
			t.Error("sequence numbers must increase")
		}
	}
	counts := b.CountsByKind()
	if counts["start"] != 2 || counts["solve_begin"] != 1 {
		t.Errorf("counts %v", counts)
	}
	comps := b.Components()
	if len(comps) != 2 || comps[0] != "MA:MA1" {
		t.Errorf("components %v", comps)
	}
}

func TestHistoryBounded(t *testing.T) {
	b := New(5)
	for i := 0; i < 20; i++ {
		b.Publish("c", "k", fmt.Sprint(i))
	}
	h := b.History()
	if len(h) != 5 {
		t.Fatalf("history %d, want 5", len(h))
	}
	if h[0].Detail != "15" || h[4].Detail != "19" {
		t.Errorf("kept wrong window: %v … %v", h[0].Detail, h[4].Detail)
	}
}

func TestSubscribe(t *testing.T) {
	b := New(10)
	ch, cancel := b.Subscribe(4)
	b.Publish("c", "k1", "")
	b.Publish("c", "k2", "")
	if ev := <-ch; ev.Kind != "k1" {
		t.Errorf("first event %v", ev)
	}
	if ev := <-ch; ev.Kind != "k2" {
		t.Errorf("second event %v", ev)
	}
	cancel()
	if _, open := <-ch; open {
		t.Error("cancel should close the channel")
	}
	cancel() // idempotent
	b.Publish("c", "k3", "")
}

func TestSlowSubscriberDropsNotBlocks(t *testing.T) {
	b := New(10)
	_, cancel := b.Subscribe(1)
	defer cancel()
	// Fill the buffer and keep publishing; Publish must never block.
	for i := 0; i < 50; i++ {
		b.Publish("c", "k", "")
	}
	if len(b.History()) != 10 {
		t.Error("history should hold the cap")
	}
	// The loss is accounted, not silent: 50 published, buffer held 1.
	st := b.Stats()
	if st.Published != 50 {
		t.Errorf("published %d, want 50", st.Published)
	}
	if st.Dropped != 49 {
		t.Errorf("dropped %d, want 49", st.Dropped)
	}
	if b.Dropped() != st.Dropped {
		t.Error("Dropped() must agree with Stats()")
	}
}

// TestBusContention is the -race stress test of the slow-subscriber
// semantics: concurrent Publish, Subscribe/Unsubscribe churn, and History
// reads must never block or race, and every delivery lost to a full buffer
// must be counted.
func TestBusContention(t *testing.T) {
	b := New(64)
	const (
		publishers = 4
		perPub     = 500
		churners   = 3
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// A deliberately slow subscriber that never drains: every fan-out past
	// its one-slot buffer must be counted as dropped.
	_, cancelSlow := b.Subscribe(1)
	defer cancelSlow()

	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ch, cancel := b.Subscribe(2)
				// Drain a little, then walk away mid-stream.
				for i := 0; i < 3; i++ {
					select {
					case <-ch:
					default:
					}
				}
				cancel()
				b.History()
				b.HistorySince(0)
				b.CountsByKind()
				b.Stats()
			}
		}()
	}
	var pubWG sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pubWG.Add(1)
		go func(p int) {
			defer pubWG.Done()
			for i := 0; i < perPub; i++ {
				b.Publish(fmt.Sprintf("c%d", p), "k", fmt.Sprint(i))
				b.PublishSpan(Span{RequestID: fmt.Sprintf("r%d-%d", p, i), Component: "c", Kind: KindSolve})
			}
		}(p)
	}
	pubWG.Wait()
	close(stop)
	wg.Wait()

	st := b.Stats()
	want := int64(publishers * perPub * 2)
	if st.Published != want {
		t.Fatalf("published %d, want %d", st.Published, want)
	}
	// The never-draining one-slot subscriber alone guarantees visible loss,
	// and the loss must be reported.
	if st.Dropped < want-1 {
		t.Errorf("dropped %d, want at least %d (slow subscriber holds 1 of %d)", st.Dropped, want-1, want)
	}
	if st.HistoryLen != 64 {
		t.Errorf("history %d, want the 64 cap", st.HistoryLen)
	}
}

func TestHistorySince(t *testing.T) {
	b := New(100)
	for i := 0; i < 10; i++ {
		b.Publish("c", "k", fmt.Sprint(i))
	}
	h := b.History()
	tail := b.HistorySince(h[6].Seq)
	if len(tail) != 3 {
		t.Fatalf("tail %d events, want 3", len(tail))
	}
	if tail[0].Detail != "7" || tail[2].Detail != "9" {
		t.Errorf("tail window wrong: %v … %v", tail[0].Detail, tail[2].Detail)
	}
	if got := b.HistorySince(h[9].Seq); len(got) != 0 {
		t.Errorf("caught-up tail %d events, want 0", len(got))
	}
	// Events rotated out of the bounded history are simply gone.
	small := New(4)
	for i := 0; i < 10; i++ {
		small.Publish("c", "k", fmt.Sprint(i))
	}
	if got := small.HistorySince(0); len(got) != 4 {
		t.Errorf("bounded tail %d events, want 4", len(got))
	}
}

func TestSpanPublishing(t *testing.T) {
	b := New(10)
	b.PublishSpan(Span{
		RequestID: "req-1", Component: "SeD:N1", Kind: KindSolve,
		Service: "ramsesZoom2", StartNanos: 1000, EndNanos: 4000,
	})
	b.Publish("SeD:N1", "start", "addr")
	h := b.History()
	if !h[0].IsSpan() || h[1].IsSpan() {
		t.Fatalf("span classification wrong: %+v", h)
	}
	if h[0].DurNanos() != 3000 {
		t.Errorf("span duration %d, want 3000", h[0].DurNanos())
	}
	if h[0].TimeNanos != 4000 {
		t.Errorf("span event time %d, want the end stamp", h[0].TimeNanos)
	}
}

func TestRemotePublish(t *testing.T) {
	defer rpc.ResetLocal()
	b := New(50)
	srv := rpc.NewServer()
	srv.Register(ObjectName, b.Handler())
	addr, err := rpc.ServeLocal("logsvc-test", srv)
	if err != nil {
		t.Fatal(err)
	}
	r := &Remote{Addr: addr}
	r.Publish("SeD:X", "start", "detail")
	r.Publish("SeD:X", "solve_begin", "svc")
	h, err := r.History()
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 2 || h[0].Component != "SeD:X" {
		t.Errorf("remote history %v", h)
	}
	// Invalid events are rejected server-side but swallowed client-side.
	r.Publish("", "", "")
	if len(b.History()) != 2 {
		t.Error("invalid event must not be recorded")
	}

	// Spans travel the same RPC with their trace fields intact.
	r.PublishSpan(Span{RequestID: "req-9", Component: "SeD:X", Kind: KindQueue,
		Service: "svc", StartNanos: 10, EndNanos: 30})
	tail, err := r.HistorySince(h[1].Seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 1 || tail[0].RequestID != "req-9" || tail[0].DurNanos() != 20 {
		t.Errorf("remote span tail %+v", tail)
	}
	st, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Published != 3 {
		t.Errorf("remote stats %+v, want 3 published", st)
	}
}
