package logsvc

import (
	"fmt"
	"time"
)

// EventSink is the plain publish shape every middleware component accepts
// (structurally identical to diet.EventSink). *Bus, *Remote, Printer and Tee
// all satisfy it.
type EventSink interface {
	Publish(component, kind, detail string)
}

// Printer renders events and spans through a printf-style logger — the
// daemons' -log-events sink, turning the trace into process-log lines.
type Printer struct {
	Logf func(format string, v ...any)
}

// Publish logs one plain event.
func (p Printer) Publish(component, kind, detail string) {
	p.Logf("event %-14s %-16s %s", kind, component, detail)
}

// PublishSpan logs one request-trace span; implements SpanSink.
func (p Printer) PublishSpan(sp Span) {
	detail := sp.Detail
	if detail != "" {
		detail = " " + detail
	}
	p.Logf("span  %-14s %-16s req=%s svc=%s dur=%s%s",
		sp.Kind, sp.Component, sp.RequestID, sp.Service,
		time.Duration(sp.EndNanos-sp.StartNanos), detail)
}

// Tee fans events and spans out to every member sink, so a daemon can both
// publish to a remote LogService bus and echo into its own log. Members that
// don't understand spans get them flattened into plain events.
type Tee []EventSink

// Publish forwards a plain event to every member.
func (t Tee) Publish(component, kind, detail string) {
	for _, s := range t {
		s.Publish(component, kind, detail)
	}
}

// PublishSpan forwards a span to every member; implements SpanSink.
func (t Tee) PublishSpan(sp Span) {
	for _, s := range t {
		if ss, ok := s.(SpanSink); ok {
			ss.PublishSpan(sp)
			continue
		}
		detail := fmt.Sprintf("req=%s svc=%s dur=%s", sp.RequestID, sp.Service,
			time.Duration(sp.EndNanos-sp.StartNanos))
		if sp.Detail != "" {
			detail += " " + sp.Detail
		}
		s.Publish(sp.Component, sp.Kind, detail)
	}
}
