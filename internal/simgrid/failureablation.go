package simgrid

import (
	"fmt"
	"strings"

	"repro/internal/scheduler"
)

// This file runs the failure ablation (A10): the paper ran its campaign on a
// grid that stayed up, but §7 names transparent fault tolerance as the open
// problem a production deployment cannot skip. A10 prices it: the same
// campaign is replayed under a canonical failure schedule — a mid-campaign
// crash with restart, a network partition, lost dispatches, a node that dies
// for good, and a long outage near the tail — once with the self-healing
// mirror armed (heartbeat detection, kill-and-requeue, snapshot warm
// restore) and once fragile, where work on a dead node waits for its restart
// or is simply lost. A healthy run is the zero-failure reference.

// FailureAblationConfig tunes the A10 arms.
type FailureAblationConfig struct {
	// Schedule is the failure schedule both failing arms replay (default:
	// CanonicalFailureSchedule).
	Schedule []FailureEvent
	// DetectS and RetryS tune the healing arm's detection delay and client
	// backoff (defaults: the RunExperiment defaults — 90 s and 30 s).
	DetectS float64
	RetryS  float64
}

// CanonicalFailureSchedule is the default A10 schedule, timed against the
// canonical paced campaign (phase 1 ends ≈4 500 s; arrivals every ≈600 s for
// ≈60 000 s more):
//
//   - Nancy1 crashes at 3 h and restarts at 5 h — the crash-with-recovery
//     case, where healing requeues the dead work in seconds and restores the
//     node's forecast model from its snapshot.
//   - Sophia1 is partitioned from 7 h to 8 h — solves keep computing but
//     results wait; healing stops routing new work into the hole.
//   - Two dispatches to Toulouse1 vanish in flight at 10 h — healing
//     resubmits them, fragility never notices they are gone.
//   - Lille1 dies for good at 12 h — in the fragile arm its in-flight work
//     and every request later routed to it are lost outright.
//   - Lyon1-sag goes down from 15 h to 18 h, near the campaign tail — the
//     outage that separates the arms on makespan, because fragile clients
//     hang on it while healing reroutes within a heartbeat.
func CanonicalFailureSchedule() []FailureEvent {
	return []FailureEvent{
		{AtS: 10800, Kind: FailCrash, Node: "Nancy1"},
		{AtS: 18000, Kind: FailRestart, Node: "Nancy1"},
		{AtS: 25200, Kind: FailPartition, Node: "Sophia1"},
		{AtS: 28800, Kind: FailHeal, Node: "Sophia1"},
		{AtS: 36000, Kind: FailLoss, Node: "Toulouse1", Count: 2},
		{AtS: 43200, Kind: FailCrash, Node: "Lille1"},
		{AtS: 54000, Kind: FailCrash, Node: "Lyon1-sag"},
		{AtS: 64800, Kind: FailRestart, Node: "Lyon1-sag"},
	}
}

// FailureAblationResult compares three arms of the same campaign:
//
//   - Healthy: no failures — the reference cost of the platform.
//   - Healing: the failure schedule with the self-healing mirror armed.
//   - Fragile: the same schedule with no recovery at all.
type FailureAblationResult struct {
	Config  FailureAblationConfig
	Healthy *ExperimentResult
	Healing *ExperimentResult
	Fragile *ExperimentResult
}

// MakespanGainPct is the makespan saving of self-healing over the fragile
// hierarchy under the same failures.
func (r FailureAblationResult) MakespanGainPct() float64 {
	return 100 * (r.Fragile.TotalS - r.Healing.TotalS) / r.Fragile.TotalS
}

// SolvesSaved counts the requests self-healing completed that the fragile
// hierarchy lost outright.
func (r FailureAblationResult) SolvesSaved() int {
	return r.Fragile.SolvesLost - r.Healing.SolvesLost
}

// HealingOverheadPct is what the failures still cost the healing arm against
// the zero-failure reference — recovery is mitigation, not immunity.
func (r FailureAblationResult) HealingOverheadPct() float64 {
	return 100 * (r.Healing.TotalS - r.Healthy.TotalS) / r.Healthy.TotalS
}

// RestartsWarm reports whether every self-healing restart in the log came
// back with a trusted forecast model — the -cori-snapshot guarantee. The
// reason names the first cold rejoin.
func (r FailureAblationResult) RestartsWarm() (bool, string) {
	restarts := 0
	for _, e := range r.Healing.FailureLog {
		if e.Kind != "restart" {
			continue
		}
		restarts++
		if !strings.Contains(e.Detail, "model trusted=true") {
			return false, fmt.Sprintf("%s rejoined at %.0fs without a trusted model (%s)", e.Node, e.AtS, e.Detail)
		}
	}
	if restarts == 0 {
		return false, "the healing arm never restarted a node"
	}
	return true, ""
}

// RunFailureAblation runs A10 on the given configuration template. The
// template's policy, forecasting and failure fields are overridden per arm;
// everything else (work sizes, seed, pacing) is shared, so the schedules and
// seeds — not noise — separate the arms.
func RunFailureAblation(mkCfg func() ExperimentConfig, acfg FailureAblationConfig) (*FailureAblationResult, error) {
	if len(acfg.Schedule) == 0 {
		acfg.Schedule = CanonicalFailureSchedule()
	}
	base := func() ExperimentConfig {
		cfg := mkCfg()
		cfg.Policy = scheduler.NewPowerAware()
		cfg.Forecast = true
		// Campaigns span tens of virtual hours; measure on planning timescales.
		cfg.CoRI.HalfLife = TrainingHalfLife
		// Pace the paper's burst so the failures land on a live dispatch
		// stream rather than on decisions all made in the first second.
		if cfg.ArrivalGapS <= 0 {
			cfg.ArrivalGapS = 600
		}
		cfg.FailureDetectS = acfg.DetectS
		cfg.FailureRetryS = acfg.RetryS
		return cfg
	}
	out := &FailureAblationResult{Config: acfg}
	var err error

	cfg := base()
	if out.Healthy, err = RunExperiment(cfg); err != nil {
		return nil, fmt.Errorf("simgrid: failure ablation healthy arm: %w", err)
	}

	cfg = base()
	cfg.Failures = acfg.Schedule
	cfg.SelfHealing = true
	if out.Healing, err = RunExperiment(cfg); err != nil {
		return nil, fmt.Errorf("simgrid: failure ablation healing arm: %w", err)
	}

	cfg = base()
	cfg.Failures = acfg.Schedule
	if out.Fragile, err = RunExperiment(cfg); err != nil {
		return nil, fmt.Errorf("simgrid: failure ablation fragile arm: %w", err)
	}
	return out, nil
}
