package simgrid

import (
	"testing"

	"repro/internal/scheduler"
)

// a8Config is the shared A8 test campaign — the full paper workload with the
// ablation's paced arrivals (the virtual-time run costs milliseconds).
func a8Config() ExperimentConfig {
	cfg := DefaultExperiment(nil)
	cfg.ArrivalGapS = 600
	return cfg
}

// TestReplanAblationLiveBeatsStatic is the A8 acceptance assertion: on the
// drifting, miscalibrated platform, live replanning beats the frozen static
// plan's makespan without a restart and recovers a substantial share of the
// offline-replan win.
func TestReplanAblationLiveBeatsStatic(t *testing.T) {
	res, err := RunReplanAblation(a8Config, ReplanAblationConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Live.TotalS >= res.Static.TotalS {
		t.Fatalf("live replanning must beat the static plan: live %s vs static %s",
			Hours(res.Live.TotalS), Hours(res.Static.TotalS))
	}
	if gain := res.LiveGainPct(); gain < 5 {
		t.Fatalf("live gain %.1f%% over static, want at least 5%%", gain)
	}
	if res.Offline.TotalS >= res.Static.TotalS {
		t.Fatalf("offline replan arm must beat static (sanity): offline %s vs static %s",
			Hours(res.Offline.TotalS), Hours(res.Static.TotalS))
	}
	if rec := res.RecoveryPct(); rec < 40 {
		t.Fatalf("live replanning recovered only %.1f%% of the offline win, want most of it (>=40%%)", rec)
	}
	// The replanner actually ran and adapted: power refreshes happened after
	// the monitors trained.
	updates := 0
	for _, ev := range res.Live.Replans {
		updates += ev.PowerUpdates
	}
	if len(res.Live.Replans) < 2 || updates == 0 {
		t.Fatalf("live arm barely replanned: %d passes, %d power updates", len(res.Live.Replans), updates)
	}
	// The static arm must not have replanned at all.
	if len(res.Static.Replans) != 0 || len(res.Offline.Replans) != 0 {
		t.Fatalf("only the live arm replans: static %d, offline %d", len(res.Static.Replans), len(res.Offline.Replans))
	}
}

// TestReplanAblationMigrationCarriesModel is the second A8 acceptance
// assertion: the misplaced SeD is migrated mid-campaign, its model rides the
// snapshot round-trip un-degraded, and its first post-move dispatch is
// priced by that model — no cold restart.
func TestReplanAblationMigrationCarriesModel(t *testing.T) {
	res, err := RunReplanAblation(a8Config, ReplanAblationConfig{})
	if err != nil {
		t.Fatal(err)
	}
	migs := res.Migrations()
	moveAt, moved := migs[res.Config.MisplacedSeD]
	if !moved {
		t.Fatalf("the misplaced SeD %q was never migrated (migrations: %v)", res.Config.MisplacedSeD, migs)
	}
	if moveAt <= 0 || moveAt > res.Live.TotalS {
		t.Fatalf("migration time %.0fs outside the campaign (total %.0fs)", moveAt, res.Live.TotalS)
	}
	if ok, why := res.FirstPostMoveForecastTrusted(); !ok {
		t.Fatalf("post-move forecast not trusted: %s", why)
	}
	// And the move is exactly the placement fix: its first record after the
	// move is predicted by the model, not advertised power.
	rec := res.Live.FirstRecordOn(res.Config.MisplacedSeD, moveAt)
	if rec == nil {
		t.Fatal("no dispatch after the move — the scenario no longer exercises the guarantee")
	}
	if !rec.PredictedByModel {
		t.Fatalf("first post-move dispatch fell back to advertised power: %+v", rec)
	}
}

// TestReplanMirrorDeterministic: two identical live-replanning campaigns
// produce identical traces — the virtual-time protocol mirror is
// deterministic, making the chaos scenarios reproducible.
func TestReplanMirrorDeterministic(t *testing.T) {
	run := func() *ExperimentResult {
		cfg := a8Config()
		cfg.NRequests = 40
		cfg.Policy = scheduler.NewPowerAware()
		cfg.Forecast = true
		cfg.TruePowerFactor = CanonicalSkew
		cfg.CoRI.HalfLife = TrainingHalfLife
		cfg.ReplanIntervalS = 4 * 3600
		cfg.LiveParent = map[string]string{"Sophia2": "LA-grillon"}
		cfg.DriftAtS = 7200
		cfg.DriftPowerFactor = map[string]float64{"Lille1": 0.4}
		res, err := RunExperiment(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalS != b.TotalS || len(a.Replans) != len(b.Replans) {
		t.Fatalf("nondeterministic mirror: totals %.6f vs %.6f, replans %d vs %d",
			a.TotalS, b.TotalS, len(a.Replans), len(b.Replans))
	}
	for i := range a.Records {
		ra, rb := a.Records[i], b.Records[i]
		if ra.SeD != rb.SeD || ra.StartS != rb.StartS || ra.EndS != rb.EndS {
			t.Fatalf("record %d diverges: %+v vs %+v", i, ra, rb)
		}
	}
	for i := range a.Replans {
		ea, eb := a.Replans[i], b.Replans[i]
		if ea.AtS != eb.AtS || ea.PowerUpdates != eb.PowerUpdates || len(ea.Moved) != len(eb.Moved) {
			t.Fatalf("replan event %d diverges: %+v vs %+v", i, ea, eb)
		}
	}
}

// TestReplanRequiresForecast guards the config contract.
func TestReplanRequiresForecast(t *testing.T) {
	cfg := DefaultExperiment(scheduler.NewPowerAware())
	cfg.NRequests = 2
	cfg.ReplanIntervalS = 3600
	if _, err := RunExperiment(cfg); err == nil {
		t.Fatal("ReplanIntervalS without Forecast must be rejected")
	}
}

// TestDriftChangesTrueSpeedOnly checks the drift event rescales delivered
// speed while the advertised estimate stays put — only measurement can see
// it.
func TestDriftChangesTrueSpeedOnly(t *testing.T) {
	base := func() ExperimentConfig {
		cfg := DefaultExperiment(scheduler.NewRoundRobin())
		cfg.NRequests = 22
		cfg.ArrivalGapS = 3600 // spaced, so late solves run post-drift
		return cfg
	}
	honest, err := RunExperiment(base())
	if err != nil {
		t.Fatal(err)
	}
	cfg := base()
	cfg.DriftAtS = 1
	cfg.DriftPowerFactor = map[string]float64{"Lille1": 0.5}
	drifted, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same dispatch pattern (advertised powers unchanged, round-robin), but
	// Lille1's solves take twice as long.
	slower := 0
	for i := range honest.Records {
		h, d := honest.Records[i], drifted.Records[i]
		if h.SeD != d.SeD {
			t.Fatalf("drift changed the dispatch pattern: record %d %s vs %s", i, h.SeD, d.SeD)
		}
		if h.SeD == "Lille1" && d.DurationS() > 1.9*h.DurationS() {
			slower++
		}
	}
	if slower == 0 {
		t.Fatal("drift never slowed a Lille1 solve")
	}
}
