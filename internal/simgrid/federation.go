package simgrid

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// This file mirrors the multi-MA federation in virtual time: the submission
// plane of a federated deployment, where a gateway sticky-routes each
// service onto one Master Agent, MAs answer the finding phase serially (the
// ORB-overhead cost the paper's Figure 6 calls "finding time"), and a
// request for a service whose SeDs live under a different MA is
// peer-forwarded — consuming a miss probe at every peer and a full finding
// at the service's home MA, plus a forward round trip. The federation
// ablation (A12) drives it: saturation throughput and p99 submit latency,
// one MA versus N federated MAs, under the same open-loop arrival stream.

// FederationConfig describes one federated submission-plane run.
type FederationConfig struct {
	// MAs is the federation width (1 = the single-MA baseline).
	MAs int
	// Services is how many distinct services the request stream spreads
	// over (default 32).
	Services int
	// Requests is the total submission count (default 4000).
	Requests int
	// ArrivalRateHz is the open-loop arrival rate of the stream, requests
	// per virtual second (default 100). Pick it between the single-MA and
	// federated capacities to see the single MA saturate while the
	// federation keeps up.
	ArrivalRateHz float64
	// SubmitCostMS is one MA's serial processing per finding phase —
	// collect fan-out, ranking, resolve; the ~30 ms ORB overhead of the
	// paper's finding-time measurements (default 30).
	SubmitCostMS float64
	// MissCostMS is the cheaper probe a peer pays when a forwarded request
	// finds nothing in its subtree (default SubmitCostMS/3).
	MissCostMS float64
	// ForwardRTTMS is the wire round trip a peer forward adds on top of the
	// home MA's processing (default 10).
	ForwardRTTMS float64
	// ForeignFrac is the fraction of services whose SeDs are registered
	// under a different MA than the gateway's sticky route — deployments
	// that predate the federation layout, the requests that exercise peer
	// forwarding (default 0.25; meaningless with one MA).
	ForeignFrac float64
}

func (cfg *FederationConfig) defaults() error {
	if cfg.MAs <= 0 {
		return fmt.Errorf("simgrid: federation needs at least one MA")
	}
	if cfg.Services <= 0 {
		cfg.Services = 32
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 4000
	}
	if cfg.ArrivalRateHz <= 0 {
		cfg.ArrivalRateHz = 100
	}
	if cfg.SubmitCostMS <= 0 {
		cfg.SubmitCostMS = 30
	}
	if cfg.MissCostMS <= 0 {
		cfg.MissCostMS = cfg.SubmitCostMS / 3
	}
	if cfg.ForwardRTTMS <= 0 {
		cfg.ForwardRTTMS = 10
	}
	if cfg.ForeignFrac < 0 || cfg.ForeignFrac > 1 {
		return fmt.Errorf("simgrid: ForeignFrac %g out of [0,1]", cfg.ForeignFrac)
	}
	if cfg.ForeignFrac == 0 {
		cfg.ForeignFrac = 0.25
	}
	return nil
}

// FederationRequestRecord is one submission's life in the federated plane.
type FederationRequestRecord struct {
	Service   string
	ArriveS   float64
	DoneS     float64
	Forwarded bool
}

// LatencyS is the submit latency: arrival at the gateway to ranked reply.
func (r FederationRequestRecord) LatencyS() float64 { return r.DoneS - r.ArriveS }

// FederationResult aggregates one federated run.
type FederationResult struct {
	Config   FederationConfig
	Requests []FederationRequestRecord
	Forwards int
	TotalS   float64 // last reply − first arrival
}

// ThroughputPerSec is the saturation throughput: completed findings per
// virtual second over the span of the run.
func (r *FederationResult) ThroughputPerSec() float64 {
	if r.TotalS <= 0 {
		return 0
	}
	return float64(len(r.Requests)) / r.TotalS
}

// P99LatencyS is the 99th-percentile submit latency.
func (r *FederationResult) P99LatencyS() float64 {
	return r.latencyQuantile(0.99)
}

// MeanLatencyS is the mean submit latency.
func (r *FederationResult) MeanLatencyS() float64 {
	if len(r.Requests) == 0 {
		return 0
	}
	sum := 0.0
	for _, req := range r.Requests {
		sum += req.LatencyS()
	}
	return sum / float64(len(r.Requests))
}

func (r *FederationResult) latencyQuantile(q float64) float64 {
	if len(r.Requests) == 0 {
		return 0
	}
	lat := make([]float64, len(r.Requests))
	for i, req := range r.Requests {
		lat[i] = req.LatencyS()
	}
	sort.Float64s(lat)
	idx := int(math.Ceil(q*float64(len(lat)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(lat) {
		idx = len(lat) - 1
	}
	return lat[idx]
}

// maServer is one MA's serial submission processor: a FIFO of work items
// drained one at a time on the virtual clock.
type maServer struct {
	sim   *Sim
	queue []func(startS float64)
	busy  bool
	costs []float64
}

func (m *maServer) enqueue(costS float64, done func(startS float64)) {
	m.queue = append(m.queue, done)
	m.costs = append(m.costs, costS)
	m.drain()
}

func (m *maServer) drain() {
	if m.busy || len(m.queue) == 0 {
		return
	}
	m.busy = true
	fn, cost := m.queue[0], m.costs[0]
	m.queue, m.costs = m.queue[1:], m.costs[1:]
	start := m.sim.Now()
	_ = m.sim.After(cost, func() {
		m.busy = false
		fn(start)
		m.drain()
	})
}

// routeOf sticky-routes a service name onto an MA index, the same FNV-1a
// hash the live gateway uses.
func routeOf(service string, mas int) int {
	h := fnv.New32a()
	h.Write([]byte(service))
	return int(h.Sum32()) % mas
}

// RunFederation replays an open-loop submission stream against a federated
// (or single) MA plane and reports per-request records.
func RunFederation(cfg FederationConfig) (*FederationResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	sim := NewSim()
	servers := make([]*maServer, cfg.MAs)
	for i := range servers {
		servers[i] = &maServer{sim: sim}
	}

	// Service placement: sticky routing and SeD homes agree by construction
	// (both hash the name), except every ⌈1/ForeignFrac⌉-th service, whose
	// hierarchy is displaced one MA over — those submissions must forward.
	foreignEvery := 0
	if cfg.MAs > 1 && cfg.ForeignFrac > 0 {
		foreignEvery = int(math.Round(1 / cfg.ForeignFrac))
	}
	homeOf := make([]int, cfg.Services)
	names := make([]string, cfg.Services)
	for s := 0; s < cfg.Services; s++ {
		names[s] = fmt.Sprintf("svc%03d", s)
		homeOf[s] = routeOf(names[s], cfg.MAs)
		if foreignEvery > 0 && s%foreignEvery == 0 {
			homeOf[s] = (homeOf[s] + 1) % cfg.MAs
		}
	}

	res := &FederationResult{Config: cfg, Requests: make([]FederationRequestRecord, cfg.Requests)}
	submitS := cfg.SubmitCostMS / 1000
	missS := cfg.MissCostMS / 1000
	rttS := cfg.ForwardRTTMS / 1000
	for i := 0; i < cfg.Requests; i++ {
		i := i
		svc := i % cfg.Services
		arrive := float64(i) / cfg.ArrivalRateHz
		route, home := routeOf(names[svc], cfg.MAs), homeOf[svc]
		res.Requests[i] = FederationRequestRecord{Service: names[svc], ArriveS: arrive}
		finish := func(float64) {
			res.Requests[i].DoneS = sim.Now()
		}
		_ = sim.At(arrive, func() {
			if route == home {
				servers[route].enqueue(submitS, finish)
				return
			}
			// Local miss at the sticky-routed MA: its collect comes up empty
			// (a miss probe), then the forward broadcast — every other peer
			// pays a miss probe, the home MA a full finding, and the reply
			// crosses the wire back.
			res.Requests[i].Forwarded = true
			res.Forwards++
			servers[route].enqueue(missS, func(float64) {
				for p := range servers {
					if p == route || p == home {
						continue
					}
					servers[p].enqueue(missS, func(float64) {})
				}
				_ = sim.After(rttS/2, func() {
					servers[home].enqueue(submitS, func(float64) {
						_ = sim.After(rttS/2, func() { finish(0) })
					})
				})
			})
		})
	}
	sim.Run()

	first, last := math.Inf(1), 0.0
	for _, r := range res.Requests {
		if r.ArriveS < first {
			first = r.ArriveS
		}
		if r.DoneS > last {
			last = r.DoneS
		}
	}
	res.TotalS = last - first
	return res, nil
}
