package simgrid

import (
	"testing"

	"repro/internal/scheduler"
)

// BenchmarkExperimentForecastAware replays the paper campaign (100 requests,
// 11 SeDs) with CoRI monitors attached — the simulator's end-to-end hot
// path including model fitting on every estimate.
func BenchmarkExperimentForecastAware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultExperiment(scheduler.NewForecastAware())
		cfg.Forecast = true
		if _, err := RunExperiment(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmStartAblation measures the A7 ablation end to end: one
// training round, registry aggregation, monitor cloning through the
// snapshot round-trip, and both measured arms.
func BenchmarkWarmStartAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunWarmStartAblation(func() ExperimentConfig {
			cfg := DefaultExperiment(nil)
			cfg.NRequests = 60
			return cfg
		}, "Nancy2", 2); err != nil {
			b.Fatal(err)
		}
	}
}
