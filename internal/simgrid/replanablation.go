package simgrid

import (
	"fmt"

	"repro/internal/cori"
	"repro/internal/deploy"
	"repro/internal/scheduler"
)

// This file runs the live-replanning ablation (A8): the paper's deployments
// are planned once and frozen, and the A6 ablation showed how much an
// *offline* replan (retrain, recompute the plan, restart everything) buys on
// a miscalibrated platform. A8 asks the sharper question the live-migration
// protocol answers: how much of that win does a long-lived hierarchy recover
// by replanning *itself*, mid-campaign, without a restart — periodic
// deploy.Replan passes re-advertising measured powers and migrating
// misplaced SeDs live, models carried across each move.
//
// An honest accounting of the two legs: in the simulator, SeD placement is
// latency-neutral (estimates and transfer times never read the parent), so
// the makespan gain of the live arm comes from the measured-power refreshes;
// the migration leg costs it a drain pause and exists to prove the protocol
// under measurement — the move happens mid-campaign, the model rides the
// snapshot round-trip, and the post-move forecast assertions hold. In the
// live middleware the placement additionally carries the §3.1 WAN-traffic
// cost that deploy.Plan.WANMessagesPerRequest scores.

// ReplanAblationConfig tunes the A8 arms.
type ReplanAblationConfig struct {
	// Rounds is the training depth of the offline arm (rounds-1 training
	// campaigns before the measured one), as in RunDeployAblation.
	Rounds int
	// ReplanIntervalS is the live arm's replanning cadence (default 6h — by
	// the first pass the misplaced SeD has completed measured solves, so its
	// migration carries a trusted model).
	ReplanIntervalS float64
	// MisplacedSeD names a SeD deployed under the wrong LA at bring-up, so
	// the live arm exercises a real migration, not just power refreshes
	// (default "Sophia2", parked under the grillon LA).
	MisplacedSeD    string
	MisplacedParent string
	// DriftSeD/DriftFactor/DriftAtS degrade one more SeD during the run
	// (default "Lille1" to 40% at 2h — before the phase-2 burst, so the
	// whole campaign runs on a platform no deployment file describes).
	DriftSeD    string
	DriftFactor float64
	DriftAtS    float64
}

func (c ReplanAblationConfig) withDefaults() ReplanAblationConfig {
	if c.Rounds < 2 {
		c.Rounds = 2
	}
	if c.ReplanIntervalS <= 0 {
		c.ReplanIntervalS = 6 * 3600
	}
	if c.MisplacedSeD == "" {
		c.MisplacedSeD = "Sophia2"
		c.MisplacedParent = "LA-grillon"
	}
	if c.MisplacedParent == "" {
		c.MisplacedParent = "LA-grillon"
	}
	if c.DriftSeD == "" {
		c.DriftSeD = "Lille1"
		c.DriftFactor = 0.4
	}
	if c.DriftFactor <= 0 {
		c.DriftFactor = 0.4
	}
	if c.DriftAtS <= 0 {
		c.DriftAtS = 2 * 3600
	}
	return c
}

// ReplanAblationResult compares three arms on the same drifting,
// miscalibrated platform (CanonicalSkew plus a mid-campaign drift event),
// all scheduled by the power-aware plug-in so the only difference is what
// the planner told it:
//
//   - Static: the hand-planned deployment, frozen — advertised powers
//     believed for the whole campaign.
//   - Live: the same cold start, but the hierarchy replans itself every
//     ReplanIntervalS from its own in-flight measurements and migrates SeDs
//     online (the diet.Agent.ApplyPlan mirror).
//   - Offline: the A6 gold standard — rounds-1 full training campaigns, then
//     a restart with the measured plan applied from t=0.
type ReplanAblationResult struct {
	Config ReplanAblationConfig

	Static  *ExperimentResult
	Live    *ExperimentResult
	Offline *ExperimentResult

	// Changes is what the offline replan moved (deploy.Replan diff).
	Changes []deploy.Change
}

// LiveGainPct is the makespan saving of live replanning over the frozen
// static plan — what the migration protocol buys without any restart.
func (r ReplanAblationResult) LiveGainPct() float64 {
	return 100 * (r.Static.TotalS - r.Live.TotalS) / r.Static.TotalS
}

// OfflineGainPct is the offline-replan saving over the static plan — the
// restart-shaped upper reference.
func (r ReplanAblationResult) OfflineGainPct() float64 {
	return 100 * (r.Static.TotalS - r.Offline.TotalS) / r.Static.TotalS
}

// RecoveryPct is how much of the offline-replan win live replanning
// recovered without a restart (can exceed 100 when drift, which offline
// training cannot see, makes the live arm the better plan).
func (r ReplanAblationResult) RecoveryPct() float64 {
	offline := r.Static.TotalS - r.Offline.TotalS
	if offline <= 0 {
		return 0
	}
	return 100 * (r.Static.TotalS - r.Live.TotalS) / offline
}

// Migrations flattens the live arm's migration events: SeD name → virtual
// time of its move.
func (r ReplanAblationResult) Migrations() map[string]float64 {
	out := make(map[string]float64)
	for _, ev := range r.Live.Replans {
		for _, sed := range ev.Moved {
			if _, dup := out[sed]; !dup {
				out[sed] = ev.AtS
			}
		}
	}
	return out
}

// FirstPostMoveForecastTrusted reports whether every migrated SeD both kept
// a trusted model through its move (the snapshot round-trip) and had its
// first post-move dispatch predicted by that model rather than the
// advertised-power fallback — the "no retraining after a move" guarantee.
// The reason string names the first violation.
func (r ReplanAblationResult) FirstPostMoveForecastTrusted() (bool, string) {
	moved := 0
	for _, ev := range r.Live.Replans {
		for _, sed := range ev.Moved {
			moved++
			if !ev.MovedModelTrusted[sed] {
				return false, fmt.Sprintf("%s's model came out of the %.0fs move untrusted", sed, ev.AtS)
			}
			rec := r.Live.FirstRecordOn(sed, ev.AtS)
			if rec == nil {
				continue // nothing more was dispatched there; nothing to mispredict
			}
			if !rec.PredictedByModel {
				return false, fmt.Sprintf("%s's first post-move dispatch (req %d) fell back to advertised power", sed, rec.ID)
			}
		}
	}
	if moved == 0 {
		return false, "the live arm never migrated a SeD"
	}
	return true, ""
}

// RunReplanAblation runs A8 on the given configuration template (Policy,
// Forecast, replanning, drift and placement fields are overridden per arm).
func RunReplanAblation(mkCfg func() ExperimentConfig, acfg ReplanAblationConfig) (*ReplanAblationResult, error) {
	acfg = acfg.withDefaults()
	base := func() ExperimentConfig {
		cfg := mkCfg()
		cfg.Policy = scheduler.NewPowerAware()
		cfg.TruePowerFactor = CanonicalSkew
		cfg.DriftAtS = acfg.DriftAtS
		cfg.DriftPowerFactor = map[string]float64{acfg.DriftSeD: acfg.DriftFactor}
		cfg.LiveParent = map[string]string{acfg.MisplacedSeD: acfg.MisplacedParent}
		// Campaigns span tens of virtual hours; measure on planning timescales.
		cfg.CoRI.HalfLife = TrainingHalfLife
		// The paper's all-at-once burst pre-makes every dispatch decision
		// before the first replan pass can fire; A8 paces submissions so
		// mid-campaign adaptation has decisions left to improve (the same
		// pacing the A4 sweeps study).
		if cfg.ArrivalGapS <= 0 {
			cfg.ArrivalGapS = 600
		}
		return cfg
	}
	out := &ReplanAblationResult{Config: acfg}
	var err error

	// Static arm: the frozen plan. Monitors attached for instrumentation
	// parity but nothing reads them.
	cfg := base()
	cfg.Forecast = true
	if out.Static, err = RunExperiment(cfg); err != nil {
		return nil, fmt.Errorf("simgrid: replan ablation static arm: %w", err)
	}

	// Live arm: same cold start, replanning itself mid-campaign.
	cfg = base()
	cfg.Forecast = true
	cfg.ReplanIntervalS = acfg.ReplanIntervalS
	if out.Live, err = RunExperiment(cfg); err != nil {
		return nil, fmt.Errorf("simgrid: replan ablation live arm: %w", err)
	}

	// Offline arm: rounds-1 training campaigns (static plan, like the real
	// operating point a deployment trains at), then a restart with the
	// measured plan applied from t=0. The restart also fixes the misplaced
	// SeD — that is what redeploying from the plan does.
	tcfg := base()
	tcfg.Forecast = true
	tcfg.Monitors = make(map[string]*cori.Monitor, len(tcfg.Deployment.SeDs))
	baseSeed := tcfg.Seed
	for r := 0; r < acfg.Rounds-1; r++ {
		tcfg.Seed = baseSeed + 1000 + int64(r)
		if _, err = RunExperiment(tcfg); err != nil {
			return nil, fmt.Errorf("simgrid: replan ablation training round %d: %w", r+1, err)
		}
	}
	service := tcfg.ReplanService
	if service == "" {
		service = "ramsesZoom2"
	}
	plan, changes, err := deploy.Replan(tcfg.Deployment, deploy.Options{
		Capabilities: deploy.MonitorSource(tcfg.Monitors, service),
	})
	if err != nil {
		return nil, fmt.Errorf("simgrid: replan ablation offline replan: %w", err)
	}
	out.Changes = changes
	mcfg := base()
	mcfg.Forecast = true
	mcfg.Seed = baseSeed
	mcfg.PlannedPower = plan.PowerByName()
	mcfg.LiveParent = nil // the restart redeploys everything where planned
	if out.Offline, err = RunExperiment(mcfg); err != nil {
		return nil, fmt.Errorf("simgrid: replan ablation offline arm: %w", err)
	}
	return out, nil
}
