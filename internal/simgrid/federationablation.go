package simgrid

import "fmt"

// This file runs the federation ablation (A12; A11 stays reserved for
// workflow campaigns): everything the repo built so far funnels every
// submission through one Master Agent — the exact bottleneck the DIET
// papers built the multi-MA mesh to avoid. A12 prices the mesh: the same
// open-loop request stream, arriving faster than one MA can serialize
// finding phases but within the federation's capacity, replayed against a
// single MA and against N federated MAs with sticky routing and peer
// forwarding. The single arm saturates — its queue grows for the whole run
// and p99 submit latency is dominated by queueing — while the federation
// keeps up, paying only the forwarding overhead on foreign services.

// FederationAblationConfig tunes the A12 arms.
type FederationAblationConfig struct {
	// MAs is the federated arm's width (default 4).
	MAs int
	// Base is the shared stream template; its MAs field is overridden per
	// arm, everything else (rate, costs, service mix) is common to both.
	Base FederationConfig
}

// FederationAblationResult compares the two arms of the same stream.
type FederationAblationResult struct {
	Config    FederationAblationConfig
	Single    *FederationResult // 1 MA
	Federated *FederationResult // Config.MAs federated MAs
}

// ThroughputGainX is the saturation-throughput multiple of federating:
// federated completed findings per second over the single MA's.
func (r *FederationAblationResult) ThroughputGainX() float64 {
	if s := r.Single.ThroughputPerSec(); s > 0 {
		return r.Federated.ThroughputPerSec() / s
	}
	return 0
}

// P99GainX is how many times higher the single MA's p99 submit latency is
// than the federation's.
func (r *FederationAblationResult) P99GainX() float64 {
	if f := r.Federated.P99LatencyS(); f > 0 {
		return r.Single.P99LatencyS() / f
	}
	return 0
}

// RunFederationAblation runs A12: the same submission stream against one MA
// and against cfg.MAs federated MAs.
func RunFederationAblation(cfg FederationAblationConfig) (*FederationAblationResult, error) {
	if cfg.MAs <= 0 {
		cfg.MAs = 4
	}
	if cfg.MAs < 2 {
		return nil, fmt.Errorf("simgrid: federation ablation needs a federated arm of >= 2 MAs")
	}
	out := &FederationAblationResult{Config: cfg}
	var err error

	single := cfg.Base
	single.MAs = 1
	if out.Single, err = RunFederation(single); err != nil {
		return nil, fmt.Errorf("simgrid: federation ablation single arm: %w", err)
	}

	fed := cfg.Base
	fed.MAs = cfg.MAs
	if out.Federated, err = RunFederation(fed); err != nil {
		return nil, fmt.Errorf("simgrid: federation ablation federated arm: %w", err)
	}
	return out, nil
}
