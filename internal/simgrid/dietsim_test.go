package simgrid

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/logsvc"
	"repro/internal/scheduler"
)

func runDefault(t *testing.T, policy scheduler.Policy) *ExperimentResult {
	t.Helper()
	res, err := RunExperiment(DefaultExperiment(policy))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestExperimentValidation(t *testing.T) {
	if _, err := RunExperiment(ExperimentConfig{}); err == nil {
		t.Error("empty config should fail")
	}
	cfg := DefaultExperiment(scheduler.NewRoundRobin())
	cfg.NRequests = 0
	if _, err := RunExperiment(cfg); err == nil {
		t.Error("zero requests should fail")
	}
	cfg = DefaultExperiment(nil)
	if _, err := RunExperiment(cfg); err == nil {
		t.Error("nil policy should fail")
	}
}

func TestPaperDistribution(t *testing.T) {
	// Figure 5 bottom + §6.2: "each SED received 9 requests (one of them
	// received 10)".
	res := runDefault(t, scheduler.NewRoundRobin())
	counts := res.RequestCounts()
	if len(counts) != 11 {
		t.Fatalf("%d SeDs, want 11", len(counts))
	}
	tens, nines := 0, 0
	for sed, c := range counts {
		switch c {
		case 9:
			nines++
		case 10:
			tens++
		default:
			t.Errorf("SeD %s received %d requests, want 9 or 10", sed, c)
		}
	}
	if tens != 1 || nines != 10 {
		t.Errorf("distribution %d×10 + %d×9, want 1×10 + 10×9", tens, nines)
	}
}

func TestPaperImbalance(t *testing.T) {
	// Figure 5 top: "about 15h for Toulouse and 10h30 for Nancy".
	res := runDefault(t, scheduler.NewRoundRobin())
	busy := res.BusyHoursBySeD()
	toulouse := busy["Toulouse1"]
	nancy := busy["Nancy1"]
	if toulouse < 13 || toulouse > 17 {
		t.Errorf("Toulouse busy %0.1fh, paper ≈ 15h", toulouse)
	}
	if nancy < 9 || nancy > 12 {
		t.Errorf("Nancy busy %0.1fh, paper ≈ 10.5h", nancy)
	}
	if toulouse <= nancy {
		t.Error("the paper's imbalance (Toulouse > Nancy) must reproduce")
	}
}

func TestPaperTotals(t *testing.T) {
	// §6.2 headline numbers (shape: same order, within ~15%).
	res := runDefault(t, scheduler.NewRoundRobin())
	checks := []struct {
		name      string
		gotHours  float64
		paperHour float64
		tolFrac   float64
	}{
		{"total experiment", res.TotalS / 3600, 16.31, 0.15},
		{"phase 1", res.Phase1.DurationS() / 3600, 1.253, 0.25},
		{"phase 2 mean", res.MeanPhase2S / 3600, 1.40, 0.10},
		{"sequential baseline", res.SequentialS / 3600, 141, 0.10},
	}
	for _, c := range checks {
		if math.Abs(c.gotHours-c.paperHour)/c.paperHour > c.tolFrac {
			t.Errorf("%s: %0.2fh, paper %0.2fh (tol %0.0f%%)",
				c.name, c.gotHours, c.paperHour, 100*c.tolFrac)
		}
	}
	// Speedup: must remain ~8-10× (141h vs 16.3h).
	speedup := res.SequentialS / res.TotalS
	if speedup < 7 || speedup > 11 {
		t.Errorf("speedup %0.1f×, paper ≈ 8.7×", speedup)
	}
}

func TestPaperOverheads(t *testing.T) {
	// §6.2: find ≈ 49.8 ms, nearly constant; overhead ≈ 70.6 ms/request,
	// ≈ 7 s total.
	res := runDefault(t, scheduler.NewRoundRobin())
	find := res.MeanFindingMS()
	if math.Abs(find-49.8) > 5 {
		t.Errorf("mean finding %0.1f ms, paper 49.8 ms", find)
	}
	if math.Abs(res.OverheadMS-70.6) > 7 {
		t.Errorf("overhead per request %0.1f ms, paper 70.6 ms", res.OverheadMS)
	}
	if res.TotalOverhead < 5 || res.TotalOverhead > 9 {
		t.Errorf("total overhead %0.1f s, paper ≈ 7 s", res.TotalOverhead)
	}
	// "The finding time is low and nearly constant": spread under 20%.
	var lo, hi = math.Inf(1), math.Inf(-1)
	for _, r := range res.Records {
		if r.FindingMS < lo {
			lo = r.FindingMS
		}
		if r.FindingMS > hi {
			hi = r.FindingMS
		}
	}
	if (hi-lo)/find > 0.25 {
		t.Errorf("finding time spread [%0.1f, %0.1f] ms too wide around %0.1f", lo, hi, find)
	}
}

func TestLatencyGrowsWithQueueing(t *testing.T) {
	// Figure 6: the latency (log scale) grows by orders of magnitude as the
	// queues fill; late requests wait for ~9 predecessors (~10⁷ ms).
	res := runDefault(t, scheduler.NewRoundRobin())
	first, last := res.Records[0], res.Records[len(res.Records)-1]
	if first.LatencyMS > 1000 {
		t.Errorf("first request latency %0.0f ms; should be near-immediate", first.LatencyMS)
	}
	var maxLatency float64
	for _, r := range res.Records {
		if r.LatencyMS > maxLatency {
			maxLatency = r.LatencyMS
		}
	}
	if maxLatency < 1e7 || maxLatency > 1e8 {
		t.Errorf("max latency %0.3g ms, paper's Figure 6 tops near 5×10⁷", maxLatency)
	}
	if last.LatencyMS < first.LatencyMS {
		t.Error("late requests should wait longer than the first")
	}
}

func TestConservationInvariants(t *testing.T) {
	res := runDefault(t, scheduler.NewRoundRobin())
	// Every request served exactly once.
	if len(res.Records) != 100 {
		t.Fatalf("%d records, want 100", len(res.Records))
	}
	seen := map[int]bool{}
	var perSedTotal int
	for _, r := range res.Records {
		if seen[r.ID] {
			t.Fatalf("request %d served twice", r.ID)
		}
		seen[r.ID] = true
		if r.StartS < r.SubmitS || r.EndS < r.StartS {
			t.Fatalf("request %d has inverted times: %+v", r.ID, r)
		}
	}
	for _, s := range res.PerSeD {
		perSedTotal += len(s.Requests)
		// Gantt items on one SeD must not overlap (capacity 1).
		for i := 1; i < len(s.Requests); i++ {
			if s.Requests[i].StartS < s.Requests[i-1].EndS-1e-9 {
				t.Errorf("SeD %s: request %d starts before %d ends", s.Name, s.Requests[i].ID, s.Requests[i-1].ID)
			}
		}
	}
	if perSedTotal != 100 {
		t.Errorf("per-SeD records sum to %d", perSedTotal)
	}
}

func TestDeterminism(t *testing.T) {
	a := runDefault(t, scheduler.NewRoundRobin())
	b := runDefault(t, scheduler.NewRoundRobin())
	if a.TotalS != b.TotalS || a.MeanPhase2S != b.MeanPhase2S {
		t.Error("experiment must be deterministic for a fixed seed")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs between identical runs", i)
		}
	}
}

func TestPluginSchedulerAblation(t *testing.T) {
	// The paper's §8 claim: "a better makespan could be attained by writing
	// a plug-in scheduler" that accounts for processing power. Verify the
	// power-aware policy beats the default equal distribution.
	rr := runDefault(t, scheduler.NewRoundRobin())
	pa := runDefault(t, scheduler.NewPowerAware())
	if pa.TotalS >= rr.TotalS {
		t.Errorf("power-aware makespan %0.2fh should beat round-robin %0.2fh",
			pa.TotalS/3600, rr.TotalS/3600)
	}
	// The imbalance shrinks: spread of busy hours across SeDs.
	spread := func(r *ExperimentResult) float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, s := range r.PerSeD {
			if s.BusyHours < lo {
				lo = s.BusyHours
			}
			if s.BusyHours > hi {
				hi = s.BusyHours
			}
		}
		return hi - lo
	}
	if spread(pa) >= spread(rr) {
		t.Errorf("power-aware spread %0.2fh should be tighter than round-robin %0.2fh",
			spread(pa), spread(rr))
	}
}

func TestBatchModeAblation(t *testing.T) {
	direct := runDefault(t, scheduler.NewRoundRobin())
	cfg := DefaultExperiment(scheduler.NewRoundRobin())
	cfg.BatchMode = true
	cfg.BatchGrantS = 30 // a 30 s reservation grant per solve
	batched, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if batched.TotalS <= direct.TotalS {
		t.Error("batch grants must add makespan")
	}
	// But only by roughly the grant per queued request, not catastrophically.
	added := batched.TotalS - direct.TotalS
	if added > 30*12 { // at most ~10 queued grants on the critical path + slack
		t.Errorf("batch mode added %0.0f s, more than expected", added)
	}
}

func TestPrinters(t *testing.T) {
	res := runDefault(t, scheduler.NewRoundRobin())
	var f5, f6, tot strings.Builder
	res.PrintFig5(&f5)
	res.PrintFig6(&f6)
	res.PrintTotals(&tot)
	if !strings.Contains(f5.String(), "Toulouse1") {
		t.Error("Fig5 output missing SeDs")
	}
	if !strings.Contains(f6.String(), "find_ms") {
		t.Error("Fig6 output missing header")
	}
	if !strings.Contains(tot.String(), "sequential baseline") {
		t.Error("totals output incomplete")
	}
	if len(strings.Split(strings.TrimSpace(f6.String()), "\n")) != 102 {
		t.Error("Fig6 should print one row per request")
	}
}

func TestHoursFormat(t *testing.T) {
	if got := Hours(58723); got != "16h 18min 43s" {
		t.Errorf("Hours(58723) = %q, want the paper's 16h 18min 43s format", got)
	}
	if got := Hours(0); got != "0h 0min 0s" {
		t.Errorf("Hours(0) = %q", got)
	}
}

// TestCampaignSpansMirrorLiveTaxonomy checks the virtual-time trace: a
// simulated batch campaign publishes the same span kinds the live stack
// emits, grouped per request, stamped in virtual nanoseconds, and the whole
// trace round-trips through the chrome://tracing exporter.
func TestCampaignSpansMirrorLiveTaxonomy(t *testing.T) {
	bus := logsvc.New(8192)
	cfg := DefaultExperiment(scheduler.NewRoundRobin())
	cfg.BatchMode = true
	cfg.BatchGrantS = 30
	cfg.Spans = bus
	res, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bus.Dropped() != 0 {
		t.Fatalf("bus dropped %d spans; widen the test buffer", bus.Dropped())
	}
	groups := logsvc.SpansByRequest(bus.History())
	if len(groups) != cfg.NRequests+1 { // the phase-1 zoom plus every phase-2 request
		t.Fatalf("%d traced requests, want %d", len(groups), cfg.NRequests+1)
	}
	horizon := int64(res.TotalS * 1e9)
	for id, spans := range groups {
		kinds := map[string]int{}
		for _, sp := range spans {
			kinds[sp.Kind]++
			if sp.StartNanos < 0 || sp.EndNanos > horizon+1 {
				t.Errorf("request %s: span %s [%d,%d] outside the campaign horizon %d",
					id, sp.Kind, sp.StartNanos, sp.EndNanos, horizon)
			}
			if sp.EndNanos < sp.StartNanos {
				t.Errorf("request %s: span %s ends before it starts", id, sp.Kind)
			}
		}
		// The same core taxonomy the live acceptance test asserts.
		for _, want := range []string{logsvc.KindSubmit, logsvc.KindSchedule,
			logsvc.KindQueue, logsvc.KindSolve, logsvc.KindComplete} {
			if kinds[want] != 1 {
				t.Errorf("request %s: %d %q spans, want 1 (kinds %v)", id, kinds[want], want, kinds)
			}
		}
		if kinds[logsvc.KindReserve] < 1 {
			t.Errorf("request %s: batch mode must add a reserve span (kinds %v)", id, kinds)
		}
	}

	// The virtual-time trace renders through the same exporter as a live one.
	var buf bytes.Buffer
	if err := logsvc.WriteChromeTrace(&buf, bus.History()); err != nil {
		t.Fatal(err)
	}
	back, err := logsvc.ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) == 0 {
		t.Fatal("chrome trace round-trip lost all events")
	}
}
