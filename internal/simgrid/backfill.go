package simgrid

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/batch"
	"repro/internal/cori"
	"repro/internal/scheduler"
)

// This file mirrors the batch queue's conservative backfilling in virtual
// time and runs the backfill ablation (A9): what forecast-sized walltimes
// buy *inside the queue*. The paper's follow-up ("Cosmological Simulations
// on a Grid of Computers") found queue wait — not compute — dominating
// campaign makespan on shared clusters; conservative backfill can recover
// some of that wait, but only when walltimes are tight enough to fit the
// shadow windows. SimulateBatchQueue replays a job stream through an
// OAR-style multi-node queue — FIFO head starts, shadow bound from per-job
// walltimes, candidates ranked by batch.OrderBackfill, kill-and-requeue at
// walltime expiry — so the candidate-selection policy cannot drift from
// batch.System.schedule, and RunBackfillAblation compares no backfill,
// fixed-grant backfill and forecast-sized backfill on the CanonicalSkew
// platform.

// BatchQueueJob is one reservation in the virtual-time cluster batch queue.
// Inputs describe the submission; the Simulate* fields report what the
// scheduler did with it.
type BatchQueueJob struct {
	ID      int
	ArriveS float64 // virtual submission time
	Nodes   int
	WallS   float64 // granted walltime (first attempt; kills widen it)
	RunS    float64 // true compute time of the script
	Sized   bool    // walltime derived from a trusted CoRI forecast

	// Outputs, filled by SimulateBatchQueue.
	StartS     float64 // compute start of the completing attempt
	EndS       float64 // completion of the final attempt
	WaitS      float64 // queue wait (enqueue→start), summed over attempts
	Backfilled bool    // some attempt started ahead of FIFO order
	Kills      int     // attempts killed at walltime expiry
	Failed     bool    // exhausted the attempt budget (job never completed)
	// HeadBoundS is the tightest shadow bound a backfill pass promised the
	// job's last-started attempt while it was the protected head of the
	// queue, or -1 when no pass ever backfilled against it.
	HeadBoundS float64
	// ShadowViolations counts attempts that started later than a shadow
	// bound promised to them while they were head of the queue. Honest
	// conservative backfilling keeps this at 0 — the shadow-time invariant
	// the property tests assert.
	ShadowViolations int
}

// BatchQueueConfig sizes the virtual cluster queue.
type BatchQueueConfig struct {
	Nodes    int
	Backfill bool
	// RequeueFactor widens the grant after a walltime kill (default 2,
	// mirroring batch.WalltimePolicy.RequeueFactor).
	RequeueFactor float64
	// MaxAttempts bounds kill-and-requeue retries (default 3, mirroring
	// batch.ForecastExecutor.MaxAttempts).
	MaxAttempts int
}

// bfQueued is one waiting attempt.
type bfQueued struct {
	job        *BatchQueueJob
	enqueueS   float64
	attempt    int
	wallS      float64 // this attempt's grant (widened after kills)
	headBoundS float64 // tightest shadow bound promised while head; <0 = none
}

// bfRunning is one attempt occupying nodes.
type bfRunning struct {
	job      *BatchQueueJob
	wallS    float64
	boundS   float64 // start + walltime: the conservative release bound
	releaseS float64 // actual release: start + min(walltime, run)
	killed   bool    // the attempt hits its walltime before the script ends
}

// SimulateBatchQueue replays the job stream through the OAR-style queue in
// virtual time. Scheduling decisions happen at arrivals and releases, the
// way batch.System.schedule runs on Submit and on job settle: the FIFO head
// starts while it fits; with Backfill, later jobs that fit the free nodes
// and are walltime-bounded to finish before the head's shadow bound may
// jump ahead, ranked by batch.OrderBackfill (forecast-sized first, then
// tighter walltimes, then submission order). An attempt whose script
// outlives its grant is killed at expiry and requeued with a
// RequeueFactor-widened grant up to MaxAttempts. Jobs are mutated in place.
func SimulateBatchQueue(cfg BatchQueueConfig, jobs []*BatchQueueJob) error {
	if cfg.Nodes < 1 {
		return fmt.Errorf("simgrid: batch queue needs >= 1 node, got %d", cfg.Nodes)
	}
	if cfg.RequeueFactor <= 1 {
		cfg.RequeueFactor = 2
	}
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = maxBatchAttempts
	}
	for _, j := range jobs {
		if j.Nodes < 1 || j.Nodes > cfg.Nodes {
			return fmt.Errorf("simgrid: job %d requests %d nodes, cluster has %d", j.ID, j.Nodes, cfg.Nodes)
		}
		if j.WallS <= 0 || j.RunS <= 0 {
			return fmt.Errorf("simgrid: job %d needs positive walltime and runtime", j.ID)
		}
		j.HeadBoundS = -1
	}
	arrivals := append([]*BatchQueueJob(nil), jobs...)
	sort.SliceStable(arrivals, func(i, k int) bool { return arrivals[i].ArriveS < arrivals[k].ArriveS })

	free := cfg.Nodes
	var queue []*bfQueued
	var running []*bfRunning

	start := func(q *bfQueued, t float64, backfilled bool) {
		free -= q.job.Nodes
		killed := q.job.RunS > q.wallS
		dur := q.job.RunS
		if killed {
			dur = q.wallS
		}
		q.job.WaitS += t - q.enqueueS
		q.job.StartS = t
		if backfilled {
			q.job.Backfilled = true
		}
		if q.headBoundS >= 0 {
			q.job.HeadBoundS = q.headBoundS
			if t > q.headBoundS+1e-6 {
				q.job.ShadowViolations++
			}
		}
		running = append(running, &bfRunning{
			job: q.job, wallS: q.wallS, boundS: t + q.wallS, releaseS: t + dur, killed: killed,
		})
	}

	// headBound mirrors System.headStartBound: the earliest time enough
	// nodes free up for the head, assuming running attempts use their full
	// walltime.
	headBound := func(head *bfQueued) float64 {
		bounds := make([]*bfRunning, len(running))
		copy(bounds, running)
		sort.Slice(bounds, func(i, k int) bool { return bounds[i].boundS < bounds[k].boundS })
		avail := free
		for _, r := range bounds {
			avail += r.job.Nodes
			if avail >= head.job.Nodes {
				return r.boundS
			}
		}
		return math.Inf(1) // cannot happen: Nodes was validated against the cluster
	}

	schedule := func(t float64) {
		for len(queue) > 0 && queue[0].job.Nodes <= free {
			start(queue[0], t, false)
			queue = queue[1:]
		}
		if !cfg.Backfill || len(queue) < 2 || free == 0 {
			return
		}
		head := queue[0]
		shadow := headBound(head)
		cands := make([]batch.BackfillCandidate, 0, len(queue)-1)
		for i, q := range queue[1:] {
			cands = append(cands, batch.BackfillCandidate{
				Queue: i + 1, Nodes: q.job.Nodes,
				Walltime:      time.Duration(q.wallS * float64(time.Second)),
				ForecastSized: q.job.Sized,
			})
		}
		picks := batch.SelectBackfill(cands, free, time.Duration((shadow-t)*float64(time.Second)))
		if len(picks) == 0 {
			return
		}
		if head.headBoundS < 0 || shadow < head.headBoundS {
			head.headBoundS = shadow
		}
		started := make(map[int]bool, len(picks))
		for _, c := range picks {
			started[c.Queue] = true
			start(queue[c.Queue], t, true)
		}
		rest := make([]*bfQueued, 0, len(queue)-len(started))
		for i, q := range queue {
			if !started[i] {
				rest = append(rest, q)
			}
		}
		queue = rest
	}

	next := 0
	for next < len(arrivals) || len(queue) > 0 || len(running) > 0 {
		t := math.Inf(1)
		if next < len(arrivals) {
			t = arrivals[next].ArriveS
		}
		for _, r := range running {
			if r.releaseS < t {
				t = r.releaseS
			}
		}
		if math.IsInf(t, 1) {
			return fmt.Errorf("simgrid: batch queue wedged with %d jobs waiting", len(queue))
		}
		keep := running[:0]
		for _, r := range running {
			if r.releaseS > t {
				keep = append(keep, r)
				continue
			}
			free += r.job.Nodes
			if !r.killed {
				r.job.EndS = r.releaseS
				continue
			}
			// Killed at expiry: the attempt's compute is thrown away and the
			// job requeues at the tail with a widened grant, like
			// batch.ForecastExecutor's kill-and-requeue.
			r.job.Kills++
			if r.job.Kills >= cfg.MaxAttempts {
				r.job.Failed = true
				r.job.EndS = r.releaseS
				continue
			}
			queue = append(queue, &bfQueued{
				job: r.job, enqueueS: t, attempt: r.job.Kills + 1,
				wallS: r.wallS * cfg.RequeueFactor, headBoundS: -1,
			})
		}
		running = keep
		for next < len(arrivals) && arrivals[next].ArriveS <= t {
			j := arrivals[next]
			queue = append(queue, &bfQueued{job: j, enqueueS: j.ArriveS, attempt: 1, wallS: j.WallS, headBoundS: -1})
			next++
		}
		schedule(t)
	}
	return nil
}

// BackfillArm aggregates one arm of the backfill ablation.
type BackfillArm struct {
	Name           string
	MeanWaitS      float64 // mean queue wait over all jobs
	MaxWaitS       float64
	MakespanS      float64 // last completion
	Backfilled     int     // jobs started ahead of FIFO order
	SizedBackfills int     // forecast-sized jobs among the backfilled
	ForecastSized  int     // jobs whose walltime came from a trusted forecast
	OverrunKills   int     // attempts killed at walltime expiry
}

// BackfillAblationConfig tunes RunBackfillAblation. Zero values select the
// canonical A9 setup.
type BackfillAblationConfig struct {
	// Rounds is campaigns per training: rounds-1 train the monitors, the
	// last supplies the measured job stream (default 2).
	Rounds int
	// Nodes is the virtual cluster the job stream is packed onto (default
	// 8 — fewer than the deployment's 11 SeDs, so the queue is contended,
	// with enough width that wide jobs leave backfillable slack).
	Nodes int
	// WideEvery makes every n-th job a wide multi-node ensemble run that
	// blocks the queue head and opens backfill windows (default 7).
	WideEvery int
	// WideNodes is the width of those jobs (default Nodes-2).
	WideNodes int
}

// BackfillAblationResult compares the three arms of A9 on one job stream.
type BackfillAblationResult struct {
	Jobs  int
	Nodes int

	// NoBackfill runs the stream pure FIFO with user-bucketed fixed grants.
	NoBackfill BackfillArm
	// FixedGrant enables conservative backfill over the same user-bucketed
	// grants — what backfill buys when walltimes are padded user guesses.
	FixedGrant BackfillArm
	// Forecast enables backfill with walltimes sized from the trained CoRI
	// models through batch.WalltimePolicy — tight bounds fit shadow windows
	// the padded grants cannot.
	Forecast BackfillArm
}

// WaitGainPct is the mean-queue-wait saving of forecast-sized backfill over
// fixed-grant backfill — the headline A9 number.
func (r *BackfillAblationResult) WaitGainPct() float64 {
	if r.FixedGrant.MeanWaitS <= 0 {
		return 0
	}
	return 100 * (r.FixedGrant.MeanWaitS - r.Forecast.MeanWaitS) / r.FixedGrant.MeanWaitS
}

// MakespanGainPct is the makespan saving of forecast-sized backfill over
// fixed-grant backfill.
func (r *BackfillAblationResult) MakespanGainPct() float64 {
	if r.FixedGrant.MakespanS <= 0 {
		return 0
	}
	return 100 * (r.FixedGrant.MakespanS - r.Forecast.MakespanS) / r.FixedGrant.MakespanS
}

// BackfillValuePct is the mean-queue-wait saving of forecast-sized backfill
// over no backfill at all.
func (r *BackfillAblationResult) BackfillValuePct() float64 {
	if r.NoBackfill.MeanWaitS <= 0 {
		return 0
	}
	return 100 * (r.NoBackfill.MeanWaitS - r.Forecast.MeanWaitS) / r.NoBackfill.MeanWaitS
}

// userGrantBuckets are the round walltimes users actually request: the
// true runtime padded by half, rounded up to the next bucket.
var userGrantBuckets = []float64{2 * 3600, 6 * 3600, 12 * 3600, 24 * 3600}

func userGrantS(runS float64) float64 {
	want := 1.5 * runS
	for _, b := range userGrantBuckets {
		if b >= want {
			return b
		}
	}
	return userGrantBuckets[len(userGrantBuckets)-1]
}

// RunBackfillAblation runs A9: train CoRI monitors over rounds-1 campaigns
// on the CanonicalSkew platform (forecast-aware scheduling, exactly like the
// other trained ablations), take the measured campaign's solves as a batch
// job stream — each record's true duration, work size and submission time,
// with every WideEvery-th job widened into a multi-node ensemble run — and
// pack it onto a contended virtual cluster three ways: pure FIFO, backfill
// over user-bucketed fixed grants, and backfill over forecast-sized grants
// (batch.WalltimePolicy over the per-SeD trained model, the same shared
// policy the live ForecastExecutor runs). Queue-wait and makespan tell how
// much of the follow-up paper's dominant cost forecast sizing recovers.
func RunBackfillAblation(mkCfg func() ExperimentConfig, abl BackfillAblationConfig) (*BackfillAblationResult, error) {
	if abl.Rounds < 2 {
		abl.Rounds = 2
	}
	if abl.Nodes < 2 {
		abl.Nodes = 8
	}
	if abl.WideEvery < 2 {
		abl.WideEvery = 7
	}
	if abl.WideNodes < 2 || abl.WideNodes > abl.Nodes {
		abl.WideNodes = abl.Nodes - 2
		if abl.WideNodes < 2 {
			abl.WideNodes = 2
		}
	}

	cfg := mkCfg()
	cfg.Policy = scheduler.NewForecastAware()
	cfg.Forecast = true
	cfg.TruePowerFactor = CanonicalSkew
	cfg.CoRI.HalfLife = TrainingHalfLife
	cfg.Monitors = make(map[string]*cori.Monitor, len(cfg.Deployment.SeDs))
	results, err := RunExperimentRounds(cfg, abl.Rounds)
	if err != nil {
		return nil, fmt.Errorf("simgrid: backfill ablation training: %w", err)
	}
	final := results[len(results)-1]
	if len(final.Records) < 2*abl.WideEvery {
		return nil, fmt.Errorf("simgrid: backfill ablation needs >= %d requests, got %d", 2*abl.WideEvery, len(final.Records))
	}

	// One job template per measured solve; per-arm copies are re-sized below.
	type jobSpec struct {
		arriveS, runS, workGFlops float64
		nodes                     int
		sed                       string
	}
	specs := make([]jobSpec, len(final.Records))
	for i, rec := range final.Records {
		nodes := 1
		if (i+1)%abl.WideEvery == 0 {
			nodes = abl.WideNodes
		}
		specs[i] = jobSpec{
			arriveS: rec.SubmitS, runS: rec.DurationS(), workGFlops: rec.WorkGFlops,
			nodes: nodes, sed: rec.SeD,
		}
	}

	mkJobs := func(forecastSized bool) []*BatchQueueJob {
		out := make([]*BatchQueueJob, len(specs))
		for i, sp := range specs {
			j := &BatchQueueJob{
				ID: i + 1, ArriveS: sp.arriveS, Nodes: sp.nodes,
				RunS: sp.runS, WallS: userGrantS(sp.runS),
			}
			if forecastSized {
				pol := batch.WalltimePolicy{Fixed: time.Duration(j.WallS * float64(time.Second))}
				if mon := cfg.Monitors[sp.sed]; mon != nil {
					if model, ok := mon.Model("ramsesZoom2"); ok {
						if w, ok := pol.FromForecast(model.SolveSeconds(sp.workGFlops), model.Confidence); ok {
							j.WallS, j.Sized = w.Seconds(), true
						}
					}
				}
			}
			out[i] = j
		}
		return out
	}

	runArm := func(name string, backfill, forecastSized bool) (BackfillArm, error) {
		jobs := mkJobs(forecastSized)
		if err := SimulateBatchQueue(BatchQueueConfig{Nodes: abl.Nodes, Backfill: backfill}, jobs); err != nil {
			return BackfillArm{}, fmt.Errorf("simgrid: backfill ablation %s arm: %w", name, err)
		}
		arm := BackfillArm{Name: name}
		var sumWait float64
		for _, j := range jobs {
			if j.Failed {
				return BackfillArm{}, fmt.Errorf("simgrid: backfill ablation %s arm: job %d exhausted its attempt budget", name, j.ID)
			}
			sumWait += j.WaitS
			if j.WaitS > arm.MaxWaitS {
				arm.MaxWaitS = j.WaitS
			}
			if j.EndS > arm.MakespanS {
				arm.MakespanS = j.EndS
			}
			if j.Backfilled {
				arm.Backfilled++
				if j.Sized {
					arm.SizedBackfills++
				}
			}
			if j.Sized {
				arm.ForecastSized++
			}
			arm.OverrunKills += j.Kills
		}
		arm.MeanWaitS = sumWait / float64(len(jobs))
		return arm, nil
	}

	out := &BackfillAblationResult{Jobs: len(specs), Nodes: abl.Nodes}
	if out.NoBackfill, err = runArm("no backfill", false, false); err != nil {
		return nil, err
	}
	if out.FixedGrant, err = runArm("fixed-grant backfill", true, false); err != nil {
		return nil, err
	}
	if out.Forecast, err = runArm("forecast-sized backfill", true, true); err != nil {
		return nil, err
	}
	return out, nil
}
