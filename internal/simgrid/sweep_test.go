package simgrid

import (
	"testing"

	"repro/internal/scheduler"
)

func TestScaledDeployment(t *testing.T) {
	d1, err := ScaledDeployment(1)
	if err != nil || len(d1.SeDs) != 11 {
		t.Fatalf("mult=1: %d SeDs, %v", len(d1.SeDs), err)
	}
	d3, err := ScaledDeployment(3)
	if err != nil || len(d3.SeDs) != 33 {
		t.Fatalf("mult=3: %d SeDs, %v", len(d3.SeDs), err)
	}
	names := map[string]bool{}
	for _, s := range d3.SeDs {
		if names[s.Name] {
			t.Fatalf("duplicate SeD name %q", s.Name)
		}
		names[s.Name] = true
	}
	if _, err := ScaledDeployment(0); err == nil {
		t.Error("mult=0 should fail")
	}
}

func TestSweepSeDsMakespanFalls(t *testing.T) {
	rr := func() scheduler.Policy { return scheduler.NewRoundRobin() }
	points, err := SweepSeDs(rr, []int{1, 2, 4}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].MakespanHours >= points[i-1].MakespanHours {
			t.Errorf("makespan must fall with more SeDs: %.2f -> %.2f at %d SeDs",
				points[i-1].MakespanHours, points[i].MakespanHours, points[i].SeDs)
		}
		if points[i].MeanLatencyMS >= points[i-1].MeanLatencyMS {
			t.Errorf("queueing latency must fall with more SeDs")
		}
	}
	// With 44 SeDs and 100 requests, queues hold at most 3 jobs: makespan
	// under ~3 max-durations + phase 1.
	if points[2].MakespanHours > 8 {
		t.Errorf("44-SeD makespan %.2f h implausibly high", points[2].MakespanHours)
	}
}

func TestSweepRequestsMakespanGrows(t *testing.T) {
	rr := func() scheduler.Policy { return scheduler.NewRoundRobin() }
	points, err := SweepRequests(rr, []int{25, 100, 200})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].MakespanHours <= points[i-1].MakespanHours {
			t.Errorf("makespan must grow with campaign size")
		}
	}
	// Speedup approaches the SeD count as the campaign grows (queues stay
	// full): the 200-request run must beat the 25-request run's speedup.
	if points[2].Speedup <= points[0].Speedup {
		t.Errorf("long campaigns should amortise better: speedup %.1f vs %.1f",
			points[2].Speedup, points[0].Speedup)
	}
}
