package simgrid

import (
	"testing"

	"repro/internal/scheduler"
)

// TestBatchFixedGrantKillsOverruns checks the simulator's walltime mirror:
// a fixed grant smaller than the solve duration is killed at expiry and
// requeued with a doubled grant, and the wasted compute extends the
// makespan.
func TestBatchFixedGrantKillsOverruns(t *testing.T) {
	mk := func(wallS float64) ExperimentConfig {
		cfg := DefaultExperiment(scheduler.NewRoundRobin())
		cfg.NRequests = 10
		cfg.BatchMode = true
		cfg.BatchGrantS = 30
		cfg.BatchFixedWallS = wallS
		return cfg
	}
	generous, err := RunExperiment(mk(100000))
	if err != nil {
		t.Fatal(err)
	}
	if generous.Batch.OverrunKills != 0 {
		t.Fatalf("a generous grant must not kill, got %d kills", generous.Batch.OverrunKills)
	}
	if generous.Batch.Reservations != 11 {
		t.Fatalf("11 solves must reserve, got %d", generous.Batch.Reservations)
	}
	if generous.Batch.IdlePadS <= 0 {
		t.Fatal("a generous grant must record idle pad")
	}
	// Mean solve is ~5000 s: a 2000 s grant kills every solve at least once.
	tight, err := RunExperiment(mk(2000))
	if err != nil {
		t.Fatal(err)
	}
	if tight.Batch.OverrunKills < 11 {
		t.Fatalf("a 2000 s grant must kill every solve at least once, got %d kills", tight.Batch.OverrunKills)
	}
	if tight.Batch.WastedS <= 0 {
		t.Fatal("kills must waste compute")
	}
	if tight.TotalS <= generous.TotalS {
		t.Fatalf("kill-and-requeue must cost makespan: tight %s vs generous %s",
			Hours(tight.TotalS), Hours(generous.TotalS))
	}
}

// TestBatchForecastSizesReservations checks that with trained monitors the
// forecast-sized arm right-sizes walltimes: no kills and far less idle pad
// than a fixed 2 h grant, on the honest platform.
func TestBatchForecastSizesReservations(t *testing.T) {
	mk := func() ExperimentConfig {
		cfg := DefaultExperiment(scheduler.NewRoundRobin())
		cfg.NRequests = 30
		cfg.BatchMode = true
		cfg.BatchGrantS = 30
		return cfg
	}
	fixed, err := RunExperiment(mk())
	if err != nil {
		t.Fatal(err)
	}

	cfg := mk()
	cfg.BatchForecast = true
	rounds, err := RunExperimentRounds(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	trained := rounds[1]
	if trained.Batch.ForecastSized == 0 {
		t.Fatal("trained round must size reservations from forecasts")
	}
	if trained.Batch.OverrunKills != 0 {
		t.Fatalf("right-sized reservations must not be killed, got %d kills", trained.Batch.OverrunKills)
	}
	// The sized pad is the ~20% policy margin on a ~5000 s solve (~1000 s);
	// the fixed 2 h grant pads ~2100 s on the same solves.
	perResFixed := fixed.Batch.IdlePadS / float64(fixed.Batch.Reservations)
	perResTrained := trained.Batch.IdlePadS / float64(trained.Batch.Reservations)
	if perResTrained >= 0.75*perResFixed {
		t.Fatalf("forecast sizing must cut idle pad: %.0f s/reservation vs fixed %.0f", perResTrained, perResFixed)
	}
}

// TestBatchForecastRequiresForecast checks the config validation.
func TestBatchForecastRequiresForecast(t *testing.T) {
	cfg := DefaultExperiment(scheduler.NewRoundRobin())
	cfg.BatchMode = true
	cfg.BatchForecast = true
	if _, err := RunExperiment(cfg); err == nil {
		t.Fatal("BatchForecast without Forecast must be rejected")
	}
}

// TestRunDeployAblation is the acceptance gate for closing the forecast
// loop: on the CanonicalSkew-miscalibrated platform, measured-power
// deployment planning plus forecast-sized batch reservations must beat
// static planning plus fixed grants on makespan AND on overrun+pad cost,
// and the replan must demote the degraded SeDs.
func TestRunDeployAblation(t *testing.T) {
	res, err := RunDeployAblation(func() ExperimentConfig {
		cfg := DefaultExperiment(nil)
		cfg.NRequests = 60
		return cfg
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("honest %s, static(skew) %s, trained(skew) %s — makespan gain %.1f%%, reservation gain %.1f%%",
		Hours(res.Honest.TotalS), Hours(res.Static.TotalS), Hours(res.Trained.TotalS),
		res.MakespanGainPct(), res.ReservationGainPct())
	t.Logf("static kills %d pad %.0fs wasted %.0fs | trained kills %d pad %.0fs wasted %.0fs",
		res.Static.Batch.OverrunKills, res.Static.Batch.IdlePadS, res.Static.Batch.WastedS,
		res.Trained.Batch.OverrunKills, res.Trained.Batch.IdlePadS, res.Trained.Batch.WastedS)

	// Precondition: miscalibration must actually hurt the static pipeline.
	if res.Static.TotalS <= res.Honest.TotalS {
		t.Fatalf("skew must hurt the static arm: %s vs honest %s",
			Hours(res.Static.TotalS), Hours(res.Honest.TotalS))
	}
	if res.Static.Batch.OverrunKills == 0 {
		t.Fatal("fixed grants sized for advertised speed must be killed on degraded SeDs")
	}
	// The headline: trained beats static on makespan…
	if res.Trained.TotalS >= res.Static.TotalS {
		t.Fatalf("trained %s must beat static %s on the miscalibrated platform",
			Hours(res.Trained.TotalS), Hours(res.Static.TotalS))
	}
	// …and on the overrun+pad reservation cost.
	if res.Trained.Batch.OverrunPadCostS() >= res.Static.Batch.OverrunPadCostS() {
		t.Fatalf("trained overrun+pad %.0f s must beat static %.0f s",
			res.Trained.Batch.OverrunPadCostS(), res.Static.Batch.OverrunPadCostS())
	}
	if res.Trained.Batch.OverrunKills >= res.Static.Batch.OverrunKills {
		t.Fatalf("forecast-sized reservations must cut kills: %d vs %d",
			res.Trained.Batch.OverrunKills, res.Static.Batch.OverrunKills)
	}

	// The replan must have noticed the degraded SeDs and demoted them.
	if len(res.Changes) == 0 {
		t.Fatal("replan on a miscalibrated platform must report changes")
	}
	for _, name := range []string{"Nancy1", "Nancy2"} {
		planned, ok := res.PlannedPower[name]
		if !ok {
			t.Fatalf("planned power missing %s", name)
		}
		if planned >= 0.6*63.84 { // advertised ≈ 63.8, delivered 35% of it
			t.Errorf("%s planned power %.1f should reflect the ~22 GFlops delivered", name, planned)
		}
	}
}
