package simgrid

import (
	"fmt"
	"time"

	"repro/internal/cori"
	"repro/internal/scheduler"
)

// This file runs the §6.2-style forecasting ablation: the same CoRI monitor
// the live SeDs host (internal/cori), driven in the simulator's virtual time
// so campaigns train duration models at zero wall-clock cost, and a
// multi-round driver that carries the trained models into fresh campaigns —
// the "history-aware scheduling" experiment the paper's conclusion asks for.

// virtualEpoch anchors the simulator's second-counter to a fixed wall-clock
// origin so cori timestamps are reproducible.
var virtualEpoch = time.Unix(1_000_000_000, 0).UTC()

// virtualClock adapts the discrete-event simulator's clock to the
// cori.Monitor's injectable now().
func virtualClock(sim *Sim) func() time.Time {
	return func() time.Time {
		return virtualEpoch.Add(time.Duration(sim.Now() * float64(time.Second)))
	}
}

// RunExperimentRounds replays the campaign rounds times, carrying each SeD's
// trained CoRI monitor from one round into the next (fresh queues, retained
// history — successive observing nights on the same testbed). The final
// round runs the cfg.Seed workload so its result is directly comparable to a
// single RunExperiment of any policy on the same seed; the training rounds
// before it draw distinct seeds (cfg.Seed+1000+r) so the models never see
// the measured workload. It returns one result per round; with a
// history-aware policy the later rounds schedule on measured models where
// round one could only trust advertised powers.
//
// Note: each round restarts virtual time, so a carried model's age resets —
// between-round staleness is not simulated.
func RunExperimentRounds(cfg ExperimentConfig, rounds int) ([]*ExperimentResult, error) {
	if rounds < 1 {
		return nil, fmt.Errorf("simgrid: rounds must be >= 1, got %d", rounds)
	}
	cfg.Forecast = true
	if cfg.Monitors == nil {
		cfg.Monitors = make(map[string]*cori.Monitor, len(cfg.Deployment.SeDs))
	}
	baseSeed := cfg.Seed
	var out []*ExperimentResult
	for r := 0; r < rounds; r++ {
		if r == rounds-1 {
			cfg.Seed = baseSeed
		} else {
			cfg.Seed = baseSeed + 1000 + int64(r)
		}
		res, err := RunExperiment(cfg)
		if err != nil {
			return nil, fmt.Errorf("simgrid: forecast round %d: %w", r+1, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// CanonicalSkew is the miscalibration scenario of the forecast ablation:
// the advertised-fastest SeDs actually deliver a fraction of their power
// (degraded nodes, background load — what a static deployment file cannot
// see). Keys are SeD names of the paper deployment, values multiply the
// delivered power.
var CanonicalSkew = map[string]float64{"Nancy1": 0.35, "Nancy2": 0.35, "Sophia1": 0.5}

// ForecastAblationResult compares the paper's default scheduling against the
// history-aware plug-ins, on the honest platform and on the same platform
// with CanonicalSkew miscalibration. The honest arms show graceful
// degradation (forecasting must not lose to the static plug-in); the skewed
// arms isolate what measuring — rather than trusting — server speed buys.
type ForecastAblationResult struct {
	RoundRobin      *ExperimentResult
	PowerAware      *ExperimentResult
	ForecastCold    *ExperimentResult // forecastaware, no prior history
	ForecastTrained *ExperimentResult // forecastaware, after Rounds-1 training rounds
	Contention      *ExperimentResult // contentionaware, after the same training

	SkewRoundRobin *ExperimentResult // miscalibrated platform, equal distribution
	SkewPowerAware *ExperimentResult // miscalibrated platform, misled static plug-in
	SkewTrained    *ExperimentResult // miscalibrated platform, trained forecastaware
}

// ImprovementPct is the makespan saving of the trained forecast-aware run
// over round-robin on the honest platform, in percent. Note this includes
// the static power-aware effect (ablation A1); ForecastGainPct isolates the
// forecasting subsystem's own contribution.
func (r ForecastAblationResult) ImprovementPct() float64 {
	return 100 * (r.RoundRobin.TotalS - r.ForecastTrained.TotalS) / r.RoundRobin.TotalS
}

// ForecastGainPct is the makespan saving of trained forecasting over the
// misled static power-aware plug-in on the miscalibrated platform — the
// value attributable to measuring server speed instead of trusting it.
func (r ForecastAblationResult) ForecastGainPct() float64 {
	return 100 * (r.SkewPowerAware.TotalS - r.SkewTrained.TotalS) / r.SkewPowerAware.TotalS
}

// RunForecastAblation runs the full comparison on the given configuration
// template (Policy and Forecast fields are overridden per arm). rounds ≥ 2
// gives the trained arms rounds-1 campaigns of history before the measured
// round.
func RunForecastAblation(mkCfg func() ExperimentConfig, rounds int) (*ForecastAblationResult, error) {
	if rounds < 2 {
		rounds = 2
	}
	run := func(policy scheduler.Policy, forecast bool, skew map[string]float64) (*ExperimentResult, error) {
		cfg := mkCfg()
		cfg.Policy = policy
		cfg.Forecast = forecast
		cfg.TruePowerFactor = skew
		return RunExperiment(cfg)
	}
	trained := func(policy scheduler.Policy, skew map[string]float64) (*ExperimentResult, error) {
		cfg := mkCfg()
		cfg.Policy = policy
		cfg.TruePowerFactor = skew
		all, err := RunExperimentRounds(cfg, rounds)
		if err != nil {
			return nil, err
		}
		return all[len(all)-1], nil
	}
	var (
		out ForecastAblationResult
		err error
	)
	if out.RoundRobin, err = run(scheduler.NewRoundRobin(), false, nil); err != nil {
		return nil, err
	}
	if out.PowerAware, err = run(scheduler.NewPowerAware(), false, nil); err != nil {
		return nil, err
	}
	if out.ForecastCold, err = run(scheduler.NewForecastAware(), true, nil); err != nil {
		return nil, err
	}
	if out.ForecastTrained, err = trained(scheduler.NewForecastAware(), nil); err != nil {
		return nil, err
	}
	if out.Contention, err = trained(scheduler.NewContentionAware(), nil); err != nil {
		return nil, err
	}
	if out.SkewRoundRobin, err = run(scheduler.NewRoundRobin(), false, CanonicalSkew); err != nil {
		return nil, err
	}
	if out.SkewPowerAware, err = run(scheduler.NewPowerAware(), false, CanonicalSkew); err != nil {
		return nil, err
	}
	if out.SkewTrained, err = trained(scheduler.NewForecastAware(), CanonicalSkew); err != nil {
		return nil, err
	}
	return &out, nil
}
