package simgrid

import (
	"strings"
	"testing"
)

// TestRunDataAblation is the A13 headline: on the default data-heavy sweep,
// pricing input transfers into placement must beat the data-blind arm on BOTH
// makespan and bytes moved. It also guards against the empty config being
// inert — the zero value must run the real default sweep, not a degenerate
// one where the arms trivially tie.
func TestRunDataAblation(t *testing.T) {
	res := RunDataAblation(DataAblationConfig{})

	// Inert-empty-config guard: the default sweep really ran.
	wantSolves := 6 * 8 // default Datasets × PointsPerDataset
	for _, arm := range []*DataArmResult{res.Blind, res.Aware} {
		if arm.Solves != wantSolves {
			t.Fatalf("%s: %d solves, want %d — empty config ran a degenerate sweep", arm.Strategy, arm.Solves, wantSolves)
		}
		if arm.Transfers == 0 || arm.BytesMovedMB == 0 {
			t.Fatalf("%s: no transfers at all — empty config is inert", arm.Strategy)
		}
		if arm.MakespanS <= 0 {
			t.Fatalf("%s: non-positive makespan %.1f", arm.Strategy, arm.MakespanS)
		}
		if len(arm.EventLog) != wantSolves {
			t.Fatalf("%s: %d event-log lines, want %d", arm.Strategy, len(arm.EventLog), wantSolves)
		}
	}

	if res.Aware.MakespanS >= res.Blind.MakespanS {
		t.Errorf("data-aware makespan %.1fs must beat data-blind %.1fs",
			res.Aware.MakespanS, res.Blind.MakespanS)
	}
	if res.Aware.BytesMovedMB >= res.Blind.BytesMovedMB {
		t.Errorf("data-aware moved %.0f MB, must move less than data-blind %.0f MB",
			res.Aware.BytesMovedMB, res.Blind.BytesMovedMB)
	}
	if res.MakespanGainPct() <= 0 || res.BytesSavedPct() <= 0 {
		t.Errorf("gains must be positive: makespan %.1f%%, bytes %.1f%%",
			res.MakespanGainPct(), res.BytesSavedPct())
	}

	var b strings.Builder
	res.Print(&b)
	for _, want := range []string{"A13", "data-blind", "data-aware", "makespan gain", "bytes saved"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("Print output missing %q:\n%s", want, b.String())
		}
	}
}

// TestDataAblationDeterministic pins the simulator contract: the same seed
// and bandwidth configuration produce identical event logs, run to run, for
// both arms.
func TestDataAblationDeterministic(t *testing.T) {
	cfg := DataAblationConfig{Seed: 41}
	a := RunDataAblation(cfg)
	b := RunDataAblation(cfg)
	for _, pair := range [][2]*DataArmResult{{a.Blind, b.Blind}, {a.Aware, b.Aware}} {
		x, y := pair[0], pair[1]
		if len(x.EventLog) != len(y.EventLog) {
			t.Fatalf("%s: log lengths diverge: %d vs %d", x.Strategy, len(x.EventLog), len(y.EventLog))
		}
		for i := range x.EventLog {
			if x.EventLog[i] != y.EventLog[i] {
				t.Fatalf("%s: event logs diverge at line %d:\n%s\n%s", x.Strategy, i, x.EventLog[i], y.EventLog[i])
			}
		}
		if x.MakespanS != y.MakespanS || x.BytesMovedMB != y.BytesMovedMB || x.Transfers != y.Transfers {
			t.Fatalf("%s: results diverge: %+v vs %+v", x.Strategy, x, y)
		}
	}

	// A different seed reorders submissions, so the trace must change —
	// otherwise the logs are not actually recording the schedule.
	c := RunDataAblation(DataAblationConfig{Seed: 42})
	same := len(c.Blind.EventLog) == len(a.Blind.EventLog)
	if same {
		for i := range c.Blind.EventLog {
			if c.Blind.EventLog[i] != a.Blind.EventLog[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical blind-arm event logs")
	}
}
