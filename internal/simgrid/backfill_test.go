package simgrid

import (
	"math/rand"
	"testing"
)

// TestBatchQueueBackfillsIntoShadowWindow checks the basic mechanics: a
// narrow short job jumps ahead of a blocked wide head without delaying it.
func TestBatchQueueBackfillsIntoShadowWindow(t *testing.T) {
	mk := func() []*BatchQueueJob {
		return []*BatchQueueJob{
			{ID: 1, ArriveS: 0, Nodes: 1, WallS: 10, RunS: 10},
			{ID: 2, ArriveS: 1, Nodes: 2, WallS: 10, RunS: 5}, // blocked head: needs both nodes
			{ID: 3, ArriveS: 2, Nodes: 1, WallS: 3, RunS: 2},  // fits the shadow window
		}
	}

	withBF := mk()
	if err := SimulateBatchQueue(BatchQueueConfig{Nodes: 2, Backfill: true}, withBF); err != nil {
		t.Fatal(err)
	}
	if !withBF[2].Backfilled {
		t.Fatalf("job 3 must backfill: %+v", withBF[2])
	}
	if withBF[2].StartS != 2 {
		t.Fatalf("job 3 must start immediately at its arrival, got %g", withBF[2].StartS)
	}
	// The head was promised a bound and must keep it.
	if withBF[1].HeadBoundS < 0 {
		t.Fatal("head job should have a recorded shadow bound")
	}
	if withBF[1].StartS > withBF[1].HeadBoundS {
		t.Fatalf("head delayed past its bound: start %g > bound %g", withBF[1].StartS, withBF[1].HeadBoundS)
	}

	noBF := mk()
	if err := SimulateBatchQueue(BatchQueueConfig{Nodes: 2, Backfill: false}, noBF); err != nil {
		t.Fatal(err)
	}
	if noBF[2].Backfilled {
		t.Fatal("nothing may backfill with backfill disabled")
	}
	if withBF[1].StartS != noBF[1].StartS {
		t.Fatalf("backfill must not move the head's start: %g vs %g (FIFO)", withBF[1].StartS, noBF[1].StartS)
	}
	if withBF[2].WaitS >= noBF[2].WaitS {
		t.Fatalf("backfill must shorten job 3's wait: %g vs %g (FIFO)", withBF[2].WaitS, noBF[2].WaitS)
	}
}

// TestBatchQueuePrefersForecastSized checks the candidate-selection policy
// mirrors batch.OrderBackfill: when two candidates fit one free node, the
// forecast-sized one goes first even though it was submitted later.
func TestBatchQueuePrefersForecastSized(t *testing.T) {
	jobs := []*BatchQueueJob{
		{ID: 1, ArriveS: 0, Nodes: 1, WallS: 20, RunS: 20},
		{ID: 2, ArriveS: 1, Nodes: 2, WallS: 10, RunS: 5},             // blocked head
		{ID: 3, ArriveS: 2, Nodes: 1, WallS: 5, RunS: 5},              // fixed grant, submitted first
		{ID: 4, ArriveS: 2, Nodes: 1, WallS: 5, RunS: 5, Sized: true}, // forecast-sized, same instant
	}
	if err := SimulateBatchQueue(BatchQueueConfig{Nodes: 2, Backfill: true}, jobs); err != nil {
		t.Fatal(err)
	}
	if !jobs[3].Backfilled || jobs[3].StartS != 2 {
		t.Fatalf("the forecast-sized candidate must win the free node: %+v", jobs[3])
	}
	if jobs[2].StartS <= jobs[3].StartS {
		t.Fatalf("the fixed-grant candidate must start after the sized one: %g vs %g", jobs[2].StartS, jobs[3].StartS)
	}
}

// TestBatchQueueKillAndRequeue checks the walltime-enforcement mirror: an
// undersized grant is killed at expiry and the requeued attempt completes
// with a widened grant, like batch.ForecastExecutor.
func TestBatchQueueKillAndRequeue(t *testing.T) {
	jobs := []*BatchQueueJob{
		{ID: 1, ArriveS: 0, Nodes: 1, WallS: 4, RunS: 6},
	}
	if err := SimulateBatchQueue(BatchQueueConfig{Nodes: 1, Backfill: true}, jobs); err != nil {
		t.Fatal(err)
	}
	j := jobs[0]
	if j.Kills != 1 || j.Failed {
		t.Fatalf("one kill then success expected: %+v", j)
	}
	// Attempt 1 wastes its 4 s grant, attempt 2 (8 s grant) runs the 6 s
	// script to completion.
	if j.EndS != 10 {
		t.Fatalf("end = kill(4) + rerun(6) = 10, got %g", j.EndS)
	}
}

// TestBackfillShadowInvariantProperty drives the virtual queue with random
// arrival/walltime mixes — with and without forecast sizing, including
// undersized grants that kill and requeue — and asserts the conservative
// guarantee: no attempt ever starts later than a shadow bound promised to
// it while it was head of the queue, and every job completes.
func TestBackfillShadowInvariantProperty(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		for _, sizing := range []bool{false, true} {
			rng := rand.New(rand.NewSource(seed))
			nodes := 3 + rng.Intn(6)
			njobs := 30 + rng.Intn(31)
			jobs := make([]*BatchQueueJob, njobs)
			for i := range jobs {
				width := 1
				switch rng.Intn(5) {
				case 3:
					width = 1 + rng.Intn(nodes)
				case 4:
					width = nodes
				}
				wall := 10 + 90*rng.Float64()
				run := wall * (0.3 + 0.7*rng.Float64())
				if rng.Intn(10) == 0 {
					run = wall * 1.5 // undersized: exercises kill-and-requeue
				}
				jobs[i] = &BatchQueueJob{
					ID: i + 1, ArriveS: 200 * rng.Float64(), Nodes: width,
					WallS: wall, RunS: run,
					Sized: sizing && rng.Intn(2) == 0,
				}
			}
			if err := SimulateBatchQueue(BatchQueueConfig{Nodes: nodes, Backfill: true}, jobs); err != nil {
				t.Fatalf("seed %d sizing %v: %v", seed, sizing, err)
			}
			for _, j := range jobs {
				if j.Failed {
					t.Fatalf("seed %d sizing %v: job %d failed (run 1.5x wall must survive one 2x requeue): %+v", seed, sizing, j.ID, j)
				}
				if j.ShadowViolations != 0 {
					t.Fatalf("seed %d sizing %v: job %d started past its promised shadow bound: %+v", seed, sizing, j.ID, j)
				}
				if j.EndS < j.StartS || j.StartS < j.ArriveS || j.WaitS < 0 {
					t.Fatalf("seed %d sizing %v: job %d has inconsistent times: %+v", seed, sizing, j.ID, j)
				}
			}
		}
	}
}

// TestRunBackfillAblation is the A9 acceptance check: on the CanonicalSkew
// platform, forecast-sized backfill strictly reduces mean queue wait vs
// fixed-grant backfill, and backfill itself beats pure FIFO.
func TestRunBackfillAblation(t *testing.T) {
	res, err := RunBackfillAblation(func() ExperimentConfig {
		return DefaultExperiment(nil)
	}, BackfillAblationConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("no backfill:   wait %.0fs  makespan %.0fs", res.NoBackfill.MeanWaitS, res.NoBackfill.MakespanS)
	t.Logf("fixed grants:  wait %.0fs  makespan %.0fs  backfilled %d", res.FixedGrant.MeanWaitS, res.FixedGrant.MakespanS, res.FixedGrant.Backfilled)
	t.Logf("forecast:      wait %.0fs  makespan %.0fs  backfilled %d (%d sized)", res.Forecast.MeanWaitS, res.Forecast.MakespanS, res.Forecast.Backfilled, res.Forecast.ForecastSized)

	if res.Forecast.ForecastSized == 0 {
		t.Fatal("trained monitors must size some walltimes from forecasts")
	}
	if res.Forecast.Backfilled == 0 {
		t.Fatal("forecast-sized walltimes must enable backfilling")
	}
	if res.Forecast.MeanWaitS >= res.FixedGrant.MeanWaitS {
		t.Fatalf("forecast-sized backfill must strictly reduce mean queue wait: %.1fs vs %.1fs fixed",
			res.Forecast.MeanWaitS, res.FixedGrant.MeanWaitS)
	}
	if res.Forecast.MeanWaitS >= res.NoBackfill.MeanWaitS {
		t.Fatalf("forecast-sized backfill must strictly beat pure FIFO on mean queue wait: %.1fs vs %.1fs",
			res.Forecast.MeanWaitS, res.NoBackfill.MeanWaitS)
	}
	if res.FixedGrant.MeanWaitS > res.NoBackfill.MeanWaitS {
		t.Fatalf("fixed-grant backfill must not be worse than FIFO: %.1fs vs %.1fs",
			res.FixedGrant.MeanWaitS, res.NoBackfill.MeanWaitS)
	}
	if res.Forecast.MakespanS > res.FixedGrant.MakespanS {
		t.Fatalf("forecast-sized backfill must not stretch the makespan: %.1fs vs %.1fs",
			res.Forecast.MakespanS, res.FixedGrant.MakespanS)
	}
}
