package simgrid

import "fmt"

// This file injects failures into the virtual-time campaign and mirrors the
// live stack's self-healing machinery (heartbeat-miss eviction, restart with
// -cori-snapshot warm restore, kill-and-requeue of in-flight solves) so the
// A10 ablation can price recovery against a hierarchy that has none. The
// schedule is static — every crash, restart, partition, heal and loss event
// is declared up front — which keeps failure runs exactly as deterministic as
// healthy ones: same seed + same schedule → identical traces.

// FailureKind enumerates the injectable failures.
type FailureKind string

// Failure kinds.
const (
	// FailCrash kills a SeD process: running and queued solves die with it.
	// With a later FailRestart the node comes back; without one it is gone
	// for the rest of the campaign.
	FailCrash FailureKind = "crash"
	// FailRestart brings a crashed SeD back. Self-healing restores its CoRI
	// monitor from a snapshot (no retraining); a fragile restart comes up
	// cold and replays its backlog serially.
	FailRestart FailureKind = "restart"
	// FailPartition cuts the node off the network: it keeps computing, but
	// results cannot be delivered and new requests cannot reach it until the
	// matching FailHeal.
	FailPartition FailureKind = "partition"
	// FailHeal ends a partition and delivers the results it held back.
	FailHeal FailureKind = "heal"
	// FailLoss drops the next Count dispatches to the node in flight — the
	// request vanishes between the MA's answer and the SeD's queue.
	FailLoss FailureKind = "loss"
)

// FailureEvent schedules one failure at a virtual time.
type FailureEvent struct {
	AtS   float64
	Kind  FailureKind
	Node  string // SeD name
	Count int    // FailLoss: dispatches to drop (default 1)
}

// FailureLogEntry is one line of a campaign's failure/recovery trace —
// injections and every recovery decision the run took, in virtual-time
// order. The determinism tests compare these traces verbatim.
type FailureLogEntry struct {
	AtS    float64
	Node   string
	Kind   string // event kind, or a recovery action: detect_evict, requeue, lost, restart...
	Detail string
}

// simJob is one request's mutable dispatch state under failure injection:
// enough to cancel its scheduled events (gen), requeue it elsewhere (avoid),
// and replay it after a fragile restart.
type simJob struct {
	id      int
	service string
	work    float64
	findMS  float64
	submitS float64 // virtual time the client issued the request
	attempt int
	onDone  func(RequestRecord)

	dispatch0 float64         // first placement time (RequestRecord.SubmitS)
	avoid     map[string]bool // nodes this job already bounced off
	gen       int             // placement generation; stale events see an old gen
	cancelled bool
	started   bool // the start event fired (running, not queued)
}

// dropInflight removes a completed job from the SeD's in-flight list.
func (s *sedState) dropInflight(job *simJob) {
	for i, j := range s.inflight {
		if j == job {
			s.inflight = append(s.inflight[:i], s.inflight[i+1:]...)
			return
		}
	}
}

// cancelInflight cancels every in-flight job on the SeD — their scheduled
// start/completion events become no-ops — undoes their queue accounting, and
// returns them in dispatch order for requeue or replay.
func (s *sedState) cancelInflight() []*simJob {
	held := s.inflight
	s.inflight = nil
	for _, j := range held {
		j.cancelled = true
		if j.started {
			s.running--
		} else {
			s.queue--
		}
		s.pending[j.service]--
		if s.pending[j.service] <= 0 {
			delete(s.pending, j.service)
		}
	}
	return held
}

// recoveryAfter finds the first event of the given kind for the node after
// time t — how a crash looks up its restart and a partition its heal.
func recoveryAfter(failures []FailureEvent, node string, kind FailureKind, t float64) (float64, bool) {
	best, ok := 0.0, false
	for _, f := range failures {
		if f.Node == node && f.Kind == kind && f.AtS > t && (!ok || f.AtS < best) {
			best, ok = f.AtS, true
		}
	}
	return best, ok
}

// validateFailureSchedule rejects schedules the simulator cannot model:
// events on unknown nodes, and partitions with no later heal (in fragile
// mode the held results would never be delivered and the campaign could not
// account for every request).
func validateFailureSchedule(failures []FailureEvent, byName map[string]*sedState) error {
	for _, f := range failures {
		if _, ok := byName[f.Node]; !ok {
			return fmt.Errorf("simgrid: failure schedule names unknown SeD %q", f.Node)
		}
		if f.AtS < 0 {
			return fmt.Errorf("simgrid: failure event for %s at negative time %g", f.Node, f.AtS)
		}
		if f.Kind == FailPartition {
			if _, ok := recoveryAfter(failures, f.Node, FailHeal, f.AtS); !ok {
				return fmt.Errorf("simgrid: partition of %s at %gs has no later heal", f.Node, f.AtS)
			}
		}
	}
	return nil
}
