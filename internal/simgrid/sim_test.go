package simgrid

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := NewSim()
	var log []float64
	s.At(3, func() { log = append(log, 3) })
	s.At(1, func() { log = append(log, 1) })
	s.At(2, func() { log = append(log, 2) })
	n := s.Run()
	if n != 3 {
		t.Fatalf("ran %d events", n)
	}
	if !sort.Float64sAreSorted(log) {
		t.Errorf("events out of order: %v", log)
	}
	if s.Now() != 3 {
		t.Errorf("clock at %g, want 3", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := NewSim()
	var log []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { log = append(log, i) })
	}
	s.Run()
	for i := range log {
		if log[i] != i {
			t.Fatalf("same-time events not FIFO: %v", log)
		}
	}
}

func TestCascadingEvents(t *testing.T) {
	s := NewSim()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			s.After(1, recurse)
		}
	}
	s.After(1, recurse)
	s.Run()
	if depth != 100 {
		t.Errorf("cascade depth %d, want 100", depth)
	}
	if s.Now() != 100 {
		t.Errorf("clock %g, want 100", s.Now())
	}
}

func TestPastSchedulingRejected(t *testing.T) {
	s := NewSim()
	s.At(10, func() {
		if err := s.At(5, func() {}); err == nil {
			t.Error("scheduling in the past should fail")
		}
	})
	s.Run()
	if err := s.At(-1, func() {}); err == nil {
		t.Error("negative time should fail")
	}
	if err := s.At(1, nil); err == nil {
		t.Error("nil function should fail")
	}
}

func TestRunUntil(t *testing.T) {
	s := NewSim()
	var fired []float64
	for _, tt := range []float64{1, 2, 3, 4, 5} {
		tt := tt
		s.At(tt, func() { fired = append(fired, tt) })
	}
	n := s.RunUntil(3)
	if n != 3 || len(fired) != 3 {
		t.Errorf("RunUntil(3) fired %d events: %v", n, fired)
	}
	if s.Pending() != 2 {
		t.Errorf("%d pending, want 2", s.Pending())
	}
	if s.Now() != 3 {
		t.Errorf("clock %g", s.Now())
	}
	s.Run()
	if len(fired) != 5 {
		t.Errorf("total fired %d", len(fired))
	}
}

func TestClockMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSim()
		ok := true
		last := -1.0
		for i := 0; i < 50; i++ {
			tt := rng.Float64() * 100
			s.At(tt, func() {
				if s.Now() < last {
					ok = false
				}
				last = s.Now()
			})
		}
		s.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFiredCounter(t *testing.T) {
	s := NewSim()
	for i := 0; i < 7; i++ {
		s.At(float64(i), func() {})
	}
	s.Run()
	if s.Fired() != 7 {
		t.Errorf("Fired = %d", s.Fired())
	}
}
