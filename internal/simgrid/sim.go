// Package simgrid is a deterministic discrete-event simulator for the DIET
// platform. The paper's experiment ran 16h18m on five Grid'5000 sites; this
// package replays the same campaign — same deployment, same request pattern,
// same scheduling policies — in virtual time, reproducing the shape of every
// measured quantity (Figures 5 and 6, and the §6.2 totals) in milliseconds
// of real time. The kernel is a classic event queue with a virtual clock.
//
// The simulator mirrors the live middleware's adaptive layers exactly: each
// SeD can host the real cori.Monitor driven by the virtual clock, batch
// reservations are sized by the real batch.WalltimePolicy (with overrun
// kills and requeues), and estimates advertise replanned powers via
// PlannedPower. The ablation drivers quantify each layer — scheduling
// policies (RunExperiment/RunExperimentRounds), cold-vs-trained forecasting
// (RunForecastAblation), and the closed deployment+reservation loop
// (RunDeployAblation).
package simgrid

import (
	"container/heap"
	"fmt"
)

// event is one scheduled callback.
type event struct {
	time float64 // virtual seconds
	seq  int64   // tie-break for determinism
	fn   func()
}

// eventHeap is a min-heap ordered by (time, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulation with a virtual clock in seconds.
// Events scheduled for the same instant fire in scheduling order.
type Sim struct {
	queue eventHeap
	now   float64
	seq   int64
	fired int
}

// NewSim returns an empty simulation at t=0.
func NewSim() *Sim { return &Sim{} }

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Fired returns the number of events processed so far.
func (s *Sim) Fired() int { return s.fired }

// At schedules fn at absolute virtual time t (>= Now).
func (s *Sim) At(t float64, fn func()) error {
	if t < s.now {
		return fmt.Errorf("simgrid: cannot schedule event at %g, now is %g", t, s.now)
	}
	if fn == nil {
		return fmt.Errorf("simgrid: nil event function")
	}
	s.seq++
	heap.Push(&s.queue, &event{time: t, seq: s.seq, fn: fn})
	return nil
}

// After schedules fn dt seconds from now (dt >= 0).
func (s *Sim) After(dt float64, fn func()) error { return s.At(s.now+dt, fn) }

// Run processes events until the queue is empty and returns the count.
func (s *Sim) Run() int {
	n := 0
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*event)
		s.now = e.time
		s.fired++
		n++
		e.fn()
	}
	return n
}

// RunUntil processes events with time <= t, then sets the clock to t.
func (s *Sim) RunUntil(t float64) int {
	n := 0
	for len(s.queue) > 0 && s.queue[0].time <= t {
		e := heap.Pop(&s.queue).(*event)
		s.now = e.time
		s.fired++
		n++
		e.fn()
	}
	if t > s.now {
		s.now = t
	}
	return n
}

// Pending returns the number of scheduled events.
func (s *Sim) Pending() int { return len(s.queue) }
