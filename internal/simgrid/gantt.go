package simgrid

import (
	"fmt"
	"io"
	"strings"
)

// PrintGantt renders the top panel of Figure 5 — the Gantt chart of the
// sub-simulations over the SeDs — as text: one row per SeD, time binned into
// `width` columns spanning the campaign, each request drawn with a rotating
// digit so adjacent requests are distinguishable.
func (r *ExperimentResult) PrintGantt(w io.Writer, width int) {
	if width < 10 {
		width = 10
	}
	total := r.TotalS
	if total <= 0 {
		fmt.Fprintln(w, "(empty campaign)")
		return
	}
	fmt.Fprintf(w, "Figure 5 (top) — Gantt chart, %s total, one column ≈ %s\n",
		Hours(total), Hours(total/float64(width)))
	for _, s := range r.PerSeD {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for qi, req := range s.Requests {
			mark := byte('0' + qi%10)
			lo := int(req.StartS / total * float64(width))
			hi := int(req.EndS / total * float64(width))
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi; i++ {
				row[i] = mark
			}
		}
		fmt.Fprintf(w, "%-11s |%s|\n", s.Name, string(row))
	}
	// Time axis.
	axis := make([]byte, width)
	for i := range axis {
		axis[i] = ' '
	}
	fmt.Fprintf(w, "%-11s 0%sT\n", "", strings.Repeat("-", width-2))
}
