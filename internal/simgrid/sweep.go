package simgrid

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/scheduler"
)

// This file extends the paper's evaluation with capacity sweeps: the
// experiment re-run with the deployment scaled to more SeDs per cluster, or
// with a different campaign size — the "what would Grid'5000 have needed"
// questions the paper's conclusion gestures at.

// ScaledDeployment replicates every SeD of the paper deployment mult times
// (Nancy1#1, Nancy1#2, …), keeping sites, clusters and per-SeD power — as if
// each cluster reservation had been mult× larger.
func ScaledDeployment(mult int) (platform.Deployment, error) {
	if mult < 1 {
		return platform.Deployment{}, fmt.Errorf("simgrid: multiplier must be >= 1, got %d", mult)
	}
	base := platform.PaperDeployment()
	if mult == 1 {
		return base, nil
	}
	out := platform.Deployment{MASite: base.MASite, LAs: base.LAs}
	for _, s := range base.SeDs {
		for k := 1; k <= mult; k++ {
			c := s
			c.Name = fmt.Sprintf("%s#%d", s.Name, k)
			out.SeDs = append(out.SeDs, c)
		}
	}
	return out, nil
}

// SweepPoint is one row of a scaling sweep.
type SweepPoint struct {
	SeDs          int
	Requests      int
	MakespanHours float64
	Speedup       float64
	MeanLatencyMS float64
}

// SweepSeDs reruns the campaign with the deployment scaled by each
// multiplier, reporting how the makespan falls as servers are added.
func SweepSeDs(policy func() scheduler.Policy, multipliers []int, requests int) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, m := range multipliers {
		dep, err := ScaledDeployment(m)
		if err != nil {
			return nil, err
		}
		cfg := DefaultExperiment(policy())
		cfg.Deployment = dep
		cfg.NRequests = requests
		res, err := RunExperiment(cfg)
		if err != nil {
			return nil, fmt.Errorf("simgrid: sweep point mult=%d: %w", m, err)
		}
		var latSum float64
		for _, r := range res.Records {
			latSum += r.LatencyMS
		}
		out = append(out, SweepPoint{
			SeDs:          len(dep.SeDs),
			Requests:      requests,
			MakespanHours: res.MakespanHours(),
			Speedup:       res.SequentialS / res.TotalS,
			MeanLatencyMS: latSum / float64(len(res.Records)),
		})
	}
	return out, nil
}

// SweepRequests reruns the campaign at several campaign sizes on the paper
// deployment, showing how makespan and queueing grow with the workload.
func SweepRequests(policy func() scheduler.Policy, sizes []int) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, n := range sizes {
		cfg := DefaultExperiment(policy())
		cfg.NRequests = n
		res, err := RunExperiment(cfg)
		if err != nil {
			return nil, fmt.Errorf("simgrid: sweep point n=%d: %w", n, err)
		}
		var latSum float64
		for _, r := range res.Records {
			latSum += r.LatencyMS
		}
		out = append(out, SweepPoint{
			SeDs:          len(cfg.Deployment.SeDs),
			Requests:      n,
			MakespanHours: res.MakespanHours(),
			Speedup:       res.SequentialS / res.TotalS,
			MeanLatencyMS: latSum / float64(len(res.Records)),
		})
	}
	return out, nil
}
