package simgrid

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/logsvc"
	"repro/internal/scheduler"
)

// failureCampaign is the shared failure-test configuration: the canonical
// paced campaign the A10 arms run.
func failureCampaign() ExperimentConfig {
	cfg := DefaultExperiment(scheduler.NewPowerAware())
	cfg.Forecast = true
	cfg.CoRI.HalfLife = TrainingHalfLife
	cfg.ArrivalGapS = 600
	return cfg
}

func TestFailureScheduleValidation(t *testing.T) {
	cfg := failureCampaign()
	cfg.Failures = []FailureEvent{{AtS: 100, Kind: FailCrash, Node: "NoSuchSeD"}}
	if _, err := RunExperiment(cfg); err == nil || !strings.Contains(err.Error(), "unknown SeD") {
		t.Fatalf("unknown node not rejected: %v", err)
	}
	cfg = failureCampaign()
	cfg.Failures = []FailureEvent{{AtS: 100, Kind: FailPartition, Node: "Nancy1"}}
	if _, err := RunExperiment(cfg); err == nil || !strings.Contains(err.Error(), "no later heal") {
		t.Fatalf("heal-less partition not rejected: %v", err)
	}
}

// TestFailureAccounting: under self-healing every request completes; fragile
// runs account for every request as completed or lost — none vanish.
func TestFailureAccounting(t *testing.T) {
	sched := CanonicalFailureSchedule()
	for _, healing := range []bool{true, false} {
		cfg := failureCampaign()
		cfg.Failures = sched
		cfg.SelfHealing = healing
		res, err := RunExperiment(cfg)
		if err != nil {
			t.Fatalf("healing=%v: %v", healing, err)
		}
		if got := len(res.Records) + res.SolvesLost; got != cfg.NRequests {
			t.Fatalf("healing=%v: %d records + %d lost = %d, want %d",
				healing, len(res.Records), res.SolvesLost, got, cfg.NRequests)
		}
		if healing {
			if res.SolvesLost != 0 {
				t.Fatalf("self-healing lost %d solves", res.SolvesLost)
			}
			if res.Requeued == 0 {
				t.Fatal("self-healing recovered without a single requeue — the schedule never bit")
			}
		} else {
			if res.SolvesLost == 0 {
				t.Fatal("fragile run lost nothing — the dead node and the message losses never bit")
			}
			if res.Requeued != 0 {
				t.Fatalf("fragile run requeued %d times; fragility must not recover", res.Requeued)
			}
		}
	}
}

// TestFailureDeterminism: same seed + same schedule → identical failure log,
// records, and totals, for both arms. The chaos is scripted, not random.
func TestFailureDeterminism(t *testing.T) {
	run := func(healing bool) *ExperimentResult {
		cfg := failureCampaign()
		cfg.Failures = CanonicalFailureSchedule()
		cfg.SelfHealing = healing
		res, err := RunExperiment(cfg)
		if err != nil {
			t.Fatalf("healing=%v: %v", healing, err)
		}
		return res
	}
	for _, healing := range []bool{true, false} {
		a, b := run(healing), run(healing)
		if !reflect.DeepEqual(a.FailureLog, b.FailureLog) {
			t.Fatalf("healing=%v: failure logs differ across identical runs:\n%v\n%v", healing, a.FailureLog, b.FailureLog)
		}
		if !reflect.DeepEqual(a.Records, b.Records) {
			t.Fatalf("healing=%v: request records differ across identical runs", healing)
		}
		if a.TotalS != b.TotalS || a.SolvesLost != b.SolvesLost || a.Requeued != b.Requeued {
			t.Fatalf("healing=%v: totals differ: %.3f/%d/%d vs %.3f/%d/%d",
				healing, a.TotalS, a.SolvesLost, a.Requeued, b.TotalS, b.SolvesLost, b.Requeued)
		}
	}
}

// TestFailureScheduleInert: an empty failure schedule must leave the
// campaign byte-identical to the failure-free simulator — A1–A9 run through
// the exact same code path.
func TestFailureScheduleInert(t *testing.T) {
	plain, err := RunExperiment(failureCampaign())
	if err != nil {
		t.Fatal(err)
	}
	cfg := failureCampaign()
	cfg.SelfHealing = true // arming recovery without a schedule changes nothing
	armed, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Records, armed.Records) || plain.TotalS != armed.TotalS {
		t.Fatal("SelfHealing without a schedule perturbed the campaign")
	}
	if len(armed.FailureLog) != 0 || armed.SolvesLost != 0 || armed.Requeued != 0 {
		t.Fatalf("failure-free run reported failure activity: %+v", armed.FailureLog)
	}
}

// TestFailureRequeueSpans: recovery resubmissions surface in the span trace
// as requeue spans, the same taxonomy the live client and agents emit.
func TestFailureRequeueSpans(t *testing.T) {
	bus := logsvc.New(16384)
	cfg := failureCampaign()
	cfg.Failures = CanonicalFailureSchedule()
	cfg.SelfHealing = true
	cfg.Spans = bus
	res, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	requeues := 0
	for _, ev := range bus.History() {
		if ev.IsSpan() && ev.Kind == logsvc.KindRequeue {
			requeues++
		}
	}
	if requeues == 0 {
		t.Fatal("no requeue spans in the healing trace")
	}
	if requeues < res.Requeued {
		t.Fatalf("%d requeue spans for %d requeues — recovery happened off-trace", requeues, res.Requeued)
	}
}

// TestRunFailureAblation is the A10 assertion: under the canonical failure
// schedule, the self-healing hierarchy must beat the fragile one on both
// makespan and solves lost, and its restarts must rejoin warm.
func TestRunFailureAblation(t *testing.T) {
	res, err := RunFailureAblation(func() ExperimentConfig {
		return DefaultExperiment(nil)
	}, FailureAblationConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("A10: healthy %.0fs; healing %.0fs (lost %d, requeued %d); fragile %.0fs (lost %d)",
		res.Healthy.TotalS, res.Healing.TotalS, res.Healing.SolvesLost, res.Healing.Requeued,
		res.Fragile.TotalS, res.Fragile.SolvesLost)
	if res.Healing.TotalS >= res.Fragile.TotalS {
		t.Fatalf("self-healing makespan %.0fs did not beat fragile %.0fs", res.Healing.TotalS, res.Fragile.TotalS)
	}
	if res.MakespanGainPct() <= 0 {
		t.Fatalf("makespan gain %.2f%% not positive", res.MakespanGainPct())
	}
	if res.Healing.SolvesLost != 0 {
		t.Fatalf("self-healing lost %d solves", res.Healing.SolvesLost)
	}
	if res.Fragile.SolvesLost == 0 {
		t.Fatal("fragile arm lost no solves — the schedule exercises nothing")
	}
	if res.SolvesSaved() <= 0 {
		t.Fatalf("solves saved %d not positive", res.SolvesSaved())
	}
	// Failures must still cost the healing arm something over the healthy
	// reference — recovery is mitigation, not magic.
	if res.Healing.TotalS <= res.Healthy.TotalS {
		t.Fatalf("healing arm %.0fs beat the failure-free run %.0fs", res.Healing.TotalS, res.Healthy.TotalS)
	}
	if warm, why := res.RestartsWarm(); !warm {
		t.Fatalf("healed restart came back cold: %s", why)
	}
	// The fragile arm's restarts are cold — the contrast the snapshot
	// restore exists for.
	if warm, _ := (FailureAblationResult{Healing: res.Fragile}).RestartsWarm(); warm {
		t.Fatal("fragile restarts reported warm models; they restart cold by construction")
	}
}
