package simgrid

import (
	"testing"

	"repro/internal/scheduler"
)

// TestStaggeredArrivalsFlattenLatency verifies the Figure 6 mechanism by
// removing its cause: when requests arrive slower than the platform drains
// them (~one completion per 460 s across 11 SeDs at the mean duration),
// queues never build and the latency curve stays flat.
func TestStaggeredArrivalsFlattenLatency(t *testing.T) {
	burst := runDefault(t, scheduler.NewRoundRobin())

	cfg := DefaultExperiment(scheduler.NewRoundRobin())
	cfg.ArrivalGapS = 600 // one request every 10 min: below the drain rate
	staggered, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}

	maxLatency := func(r *ExperimentResult) float64 {
		var m float64
		for _, rec := range r.Records {
			if rec.LatencyMS > m {
				m = rec.LatencyMS
			}
		}
		return m
	}
	mb, ms := maxLatency(burst), maxLatency(staggered)
	// Burst: ~5×10⁷ ms. Staggered: under an hour (3.6×10⁶ ms).
	if ms >= mb/10 {
		t.Errorf("staggered max latency %.3g ms should be ≪ burst %.3g ms", ms, mb)
	}
	if ms > 3.6e6 {
		t.Errorf("staggered max latency %.3g ms should stay under an hour", ms)
	}
	// The price: the campaign stretches to the arrival horizon.
	if staggered.TotalS <= burst.TotalS {
		t.Error("spacing arrivals must lengthen the campaign")
	}
	// Work conservation holds regardless of the arrival pattern.
	if len(staggered.Records) != len(burst.Records) {
		t.Error("request count must not change")
	}
}
