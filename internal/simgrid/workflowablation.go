package simgrid

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"repro/internal/cori"
	"repro/internal/platform"
	"repro/internal/scheduler"
	"repro/internal/workflow"
)

// This file runs the workflow ablation (A11): zoom campaigns expressed as the
// paper's Figure 4 DAG, executed in virtual time over the PaperDeployment,
// comparing the naive engine — ready nodes launched in topo order, placed
// round-robin — against the forecast-critical-path engine the live
// workflow.DietRunner implements: every stage priced from the SeDs' CoRI
// models (advertised power until a model is trusted), ready nodes launched in
// decreasing forecast-weighted downstream-chain order, each placed on the SeD
// with the earliest predicted finish. On the CanonicalSkew miscalibration the
// measured models route the long RAMSES and HaloMaker stages off the degraded
// nodes; the static engine keeps feeding them.

// WorkflowAblationConfig parameterises the A11 comparison.
type WorkflowAblationConfig struct {
	// Campaigns is how many zoom campaigns run back-to-back per arm; the
	// monitors carry across campaigns, so the early ones are cold training
	// runs. The default is 5: per-service models blacklist one misadvertised
	// SeD per campaign for a serial stage, and CanonicalSkew's degraded trio
	// tops the advertised table, so the dominant ramses3d stage needs three
	// campaigns of exploration before its model set converges.
	Campaigns int
	// Levels and Snapshots shape each campaign's RamsesZoomDocument
	// (defaults 2 and 3 — the 15-node DAG).
	Levels, Snapshots int
	// MaxParallel caps concurrently in-flight nodes per campaign, mirroring
	// the live runner's cap (default 3).
	MaxParallel int
}

// withDefaults fills the zero fields.
func (c WorkflowAblationConfig) withDefaults() WorkflowAblationConfig {
	if c.Campaigns < 1 {
		c.Campaigns = 5
	}
	if c.Levels < 1 {
		c.Levels = 2
	}
	if c.Snapshots < 0 {
		c.Snapshots = 3
	}
	if c.Levels == 2 && c.Snapshots == 0 {
		c.Snapshots = 3
	}
	if c.MaxParallel < 1 {
		c.MaxParallel = 3
	}
	return c
}

// WorkflowArmResult is one engine's outcome over the campaign sequence.
type WorkflowArmResult struct {
	Strategy string
	// CampaignMakespanS is each campaign's makespan in order; the last one is
	// the trained figure the ablation compares.
	CampaignMakespanS []float64
	TotalS            float64 // all campaigns end-to-end
	// ForecastPriced counts node dispatches whose placement used a trusted
	// CoRI model (always 0 for the static engine).
	ForecastPriced int
}

// TrainedMakespanS is the last (fully trained) campaign's makespan.
func (r *WorkflowArmResult) TrainedMakespanS() float64 {
	return r.CampaignMakespanS[len(r.CampaignMakespanS)-1]
}

// WorkflowAblationResult compares the two engines on the honest platform and
// under CanonicalSkew.
type WorkflowAblationResult struct {
	TopoRR         *WorkflowArmResult // topo-order launch, round-robin placement
	ForecastCP     *WorkflowArmResult // critical-path launch, predicted-finish placement
	SkewTopoRR     *WorkflowArmResult
	SkewForecastCP *WorkflowArmResult
}

// GainPct is the trained-campaign makespan saving of forecast-critical-path
// over topo-round-robin on the honest platform, in percent.
func (r *WorkflowAblationResult) GainPct() float64 {
	a := r.TopoRR.TrainedMakespanS()
	return 100 * (a - r.ForecastCP.TrainedMakespanS()) / a
}

// SkewGainPct is the same saving on the CanonicalSkew platform — the value of
// pricing stages from measured models when the advertised powers lie.
func (r *WorkflowAblationResult) SkewGainPct() float64 {
	a := r.SkewTopoRR.TrainedMakespanS()
	return 100 * (a - r.SkewForecastCP.TrainedMakespanS()) / a
}

// Print writes the A11 summary table.
func (r *WorkflowAblationResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Workflow ablation (A11) — zoom campaigns as Figure 4 DAGs")
	row := func(label string, a *WorkflowArmResult) {
		var spans []string
		for _, m := range a.CampaignMakespanS {
			spans = append(spans, Hours(m))
		}
		fmt.Fprintf(w, "  %-28s trained %-12s total %-12s forecast-priced %d  [%s]\n",
			label, Hours(a.TrainedMakespanS()), Hours(a.TotalS), a.ForecastPriced, strings.Join(spans, ", "))
	}
	row("topo round-robin", r.TopoRR)
	row("forecast critical-path", r.ForecastCP)
	row("skew: topo round-robin", r.SkewTopoRR)
	row("skew: forecast critical-path", r.SkewForecastCP)
	fmt.Fprintf(w, "  gain (honest)  %.1f%%\n", r.GainPct())
	fmt.Fprintf(w, "  gain (skewed)  %.1f%%\n", r.SkewGainPct())
}

// wfSed is the ablation's view of one SeD: capacity 1, a drain time, and —
// for the forecasting engine — a CoRI monitor trained by completed stages.
type wfSed struct {
	name       string
	truePower  float64
	advertised float64
	freeAt     float64
	monitor    *cori.Monitor
}

// predict mirrors workflow.DietRunner's pricing (cori.BestEstimateSeconds for
// one server): the trusted model's forecast, else work over advertised power.
func (s *wfSed) predict(service string, work float64) (float64, bool) {
	if s.monitor != nil {
		if m, ok := s.monitor.Model(service); ok && m.Confidence >= scheduler.DefaultMinConfidence {
			if p := m.SolveSeconds(work); p > 0 {
				return p, true
			}
		}
	}
	power := s.advertised
	if power <= 0 {
		power = 1
	}
	return work / power, false
}

// runWorkflowArm executes cfg.Campaigns back-to-back campaigns of the zoom
// DAG under one engine, in a single virtual timeline, carrying the monitors
// from campaign to campaign.
func runWorkflowArm(cfg WorkflowAblationConfig, forecastCP bool, skew map[string]float64) (*WorkflowArmResult, error) {
	doc := workflow.RamsesZoomDocument(cfg.Levels, cfg.Snapshots)
	dag, err := workflow.FromDocument(doc)
	if err != nil {
		return nil, err
	}
	order, err := dag.TopoOrder()
	if err != nil {
		return nil, err
	}
	stageWork := workflow.RamsesStageWork()

	type wfNode struct {
		id, service string
		work        float64
		topoIdx     int
		deps        []string
	}
	nodes := make(map[string]*wfNode, len(order))
	dependents := make(map[string][]string, len(order))
	for i, id := range order {
		nodes[id] = &wfNode{id: id, topoIdx: i}
	}
	for _, def := range doc.Nodes {
		n := nodes[def.ID]
		n.service = def.Service
		n.work = stageWork[def.Service]
		if n.work <= 0 {
			return nil, fmt.Errorf("simgrid: no stage work for service %q", def.Service)
		}
		n.deps = strings.Fields(def.Depends)
		for _, dep := range n.deps {
			dependents[dep] = append(dependents[dep], def.ID)
		}
	}

	sim := NewSim()
	dep := platform.PaperDeployment()
	seds := make([]*wfSed, len(dep.SeDs))
	for i, p := range dep.SeDs {
		truePower := p.PowerGFlops()
		if f, ok := skew[p.Name]; ok && f > 0 {
			truePower *= f
		}
		seds[i] = &wfSed{name: p.Name, truePower: truePower, advertised: p.PowerGFlops()}
		if forecastCP {
			seds[i].monitor = cori.NewMonitor(cori.Config{HalfLife: TrainingHalfLife, Now: virtualClock(sim)})
		}
	}

	strategy := "topo-rr"
	if forecastCP {
		strategy = "forecast-cp"
	}
	res := &WorkflowArmResult{Strategy: strategy}
	rr := 0 // round-robin cursor, persisting across campaigns like a stateless MA

	var runCampaign func(c int)
	runCampaign = func(c int) {
		campStart := sim.Now()
		// Price the campaign against the platform's current models: each
		// node's cheapest predicted duration anywhere feeds the downstream
		// chain weights — the simulator's twin of DietRunner's FindServers
		// pricing pass.
		var priorities map[string]float64
		if forecastCP {
			priorities, err = dag.CriticalPathSeconds(func(def workflow.NodeDef) float64 {
				best := math.Inf(1)
				for _, s := range seds {
					if p, _ := s.predict(def.Service, stageWork[def.Service]); p < best {
						best = p
					}
				}
				return best
			})
			if err != nil {
				return
			}
		}
		remain := make(map[string]int, len(order))
		for _, id := range order {
			remain[id] = len(nodes[id].deps)
		}
		var ready []string
		running, completed := 0, 0
		var dispatch func()
		launch := func(n *wfNode) {
			var sed *wfSed
			if forecastCP {
				bestFinish := math.Inf(1)
				byModel := false
				now := sim.Now()
				for _, s := range seds {
					p, model := s.predict(n.service, n.work)
					start := now
					if s.freeAt > start {
						start = s.freeAt
					}
					if finish := start + p; finish < bestFinish {
						bestFinish, sed, byModel = finish, s, model
					}
				}
				if byModel {
					res.ForecastPriced++
				}
			} else {
				sed = seds[rr%len(seds)]
				rr++
			}
			dispatchS := sim.Now()
			startS := dispatchS
			if sed.freeAt > startS {
				startS = sed.freeAt
			}
			endS := startS + n.work/sed.truePower
			sed.freeAt = endS
			running++
			sim.At(endS, func() {
				running--
				completed++
				if sed.monitor != nil {
					wait := startS - dispatchS
					if wait <= 0 {
						wait = 0.001
					}
					sed.monitor.Observe(cori.Sample{
						Service:    n.service,
						WorkGFlops: n.work,
						Duration:   time.Duration((endS - startS) * float64(time.Second)),
						Wait:       time.Duration(wait * float64(time.Second)),
					})
				}
				for _, did := range dependents[n.id] {
					remain[did]--
					if remain[did] == 0 {
						ready = append(ready, did)
					}
				}
				dispatch()
				if completed == len(order) {
					res.CampaignMakespanS = append(res.CampaignMakespanS, sim.Now()-campStart)
					if c+1 < cfg.Campaigns {
						runCampaign(c + 1)
					}
				}
			})
		}
		dispatch = func() {
			for running < cfg.MaxParallel && len(ready) > 0 {
				best := 0
				for i := 1; i < len(ready); i++ {
					a, b := nodes[ready[i]], nodes[ready[best]]
					if forecastCP {
						pa, pb := priorities[a.id], priorities[b.id]
						if pa > pb || (pa == pb && a.topoIdx < b.topoIdx) {
							best = i
						}
					} else if a.topoIdx < b.topoIdx {
						best = i
					}
				}
				n := nodes[ready[best]]
				ready = append(ready[:best], ready[best+1:]...)
				launch(n)
			}
		}
		for _, id := range order {
			if remain[id] == 0 {
				ready = append(ready, id)
			}
		}
		dispatch()
	}
	runCampaign(0)
	sim.Run()
	if err != nil {
		return nil, err
	}
	if got := len(res.CampaignMakespanS); got != cfg.Campaigns {
		return nil, fmt.Errorf("simgrid: workflow arm %s completed %d of %d campaigns", strategy, got, cfg.Campaigns)
	}
	res.TotalS = sim.Now()
	return res, nil
}

// RunWorkflowAblation runs all four arms of A11.
func RunWorkflowAblation(cfg WorkflowAblationConfig) (*WorkflowAblationResult, error) {
	cfg = cfg.withDefaults()
	var (
		out WorkflowAblationResult
		err error
	)
	if out.TopoRR, err = runWorkflowArm(cfg, false, nil); err != nil {
		return nil, err
	}
	if out.ForecastCP, err = runWorkflowArm(cfg, true, nil); err != nil {
		return nil, err
	}
	if out.SkewTopoRR, err = runWorkflowArm(cfg, false, CanonicalSkew); err != nil {
		return nil, err
	}
	if out.SkewForecastCP, err = runWorkflowArm(cfg, true, CanonicalSkew); err != nil {
		return nil, err
	}
	return &out, nil
}
