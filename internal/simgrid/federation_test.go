package simgrid

import (
	"math"
	"testing"
)

// TestRunFederation sanity-checks the federated submission plane itself:
// a single MA forwards nothing, a federation forwards exactly the foreign
// share of the stream, and runs are deterministic.
func TestRunFederation(t *testing.T) {
	single, err := RunFederation(FederationConfig{MAs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if single.Forwards != 0 {
		t.Errorf("single MA forwarded %d requests, want 0", single.Forwards)
	}
	if len(single.Requests) != single.Config.Requests {
		t.Fatalf("recorded %d requests, want %d", len(single.Requests), single.Config.Requests)
	}
	for i, r := range single.Requests {
		if r.DoneS <= r.ArriveS {
			t.Fatalf("request %d finished at %g before arriving at %g", i, r.DoneS, r.ArriveS)
		}
	}

	fed, err := RunFederation(FederationConfig{MAs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if fed.Forwards == 0 {
		t.Error("a 4-MA federation with foreign services forwarded nothing")
	}
	forwarded := 0
	for _, r := range fed.Requests {
		if r.Forwarded {
			forwarded++
		}
	}
	if forwarded != fed.Forwards {
		t.Errorf("forward counter %d disagrees with %d forwarded records", fed.Forwards, forwarded)
	}

	again, err := RunFederation(FederationConfig{MAs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if again.TotalS != fed.TotalS || again.P99LatencyS() != fed.P99LatencyS() {
		t.Errorf("virtual-time run not deterministic: (%g, %g) vs (%g, %g)",
			fed.TotalS, fed.P99LatencyS(), again.TotalS, again.P99LatencyS())
	}

	if _, err := RunFederation(FederationConfig{MAs: 0}); err == nil {
		t.Error("zero MAs accepted")
	}
	if _, err := RunFederation(FederationConfig{MAs: 2, ForeignFrac: 1.5}); err == nil {
		t.Error("ForeignFrac > 1 accepted")
	}
}

// TestRunFederationAblation is the A12 acceptance gate: under a stream that
// saturates one MA but not the federation, N federated MAs must beat the
// single MA on both saturation throughput and p99 submit latency.
func TestRunFederationAblation(t *testing.T) {
	res, err := RunFederationAblation(FederationAblationConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.MAs != 4 {
		t.Errorf("default federated arm is %d MAs, want 4", res.Config.MAs)
	}

	// Defaults give ~2.5x throughput and ~10x p99 (the single arm's queue
	// grows for the whole run); assert with wide margins so cost tweaks
	// don't flake the gate, while still requiring a decisive win.
	if gain := res.ThroughputGainX(); gain < 1.5 {
		t.Errorf("federation throughput gain %.2fx, want >= 1.5x (single %.1f/s, federated %.1f/s)",
			gain, res.Single.ThroughputPerSec(), res.Federated.ThroughputPerSec())
	}
	if gain := res.P99GainX(); gain < 2 {
		t.Errorf("federation p99 gain %.2fx, want >= 2x (single %.2fs, federated %.2fs)",
			gain, res.Single.P99LatencyS(), res.Federated.P99LatencyS())
	}
	if res.Single.Forwards != 0 || res.Federated.Forwards == 0 {
		t.Errorf("forwards: single %d (want 0), federated %d (want > 0)",
			res.Single.Forwards, res.Federated.Forwards)
	}
	if res.Federated.MeanLatencyS() >= res.Single.MeanLatencyS() {
		t.Errorf("federated mean latency %.2fs not below single %.2fs",
			res.Federated.MeanLatencyS(), res.Single.MeanLatencyS())
	}
	if math.IsNaN(res.ThroughputGainX()) || math.IsInf(res.ThroughputGainX(), 0) {
		t.Error("throughput gain is not finite")
	}

	if _, err := RunFederationAblation(FederationAblationConfig{MAs: 1}); err == nil {
		t.Error("a one-MA federated arm accepted")
	}
}
