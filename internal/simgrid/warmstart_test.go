package simgrid

import (
	"testing"

	"repro/internal/cori"
	"repro/internal/scheduler"
)

func warmStartConfig() ExperimentConfig {
	cfg := DefaultExperiment(nil)
	cfg.NRequests = 60
	return cfg
}

// TestWarmStartAblation is the acceptance gate of the sharing layer: a SeD
// joining a characterized (and miscalibrated) cluster with a gossiped prior
// reaches trusted forecasts in measurably fewer solves than a cold join,
// mispredicts less, and the campaign finishes sooner.
func TestWarmStartAblation(t *testing.T) {
	res, err := RunWarmStartAblation(warmStartConfig, "Nancy2", 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cluster != "grillon" {
		t.Fatalf("Nancy2's cluster = %q, want grillon", res.Cluster)
	}
	if len(res.Prior) == 0 {
		t.Fatal("training must produce a cluster prior")
	}
	if res.ColdJoin.Solves == 0 || res.WarmJoin.Solves == 0 {
		t.Fatalf("both arms must route work to the joiner: cold %d, warm %d solves",
			res.ColdJoin.Solves, res.WarmJoin.Solves)
	}
	// The warm joiner forecasts from its very first solve; the cold joiner
	// needs at least one completed solve (and under the paper's burst
	// workload, every dispatch decision precedes its first completion).
	if res.WarmJoin.SolvesToForecast != 0 {
		t.Fatalf("warm join must trust a forecast immediately, took %d solves", res.WarmJoin.SolvesToForecast)
	}
	if res.ColdJoin.SolvesToForecast <= res.WarmJoin.SolvesToForecast {
		t.Fatalf("warm join must reach trusted forecasts in fewer solves: cold %d, warm %d",
			res.ColdJoin.SolvesToForecast, res.WarmJoin.SolvesToForecast)
	}
	// On the CanonicalSkew platform the cold fallback trusts an advertised
	// power ~2.9× the truth (65% relative error); the sibling prior measures
	// the truth.
	if res.ColdJoin.MeanMispredictPct < 30 {
		t.Fatalf("cold join on the skewed cluster must mispredict badly, got %.1f%%", res.ColdJoin.MeanMispredictPct)
	}
	if res.WarmJoin.MeanMispredictPct > 10 {
		t.Fatalf("warm join must predict accurately, got %.1f%%", res.WarmJoin.MeanMispredictPct)
	}
	if res.Warm.TotalS >= res.Cold.TotalS {
		t.Fatalf("warm join must not lengthen the campaign: cold %.2fh, warm %.2fh",
			res.Cold.MakespanHours(), res.Warm.MakespanHours())
	}
}

// TestWarmStartAblationValidation covers the configuration errors.
func TestWarmStartAblationValidation(t *testing.T) {
	if _, err := RunWarmStartAblation(warmStartConfig, "NoSuchSeD", 2); err == nil {
		t.Fatal("unknown join SeD must error")
	}
	// Lyon1 sits alone on its cluster in the paper deployment — no sibling
	// to gossip a prior from.
	cfg := warmStartConfig()
	solo := ""
	for _, p := range cfg.Deployment.SeDs {
		peers := 0
		for _, q := range cfg.Deployment.SeDs {
			if q.Cluster == p.Cluster {
				peers++
			}
		}
		if peers == 1 {
			solo = p.Name
			break
		}
	}
	if solo == "" {
		t.Skip("paper deployment has no solo-cluster SeD")
	}
	if _, err := RunWarmStartAblation(warmStartConfig, solo, 2); err == nil {
		t.Fatalf("join SeD %s without a cluster sibling must error", solo)
	}
}

// TestMonitorSurvivesSimulatedRestart mirrors the dietsed persistence flags
// in virtual time: train a monitor in one campaign, snapshot-restore it into
// a "restarted" monitor, and verify the next campaign schedules identically
// to carrying the live monitor over — the kill/restart loses no training.
func TestMonitorSurvivesSimulatedRestart(t *testing.T) {
	train := warmStartConfig()
	train.Forecast = true
	train.TruePowerFactor = CanonicalSkew
	train.CoRI.HalfLife = TrainingHalfLife
	train.Policy = scheduler.NewForecastAware()
	train.Monitors = make(map[string]*cori.Monitor)
	if _, err := RunExperiment(train); err != nil {
		t.Fatal(err)
	}

	carried := train.Monitors
	restarted := make(map[string]*cori.Monitor, len(carried))
	for name, m := range carried {
		clone := cori.NewMonitor(train.CoRI)
		if err := clone.Restore(m.Snapshot()); err != nil {
			t.Fatal(err)
		}
		restarted[name] = clone
	}

	run := func(monitors map[string]*cori.Monitor) *ExperimentResult {
		cfg := warmStartConfig()
		cfg.Forecast = true
		cfg.TruePowerFactor = CanonicalSkew
		cfg.CoRI.HalfLife = TrainingHalfLife
		cfg.Policy = scheduler.NewForecastAware()
		cfg.Seed = 42
		cfg.Monitors = monitors
		res, err := RunExperiment(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	live, revived := run(carried), run(restarted)
	if live.TotalS != revived.TotalS {
		t.Fatalf("restored monitors must schedule identically: live makespan %.3fh, restored %.3fh",
			live.MakespanHours(), revived.MakespanHours())
	}
	for i := range live.Records {
		if live.Records[i].SeD != revived.Records[i].SeD {
			t.Fatalf("request %d placed on %s live but %s after restore",
				live.Records[i].ID, live.Records[i].SeD, revived.Records[i].SeD)
		}
	}
}
