package simgrid

import (
	"fmt"
	"time"

	"repro/internal/cori"
	"repro/internal/deploy"
	"repro/internal/scheduler"
)

// This file runs the deployment-and-reservation ablation (A6): the two
// static layers the CoRI forecasts close — deployment planning
// (internal/deploy placing SeDs by measured rather than advertised power)
// and batch reservation sizing (internal/batch deriving walltimes from
// duration forecasts instead of fixed grants) — compared end to end on a
// miscalibrated platform, in virtual time.

// TrainingHalfLife is the CoRI confidence half-life campaign-scale training
// uses: a campaign spans tens of virtual hours, so the default 1 h half-life
// would decay its early measurements to nothing before a replan reads them.
// Planning works on campaign timescales.
const TrainingHalfLife = 48 * time.Hour

// DeployAblationResult compares static planning + fixed grants against
// measured-power planning + forecast-sized reservations. All arms run the
// power-aware plug-in and BatchMode, so the only differences are the powers
// the planner advertised and how walltimes were sized — isolating exactly
// what PR 2's two integrations buy.
type DeployAblationResult struct {
	// Honest is the reference arm: static plan, fixed grants, a platform
	// whose advertised powers are true.
	Honest *ExperimentResult
	// Static is the paper's hand-planned pipeline on the CanonicalSkew
	// platform: the misled plan floods the degraded SeDs and the fixed
	// grants, sized for advertised speed, are killed at walltime and
	// requeued.
	Static *ExperimentResult
	// Trained re-plans from monitors trained over Rounds-1 campaigns
	// (deploy.Replan feeding PlannedPower) and sizes every reservation from
	// the per-SeD forecasts (BatchForecast) on the same skewed platform.
	Trained *ExperimentResult

	// Changes is what the measured-power replan moved (deploy.Replan diff).
	Changes []deploy.Change
	// PlannedPower is the effective power map the trained arm advertised.
	PlannedPower map[string]float64
	// Rounds is the number of campaigns run in the trained arm, including
	// the measured one.
	Rounds int
}

// MakespanGainPct is the makespan saving of the trained arm over the static
// arm on the miscalibrated platform — the end-to-end value of closing the
// forecast loop at both layers.
func (r DeployAblationResult) MakespanGainPct() float64 {
	return 100 * (r.Static.TotalS - r.Trained.TotalS) / r.Static.TotalS
}

// ReservationGainPct is the overrun+pad cost saving (wasted killed-grant
// compute plus idle pad) of forecast-sized reservations over fixed grants.
func (r DeployAblationResult) ReservationGainPct() float64 {
	static := r.Static.Batch.OverrunPadCostS()
	if static <= 0 {
		return 0
	}
	return 100 * (static - r.Trained.Batch.OverrunPadCostS()) / static
}

// RunDeployAblation runs the comparison on the given configuration template
// (Policy, Forecast and the Batch* fields are overridden per arm; the
// template's BatchGrantS and BatchFixedWallS are kept, with the
// DefaultExperiment values substituted when unset). rounds ≥ 2 gives the
// trained arm rounds-1 training campaigns before the measured one; the
// training seeds are disjoint from the measured seed, as in
// RunExperimentRounds.
func RunDeployAblation(mkCfg func() ExperimentConfig, rounds int) (*DeployAblationResult, error) {
	if rounds < 2 {
		rounds = 2
	}
	base := func() ExperimentConfig {
		cfg := mkCfg()
		cfg.Policy = scheduler.NewPowerAware()
		cfg.BatchMode = true
		if cfg.BatchGrantS <= 0 {
			cfg.BatchGrantS = 30
		}
		if cfg.BatchFixedWallS <= 0 {
			cfg.BatchFixedWallS = DefaultExperiment(nil).BatchFixedWallS
		}
		return cfg
	}
	out := &DeployAblationResult{Rounds: rounds}
	var err error

	cfg := base()
	if out.Honest, err = RunExperiment(cfg); err != nil {
		return nil, fmt.Errorf("simgrid: deploy ablation honest arm: %w", err)
	}

	cfg = base()
	cfg.TruePowerFactor = CanonicalSkew
	if out.Static, err = RunExperiment(cfg); err != nil {
		return nil, fmt.Errorf("simgrid: deploy ablation static arm: %w", err)
	}

	// Trained arm: rounds-1 training campaigns on the skewed platform with
	// monitors attached (still statically planned and fixed-granted — the
	// operating point a real deployment trains at), then one measured round
	// re-planned from the trained models with forecast-sized reservations.
	tcfg := base()
	tcfg.TruePowerFactor = CanonicalSkew
	tcfg.Forecast = true
	tcfg.CoRI.HalfLife = TrainingHalfLife
	tcfg.Monitors = make(map[string]*cori.Monitor, len(tcfg.Deployment.SeDs))
	baseSeed := tcfg.Seed
	for r := 0; r < rounds-1; r++ {
		tcfg.Seed = baseSeed + 1000 + int64(r)
		if _, err = RunExperiment(tcfg); err != nil {
			return nil, fmt.Errorf("simgrid: deploy ablation training round %d: %w", r+1, err)
		}
	}
	// Re-plan from the trained monitors: the phase-2 service dominates the
	// campaign, so its models drive placement.
	plan, changes, err := deploy.Replan(tcfg.Deployment, deploy.Options{
		Capabilities: deploy.MonitorSource(tcfg.Monitors, "ramsesZoom2"),
	})
	if err != nil {
		return nil, fmt.Errorf("simgrid: deploy ablation replan: %w", err)
	}
	out.Changes = changes
	out.PlannedPower = plan.PowerByName()

	tcfg.Seed = baseSeed
	tcfg.PlannedPower = out.PlannedPower
	tcfg.BatchForecast = true
	if out.Trained, err = RunExperiment(tcfg); err != nil {
		return nil, fmt.Errorf("simgrid: deploy ablation trained arm: %w", err)
	}
	return out, nil
}
