package simgrid

import (
	"fmt"
	"sort"

	"repro/internal/cori"
	"repro/internal/scheduler"
)

// This file runs the warm-start ablation (A7): the value of cluster-keyed
// model gossip. A SeD joins a campaign on a cluster its siblings have
// already characterized; the cold arm boots it with an empty monitor (the
// power-aware fallback prices its first solves from advertised power), the
// warm arm seeds it with the confidence-weighted merge of its cluster
// siblings' trained models — exactly what diet.Agent hands a registering SeD
// from its gossip registry — and the ablation measures how many solves each
// arm mispredicts before the forecasts calibrate.

// JoinStats aggregates the joining SeD's behaviour over one arm.
type JoinStats struct {
	// Solves is how many requests the campaign placed on the joining SeD.
	Solves int
	// MeanMispredictPct is the mean relative error between the duration the
	// scheduler's view implied at dispatch and the realized duration.
	MeanMispredictPct float64
	// SolvesToForecast is how many solves were dispatched to the SeD before
	// its prediction first came from a trusted CoRI model rather than the
	// advertised-power fallback — 0 when the SeD joined warm.
	SolvesToForecast int
}

// WarmStartAblationResult compares a cold against a warm-started join of the
// same SeD into the same campaign on a miscalibrated platform.
type WarmStartAblationResult struct {
	JoinSeD string
	Cluster string // resource class the prior was keyed by
	Rounds  int    // campaigns run before the join (training) plus the measured one

	// Prior is the merged cluster model handed to the warm arm, per service.
	Prior []cori.Model

	Cold *ExperimentResult // joining SeD boots with an empty monitor
	Warm *ExperimentResult // joining SeD warm-starts from the cluster prior

	ColdJoin JoinStats
	WarmJoin JoinStats
}

// MakespanDeltaPct is the campaign makespan saving of the warm join over the
// cold join, in percent.
func (r WarmStartAblationResult) MakespanDeltaPct() float64 {
	return 100 * (r.Cold.TotalS - r.Warm.TotalS) / r.Cold.TotalS
}

// MispredictDeltaPts is how many percentage points of mean forecast error
// the warm start removed on the joining SeD.
func (r WarmStartAblationResult) MispredictDeltaPts() float64 {
	return r.ColdJoin.MeanMispredictPct - r.WarmJoin.MeanMispredictPct
}

// joinStats folds the joining SeD's records (in execution order) into the
// arm's statistics.
func joinStats(res *ExperimentResult, sed string) JoinStats {
	var recs []RequestRecord
	for _, r := range res.Records {
		if r.SeD == sed {
			recs = append(recs, r)
		}
	}
	if res.Phase1.SeD == sed {
		recs = append(recs, res.Phase1)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].StartS < recs[j].StartS })
	out := JoinStats{Solves: len(recs), SolvesToForecast: len(recs)}
	var sum float64
	for i, r := range recs {
		sum += r.MispredictPct()
		if r.PredictedByModel && out.SolvesToForecast == len(recs) {
			out.SolvesToForecast = i
		}
	}
	if len(recs) > 0 {
		out.MeanMispredictPct = sum / float64(len(recs))
	}
	return out
}

// RunWarmStartAblation trains the deployment *without* joinSeD for rounds-1
// campaigns (forecast-aware scheduling on the CanonicalSkew platform), then
// runs the measured campaign with joinSeD present — once cold, once
// warm-started from the confidence-weighted merge of its cluster siblings'
// trained models, carried through a cori.Registry exactly as the live agent
// hierarchy gossips it. The veterans' monitors are cloned per arm through
// the snapshot round-trip, so neither arm's training leaks into the other.
func RunWarmStartAblation(mkCfg func() ExperimentConfig, joinSeD string, rounds int) (*WarmStartAblationResult, error) {
	if rounds < 2 {
		rounds = 2
	}
	base := func() ExperimentConfig {
		cfg := mkCfg()
		cfg.Policy = scheduler.NewForecastAware()
		cfg.Forecast = true
		cfg.TruePowerFactor = CanonicalSkew
		// Campaigns span tens of virtual hours; train on planning timescales.
		cfg.CoRI.HalfLife = TrainingHalfLife
		return cfg
	}
	cfg := base()
	cluster, hasSibling := "", false
	join := -1
	for i, p := range cfg.Deployment.SeDs {
		if p.Name == joinSeD {
			join = i
			cluster = p.Cluster
		}
	}
	if join < 0 {
		return nil, fmt.Errorf("simgrid: warm-start ablation: deployment has no SeD %q", joinSeD)
	}
	for i, p := range cfg.Deployment.SeDs {
		if i != join && p.Cluster == cluster {
			hasSibling = true
			break
		}
	}
	if !hasSibling {
		return nil, fmt.Errorf("simgrid: warm-start ablation: SeD %q has no cluster sibling to gossip a prior from (cluster %q)", joinSeD, cluster)
	}
	out := &WarmStartAblationResult{JoinSeD: joinSeD, Cluster: cluster, Rounds: rounds}

	// Training rounds: the grid before the join, with joinSeD absent.
	tcfg := base()
	kept := tcfg.Deployment.SeDs[:0:0]
	for _, p := range tcfg.Deployment.SeDs {
		if p.Name != joinSeD {
			kept = append(kept, p)
		}
	}
	tcfg.Deployment.SeDs = kept
	tcfg.Monitors = make(map[string]*cori.Monitor, len(kept))
	baseSeed := tcfg.Seed
	for r := 0; r < rounds-1; r++ {
		tcfg.Seed = baseSeed + 1000 + int64(r)
		if _, err := RunExperiment(tcfg); err != nil {
			return nil, fmt.Errorf("simgrid: warm-start training round %d: %w", r+1, err)
		}
	}

	// Aggregate the trained models into a cluster-keyed registry — the same
	// structure the agent hierarchy gossips — and merge the join cluster's
	// prior.
	registry := cori.NewRegistry()
	for _, p := range kept {
		mon := tcfg.Monitors[p.Name]
		if mon == nil {
			continue
		}
		var models []cori.Model
		for _, svc := range mon.Services() {
			if m, ok := mon.Model(svc); ok {
				models = append(models, m)
			}
		}
		registry.Update(p.Name, p.Cluster, virtualEpoch, models)
	}
	out.Prior = registry.PriorsFor(cluster)
	if len(out.Prior) == 0 {
		return nil, fmt.Errorf("simgrid: warm-start ablation: training produced no prior for cluster %q", cluster)
	}

	// Each measured arm gets its own copy of the veterans' training (snapshot
	// round-trip), so the arms cannot contaminate each other.
	cloneMonitors := func() (map[string]*cori.Monitor, error) {
		monitors := make(map[string]*cori.Monitor, len(tcfg.Monitors))
		for name, m := range tcfg.Monitors {
			clone := cori.NewMonitor(tcfg.CoRI)
			if err := clone.Restore(m.Snapshot()); err != nil {
				return nil, fmt.Errorf("simgrid: cloning %s monitor: %w", name, err)
			}
			monitors[name] = clone
		}
		return monitors, nil
	}

	arm := func(warm bool) (*ExperimentResult, error) {
		cfg := base()
		cfg.Seed = baseSeed
		monitors, err := cloneMonitors()
		if err != nil {
			return nil, err
		}
		if warm {
			joiner := cori.NewMonitor(cfg.CoRI)
			for _, prior := range out.Prior {
				joiner.WarmStart(prior)
			}
			monitors[joinSeD] = joiner
		}
		cfg.Monitors = monitors
		return RunExperiment(cfg)
	}
	var err error
	if out.Cold, err = arm(false); err != nil {
		return nil, fmt.Errorf("simgrid: warm-start cold arm: %w", err)
	}
	if out.Warm, err = arm(true); err != nil {
		return nil, fmt.Errorf("simgrid: warm-start warm arm: %w", err)
	}
	out.ColdJoin = joinStats(out.Cold, joinSeD)
	out.WarmJoin = joinStats(out.Warm, joinSeD)
	return out, nil
}
