package simgrid

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/batch"
	"repro/internal/cori"
	"repro/internal/deploy"
	"repro/internal/logsvc"
	"repro/internal/platform"
	"repro/internal/scheduler"
)

// ExperimentConfig describes the paper's campaign (§6.1): one low-resolution
// 128³, 100 Mpc/h simulation (phase 1) followed by 100 zoom sub-simulations
// submitted simultaneously (phase 2), on the PaperDeployment of 11 SeDs.
type ExperimentConfig struct {
	Platform   *platform.Platform
	Deployment platform.Deployment
	Policy     scheduler.Policy

	NRequests int // phase-2 sub-simulations (paper: 100)

	// Work sizes in GFlop. Defaults are calibrated so that a mean-power SeD
	// takes 1h15m11s for phase 1 and 1h24m01s for a phase-2 request, the
	// §6.2 means.
	Phase1WorkGFlops float64
	Phase2WorkGFlops float64
	// WorkJitter is the fractional standard deviation of per-request work
	// (zoom regions differ in clustering); deterministic via Seed.
	WorkJitter float64
	Seed       int64

	// Middleware cost model (milliseconds), calibrated to §6.2: the CORBA
	// marshalling + agent processing per find, and the service-initiation
	// time on the SeD.
	ORBOverheadMS float64 // per-request processing at MA + agents (paper find ≈ 49.8 ms total)
	InitMS        float64 // service initiation on the SeD (paper: 20.8 ms)

	// Data sizes: the namelist file shipped with each request and the
	// results tarball shipped back.
	NamelistKB float64
	ResultMB   float64

	// BatchMode routes every solve through an OAR-style reservation adding
	// BatchGrantS seconds before each job attempt starts (ablation A3).
	BatchMode   bool
	BatchGrantS float64
	// BatchFixedWallS is the fixed walltime (seconds) every reservation
	// requests in BatchMode — the static grant the paper's submissions used.
	// A job whose solve outlives its walltime is killed at expiry and
	// requeued with a RequeueFactor-widened grant, mirroring
	// batch.System{EnforceWalltime} + batch.ForecastExecutor. 0 disables
	// walltime enforcement (an unbounded grant).
	BatchFixedWallS float64
	// BatchForecast sizes each reservation's walltime from the SeD's CoRI
	// model through BatchPolicy instead of the fixed grant — the
	// forecast-sized reservations of batch.ForecastExecutor in virtual time.
	// Requires Forecast; SeDs whose monitor is cold for the service fall
	// back to BatchFixedWallS.
	BatchForecast bool
	// BatchPolicy tunes forecast walltime sizing. Zero value = the batch
	// package defaults with Fixed overridden by BatchFixedWallS.
	BatchPolicy batch.WalltimePolicy

	// ArrivalGapS spaces the phase-2 submissions instead of the paper's
	// all-at-once burst; Figure 6's latency growth is pure burst queueing,
	// and spacing arrivals beyond the system's drain rate flattens it.
	ArrivalGapS float64

	// Forecast attaches a CoRI monitor (internal/cori) to every SeD, running
	// in virtual time: completed solves train per-SeD duration models and
	// every estimate carries the forecast extension, mirroring what
	// diet.SeD.Estimate reports in the live middleware. Required for the
	// forecastaware/contentionaware policies to see history.
	Forecast bool
	// Monitors optionally seeds per-SeD monitors (keyed by SeD name), so a
	// campaign can start with models trained by an earlier run; monitors for
	// missing names are created fresh. RunExperimentRounds uses this to
	// carry learning across rounds. Implies monitors are rebound to this
	// run's virtual clock.
	Monitors map[string]*cori.Monitor
	// CoRI tunes the monitors created by this run.
	CoRI cori.Config
	// TruePowerFactor skews each named SeD's *actual* compute speed to
	// factor × its advertised power, modelling miscalibrated or degraded
	// resources. Estimates still advertise the nominal power, so static
	// power-aware scheduling is misled while the forecaster measures the
	// truth. Missing names default to 1 (honest).
	TruePowerFactor map[string]float64
	// PlannedPower overrides the power each named SeD *advertises* in its
	// estimation vector — the simulator's mirror of re-deploying with a
	// measured-power plan (deploy.Replan → Plan.PowerByName): the schedulers
	// see the planned powers while the platform keeps its true speeds.
	// Missing names keep the deployment's advertised power.
	PlannedPower map[string]float64

	// ReplanIntervalS enables the live-replanning mirror (diet.Agent
	// ReplanInterval + ApplyPlan in virtual time): every interval the
	// campaign re-plans the deployment from the SeDs' current monitors
	// (deploy.Replan over MonitorSource for ReplanService) and applies the
	// result online. A SeD whose effective power moved re-advertises it; a
	// SeD whose placement changed pays ReplanPauseS of drain before
	// accepting new work and its monitor rides a Snapshot/Restore round-trip
	// — the reparent protocol's "model travels with the move" guarantee,
	// exercised rather than assumed. Requires Forecast. 0 disables.
	ReplanIntervalS float64
	// ReplanService is the service replanning plans by (default
	// "ramsesZoom2", the service that dominates the campaign).
	ReplanService string
	// ReplanPauseS is the drain pause a migrated SeD pays before accepting
	// new work (default 30s; the live protocol waits out in-flight solves).
	ReplanPauseS float64
	// LiveParent optionally scrambles the initial live placement (SeD name →
	// agent name). Missing names start under their cluster's planned LA
	// ("LA-<cluster>"); the replanning mirror migrates mismatches back to
	// the planned placement.
	LiveParent map[string]string

	// DriftAtS and DriftPowerFactor model mid-campaign platform drift: at
	// DriftAtS virtual seconds each named SeD's *true* speed is rescaled to
	// factor × its deployment-advertised power (replacing any
	// TruePowerFactor skew for that SeD). Advertised estimates are untouched
	// — only measurement can see drift. Empty map = no drift.
	DriftAtS         float64
	DriftPowerFactor map[string]float64

	// Failures injects the chaos schedule (failure.go): crashes, restarts,
	// partitions, heals and in-flight message losses at virtual times. Empty
	// = the healthy campaign, byte-identical to the no-failure simulator.
	Failures []FailureEvent
	// SelfHealing arms the recovery mirror for the failure schedule: crashed
	// or partitioned nodes are detected after FailureDetectS and their
	// in-flight work is requeued on the survivors, restarts rejoin warm via
	// a CoRI snapshot round-trip, and lost dispatches are resubmitted after
	// FailureRetryS — the virtual-time twin of heartbeat-miss eviction,
	// -cori-snapshot restore and kill-and-requeue in internal/diet. Off = the
	// fragile hierarchy: work on a dead node waits for its restart, or is
	// lost outright when no restart is scheduled.
	SelfHealing bool
	// FailureDetectS is the crash/partition detection delay (default 90 —
	// three missed 30 s heartbeats, the live Agent.SweepChildren default).
	FailureDetectS float64
	// FailureRetryS is the client resubmission backoff after a timed-out or
	// lost dispatch (default 30).
	FailureRetryS float64

	// ReplanMinDeltaPct and ReplanDwellS mirror deploy.HysteresisConfig in
	// virtual time: a replanning pass drops power refreshes within
	// ReplanMinDeltaPct percent of the advertised figure, and parent moves
	// within ReplanDwellS seconds of that SeD's previous move. Zero keeps
	// every update (the A8 behaviour).
	ReplanMinDeltaPct float64
	ReplanDwellS      float64

	// Spans, when set, receives the same span taxonomy the live stack emits
	// — submit, schedule, queue, reserve, overrun_kill, requeue, solve,
	// complete — with virtual-time stamps (nanoseconds since campaign
	// start). logsvc.Bus implements it, so a simulated campaign's trace
	// renders in the same tooling (cmd/dietmon, chrome://tracing export) as
	// a live one.
	Spans logsvc.SpanSink
}

// DefaultExperiment returns the configuration reproducing the paper run.
func DefaultExperiment(policy scheduler.Policy) ExperimentConfig {
	dep := platform.PaperDeployment()
	mean := meanPower(dep)
	return ExperimentConfig{
		Platform:         platform.Grid5000(),
		Deployment:       dep,
		Policy:           policy,
		NRequests:        100,
		Phase1WorkGFlops: 4511 * mean, // 1h15m11s at mean power
		Phase2WorkGFlops: 5041 * mean, // 1h24m01s at mean power
		WorkJitter:       0.05,
		Seed:             1,
		ORBOverheadMS:    31.5,
		InitMS:           20.8,
		NamelistKB:       4,
		ResultMB:         64,
		BatchFixedWallS:  7200, // a 2 h user grant, comfortably above the ~1h24 mean solve
	}
}

// maxBatchAttempts mirrors batch.ForecastExecutor's default retry budget
// (MaxAttempts): grants that would still overrun after this many attempts
// fail in the live stack, so the simulator refuses to model past it.
const maxBatchAttempts = 3

// meanPower averages SeD powers over a deployment.
func meanPower(dep platform.Deployment) float64 {
	var sum float64
	for _, s := range dep.SeDs {
		sum += s.PowerGFlops()
	}
	return sum / float64(len(dep.SeDs))
}

// RequestRecord traces one request through the middleware.
type RequestRecord struct {
	ID         int     // request number (0 = phase 1, 1..N = phase 2)
	SeD        string  // chosen server
	SubmitS    float64 // virtual time the client issued the request
	StartS     float64 // virtual time the solve began computing
	EndS       float64 // virtual time the solve finished
	FindingMS  float64 // MA round trip: the Figure 6 "Find" series
	LatencyMS  float64 // transfer + queue wait + init: the Figure 6 "Latency" series
	WorkGFlops float64
	// PredictedS is the solve duration the chosen SeD's view implied at
	// dispatch: the CoRI model's forecast when one was trusted
	// (PredictedByModel true), else the advertised-power estimate — the
	// misprediction signal the warm-start ablation measures.
	PredictedS       float64
	PredictedByModel bool
}

// MispredictPct is the relative forecast error of this request, in percent.
func (r RequestRecord) MispredictPct() float64 {
	d := r.DurationS()
	if d <= 0 {
		return 0
	}
	return 100 * math.Abs(r.PredictedS-d) / d
}

// DurationS returns the compute duration.
func (r RequestRecord) DurationS() float64 { return r.EndS - r.StartS }

// SeDSummary aggregates one SeD's activity (the Figure 5 data).
type SeDSummary struct {
	Name      string
	Site      string
	Power     float64
	Requests  []RequestRecord // Gantt items, in execution order
	BusyHours float64
}

// BatchStats aggregates the reservation behaviour of a BatchMode campaign —
// the virtual-time mirror of batch.SystemStats + batch.ExecStats.
type BatchStats struct {
	Reservations  int     // solves routed through a reservation
	ForecastSized int     // walltimes derived from a trusted CoRI forecast
	FixedGrant    int     // walltimes from the fixed grant
	OverrunKills  int     // attempts killed at walltime expiry
	Requeues      int     // resubmissions after a kill
	IdlePadS      float64 // walltime granted but unused on successful attempts
	ReservedS     float64 // total walltime requested over all attempts
	WastedS       float64 // compute seconds thrown away by killed attempts
}

// OverrunPadCostS is the scalar reservation-quality score: compute seconds
// wasted by kills plus idle walltime padded onto successful grants — the
// quantity forecast-sized reservations exist to shrink.
func (b BatchStats) OverrunPadCostS() float64 { return b.WastedS + b.IdlePadS }

// ReplanEvent records one live-replanning pass of a campaign.
type ReplanEvent struct {
	AtS          float64
	PowerUpdates int      // SeDs whose advertised power the pass moved
	Moved        []string // SeDs migrated to a new parent (paid the drain pause)
	// MovedModelTrusted records, per migrated SeD, whether its duration
	// model was trusted immediately *after* the snapshot round-trip — the
	// "no cold restart" guarantee a reparent must uphold whenever the model
	// was trusted before the move.
	MovedModelTrusted map[string]bool
}

// ExperimentResult is the full campaign outcome.
type ExperimentResult struct {
	Policy        string
	Phase1        RequestRecord
	Records       []RequestRecord // phase 2, by request number
	PerSeD        []SeDSummary    // ordered as the deployment lists SeDs
	TotalS        float64         // makespan of the whole campaign
	Phase1S       float64
	MeanPhase2S   float64
	SequentialS   float64       // sum of all compute durations: the no-grid baseline
	OverheadMS    float64       // mean per-request middleware overhead (find + init)
	TotalOverhead float64       // summed overhead, seconds (paper: ≈7 s)
	Batch         BatchStats    // reservation metrics; zero unless BatchMode
	Replans       []ReplanEvent // live-replanning passes; empty unless enabled
	// FailureLog, SolvesLost and Requeued are the failure-injection outcome
	// (zero/empty unless the config carries a failure schedule): the
	// virtual-time trace of injections and recovery actions, the requests
	// that never completed, and the recovery resubmissions.
	FailureLog []FailureLogEntry
	SolvesLost int
	Requeued   int
}

// FirstRecordOn returns the first phase-2 request dispatched to a SeD at or
// after a virtual time (by submission), or nil — how the replan ablation
// checks a migrated SeD's first post-move forecast.
func (r *ExperimentResult) FirstRecordOn(sed string, afterS float64) *RequestRecord {
	var best *RequestRecord
	for i := range r.Records {
		rec := &r.Records[i]
		if rec.SeD != sed || rec.SubmitS < afterS {
			continue
		}
		if best == nil || rec.SubmitS < best.SubmitS {
			best = rec
		}
	}
	return best
}

// sedState is the simulator's view of one SeD.
type sedState struct {
	place      platform.SeDPlacement
	truePower  float64 // actual delivered GFlops (advertised × TruePowerFactor)
	advertised float64 // power the estimate reports (PlannedPower override or the placement's)
	parent     string  // current live parent agent (live-replanning mirror)
	monitor    *cori.Monitor
	pending    map[string]int // accepted-but-unfinished solves, by service
	queue      int            // waiting requests
	running    int            // 0 or 1 (capacity 1, as in the paper)
	freeAt     float64        // virtual time the current queue drains
	lastSolve  float64        // seconds; <0 until the SeD has completed a solve
	records    []RequestRecord

	// Failure-injection state (failure.go); zero values = healthy. Only
	// campaigns with a failure schedule touch any of it.
	down        bool                  // crashed and not yet restarted
	downForever bool                  // fragile mode: crashed with no scheduled restart
	excluded    bool                  // self-healing: evicted from scheduling after detection
	partitioned bool                  // computing but cut off; results wait for the heal
	waitUntil   float64               // fragile mode: virtual time the node is reachable again
	lossBudget  int                   // dispatches still to drop in flight
	inflight    []*simJob             // accepted but uncompleted jobs (failure runs only)
	heldDone    []func(healS float64) // partition: deferred result deliveries
}

// estimate builds the scheduler's view of the SeD, mirroring
// diet.SeD.Estimate: static fields from the advertised configuration, and —
// when a CoRI monitor is attached — the forecast extension from its model.
func (s *sedState) estimate(service string) scheduler.Estimate {
	est := scheduler.Estimate{
		ServerID:         s.place.Name,
		Service:          service,
		Capacity:         1,
		Running:          s.running,
		QueueLen:         s.queue,
		PowerGFlops:      s.advertised,
		LastSolveSeconds: s.lastSolve,
	}
	if s.monitor != nil {
		if model, ok := s.monitor.Model(service); ok {
			model.ApplyToEstimate(&est, s.monitor.DrainEstimate(model, s.pending, s.queue+s.running, 1))
		}
	}
	return est
}

// predict mirrors the schedulers' duration view of this SeD at dispatch: the
// CoRI model when it is trusted at the shared confidence floor, else the
// advertised-power estimate.
func (s *sedState) predict(service string, work float64) (float64, bool) {
	if s.monitor != nil {
		if model, ok := s.monitor.Model(service); ok && model.Confidence >= scheduler.DefaultMinConfidence {
			if p := model.SolveSeconds(work); p > 0 {
				return p, true
			}
		}
	}
	power := s.advertised
	if power <= 0 {
		power = 1
	}
	return work / power, false
}

// RunExperiment replays the campaign in virtual time and returns every
// quantity the paper reports.
func RunExperiment(cfg ExperimentConfig) (*ExperimentResult, error) {
	if cfg.Platform == nil || len(cfg.Deployment.SeDs) == 0 {
		return nil, fmt.Errorf("simgrid: experiment needs a platform and a deployment")
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("simgrid: experiment needs a scheduling policy")
	}
	if cfg.NRequests < 1 {
		return nil, fmt.Errorf("simgrid: NRequests must be >= 1, got %d", cfg.NRequests)
	}
	if cfg.BatchForecast && !cfg.Forecast {
		return nil, fmt.Errorf("simgrid: BatchForecast needs Forecast monitors attached")
	}
	if cfg.ReplanIntervalS > 0 && !cfg.Forecast {
		return nil, fmt.Errorf("simgrid: ReplanIntervalS needs Forecast monitors attached")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sim := NewSim()
	batchExhausted := 0

	seds := make([]*sedState, len(cfg.Deployment.SeDs))
	byName := make(map[string]*sedState, len(seds))
	for i, p := range cfg.Deployment.SeDs {
		truePower := p.PowerGFlops()
		if f, ok := cfg.TruePowerFactor[p.Name]; ok && f > 0 {
			truePower *= f
		}
		advertised := p.PowerGFlops()
		if v, ok := cfg.PlannedPower[p.Name]; ok && v > 0 {
			advertised = v
		}
		parent := "LA-" + p.Cluster // the planned placement (deploy.TopologyWith)
		if lp, ok := cfg.LiveParent[p.Name]; ok && lp != "" {
			parent = lp
		}
		seds[i] = &sedState{place: p, truePower: truePower, advertised: advertised, parent: parent, lastSolve: -1, pending: make(map[string]int)}
		byName[p.Name] = seds[i]
		if cfg.Forecast {
			if m := cfg.Monitors[p.Name]; m != nil {
				m.SetNow(virtualClock(sim))
				seds[i].monitor = m
			} else {
				mcfg := cfg.CoRI
				mcfg.Now = virtualClock(sim)
				seds[i].monitor = cori.NewMonitor(mcfg)
				if cfg.Monitors != nil {
					// Hand the trained monitor back so multi-round drivers
					// and tests can carry or inspect it.
					cfg.Monitors[p.Name] = seds[i].monitor
				}
			}
		}
	}
	maSite := cfg.Deployment.MASite
	res := &ExperimentResult{Policy: cfg.Policy.Name()}

	// findingTime models one MA submission: client→MA round trip, the
	// parallel estimate collection through the LA hierarchy (bounded by the
	// slowest site round trip), and the ORB/agent processing constant.
	findingTime := func() float64 {
		clientRTT := 2 * cfg.Platform.Latency(maSite, maSite).Seconds() * 1000
		worst := 0.0
		for _, la := range cfg.Deployment.LAs {
			rtt := 2 * cfg.Platform.Latency(maSite, la.Site).Seconds() * 1000
			if rtt > worst {
				worst = rtt
			}
		}
		jitter := rng.NormFloat64() * 0.8
		return clientRTT + worst + cfg.ORBOverheadMS + jitter
	}

	// Failure-injection plumbing. With no schedule every branch below is
	// dead and the campaign is byte-identical to the no-failure simulator.
	failEnabled := len(cfg.Failures) > 0
	detectS := cfg.FailureDetectS
	if detectS <= 0 {
		detectS = 90 // three missed 30 s heartbeats
	}
	retryS := cfg.FailureRetryS
	if retryS <= 0 {
		retryS = 30
	}
	lost := 0
	flog := func(node, kind, detail string) {
		res.FailureLog = append(res.FailureLog, FailureLogEntry{AtS: sim.Now(), Node: node, Kind: kind, Detail: detail})
	}

	// choose ranks the SeDs with the plug-in policy and returns the winner.
	// Under self-healing, nodes evicted by failure detection leave the
	// candidate set, and a job that already bounced off a node avoids it —
	// the client-failover mirror.
	choose := func(service string, work float64, seq int, avoid map[string]bool) *sedState {
		ests := make([]scheduler.Estimate, 0, len(seds))
		for _, s := range seds {
			if cfg.SelfHealing && s.excluded {
				continue
			}
			if avoid[s.place.Name] {
				continue
			}
			ests = append(ests, s.estimate(service))
		}
		if len(ests) == 0 {
			// Everything excluded or avoided: fall back to the full set
			// rather than dropping the request on the floor.
			for _, s := range seds {
				ests = append(ests, s.estimate(service))
			}
		}
		order := cfg.Policy.Rank(scheduler.Request{Service: service, Seq: seq, WorkGFlops: work}, ests)
		return byName[ests[order[0]].ServerID]
	}

	// emitSpan mirrors the live stack's request tracing in virtual time:
	// stamps are nanoseconds since campaign start, kinds are the shared
	// logsvc taxonomy, so the trace renders in the same tooling.
	emitSpan := func(requestID, component, kind, service, detail string, s0, s1 float64) {
		if cfg.Spans == nil {
			return
		}
		cfg.Spans.PublishSpan(logsvc.Span{
			RequestID: requestID, Component: component, Kind: kind,
			Service: service, Detail: detail,
			StartNanos: int64(s0 * 1e9), EndNanos: int64(s1 * 1e9),
		})
	}

	// scheduleOn lays one job's timeline onto a SeD: queue wait, optional
	// batch reservation, solve, completion. Under failure injection the
	// scheduled events carry the job's placement generation, so a later
	// cancel-and-requeue turns them into no-ops.
	scheduleOn := func(sed *sedState, job *simJob) {
		id, service, work := job.id, job.service, job.work
		predS, predByModel := sed.predict(service, work)
		now := sim.Now()
		reqID := fmt.Sprintf("sim-%d", id)
		sedComp := "SeD:" + sed.place.Name
		transferS := cfg.Platform.TransferTime(maSite, sed.place.Site, cfg.NamelistKB/1024).Seconds()
		arriveS := now + transferS
		startS := arriveS
		if sed.freeAt > startS {
			startS = sed.freeAt
		}
		if failEnabled && !cfg.SelfHealing && sed.waitUntil > startS {
			// Fragile mode: the node is cut off and nothing reroutes the
			// work — it reaches the queue when the schedule says it can.
			startS = sed.waitUntil
		}
		startS += cfg.InitMS / 1000
		durS := work / sed.truePower
		// The queue span covers FIFO wait + init, like the live SeD's; batch
		// grant delays and kills get their own reserve/overrun_kill spans.
		emitSpan(reqID, sedComp, logsvc.KindQueue, service, "", arriveS, startS)
		if cfg.BatchMode {
			// Reservation: size the walltime (fixed grant, or CoRI forecast
			// via the same batch.WalltimePolicy the live executor runs), pay
			// the grant delay per attempt, and replay kill-and-requeue when
			// the solve outlives its grant — batch.System{EnforceWalltime}
			// + batch.ForecastExecutor in virtual time.
			pol := cfg.BatchPolicy
			if pol.Fixed <= 0 && cfg.BatchFixedWallS > 0 {
				pol.Fixed = time.Duration(cfg.BatchFixedWallS * float64(time.Second))
			}
			// With no grant configured anywhere and no forecasting, walltimes
			// are unbounded (the pre-enforcement A3 behaviour); otherwise the
			// fallback is the resolved policy's Fixed — exactly what the live
			// ForecastExecutor's Size grants a cold monitor.
			enforce := pol.Fixed > 0 || cfg.BatchForecast
			pol = pol.WithDefaults()
			wall, sized := 0.0, false
			if enforce {
				wall = pol.Fixed.Seconds()
			}
			if cfg.BatchForecast && sed.monitor != nil {
				if model, ok := sed.monitor.Model(service); ok {
					if w, ok := pol.FromForecast(model.SolveSeconds(work), model.Confidence); ok {
						wall, sized = w.Seconds(), true
					}
				}
			}
			res.Batch.Reservations++
			if sized {
				res.Batch.ForecastSized++
			} else {
				res.Batch.FixedGrant++
			}
			startS += cfg.BatchGrantS
			emitSpan(reqID, sedComp, logsvc.KindReserve, service, "attempt 1",
				startS-cfg.BatchGrantS, startS)
			if wall > 0 {
				// Mirror the live executor's retry budget: a solve that still
				// overruns after maxBatchAttempts grants would fail for real,
				// so the campaign must not silently absorb it (checked after
				// the run).
				for attempt := 1; wall < durS; attempt++ {
					if attempt >= maxBatchAttempts {
						batchExhausted++
						break
					}
					// Killed at expiry: the grant's compute is wasted and the
					// requeued attempt waits for a fresh, widened grant.
					res.Batch.OverrunKills++
					res.Batch.Requeues++
					res.Batch.WastedS += wall
					res.Batch.ReservedS += wall
					emitSpan(reqID, sedComp, logsvc.KindKill, service,
						fmt.Sprintf("attempt %d killed at walltime", attempt),
						startS, startS+wall)
					startS += wall + cfg.BatchGrantS
					emitSpan(reqID, sedComp, logsvc.KindReserve, service,
						fmt.Sprintf("attempt %d", attempt+1),
						startS-cfg.BatchGrantS, startS)
					wall *= pol.RequeueFactor
				}
				res.Batch.ReservedS += wall
				if pad := wall - durS; pad > 0 {
					res.Batch.IdlePadS += pad
				}
			}
		}
		endS := startS + durS
		emitSpan(reqID, sedComp, logsvc.KindSolve, service, "", startS, endS)
		emitSpan(reqID, "client", logsvc.KindComplete, service,
			"server "+sed.place.Name, job.submitS, endS)
		depthAtAdmission := sed.queue + sed.running
		sed.queue++
		sed.pending[service]++
		sed.freeAt = endS
		rec := RequestRecord{
			ID: id, SeD: sed.place.Name,
			SubmitS: job.dispatch0, StartS: startS, EndS: endS,
			FindingMS:        job.findMS,
			LatencyMS:        (startS - job.dispatch0) * 1000, // transfer + queue wait + init
			WorkGFlops:       work,
			PredictedS:       predS,
			PredictedByModel: predByModel,
		}
		job.gen++
		job.cancelled = false
		job.started = false
		gen := job.gen
		if failEnabled {
			sed.inflight = append(sed.inflight, job)
		}
		sim.At(startS, func() {
			if job.cancelled || job.gen != gen {
				return
			}
			job.started = true
			sed.queue--
			sed.running++
		})
		sim.At(endS, func() {
			if job.cancelled || job.gen != gen {
				return
			}
			sed.running--
			sed.pending[service]--
			if sed.pending[service] <= 0 {
				delete(sed.pending, service)
			}
			sed.lastSolve = durS
			if failEnabled {
				sed.dropInflight(job)
			}
			if sed.monitor != nil {
				// The observed wait is everything between arrival at the SeD
				// and compute start (queue + init + batch grants), clamped
				// positive so a depth-0 admission still anchors the
				// wait-on-depth regression.
				wait := time.Duration((startS - arriveS) * float64(time.Second))
				if wait <= 0 {
					wait = time.Millisecond
				}
				sed.monitor.Observe(cori.Sample{
					Service:    service,
					WorkGFlops: work,
					Duration:   time.Duration(durS * float64(time.Second)),
					QueueDepth: depthAtAdmission,
					Wait:       wait,
				})
			}
			if failEnabled && sed.partitioned {
				// The solve finished, but its result cannot cross the cut:
				// delivery — and the client's view of completion — waits for
				// the heal.
				sed.heldDone = append(sed.heldDone, func(healS float64) {
					rec.EndS = healS
					sed.records = append(sed.records, rec)
					job.onDone(rec)
				})
				return
			}
			sed.records = append(sed.records, rec)
			job.onDone(rec)
		})
	}

	// place routes one job: rank, then — under failure injection — intercept
	// dispatches that cannot land (lost in flight, refused by a crashed
	// node, timed out against a partitioned one, or doomed on a dead one).
	var place func(job *simJob)
	bounce := func(job *simJob, sed *sedState, delayS float64) {
		if job.avoid == nil {
			job.avoid = make(map[string]bool)
		}
		job.avoid[sed.place.Name] = true
		job.attempt++
		res.Requeued++
		if len(job.avoid) >= len(seds) {
			// Nowhere left to try this instant: forget the bounce history
			// and retry after the backoff.
			job.avoid = nil
			sim.After(retryS, func() { place(job) })
			return
		}
		if delayS > 0 {
			sim.After(delayS, func() { place(job) })
		} else {
			place(job)
		}
	}
	place = func(job *simJob) {
		now := sim.Now()
		sed := choose(job.service, job.work, job.id, job.avoid)
		reqID := fmt.Sprintf("sim-%d", job.id)
		if job.attempt == 1 {
			job.dispatch0 = now
			emitSpan(reqID, "client", logsvc.KindSubmit, job.service, "", job.submitS, now)
			emitSpan(reqID, "MA", logsvc.KindSchedule, job.service, "chose "+sed.place.Name, job.submitS, now)
		}
		if failEnabled {
			switch {
			case sed.lossBudget > 0:
				// The dispatch vanishes in flight between the MA's answer and
				// the SeD's queue.
				sed.lossBudget--
				if cfg.SelfHealing {
					flog(sed.place.Name, "requeue", fmt.Sprintf("req %d lost in flight, resubmitted", job.id))
					emitSpan(reqID, "client", logsvc.KindRequeue, job.service,
						fmt.Sprintf("lost in flight to %s", sed.place.Name), now, now+retryS)
					bounce(job, sed, retryS)
				} else {
					lost++
					flog(sed.place.Name, "lost", fmt.Sprintf("req %d lost in flight, never resubmitted", job.id))
				}
				return
			case cfg.SelfHealing && sed.down:
				// Connection refused: the client fails over immediately.
				flog(sed.place.Name, "requeue", fmt.Sprintf("req %d refused by crashed %s", job.id, sed.place.Name))
				emitSpan(reqID, "client", logsvc.KindRequeue, job.service, sed.place.Name+" refused", now, now)
				bounce(job, sed, 0)
				return
			case cfg.SelfHealing && sed.partitioned:
				// Unreachable, not refused: the call times out before the
				// client fails over.
				flog(sed.place.Name, "requeue", fmt.Sprintf("req %d timed out against partitioned %s", job.id, sed.place.Name))
				emitSpan(reqID, "client", logsvc.KindRequeue, job.service, sed.place.Name+" unreachable", now, now+retryS)
				bounce(job, sed, retryS)
				return
			case !cfg.SelfHealing && sed.downForever:
				// Nothing detects the dead node; the request joins a queue
				// that will never drain.
				lost++
				sed.queue++
				sed.pending[job.service]++
				flog(sed.place.Name, "lost", fmt.Sprintf("req %d routed to dead node", job.id))
				return
			}
		}
		scheduleOn(sed, job)
	}

	// dispatch queues one request on a SeD and returns its completed record
	// via the callback when the solve finishes.
	dispatch := func(id int, service string, work float64, findMS float64, onDone func(RequestRecord)) {
		place(&simJob{
			id: id, service: service, work: work, findMS: findMS,
			submitS: sim.Now() - findMS/1000, attempt: 1, onDone: onDone,
		})
	}

	// Phase 1 at t=0.
	f1 := findingTime()
	var phase2Submitted bool
	submitPhase2 := func() {}
	sim.At(f1/1000, func() {
		dispatch(0, "ramsesZoom1", cfg.Phase1WorkGFlops, f1, func(rec RequestRecord) {
			res.Phase1 = rec
			res.Phase1S = rec.EndS
			if !phase2Submitted {
				phase2Submitted = true
				submitPhase2()
			}
		})
	})

	// Phase 2: the client requests all sub-simulations "simultaneously";
	// the MA serves the finds one after another, so request i's submission
	// completes one finding time after request i-1's.
	done := 0
	submitPhase2 = func() {
		t := sim.Now()
		for i := 1; i <= cfg.NRequests; i++ {
			id := i
			work := cfg.Phase2WorkGFlops * (1 + cfg.WorkJitter*rng.NormFloat64())
			if work < 0.1*cfg.Phase2WorkGFlops {
				work = 0.1 * cfg.Phase2WorkGFlops
			}
			f := findingTime()
			t += f/1000 + cfg.ArrivalGapS
			sim.At(t, func() {
				dispatch(id, "ramsesZoom2", work, f, func(rec RequestRecord) {
					res.Records = append(res.Records, rec)
					done++
				})
			})
		}
	}

	// Mid-campaign platform drift: the true speeds change under the running
	// hierarchy, invisible to every advertised figure.
	if cfg.DriftAtS > 0 && len(cfg.DriftPowerFactor) > 0 {
		sim.At(cfg.DriftAtS, func() {
			for name, f := range cfg.DriftPowerFactor {
				if s, ok := byName[name]; ok && f > 0 {
					s.truePower = s.place.PowerGFlops() * f
				}
			}
		})
	}

	// The failure schedule: each event is planted in virtual time, and the
	// recovery branch (or its absence) plays out from there.
	if failEnabled {
		if err := validateFailureSchedule(cfg.Failures, byName); err != nil {
			return nil, err
		}
		modelTrusted := func(s *sedState) bool {
			if s.monitor == nil {
				return false
			}
			m, ok := s.monitor.Model("ramsesZoom2")
			return ok && m.Confidence >= scheduler.DefaultMinConfidence && m.SolveSeconds(cfg.Phase2WorkGFlops) > 0
		}
		for _, f := range cfg.Failures {
			f := f
			sed := byName[f.Node]
			switch f.Kind {
			case FailCrash:
				restartS, hasRestart := recoveryAfter(cfg.Failures, f.Node, FailRestart, f.AtS)
				sim.At(f.AtS, func() {
					sed.down = true
					held := sed.cancelInflight()
					flog(f.Node, "crash", fmt.Sprintf("%d in-flight solves killed", len(held)))
					switch {
					case cfg.SelfHealing:
						// Heartbeat detection: the parent evicts the node and
						// requeues its dead work among the survivors — the
						// kill-and-requeue path of the live migration
						// protocol.
						crashS := sim.Now()
						sim.After(detectS, func() {
							sed.excluded = true
							held = append(held, sed.cancelInflight()...)
							flog(f.Node, "detect_evict", fmt.Sprintf("evicted after %.0fs silence, requeueing %d solves", detectS, len(held)))
							for _, j := range held {
								res.Requeued++
								emitSpan(fmt.Sprintf("sim-%d", j.id), sed.parent, logsvc.KindRequeue, j.service,
									"node "+f.Node+" lost", crashS, sim.Now())
								j.attempt++
								if j.avoid == nil {
									j.avoid = make(map[string]bool)
								}
								j.avoid[f.Node] = true
								place(j)
							}
							held = nil
						})
					case hasRestart:
						// Fragile with a restart coming: the clients hang on
						// their calls and the node replays its backlog
						// serially once it is back.
						sed.freeAt = restartS
						for _, j := range held {
							scheduleOn(sed, j)
						}
					default:
						// Fragile, never restarted: the work dies with the
						// node, and nothing stops new requests landing on it.
						sed.downForever = true
						for _, j := range held {
							lost++
							flog(f.Node, "lost", fmt.Sprintf("req %d died with the node", j.id))
						}
					}
				})
			case FailRestart:
				sim.At(f.AtS, func() {
					if !sed.down {
						return // restart without a crash: nothing to do
					}
					sed.down = false
					if cfg.SelfHealing {
						sed.excluded = false
						sed.freeAt = sim.Now()
						// -cori-snapshot warm restore: the monitor rides a
						// snapshot round-trip and comes back trained.
						if sed.monitor != nil {
							mcfg := cfg.CoRI
							mcfg.Now = virtualClock(sim)
							fresh := cori.NewMonitor(mcfg)
							if err := fresh.Restore(sed.monitor.Snapshot()); err == nil {
								sed.monitor = fresh
								if cfg.Monitors != nil {
									cfg.Monitors[sed.place.Name] = fresh
								}
							}
						}
						flog(f.Node, "restart", fmt.Sprintf("rejoined warm, model trusted=%v", modelTrusted(sed)))
					} else {
						// No snapshot on disk: the monitor restarts cold and
						// retrains from scratch.
						if sed.monitor != nil {
							mcfg := cfg.CoRI
							mcfg.Now = virtualClock(sim)
							sed.monitor = cori.NewMonitor(mcfg)
							if cfg.Monitors != nil {
								cfg.Monitors[sed.place.Name] = sed.monitor
							}
						}
						flog(f.Node, "restart", "rejoined cold, model retraining from scratch")
					}
				})
			case FailPartition:
				healS, hasHeal := recoveryAfter(cfg.Failures, f.Node, FailHeal, f.AtS)
				sim.At(f.AtS, func() {
					sed.partitioned = true
					flog(f.Node, "partition", "node cut off; solves continue, results held")
					if cfg.SelfHealing {
						sim.After(detectS, func() {
							if !sed.partitioned {
								return // healed before detection
							}
							sed.excluded = true
							flog(f.Node, "detect_evict", fmt.Sprintf("excluded after %.0fs silence", detectS))
						})
					} else if hasHeal {
						sed.waitUntil = healS
					}
				})
			case FailHeal:
				sim.At(f.AtS, func() {
					if !sed.partitioned {
						return
					}
					sed.partitioned = false
					sed.excluded = false
					sed.waitUntil = 0
					healS := sim.Now()
					held := sed.heldDone
					sed.heldDone = nil
					flog(f.Node, "heal", fmt.Sprintf("%d deferred results delivered", len(held)))
					for _, deliver := range held {
						deliver(healS)
					}
				})
			case FailLoss:
				sim.At(f.AtS, func() {
					n := f.Count
					if n <= 0 {
						n = 1
					}
					sed.lossBudget += n
					flog(f.Node, "loss", fmt.Sprintf("next %d dispatches will vanish in flight", n))
				})
			}
		}
	}

	// Live replanning: the virtual-time mirror of a Master Agent running
	// deploy.Replan on its heartbeat and applying the diff with the
	// SeD-migration protocol (diet.Agent.ApplyPlan).
	if cfg.ReplanIntervalS > 0 {
		service := cfg.ReplanService
		if service == "" {
			service = "ramsesZoom2"
		}
		pause := cfg.ReplanPauseS
		if pause <= 0 {
			pause = 30
		}
		// Hysteresis mirror (deploy.Hysteresis in virtual time): per-SeD time
		// of the last applied parent move, for the dwell rule.
		lastMovedAt := make(map[string]float64)
		var tick func()
		tick = func() {
			if done >= cfg.NRequests {
				// The campaign already finished before this tick's scheduled
				// time; a pass now would record phantom events past the
				// makespan.
				return
			}
			mons := make(map[string]*cori.Monitor, len(seds))
			for _, s := range seds {
				if s.monitor != nil {
					mons[s.place.Name] = s.monitor
				}
			}
			plan, _, err := deploy.Replan(cfg.Deployment, deploy.Options{
				Capabilities: deploy.MonitorSource(mons, service),
			})
			if err == nil {
				ev := ReplanEvent{AtS: sim.Now()}
				power, parent := plan.PowerByName(), plan.ParentByName()
				for _, s := range seds {
					if p, ok := power[s.place.Name]; ok && p > 0 &&
						math.Abs(p-s.advertised) > 1e-9*math.Max(1, s.advertised) &&
						(cfg.ReplanMinDeltaPct <= 0 || s.advertised <= 0 ||
							100*math.Abs(p-s.advertised)/s.advertised >= cfg.ReplanMinDeltaPct) {
						s.advertised = p
						ev.PowerUpdates++
					}
					want, ok := parent[s.place.Name]
					if !ok || s.parent == want {
						continue
					}
					if cfg.ReplanDwellS > 0 {
						if last, moved := lastMovedAt[s.place.Name]; moved && sim.Now()-last < cfg.ReplanDwellS {
							continue // inside the dwell window: defer the move
						}
					}
					lastMovedAt[s.place.Name] = sim.Now()
					// The reparent: drain pause before new work starts, and
					// the monitor rides the same Snapshot/Restore round-trip
					// the live protocol's persistence layer guarantees — the
					// model must come out as trusted as it went in.
					s.parent = want
					if s.freeAt < sim.Now() {
						s.freeAt = sim.Now()
					}
					s.freeAt += pause
					if s.monitor != nil {
						mcfg := cfg.CoRI
						mcfg.Now = virtualClock(sim)
						fresh := cori.NewMonitor(mcfg)
						if err := fresh.Restore(s.monitor.Snapshot()); err == nil {
							s.monitor = fresh
							if cfg.Monitors != nil {
								cfg.Monitors[s.place.Name] = fresh
							}
						}
					}
					if ev.MovedModelTrusted == nil {
						ev.MovedModelTrusted = make(map[string]bool)
					}
					trusted := false
					if s.monitor != nil {
						if m, ok := s.monitor.Model(service); ok &&
							m.Confidence >= scheduler.DefaultMinConfidence && m.SolveSeconds(cfg.Phase2WorkGFlops) > 0 {
							trusted = true
						}
					}
					ev.MovedModelTrusted[s.place.Name] = trusted
					ev.Moved = append(ev.Moved, s.place.Name)
				}
				sort.Strings(ev.Moved)
				res.Replans = append(res.Replans, ev)
			}
			if done < cfg.NRequests {
				sim.After(cfg.ReplanIntervalS, tick)
			}
		}
		sim.After(cfg.ReplanIntervalS, tick)
	}

	sim.Run()
	if batchExhausted > 0 {
		return nil, fmt.Errorf("simgrid: %d reservations exhausted the %d-attempt walltime budget — the live executor would fail these solves; widen the grant or train the forecasts",
			batchExhausted, maxBatchAttempts)
	}
	if done+lost != cfg.NRequests {
		return nil, fmt.Errorf("simgrid: only %d of %d requests completed (%d lost to failures)", done, cfg.NRequests, lost)
	}
	res.SolvesLost = lost

	sort.Slice(res.Records, func(i, j int) bool { return res.Records[i].ID < res.Records[j].ID })
	var sumDur, sumOverhead float64
	res.TotalS = res.Phase1.EndS
	for _, r := range res.Records {
		if r.EndS > res.TotalS {
			res.TotalS = r.EndS
		}
		sumDur += r.DurationS()
		sumOverhead += (r.FindingMS + cfg.InitMS) / 1000
	}
	if n := len(res.Records); n > 0 { // a fragile failure run can lose phase-2 requests
		res.MeanPhase2S = sumDur / float64(n)
		res.OverheadMS = sumOverhead / float64(n) * 1000
	}
	res.SequentialS = sumDur + res.Phase1.DurationS()
	res.TotalOverhead = sumOverhead + (res.Phase1.FindingMS+cfg.InitMS)/1000

	for _, s := range seds {
		sum := SeDSummary{Name: s.place.Name, Site: s.place.Site, Power: s.place.PowerGFlops()}
		for _, r := range s.records {
			if r.ID == 0 {
				continue // phase 1 is reported separately, as in Figure 5
			}
			sum.Requests = append(sum.Requests, r)
			sum.BusyHours += r.DurationS() / 3600
		}
		res.PerSeD = append(res.PerSeD, sum)
	}
	return res, nil
}

// Hours formats seconds as "XXhYYmZZs" the way the paper quotes durations.
func Hours(s float64) string {
	h := int(s) / 3600
	m := (int(s) % 3600) / 60
	sec := int(s) % 60
	return fmt.Sprintf("%dh %dmin %ds", h, m, sec)
}

// PrintFig5 writes the Figure 5 data: the Gantt chart rows (top) and the
// per-SeD request counts and total execution times (bottom).
func (r *ExperimentResult) PrintFig5(w io.Writer) {
	fmt.Fprintf(w, "Figure 5 — distribution of the %d sub-simulations over the SeDs (policy=%s)\n",
		len(r.Records), r.Policy)
	fmt.Fprintln(w, "SeD          site      reqs  busy      per-request hours")
	for _, s := range r.PerSeD {
		var items []string
		for _, req := range s.Requests {
			items = append(items, fmt.Sprintf("%.2f", req.DurationS()/3600))
		}
		fmt.Fprintf(w, "%-12s %-9s %4d  %6.2fh  [%s]\n",
			s.Name, s.Site, len(s.Requests), s.BusyHours, strings.Join(items, " "))
	}
}

// PrintFig6 writes the Figure 6 series: per request number, the finding time
// (ms) and the latency (ms, log scale in the paper).
func (r *ExperimentResult) PrintFig6(w io.Writer) {
	fmt.Fprintf(w, "Figure 6 — finding time and latency per request (policy=%s)\n", r.Policy)
	fmt.Fprintln(w, "req   find_ms   latency_ms")
	for _, rec := range r.Records {
		fmt.Fprintf(w, "%3d   %7.1f   %12.1f\n", rec.ID, rec.FindingMS, rec.LatencyMS)
	}
}

// PrintTotals writes the §6.2 headline numbers.
func (r *ExperimentResult) PrintTotals(w io.Writer) {
	fmt.Fprintf(w, "Experiment totals (policy=%s)\n", r.Policy)
	fmt.Fprintf(w, "  whole experiment      %s\n", Hours(r.TotalS))
	fmt.Fprintf(w, "  phase 1               %s\n", Hours(r.Phase1.DurationS()))
	fmt.Fprintf(w, "  phase 2 mean          %s\n", Hours(r.MeanPhase2S))
	fmt.Fprintf(w, "  sequential baseline   %s (%.0fh)\n", Hours(r.SequentialS), r.SequentialS/3600)
	fmt.Fprintf(w, "  speedup               %.1fx\n", r.SequentialS/r.TotalS)
	fmt.Fprintf(w, "  mean find time        %.1f ms\n", r.MeanFindingMS())
	fmt.Fprintf(w, "  overhead per request  %.1f ms\n", r.OverheadMS)
	fmt.Fprintf(w, "  total overhead        %.1f s\n", r.TotalOverhead)
	if r.Batch.Reservations > 0 {
		fmt.Fprintf(w, "  reservations          %d (%d forecast-sized), %d overrun kills, idle pad %s, wasted %s\n",
			r.Batch.Reservations, r.Batch.ForecastSized, r.Batch.OverrunKills,
			Hours(r.Batch.IdlePadS), Hours(r.Batch.WastedS))
	}
}

// MeanFindingMS averages the phase-2 finding times.
func (r *ExperimentResult) MeanFindingMS() float64 {
	if len(r.Records) == 0 {
		return 0
	}
	var sum float64
	for _, rec := range r.Records {
		sum += rec.FindingMS
	}
	return sum / float64(len(r.Records))
}

// MakespanHours returns the campaign makespan in hours.
func (r *ExperimentResult) MakespanHours() float64 { return r.TotalS / 3600 }

// RequestCounts returns the per-SeD request counts keyed by SeD name.
func (r *ExperimentResult) RequestCounts() map[string]int {
	out := make(map[string]int, len(r.PerSeD))
	for _, s := range r.PerSeD {
		out[s.Name] = len(s.Requests)
	}
	return out
}

// BusyHoursBySeD returns per-SeD total execution hours keyed by name.
func (r *ExperimentResult) BusyHoursBySeD() map[string]float64 {
	out := make(map[string]float64, len(r.PerSeD))
	for _, s := range r.PerSeD {
		out[s.Name] = s.BusyHours
	}
	return out
}
