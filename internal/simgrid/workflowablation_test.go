package simgrid

import "testing"

// TestRunWorkflowAblation is the A11 assertion: on the CanonicalSkew
// miscalibration the forecast-critical-path engine — pricing stages from the
// trained CoRI models — finishes the trained campaign faster than topo-order
// round-robin, and its placements actually use the models.
func TestRunWorkflowAblation(t *testing.T) {
	res, err := RunWorkflowAblation(WorkflowAblationConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for name, arm := range map[string]*WorkflowArmResult{
		"TopoRR": res.TopoRR, "ForecastCP": res.ForecastCP,
		"SkewTopoRR": res.SkewTopoRR, "SkewForecastCP": res.SkewForecastCP,
	} {
		if len(arm.CampaignMakespanS) != 5 {
			t.Fatalf("%s ran %d campaigns, want 5", name, len(arm.CampaignMakespanS))
		}
		for i, m := range arm.CampaignMakespanS {
			if m <= 0 {
				t.Fatalf("%s campaign %d makespan %.2f", name, i, m)
			}
		}
	}
	if res.TopoRR.ForecastPriced != 0 {
		t.Fatalf("static engine used %d model pricings, want 0", res.TopoRR.ForecastPriced)
	}
	if res.SkewForecastCP.ForecastPriced == 0 {
		t.Fatal("trained forecast engine never placed a node from a model")
	}
	if gain := res.GainPct(); gain <= 0 {
		t.Fatalf("forecast-critical-path loses to topo round-robin on the honest platform: gain %.1f%%", gain)
	}
	if gain := res.SkewGainPct(); gain <= 0 {
		t.Fatalf("forecast-critical-path loses to topo round-robin under CanonicalSkew: gain %.1f%%", gain)
	}
	// Miscalibration must not erase the trained engine's edge: the measured
	// models keep the long RAMSES/HaloMaker stages off the degraded nodes.
	if res.SkewForecastCP.TrainedMakespanS() >= res.SkewTopoRR.TrainedMakespanS() {
		t.Fatalf("trained skew makespan %.0fs not below static %.0fs",
			res.SkewForecastCP.TrainedMakespanS(), res.SkewTopoRR.TrainedMakespanS())
	}
}
