package simgrid

import (
	"strings"
	"testing"

	"repro/internal/scheduler"
)

func TestPrintGantt(t *testing.T) {
	res := runDefault(t, scheduler.NewRoundRobin())
	var b strings.Builder
	res.PrintGantt(&b, 60)
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 11 SeD rows + axis.
	if len(lines) != 13 {
		t.Fatalf("Gantt has %d lines, want 13:\n%s", len(lines), out)
	}
	for _, sed := range []string{"Nancy1", "Toulouse2", "Lyon1-cap"} {
		if !strings.Contains(out, sed) {
			t.Errorf("Gantt missing row for %s", sed)
		}
	}
	// Every SeD row must show work (digits) and the rows must be equal width.
	rowLen := -1
	for _, l := range lines[1:12] {
		bar := l[strings.Index(l, "|"):]
		if rowLen == -1 {
			rowLen = len(bar)
		} else if len(bar) != rowLen {
			t.Errorf("ragged Gantt row: %q", l)
		}
		if !strings.ContainsAny(bar, "0123456789") {
			t.Errorf("idle SeD row in a full campaign: %q", l)
		}
	}
	// The busiest SeDs work to the right edge; at least one row should have
	// a digit in the final column.
	lastColBusy := false
	for _, l := range lines[1:12] {
		if len(l) >= 2 && l[len(l)-2] >= '0' && l[len(l)-2] <= '9' {
			lastColBusy = true
		}
	}
	if !lastColBusy {
		t.Error("no SeD busy at campaign end; makespan row missing")
	}
}

func TestPrintGanttTinyWidthClamped(t *testing.T) {
	res := runDefault(t, scheduler.NewRoundRobin())
	var b strings.Builder
	res.PrintGantt(&b, 3) // clamped to 10
	if !strings.Contains(b.String(), "|") {
		t.Error("clamped Gantt failed to render")
	}
}
