package simgrid

import (
	"testing"

	"repro/internal/cori"
	"repro/internal/scheduler"
)

// TestForecastAwareBeatsRoundRobinFig5Platform is the acceptance gate for
// the CoRI subsystem: on the paper's heterogeneous Figure-5 platform (11
// SeDs, Nancy ≈ 64 GFlops down to Toulouse ≈ 45), the history-aware plug-in
// must beat the default equal distribution the paper measured.
func TestForecastAwareBeatsRoundRobinFig5Platform(t *testing.T) {
	rr, err := RunExperiment(DefaultExperiment(scheduler.NewRoundRobin()))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultExperiment(scheduler.NewForecastAware())
	cfg.Forecast = true
	fa, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fa.TotalS >= rr.TotalS {
		t.Fatalf("forecastaware makespan %s must beat roundrobin %s",
			Hours(fa.TotalS), Hours(rr.TotalS))
	}
	t.Logf("roundrobin %s → forecastaware %s (%.1f%% saved)",
		Hours(rr.TotalS), Hours(fa.TotalS), 100*(rr.TotalS-fa.TotalS)/rr.TotalS)
}

// TestForecastEstimatesMirrorLiveSeD checks the simulator populates the same
// forecast extension diet.SeD.Estimate does: after a campaign every SeD's
// monitor holds per-service models whose measured throughput matches the
// SeD's true delivered power.
func TestForecastEstimatesMirrorLiveSeD(t *testing.T) {
	cfg := DefaultExperiment(scheduler.NewRoundRobin())
	cfg.Forecast = true
	cfg.Monitors = make(map[string]*cori.Monitor)
	if _, err := RunExperiment(cfg); err != nil {
		t.Fatal(err)
	}
	if len(cfg.Monitors) != len(cfg.Deployment.SeDs) {
		t.Fatalf("want a monitor per SeD, got %d of %d", len(cfg.Monitors), len(cfg.Deployment.SeDs))
	}
	for _, p := range cfg.Deployment.SeDs {
		m := cfg.Monitors[p.Name]
		model, ok := m.Model("ramsesZoom2")
		if !ok {
			t.Fatalf("%s: no model despite completed solves", p.Name)
		}
		if model.Samples < 1 {
			t.Fatalf("%s: no samples", p.Name)
		}
		// Work jitter gives the regression spread; the measured throughput
		// must land on the true power (honest platform: the advertised one).
		if model.MeasuredGFlops > 0 {
			rel := model.MeasuredGFlops/p.PowerGFlops() - 1
			if rel < -0.05 || rel > 0.05 {
				t.Errorf("%s: measured %.1f GFlops, true %.1f", p.Name, model.MeasuredGFlops, p.PowerGFlops())
			}
		}
		if model.Confidence <= 0 || model.Confidence > 1 {
			t.Errorf("%s: confidence %g out of range", p.Name, model.Confidence)
		}
	}
}

// TestForecastLearnsMiscalibratedPower is the experiment the subsystem
// exists for: several SeDs deliver a fraction of their advertised power
// (miscalibration the paper's static deployment cannot see). PowerAware is
// misled and does worse than round-robin; the forecaster measures the truth
// during round one and the trained forecast-aware rounds recover most of the
// loss.
func TestForecastLearnsMiscalibratedPower(t *testing.T) {
	mk := func(p scheduler.Policy) ExperimentConfig {
		cfg := DefaultExperiment(p)
		cfg.TruePowerFactor = CanonicalSkew
		return cfg
	}
	rr, err := RunExperiment(mk(scheduler.NewRoundRobin()))
	if err != nil {
		t.Fatal(err)
	}
	pa, err := RunExperiment(mk(scheduler.NewPowerAware()))
	if err != nil {
		t.Fatal(err)
	}
	rounds, err := RunExperimentRounds(mk(scheduler.NewForecastAware()), 2)
	if err != nil {
		t.Fatal(err)
	}
	cold, trained := rounds[0], rounds[1]
	t.Logf("skewed platform: rr %s, poweraware %s, forecast cold %s, trained %s",
		Hours(rr.TotalS), Hours(pa.TotalS), Hours(cold.TotalS), Hours(trained.TotalS))
	if pa.TotalS <= rr.TotalS {
		t.Fatalf("precondition: miscalibration must mislead poweraware (pa %s vs rr %s)",
			Hours(pa.TotalS), Hours(rr.TotalS))
	}
	if trained.TotalS >= rr.TotalS {
		t.Fatalf("trained forecastaware %s must beat roundrobin %s", Hours(trained.TotalS), Hours(rr.TotalS))
	}
	if trained.TotalS >= 0.75*cold.TotalS {
		t.Fatalf("training must recover the miscalibration loss: cold %s → trained %s",
			Hours(cold.TotalS), Hours(trained.TotalS))
	}
}

// TestRunForecastAblation exercises the five-arm comparison helper that
// BenchmarkAblationForecast and cmd/experiment report.
func TestRunForecastAblation(t *testing.T) {
	res, err := RunForecastAblation(func() ExperimentConfig {
		cfg := DefaultExperiment(nil)
		cfg.Policy = scheduler.NewRoundRobin() // placeholder; overridden per arm
		cfg.NRequests = 40
		return cfg
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]*ExperimentResult{
		"roundrobin": res.RoundRobin, "poweraware": res.PowerAware,
		"cold": res.ForecastCold, "trained": res.ForecastTrained, "contention": res.Contention,
		"skew-rr": res.SkewRoundRobin, "skew-pa": res.SkewPowerAware, "skew-trained": res.SkewTrained,
	} {
		if r == nil || len(r.Records) != 40 {
			t.Fatalf("arm %s incomplete", name)
		}
	}
	if res.ForecastTrained.TotalS > res.RoundRobin.TotalS {
		t.Fatalf("trained forecastaware %s must not lose to roundrobin %s",
			Hours(res.ForecastTrained.TotalS), Hours(res.RoundRobin.TotalS))
	}
	if res.ImprovementPct() <= 0 {
		t.Fatalf("improvement %.2f%% must be positive", res.ImprovementPct())
	}
	if res.ForecastGainPct() <= 0 {
		t.Fatalf("forecast gain %.2f%% on the miscalibrated platform must be positive", res.ForecastGainPct())
	}
}

// TestRoundsCarryMonitors checks history actually accumulates across rounds.
func TestRoundsCarryMonitors(t *testing.T) {
	cfg := DefaultExperiment(scheduler.NewForecastAware())
	cfg.NRequests = 10
	cfg.Monitors = make(map[string]*cori.Monitor)
	if _, err := RunExperimentRounds(cfg, 3); err != nil {
		t.Fatal(err)
	}
	var total int
	for _, m := range cfg.Monitors {
		if model, ok := m.Model("ramsesZoom2"); ok {
			total += model.Samples
		}
	}
	if total != 30 {
		t.Fatalf("3 rounds × 10 requests must leave 30 samples across monitors, got %d", total)
	}
}
