package simgrid

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"repro/internal/cori"
	"repro/internal/scheduler"
)

// This file runs the data ablation (A13): a data-heavy parameter sweep with
// persistent-data reuse — every sweep point re-reads one of a handful of
// multi-GB snapshots first published on a storage node — executed in
// virtual time over per-pair virtual bandwidths, comparing a data-blind
// scheduler (rank on compute + wait only, exactly the pre-A13 formula) against
// the data-aware one the live platform runs: predicted input-transfer seconds
// folded into the score, priced from a cori.TransferMonitor trained by the
// sweep's own measured transfers. Both arms cache fetched snapshots locally
// (persistent data lives where it lands), so the blind arm's only handicap is
// not *pricing* the moves it causes — it spreads each snapshot's points across
// the platform and pays the WAN again and again, while the aware arm
// concentrates them where the bytes already are.

// DataServer is one compute node of the A13 platform.
type DataServer struct {
	Name        string
	PowerGFlops float64
}

// DataAblationConfig parameterises the A13 comparison. The zero value runs
// the default data-heavy sweep (see withDefaults) — an empty config is never
// inert.
type DataAblationConfig struct {
	// Servers is the compute platform (default: four SeDs of mixed power,
	// two behind a slow WAN link from the storage node).
	Servers []DataServer
	// StorageNode initially holds every dataset (default "nfs").
	StorageNode string
	// Datasets is how many distinct snapshots the sweep reads (default 6);
	// DatasetMB is each snapshot's size (default 3000 — GRAFIC-scale).
	Datasets  int
	DatasetMB float64
	// PointsPerDataset is how many sweep points consume each snapshot
	// (default 8); WorkGFlops is one point's compute cost (default 2000).
	PointsPerDataset int
	WorkGFlops       float64
	// BandwidthMBps maps cori.PairKey(a, b) to the link's virtual bandwidth;
	// pairs not listed run at DefaultMBps (default 100). The default map puts
	// Nancy and Sophia behind a 10 MB/s WAN from the storage node.
	BandwidthMBps map[string]float64
	DefaultMBps   float64
	// FallbackMBps is the aware arm's assumed bandwidth while a pair's
	// transfer model is still untrusted — the live SeD's DataFallbackMBps
	// knob (default 50, still optimistic about the 10 MB/s WAN links).
	FallbackMBps float64
	// MaxInFlight caps concurrently running sweep points (default 4), so
	// placement decisions interleave with completions and the transfer
	// monitor trains mid-sweep.
	MaxInFlight int
	// Seed shuffles the submission order of the sweep points (default 7).
	Seed int64
}

// withDefaults fills the zero fields with the default data-heavy sweep.
func (c DataAblationConfig) withDefaults() DataAblationConfig {
	if len(c.Servers) == 0 {
		c.Servers = []DataServer{
			{Name: "Lyon1", PowerGFlops: 70},
			{Name: "Lyon2", PowerGFlops: 60},
			{Name: "Nancy1", PowerGFlops: 50},
			{Name: "Sophia1", PowerGFlops: 40},
		}
	}
	if c.StorageNode == "" {
		c.StorageNode = "nfs"
	}
	if c.Datasets < 1 {
		c.Datasets = 6
	}
	if c.DatasetMB <= 0 {
		c.DatasetMB = 3000
	}
	if c.PointsPerDataset < 1 {
		c.PointsPerDataset = 8
	}
	if c.WorkGFlops <= 0 {
		c.WorkGFlops = 2000
	}
	if c.BandwidthMBps == nil {
		c.BandwidthMBps = map[string]float64{
			cori.PairKey("nfs", "Lyon1"):      100,
			cori.PairKey("nfs", "Lyon2"):      100,
			cori.PairKey("nfs", "Nancy1"):     10,
			cori.PairKey("nfs", "Sophia1"):    10,
			cori.PairKey("Lyon1", "Nancy1"):   20,
			cori.PairKey("Lyon1", "Sophia1"):  20,
			cori.PairKey("Lyon2", "Nancy1"):   20,
			cori.PairKey("Lyon2", "Sophia1"):  20,
			cori.PairKey("Nancy1", "Sophia1"): 15,
		}
	}
	if c.DefaultMBps <= 0 {
		c.DefaultMBps = 100
	}
	if c.FallbackMBps <= 0 {
		c.FallbackMBps = 50
	}
	if c.MaxInFlight < 1 {
		c.MaxInFlight = 4
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	return c
}

// bandwidth returns the virtual MB/s of the a↔b link.
func (c DataAblationConfig) bandwidth(a, b string) float64 {
	if bw, ok := c.BandwidthMBps[cori.PairKey(a, b)]; ok && bw > 0 {
		return bw
	}
	return c.DefaultMBps
}

// DataArmResult is one scheduling arm's outcome over the sweep.
type DataArmResult struct {
	Strategy     string
	MakespanS    float64
	BytesMovedMB float64
	Transfers    int
	Solves       int
	// EventLog is the deterministic dispatch trace: one line per sweep point,
	// in dispatch order, with virtual timestamps.
	EventLog []string
}

// DataAblationResult compares the two arms on the same platform, workload,
// and submission order.
type DataAblationResult struct {
	Blind *DataArmResult // compute + wait only, pre-A13 ranking
	Aware *DataArmResult // + predicted input-transfer seconds
}

// MakespanGainPct is the sweep-makespan saving of data-aware over data-blind
// scheduling, in percent.
func (r *DataAblationResult) MakespanGainPct() float64 {
	return 100 * (r.Blind.MakespanS - r.Aware.MakespanS) / r.Blind.MakespanS
}

// BytesSavedPct is the reduction in bytes moved across the virtual links.
func (r *DataAblationResult) BytesSavedPct() float64 {
	return 100 * (r.Blind.BytesMovedMB - r.Aware.BytesMovedMB) / r.Blind.BytesMovedMB
}

// Print writes the A13 summary table.
func (r *DataAblationResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Data ablation (A13) — transfer-priced placement on a data-heavy sweep")
	row := func(a *DataArmResult) {
		fmt.Fprintf(w, "  %-12s makespan %-12s moved %7.0f MB in %3d transfers  (%d solves)\n",
			a.Strategy, Hours(a.MakespanS), a.BytesMovedMB, a.Transfers, a.Solves)
	}
	row(r.Blind)
	row(r.Aware)
	fmt.Fprintf(w, "  makespan gain  %.1f%%\n", r.MakespanGainPct())
	fmt.Fprintf(w, "  bytes saved    %.1f%%\n", r.BytesSavedPct())
}

// dataSed is the ablation's view of one server: capacity 1, a drain time, and
// the set of snapshots already resident on its store.
type dataSed struct {
	DataServer
	freeAt float64
	has    map[int]bool // dataset index → resident
}

// runDataArm executes the sweep under one ranking. Both arms share the
// workload, submission order, platform, and caching behaviour; aware
// additionally prices predicted input transfers into placement, from the
// monitor its own completed transfers train.
func runDataArm(cfg DataAblationConfig, aware bool) *DataArmResult {
	sim := NewSim()
	var monitor *cori.TransferMonitor
	if aware {
		monitor = cori.NewTransferMonitor(cori.Config{HalfLife: TrainingHalfLife, Now: virtualClock(sim)})
	}

	seds := make([]*dataSed, len(cfg.Servers))
	for i, s := range cfg.Servers {
		seds[i] = &dataSed{DataServer: s, has: map[int]bool{}}
	}
	// holders[d] is the sorted set of nodes a replica of dataset d lives on;
	// every dataset starts on the storage node only.
	holders := make([][]string, cfg.Datasets)
	for d := range holders {
		holders[d] = []string{cfg.StorageNode}
	}
	addHolder := func(d int, node string) {
		for _, h := range holders[d] {
			if h == node {
				return
			}
		}
		holders[d] = append(holders[d], node)
		sort.Strings(holders[d])
	}

	// The sweep: PointsPerDataset points per snapshot, submission order
	// shuffled by the seed so neither arm sees datasets in convenient runs.
	type point struct{ dataset int }
	var queue []point
	for d := 0; d < cfg.Datasets; d++ {
		for p := 0; p < cfg.PointsPerDataset; p++ {
			queue = append(queue, point{dataset: d})
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rng.Shuffle(len(queue), func(i, j int) { queue[i], queue[j] = queue[j], queue[i] })

	// predictTransfer is the aware arm's pricing: 0 when the bytes are
	// already resident, else the cheapest predicted pull from any replica —
	// the trusted pair model when one exists, the optimistic fallback
	// bandwidth until then. Exactly the live SeD's inputTransferSeconds.
	predictTransfer := func(s *dataSed, d int) float64 {
		if s.has[d] {
			return 0
		}
		best := -1.0
		for _, h := range holders[d] {
			secs, conf, ok := monitor.Predict(h, s.Name, cfg.DatasetMB)
			if !ok || conf < scheduler.DefaultMinConfidence {
				secs = cfg.DatasetMB / cfg.FallbackMBps
			}
			if best < 0 || secs < best {
				best = secs
			}
		}
		return best
	}

	strategy := "data-blind"
	if aware {
		strategy = "data-aware"
	}
	res := &DataArmResult{Strategy: strategy}
	inflight, next := 0, 0

	var dispatch func()
	dispatch = func() {
		for inflight < cfg.MaxInFlight && next < len(queue) {
			job := queue[next]
			seq := next
			next++

			// Rank: predicted finish = wait + compute (+ transfer when
			// aware); ties go to the earlier server, like ServerID order.
			var sed *dataSed
			best := 0.0
			now := sim.Now()
			for _, s := range seds {
				start := now
				if s.freeAt > start {
					start = s.freeAt
				}
				score := start + cfg.WorkGFlops/s.PowerGFlops
				if aware {
					score += predictTransfer(s, job.dataset)
				}
				if sed == nil || score < best {
					sed, best = s, score
				}
			}

			// Execute: pull the snapshot over the actual virtual link when
			// it is not resident (cheapest true source, name-ordered ties),
			// then compute. The blind arm pays the same pull — it just never
			// saw it coming.
			start := now
			if sed.freeAt > start {
				start = sed.freeAt
			}
			transfer, from := 0.0, ""
			if !sed.has[job.dataset] {
				for _, h := range holders[job.dataset] {
					if t := cfg.DatasetMB / cfg.bandwidth(h, sed.Name); from == "" || t < transfer {
						transfer, from = t, h
					}
				}
				res.BytesMovedMB += cfg.DatasetMB
				res.Transfers++
			}
			end := start + transfer + cfg.WorkGFlops/sed.PowerGFlops
			sed.freeAt = end
			inflight++
			if from != "" {
				res.EventLog = append(res.EventLog, fmt.Sprintf(
					"t=%09.1f point=%03d ds=%d sed=%s pull=%s transfer=%.1fs end=%.1f",
					now, seq, job.dataset, sed.Name, from, transfer, end))
			} else {
				res.EventLog = append(res.EventLog, fmt.Sprintf(
					"t=%09.1f point=%03d ds=%d sed=%s local end=%.1f",
					now, seq, job.dataset, sed.Name, end))
			}

			job, sedDone, fromDone, trDone := job, sed, from, transfer
			sim.At(end, func() {
				if fromDone != "" {
					sedDone.has[job.dataset] = true
					addHolder(job.dataset, sedDone.Name)
					if monitor != nil {
						monitor.Observe(cori.TransferSample{
							From: fromDone, To: sedDone.Name, SizeMB: cfg.DatasetMB,
							Duration: time.Duration(trDone * float64(time.Second)),
						})
					}
				}
				inflight--
				res.Solves++
				dispatch()
				if res.Solves == len(queue) {
					res.MakespanS = sim.Now()
				}
			})
		}
	}
	dispatch()
	sim.Run()
	return res
}

// RunDataAblation runs both arms of A13 on the same configuration.
func RunDataAblation(cfg DataAblationConfig) *DataAblationResult {
	cfg = cfg.withDefaults()
	return &DataAblationResult{
		Blind: runDataArm(cfg, false),
		Aware: runDataArm(cfg, true),
	}
}
