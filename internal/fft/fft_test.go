package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestForwardImpulse(t *testing.T) {
	// DFT of a unit impulse at 0 is flat ones.
	data := make([]complex128, 8)
	data[0] = 1
	if err := Forward(data); err != nil {
		t.Fatal(err)
	}
	for k, v := range data {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("X[%d] = %v, want 1", k, v)
		}
	}
}

func TestForwardConstant(t *testing.T) {
	// DFT of a constant is N at k=0, zero elsewhere.
	n := 16
	data := make([]complex128, n)
	for i := range data {
		data[i] = 2.5
	}
	if err := Forward(data); err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(data[0]-complex(2.5*float64(n), 0)) > 1e-9 {
		t.Errorf("X[0] = %v, want %v", data[0], 2.5*float64(n))
	}
	for k := 1; k < n; k++ {
		if cmplx.Abs(data[k]) > 1e-9 {
			t.Errorf("X[%d] = %v, want 0", k, data[k])
		}
	}
}

func TestForwardSingleMode(t *testing.T) {
	// x[n] = exp(2πi m n/N) transforms to N at bin m.
	n, m := 32, 5
	data := make([]complex128, n)
	for i := range data {
		data[i] = cmplx.Exp(complex(0, 2*math.Pi*float64(m*i)/float64(n)))
	}
	if err := Forward(data); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		want := complex(0, 0)
		if k == m {
			want = complex(float64(n), 0)
		}
		if cmplx.Abs(data[k]-want) > 1e-9 {
			t.Errorf("X[%d] = %v, want %v", k, data[k], want)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, szExp uint8) bool {
		n := 1 << (szExp%8 + 1) // 2..256
		rng := rand.New(rand.NewSource(seed))
		data := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range data {
			data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = data[i]
		}
		if Forward(data) != nil || Inverse(data) != nil {
			return false
		}
		for i := range data {
			if cmplx.Abs(data[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestParseval(t *testing.T) {
	n := 64
	rng := rand.New(rand.NewSource(3))
	data := make([]complex128, n)
	var timeEnergy float64
	for i := range data {
		data[i] = complex(rng.NormFloat64(), 0)
		timeEnergy += real(data[i]) * real(data[i])
	}
	if err := Forward(data); err != nil {
		t.Fatal(err)
	}
	var freqEnergy float64
	for _, v := range data {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= float64(n)
	if math.Abs(timeEnergy-freqEnergy) > 1e-9*timeEnergy {
		t.Errorf("Parseval violated: time %g vs freq %g", timeEnergy, freqEnergy)
	}
}

func TestNonPowerOfTwoRejected(t *testing.T) {
	if err := Forward(make([]complex128, 12)); err == nil {
		t.Error("expected error for length 12")
	}
	if err := Inverse(make([]complex128, 0)); err == nil {
		t.Error("expected error for length 0")
	}
	if _, err := NewGrid3(6); err == nil {
		t.Error("expected error for grid side 6")
	}
}

func TestGrid3Indexing(t *testing.T) {
	g, err := NewGrid3(4)
	if err != nil {
		t.Fatal(err)
	}
	g.Set(1, 2, 3, 7i)
	if g.At(1, 2, 3) != 7i {
		t.Errorf("At(1,2,3) = %v, want 7i", g.At(1, 2, 3))
	}
	if g.Data[(3*4+2)*4+1] != 7i {
		t.Error("Set wrote to the wrong flat index")
	}
}

func TestGrid3RoundTrip(t *testing.T) {
	g, _ := NewGrid3(8)
	rng := rand.New(rand.NewSource(11))
	orig := make([]complex128, len(g.Data))
	for i := range g.Data {
		g.Data[i] = complex(rng.NormFloat64(), 0)
		orig[i] = g.Data[i]
	}
	if err := Forward3(g); err != nil {
		t.Fatal(err)
	}
	if err := Inverse3(g); err != nil {
		t.Fatal(err)
	}
	for i := range g.Data {
		if cmplx.Abs(g.Data[i]-orig[i]) > 1e-9 {
			t.Fatalf("cell %d: %v != %v", i, g.Data[i], orig[i])
		}
	}
}

func TestGrid3PlaneWave(t *testing.T) {
	// A plane wave along z lands all its power in the (0,0,mz) bin.
	n, mz := 8, 3
	g, _ := NewGrid3(n)
	for iz := 0; iz < n; iz++ {
		v := cmplx.Exp(complex(0, 2*math.Pi*float64(mz*iz)/float64(n)))
		for iy := 0; iy < n; iy++ {
			for ix := 0; ix < n; ix++ {
				g.Set(ix, iy, iz, v)
			}
		}
	}
	if err := Forward3(g); err != nil {
		t.Fatal(err)
	}
	want := complex(float64(n*n*n), 0)
	if cmplx.Abs(g.At(0, 0, mz)-want) > 1e-6 {
		t.Errorf("bin (0,0,%d) = %v, want %v", mz, g.At(0, 0, mz), want)
	}
	var offPeak float64
	for i, v := range g.Data {
		if i != (mz*n+0)*n+0 {
			offPeak += cmplx.Abs(v)
		}
	}
	if offPeak > 1e-6 {
		t.Errorf("off-peak power %g, want ~0", offPeak)
	}
}

func TestFreqIndex(t *testing.T) {
	cases := []struct{ i, n, want int }{
		{0, 8, 0}, {1, 8, 1}, {3, 8, 3}, {4, 8, -4}, {5, 8, -3}, {7, 8, -1},
	}
	for _, c := range cases {
		if got := FreqIndex(c.i, c.n); got != c.want {
			t.Errorf("FreqIndex(%d,%d) = %d, want %d", c.i, c.n, got, c.want)
		}
	}
}

func TestWaveNumber(t *testing.T) {
	box := 100.0
	k1 := WaveNumber(1, 64, box)
	want := 2 * math.Pi / box
	if math.Abs(k1-want) > 1e-12 {
		t.Errorf("WaveNumber(1) = %g, want %g", k1, want)
	}
	if WaveNumber(0, 64, box) != 0 {
		t.Error("WaveNumber(0) should be 0")
	}
	if WaveNumber(63, 64, box) >= 0 {
		t.Error("WaveNumber(n-1) should be negative")
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -2, 3, 12, 1023} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}
