// Package fft provides the fast Fourier transforms the cosmology stack needs:
// an iterative radix-2 complex transform plus 3-D transforms over contiguous
// arrays. GRAFIC uses it to filter white noise with the matter power
// spectrum; the particle-mesh solver uses it to solve the Poisson equation on
// the mesh. Only power-of-two lengths are supported, matching the 2^n grids
// used throughout RAMSES/GRAFIC.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Forward computes the in-place forward DFT of data (sign convention
// X[k] = sum_n x[n] exp(-2πi kn/N)). len(data) must be a power of two.
func Forward(data []complex128) error { return transform(data, -1) }

// Inverse computes the in-place inverse DFT including the 1/N normalisation,
// so Inverse(Forward(x)) == x up to rounding.
func Inverse(data []complex128) error {
	if err := transform(data, +1); err != nil {
		return err
	}
	scale := complex(1/float64(len(data)), 0)
	for i := range data {
		data[i] *= scale
	}
	return nil
}

// transform runs the iterative Cooley–Tukey radix-2 algorithm with the given
// exponent sign.
func transform(data []complex128, sign float64) error {
	n := len(data)
	if !IsPow2(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			data[i], data[j] = data[j], data[i]
		}
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
	}
	// Butterfly passes.
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := cmplx.Exp(complex(0, sign*2*math.Pi/float64(size)))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := data[start+k]
				b := data[start+k+half] * w
				data[start+k] = a + b
				data[start+k+half] = a - b
				w *= step
			}
		}
	}
	return nil
}

// Grid3 is a cube of complex values with side n stored contiguously in
// x-fastest order: index = (iz*n + iy)*n + ix.
type Grid3 struct {
	N    int
	Data []complex128
}

// NewGrid3 allocates an n×n×n complex grid. n must be a power of two.
func NewGrid3(n int) (*Grid3, error) {
	if !IsPow2(n) {
		return nil, fmt.Errorf("fft: grid side %d is not a power of two", n)
	}
	return &Grid3{N: n, Data: make([]complex128, n*n*n)}, nil
}

// At returns the value at (ix, iy, iz).
func (g *Grid3) At(ix, iy, iz int) complex128 {
	return g.Data[(iz*g.N+iy)*g.N+ix]
}

// Set stores v at (ix, iy, iz).
func (g *Grid3) Set(ix, iy, iz int, v complex128) {
	g.Data[(iz*g.N+iy)*g.N+ix] = v
}

// Forward3 computes the in-place 3-D forward DFT of g by transforming along
// x, then y, then z.
func Forward3(g *Grid3) error { return transform3(g, Forward) }

// Inverse3 computes the in-place 3-D inverse DFT of g, including the 1/N³
// normalisation (each 1-D pass carries its own 1/N).
func Inverse3(g *Grid3) error { return transform3(g, Inverse) }

// transform3 applies a 1-D transform along each of the three axes.
func transform3(g *Grid3, pass func([]complex128) error) error {
	n := g.N
	// Along x: rows are contiguous.
	for iz := 0; iz < n; iz++ {
		for iy := 0; iy < n; iy++ {
			row := g.Data[(iz*n+iy)*n : (iz*n+iy)*n+n]
			if err := pass(row); err != nil {
				return err
			}
		}
	}
	// Along y and z: gather strided lines into a scratch buffer.
	line := make([]complex128, n)
	for iz := 0; iz < n; iz++ {
		for ix := 0; ix < n; ix++ {
			for iy := 0; iy < n; iy++ {
				line[iy] = g.Data[(iz*n+iy)*n+ix]
			}
			if err := pass(line); err != nil {
				return err
			}
			for iy := 0; iy < n; iy++ {
				g.Data[(iz*n+iy)*n+ix] = line[iy]
			}
		}
	}
	for iy := 0; iy < n; iy++ {
		for ix := 0; ix < n; ix++ {
			for iz := 0; iz < n; iz++ {
				line[iz] = g.Data[(iz*n+iy)*n+ix]
			}
			if err := pass(line); err != nil {
				return err
			}
			for iz := 0; iz < n; iz++ {
				g.Data[(iz*n+iy)*n+ix] = line[iz]
			}
		}
	}
	return nil
}

// FreqIndex maps a grid index i in [0, n) to its signed frequency index in
// [-n/2, n/2), the usual DFT frequency layout.
func FreqIndex(i, n int) int {
	if i <= n/2 {
		if i == n/2 {
			return -n / 2
		}
		return i
	}
	return i - n
}

// WaveNumber returns the physical wavenumber (2π/boxSize)·FreqIndex(i,n) for
// grid index i on an n-point grid spanning boxSize.
func WaveNumber(i, n int, boxSize float64) float64 {
	return 2 * math.Pi * float64(FreqIndex(i, n)) / boxSize
}
