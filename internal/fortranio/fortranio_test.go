package fortranio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
	"testing/quick"
)

func TestRecordRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	payloads := [][]byte{
		{},
		{0x01},
		[]byte("hello fortran"),
		bytes.Repeat([]byte{0xAB}, 1024),
	}
	for _, p := range payloads {
		if err := w.WriteRecord(p); err != nil {
			t.Fatalf("WriteRecord(%d bytes): %v", len(p), err)
		}
	}
	r := NewReader(&buf)
	for i, want := range payloads {
		got, err := r.ReadRecord()
		if err != nil {
			t.Fatalf("ReadRecord %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("record %d: got %v, want %v", i, got, want)
		}
	}
	if _, err := r.ReadRecord(); err != io.EOF {
		t.Errorf("after last record: got %v, want io.EOF", err)
	}
}

func TestRecordFraming(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRecord([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if len(raw) != 4+3+4 {
		t.Fatalf("framed record is %d bytes, want 11", len(raw))
	}
	if n := binary.LittleEndian.Uint32(raw[:4]); n != 3 {
		t.Errorf("leading marker = %d, want 3", n)
	}
	if n := binary.LittleEndian.Uint32(raw[7:]); n != 3 {
		t.Errorf("trailing marker = %d, want 3", n)
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	f := func(payload []byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteRecord(payload); err != nil {
			return false
		}
		got, err := NewReader(&buf).ReadRecord()
		if err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTypedRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	i32s := []int32{-1, 0, 1, math.MaxInt32, math.MinInt32}
	f32s := []float32{0, -1.5, math.Pi, 1e30, -1e-30}
	f64s := []float64{0, -1.5, math.Pi, 1e300, -1e-300}
	if err := w.WriteInt32(42); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteInt32s(i32s); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFloat32s(f32s); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFloat64s(f64s); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteString("GRAFIC"); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	if v, err := r.ReadInt32(); err != nil || v != 42 {
		t.Errorf("ReadInt32 = %d, %v; want 42", v, err)
	}
	gi, err := r.ReadInt32s()
	if err != nil {
		t.Fatal(err)
	}
	for i := range i32s {
		if gi[i] != i32s[i] {
			t.Errorf("int32[%d] = %d, want %d", i, gi[i], i32s[i])
		}
	}
	gf32, err := r.ReadFloat32s()
	if err != nil {
		t.Fatal(err)
	}
	for i := range f32s {
		if gf32[i] != f32s[i] {
			t.Errorf("float32[%d] = %g, want %g", i, gf32[i], f32s[i])
		}
	}
	gf64, err := r.ReadFloat64s()
	if err != nil {
		t.Fatal(err)
	}
	for i := range f64s {
		if gf64[i] != f64s[i] {
			t.Errorf("float64[%d] = %g, want %g", i, gf64[i], f64s[i])
		}
	}
	if s, err := r.ReadString(); err != nil || s != "GRAFIC" {
		t.Errorf("ReadString = %q, %v; want GRAFIC", s, err)
	}
}

func TestFloat64sProperty(t *testing.T) {
	f := func(vals []float64) bool {
		var buf bytes.Buffer
		if err := NewWriter(&buf).WriteFloat64s(vals); err != nil {
			return false
		}
		got, err := NewReader(&buf).ReadFloat64s()
		if err != nil || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			// NaN-safe bit comparison.
			if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMarkerMismatch(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRecord([]byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-4] = 99 // corrupt the trailing marker
	_, err := NewReader(bytes.NewReader(raw)).ReadRecord()
	if !errors.Is(err, ErrRecordMismatch) {
		t.Errorf("got %v, want ErrRecordMismatch", err)
	}
}

func TestTruncatedRecords(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRecord(bytes.Repeat([]byte{7}, 100)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{2, 4, 50, len(full) - 2} {
		_, err := NewReader(bytes.NewReader(full[:cut])).ReadRecord()
		if err == nil {
			t.Errorf("truncation at %d bytes: expected error", cut)
		}
	}
}

func TestGarbageLengthRejected(t *testing.T) {
	raw := []byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0} // ~2 GiB marker
	if _, err := NewReader(bytes.NewReader(raw)).ReadRecord(); err == nil {
		t.Error("expected error for oversized record length")
	}
}

func TestTypedLengthValidation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRecord([]byte{1, 2, 3}); err != nil { // not a multiple of 4
		t.Fatal(err)
	}
	if _, err := NewReader(bytes.NewReader(buf.Bytes())).ReadFloat32s(); err == nil {
		t.Error("expected error reading 3-byte record as float32s")
	}
	if _, err := NewReader(bytes.NewReader(buf.Bytes())).ReadInt32(); err == nil {
		t.Error("expected error reading 3-byte record as a single int32")
	}
}

func TestSkipRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteRecord(bytes.Repeat([]byte{1}, 37))
	w.WriteInt32(5)
	r := NewReader(&buf)
	n, err := r.SkipRecord()
	if err != nil || n != 37 {
		t.Fatalf("SkipRecord = %d, %v; want 37", n, err)
	}
	if v, err := r.ReadInt32(); err != nil || v != 5 {
		t.Errorf("after skip: ReadInt32 = %d, %v; want 5", v, err)
	}
}

func TestWriterErrorSticky(t *testing.T) {
	w := NewWriter(failWriter{})
	if err := w.WriteInt32(1); err == nil {
		t.Fatal("expected write error")
	}
	if w.Err() == nil {
		t.Error("Err() should report the sticky error")
	}
	if err := w.WriteInt32(2); err == nil {
		t.Error("subsequent writes should keep failing")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }
