// Package fortranio reads and writes Fortran unformatted sequential files.
//
// RAMSES and GRAFIC exchange data as Fortran "unformatted" binary files: each
// record is framed by a 4-byte little-endian length marker before and after
// the payload. This package implements that framing plus typed helpers for
// the scalar and array payloads the cosmology pipeline uses.
package fortranio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrRecordMismatch is returned when the leading and trailing record length
// markers of a record disagree, which indicates a corrupt or non-Fortran file.
var ErrRecordMismatch = errors.New("fortranio: record length markers disagree")

// MaxRecordLen bounds the size of a single record accepted by Reader. Fortran
// compilers traditionally use a signed 32-bit marker, so a record can never
// legitimately exceed 2 GiB; we bound far lower to fail fast on garbage.
const MaxRecordLen = 1 << 30

// Writer emits Fortran unformatted sequential records to an io.Writer.
type Writer struct {
	w   io.Writer
	err error
}

// NewWriter returns a Writer emitting records to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first error encountered by the writer, if any.
func (w *Writer) Err() error { return w.err }

// WriteRecord writes one framed record holding the given payload.
func (w *Writer) WriteRecord(payload []byte) error {
	if w.err != nil {
		return w.err
	}
	if len(payload) > MaxRecordLen {
		w.err = fmt.Errorf("fortranio: record of %d bytes exceeds maximum %d", len(payload), MaxRecordLen)
		return w.err
	}
	var marker [4]byte
	binary.LittleEndian.PutUint32(marker[:], uint32(len(payload)))
	if _, err := w.w.Write(marker[:]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(payload); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(marker[:]); err != nil {
		w.err = err
		return err
	}
	return nil
}

// WriteInt32 writes a record holding a single 32-bit integer, the most common
// header record in GRAFIC/RAMSES files.
func (w *Writer) WriteInt32(v int32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(v))
	return w.WriteRecord(buf[:])
}

// WriteInt32s writes a record holding a slice of 32-bit integers.
func (w *Writer) WriteInt32s(vs []int32) error {
	buf := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	return w.WriteRecord(buf)
}

// WriteFloat32s writes a record holding a slice of 32-bit floats. GRAFIC
// stores density planes and particle data in single precision.
func (w *Writer) WriteFloat32s(vs []float32) error {
	buf := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	return w.WriteRecord(buf)
}

// WriteFloat64s writes a record holding a slice of 64-bit floats.
func (w *Writer) WriteFloat64s(vs []float64) error {
	buf := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return w.WriteRecord(buf)
}

// WriteString writes a record holding raw string bytes (no terminator),
// matching Fortran character(len=n) records.
func (w *Writer) WriteString(s string) error { return w.WriteRecord([]byte(s)) }

// Reader consumes Fortran unformatted sequential records from an io.Reader.
type Reader struct {
	r io.Reader
}

// NewReader returns a Reader consuming records from r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// ReadRecord reads the next framed record and returns its payload. It returns
// io.EOF cleanly when positioned at end of file.
func (r *Reader) ReadRecord() ([]byte, error) {
	var marker [4]byte
	if _, err := io.ReadFull(r.r, marker[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("fortranio: truncated leading marker: %w", err)
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(marker[:])
	if n > MaxRecordLen {
		return nil, fmt.Errorf("fortranio: record length %d exceeds maximum %d", n, MaxRecordLen)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r.r, payload); err != nil {
		return nil, fmt.Errorf("fortranio: truncated record payload: %w", err)
	}
	if _, err := io.ReadFull(r.r, marker[:]); err != nil {
		return nil, fmt.Errorf("fortranio: truncated trailing marker: %w", err)
	}
	if m := binary.LittleEndian.Uint32(marker[:]); m != n {
		return nil, fmt.Errorf("%w: leading %d trailing %d", ErrRecordMismatch, n, m)
	}
	return payload, nil
}

// ReadInt32 reads a record that must hold exactly one 32-bit integer.
func (r *Reader) ReadInt32() (int32, error) {
	p, err := r.ReadRecord()
	if err != nil {
		return 0, err
	}
	if len(p) != 4 {
		return 0, fmt.Errorf("fortranio: expected 4-byte int record, got %d bytes", len(p))
	}
	return int32(binary.LittleEndian.Uint32(p)), nil
}

// ReadInt32s reads a record holding 32-bit integers.
func (r *Reader) ReadInt32s() ([]int32, error) {
	p, err := r.ReadRecord()
	if err != nil {
		return nil, err
	}
	if len(p)%4 != 0 {
		return nil, fmt.Errorf("fortranio: int32 record length %d not a multiple of 4", len(p))
	}
	vs := make([]int32, len(p)/4)
	for i := range vs {
		vs[i] = int32(binary.LittleEndian.Uint32(p[4*i:]))
	}
	return vs, nil
}

// ReadFloat32s reads a record holding 32-bit floats.
func (r *Reader) ReadFloat32s() ([]float32, error) {
	p, err := r.ReadRecord()
	if err != nil {
		return nil, err
	}
	if len(p)%4 != 0 {
		return nil, fmt.Errorf("fortranio: float32 record length %d not a multiple of 4", len(p))
	}
	vs := make([]float32, len(p)/4)
	for i := range vs {
		vs[i] = math.Float32frombits(binary.LittleEndian.Uint32(p[4*i:]))
	}
	return vs, nil
}

// ReadFloat64s reads a record holding 64-bit floats.
func (r *Reader) ReadFloat64s() ([]float64, error) {
	p, err := r.ReadRecord()
	if err != nil {
		return nil, err
	}
	if len(p)%8 != 0 {
		return nil, fmt.Errorf("fortranio: float64 record length %d not a multiple of 8", len(p))
	}
	vs := make([]float64, len(p)/8)
	for i := range vs {
		vs[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
	}
	return vs, nil
}

// ReadString reads a record and returns its payload as a string.
func (r *Reader) ReadString() (string, error) {
	p, err := r.ReadRecord()
	if err != nil {
		return "", err
	}
	return string(p), nil
}

// SkipRecord discards the next record, returning its payload length.
func (r *Reader) SkipRecord() (int, error) {
	p, err := r.ReadRecord()
	if err != nil {
		return 0, err
	}
	return len(p), nil
}
