package grafic

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/cosmo"
)

func TestFieldFileRoundTrip(t *testing.T) {
	h := Header{
		N1: 4, N2: 4, N3: 4,
		Dx: 1.5, Ox: 10, Oy: 20, Oz: 30,
		Astart: 0.1, OmegaM: 0.24, OmegaL: 0.76, H0: 73,
	}
	data := make([]float32, 64)
	for i := range data {
		data[i] = float32(i) * 0.5
	}
	var buf bytes.Buffer
	if err := WriteField(&buf, h, data); err != nil {
		t.Fatal(err)
	}
	gh, gd, err := ReadField(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gh != h {
		t.Errorf("header round trip: got %+v, want %+v", gh, h)
	}
	for i := range data {
		if gd[i] != data[i] {
			t.Fatalf("data[%d] = %g, want %g", i, gd[i], data[i])
		}
	}
}

func TestWriteFieldSizeMismatch(t *testing.T) {
	h := Header{N1: 4, N2: 4, N3: 4}
	if err := WriteField(&bytes.Buffer{}, h, make([]float32, 10)); err == nil {
		t.Error("expected error for size mismatch")
	}
}

func TestReadFieldRejectsGarbage(t *testing.T) {
	if _, _, err := ReadField(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("expected error for truncated header")
	}
	// A header with negative dimensions.
	h := Header{N1: 2, N2: 2, N3: 2}
	var buf bytes.Buffer
	if err := WriteField(&buf, h, make([]float32, 8)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 0xFF // corrupt N1 into a negative number
	raw[5] = 0xFF
	raw[6] = 0xFF
	raw[7] = 0xFF
	if _, _, err := ReadField(bytes.NewReader(raw)); err == nil {
		t.Error("expected error for negative dimensions")
	}
}

func TestDeltaFileRoundTrip(t *testing.T) {
	g, err := New(cosmo.WMAP3(), 3)
	if err != nil {
		t.Fatal(err)
	}
	ics, err := g.SingleLevel(8, 100, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ics", "ic_deltab")
	if err := WriteDeltaFile(path, ics); err != nil {
		t.Fatal(err)
	}
	h, grid, err := ReadDeltaFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.N1 != 8 || h.Astart != 0.1 {
		t.Errorf("header %+v", h)
	}
	for i, v := range ics.Delta.Data {
		if diff := real(grid.Data[i]) - float64(float32(real(v))); diff != 0 {
			t.Fatalf("cell %d differs by %g after float32 round trip", i, diff)
		}
	}
}

func TestWriteDeltaFileWithoutDelta(t *testing.T) {
	ics := &ICs{Cosmo: cosmo.WMAP3(), Levels: []Level{{N: 8}}}
	if err := WriteDeltaFile(filepath.Join(t.TempDir(), "x"), ics); err == nil {
		t.Error("expected error when ICs carry no delta")
	}
}
