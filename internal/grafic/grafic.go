// Package grafic generates cosmological initial conditions the way the
// (modified) GRAFIC code does for RAMSES: Gaussian random fields consistent
// with a CDM power spectrum, turned into particle positions and velocities
// with the Zel'dovich approximation.
//
// Two modes are provided, matching the paper's §4:
//
//   - single level: the "standard" initial conditions used for the first,
//     low-resolution simulation from which the halo catalog is extracted;
//   - multiple levels: nested boxes of smaller and smaller dimensions, "as
//     for Russian dolls", used for the zoom re-simulations.
package grafic

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cosmo"
	"repro/internal/fft"
	"repro/internal/particles"
)

// Level describes one resolution level of a (possibly nested) set of initial
// conditions.
type Level struct {
	Index   int        // 0 = coarsest (top box)
	N       int        // grid points per axis at this level
	BoxSize float64    // comoving extent of this level's box, Mpc/h
	Origin  [3]float64 // lower corner in top-box units [0,1)
	Dx      float64    // cell size, Mpc/h
}

// ICs is a complete set of initial conditions at a single starting epoch.
type ICs struct {
	Cosmo  *cosmo.Params
	Astart float64 // starting expansion factor
	Box    float64 // top-level box size, Mpc/h
	Levels []Level
	Parts  particles.Set // positions in top-box units, velocities km/s
	Delta  *fft.Grid3    // top-level overdensity field at Astart (real part)
}

// Generator produces Gaussian random initial conditions. The zero value is
// not usable; construct with New.
type Generator struct {
	Cosmo *cosmo.Params
	Seed  int64
}

// New returns a Generator for the given cosmology and noise seed.
func New(c *cosmo.Params, seed int64) (*Generator, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &Generator{Cosmo: c, Seed: seed}, nil
}

// WhiteNoise returns an n³ grid of independent unit-variance Gaussian
// deviates, the raw material of every realisation. A given (seed, n, tag)
// triple always produces the same field.
func (g *Generator) WhiteNoise(n int, tag int64) (*fft.Grid3, error) {
	grid, err := fft.NewGrid3(n)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(g.Seed*1000003 + tag))
	for i := range grid.Data {
		grid.Data[i] = complex(rng.NormFloat64(), 0)
	}
	return grid, nil
}

// RollWhiteNoise cyclically shifts the noise grid by (sx, sy, sz) cells so
// that the region of interest lands at the box centre. This reproduces the
// paper's workflow step 3, "rollWhiteNoise: centering according to the
// offsets cx, cy and cz": re-using the *same* shifted noise keeps the zoom
// realisation consistent with the parent run.
func RollWhiteNoise(grid *fft.Grid3, sx, sy, sz int) *fft.Grid3 {
	n := grid.N
	out, _ := fft.NewGrid3(n) // same n, cannot fail
	mod := func(v int) int {
		v %= n
		if v < 0 {
			v += n
		}
		return v
	}
	for iz := 0; iz < n; iz++ {
		for iy := 0; iy < n; iy++ {
			for ix := 0; ix < n; ix++ {
				out.Set(mod(ix+sx), mod(iy+sy), mod(iz+sz), grid.At(ix, iy, iz))
			}
		}
	}
	return out
}

// deltaFromNoise filters white noise with the power spectrum at expansion
// factor a: δ(k) = W(k)·√(P(k)·N³/V), optionally keeping only modes with
// |k| > kMin (used to add small-scale power on zoom levels). The returned
// grid holds the real-space overdensity.
func (g *Generator) deltaFromNoise(noise *fft.Grid3, boxSize, a, kMin float64) (*fft.Grid3, error) {
	n := noise.N
	delta, err := fft.NewGrid3(n)
	if err != nil {
		return nil, err
	}
	copy(delta.Data, noise.Data)
	if err := fft.Forward3(delta); err != nil {
		return nil, err
	}
	vol := boxSize * boxSize * boxSize
	norm := float64(n*n*n) / vol
	for iz := 0; iz < n; iz++ {
		kz := fft.WaveNumber(iz, n, boxSize)
		for iy := 0; iy < n; iy++ {
			ky := fft.WaveNumber(iy, n, boxSize)
			for ix := 0; ix < n; ix++ {
				kx := fft.WaveNumber(ix, n, boxSize)
				k := math.Sqrt(kx*kx + ky*ky + kz*kz)
				idx := (iz*n+iy)*n + ix
				if k == 0 || k < kMin {
					delta.Data[idx] = 0
					continue
				}
				amp := math.Sqrt(g.Cosmo.PowerAt(k, a) * norm)
				delta.Data[idx] *= complex(amp, 0)
			}
		}
	}
	if err := fft.Inverse3(delta); err != nil {
		return nil, err
	}
	return delta, nil
}

// DeltaField returns a real-space overdensity realisation on an n³ grid for
// a box of boxSize Mpc/h at expansion factor a.
func (g *Generator) DeltaField(n int, boxSize, a float64) (*fft.Grid3, error) {
	noise, err := g.WhiteNoise(n, 0)
	if err != nil {
		return nil, err
	}
	return g.deltaFromNoise(noise, boxSize, a, 0)
}

// displacement computes the Zel'dovich displacement field ψ from an
// overdensity grid: ψ(k) = i·k·δ(k)/k², returned as three real-space grids in
// the same length units as boxSize (Mpc/h).
func displacement(delta *fft.Grid3, boxSize float64) ([3]*fft.Grid3, error) {
	n := delta.N
	dk, err := fft.NewGrid3(n)
	if err != nil {
		return [3]*fft.Grid3{}, err
	}
	copy(dk.Data, delta.Data)
	if err := fft.Forward3(dk); err != nil {
		return [3]*fft.Grid3{}, err
	}
	var psi [3]*fft.Grid3
	for d := 0; d < 3; d++ {
		psi[d], _ = fft.NewGrid3(n)
	}
	for iz := 0; iz < n; iz++ {
		kz := fft.WaveNumber(iz, n, boxSize)
		for iy := 0; iy < n; iy++ {
			ky := fft.WaveNumber(iy, n, boxSize)
			for ix := 0; ix < n; ix++ {
				kx := fft.WaveNumber(ix, n, boxSize)
				k2 := kx*kx + ky*ky + kz*kz
				idx := (iz*n+iy)*n + ix
				if k2 == 0 {
					continue
				}
				dv := dk.Data[idx]
				// ψ_d(k) = i k_d δ(k) / k²
				psi[0].Data[idx] = complex(0, kx/k2) * dv
				psi[1].Data[idx] = complex(0, ky/k2) * dv
				psi[2].Data[idx] = complex(0, kz/k2) * dv
			}
		}
	}
	for d := 0; d < 3; d++ {
		if err := fft.Inverse3(psi[d]); err != nil {
			return [3]*fft.Grid3{}, err
		}
	}
	return psi, nil
}

// SingleLevel generates standard single-level initial conditions: n³
// particles in a periodic box of boxSize Mpc/h at expansion factor astart.
// Particles start on the grid, displaced by the Zel'dovich approximation;
// velocities follow the linear growing mode.
func (g *Generator) SingleLevel(n int, boxSize, astart float64) (*ICs, error) {
	if astart <= 0 || astart > 1 {
		return nil, fmt.Errorf("grafic: astart must be in (0,1], got %g", astart)
	}
	delta, err := g.DeltaField(n, boxSize, astart)
	if err != nil {
		return nil, err
	}
	psi, err := displacement(delta, boxSize)
	if err != nil {
		return nil, err
	}
	parts := g.particlesFromDisplacement(psi, n, boxSize, astart, [3]float64{0, 0, 0}, 1, 0)
	ics := &ICs{
		Cosmo:  g.Cosmo,
		Astart: astart,
		Box:    boxSize,
		Levels: []Level{{Index: 0, N: n, BoxSize: boxSize, Dx: boxSize / float64(n)}},
		Parts:  parts,
		Delta:  delta,
	}
	ics.Parts.WrapAll()
	return ics, nil
}

// particlesFromDisplacement lays particles on the level grid and applies the
// Zel'dovich displacement and velocity. The level occupies a sub-box of
// physical size boxSize starting at origin (top-box units, extent =
// boxSize/topBox = frac). idBase offsets particle IDs so levels never clash.
func (g *Generator) particlesFromDisplacement(psi [3]*fft.Grid3, n int, boxSize, astart float64, origin [3]float64, frac float64, idBase int64) particles.Set {
	// Velocity prefactor: v_pec [km/s] = a H(a) f D ... with δ already scaled
	// to astart the displacement is D(a)ψ₀, so v = a H(a) f(a) ψ(astart)
	// where ψ is in comoving Mpc/h and H in (km/s)/(Mpc/h) = 100 E(a).
	velFactor := astart * 100 * g.Cosmo.E(astart) * g.Cosmo.GrowthRate(astart)
	mass := g.Cosmo.ParticleMass(boxSize, n)
	parts := make(particles.Set, 0, n*n*n)
	dxBox := frac / float64(n) // one level-cell in top-box units
	for iz := 0; iz < n; iz++ {
		for iy := 0; iy < n; iy++ {
			for ix := 0; ix < n; ix++ {
				idx := (iz*n+iy)*n + ix
				var pos, vel [3]float64
				q := [3]int{ix, iy, iz}
				for d := 0; d < 3; d++ {
					disp := real(psi[d].Data[idx]) // Mpc/h, comoving
					pos[d] = origin[d] + (float64(q[d])+0.5)*dxBox + disp/boxSize*frac
					vel[d] = velFactor * disp
				}
				parts = append(parts, particles.Particle{
					Pos:  pos,
					Vel:  vel,
					Mass: mass,
					ID:   idBase + int64(idx),
				})
			}
		}
	}
	return parts
}
