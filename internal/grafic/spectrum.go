package grafic

import (
	"fmt"
	"math"

	"repro/internal/fft"
)

// MeasurePower estimates the power spectrum of a real-space overdensity
// grid covering a box of boxSize Mpc/h: P(k) is averaged over spherical
// shells in k-space, inverting the convention used by deltaFromNoise
// (⟨|δ_k|²⟩ = P(k)·N³/V for the forward-DFT field). It returns the shell
// centres (h/Mpc), the measured P(k) in (Mpc/h)³ and the mode count per
// shell, which sets the sample variance of each estimate.
func MeasurePower(delta *fft.Grid3, boxSize float64, nbins int) (k []float64, pk []float64, modes []int, err error) {
	if nbins < 1 {
		return nil, nil, nil, fmt.Errorf("grafic: nbins must be >= 1, got %d", nbins)
	}
	n := delta.N
	work, err := fft.NewGrid3(n)
	if err != nil {
		return nil, nil, nil, err
	}
	copy(work.Data, delta.Data)
	if err := fft.Forward3(work); err != nil {
		return nil, nil, nil, err
	}
	kf := 2 * math.Pi / boxSize            // fundamental frequency
	kNyq := math.Pi * float64(n) / boxSize // Nyquist
	binW := (kNyq - kf) / float64(nbins)

	k = make([]float64, nbins)
	pk = make([]float64, nbins)
	modes = make([]int, nbins)
	for b := 0; b < nbins; b++ {
		k[b] = kf + (float64(b)+0.5)*binW
	}
	vol := boxSize * boxSize * boxSize
	norm := vol / (float64(n*n*n) * float64(n*n*n)) // |δ_k|² → P(k)

	for iz := 0; iz < n; iz++ {
		kz := fft.WaveNumber(iz, n, boxSize)
		for iy := 0; iy < n; iy++ {
			ky := fft.WaveNumber(iy, n, boxSize)
			for ix := 0; ix < n; ix++ {
				kx := fft.WaveNumber(ix, n, boxSize)
				kk := math.Sqrt(kx*kx + ky*ky + kz*kz)
				if kk < kf || kk >= kNyq {
					continue
				}
				b := int((kk - kf) / binW)
				if b < 0 || b >= nbins {
					continue
				}
				v := work.Data[(iz*n+iy)*n+ix]
				pk[b] += (real(v)*real(v) + imag(v)*imag(v)) * norm
				modes[b]++
			}
		}
	}
	for b := 0; b < nbins; b++ {
		if modes[b] > 0 {
			pk[b] /= float64(modes[b])
		}
	}
	return k, pk, modes, nil
}
