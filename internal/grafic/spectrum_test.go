package grafic

import (
	"math"
	"testing"

	"repro/internal/cosmo"
	"repro/internal/fft"
)

func TestMeasurePowerRecoversInputSpectrum(t *testing.T) {
	// The loop-closure test of the IC generator: the spectrum measured from
	// a realisation must match the cosmology's P(k,a) within the per-shell
	// sample variance (≈ P·√(2/modes)).
	c := cosmo.WMAP3()
	g, err := New(c, 12345)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	const box = 200.0
	const a = 0.5
	delta, err := g.DeltaField(n, box, a)
	if err != nil {
		t.Fatal(err)
	}
	k, pk, modes, err := MeasurePower(delta, box, 6)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for b := range k {
		if modes[b] < 50 {
			continue // too noisy to test
		}
		want := c.PowerAt(k[b], a)
		sigma := want * math.Sqrt(2/float64(modes[b]))
		// Allow 4σ plus a 10% binning/aliasing allowance.
		tol := 4*sigma + 0.1*want
		if math.Abs(pk[b]-want) > tol {
			t.Errorf("bin k=%.3f: measured %.4g, want %.4g ± %.2g (%d modes)",
				k[b], pk[b], want, tol, modes[b])
		}
		checked++
	}
	if checked < 3 {
		t.Fatalf("only %d usable bins; measurement too coarse", checked)
	}
}

func TestMeasurePowerGrowsWithA(t *testing.T) {
	c := cosmo.WMAP3()
	g, _ := New(c, 7)
	early, err := g.DeltaField(16, 100, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	late, err := g.DeltaField(16, 100, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	_, pe, _, err := MeasurePower(early, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, pl, _, err := MeasurePower(late, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	growth2 := math.Pow(c.GrowthFactor(0.8)/c.GrowthFactor(0.2), 2)
	for b := range pe {
		if pe[b] == 0 {
			continue
		}
		ratio := pl[b] / pe[b]
		// Same realisation, same seed: the ratio is exactly D²(0.8)/D²(0.2).
		if math.Abs(ratio-growth2)/growth2 > 1e-6 {
			t.Errorf("bin %d: power ratio %g, want exactly %g", b, ratio, growth2)
		}
	}
}

func TestMeasurePowerWhiteNoiseIsFlat(t *testing.T) {
	// White noise has P(k) = V/N³ independent of k.
	c := cosmo.WMAP3()
	g, _ := New(c, 99)
	noise, err := g.WhiteNoise(32, 0)
	if err != nil {
		t.Fatal(err)
	}
	const box = 100.0
	k, pk, modes, err := MeasurePower(noise, box, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := box * box * box / float64(32*32*32)
	for b := range k {
		if modes[b] < 100 {
			continue
		}
		sigma := want * math.Sqrt(2/float64(modes[b]))
		if math.Abs(pk[b]-want) > 5*sigma {
			t.Errorf("white-noise bin k=%.3f: %g, want %g ± %g", k[b], pk[b], want, 5*sigma)
		}
	}
}

func TestMeasurePowerValidation(t *testing.T) {
	grid, _ := fft.NewGrid3(8)
	if _, _, _, err := MeasurePower(grid, 100, 0); err == nil {
		t.Error("nbins=0 should fail")
	}
}
