package grafic

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/fft"
	"repro/internal/fortranio"
)

// Header is the GRAFIC field-file header: grid dimensions, cell size, box
// offsets, starting expansion factor and the cosmological parameters, stored
// as one Fortran record of 3 int32 + 8 float32 (44 bytes), exactly as the
// GRAFIC family of codes writes it.
type Header struct {
	N1, N2, N3     int32   // grid points per axis
	Dx             float32 // cell size, Mpc/h
	Ox, Oy, Oz     float32 // box offsets (zoom levels), Mpc/h
	Astart         float32 // starting expansion factor
	OmegaM, OmegaL float32
	H0             float32 // km/s/Mpc
}

// WriteField writes one GRAFIC field file: the header record followed by N3
// plane records of N1×N2 float32 values each.
func WriteField(w io.Writer, h Header, data []float32) error {
	n := int(h.N1) * int(h.N2) * int(h.N3)
	if len(data) != n {
		return fmt.Errorf("grafic: field has %d values, header says %d", len(data), n)
	}
	fw := fortranio.NewWriter(w)
	hdr := make([]byte, 0, 44)
	hdr = appendInt32(hdr, h.N1)
	hdr = appendInt32(hdr, h.N2)
	hdr = appendInt32(hdr, h.N3)
	for _, f := range []float32{h.Dx, h.Ox, h.Oy, h.Oz, h.Astart, h.OmegaM, h.OmegaL, h.H0} {
		hdr = appendFloat32(hdr, f)
	}
	if err := fw.WriteRecord(hdr); err != nil {
		return err
	}
	planeSize := int(h.N1) * int(h.N2)
	for iz := 0; iz < int(h.N3); iz++ {
		if err := fw.WriteFloat32s(data[iz*planeSize : (iz+1)*planeSize]); err != nil {
			return err
		}
	}
	return nil
}

// ReadField reads one GRAFIC field file written by WriteField.
func ReadField(r io.Reader) (Header, []float32, error) {
	fr := fortranio.NewReader(r)
	rec, err := fr.ReadRecord()
	if err != nil {
		return Header{}, nil, err
	}
	if len(rec) != 44 {
		return Header{}, nil, fmt.Errorf("grafic: header record is %d bytes, want 44", len(rec))
	}
	var h Header
	h.N1 = readInt32(rec[0:])
	h.N2 = readInt32(rec[4:])
	h.N3 = readInt32(rec[8:])
	floats := []*float32{&h.Dx, &h.Ox, &h.Oy, &h.Oz, &h.Astart, &h.OmegaM, &h.OmegaL, &h.H0}
	for i, p := range floats {
		*p = readFloat32(rec[12+4*i:])
	}
	if h.N1 <= 0 || h.N2 <= 0 || h.N3 <= 0 {
		return Header{}, nil, fmt.Errorf("grafic: invalid grid dims %dx%dx%d", h.N1, h.N2, h.N3)
	}
	planeSize := int(h.N1) * int(h.N2)
	data := make([]float32, 0, planeSize*int(h.N3))
	for iz := 0; iz < int(h.N3); iz++ {
		plane, err := fr.ReadFloat32s()
		if err != nil {
			return Header{}, nil, fmt.Errorf("grafic: reading plane %d: %w", iz, err)
		}
		if len(plane) != planeSize {
			return Header{}, nil, fmt.Errorf("grafic: plane %d has %d values, want %d", iz, len(plane), planeSize)
		}
		data = append(data, plane...)
	}
	return h, data, nil
}

// WriteDeltaFile writes the top-level overdensity field of ics (the
// "ic_deltab" file of the GRAFIC convention) to path.
func WriteDeltaFile(path string, ics *ICs) error {
	if ics.Delta == nil {
		return fmt.Errorf("grafic: ICs carry no delta field")
	}
	lvl := ics.Levels[0]
	h := Header{
		N1: int32(lvl.N), N2: int32(lvl.N), N3: int32(lvl.N),
		Dx:     float32(lvl.Dx),
		Astart: float32(ics.Astart),
		OmegaM: float32(ics.Cosmo.OmegaM),
		OmegaL: float32(ics.Cosmo.OmegaL),
		H0:     float32(100 * ics.Cosmo.H),
	}
	data := make([]float32, len(ics.Delta.Data))
	for i, v := range ics.Delta.Data {
		data[i] = float32(real(v))
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := WriteField(bw, h, data); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadDeltaFile reads a field file from path and returns its header and a
// complex grid ready for FFT work.
func ReadDeltaFile(path string) (Header, *fft.Grid3, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, nil, err
	}
	defer f.Close()
	h, data, err := ReadField(bufio.NewReader(f))
	if err != nil {
		return Header{}, nil, err
	}
	if h.N1 != h.N2 || h.N2 != h.N3 {
		return Header{}, nil, fmt.Errorf("grafic: non-cubic field %dx%dx%d", h.N1, h.N2, h.N3)
	}
	grid, err := fft.NewGrid3(int(h.N1))
	if err != nil {
		return Header{}, nil, err
	}
	for i, v := range data {
		grid.Data[i] = complex(float64(v), 0)
	}
	return h, grid, nil
}

func appendInt32(b []byte, v int32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendFloat32(b []byte, v float32) []byte {
	bits := math.Float32bits(v)
	return append(b, byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24))
}

func readInt32(b []byte) int32 {
	return int32(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
}

func readFloat32(b []byte) float32 {
	return math.Float32frombits(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
}
