package grafic

import (
	"math"
	"testing"

	"repro/internal/cosmo"
)

func newGen(t *testing.T, seed int64) *Generator {
	t.Helper()
	g, err := New(cosmo.WMAP3(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewRejectsBadCosmology(t *testing.T) {
	if _, err := New(&cosmo.Params{}, 1); err == nil {
		t.Error("expected error for invalid cosmology")
	}
}

func TestWhiteNoiseStatistics(t *testing.T) {
	g := newGen(t, 7)
	grid, err := g.WhiteNoise(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	n3 := float64(len(grid.Data))
	var mean, m2 float64
	for _, v := range grid.Data {
		mean += real(v)
	}
	mean /= n3
	for _, v := range grid.Data {
		d := real(v) - mean
		m2 += d * d
	}
	variance := m2 / n3
	if math.Abs(mean) > 4/math.Sqrt(n3) {
		t.Errorf("white-noise mean %g too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("white-noise variance %g, want ≈ 1", variance)
	}
}

func TestWhiteNoiseDeterminism(t *testing.T) {
	g1 := newGen(t, 42)
	g2 := newGen(t, 42)
	a, _ := g1.WhiteNoise(8, 3)
	b, _ := g2.WhiteNoise(8, 3)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed+tag must reproduce the field")
		}
	}
	c, _ := g1.WhiteNoise(8, 4)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different tags must give different noise")
	}
}

func TestRollWhiteNoise(t *testing.T) {
	g := newGen(t, 1)
	grid, _ := g.WhiteNoise(8, 0)
	rolled := RollWhiteNoise(grid, 3, -2, 8) // 8 ≡ 0 mod 8
	for iz := 0; iz < 8; iz++ {
		for iy := 0; iy < 8; iy++ {
			for ix := 0; ix < 8; ix++ {
				want := grid.At(ix, iy, iz)
				got := rolled.At((ix+3)%8, ((iy-2)%8+8)%8, iz)
				if got != want {
					t.Fatalf("roll broken at (%d,%d,%d)", ix, iy, iz)
				}
			}
		}
	}
	// Rolling back must restore the field.
	back := RollWhiteNoise(rolled, -3, 2, 0)
	for i := range grid.Data {
		if back.Data[i] != grid.Data[i] {
			t.Fatal("roll is not invertible")
		}
	}
}

func TestDeltaFieldZeroMean(t *testing.T) {
	g := newGen(t, 5)
	delta, err := g.DeltaField(16, 100, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, v := range delta.Data {
		mean += real(v)
		if math.Abs(imag(v)) > 1e-9 {
			t.Fatalf("delta has imaginary part %g", imag(v))
		}
	}
	mean /= float64(len(delta.Data))
	if math.Abs(mean) > 1e-10 {
		t.Errorf("delta mean %g, want 0 (k=0 mode removed)", mean)
	}
}

func TestDeltaFieldGrowsWithA(t *testing.T) {
	g := newGen(t, 5)
	rms := func(a float64) float64 {
		delta, err := g.DeltaField(16, 100, a)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, v := range delta.Data {
			sum += real(v) * real(v)
		}
		return math.Sqrt(sum / float64(len(delta.Data)))
	}
	r1, r2 := rms(0.2), rms(0.8)
	c := cosmo.WMAP3()
	wantRatio := c.GrowthFactor(0.8) / c.GrowthFactor(0.2)
	gotRatio := r2 / r1
	if math.Abs(gotRatio-wantRatio)/wantRatio > 1e-6 {
		t.Errorf("rms ratio %g, want growth ratio %g", gotRatio, wantRatio)
	}
}

func TestSingleLevelICs(t *testing.T) {
	g := newGen(t, 11)
	const n = 16
	ics, err := g.SingleLevel(n, 100, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ics.Parts) != n*n*n {
		t.Fatalf("%d particles, want %d", len(ics.Parts), n*n*n)
	}
	if err := ics.Parts.Validate(); err != nil {
		t.Fatalf("IC particles invalid: %v", err)
	}
	// Mass conservation: total = ΩM·ρc·V exactly.
	want := ics.Cosmo.OmegaM * cosmo.RhoCritMsunMpc3 * 100 * 100 * 100
	got := ics.Parts.TotalMass()
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("total mass %g, want %g", got, want)
	}
	// Displacements from the grid should be small at a=0.1 (linear regime):
	// every particle stays within a cell or two of its Lagrangian point.
	maxDisp := 0.0
	cell := 1.0 / n
	i := 0
	for iz := 0; iz < n; iz++ {
		for iy := 0; iy < n; iy++ {
			for ix := 0; ix < n; ix++ {
				q := [3]float64{(float64(ix) + 0.5) / n, (float64(iy) + 0.5) / n, (float64(iz) + 0.5) / n}
				p := ics.Parts[i]
				for d := 0; d < 3; d++ {
					dd := math.Abs(p.Pos[d] - q[d])
					if dd > 0.5 {
						dd = 1 - dd
					}
					if dd > maxDisp {
						maxDisp = dd
					}
				}
				i++
			}
		}
	}
	if maxDisp > 2*cell {
		t.Errorf("max Zel'dovich displacement %g box units exceeds 2 cells (%g)", maxDisp, 2*cell)
	}
	if ics.Delta == nil || len(ics.Levels) != 1 {
		t.Error("single-level ICs should carry one level and the delta field")
	}
}

func TestSingleLevelVelocityDisplacementCoherence(t *testing.T) {
	// The Zel'dovich growing mode makes velocity exactly parallel to
	// displacement: v = f(a)·disp with a single global factor.
	g := newGen(t, 13)
	const n = 8
	astart := 0.15
	ics, err := g.SingleLevel(n, 50, astart)
	if err != nil {
		t.Fatal(err)
	}
	velFactor := astart * 100 * ics.Cosmo.E(astart) * ics.Cosmo.GrowthRate(astart)
	i := 0
	for iz := 0; iz < n; iz++ {
		for iy := 0; iy < n; iy++ {
			for ix := 0; ix < n; ix++ {
				q := [3]float64{(float64(ix) + 0.5) / n, (float64(iy) + 0.5) / n, (float64(iz) + 0.5) / n}
				p := ics.Parts[i]
				for d := 0; d < 3; d++ {
					dispBox := p.Pos[d] - q[d]
					if dispBox > 0.5 {
						dispBox -= 1
					}
					if dispBox < -0.5 {
						dispBox += 1
					}
					dispMpc := dispBox * 50
					wantVel := velFactor * dispMpc
					if math.Abs(p.Vel[d]-wantVel) > 1e-6*(1+math.Abs(wantVel)) {
						t.Fatalf("particle %d dim %d: vel %g, want %g", i, d, p.Vel[d], wantVel)
					}
				}
				i++
			}
		}
	}
}

func TestSingleLevelRejectsBadAstart(t *testing.T) {
	g := newGen(t, 1)
	for _, a := range []float64{0, -0.5, 1.5} {
		if _, err := g.SingleLevel(8, 100, a); err == nil {
			t.Errorf("astart=%g should be rejected", a)
		}
	}
}

func TestMultiLevelTiling(t *testing.T) {
	g := newGen(t, 21)
	const n = 8
	for _, nLevels := range []int{2, 3} {
		ics, err := g.MultiLevel(n, 100, 0.1, [3]float64{0.5, 0.5, 0.5}, nLevels)
		if err != nil {
			t.Fatalf("nLevels=%d: %v", nLevels, err)
		}
		// Each level contributes n³ cells minus the (n/2)³ covered by the
		// next finer box; the finest contributes all n³.
		want := nLevels*n*n*n - (nLevels-1)*(n/2)*(n/2)*(n/2)
		if len(ics.Parts) != want {
			t.Errorf("nLevels=%d: %d particles, want %d", nLevels, len(ics.Parts), want)
		}
		if err := ics.Parts.Validate(); err != nil {
			t.Errorf("nLevels=%d: invalid particles: %v", nLevels, err)
		}
		// Mass is conserved exactly: replacing a coarse region by 8× finer
		// particles keeps the total.
		wantMass := ics.Cosmo.OmegaM * cosmo.RhoCritMsunMpc3 * 1e6
		if got := ics.Parts.TotalMass(); math.Abs(got-wantMass)/wantMass > 1e-9 {
			t.Errorf("nLevels=%d: total mass %g, want %g", nLevels, got, wantMass)
		}
		if len(ics.Levels) != nLevels {
			t.Errorf("nLevels=%d: %d level records", nLevels, len(ics.Levels))
		}
	}
}

func TestMultiLevelResolutionContrast(t *testing.T) {
	// Inside the zoom box particles are 8× lighter per level.
	g := newGen(t, 23)
	const n = 8
	center := [3]float64{0.5, 0.5, 0.5}
	ics, err := g.MultiLevel(n, 100, 0.1, center, 2)
	if err != nil {
		t.Fatal(err)
	}
	massTop := ics.Cosmo.ParticleMass(100, n)
	var light, heavy int
	for _, p := range ics.Parts {
		switch {
		case math.Abs(p.Mass-massTop) < 1e-6*massTop:
			heavy++
		case math.Abs(p.Mass-massTop/8) < 1e-6*massTop:
			light++
		default:
			t.Fatalf("unexpected particle mass %g", p.Mass)
		}
	}
	if light != n*n*n {
		t.Errorf("%d fine particles, want %d", light, n*n*n)
	}
	if heavy != n*n*n-(n/2)*(n/2)*(n/2) {
		t.Errorf("%d coarse particles, want %d", heavy, n*n*n-(n/2)*(n/2)*(n/2))
	}
}

func TestMultiLevelOneLevelEqualsSingle(t *testing.T) {
	g1 := newGen(t, 31)
	g2 := newGen(t, 31)
	a, err := g1.MultiLevel(8, 100, 0.1, [3]float64{0.3, 0.3, 0.3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g2.SingleLevel(8, 100, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Parts) != len(b.Parts) {
		t.Fatalf("sizes differ: %d vs %d", len(a.Parts), len(b.Parts))
	}
	for i := range a.Parts {
		if a.Parts[i] != b.Parts[i] {
			t.Fatal("MultiLevel(1) must equal SingleLevel")
		}
	}
}

func TestMultiLevelRejectsBadArgs(t *testing.T) {
	g := newGen(t, 1)
	if _, err := g.MultiLevel(8, 100, 0.1, [3]float64{}, 0); err == nil {
		t.Error("nLevels=0 should be rejected")
	}
	if _, err := g.MultiLevel(8, 100, 2.0, [3]float64{}, 2); err == nil {
		t.Error("astart>1 should be rejected")
	}
}
