package grafic

import (
	"fmt"
	"math"

	"repro/internal/fft"
	"repro/internal/particles"
)

// MultiLevel generates nested "Russian doll" initial conditions for a zoom
// re-simulation (paper §4, "multiple levels"). nLevels is the total number of
// boxes including the top one; each finer box has half the side of its parent
// and is centred on `center` (top-box units), so the finest box is sampled at
// 2^(nLevels-1)× the top-level resolution. Long-wavelength modes on a fine
// level are inherited from its parent field; small-scale power above the
// parent's Nyquist frequency is added from fresh noise, keeping the
// realisation consistent across levels.
//
// The returned particle set tiles the whole volume exactly once: each level
// contributes its cells except where the next finer box takes over.
func (g *Generator) MultiLevel(n int, topBox, astart float64, center [3]float64, nLevels int) (*ICs, error) {
	if nLevels < 1 {
		return nil, fmt.Errorf("grafic: nLevels must be >= 1, got %d", nLevels)
	}
	if nLevels == 1 {
		return g.SingleLevel(n, topBox, astart)
	}
	if astart <= 0 || astart > 1 {
		return nil, fmt.Errorf("grafic: astart must be in (0,1], got %g", astart)
	}

	ics := &ICs{Cosmo: g.Cosmo, Astart: astart, Box: topBox}
	deltas := make([]*fft.Grid3, nLevels)
	levels := make([]Level, nLevels)

	for l := 0; l < nLevels; l++ {
		frac := math.Pow(0.5, float64(l))
		boxSize := topBox * frac
		var origin [3]float64
		if l > 0 {
			for d := 0; d < 3; d++ {
				origin[d] = particles.Wrap(center[d] - frac/2)
			}
		}
		levels[l] = Level{Index: l, N: n, BoxSize: boxSize, Origin: origin, Dx: boxSize / float64(n)}

		if l == 0 {
			d0, err := g.DeltaField(n, boxSize, astart)
			if err != nil {
				return nil, err
			}
			deltas[0] = d0
			continue
		}
		// Small-scale power above the parent Nyquist frequency, from fresh
		// noise tagged by level so realisations are reproducible per level.
		parent := levels[l-1]
		kNyqParent := math.Pi / parent.Dx
		noise, err := g.WhiteNoise(n, int64(l))
		if err != nil {
			return nil, err
		}
		small, err := g.deltaFromNoise(noise, boxSize, astart, kNyqParent)
		if err != nil {
			return nil, err
		}
		// Long-wavelength part: trilinear sample of the parent level's field
		// at this level's cell centres. For l >= 2 the parent box is treated
		// as periodic over its own extent — a boundary approximation that is
		// standard for nested-grid IC generators at this fidelity.
		combined, _ := fft.NewGrid3(n)
		for iz := 0; iz < n; iz++ {
			for iy := 0; iy < n; iy++ {
				for ix := 0; ix < n; ix++ {
					pos := [3]float64{
						origin[0] + (float64(ix)+0.5)*frac/float64(n),
						origin[1] + (float64(iy)+0.5)*frac/float64(n),
						origin[2] + (float64(iz)+0.5)*frac/float64(n),
					}
					long := sampleTrilinear(deltas[l-1], pos, parent.Origin, math.Pow(0.5, float64(l-1)))
					idx := (iz*n+iy)*n + ix
					combined.Data[idx] = complex(long+real(small.Data[idx]), 0)
				}
			}
		}
		deltas[l] = combined
	}

	// Generate particles level by level, masking out the region the next
	// finer level covers so the volume is tiled exactly once.
	var all particles.Set
	for l := 0; l < nLevels; l++ {
		psi, err := displacement(deltas[l], levels[l].BoxSize)
		if err != nil {
			return nil, err
		}
		var skip func(q [3]float64) bool
		if l < nLevels-1 {
			next := levels[l+1]
			nextFrac := math.Pow(0.5, float64(l+1))
			skip = func(q [3]float64) bool { return inBox(q, next.Origin, nextFrac) }
		}
		frac := math.Pow(0.5, float64(l))
		lvlParts := g.levelParticles(psi, n, topBox, astart, levels[l].Origin, frac, int64(l)<<40, skip)
		all = append(all, lvlParts...)
	}
	all.WrapAll()

	ics.Levels = levels
	ics.Parts = all
	ics.Delta = deltas[0]
	return ics, nil
}

// levelParticles lays particles on one level's grid (skipping masked cells)
// and applies the Zel'dovich displacement and linear velocities.
func (g *Generator) levelParticles(psi [3]*fft.Grid3, n int, topBox, astart float64, origin [3]float64, frac float64, idBase int64, skip func([3]float64) bool) particles.Set {
	velFactor := astart * 100 * g.Cosmo.E(astart) * g.Cosmo.GrowthRate(astart)
	boxSize := topBox * frac
	mass := g.Cosmo.ParticleMass(boxSize, n)
	var parts particles.Set
	dxBox := frac / float64(n)
	for iz := 0; iz < n; iz++ {
		for iy := 0; iy < n; iy++ {
			for ix := 0; ix < n; ix++ {
				q := [3]float64{
					particles.Wrap(origin[0] + (float64(ix)+0.5)*dxBox),
					particles.Wrap(origin[1] + (float64(iy)+0.5)*dxBox),
					particles.Wrap(origin[2] + (float64(iz)+0.5)*dxBox),
				}
				if skip != nil && skip(q) {
					continue
				}
				idx := (iz*n+iy)*n + ix
				var pos, vel [3]float64
				for d := 0; d < 3; d++ {
					disp := real(psi[d].Data[idx]) // Mpc/h comoving
					pos[d] = q[d] + disp/topBox
					vel[d] = velFactor * disp
				}
				parts = append(parts, particles.Particle{Pos: pos, Vel: vel, Mass: mass, ID: idBase + int64(idx)})
			}
		}
	}
	return parts
}

// inBox reports whether position q (top-box units) lies inside the axis-
// aligned periodic box at origin with side frac.
func inBox(q, origin [3]float64, frac float64) bool {
	for d := 0; d < 3; d++ {
		rel := particles.Wrap(q[d] - origin[d])
		if rel >= frac {
			return false
		}
	}
	return true
}

// sampleTrilinear samples grid (covering the box at parentOrigin with side
// parentFrac, in top-box units) at position pos with periodic trilinear
// interpolation in the grid's own coordinates.
func sampleTrilinear(grid *fft.Grid3, pos, parentOrigin [3]float64, parentFrac float64) float64 {
	n := grid.N
	var f [3]float64
	var i0 [3]int
	for d := 0; d < 3; d++ {
		rel := particles.Wrap(pos[d]-parentOrigin[d]) / parentFrac // [0,1) in parent box
		u := rel*float64(n) - 0.5                                  // cell-centre aligned
		base := math.Floor(u)
		f[d] = u - base
		i0[d] = int(base)
	}
	mod := func(v int) int {
		v %= n
		if v < 0 {
			v += n
		}
		return v
	}
	var sum float64
	for dz := 0; dz < 2; dz++ {
		wz := f[2]
		if dz == 0 {
			wz = 1 - f[2]
		}
		for dy := 0; dy < 2; dy++ {
			wy := f[1]
			if dy == 0 {
				wy = 1 - f[1]
			}
			for dx := 0; dx < 2; dx++ {
				wx := f[0]
				if dx == 0 {
					wx = 1 - f[0]
				}
				v := real(grid.At(mod(i0[0]+dx), mod(i0[1]+dy), mod(i0[2]+dz)))
				sum += wx * wy * wz * v
			}
		}
	}
	return sum
}
