package nbody

import (
	"fmt"
	"math"

	"repro/internal/hilbert"
	"repro/internal/mpich"
	"repro/internal/particles"
)

// The parallel driver mirrors the paper's RAMSES3d MPI code: the volume is
// partitioned among ranks along the Peano–Hilbert curve, each rank owns the
// particles in its curve segment, the mesh density is combined with an
// all-reduce (replicated mesh), every rank solves the identical FFT, and
// particles migrate between ranks after each drift.

// DefaultHilbertOrder is the curve order used for domain decomposition; 4³
// cells per axis (4096 curve cells) is ample for the rank counts used here.
const DefaultHilbertOrder uint = 4

// SplitByDomain partitions a particle set into per-rank subsets according to
// the Hilbert domains. Returned subsets are freshly allocated.
func SplitByDomain(parts particles.Set, domains []hilbert.Domain, order uint) []particles.Set {
	out := make([]particles.Set, len(domains))
	for i := range parts {
		p := parts[i]
		d := hilbert.CellIndex(p.Pos[0], p.Pos[1], p.Pos[2], order)
		r := hilbert.OwnerOf(domains, d)
		if r < 0 {
			r = len(domains) - 1 // empty trailing domains absorb nothing; clamp
		}
		out[r] = append(out[r], p)
	}
	return out
}

// rankStep advances one rank's local particles by one KDK step, cooperating
// with the other ranks for the global density and particle migration.
func rankStep(comm *mpich.Comm, s *Solver, local particles.Set, domains []hilbert.Domain, order uint, a, da float64) (particles.Set, error) {
	n := s.p.Ng

	globalDelta := func(parts particles.Set) []float64 {
		raw := make([]float64, n*n*n)
		var mass float64
		for i := range parts {
			mass += parts[i].Mass
			depositCIC(raw, n, parts[i].Pos, parts[i].Mass)
		}
		raw = comm.AllReduce(mpich.OpSum, raw)
		mass = comm.AllReduceScalar(mpich.OpSum, mass)
		mean := mass / float64(n*n*n)
		delta := make([]float64, len(raw))
		if mean == 0 {
			for i := range delta {
				delta[i] = -1
			}
			return delta
		}
		for i := range raw {
			delta[i] = raw[i]/mean - 1
		}
		return delta
	}

	if s.accA != a {
		if err := s.Solve(globalDelta(local), a); err != nil {
			return nil, err
		}
	}
	s.kickDrift(local, a, da)

	// Migrate particles that drifted out of this rank's Hilbert segment.
	send := make([]any, comm.Size())
	var keep particles.Set
	outgoing := make([]particles.Set, comm.Size())
	for i := range local {
		p := local[i]
		d := hilbert.CellIndex(p.Pos[0], p.Pos[1], p.Pos[2], order)
		r := hilbert.OwnerOf(domains, d)
		if r == comm.Rank() || r < 0 {
			keep = append(keep, p)
		} else {
			outgoing[r] = append(outgoing[r], p)
		}
	}
	for r := 0; r < comm.Size(); r++ {
		if r == comm.Rank() {
			send[r] = keep
		} else {
			send[r] = outgoing[r]
		}
	}
	recvd, err := comm.AllToAll(send)
	if err != nil {
		return nil, err
	}
	local = local[:0]
	for _, v := range recvd {
		local = append(local, v.(particles.Set)...)
	}

	aNew := a + da
	if err := s.Solve(globalDelta(local), aNew); err != nil {
		return nil, err
	}
	s.secondKick(local, a, aNew, da)
	return local, nil
}

// RunRank executes the SPMD loop for one rank from a0 to a1 in nsteps equal
// steps, starting from the rank's local particle subset, and returns the
// rank's final local particles.
func RunRank(comm *mpich.Comm, p Params, local particles.Set, domains []hilbert.Domain, order uint, a0, a1 float64, nsteps int) (particles.Set, error) {
	if a1 <= a0 {
		return nil, fmt.Errorf("nbody: a1 %g must exceed a0 %g", a1, a0)
	}
	if nsteps <= 0 {
		return nil, fmt.Errorf("nbody: nsteps must be positive, got %d", nsteps)
	}
	s, err := New(p)
	if err != nil {
		return nil, err
	}
	da := (a1 - a0) / float64(nsteps)
	a := a0
	for step := 0; step < nsteps; step++ {
		local, err = rankStep(comm, s, local, domains, order, a, da)
		if err != nil {
			return nil, fmt.Errorf("nbody: rank %d step %d: %w", comm.Rank(), step, err)
		}
		a += da
	}
	return local, nil
}

// SimulateParallel runs a complete parallel simulation on nranks in-process
// ranks and returns the merged final particle set (sorted by ID for
// determinism). It is the library-level equivalent of "mpirun -np N
// ramses3d" inside one machine.
func SimulateParallel(nranks int, p Params, parts particles.Set, a0, a1 float64, nsteps int) (particles.Set, error) {
	order := DefaultHilbertOrder
	for uint64(nranks) > uint64(1)<<(3*order) {
		order++ // enough curve cells for very wide runs
	}
	domains, err := hilbert.Decompose(order, nranks)
	if err != nil {
		return nil, err
	}
	split := SplitByDomain(parts, domains, order)

	results := make([]particles.Set, nranks)
	err = mpich.Run(nranks, func(comm *mpich.Comm) error {
		local, err := RunRank(comm, p, split[comm.Rank()], domains, order, a0, a1, nsteps)
		if err != nil {
			return err
		}
		results[comm.Rank()] = local
		return nil
	})
	if err != nil {
		return nil, err
	}
	var merged particles.Set
	for _, r := range results {
		merged = append(merged, r...)
	}
	merged.SortByID()
	return merged, nil
}

// CostModel estimates the floating-point work of a PM simulation, used by
// the platform simulator to convert problem sizes into wall-clock times on
// modelled CPUs. The two terms are the per-step FFT solve (two solves of
// 3·5·N³·log2(N³) flops each per KDK step) and the per-particle work
// (deposit + 2 kicks + drift ≈ 250 flops per particle per step).
func CostModel(ng, nparts, nsteps int) float64 {
	n3 := float64(ng) * float64(ng) * float64(ng)
	fftFlops := 2 * 3 * 5 * n3 * math.Log2(n3)
	partFlops := 250 * float64(nparts)
	return float64(nsteps) * (fftFlops + partFlops)
}
