package nbody

import (
	"math"
	"testing"

	"repro/internal/cosmo"
	"repro/internal/grafic"
	"repro/internal/particles"
)

func newSolver(t *testing.T, ng int) *Solver {
	t.Helper()
	s, err := New(Params{Ng: ng, Box: 100, Cosmo: cosmo.WMAP3()})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	c := cosmo.WMAP3()
	bad := []Params{
		{Ng: 12, Box: 100, Cosmo: c},
		{Ng: 16, Box: 0, Cosmo: c},
		{Ng: 16, Box: 100, Cosmo: nil},
		{Ng: 16, Box: 100, Cosmo: &cosmo.Params{}},
	}
	for i, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestMomentumConversionRoundTrip(t *testing.T) {
	for _, v := range []float64{-300, 0, 42.5, 1000} {
		p := MomentumFromVel(v, 0.5, 100)
		if got := VelFromMomentum(p, 0.5, 100); math.Abs(got-v) > 1e-12 {
			t.Errorf("round trip %g -> %g", v, got)
		}
	}
}

func TestDensityMassConservation(t *testing.T) {
	s := newSolver(t, 8)
	parts := particles.Set{
		{Pos: [3]float64{0.1, 0.2, 0.3}, Mass: 3, ID: 1},
		{Pos: [3]float64{0.9, 0.95, 0.01}, Mass: 5, ID: 2}, // straddles the wrap
	}
	delta := s.Density(parts)
	// Sum of (1+delta)*meanMass over cells = total mass.
	var sum float64
	for _, d := range delta {
		sum += d + 1
	}
	mean := 8.0 / float64(8*8*8)
	if got := sum * mean; math.Abs(got-8) > 1e-9 {
		t.Errorf("deposited mass %g, want 8", got)
	}
}

func TestDensityUniformLattice(t *testing.T) {
	// Particles exactly at every cell centre give delta == 0 everywhere.
	const n = 8
	s := newSolver(t, n)
	var parts particles.Set
	id := int64(0)
	for iz := 0; iz < n; iz++ {
		for iy := 0; iy < n; iy++ {
			for ix := 0; ix < n; ix++ {
				parts = append(parts, particles.Particle{
					Pos:  [3]float64{(float64(ix) + 0.5) / n, (float64(iy) + 0.5) / n, (float64(iz) + 0.5) / n},
					Mass: 1, ID: id,
				})
				id++
			}
		}
	}
	delta := s.Density(parts)
	for i, d := range delta {
		if math.Abs(d) > 1e-9 {
			t.Fatalf("delta[%d] = %g, want 0 on a uniform lattice", i, d)
		}
	}
}

func TestDensityEmptySet(t *testing.T) {
	s := newSolver(t, 8)
	delta := s.Density(nil)
	for _, d := range delta {
		if d != -1 {
			t.Fatal("empty set should give delta = -1 everywhere")
		}
	}
}

func TestPotentialSingleMode(t *testing.T) {
	// For delta = cos(2πx), the discrete solve gives
	// phi = -coef/k_eff² · cos(2πx); check the ratio at every cell.
	const n = 16
	s := newSolver(t, n)
	delta := make([]float64, n*n*n)
	for iz := 0; iz < n; iz++ {
		for iy := 0; iy < n; iy++ {
			for ix := 0; ix < n; ix++ {
				delta[(iz*n+iy)*n+ix] = math.Cos(2 * math.Pi * float64(ix) / n)
			}
		}
	}
	a := 0.5
	if err := s.Potential(delta, a); err != nil {
		t.Fatal(err)
	}
	coef := 1.5 * s.p.Cosmo.OmegaM / a
	keff := 2 * float64(n) * math.Sin(math.Pi/float64(n))
	want := -coef / (keff * keff)
	for ix := 0; ix < n; ix++ {
		got := real(s.phi.Data[ix])
		expect := want * math.Cos(2*math.Pi*float64(ix)/n)
		if math.Abs(got-expect) > 1e-9 {
			t.Fatalf("phi[%d] = %g, want %g", ix, got, expect)
		}
	}
}

func TestPotentialArgValidation(t *testing.T) {
	s := newSolver(t, 8)
	if err := s.Potential(make([]float64, 10), 0.5); err == nil {
		t.Error("expected error for wrong delta size")
	}
	if err := s.Potential(make([]float64, 512), 0); err == nil {
		t.Error("expected error for a=0")
	}
}

func TestAccelPointsTowardMass(t *testing.T) {
	// A single heavy particle at the centre: accelerations at nearby test
	// points must point toward it.
	const n = 16
	s := newSolver(t, n)
	parts := particles.Set{{Pos: [3]float64{0.5, 0.5, 0.5}, Mass: 1000, ID: 1}}
	if err := s.Solve(s.Density(parts), 0.5); err != nil {
		t.Fatal(err)
	}
	probe := [3]float64{0.5 + 4.0/n, 0.5, 0.5}
	g := s.AccelAt(probe)
	if g[0] >= 0 {
		t.Errorf("acceleration x = %g at +x probe, want negative (toward mass)", g[0])
	}
	if math.Abs(g[1]) > math.Abs(g[0])*0.05 || math.Abs(g[2]) > math.Abs(g[0])*0.05 {
		t.Errorf("transverse acceleration too large: %v", g)
	}
	// Symmetry: the mirrored probe sees the mirrored force.
	g2 := s.AccelAt([3]float64{0.5 - 4.0/n, 0.5, 0.5})
	if math.Abs(g2[0]+g[0]) > 1e-9*math.Abs(g[0]) {
		t.Errorf("force not symmetric: %g vs %g", g2[0], g[0])
	}
}

func TestStepMomentumConservation(t *testing.T) {
	// Two equal masses attract symmetrically; net momentum stays ~0 and
	// they approach one another.
	const n = 16
	s := newSolver(t, n)
	parts := particles.Set{
		{Pos: [3]float64{0.4, 0.5, 0.5}, Mass: 500, ID: 1},
		{Pos: [3]float64{0.6, 0.5, 0.5}, Mass: 500, ID: 2},
	}
	sep0 := math.Abs(parts[1].Pos[0] - parts[0].Pos[0])
	a := 0.3
	for i := 0; i < 5; i++ {
		if err := s.Step(parts, a, 0.02); err != nil {
			t.Fatal(err)
		}
		a += 0.02
	}
	sep1 := math.Abs(parts[1].Pos[0] - parts[0].Pos[0])
	if sep1 >= sep0 {
		t.Errorf("particles did not approach: %g -> %g", sep0, sep1)
	}
	netVx := parts[0].Vel[0]*parts[0].Mass + parts[1].Vel[0]*parts[1].Mass
	scale := math.Abs(parts[0].Vel[0] * parts[0].Mass)
	if scale > 0 && math.Abs(netVx) > 1e-6*scale {
		t.Errorf("net momentum %g, want ~0 (scale %g)", netVx, scale)
	}
	// Symmetry of the pair is preserved.
	mid := (parts[0].Pos[0] + parts[1].Pos[0]) / 2
	if math.Abs(mid-0.5) > 1e-9 {
		t.Errorf("pair midpoint drifted to %g", mid)
	}
}

func TestLinearGrowth(t *testing.T) {
	// The headline physics test: evolve Zel'dovich ICs and compare the
	// growth of density fluctuations against linear theory.
	c := cosmo.WMAP3()
	gen, err := grafic.New(c, 99)
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	a0, a1 := 0.1, 0.25 // stay linear
	ics, err := gen.SingleLevel(n, 200, a0)
	if err != nil {
		t.Fatal(err)
	}
	// Standard PM practice: force mesh at twice the particle grid to limit
	// CIC/finite-difference force softening near the particle Nyquist.
	s, err := New(Params{Ng: 2 * n, Box: 200, Cosmo: c})
	if err != nil {
		t.Fatal(err)
	}
	meas, err := New(Params{Ng: n, Box: 200, Cosmo: c})
	if err != nil {
		t.Fatal(err)
	}
	rms0 := RMSDelta(meas.Density(ics.Parts))
	if err := s.Run(ics.Parts, a0, a1, 15, nil); err != nil {
		t.Fatal(err)
	}
	rms1 := RMSDelta(meas.Density(ics.Parts))
	want := c.GrowthFactor(a1) / c.GrowthFactor(a0)
	got := rms1 / rms0
	if math.Abs(got-want)/want > 0.10 {
		t.Errorf("fluctuation growth %g, linear theory %g (>10%% off)", got, want)
	}
}

func TestRunValidation(t *testing.T) {
	s := newSolver(t, 8)
	parts := particles.Set{{Pos: [3]float64{0.5, 0.5, 0.5}, Mass: 1, ID: 1}}
	if err := s.Run(parts, 0.5, 0.4, 5, nil); err == nil {
		t.Error("expected error for a1 < a0")
	}
	if err := s.Run(parts, 0.1, 0.5, 0, nil); err == nil {
		t.Error("expected error for 0 steps")
	}
	if err := s.Step(parts, 0.5, -0.1); err == nil {
		t.Error("expected error for negative da")
	}
}

func TestRunCallback(t *testing.T) {
	s := newSolver(t, 8)
	parts := particles.Set{{Pos: [3]float64{0.5, 0.5, 0.5}, Mass: 1, ID: 1}}
	var steps []float64
	err := s.Run(parts, 0.2, 0.4, 4, func(step int, a float64) {
		steps = append(steps, a)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 4 {
		t.Fatalf("%d callbacks, want 4", len(steps))
	}
	if math.Abs(steps[3]-0.4) > 1e-12 {
		t.Errorf("final a = %g, want 0.4", steps[3])
	}
}

func TestProjectDensity(t *testing.T) {
	const n = 8
	s := newSolver(t, n)
	parts := particles.Set{
		{Pos: [3]float64{0.5, 0.5, 0.1}, Mass: 1, ID: 1},
		{Pos: [3]float64{0.5, 0.5, 0.9}, Mass: 1, ID: 2},
	}
	m, err := s.ProjectDensity(parts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != n*n {
		t.Fatalf("map has %d cells, want %d", len(m), n*n)
	}
	var sum float64
	for _, v := range m {
		sum += v
	}
	// Mean normalised to 1 → sum = n².
	if math.Abs(sum-float64(n*n)) > 1e-9 {
		t.Errorf("map sum %g, want %d", sum, n*n)
	}
	if _, err := s.ProjectDensity(parts, 3); err == nil {
		t.Error("expected error for bad axis")
	}
}

func TestCICInterpConstantField(t *testing.T) {
	const n = 8
	grid := make([]float64, n*n*n)
	for i := range grid {
		grid[i] = 7.25
	}
	for _, pos := range [][3]float64{{0.1, 0.2, 0.3}, {0.99, 0.01, 0.5}, {0, 0, 0}} {
		if got := interpCIC(grid, n, pos); math.Abs(got-7.25) > 1e-12 {
			t.Errorf("interp at %v = %g, want 7.25", pos, got)
		}
	}
}

func TestDepositInterpAdjoint(t *testing.T) {
	// CIC deposit and interpolation use the same kernel: interpolating the
	// deposit of a single unit mass at its own location gives the kernel's
	// self-overlap, which must be ≤ 1 and positive.
	const n = 8
	grid := make([]float64, n*n*n)
	pos := [3]float64{0.37, 0.61, 0.83}
	depositCIC(grid, n, pos, 1)
	v := interpCIC(grid, n, pos)
	if v <= 0 || v > 1 {
		t.Errorf("self-overlap %g outside (0,1]", v)
	}
}
