// Package nbody implements the gravitational N-body solver at the heart of
// the RAMSES application: a particle-mesh (PM) scheme with cloud-in-cell
// mass assignment, an FFT Poisson solve on the periodic mesh, and a
// kick-drift-kick leapfrog integrator in comoving variables with the
// expansion factor as time variable.
//
// Code units follow the standard PM convention (Klypin & Holtzman 1997):
// positions x live in the unit box, the time variable is the expansion
// factor a, momenta are p = a²·dx/dt̃ with t̃ = t·H0, and the comoving
// potential obeys ∇²φ = (3/2)(ΩM/a)·δ. Peculiar velocities in km/s convert
// as v = 100·L·p/a for a box of L Mpc/h (the h cancels).
package nbody

import (
	"fmt"
	"math"

	"repro/internal/cosmo"
	"repro/internal/fft"
	"repro/internal/particles"
)

// Params configures a PM solver.
type Params struct {
	Ng    int           // mesh points per axis (power of two)
	Box   float64       // comoving box size, Mpc/h
	Cosmo *cosmo.Params // background cosmology
}

// Solver is a periodic particle-mesh gravity solver. It is not safe for
// concurrent use; parallel runs give each rank its own Solver.
type Solver struct {
	p Params

	phi  *fft.Grid3   // potential work grid
	acc  [3][]float64 // cell-centred acceleration components (−∇φ)
	accA float64      // expansion factor the cached acc grids were built at
}

// New validates params and returns a ready Solver.
func New(p Params) (*Solver, error) {
	if !fft.IsPow2(p.Ng) {
		return nil, fmt.Errorf("nbody: mesh size %d is not a power of two", p.Ng)
	}
	if p.Box <= 0 {
		return nil, fmt.Errorf("nbody: box size must be positive, got %g", p.Box)
	}
	if p.Cosmo == nil {
		return nil, fmt.Errorf("nbody: cosmology must be set")
	}
	if err := p.Cosmo.Validate(); err != nil {
		return nil, err
	}
	phi, err := fft.NewGrid3(p.Ng)
	if err != nil {
		return nil, err
	}
	s := &Solver{p: p, phi: phi, accA: -1}
	n3 := p.Ng * p.Ng * p.Ng
	for d := 0; d < 3; d++ {
		s.acc[d] = make([]float64, n3)
	}
	return s, nil
}

// Params returns the solver configuration.
func (s *Solver) Params() Params { return s.p }

// MomentumFromVel converts a peculiar velocity in km/s to a code momentum at
// expansion factor a in a box of boxSize Mpc/h.
func MomentumFromVel(v, a, boxSize float64) float64 { return a * v / (100 * boxSize) }

// VelFromMomentum converts a code momentum back to a peculiar velocity in
// km/s.
func VelFromMomentum(p, a, boxSize float64) float64 { return 100 * boxSize * p / a }

// Density deposits the particle masses onto the mesh with cloud-in-cell
// weights and returns the overdensity field δ = ρ/ρ̄ − 1 as a flat array in
// (iz*Ng+iy)*Ng+ix order. An empty set yields δ = −1 everywhere.
func (s *Solver) Density(parts particles.Set) []float64 {
	n := s.p.Ng
	rho := make([]float64, n*n*n)
	var totalMass float64
	for i := range parts {
		totalMass += parts[i].Mass
		depositCIC(rho, n, parts[i].Pos, parts[i].Mass)
	}
	mean := totalMass / float64(n*n*n)
	if mean == 0 {
		for i := range rho {
			rho[i] = -1
		}
		return rho
	}
	for i := range rho {
		rho[i] = rho[i]/mean - 1
	}
	return rho
}

// depositCIC adds mass m at position pos (unit box) to grid with CIC weights.
func depositCIC(grid []float64, n int, pos [3]float64, m float64) {
	var i0 [3]int
	var f [3]float64
	for d := 0; d < 3; d++ {
		u := particles.Wrap(pos[d])*float64(n) - 0.5
		base := math.Floor(u)
		f[d] = u - base
		i0[d] = int(base)
	}
	mod := func(v int) int {
		v %= n
		if v < 0 {
			v += n
		}
		return v
	}
	for dz := 0; dz < 2; dz++ {
		wz := f[2]
		if dz == 0 {
			wz = 1 - f[2]
		}
		iz := mod(i0[2] + dz)
		for dy := 0; dy < 2; dy++ {
			wy := f[1]
			if dy == 0 {
				wy = 1 - f[1]
			}
			iy := mod(i0[1] + dy)
			for dx := 0; dx < 2; dx++ {
				wx := f[0]
				if dx == 0 {
					wx = 1 - f[0]
				}
				ix := mod(i0[0] + dx)
				grid[(iz*n+iy)*n+ix] += m * wx * wy * wz
			}
		}
	}
}

// interpCIC samples grid at pos with the same CIC kernel used for deposit,
// which guarantees momentum-conserving force interpolation.
func interpCIC(grid []float64, n int, pos [3]float64) float64 {
	var i0 [3]int
	var f [3]float64
	for d := 0; d < 3; d++ {
		u := particles.Wrap(pos[d])*float64(n) - 0.5
		base := math.Floor(u)
		f[d] = u - base
		i0[d] = int(base)
	}
	mod := func(v int) int {
		v %= n
		if v < 0 {
			v += n
		}
		return v
	}
	var sum float64
	for dz := 0; dz < 2; dz++ {
		wz := f[2]
		if dz == 0 {
			wz = 1 - f[2]
		}
		iz := mod(i0[2] + dz)
		for dy := 0; dy < 2; dy++ {
			wy := f[1]
			if dy == 0 {
				wy = 1 - f[1]
			}
			iy := mod(i0[1] + dy)
			for dx := 0; dx < 2; dx++ {
				wx := f[0]
				if dx == 0 {
					wx = 1 - f[0]
				}
				ix := mod(i0[0] + dx)
				sum += grid[(iz*n+iy)*n+ix] * wx * wy * wz
			}
		}
	}
	return sum
}

// Potential solves ∇²φ = (3/2)(ΩM/a)·δ on the periodic mesh using the
// discrete 7-point Green's function and leaves φ in the solver's work grid.
func (s *Solver) Potential(delta []float64, a float64) error {
	n := s.p.Ng
	if len(delta) != n*n*n {
		return fmt.Errorf("nbody: delta has %d cells, want %d", len(delta), n*n*n)
	}
	if a <= 0 {
		return fmt.Errorf("nbody: expansion factor must be positive, got %g", a)
	}
	for i, v := range delta {
		s.phi.Data[i] = complex(v, 0)
	}
	if err := fft.Forward3(s.phi); err != nil {
		return err
	}
	coef := 1.5 * s.p.Cosmo.OmegaM / a
	fn := float64(n)
	for iz := 0; iz < n; iz++ {
		sz := 2 * fn * math.Sin(math.Pi*float64(iz)/fn)
		for iy := 0; iy < n; iy++ {
			sy := 2 * fn * math.Sin(math.Pi*float64(iy)/fn)
			for ix := 0; ix < n; ix++ {
				sx := 2 * fn * math.Sin(math.Pi*float64(ix)/fn)
				k2 := sx*sx + sy*sy + sz*sz
				idx := (iz*n+iy)*n + ix
				if k2 == 0 {
					s.phi.Data[idx] = 0 // mean of φ is a free gauge
					continue
				}
				s.phi.Data[idx] *= complex(-coef/k2, 0)
			}
		}
	}
	return fft.Inverse3(s.phi)
}

// buildAccel differentiates the potential with central differences to the
// cell-centred acceleration −∇φ (box units) and caches the result for a.
func (s *Solver) buildAccel(a float64) {
	n := s.p.Ng
	scale := float64(n) / 2 // central difference over 2Δx with Δx = 1/n
	mod := func(v int) int {
		v %= n
		if v < 0 {
			v += n
		}
		return v
	}
	at := func(ix, iy, iz int) float64 { return real(s.phi.Data[(iz*n+iy)*n+ix]) }
	for iz := 0; iz < n; iz++ {
		for iy := 0; iy < n; iy++ {
			for ix := 0; ix < n; ix++ {
				idx := (iz*n+iy)*n + ix
				s.acc[0][idx] = -(at(mod(ix+1), iy, iz) - at(mod(ix-1), iy, iz)) * scale
				s.acc[1][idx] = -(at(ix, mod(iy+1), iz) - at(ix, mod(iy-1), iz)) * scale
				s.acc[2][idx] = -(at(ix, iy, mod(iz+1)) - at(ix, iy, mod(iz-1))) * scale
			}
		}
	}
	s.accA = a
}

// Solve computes the potential and acceleration grids for the given particle
// distribution at expansion factor a. Exposed so the parallel driver can run
// the field solve once on a combined density.
func (s *Solver) Solve(delta []float64, a float64) error {
	if err := s.Potential(delta, a); err != nil {
		return err
	}
	s.buildAccel(a)
	return nil
}

// AccelAt returns the interpolated acceleration −∇φ at pos, valid after a
// Solve at the current epoch.
func (s *Solver) AccelAt(pos [3]float64) [3]float64 {
	return [3]float64{
		interpCIC(s.acc[0], s.p.Ng, pos),
		interpCIC(s.acc[1], s.p.Ng, pos),
		interpCIC(s.acc[2], s.p.Ng, pos),
	}
}

// fKick is the kick coefficient dp/da = −∇φ · fKick(a).
func (s *Solver) fKick(a float64) float64 { return 1 / (a * s.p.Cosmo.E(a)) }

// fDrift is the drift coefficient dx/da = p · fDrift(a).
func (s *Solver) fDrift(a float64) float64 { return 1 / (a * a * a * s.p.Cosmo.E(a)) }

// kickDrift applies the first half kick and the full drift to parts, leaving
// velocities expressed at epoch a. Requires a field solve at a.
func (s *Solver) kickDrift(parts particles.Set, a, da float64) {
	box := s.p.Box
	halfKick := 0.5 * da * s.fKick(a)
	drift := da * s.fDrift(a+da/2)
	for i := range parts {
		p := &parts[i]
		g := s.AccelAt(p.Pos)
		for d := 0; d < 3; d++ {
			mom := MomentumFromVel(p.Vel[d], a, box) + g[d]*halfKick
			p.Vel[d] = VelFromMomentum(mom, a, box) // stash as velocity at epoch a
			p.Pos[d] = particles.Wrap(p.Pos[d] + mom*drift)
		}
	}
}

// secondKick applies the closing half kick using the field solved at aNew and
// re-expresses velocities at the new epoch.
func (s *Solver) secondKick(parts particles.Set, a, aNew, da float64) {
	box := s.p.Box
	halfKick := 0.5 * da * s.fKick(aNew)
	for i := range parts {
		p := &parts[i]
		g := s.AccelAt(p.Pos)
		for d := 0; d < 3; d++ {
			mom := MomentumFromVel(p.Vel[d], a, box) + g[d]*halfKick
			p.Vel[d] = VelFromMomentum(mom, aNew, box)
		}
	}
}

// Step advances the particle set by one kick-drift-kick leapfrog step from
// expansion factor a to a+da, mutating positions and velocities in place.
// The field is solved once at a (reusing the cached solve when the previous
// step ended here) and once at a+da.
func (s *Solver) Step(parts particles.Set, a, da float64) error {
	if da <= 0 {
		return fmt.Errorf("nbody: step da must be positive, got %g", da)
	}
	if s.accA != a {
		if err := s.Solve(s.Density(parts), a); err != nil {
			return err
		}
	}
	s.kickDrift(parts, a, da)
	aNew := a + da
	if err := s.Solve(s.Density(parts), aNew); err != nil {
		return err
	}
	s.secondKick(parts, a, aNew, da)
	return nil
}

// Run advances the particle set from a0 to a1 in nsteps equal steps in a,
// invoking onStep (if non-nil) after each step with the step index and the
// new expansion factor. It is the serial equivalent of the paper's RAMSES3d
// run between two snapshots.
func (s *Solver) Run(parts particles.Set, a0, a1 float64, nsteps int, onStep func(step int, a float64)) error {
	if a1 <= a0 {
		return fmt.Errorf("nbody: a1 %g must exceed a0 %g", a1, a0)
	}
	if nsteps <= 0 {
		return fmt.Errorf("nbody: nsteps must be positive, got %d", nsteps)
	}
	da := (a1 - a0) / float64(nsteps)
	a := a0
	for step := 0; step < nsteps; step++ {
		if err := s.Step(parts, a, da); err != nil {
			return fmt.Errorf("nbody: step %d (a=%.4f): %w", step, a, err)
		}
		a += da
		if onStep != nil {
			onStep(step, a)
		}
	}
	return nil
}

// RMSDelta returns the rms of an overdensity field; used as a cheap growth
// diagnostic in tests and examples.
func RMSDelta(delta []float64) float64 {
	var sum float64
	for _, v := range delta {
		sum += v * v
	}
	return math.Sqrt(sum / float64(len(delta)))
}

// ProjectDensity integrates the CIC density along the given axis (0=x, 1=y,
// 2=z) and returns an Ng×Ng surface-density map normalised to mean 1 — the
// "projected density field" of the paper's Figure 2.
func (s *Solver) ProjectDensity(parts particles.Set, axis int) ([]float64, error) {
	if axis < 0 || axis > 2 {
		return nil, fmt.Errorf("nbody: axis must be 0, 1 or 2, got %d", axis)
	}
	n := s.p.Ng
	rho := make([]float64, n*n*n)
	var total float64
	for i := range parts {
		total += parts[i].Mass
		depositCIC(rho, n, parts[i].Pos, parts[i].Mass)
	}
	out := make([]float64, n*n)
	for iz := 0; iz < n; iz++ {
		for iy := 0; iy < n; iy++ {
			for ix := 0; ix < n; ix++ {
				v := rho[(iz*n+iy)*n+ix]
				switch axis {
				case 0:
					out[iz*n+iy] += v
				case 1:
					out[iz*n+ix] += v
				default:
					out[iy*n+ix] += v
				}
			}
		}
	}
	if total > 0 {
		mean := total / float64(n*n)
		for i := range out {
			out[i] /= mean
		}
	}
	return out, nil
}
