package nbody

import (
	"math"
	"testing"

	"repro/internal/cosmo"
	"repro/internal/grafic"
	"repro/internal/hilbert"
	"repro/internal/particles"
)

func TestSplitByDomainPartition(t *testing.T) {
	gen, err := grafic.New(cosmo.WMAP3(), 5)
	if err != nil {
		t.Fatal(err)
	}
	ics, err := gen.SingleLevel(8, 100, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	const order = 3
	domains, err := hilbert.Decompose(order, 4)
	if err != nil {
		t.Fatal(err)
	}
	split := SplitByDomain(ics.Parts, domains, order)
	total := 0
	ids := make(map[int64]bool)
	for r, sub := range split {
		total += len(sub)
		for _, p := range sub {
			if ids[p.ID] {
				t.Fatalf("particle %d assigned twice", p.ID)
			}
			ids[p.ID] = true
			d := hilbert.CellIndex(p.Pos[0], p.Pos[1], p.Pos[2], order)
			if owner := hilbert.OwnerOf(domains, d); owner != r {
				t.Fatalf("particle %d on rank %d, owner %d", p.ID, r, owner)
			}
		}
	}
	if total != len(ics.Parts) {
		t.Fatalf("split lost particles: %d of %d", total, len(ics.Parts))
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	c := cosmo.WMAP3()
	const n = 8
	a0, a1 := 0.2, 0.3
	p := Params{Ng: n, Box: 100, Cosmo: c}

	gen, _ := grafic.New(c, 17)
	icsSerial, err := gen.SingleLevel(n, 100, a0)
	if err != nil {
		t.Fatal(err)
	}
	icsParallel := icsSerial.Parts.Clone()

	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(icsSerial.Parts, a0, a1, 4, nil); err != nil {
		t.Fatal(err)
	}
	serial := icsSerial.Parts
	serial.SortByID()

	parallel, err := SimulateParallel(4, p, icsParallel, a0, a1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != len(serial) {
		t.Fatalf("parallel run lost particles: %d of %d", len(parallel), len(serial))
	}
	var worst float64
	for i := range serial {
		if serial[i].ID != parallel[i].ID {
			t.Fatalf("ID mismatch at %d: %d vs %d", i, serial[i].ID, parallel[i].ID)
		}
		for d := 0; d < 3; d++ {
			diff := math.Abs(particles.PeriodicDelta(serial[i].Pos[d], parallel[i].Pos[d]))
			if diff > worst {
				worst = diff
			}
		}
	}
	// The decompositions sum densities in different orders, so tiny FP
	// divergence is expected; anything macroscopic is a logic bug.
	if worst > 1e-9 {
		t.Errorf("parallel diverges from serial by %g box units", worst)
	}
}

func TestParallelMassAndIDConservation(t *testing.T) {
	c := cosmo.WMAP3()
	const n = 8
	gen, _ := grafic.New(c, 23)
	ics, err := gen.SingleLevel(n, 100, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	before := ics.Parts.TotalMass()
	out, err := SimulateParallel(3, Params{Ng: n, Box: 100, Cosmo: c}, ics.Parts, 0.15, 0.35, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("parallel output invalid: %v", err)
	}
	if after := out.TotalMass(); math.Abs(after-before)/before > 1e-12 {
		t.Errorf("mass changed: %g -> %g", before, after)
	}
}

func TestRunRankValidation(t *testing.T) {
	if _, err := SimulateParallel(2, Params{Ng: 8, Box: 100, Cosmo: cosmo.WMAP3()}, nil, 0.5, 0.4, 3); err == nil {
		t.Error("expected error for a1 < a0")
	}
	if _, err := SimulateParallel(2, Params{Ng: 8, Box: 100, Cosmo: cosmo.WMAP3()}, nil, 0.2, 0.4, 0); err == nil {
		t.Error("expected error for 0 steps")
	}
}

func TestCostModelScaling(t *testing.T) {
	base := CostModel(64, 64*64*64, 10)
	if base <= 0 {
		t.Fatal("cost must be positive")
	}
	if CostModel(64, 64*64*64, 20) != 2*base {
		t.Error("cost must be linear in steps")
	}
	if CostModel(128, 64*64*64, 10) <= base {
		t.Error("bigger mesh must cost more")
	}
	if CostModel(64, 2*64*64*64, 10) <= base {
		t.Error("more particles must cost more")
	}
}
