package amr

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/particles"
)

func uniformLattice(n int) particles.Set {
	var parts particles.Set
	id := int64(0)
	for iz := 0; iz < n; iz++ {
		for iy := 0; iy < n; iy++ {
			for ix := 0; ix < n; ix++ {
				parts = append(parts, particles.Particle{
					Pos:  [3]float64{(float64(ix) + 0.5) / float64(n), (float64(iy) + 0.5) / float64(n), (float64(iz) + 0.5) / float64(n)},
					Mass: 1, ID: id,
				})
				id++
			}
		}
	}
	return parts
}

func clusteredSet(n int, frac float64, seed int64) particles.Set {
	rng := rand.New(rand.NewSource(seed))
	var parts particles.Set
	for i := 0; i < n; i++ {
		p := particles.Particle{Mass: 1, ID: int64(i)}
		if rng.Float64() < frac {
			// Tight clump near (0.25, 0.25, 0.25).
			for d := 0; d < 3; d++ {
				p.Pos[d] = particles.Wrap(0.25 + 0.01*rng.NormFloat64())
			}
		} else {
			for d := 0; d < 3; d++ {
				p.Pos[d] = rng.Float64()
			}
		}
		parts = append(parts, p)
	}
	return parts
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Params{MaxLevel: -1, MRefine: 8}); err == nil {
		t.Error("expected error for negative MaxLevel")
	}
	if _, err := Build(nil, Params{MaxLevel: 5, MRefine: 0}); err == nil {
		t.Error("expected error for MRefine 0")
	}
}

func TestUniformRefinesEvenly(t *testing.T) {
	parts := uniformLattice(8) // 512 particles
	tree, err := Build(parts, Params{MaxLevel: 6, MRefine: 8})
	if err != nil {
		t.Fatal(err)
	}
	st := tree.Stats()
	// 512 particles, threshold 8: refines until cells hold 8 = level 2
	// (64 cells of 8)... 512/64 = 8 which is not > 8, so depth 2? Level 1
	// has 8 cells × 64 parts (>8) → refine; level 2 has 64 cells × 8 (==8,
	// not >) → stop. Uniformity means every leaf sits at the same level.
	if st.MaxDepth != 2 {
		t.Errorf("uniform lattice depth %d, want 2", st.MaxDepth)
	}
	if st.LeavesAt[2] != 64 {
		t.Errorf("%d leaves at level 2, want 64", st.LeavesAt[2])
	}
}

func TestMassAndCountConservation(t *testing.T) {
	parts := clusteredSet(2000, 0.5, 3)
	tree, err := Build(parts, Params{MaxLevel: 8, MRefine: 8})
	if err != nil {
		t.Fatal(err)
	}
	st := tree.Stats()
	if st.TotalPart != len(parts) {
		t.Errorf("leaves hold %d particles, want %d", st.TotalPart, len(parts))
	}
	if math.Abs(st.TotalMass-parts.TotalMass()) > 1e-9 {
		t.Errorf("leaf mass %g, want %g", st.TotalMass, parts.TotalMass())
	}
}

func TestClusteredRefinesDeeper(t *testing.T) {
	uniform := clusteredSet(2000, 0, 5)
	clustered := clusteredSet(2000, 0.5, 5)
	tu, _ := Build(uniform, Params{MaxLevel: 10, MRefine: 8})
	tc, _ := Build(clustered, Params{MaxLevel: 10, MRefine: 8})
	du, dc := tu.Stats().MaxDepth, tc.Stats().MaxDepth
	if dc <= du {
		t.Errorf("clustered depth %d should exceed uniform depth %d", dc, du)
	}
	// The deepest leaf must be near the clump.
	cell := tc.MaxDensityCell()
	if cell == nil {
		t.Fatal("no max-density cell")
	}
	for d := 0; d < 3; d++ {
		if math.Abs(cell.Center[d]-0.25) > 0.1 {
			t.Errorf("densest cell at %v, want near (0.25,0.25,0.25)", cell.Center)
		}
	}
}

func TestMaxLevelRespected(t *testing.T) {
	parts := clusteredSet(5000, 1.0, 7) // everything in one clump
	tree, err := Build(parts, Params{MaxLevel: 3, MRefine: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d := tree.Stats().MaxDepth; d > 3 {
		t.Errorf("depth %d exceeds MaxLevel 3", d)
	}
}

func TestLocate(t *testing.T) {
	parts := clusteredSet(1000, 0.3, 11)
	tree, err := Build(parts, Params{MaxLevel: 8, MRefine: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 100; i++ {
		pos := [3]float64{rng.Float64(), rng.Float64(), rng.Float64()}
		leaf := tree.Locate(pos)
		if leaf == nil || !leaf.IsLeaf() {
			t.Fatalf("Locate(%v) returned non-leaf", pos)
		}
		if !leaf.Contains(pos) {
			t.Fatalf("Locate(%v) returned cell at %v size %g not containing it", pos, leaf.Center, leaf.Size)
		}
	}
	// Positions outside [0,1) wrap.
	a := tree.Locate([3]float64{1.3, -0.7, 0.5})
	b := tree.Locate([3]float64{0.3, 0.3, 0.5})
	if a != b {
		t.Error("Locate must wrap periodically")
	}
}

func TestChildrenPartitionParent(t *testing.T) {
	parts := clusteredSet(1500, 0.4, 17)
	tree, _ := Build(parts, Params{MaxLevel: 8, MRefine: 8})
	tree.Walk(func(c *Cell) bool {
		if c.Children == nil {
			return true
		}
		var count int
		var mass float64
		for _, ch := range c.Children {
			count += ch.NPart
			mass += ch.Mass
			if ch.Level != c.Level+1 {
				t.Fatalf("child level %d under parent level %d", ch.Level, c.Level)
			}
			if ch.Size != c.Size/2 {
				t.Fatalf("child size %g under parent size %g", ch.Size, c.Size)
			}
		}
		if count != c.NPart {
			t.Fatalf("children hold %d particles, parent %d", count, c.NPart)
		}
		if math.Abs(mass-c.Mass) > 1e-9*math.Max(1, c.Mass) {
			t.Fatalf("children mass %g, parent %g", mass, c.Mass)
		}
		return true
	})
}

func TestRefinementMap(t *testing.T) {
	parts := clusteredSet(2000, 0.5, 19)
	tree, _ := Build(parts, Params{MaxLevel: 8, MRefine: 8})
	st := tree.Stats()
	m := tree.RefinementMap(8)
	maxLvl := 0
	for _, l := range m {
		if l > maxLvl {
			maxLvl = l
		}
		if l < 0 || l > st.MaxDepth {
			t.Fatalf("map level %d outside [0,%d]", l, st.MaxDepth)
		}
	}
	// The raster can miss deepest cells only if they are smaller than a map
	// cell; with depth≥3 on an 8³ raster the clump must show up deeper than
	// the background.
	bg := m[0] // corner cell, far from the clump
	if maxLvl <= bg {
		t.Errorf("refinement map flat: max %d vs background %d", maxLvl, bg)
	}
}

func TestStatsEffectiveN(t *testing.T) {
	parts := uniformLattice(4)
	tree, _ := Build(parts, Params{MaxLevel: 6, MRefine: 8})
	st := tree.Stats()
	if st.EffectiveN != 1<<uint(st.MaxDepth) {
		t.Errorf("EffectiveN %d, want %d", st.EffectiveN, 1<<uint(st.MaxDepth))
	}
	if st.Cells < st.Leaves {
		t.Error("cells must be >= leaves")
	}
}

func TestEmptyTree(t *testing.T) {
	tree, err := Build(nil, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	st := tree.Stats()
	if st.Leaves != 1 || st.MaxDepth != 0 {
		t.Errorf("empty tree: %+v", st)
	}
	if tree.MaxDensityCell() != nil {
		t.Error("empty tree has no densest cell")
	}
}
