// Package amr implements the adaptive-mesh-refinement octree RAMSES is built
// around (Teyssier 2002): a fully-threaded tree over the unit box whose cells
// refine wherever the particle count exceeds a quasi-Lagrangian threshold.
// The tree provides the refinement maps used by the zoom pipeline and the
// per-level statistics reported with each snapshot.
package amr

import (
	"fmt"
	"math"

	"repro/internal/particles"
)

// Params controls tree construction.
type Params struct {
	MaxLevel int // deepest refinement level (root is level 0 over the unit box)
	MRefine  int // refine a cell when it holds more than this many particles
}

// DefaultParams mirrors RAMSES' common m_refine=8 quasi-Lagrangian policy.
func DefaultParams() Params { return Params{MaxLevel: 12, MRefine: 8} }

// Cell is one node of the octree. Leaves carry the particle indices that fall
// inside them; interior cells carry aggregated counts only.
type Cell struct {
	Level    int
	Center   [3]float64
	Size     float64 // edge length, box units
	Children *[8]*Cell
	NPart    int
	Mass     float64
	PartIdx  []int // indices into the build set; leaves only
}

// IsLeaf reports whether the cell has no children.
func (c *Cell) IsLeaf() bool { return c.Children == nil }

// Contains reports whether pos lies inside the cell (half-open bounds).
func (c *Cell) Contains(pos [3]float64) bool {
	h := c.Size / 2
	for d := 0; d < 3; d++ {
		if pos[d] < c.Center[d]-h || pos[d] >= c.Center[d]+h {
			return false
		}
	}
	return true
}

// Density returns the cell's mass density in box units (mass per unit volume).
func (c *Cell) Density() float64 {
	v := c.Size * c.Size * c.Size
	return c.Mass / v
}

// Tree is an AMR octree over the unit box.
type Tree struct {
	Root   *Cell
	Params Params
	parts  particles.Set
}

// Build constructs the octree for the particle set, refining every cell whose
// particle count exceeds p.MRefine until p.MaxLevel.
func Build(parts particles.Set, p Params) (*Tree, error) {
	if p.MaxLevel < 0 || p.MaxLevel > 30 {
		return nil, fmt.Errorf("amr: MaxLevel must be in [0,30], got %d", p.MaxLevel)
	}
	if p.MRefine < 1 {
		return nil, fmt.Errorf("amr: MRefine must be >= 1, got %d", p.MRefine)
	}
	root := &Cell{Level: 0, Center: [3]float64{0.5, 0.5, 0.5}, Size: 1}
	root.PartIdx = make([]int, len(parts))
	for i := range parts {
		root.PartIdx[i] = i
		root.Mass += parts[i].Mass
	}
	root.NPart = len(parts)
	t := &Tree{Root: root, Params: p, parts: parts}
	t.refine(root)
	return t, nil
}

// refine recursively splits cells exceeding the particle threshold.
func (t *Tree) refine(c *Cell) {
	if c.NPart <= t.Params.MRefine || c.Level >= t.Params.MaxLevel {
		return
	}
	var children [8]*Cell
	h := c.Size / 4
	for o := 0; o < 8; o++ {
		center := c.Center
		if o&1 != 0 {
			center[0] += h
		} else {
			center[0] -= h
		}
		if o&2 != 0 {
			center[1] += h
		} else {
			center[1] -= h
		}
		if o&4 != 0 {
			center[2] += h
		} else {
			center[2] -= h
		}
		children[o] = &Cell{Level: c.Level + 1, Center: center, Size: c.Size / 2}
	}
	for _, idx := range c.PartIdx {
		p := &t.parts[idx]
		o := octant(c.Center, p.Pos)
		child := children[o]
		child.PartIdx = append(child.PartIdx, idx)
		child.NPart++
		child.Mass += p.Mass
	}
	c.PartIdx = nil
	c.Children = &children
	for _, child := range children {
		t.refine(child)
	}
}

// octant returns the child index (bit0=x, bit1=y, bit2=z) of pos relative to
// the cell centre.
func octant(center, pos [3]float64) int {
	o := 0
	if pos[0] >= center[0] {
		o |= 1
	}
	if pos[1] >= center[1] {
		o |= 2
	}
	if pos[2] >= center[2] {
		o |= 4
	}
	return o
}

// Locate returns the leaf containing pos (wrapped into the unit box).
func (t *Tree) Locate(pos [3]float64) *Cell {
	for d := 0; d < 3; d++ {
		pos[d] = particles.Wrap(pos[d])
	}
	c := t.Root
	for !c.IsLeaf() {
		c = c.Children[octant(c.Center, pos)]
	}
	return c
}

// Walk visits every cell in depth-first order; returning false from visit
// prunes the subtree below that cell.
func (t *Tree) Walk(visit func(*Cell) bool) {
	var rec func(*Cell)
	rec = func(c *Cell) {
		if !visit(c) {
			return
		}
		if c.Children != nil {
			for _, ch := range c.Children {
				rec(ch)
			}
		}
	}
	rec(t.Root)
}

// Stats summarises a tree: totals and the per-level cell/leaf histogram.
type Stats struct {
	Cells      int
	Leaves     int
	MaxDepth   int
	CellsAt    []int // indexed by level
	LeavesAt   []int
	TotalMass  float64
	TotalPart  int
	EffectiveN int // 2^MaxDepth: finest equivalent uniform grid per axis
}

// Stats computes tree statistics in one walk.
func (t *Tree) Stats() Stats {
	s := Stats{
		CellsAt:  make([]int, t.Params.MaxLevel+1),
		LeavesAt: make([]int, t.Params.MaxLevel+1),
	}
	t.Walk(func(c *Cell) bool {
		s.Cells++
		s.CellsAt[c.Level]++
		if c.Level > s.MaxDepth {
			s.MaxDepth = c.Level
		}
		if c.IsLeaf() {
			s.Leaves++
			s.LeavesAt[c.Level]++
			s.TotalMass += c.Mass
			s.TotalPart += c.NPart
		}
		return true
	})
	s.EffectiveN = 1 << uint(s.MaxDepth)
	return s
}

// RefinementMap rasterises the tree's local depth onto an n×n×n grid: each
// output cell holds the level of the leaf covering it. The zoom pipeline uses
// it to verify that resolution concentrates on the re-simulated region.
func (t *Tree) RefinementMap(n int) []int {
	out := make([]int, n*n*n)
	for iz := 0; iz < n; iz++ {
		for iy := 0; iy < n; iy++ {
			for ix := 0; ix < n; ix++ {
				pos := [3]float64{
					(float64(ix) + 0.5) / float64(n),
					(float64(iy) + 0.5) / float64(n),
					(float64(iz) + 0.5) / float64(n),
				}
				out[(iz*n+iy)*n+ix] = t.Locate(pos).Level
			}
		}
	}
	return out
}

// MaxDensityCell returns the leaf with the highest mass density — a cheap
// proxy for "highest-density peak" used when picking zoom targets in tests.
func (t *Tree) MaxDensityCell() *Cell {
	var best *Cell
	bestRho := math.Inf(-1)
	t.Walk(func(c *Cell) bool {
		if c.IsLeaf() && c.NPart > 0 {
			if rho := c.Density(); rho > bestRho {
				bestRho = rho
				best = c
			}
		}
		return true
	})
	return best
}
