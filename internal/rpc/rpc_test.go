package rpc

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func echoHandler() Handler {
	return HandlerFunc(map[string]func([]byte) ([]byte, error){
		"Echo": func(body []byte) ([]byte, error) {
			var s string
			if err := Decode(body, &s); err != nil {
				return nil, err
			}
			return Encode("echo:" + s)
		},
		"Fail": func([]byte) ([]byte, error) {
			return nil, errors.New("deliberate failure")
		},
	})
}

func TestEncodeDecode(t *testing.T) {
	type payload struct {
		A int
		B string
		C []float64
	}
	in := payload{A: 7, B: "x", C: []float64{1, 2}}
	raw, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Decode(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.A != in.A || out.B != in.B || len(out.C) != 2 {
		t.Errorf("round trip mismatch: %+v", out)
	}
}

func TestTCPCall(t *testing.T) {
	s := NewServer()
	s.Register("obj", echoHandler())
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var out string
	if err := Call(addr, "obj", "Echo", "hello", &out); err != nil {
		t.Fatal(err)
	}
	if out != "echo:hello" {
		t.Errorf("got %q", out)
	}
}

func TestTCPCallWithScheme(t *testing.T) {
	s := NewServer()
	s.Register("obj", echoHandler())
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var out string
	if err := Call("tcp:"+addr, "obj", "Echo", "x", &out); err != nil {
		t.Fatal(err)
	}
	if out != "echo:x" {
		t.Errorf("got %q", out)
	}
}

func TestLocalCall(t *testing.T) {
	defer ResetLocal()
	s := NewServer()
	s.Register("obj", echoHandler())
	addr, err := ServeLocal("test-local-call", s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(addr, "local:") {
		t.Fatalf("address %q", addr)
	}
	var out string
	if err := Call(addr, "obj", "Echo", "inproc", &out); err != nil {
		t.Fatal(err)
	}
	if out != "echo:inproc" {
		t.Errorf("got %q", out)
	}
}

func TestLocalDuplicateName(t *testing.T) {
	defer ResetLocal()
	s := NewServer()
	if _, err := ServeLocal("dup", s); err != nil {
		t.Fatal(err)
	}
	if _, err := ServeLocal("dup", NewServer()); err == nil {
		t.Error("duplicate local name should fail")
	}
}

func TestRemoteErrorPropagates(t *testing.T) {
	defer ResetLocal()
	s := NewServer()
	s.Register("obj", echoHandler())
	addr, _ := ServeLocal("test-err", s)
	err := Call(addr, "obj", "Fail", nil, nil)
	if err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Errorf("got %v", err)
	}
}

func TestNoSuchObjectAndMethod(t *testing.T) {
	defer ResetLocal()
	s := NewServer()
	s.Register("obj", echoHandler())
	addr, _ := ServeLocal("test-missing", s)
	if err := Call(addr, "ghost", "Echo", "x", nil); err == nil {
		t.Error("missing object should fail")
	}
	if err := Call(addr, "obj", "Ghost", "x", nil); err == nil {
		t.Error("missing method should fail")
	}
	if err := Call("local:ghost-server", "obj", "Echo", "x", nil); err == nil {
		t.Error("missing local server should fail")
	}
}

func TestDialFailure(t *testing.T) {
	// A port that is almost certainly closed.
	err := Call("127.0.0.1:1", "obj", "Echo", "x", nil)
	if err == nil {
		t.Error("expected dial failure")
	}
}

func TestConcurrentCalls(t *testing.T) {
	s := NewServer()
	s.Register("obj", echoHandler())
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 50
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var out string
			if err := Call(addr, "obj", "Echo", fmt.Sprint(i), &out); err != nil {
				errs[i] = err
				return
			}
			if out != fmt.Sprintf("echo:%d", i) {
				errs[i] = fmt.Errorf("mismatch: %q", out)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

func TestUnregister(t *testing.T) {
	defer ResetLocal()
	s := NewServer()
	s.Register("obj", echoHandler())
	addr, _ := ServeLocal("test-unreg", s)
	s.Unregister("obj")
	if err := Call(addr, "obj", "Echo", "x", nil); err == nil {
		t.Error("unregistered object should fail")
	}
}

func TestCloseRemovesLocal(t *testing.T) {
	s := NewServer()
	addr, _ := ServeLocal("test-close", s)
	s.Close()
	if err := Call(addr, "obj", "Echo", "x", nil); err == nil {
		t.Error("closed server should not serve local calls")
	}
}

func TestNilInOut(t *testing.T) {
	defer ResetLocal()
	s := NewServer()
	s.Register("obj", HandlerFunc(map[string]func([]byte) ([]byte, error){
		"Ping": func(body []byte) ([]byte, error) {
			if body != nil {
				return nil, errors.New("expected empty body")
			}
			return Encode("pong")
		},
	}))
	addr, _ := ServeLocal("test-nil", s)
	if err := Call(addr, "obj", "Ping", nil, nil); err != nil {
		t.Fatal(err)
	}
}
