// Package rpc is the distributed-object layer DIET builds on. The real DIET
// uses CORBA (omniORB) for transparent remote method invocation; this
// package provides the same facility with Go primitives: named objects
// exposing methods, invoked over TCP with gob-encoded envelopes, plus an
// in-process "local" transport so whole deployments can run inside one test
// binary without sockets.
//
// Addresses are either "tcp:host:port" (or a bare "host:port") for network
// objects, or "local:name" for in-process objects registered with ServeLocal.
package rpc

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"
)

// Handler dispatches one method call on one object.
type Handler func(method string, body []byte) ([]byte, error)

// ErrNoObject is returned when the target object is not registered.
var ErrNoObject = errors.New("rpc: no such object")

// request is the wire envelope for a call.
type request struct {
	Object string
	Method string
	Body   []byte
}

// response is the wire envelope for a reply.
type response struct {
	Body []byte
	Err  string
}

// Server hosts named objects and serves invocations.
type Server struct {
	mu      sync.RWMutex
	objects map[string]Handler
	ln      net.Listener
	wg      sync.WaitGroup
	closed  bool
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{objects: make(map[string]Handler)}
}

// Register exposes an object under the given name. Re-registering replaces
// the previous handler.
func (s *Server) Register(object string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objects[object] = h
}

// Unregister removes an object.
func (s *Server) Unregister(object string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.objects, object)
}

// dispatch runs a request against the registered handler.
func (s *Server) dispatch(req request) response {
	s.mu.RLock()
	h, ok := s.objects[req.Object]
	s.mu.RUnlock()
	if !ok {
		return response{Err: fmt.Sprintf("%v: %q", ErrNoObject, req.Object)}
	}
	body, err := h(req.Method, req.Body)
	if err != nil {
		return response{Err: err.Error()}
	}
	return response{Body: body}
}

// Start begins serving on addr ("host:port", ":0" for ephemeral) in the
// background and returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveConn(conn)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// serveConn handles one connection carrying exactly one request/response
// exchange, the simple and robust pattern for coarse-grained GridRPC calls.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	var req request
	if err := gob.NewDecoder(conn).Decode(&req); err != nil {
		return
	}
	resp := s.dispatch(req)
	_ = gob.NewEncoder(conn).Encode(resp)
}

// Close stops the listener, waits for in-flight calls and removes any local
// registrations pointing at this server.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	localMu.Lock()
	for name, srv := range localRegistry {
		if srv == s {
			delete(localRegistry, name)
		}
	}
	localMu.Unlock()
	s.wg.Wait()
	return nil
}

// localRegistry maps "local:" names to in-process servers.
var (
	localMu       sync.RWMutex
	localRegistry = make(map[string]*Server)
)

// ServeLocal registers the server under an in-process address and returns
// that address ("local:<name>").
func ServeLocal(name string, s *Server) (string, error) {
	localMu.Lock()
	defer localMu.Unlock()
	if _, dup := localRegistry[name]; dup {
		return "", fmt.Errorf("rpc: local address %q already in use", name)
	}
	localRegistry[name] = s
	return "local:" + name, nil
}

// ResetLocal clears all in-process registrations; tests use it for isolation.
func ResetLocal() {
	localMu.Lock()
	defer localMu.Unlock()
	localRegistry = make(map[string]*Server)
}

// DialTimeout bounds connection establishment for tcp addresses.
var DialTimeout = 5 * time.Second

// Invoke calls object.method at addr with an opaque body and returns the
// opaque reply. It chooses the transport from the address scheme.
func Invoke(addr, object, method string, body []byte) ([]byte, error) {
	if name, ok := strings.CutPrefix(addr, "local:"); ok {
		localMu.RLock()
		s := localRegistry[name]
		localMu.RUnlock()
		if s == nil {
			return nil, fmt.Errorf("rpc: no local server at %q", addr)
		}
		resp := s.dispatch(request{Object: object, Method: method, Body: body})
		if resp.Err != "" {
			return nil, errors.New(resp.Err)
		}
		return resp.Body, nil
	}
	addr = strings.TrimPrefix(addr, "tcp:")
	conn, err := net.DialTimeout("tcp", addr, DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("rpc: dialing %s: %w", addr, err)
	}
	defer conn.Close()
	if err := gob.NewEncoder(conn).Encode(request{Object: object, Method: method, Body: body}); err != nil {
		return nil, fmt.Errorf("rpc: sending to %s: %w", addr, err)
	}
	var resp response
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("rpc: %s closed the connection", addr)
		}
		return nil, fmt.Errorf("rpc: receiving from %s: %w", addr, err)
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return resp.Body, nil
}

// Encode gob-encodes a value for use as a call body.
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode gob-decodes a call body into v (a pointer).
func Decode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// Call is the typed convenience wrapper: encodes in, invokes, decodes into
// out (pass nil for methods without a reply payload).
func Call(addr, object, method string, in, out any) error {
	var body []byte
	var err error
	if in != nil {
		body, err = Encode(in)
		if err != nil {
			return fmt.Errorf("rpc: encoding request for %s.%s: %w", object, method, err)
		}
	}
	reply, err := Invoke(addr, object, method, body)
	if err != nil {
		return err
	}
	if out != nil {
		if err := Decode(reply, out); err != nil {
			return fmt.Errorf("rpc: decoding reply from %s.%s: %w", object, method, err)
		}
	}
	return nil
}

// HandlerFunc adapts a map of typed method handlers into a Handler. Methods
// not in the map return an error.
func HandlerFunc(methods map[string]func(body []byte) ([]byte, error)) Handler {
	return func(method string, body []byte) ([]byte, error) {
		fn, ok := methods[method]
		if !ok {
			return nil, fmt.Errorf("rpc: no such method %q", method)
		}
		return fn(body)
	}
}
