package diet

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/cori"
	"repro/internal/logsvc"
	"repro/internal/metrics"
	"repro/internal/naming"
	"repro/internal/rpc"
	"repro/internal/scheduler"
)

// AgentKind distinguishes the single Master Agent from Local Agents.
type AgentKind int

// Agent kinds.
const (
	MasterAgent AgentKind = iota
	LocalAgent
)

// String implements fmt.Stringer.
func (k AgentKind) String() string {
	if k == MasterAgent {
		return "MA"
	}
	return "LA"
}

// ChildInfo describes a component attached below an agent.
type ChildInfo struct {
	Name    string
	Addr    string
	Kind    string // "SeD" or "LA"
	Cluster string // resource class of a SeD, for model gossip ("" = unlabelled)
}

// AgentConfig configures an agent.
type AgentConfig struct {
	Name       string
	Kind       AgentKind
	Parent     string           // parent agent name; empty for the MA
	Naming     string           // naming service address
	Policy     scheduler.Policy // used by the MA to rank estimates
	Local      bool             // serve in-process instead of TCP
	ListenAddr string
	// CollectTimeout bounds the wait for any child's estimate; slow or dead
	// children are skipped, DIET's basic fault tolerance at the agent level.
	CollectTimeout time.Duration
	// CollectMissEvict, when positive, evicts a child after this many
	// consecutive failed collect probes (connection refused, or no answer
	// within CollectTimeout). A dead child then costs at most CollectMissEvict
	// slow collects instead of slowing every submission until the heartbeat
	// monitor notices — and hierarchies running without a heartbeat still shed
	// dead children. Zero disables collect-driven eviction.
	CollectMissEvict int
	// HeartbeatInterval enables the child monitor: every interval the agent
	// pings its children and evicts any that miss MaxMissed consecutive
	// beats — the fault-tolerance mechanism DIET provides at the agent
	// level. Zero disables monitoring.
	HeartbeatInterval time.Duration
	// MaxMissed is the eviction threshold (default 3).
	MaxMissed int
	// ReplanInterval enables live periodic replanning: every interval —
	// measured along the heartbeat sweeps, so HeartbeatInterval must also be
	// set — the agent hands its live topology to Replanner and applies the
	// returned migrations online (ApplyPlan). Zero disables.
	ReplanInterval time.Duration
	// Replanner computes the placement changes a replan wants from the live
	// topology and this agent's gossip registry (handed in so the callback
	// can be built before the agent exists) — typically deploy.LiveReplanner.
	// Nil disables replanning.
	Replanner func(live TopologyNode, reg *cori.Registry) []Migration
	// EvictConfidenceFloor expires gossip-registry contributions whose best
	// model confidence, decayed over EvictHalfLife since the source last
	// reported, falls below the floor; swept at the start of every gossip
	// round. Zero keeps every contribution forever.
	EvictConfidenceFloor float64
	// EvictHalfLife is the decay half-life registry eviction uses
	// (default 1h, the cori default).
	EvictHalfLife time.Duration
	// Peers names the other Master Agents this MA federates with. Each peer
	// is resolved through naming (lazily, retried on heartbeat sweeps) and a
	// Submit whose local collect finds no candidate is forwarded to the
	// federation (bounded by ForwardHops, loop-guarded by request ID), the
	// returned estimates merged into the normal policy ranking. Only valid on
	// a MasterAgent.
	Peers []string
	// ForwardHops bounds how many MAs a forwarded request may traverse,
	// counting the origin's forward as the first hop (default
	// DefaultForwardHops).
	ForwardHops int
	// Events is an optional LogService-style monitoring sink.
	Events EventSink
	// Metrics is an optional Prometheus registry; when set the agent counts
	// requests, gossip rounds, evictions, replans and migrations into it.
	Metrics *metrics.Registry
}

// ServerRef identifies a chosen server back to the client.
type ServerRef struct {
	Name string
	Addr string
}

// SubmitRequest is a client problem submission to the Master Agent.
type SubmitRequest struct {
	Service    string
	WorkGFlops float64
	Seq        int
	// RequestID is the client-minted trace identity of this call; the MA
	// stamps its schedule span with it and fans it down the collect tree.
	RequestID string
	// DataIDs are the persistent inputs the call references by ID without
	// bytes attached — the data the chosen server must fetch. They ride the
	// collect fan-out so each SeD prices its own input transfers into the
	// estimate (gob ignores the field on older peers).
	DataIDs []string
}

// SubmitReply carries the ranked server list back to the client (the paper:
// "a list of available servers is sent back to the client").
type SubmitReply struct {
	Servers   []ServerRef
	Estimates []scheduler.Estimate
}

// CollectRequest asks an agent subtree for estimates. Limit > 0 caps how
// many estimates each sub-agent returns after local ranking — DIET's
// distributed scheduling, which keeps the reply traffic bounded as the
// hierarchy widens (the scalability argument of the paper's §2 against
// centralized agents).
type CollectRequest struct {
	Service string
	Limit   int
	// RequestID carries the trace identity down the hierarchy so every
	// sub-agent's collect span joins the request's trace.
	RequestID string
	// DataIDs carries the request's persistent input references down the
	// tree; data-wired SeDs answer through EstimateFor and include the
	// predicted input-transfer time in their estimation vector.
	DataIDs []string
}

// TopologyNode describes the deployed hierarchy for inspection.
type TopologyNode struct {
	Name     string
	Kind     string
	Addr     string
	Children []TopologyNode
}

// Index flattens the topology into lookup maps: each SeD's current parent
// agent and address, and every agent's address. Both the migration executor
// (Agent.ApplyPlan) and the planner's live diff (deploy.DiffLive) index the
// tree through this one walk, so the two cannot disagree about its shape.
func (n TopologyNode) Index() (parentOf, sedAddr, agentAddr map[string]string) {
	parentOf = make(map[string]string)
	sedAddr = make(map[string]string)
	agentAddr = make(map[string]string)
	var walk func(node TopologyNode)
	walk = func(node TopologyNode) {
		if node.Kind != "SeD" {
			agentAddr[node.Name] = node.Addr
		}
		for _, c := range node.Children {
			if c.Kind == "SeD" {
				parentOf[c.Name] = node.Name
				sedAddr[c.Name] = c.Addr
			}
			walk(c)
		}
	}
	walk(n)
	return parentOf, sedAddr, agentAddr
}

// Agent is a scheduling agent: it maintains the list of children (SeDs or
// further agents), collects computation abilities through the hierarchy, and
// — when it is the Master Agent — ranks them with the plug-in policy.
type Agent struct {
	cfg    AgentConfig
	server *rpc.Server
	addr   string

	mu       sync.RWMutex
	children map[string]ChildInfo
	missed   map[string]int
	// claims tracks, per SeD child, the foreign parent its last mismatched
	// heartbeat probe reported (see SweepChildren): only a *stable* claim
	// accumulates toward the child_moved drop, so stale probes racing a
	// series of reparents cannot evict a child this agent rightfully holds.
	claims map[string]string
	// regSeq is bumped on every childRegister: a sweep observation is only
	// applied if the child was not re-registered while the probe was in
	// flight (the probe's answer would describe a state that no longer
	// holds).
	regSeq map[string]uint64
	// collectMiss counts consecutive failed collect probes per child, the
	// CollectMissEvict bookkeeping. Kept separate from missed so a slow
	// collect cannot spend the heartbeat monitor's eviction grace.
	collectMiss map[string]int

	// registry is the cluster-keyed store of child SeD models, filled by
	// gossip rounds and queried when a fresh SeD registers (warm start).
	registry *cori.Registry

	// peerState is the federation side: known peer MAs, their miss counts,
	// and the forwarded-request loop guard (see federation.go).
	peerState

	stop     chan struct{}
	stopOnce sync.Once

	metrics *agentMetrics // nil unless cfg.Metrics is set

	statMu         sync.Mutex
	requests       int
	evicted        int
	replans        int
	migrated       int
	forwarded      int // requests this MA forwarded to peers
	peerServed     int // forwarded requests this MA answered for peers
	forwardDropped int // forwards rejected by the loop guard
}

// NewAgent creates an agent; call Start to expose and attach it.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("diet: agent needs a name")
	}
	if cfg.Kind == MasterAgent && cfg.Parent != "" {
		return nil, fmt.Errorf("diet: master agent %s cannot have a parent", cfg.Name)
	}
	if cfg.Kind == LocalAgent && cfg.Parent == "" {
		return nil, fmt.Errorf("diet: local agent %s needs a parent", cfg.Name)
	}
	if cfg.ReplanInterval > 0 && (cfg.HeartbeatInterval <= 0 || cfg.Replanner == nil) {
		return nil, fmt.Errorf("diet: agent %s: ReplanInterval rides the heartbeat sweeps — set HeartbeatInterval and a Replanner too", cfg.Name)
	}
	if len(cfg.Peers) > 0 && cfg.Kind != MasterAgent {
		return nil, fmt.Errorf("diet: agent %s: only master agents federate (Peers set on a %s)", cfg.Name, cfg.Kind)
	}
	if cfg.Policy == nil {
		cfg.Policy = scheduler.NewRoundRobin()
	}
	if cfg.CollectTimeout <= 0 {
		cfg.CollectTimeout = 10 * time.Second
	}
	if cfg.MaxMissed <= 0 {
		cfg.MaxMissed = 3
	}
	return &Agent{
		cfg:         cfg,
		server:      rpc.NewServer(),
		children:    make(map[string]ChildInfo),
		missed:      make(map[string]int),
		claims:      make(map[string]string),
		regSeq:      make(map[string]uint64),
		collectMiss: make(map[string]int),
		registry:    cori.NewRegistry(),
		peerState:   newPeerState(),
		stop:        make(chan struct{}),
		metrics:     newAgentMetrics(cfg.Metrics, cfg.Name),
	}, nil
}

// Name returns the agent's component name.
func (a *Agent) Name() string { return a.cfg.Name }

// Addr returns the agent's serving address (valid after Start).
func (a *Agent) Addr() string { return a.addr }

// objectName is the rpc object identity of this agent.
func (a *Agent) objectName() string { return "agent:" + a.cfg.Name }

// Start exposes the agent, registers it with the naming service, and — for
// Local Agents — attaches it to its parent.
func (a *Agent) Start() error {
	a.server.Register(a.objectName(), a.handler())
	var err error
	if a.cfg.Local {
		a.addr, err = rpc.ServeLocal("agent-"+a.cfg.Name, a.server)
	} else {
		a.addr, err = a.server.Start(a.cfg.ListenAddr)
	}
	if err != nil {
		return fmt.Errorf("diet: starting agent %s: %w", a.cfg.Name, err)
	}
	nc := &naming.Client{Addr: a.cfg.Naming}
	kind := "MA"
	if a.cfg.Kind == LocalAgent {
		kind = "LA"
	}
	if err := nc.Register(naming.Entry{Name: a.cfg.Name, Addr: a.addr, Kind: kind}); err != nil {
		return fmt.Errorf("diet: registering agent %s: %w", a.cfg.Name, err)
	}
	if a.cfg.Parent != "" {
		parent, err := nc.Resolve(a.cfg.Parent)
		if err != nil {
			return fmt.Errorf("diet: agent %s resolving parent %q: %w", a.cfg.Name, a.cfg.Parent, err)
		}
		var reply ChildRegisterReply
		err = rpc.Call(parent.Addr, "agent:"+a.cfg.Parent, "ChildRegister",
			ChildInfo{Name: a.cfg.Name, Addr: a.addr, Kind: "LA"}, &reply)
		if err != nil {
			return fmt.Errorf("diet: agent %s attaching to parent %q: %w", a.cfg.Name, a.cfg.Parent, err)
		}
	}
	if a.cfg.HeartbeatInterval > 0 {
		go a.monitor()
	}
	// Federation is seeded asynchronously: peers that are not up yet simply
	// fail to resolve here and are retried on every heartbeat sweep.
	go a.peerSeed()
	publish(a.cfg.Events, a.cfg.Kind.String()+":"+a.cfg.Name, "start", a.addr)
	return nil
}

// Close stops serving and the child monitor.
func (a *Agent) Close() error {
	a.stopOnce.Do(func() { close(a.stop) })
	return a.server.Close()
}

// monitor runs the heartbeat loop until Close.
func (a *Agent) monitor() {
	ticker := time.NewTicker(a.cfg.HeartbeatInterval)
	defer ticker.Stop()
	lastReplan := time.Now()
	for {
		select {
		case <-a.stop:
			return
		case <-ticker.C:
			a.SweepChildren()
			// The federation heartbeat rides the same sweep: re-announce to
			// peers (their liveness probe) and re-resolve any still missing.
			a.SweepPeers()
			// Gossip rides the heartbeat: the same traffic that proves a
			// child alive also carries its models up the hierarchy.
			a.GossipRound()
			// Replanning rides the same sweep: once the replan interval has
			// elapsed, re-derive the plan from the freshly gossiped registry
			// and migrate children live.
			if a.cfg.ReplanInterval > 0 && a.cfg.Replanner != nil &&
				time.Since(lastReplan) >= a.cfg.ReplanInterval {
				lastReplan = time.Now()
				a.ReplanOnce()
			}
		}
	}
}

// SweepChildren performs one heartbeat round: ping every child and evict
// those that have missed MaxMissed consecutive beats. For SeD children the
// probe is their Stats call, which also reports which parent the SeD answers
// to — a child that migrated away while this agent missed the handoff (a
// MigrateChild reply lost to a dropped connection) is dropped here instead
// of being collected under two parents forever. A parent mismatch gets the
// same MaxMissed grace as a missed beat, and only a *stable* claim counts:
// the mismatch must name the same foreign parent on consecutive probes.
// Both guards exist for probes racing live migration — a reparent in flight
// may legitimately answer with the old parent once, and a series of moves
// may alternate claims; neither may cost this agent a child it rightfully
// holds. Exported so tests (and tools) can drive the monitor
// deterministically.
func (a *Agent) SweepChildren() {
	children := a.Children()
	seqs := make(map[string]uint64, len(children))
	a.mu.RLock()
	for _, c := range children {
		seqs[c.Name] = a.regSeq[c.Name]
	}
	a.mu.RUnlock()
	for _, c := range children {
		var err error
		movedTo := ""
		if c.Kind == "SeD" {
			var st Stats
			err = rpc.Call(c.Addr, "sed:"+c.Name, "Stats", struct{}{}, &st)
			if err == nil && st.Parent != "" && st.Parent != a.cfg.Name {
				movedTo = st.Parent
			}
		} else {
			var pong string
			err = rpc.Call(c.Addr, "agent:"+c.Name, "Ping", struct{}{}, &pong)
		}
		a.mu.Lock()
		if _, held := a.children[c.Name]; !held || a.regSeq[c.Name] != seqs[c.Name] {
			// The child left or re-registered while the probe was in flight:
			// the answer describes a state that no longer holds.
			a.mu.Unlock()
			continue
		}
		switch {
		case movedTo != "":
			if a.claims[c.Name] != movedTo {
				a.claims[c.Name] = movedTo // new claim: restart the grace count
				a.missed[c.Name] = 1
			} else {
				a.missed[c.Name]++
			}
			if a.missed[c.Name] >= a.cfg.MaxMissed {
				delete(a.children, c.Name)
				delete(a.missed, c.Name)
				delete(a.collectMiss, c.Name)
				delete(a.claims, c.Name)
				publish(a.cfg.Events, a.cfg.Kind.String()+":"+a.cfg.Name, "child_moved", c.Name+" -> "+movedTo)
			}
		case err != nil:
			delete(a.claims, c.Name)
			a.missed[c.Name]++
			if a.missed[c.Name] >= a.cfg.MaxMissed {
				delete(a.children, c.Name)
				delete(a.missed, c.Name)
				delete(a.collectMiss, c.Name)
				a.statMu.Lock()
				a.evicted++
				a.statMu.Unlock()
				if a.metrics != nil {
					a.metrics.evictions.With(a.cfg.Name).Inc()
				}
				publish(a.cfg.Events, a.cfg.Kind.String()+":"+a.cfg.Name, "evict", c.Kind+":"+c.Name)
			}
		default:
			a.missed[c.Name] = 0
			delete(a.claims, c.Name)
		}
		a.mu.Unlock()
	}
}

// EvictedCount reports how many children the monitor has removed.
func (a *Agent) EvictedCount() int {
	a.statMu.Lock()
	defer a.statMu.Unlock()
	return a.evicted
}

// childRegister records a child component.
func (a *Agent) childRegister(c ChildInfo) error {
	if c.Name == "" || c.Addr == "" {
		return fmt.Errorf("diet: invalid child registration %+v", c)
	}
	a.mu.Lock()
	prev, held := a.children[c.Name]
	a.children[c.Name] = c
	a.missed[c.Name] = 0 // a re-registering child starts with a clean slate
	a.collectMiss[c.Name] = 0
	delete(a.claims, c.Name)
	a.regSeq[c.Name]++
	a.mu.Unlock()
	// A SeD's parent-probe watchdog re-registers on every probe; only an
	// actual change (a join, a new address) is an event worth tracing.
	if !held || prev.Addr != c.Addr || prev.Kind != c.Kind {
		publish(a.cfg.Events, a.cfg.Kind.String()+":"+a.cfg.Name, "child_register", c.Kind+":"+c.Name)
	}
	return nil
}

// Children returns a snapshot of the registered children.
func (a *Agent) Children() []ChildInfo {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]ChildInfo, 0, len(a.children))
	for _, c := range a.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Collect fans the estimate query out to all children in parallel —
// recursing through sub-agents, querying SeDs — and merges the answers.
// Children that fail or exceed CollectTimeout are skipped.
func (a *Agent) Collect(service string) []scheduler.Estimate {
	return a.collect(CollectRequest{Service: service})
}

// CollectN is Collect with distributed truncation: every agent in the
// subtree locally ranks its merged estimates and returns at most limit of
// them, so reply traffic stays bounded as the hierarchy widens.
func (a *Agent) CollectN(service string, limit int) []scheduler.Estimate {
	return a.collect(CollectRequest{Service: service, Limit: limit})
}

func (a *Agent) collect(req CollectRequest) []scheduler.Estimate {
	children := a.Children()
	seqs := make(map[string]uint64, len(children))
	if a.cfg.CollectMissEvict > 0 {
		a.mu.RLock()
		for _, c := range children {
			seqs[c.Name] = a.regSeq[c.Name]
		}
		a.mu.RUnlock()
	}
	type result struct {
		name string
		ests []scheduler.Estimate
		ok   bool
	}
	results := make(chan result, len(children))
	for _, c := range children {
		go func(c ChildInfo) {
			// The child RPC gets its own bound: a hung child (accepting but
			// never answering) must read as a miss, not block this goroutine
			// forever; connection-refused fails fast on its own.
			done := make(chan result, 1)
			go func() {
				switch c.Kind {
				case "SeD":
					var reply EstimateReply
					var err error
					if len(req.DataIDs) > 0 {
						// Data-carrying requests go through the richer query so
						// the SeD prices its input transfers; plain requests keep
						// the original wire shape, byte for byte.
						err = rpc.Call(c.Addr, "sed:"+c.Name, "EstimateFor",
							EstimateQuery{Service: req.Service, DataIDs: req.DataIDs}, &reply)
					} else {
						err = rpc.Call(c.Addr, "sed:"+c.Name, "Estimate", req.Service, &reply)
					}
					if err == nil && reply.OK {
						done <- result{name: c.Name, ests: []scheduler.Estimate{reply.Est}, ok: true}
						return
					}
					// An alive child without the service is a healthy answer.
					done <- result{name: c.Name, ok: err == nil}
				default: // sub-agent
					var ests []scheduler.Estimate
					err := rpc.Call(c.Addr, "agent:"+c.Name, "Collect", req, &ests)
					done <- result{name: c.Name, ests: ests, ok: err == nil}
				}
			}()
			select {
			case r := <-done:
				results <- r
			case <-time.After(a.cfg.CollectTimeout):
				results <- result{name: c.Name}
			}
		}(c)
	}
	var merged []scheduler.Estimate
	answered := make(map[string]bool, len(children))
	deadline := time.After(a.cfg.CollectTimeout)
	for range children {
		select {
		case r := <-results:
			answered[r.name] = r.ok
			if r.ok {
				merged = append(merged, r.ests...)
			}
		case <-deadline:
			// Children that have not answered are treated as unavailable.
			a.noteCollectMisses(children, answered, seqs)
			return a.truncate(req, merged)
		}
	}
	a.noteCollectMisses(children, answered, seqs)
	return a.truncate(req, merged)
}

// noteCollectMisses applies the CollectMissEvict bookkeeping after a collect:
// children that answered reset their miss streak, children that failed or
// timed out extend it, and a streak reaching the threshold evicts the child —
// guarded by regSeq like the heartbeat sweep, so a child that re-registered
// mid-collect is not judged on a probe of its previous life.
func (a *Agent) noteCollectMisses(children []ChildInfo, answered map[string]bool, seqs map[string]uint64) {
	if a.cfg.CollectMissEvict <= 0 {
		return
	}
	for _, c := range children {
		a.mu.Lock()
		if _, held := a.children[c.Name]; !held || a.regSeq[c.Name] != seqs[c.Name] {
			a.mu.Unlock()
			continue
		}
		if answered[c.Name] {
			a.collectMiss[c.Name] = 0
			a.mu.Unlock()
			continue
		}
		a.collectMiss[c.Name]++
		evict := a.collectMiss[c.Name] >= a.cfg.CollectMissEvict
		if evict {
			delete(a.children, c.Name)
			delete(a.missed, c.Name)
			delete(a.collectMiss, c.Name)
			delete(a.claims, c.Name)
		}
		a.mu.Unlock()
		if evict {
			a.statMu.Lock()
			a.evicted++
			a.statMu.Unlock()
			if a.metrics != nil {
				a.metrics.collectEvictions.With(a.cfg.Name).Inc()
			}
			publish(a.cfg.Events, a.cfg.Kind.String()+":"+a.cfg.Name, "collect_evict", c.Kind+":"+c.Name)
		}
	}
}

// truncate applies the distributed-scheduling cap: rank locally and keep the
// best req.Limit entries. With CoRI forecasts the primary key is the
// predicted drain time of each server's accepted work; servers without a
// forecast fall back to queue length scaled by their last observed solve,
// and a loaded server of entirely unknown speed sorts last — under
// truncation the hierarchy prefers predictable servers.
func (a *Agent) truncate(req CollectRequest, ests []scheduler.Estimate) []scheduler.Estimate {
	sortEstimates(ests)
	if req.Limit <= 0 || len(ests) <= req.Limit {
		return ests
	}
	drain := func(e scheduler.Estimate) float64 {
		if d, trusted := e.TrustedDrainSeconds(scheduler.DefaultMinConfidence); trusted {
			return d
		}
		pending := float64(e.QueueLen + e.Running)
		if pending == 0 {
			return 0
		}
		if e.LastSolveSeconds > 0 {
			cap := float64(e.Capacity)
			if cap < 1 {
				cap = 1
			}
			return pending * e.LastSolveSeconds / cap
		}
		return math.Inf(1)
	}
	// Sort an index permutation so each drain key is computed exactly once.
	drains := make([]float64, len(ests))
	order := make([]int, len(ests))
	for i := range ests {
		drains[i] = drain(ests[i])
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		i, j := order[a], order[b]
		if drains[i] != drains[j] {
			return drains[i] < drains[j]
		}
		li := ests[i].QueueLen + ests[i].Running
		lj := ests[j].QueueLen + ests[j].Running
		if li != lj {
			return li < lj
		}
		if ests[i].PowerGFlops != ests[j].PowerGFlops {
			return ests[i].PowerGFlops > ests[j].PowerGFlops
		}
		return ests[i].ServerID < ests[j].ServerID
	})
	kept := make([]scheduler.Estimate, req.Limit)
	for k := 0; k < req.Limit; k++ {
		kept[k] = ests[order[k]]
	}
	ests = kept
	sortEstimates(ests)
	return ests
}

// sortEstimates orders estimates deterministically by server ID.
func sortEstimates(ests []scheduler.Estimate) {
	sort.Slice(ests, func(i, j int) bool { return ests[i].ServerID < ests[j].ServerID })
}

// Submit handles a client request at the Master Agent: collect abilities
// through the hierarchy, rank with the scheduling policy, return the list.
func (a *Agent) Submit(req SubmitRequest) (*SubmitReply, error) {
	if a.cfg.Kind != MasterAgent {
		return nil, fmt.Errorf("diet: agent %s is not a master agent", a.cfg.Name)
	}
	a.statMu.Lock()
	a.requests++
	a.statMu.Unlock()
	if a.metrics != nil {
		a.metrics.requests.With(a.cfg.Name).Inc()
	}
	publish(a.cfg.Events, a.cfg.Kind.String()+":"+a.cfg.Name, "submit", req.Service)
	t0 := time.Now()
	ests := a.collect(CollectRequest{Service: req.Service, RequestID: req.RequestID, DataIDs: req.DataIDs})
	if len(ests) == 0 && len(a.Peers()) > 0 {
		// Local miss: ask the federation. Recording our own view of the
		// request ID first means a forward that loops back here is dropped by
		// the receiving guard, not re-collected.
		a.forwardSeen(req.RequestID)
		ests = a.forwardToPeers(PeerForwardRequest{
			SchemaVersion: PeerSchemaVersion,
			Service:       req.Service,
			WorkGFlops:    req.WorkGFlops,
			Seq:           req.Seq,
			RequestID:     req.RequestID,
			Hops:          a.forwardHops(),
		})
	}
	if len(ests) == 0 {
		return nil, fmt.Errorf("diet: no server can solve %q", req.Service)
	}
	order := a.cfg.Policy.Rank(scheduler.Request{
		Service: req.Service, Seq: req.Seq, WorkGFlops: req.WorkGFlops,
	}, ests)
	reply := &SubmitReply{Estimates: ests}
	nc := &naming.Client{Addr: a.cfg.Naming}
	for _, idx := range order {
		name := ests[idx].ServerID
		entry, err := nc.Resolve(name)
		if err != nil {
			continue // server vanished between estimate and resolve
		}
		reply.Servers = append(reply.Servers, ServerRef{Name: name, Addr: entry.Addr})
	}
	if len(reply.Servers) == 0 {
		return nil, fmt.Errorf("diet: all candidate servers for %q are unresolvable", req.Service)
	}
	done := time.Now()
	if req.RequestID != "" {
		publishSpan(a.cfg.Events, span(req.RequestID, a.cfg.Kind.String()+":"+a.cfg.Name,
			logsvc.KindSchedule, req.Service,
			fmt.Sprintf("%d candidates, chose %s", len(ests), reply.Servers[0].Name), t0, done))
	}
	if a.metrics != nil {
		a.metrics.scheduleSeconds.With(a.cfg.Name).Observe(done.Sub(t0).Seconds())
	}
	return reply, nil
}

// RequestCount reports how many submissions this agent has ranked.
func (a *Agent) RequestCount() int {
	a.statMu.Lock()
	defer a.statMu.Unlock()
	return a.requests
}

// Topology walks the subtree and reports its structure.
func (a *Agent) Topology() TopologyNode {
	node := TopologyNode{Name: a.cfg.Name, Kind: a.cfg.Kind.String(), Addr: a.addr}
	for _, c := range a.Children() {
		switch c.Kind {
		case "SeD":
			node.Children = append(node.Children, TopologyNode{Name: c.Name, Kind: "SeD", Addr: c.Addr})
		default:
			var sub TopologyNode
			if err := rpc.Call(c.Addr, "agent:"+c.Name, "Topology", struct{}{}, &sub); err == nil {
				node.Children = append(node.Children, sub)
			} else {
				node.Children = append(node.Children, TopologyNode{Name: c.Name, Kind: "LA?", Addr: c.Addr})
			}
		}
	}
	return node
}

// handler exposes the agent over rpc.
func (a *Agent) handler() rpc.Handler {
	return rpc.HandlerFunc(map[string]func([]byte) ([]byte, error){
		"ChildRegister": func(body []byte) ([]byte, error) {
			var c ChildInfo
			if err := rpc.Decode(body, &c); err != nil {
				return nil, err
			}
			if err := a.childRegister(c); err != nil {
				return nil, err
			}
			reply := ChildRegisterReply{OK: true}
			if c.Kind == "SeD" && c.Cluster != "" {
				// Hand the joiner its cluster's merged models: a SeD on a
				// known cluster warm-starts instead of running cold.
				reply.Prior = a.registry.PriorsFor(c.Cluster)
			}
			return rpc.Encode(reply)
		},
		"GossipRegistry": func(body []byte) ([]byte, error) {
			var snap cori.RegistrySnapshot
			if err := rpc.Decode(body, &snap); err != nil {
				return nil, err
			}
			// Down-gossip: fold the parent's view in; the reply carries this
			// subtree's view back up.
			if err := a.registry.Merge(snap); err != nil {
				return nil, err
			}
			return rpc.Encode(a.registry.Snapshot())
		},
		"Collect": func(body []byte) ([]byte, error) {
			var req CollectRequest
			if err := rpc.Decode(body, &req); err != nil {
				return nil, err
			}
			// A remote Collect is a parent fanning a request down: this
			// sub-agent's share of the finding phase is its collect span.
			t0 := time.Now()
			ests := a.collect(req)
			done := time.Now()
			if req.RequestID != "" {
				publishSpan(a.cfg.Events, span(req.RequestID, a.cfg.Kind.String()+":"+a.cfg.Name,
					logsvc.KindCollect, req.Service,
					fmt.Sprintf("%d estimates", len(ests)), t0, done))
			}
			if a.metrics != nil {
				a.metrics.collectSeconds.With(a.cfg.Name).Observe(done.Sub(t0).Seconds())
			}
			return rpc.Encode(ests)
		},
		"Submit": func(body []byte) ([]byte, error) {
			var req SubmitRequest
			if err := rpc.Decode(body, &req); err != nil {
				return nil, err
			}
			reply, err := a.Submit(req)
			if err != nil {
				return nil, err
			}
			return rpc.Encode(reply)
		},
		"MigrateChild": func(body []byte) ([]byte, error) {
			var req MigrateChildRequest
			if err := rpc.Decode(body, &req); err != nil {
				return nil, err
			}
			reply, err := a.MigrateChild(req)
			if err != nil {
				return nil, err
			}
			return rpc.Encode(reply)
		},
		"PeerRegister": func(body []byte) ([]byte, error) {
			var req PeerRegisterRequest
			if err := rpc.Decode(body, &req); err != nil {
				return nil, err
			}
			if req.SchemaVersion != PeerSchemaVersion {
				return nil, fmt.Errorf("diet: MA %s speaks peer schema v%d, got v%d",
					a.cfg.Name, PeerSchemaVersion, req.SchemaVersion)
			}
			if err := a.peerRegister(req.Peer); err != nil {
				return nil, err
			}
			return rpc.Encode(PeerRegisterReply{SchemaVersion: PeerSchemaVersion, OK: true, Name: a.cfg.Name})
		},
		"PeerForward": func(body []byte) ([]byte, error) {
			var req PeerForwardRequest
			if err := rpc.Decode(body, &req); err != nil {
				return nil, err
			}
			reply, err := a.peerForward(req)
			if err != nil {
				return nil, err
			}
			return rpc.Encode(reply)
		},
		"Topology": func([]byte) ([]byte, error) {
			return rpc.Encode(a.Topology())
		},
		"Ping": func([]byte) ([]byte, error) {
			return rpc.Encode("pong")
		},
	})
}
