package diet

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/logsvc"
	"repro/internal/metrics"
	"repro/internal/rpc"
	"repro/internal/scheduler"
)

// echoDeployment builds a 2-level MA→LA→SeD platform with an "echo" service,
// wiring the given sink and registry into every component.
func echoDeployment(t *testing.T, bus EventSink, reg *metrics.Registry, las []string, seds []SeDSpec) *Deployment {
	t.Helper()
	d, err := Deploy(DeploymentSpec{
		MAName: "MA1", Policy: scheduler.NewRoundRobin(), LAs: las, SeDs: seds,
		Local: true, Events: bus, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func echoService() ServiceSpec {
	desc, _ := NewProfileDesc("echo", 0, 0, 1)
	desc.Set(0, Scalar, Int)
	desc.Set(1, Scalar, Int)
	return ServiceSpec{Desc: desc, Solve: func(p *Profile) error {
		v, err := p.ScalarInt(0)
		if err != nil {
			return err
		}
		time.Sleep(time.Millisecond) // give the solve span a visible duration
		return p.SetScalarInt(1, v+1, Volatile)
	}}
}

// TestRequestTraceSpans is the tracing acceptance test: a single solve
// through diet.Client against a live MA→LA→SeD hierarchy produces a trace
// with at least five spans sharing one request ID — submit, schedule, queue,
// solve, complete (plus the LA's collect span).
func TestRequestTraceSpans(t *testing.T) {
	rpc.ResetLocal()
	defer rpc.ResetLocal()
	bus := logsvc.New(1000)
	d := echoDeployment(t, bus, nil, []string{"LA1"}, []SeDSpec{{
		Name: "SeD1", Parent: "LA1", Capacity: 1, PowerGFlops: 50,
		Services: []ServiceSpec{echoService()},
	}})

	client, err := d.Client()
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewProfile("echo", 0, 0, 1)
	p.SetScalarInt(0, 41, Volatile)
	info, err := client.Call(p, WithWork(10))
	if err != nil {
		t.Fatal(err)
	}
	if info.RequestID == "" {
		t.Fatal("CallInfo must carry the request ID")
	}

	groups := logsvc.SpansByRequest(bus.History())
	spans := groups[info.RequestID]
	if len(spans) < 5 {
		t.Fatalf("trace has %d spans for %s, want >= 5:\n%+v", len(spans), info.RequestID, spans)
	}
	kinds := map[string]int{}
	for _, sp := range spans {
		kinds[sp.Kind]++
		if sp.Service != "echo" {
			t.Errorf("span %s carries service %q, want echo", sp.Kind, sp.Service)
		}
		if sp.EndNanos < sp.StartNanos {
			t.Errorf("span %s ends before it starts", sp.Kind)
		}
	}
	for _, want := range []string{logsvc.KindSubmit, logsvc.KindSchedule, logsvc.KindCollect,
		logsvc.KindQueue, logsvc.KindSolve, logsvc.KindComplete} {
		if kinds[want] != 1 {
			t.Errorf("trace has %d %q spans, want 1 (kinds: %v)", kinds[want], want, kinds)
		}
	}
	// The complete span encloses the whole call; the solve span sits inside.
	byKind := map[string]logsvc.Event{}
	for _, sp := range spans {
		byKind[sp.Kind] = sp
	}
	comp, solve := byKind[logsvc.KindComplete], byKind[logsvc.KindSolve]
	if solve.StartNanos < comp.StartNanos || solve.EndNanos > comp.EndNanos {
		t.Error("solve span must nest inside the complete span")
	}
	if solve.DurNanos() <= 0 {
		t.Error("solve span must have a positive duration")
	}
}

// TestTraceIDPropagationTwoLevels drives concurrent calls across a 2-level
// hierarchy (run under -race in CI): every call's spans stay grouped under
// its own request ID, with no cross-request bleed.
func TestTraceIDPropagationTwoLevels(t *testing.T) {
	rpc.ResetLocal()
	defer rpc.ResetLocal()
	bus := logsvc.New(4096)
	svc := echoService()
	d := echoDeployment(t, bus, nil, []string{"LA1", "LA2"}, []SeDSpec{
		{Name: "SeD1", Parent: "LA1", Capacity: 1, PowerGFlops: 50, Services: []ServiceSpec{svc}},
		{Name: "SeD2", Parent: "LA2", Capacity: 1, PowerGFlops: 50, Services: []ServiceSpec{svc}},
	})

	client, err := d.Client()
	if err != nil {
		t.Fatal(err)
	}
	const calls = 8
	async := make([]*AsyncCall, calls)
	profiles := make([]*Profile, calls)
	for i := range async {
		profiles[i], _ = NewProfile("echo", 0, 0, 1)
		profiles[i].SetScalarInt(0, int64(i), Volatile)
		async[i] = client.CallAsync(profiles[i], WithWork(5))
	}
	seen := map[string]bool{}
	for i, a := range async {
		info, err := a.Wait()
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if seen[info.RequestID] {
			t.Fatalf("request ID %s reused across calls", info.RequestID)
		}
		seen[info.RequestID] = true
	}
	groups := logsvc.SpansByRequest(bus.History())
	for id := range seen {
		kinds := map[string]int{}
		for _, sp := range groups[id] {
			kinds[sp.Kind]++
		}
		for _, want := range []string{logsvc.KindSubmit, logsvc.KindSchedule,
			logsvc.KindQueue, logsvc.KindSolve, logsvc.KindComplete} {
			if kinds[want] != 1 {
				t.Errorf("request %s: %d %q spans, want exactly 1 (kinds %v)", id, kinds[want], want, kinds)
			}
		}
	}
}

// TestSeDMetricsExposition is the metrics acceptance test: scraping /metrics
// on an instrumented deployment returns valid Prometheus text including the
// queue-wait histogram and the forecast-misprediction metric, and the SeD's
// solve-record ring feeds live forecast accuracy.
func TestSeDMetricsExposition(t *testing.T) {
	rpc.ResetLocal()
	defer rpc.ResetLocal()
	reg := metrics.NewRegistry()
	d := echoDeployment(t, nil, reg, []string{"LA1"}, []SeDSpec{{
		Name: "SeD1", Parent: "LA1", Capacity: 1, PowerGFlops: 50,
		Services: []ServiceSpec{echoService()},
	}})

	client, err := d.Client()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p, _ := NewProfile("echo", 0, 0, 1)
		p.SetScalarInt(0, int64(i), Volatile)
		if _, err := client.Call(p, WithWork(10)); err != nil {
			t.Fatal(err)
		}
	}

	srv := httptest.NewServer(metrics.Handler(reg, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q, want Prometheus text 0.0.4", ct)
	}
	for _, want := range []string{
		"# TYPE diet_sed_queue_wait_seconds histogram",
		`diet_sed_queue_wait_seconds_bucket{sed="SeD1",service="echo",le="+Inf"} 3`,
		`diet_sed_queue_wait_seconds_count{sed="SeD1",service="echo"} 3`,
		"# TYPE diet_sed_forecast_mispredict_pct histogram",
		`diet_sed_forecast_mispredict_pct_count{sed="SeD1",service="echo"} 3`,
		`diet_sed_solves_started_total{sed="SeD1",service="echo"} 3`,
		`diet_sed_solves_completed_total{sed="SeD1",service="echo"} 3`,
		`diet_sed_forecast_mean_abs_pct{sed="SeD1",service="echo"}`,
		`diet_agent_requests_total{agent="MA1"} 3`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", body)
	}

	recs := d.SeDs[0].SolveRecords()
	if len(recs) != 3 {
		t.Fatalf("solve records %d, want 3", len(recs))
	}
	for _, r := range recs {
		if r.Service != "echo" || r.RequestID == "" || r.MeasuredS <= 0 || r.PredictedS <= 0 {
			t.Errorf("incomplete solve record %+v", r)
		}
	}
	acc, ok := d.SeDs[0].ForecastAccuracy()["echo"]
	if !ok || acc.Solves != 3 {
		t.Fatalf("forecast accuracy %+v, want 3 echo solves", acc)
	}
	if acc.MeanAbsPct < 0 {
		t.Errorf("mean abs pct %v must be non-negative", acc.MeanAbsPct)
	}
}

// fakeTracingExecutor scripts a batch executor's attempt lifecycle: one
// attempt killed at its walltime, then a successful requeue — without the
// timing sensitivity of a real enforced walltime.
type fakeTracingExecutor struct{}

func (fakeTracingExecutor) Execute(run func() error) error { return run() }
func (fakeTracingExecutor) ExecuteSized(service string, work float64, run func() error) error {
	return run()
}
func (fakeTracingExecutor) ExecuteSizedWait(service string, work float64, run func() error) (time.Duration, error) {
	return 0, run()
}
func (fakeTracingExecutor) ExecuteSizedTrace(service string, work float64, run func() error,
	trace func(attempt int, wait time.Duration, killed bool, start, end time.Time)) (time.Duration, error) {
	t0 := time.Now()
	if trace != nil {
		trace(1, 10*time.Millisecond, true, t0, t0.Add(30*time.Millisecond))
		trace(2, 5*time.Millisecond, false, t0.Add(30*time.Millisecond), t0.Add(60*time.Millisecond))
	}
	return 15 * time.Millisecond, run()
}

// TestBatchAttemptSpans checks the kill-and-requeue leg of the trace: each
// reservation attempt becomes a reserve span and each walltime kill an
// overrun_kill span, all under the request's ID, with the batch counters fed.
func TestBatchAttemptSpans(t *testing.T) {
	rpc.ResetLocal()
	defer rpc.ResetLocal()
	bus := logsvc.New(1000)
	reg := metrics.NewRegistry()
	d := echoDeployment(t, bus, reg, []string{"LA1"}, []SeDSpec{{
		Name: "SeD1", Parent: "LA1", Capacity: 1, PowerGFlops: 50,
		Services: []ServiceSpec{echoService()}, Executor: fakeTracingExecutor{},
	}})

	client, err := d.Client()
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewProfile("echo", 0, 0, 1)
	p.SetScalarInt(0, 1, Volatile)
	info, err := client.Call(p, WithWork(10))
	if err != nil {
		t.Fatal(err)
	}

	kinds := map[string]int{}
	for _, sp := range logsvc.SpansByRequest(bus.History())[info.RequestID] {
		kinds[sp.Kind]++
	}
	if kinds[logsvc.KindReserve] != 2 {
		t.Errorf("reserve spans %d, want 2 (one per attempt)", kinds[logsvc.KindReserve])
	}
	if kinds[logsvc.KindKill] != 1 {
		t.Errorf("overrun_kill spans %d, want 1", kinds[logsvc.KindKill])
	}
	out := reg.String()
	for _, want := range []string{
		`diet_sed_batch_overrun_kills_total{sed="SeD1"} 1`,
		`diet_sed_batch_requeues_total{sed="SeD1"} 1`,
		`diet_sed_batch_reserve_wait_seconds_count{sed="SeD1"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
