package diet

// EventSink receives middleware trace events — the LogService integration
// of the real DIET, where every component reports start-up, registrations
// and solve activity to the monitoring tools deployed beside the MA.
// internal/logsvc provides local and remote implementations.
type EventSink interface {
	Publish(component, kind, detail string)
}

// publish emits an event when a sink is configured; monitoring is always
// optional and never fails the caller.
func publish(sink EventSink, component, kind, detail string) {
	if sink != nil {
		sink.Publish(component, kind, detail)
	}
}
