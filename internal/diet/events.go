package diet

import (
	"fmt"
	"time"

	"repro/internal/logsvc"
)

// EventSink receives middleware trace events — the LogService integration
// of the real DIET, where every component reports start-up, registrations
// and solve activity to the monitoring tools deployed beside the MA.
// internal/logsvc provides local and remote implementations.
type EventSink interface {
	Publish(component, kind, detail string)
}

// publish emits an event when a sink is configured; monitoring is always
// optional and never fails the caller.
func publish(sink EventSink, component, kind, detail string) {
	if sink != nil {
		sink.Publish(component, kind, detail)
	}
}

// publishSpan emits a request-trace span. Sinks that understand spans
// (logsvc.Bus, logsvc.Remote) get the structured form with its timestamps
// intact; any other EventSink gets the span flattened into a plain event so
// no tracing information is lost behind a simpler sink.
func publishSpan(sink EventSink, sp logsvc.Span) {
	if sink == nil {
		return
	}
	if ss, ok := sink.(logsvc.SpanSink); ok {
		ss.PublishSpan(sp)
		return
	}
	detail := fmt.Sprintf("req=%s svc=%s dur=%s", sp.RequestID, sp.Service,
		time.Duration(sp.EndNanos-sp.StartNanos))
	if sp.Detail != "" {
		detail += " " + sp.Detail
	}
	sink.Publish(sp.Component, sp.Kind, detail)
}

// span assembles a logsvc.Span from wall-clock stamps.
func span(requestID, component, kind, service, detail string, start, end time.Time) logsvc.Span {
	return logsvc.Span{
		RequestID: requestID, Component: component, Kind: kind,
		Service: service, Detail: detail,
		StartNanos: start.UnixNano(), EndNanos: end.UnixNano(),
	}
}
