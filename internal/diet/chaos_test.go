package diet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rpc"
	"repro/internal/scheduler"
)

// The chaos suite kills components of a live 2-level hierarchy while solves,
// gossip rounds and heartbeat sweeps run concurrently, and asserts the
// self-healing invariants: no solve is ever silently lost (every call either
// succeeds, possibly after a client-side requeue, or returns an error), a
// restarted SeD rejoins with its CoRI training restored from a snapshot, and
// an orphaned SeD re-homes under a fallback agent. Run it under -race: the
// interleavings are the point.

// chaosClient hammers the deployment until stop closes, counting outcomes.
type chaosClient struct {
	ok   atomic.Int64
	fail atomic.Int64
}

func (cc *chaosClient) run(t *testing.T, d *Deployment, stop <-chan struct{}, wg *sync.WaitGroup) {
	t.Helper()
	client, err := d.Client()
	if err != nil {
		t.Errorf("opening chaos client: %v", err)
		return
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p, _ := NewProfile("work", 0, 0, 1)
			p.SetScalarInt(0, int64(i), Volatile)
			if _, err := client.Call(p); err != nil {
				cc.fail.Add(1)
				continue
			}
			if v, _ := p.ScalarInt(1); v != int64(2*i) {
				t.Errorf("solve corrupted: got %d want %d", v, 2*i)
			}
			cc.ok.Add(1)
		}
	}()
}

// gossipStorm drives gossip rounds through every agent concurrently with the
// chaos, the background traffic a live hierarchy always carries.
func gossipStorm(d *Deployment, stop <-chan struct{}, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			d.MA.GossipRound()
			for _, la := range d.LAs {
				la.GossipRound()
			}
		}
	}()
}

func TestChaosSeDCrashRestartUnderLoad(t *testing.T) {
	rpc.ResetLocal()
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-chaos", LAs: []string{"LA1", "LA2"},
		SeDs: []SeDSpec{
			{Name: "SeD-chaos-a", Parent: "LA1", Capacity: 2, PowerGFlops: 60,
				Services: []ServiceSpec{sleepService("work", time.Millisecond, nil)}},
			{Name: "SeD-chaos-b", Parent: "LA2", Capacity: 2, PowerGFlops: 40,
				Services: []ServiceSpec{sleepService("work", time.Millisecond, nil)}},
			{Name: "SeD-chaos-c", Parent: "LA2", Capacity: 2, PowerGFlops: 20,
				Services: []ServiceSpec{sleepService("work", time.Millisecond, nil)}},
		},
		Policy: scheduler.NewRoundRobin(), Local: true,
	})

	// Warm the victim's monitor so the restart has training to lose.
	warm, _ := d.Client()
	for i := 0; i < 5; i++ {
		p, _ := NewProfile("work", 0, 0, 1)
		p.SetScalarInt(0, int64(i), Volatile)
		if _, err := warm.Call(p); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	gossipStorm(d, stop, &wg)
	var cc chaosClient
	for i := 0; i < 4; i++ {
		cc.run(t, d, stop, &wg)
	}
	time.Sleep(20 * time.Millisecond) // load up before the crash

	// Crash: snapshot the monitor (the -cori-snapshot file of the live stack),
	// kill the SeD, and let the LA's heartbeat sweeps evict it.
	victim := d.SeDs[0]
	snap := victim.Monitor().Snapshot()
	victim.Close()
	la1 := d.LAs[0]
	for i := 0; i < 3; i++ {
		la1.SweepChildren()
	}
	if got := len(la1.Children()); got != 0 {
		t.Fatalf("dead SeD still held by LA1: %d children", got)
	}
	time.Sleep(20 * time.Millisecond) // survivors carry the load alone

	// Restart under the same name, warm-restoring the snapshot — the monitor
	// must survive the crash, not retrain from scratch.
	reborn, err := NewSeD(SeDConfig{
		Name: "SeD-chaos-a", Parent: "LA1", Naming: d.NamingAddr,
		Capacity: 2, PowerGFlops: 60, Local: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := sleepService("work", time.Millisecond, nil)
	if err := reborn.AddService(spec.Desc, spec.Solve); err != nil {
		t.Fatal(err)
	}
	if err := reborn.Monitor().Restore(snap); err != nil {
		t.Fatalf("warm restore: %v", err)
	}
	if err := reborn.Start(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer reborn.Close()
	if got := len(la1.Children()); got != 1 {
		t.Fatalf("restarted SeD did not re-attach: LA1 holds %d children", got)
	}
	found := false
	for _, svc := range reborn.Monitor().Services() {
		if svc == "work" {
			found = true
		}
	}
	if !found {
		t.Fatal("restarted monitor lost its training: no model for \"work\"")
	}

	time.Sleep(20 * time.Millisecond) // solves flow through the healed tree
	close(stop)
	wg.Wait()

	// No solve silently lost: with two survivors and client-side requeue,
	// every call must have completed successfully.
	if cc.fail.Load() != 0 {
		t.Errorf("%d solves lost across the crash/restart (%d succeeded)",
			cc.fail.Load(), cc.ok.Load())
	}
	if cc.ok.Load() == 0 {
		t.Fatal("chaos clients made no progress")
	}
	// The healed tree serves from all three SeDs again.
	if ests := d.MA.Collect("work"); len(ests) != 3 {
		t.Errorf("healed hierarchy collects %d estimates, want 3", len(ests))
	}
}

func TestChaosLAKillOrphanReadoption(t *testing.T) {
	rpc.ResetLocal()
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-chaos2", LAs: []string{"LA1", "LA2"},
		SeDs: []SeDSpec{
			{Name: "SeD-chaos2-b", Parent: "LA2",
				Services: []ServiceSpec{sleepService("work", time.Millisecond, nil)}},
		},
		Policy: scheduler.NewRoundRobin(), Local: true,
	})
	// The orphan candidate runs its parent watchdog against LA1 with LA2 as
	// the fallback (DeploymentSpec keeps watchdogs off, so build it by hand).
	orphan, err := NewSeD(SeDConfig{
		Name: "SeD-chaos2-a", Parent: "LA1", Naming: d.NamingAddr, Local: true,
		ParentProbe: 2 * time.Millisecond, ParentMaxMissed: 2,
		FallbackParents: []string{"LA2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := sleepService("work", time.Millisecond, nil)
	if err := orphan.AddService(spec.Desc, spec.Solve); err != nil {
		t.Fatal(err)
	}
	if err := orphan.Start(); err != nil {
		t.Fatal(err)
	}
	defer orphan.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	gossipStorm(d, stop, &wg)
	var cc chaosClient
	for i := 0; i < 3; i++ {
		cc.run(t, d, stop, &wg)
	}
	time.Sleep(10 * time.Millisecond)

	// Kill LA1: its SeD is orphaned, the MA holds a dead child.
	d.LAs[0].Close()
	for i := 0; i < 3; i++ {
		d.MA.SweepChildren()
	}
	// The watchdog must declare the parent dead and re-home under LA2.
	deadline := time.Now().Add(5 * time.Second)
	for orphan.ParentFailoverCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("orphaned SeD never re-homed under the fallback parent")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Both SeDs answer through LA2 now.
	deadline = time.Now().Add(5 * time.Second)
	for len(d.MA.Collect("work")) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("re-adopted SeD not reachable: collect sees %d estimates, want 2",
				len(d.MA.Collect("work")))
		}
		time.Sleep(2 * time.Millisecond)
	}

	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	if cc.ok.Load() == 0 {
		t.Fatal("chaos clients made no progress across the LA kill")
	}
	if cc.fail.Load() != 0 {
		t.Errorf("%d solves lost across the LA kill (%d succeeded)", cc.fail.Load(), cc.ok.Load())
	}
	if got := d.MA.Topology(); len(got.Children) != 1 {
		t.Errorf("MA still lists %d children after evicting the dead LA, want 1", len(got.Children))
	}
}

// TestChaosKilledSolveRequeues pins the fail-fast contract a dying SeD owes
// its queued callers: a solve waiting for a slot when the SeD closes must
// error out immediately (so the client requeues it elsewhere), not block on a
// grant that will never come.
func TestChaosKilledSolveRequeues(t *testing.T) {
	rpc.ResetLocal()
	block := make(chan struct{})
	desc, _ := NewProfileDesc("stall", 0, 0, 1)
	desc.Set(0, Scalar, Int)
	desc.Set(1, Scalar, Int)
	stall := ServiceSpec{Desc: desc, Solve: func(p *Profile) error {
		<-block
		return p.SetScalarInt(1, 1, Volatile)
	}}
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-chaos3", LAs: []string{"LA1"},
		SeDs: []SeDSpec{
			{Name: "SeD-chaos3-a", Parent: "LA1", Capacity: 1, Services: []ServiceSpec{stall}},
		},
		Local: true,
	})
	defer close(block)

	// Occupy the single slot, then queue a second solve behind it.
	sed := d.SeDs[0]
	first := make(chan error, 1)
	second := make(chan error, 1)
	go func() {
		p, _ := NewProfile("stall", 0, 0, 1)
		p.SetScalarInt(0, 1, Volatile)
		_, err := sed.Solve(p)
		first <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for sed.Estimate("stall").Est.Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first solve never started")
		}
		time.Sleep(time.Millisecond)
	}
	go func() {
		p, _ := NewProfile("stall", 0, 0, 1)
		p.SetScalarInt(0, 2, Volatile)
		_, err := sed.Solve(p)
		second <- err
	}()
	deadline = time.Now().Add(5 * time.Second)
	for sed.Estimate("stall").Est.QueueLen == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second solve never queued")
		}
		time.Sleep(time.Millisecond)
	}

	sed.Close()
	select {
	case err := <-second:
		if err == nil {
			t.Fatal("queued solve reported success on a dead SeD")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued solve hung on the dead SeD instead of failing fast")
	}
}

// TestCollectNDeadChildFailsFastAndEvicts is the CollectN regression: a dead
// child must cost a fast error, not a full RPC timeout per collect, and after
// CollectMissEvict consecutive misses the agent sheds it entirely. A live
// sibling is never harmed by the dead child's misses.
func TestCollectNDeadChildFailsFastAndEvicts(t *testing.T) {
	rpc.ResetLocal()
	d := newTestDeployment(t, DeploymentSpec{MAName: "MA-cme", Local: true})
	la, err := NewAgent(AgentConfig{
		Name: "LA-cme", Kind: LocalAgent, Parent: "MA-cme", Naming: d.NamingAddr,
		Local: true, CollectTimeout: 5 * time.Second, CollectMissEvict: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := la.Start(); err != nil {
		t.Fatal(err)
	}
	defer la.Close()
	var seds []*SeD
	for _, name := range []string{"SeD-cme-a", "SeD-cme-b"} {
		sed, err := NewSeD(SeDConfig{Name: name, Parent: "LA-cme", Naming: d.NamingAddr, Local: true})
		if err != nil {
			t.Fatal(err)
		}
		spec := sleepService("work", 0, nil)
		if err := sed.AddService(spec.Desc, spec.Solve); err != nil {
			t.Fatal(err)
		}
		if err := sed.Start(); err != nil {
			t.Fatal(err)
		}
		defer sed.Close()
		seds = append(seds, sed)
	}
	if got := len(la.Children()); got != 2 {
		t.Fatalf("LA holds %d children, want 2", got)
	}
	// A healthy collect establishes the zero-miss baseline.
	if ests := la.CollectN("work", 10); len(ests) != 2 {
		t.Fatalf("healthy collect: %d estimates, want 2", len(ests))
	}

	seds[0].Close()
	// Miss 1: the dead child costs a fast error, far under CollectTimeout,
	// and the live sibling still answers.
	t0 := time.Now()
	ests := la.CollectN("work", 10)
	if took := time.Since(t0); took > time.Second {
		t.Fatalf("collect with a dead child took %v; it must fail fast, not ride the %v timeout",
			took, 5*time.Second)
	}
	if len(ests) != 1 || ests[0].ServerID != "SeD-cme-b" {
		t.Fatalf("collect past the dead child: %+v, want only SeD-cme-b", ests)
	}
	if got := len(la.Children()); got != 2 {
		t.Fatalf("child evicted after a single miss (grace is %d): %d children", 2, got)
	}
	// Miss 2 reaches the threshold: the dead child is evicted.
	la.CollectN("work", 10)
	kids := la.Children()
	if len(kids) != 1 || kids[0].Name != "SeD-cme-b" {
		t.Fatalf("after %d misses children = %+v, want only SeD-cme-b", 2, kids)
	}
	if la.EvictedCount() != 1 {
		t.Errorf("evicted count %d, want 1", la.EvictedCount())
	}
	// The survivor's streak never grew: many more collects leave it held.
	for i := 0; i < 5; i++ {
		la.CollectN("work", 10)
	}
	if got := len(la.Children()); got != 1 {
		t.Errorf("live child lost to collect-evict bookkeeping: %d children", got)
	}
}

// TestCollectNDeadChildRegistrationResets: a child that re-registers while a
// collect is in flight must not be evicted on the stale probe of its previous
// life (the regSeq guard).
func TestCollectNDeadChildRegistrationResets(t *testing.T) {
	rpc.ResetLocal()
	d := newTestDeployment(t, DeploymentSpec{MAName: "MA-cme2", Local: true})
	la, err := NewAgent(AgentConfig{
		Name: "LA-cme2", Kind: LocalAgent, Parent: "MA-cme2", Naming: d.NamingAddr,
		Local: true, CollectMissEvict: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := la.Start(); err != nil {
		t.Fatal(err)
	}
	defer la.Close()
	sed, err := NewSeD(SeDConfig{Name: "SeD-cme2", Parent: "LA-cme2", Naming: d.NamingAddr, Local: true})
	if err != nil {
		t.Fatal(err)
	}
	spec := sleepService("work", 0, nil)
	sed.AddService(spec.Desc, spec.Solve)
	if err := sed.Start(); err != nil {
		t.Fatal(err)
	}
	sed.Close()
	la.CollectN("work", 10) // miss 1 of 2

	// The SeD restarts (new life, same name) before the streak completes.
	reborn, err := NewSeD(SeDConfig{Name: "SeD-cme2", Parent: "LA-cme2", Naming: d.NamingAddr, Local: true})
	if err != nil {
		t.Fatal(err)
	}
	reborn.AddService(spec.Desc, spec.Solve)
	if err := reborn.Start(); err != nil {
		t.Fatal(err)
	}
	defer reborn.Close()
	for i := 0; i < 4; i++ {
		if ests := la.CollectN("work", 10); len(ests) != 1 {
			t.Fatalf("collect %d after restart: %d estimates, want 1", i, len(ests))
		}
	}
	if got := len(la.Children()); got != 1 {
		t.Fatalf("re-registered child evicted on its previous life's misses: %d children", got)
	}
	if fmt.Sprint(la.Children()[0].Name) != "SeD-cme2" {
		t.Fatalf("unexpected child set: %+v", la.Children())
	}
}
