package diet

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rpc"
	"repro/internal/scheduler"
)

// sleepService returns a descriptor and solve function for a service that
// doubles an int after an optional delay.
func sleepService(name string, delay time.Duration, counter *atomic.Int64) ServiceSpec {
	desc, err := NewProfileDesc(name, 0, 0, 1)
	if err != nil {
		panic(err)
	}
	desc.Set(0, Scalar, Int)
	desc.Set(1, Scalar, Int)
	return ServiceSpec{
		Desc: desc,
		Solve: func(p *Profile) error {
			if counter != nil {
				counter.Add(1)
			}
			v, err := p.ScalarInt(0)
			if err != nil {
				return err
			}
			if delay > 0 {
				time.Sleep(delay)
			}
			return p.SetScalarInt(1, 2*v, Volatile)
		},
	}
}

// newTestDeployment brings up a local-transport platform with a given shape.
func newTestDeployment(t *testing.T, spec DeploymentSpec) *Deployment {
	t.Helper()
	d, err := Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		d.Close()
		rpc.ResetLocal()
	})
	return d
}

func TestEndToEndCall(t *testing.T) {
	rpc.ResetLocal()
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-e2e",
		LAs:    []string{"LA1"},
		SeDs: []SeDSpec{{
			Name: "SeD1", Parent: "LA1", Capacity: 1, PowerGFlops: 4,
			Services: []ServiceSpec{sleepService("double", 0, nil)},
		}},
		Local: true,
	})
	client, err := d.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Finalize()

	p, _ := NewProfile("double", 0, 0, 1)
	p.SetScalarInt(0, 21, Volatile)
	info, err := client.Call(p)
	if err != nil {
		t.Fatal(err)
	}
	if info.Server != "SeD1" {
		t.Errorf("served by %q", info.Server)
	}
	if v, err := p.ScalarInt(1); err != nil || v != 42 {
		t.Errorf("result = %d, %v; want 42", v, err)
	}
	if info.Finding <= 0 || info.Total <= 0 {
		t.Errorf("timings not recorded: %+v", info)
	}
}

func TestEndToEndOverTCP(t *testing.T) {
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-tcp",
		LAs:    []string{"LA1"},
		SeDs: []SeDSpec{{
			Name: "SeD-tcp-1", Parent: "LA1", Capacity: 1, PowerGFlops: 4,
			Services: []ServiceSpec{sleepService("double", 0, nil)},
		}},
		Local: false, // real sockets
	})
	client, err := d.Client()
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewProfile("double", 0, 0, 1)
	p.SetScalarInt(0, 5, Volatile)
	if _, err := client.Call(p); err != nil {
		t.Fatal(err)
	}
	if v, _ := p.ScalarInt(1); v != 10 {
		t.Errorf("result %d, want 10", v)
	}
}

func TestUnknownServiceFails(t *testing.T) {
	rpc.ResetLocal()
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-unknown",
		LAs:    []string{"LA1"},
		SeDs: []SeDSpec{{
			Name: "SeD1u", Parent: "LA1",
			Services: []ServiceSpec{sleepService("double", 0, nil)},
		}},
		Local: true,
	})
	client, _ := d.Client()
	p, _ := NewProfile("ghostService", 0, 0, 1)
	p.SetScalarInt(0, 1, Volatile)
	if _, err := client.Call(p); err == nil {
		t.Error("unknown service should fail")
	}
}

func TestRoundRobinDistribution(t *testing.T) {
	// The paper's experiment shape in miniature: a burst of requests spread
	// equally over the SeDs.
	rpc.ResetLocal()
	var seds []SeDSpec
	counters := make([]*atomic.Int64, 4)
	for i := range counters {
		counters[i] = &atomic.Int64{}
		seds = append(seds, SeDSpec{
			Name: fmt.Sprintf("SeD-rr-%d", i), Parent: "LA1", Capacity: 1,
			Services: []ServiceSpec{sleepService("work", time.Millisecond, counters[i])},
		})
	}
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-rr", LAs: []string{"LA1"}, SeDs: seds,
		Policy: scheduler.NewRoundRobin(), Local: true,
	})
	client, _ := d.Client()

	const n = 20
	var calls []*AsyncCall
	for i := 0; i < n; i++ {
		p, _ := NewProfile("work", 0, 0, 1)
		p.SetScalarInt(0, int64(i), Volatile)
		calls = append(calls, client.CallAsync(p))
	}
	if err := WaitAll(calls); err != nil {
		t.Fatal(err)
	}
	for i, c := range counters {
		if got := c.Load(); got != n/4 {
			t.Errorf("SeD %d solved %d, want %d", i, got, n/4)
		}
	}
}

func TestSeDQueueSerialises(t *testing.T) {
	// Capacity 1 means overlapping calls must serialise; queue wait shows in
	// the second call's timing.
	rpc.ResetLocal()
	var running, maxRunning atomic.Int64
	desc, _ := NewProfileDesc("slow", 0, 0, 1)
	desc.Set(0, Scalar, Int)
	desc.Set(1, Scalar, Int)
	spec := ServiceSpec{
		Desc: desc,
		Solve: func(p *Profile) error {
			cur := running.Add(1)
			for {
				m := maxRunning.Load()
				if cur <= m || maxRunning.CompareAndSwap(m, cur) {
					break
				}
			}
			time.Sleep(30 * time.Millisecond)
			running.Add(-1)
			return p.SetScalarInt(1, 1, Volatile)
		},
	}
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-q", LAs: []string{"LA1"},
		SeDs:  []SeDSpec{{Name: "SeD-q", Parent: "LA1", Capacity: 1, Services: []ServiceSpec{spec}}},
		Local: true,
	})
	client, _ := d.Client()
	var calls []*AsyncCall
	for i := 0; i < 4; i++ {
		p, _ := NewProfile("slow", 0, 0, 1)
		p.SetScalarInt(0, int64(i), Volatile)
		calls = append(calls, client.CallAsync(p))
	}
	if err := WaitAll(calls); err != nil {
		t.Fatal(err)
	}
	if m := maxRunning.Load(); m != 1 {
		t.Errorf("max concurrent solves %d, want 1 (capacity)", m)
	}
	// The last-finishing call waited roughly 3 solve times.
	var maxWait time.Duration
	for _, c := range calls {
		info, _ := c.Wait()
		if info.QueueWait > maxWait {
			maxWait = info.QueueWait
		}
	}
	if maxWait < 60*time.Millisecond {
		t.Errorf("max queue wait %v, want >= 60ms for a serialised burst", maxWait)
	}
}

func TestFaultToleranceFallsOver(t *testing.T) {
	// Two SeDs; the first-ranked one dies after registration. The client
	// must fall over to the second.
	rpc.ResetLocal()
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-ft", LAs: []string{"LA1"},
		SeDs: []SeDSpec{
			{Name: "SeD-ft-a", Parent: "LA1", Services: []ServiceSpec{sleepService("double", 0, nil)}},
			{Name: "SeD-ft-b", Parent: "LA1", Services: []ServiceSpec{sleepService("double", 0, nil)}},
		},
		Policy: scheduler.NewRoundRobin(), Local: true,
	})
	client, _ := d.Client()

	// Kill the SeD the round-robin would pick first (sorted by name: a).
	d.SeDs[0].Close()

	p, _ := NewProfile("double", 0, 0, 1)
	p.SetScalarInt(0, 3, Volatile)
	info, err := client.Call(p)
	if err != nil {
		t.Fatalf("call should fall over to the live SeD: %v", err)
	}
	if info.Server != "SeD-ft-b" {
		t.Errorf("served by %q, want SeD-ft-b", info.Server)
	}
	if v, _ := p.ScalarInt(1); v != 6 {
		t.Errorf("result %d, want 6", v)
	}
}

func TestHierarchyTwoLevels(t *testing.T) {
	// MA -> 2 LAs -> 2 SeDs each: Collect must reach all four.
	rpc.ResetLocal()
	var seds []SeDSpec
	for la := 1; la <= 2; la++ {
		for i := 1; i <= 2; i++ {
			seds = append(seds, SeDSpec{
				Name: fmt.Sprintf("SeD-h-%d-%d", la, i), Parent: fmt.Sprintf("LA%d", la),
				Services: []ServiceSpec{sleepService("double", 0, nil)},
			})
		}
	}
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-h", LAs: []string{"LA1", "LA2"}, SeDs: seds, Local: true,
	})
	ests := d.MA.Collect("double")
	if len(ests) != 4 {
		t.Fatalf("collected %d estimates, want 4", len(ests))
	}
	topo := d.MA.Topology()
	if len(topo.Children) != 2 {
		t.Errorf("MA has %d children, want 2 LAs", len(topo.Children))
	}
	for _, la := range topo.Children {
		if len(la.Children) != 2 {
			t.Errorf("LA %s has %d children, want 2", la.Name, len(la.Children))
		}
	}
}

func TestPersistentData(t *testing.T) {
	rpc.ResetLocal()
	desc, _ := NewProfileDesc("persist", 0, 0, 1)
	desc.Set(0, Scalar, Int)
	desc.Set(1, Text, Char)
	spec := ServiceSpec{
		Desc: desc,
		Solve: func(p *Profile) error {
			return p.SetString(1, "stored-result", Persistent)
		},
	}
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-p", LAs: []string{"LA1"},
		SeDs:  []SeDSpec{{Name: "SeD-p", Parent: "LA1", Services: []ServiceSpec{spec}}},
		Local: true,
	})
	client, _ := d.Client()
	p, _ := NewProfile("persist", 0, 0, 1)
	p.SetScalarInt(0, 1, Volatile)
	if _, err := client.Call(p); err != nil {
		t.Fatal(err)
	}
	id := p.Args[1].DataID
	if id == "" {
		t.Fatal("persistent OUT arg should get a DataID")
	}
	if data, ok := d.SeDs[0].StoredData(id); !ok || string(data) != "stored-result" {
		t.Errorf("server store: %q, %v", data, ok)
	}
}

func TestAgentValidation(t *testing.T) {
	if _, err := NewAgent(AgentConfig{Name: "", Kind: MasterAgent}); err == nil {
		t.Error("agent without name should fail")
	}
	if _, err := NewAgent(AgentConfig{Name: "MA", Kind: MasterAgent, Parent: "X"}); err == nil {
		t.Error("MA with parent should fail")
	}
	if _, err := NewAgent(AgentConfig{Name: "LA", Kind: LocalAgent}); err == nil {
		t.Error("LA without parent should fail")
	}
}

func TestSeDValidation(t *testing.T) {
	if _, err := NewSeD(SeDConfig{}); err == nil {
		t.Error("SeD without name should fail")
	}
	sed, err := NewSeD(SeDConfig{Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sed.AddService(nil, nil); err == nil {
		t.Error("nil service should fail")
	}
	desc, _ := NewProfileDesc("a", 0, 0, 0)
	solve := func(*Profile) error { return nil }
	if err := sed.AddService(desc, solve); err != nil {
		t.Fatal(err)
	}
	if err := sed.AddService(desc, solve); err == nil {
		t.Error("duplicate service should fail")
	}
	names := sed.ServiceNames()
	if len(names) != 1 || names[0] != "a" {
		t.Errorf("ServiceNames = %v", names)
	}
}

func TestClientConfigParsing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "client.cfg")
	content := `
# DIET client configuration
namingAddr = local:naming-test
MAName = MA7
traceLevel = 2
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := ParseClientConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Naming != "local:naming-test" || cfg.MAName != "MA7" || cfg.TraceLevel != 2 {
		t.Errorf("parsed %+v", cfg)
	}

	bad := filepath.Join(dir, "bad.cfg")
	os.WriteFile(bad, []byte("nonsense line\n"), 0o644)
	if _, err := ParseClientConfig(bad); err == nil {
		t.Error("malformed config should fail")
	}
	empty := filepath.Join(dir, "empty.cfg")
	os.WriteFile(empty, []byte("# nothing\n"), 0o644)
	if _, err := ParseClientConfig(empty); err == nil {
		t.Error("config without namingAddr should fail")
	}
	unknown := filepath.Join(dir, "unknown.cfg")
	os.WriteFile(unknown, []byte("mystery = 1\n"), 0o644)
	if _, err := ParseClientConfig(unknown); err == nil {
		t.Error("unknown key should fail")
	}
}

func TestInitializeFromConfigFile(t *testing.T) {
	rpc.ResetLocal()
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-cfg", LAs: []string{"LA1"},
		SeDs: []SeDSpec{{Name: "SeD-cfg", Parent: "LA1",
			Services: []ServiceSpec{sleepService("double", 0, nil)}}},
		Local: true,
	})
	path := filepath.Join(t.TempDir(), "client.cfg")
	content := fmt.Sprintf("namingAddr = %s\nMAName = MA-cfg\n", d.NamingAddr)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	client, err := Initialize(path)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewProfile("double", 0, 0, 1)
	p.SetScalarInt(0, 8, Volatile)
	if _, err := client.Call(p); err != nil {
		t.Fatal(err)
	}
	if v, _ := p.ScalarInt(1); v != 16 {
		t.Errorf("result %d", v)
	}
}

func TestClientHistory(t *testing.T) {
	rpc.ResetLocal()
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-hist", LAs: []string{"LA1"},
		SeDs: []SeDSpec{{Name: "SeD-hist", Parent: "LA1",
			Services: []ServiceSpec{sleepService("double", 0, nil)}}},
		Local: true,
	})
	client, _ := d.Client()
	for i := 0; i < 3; i++ {
		p, _ := NewProfile("double", 0, 0, 1)
		p.SetScalarInt(0, int64(i), Volatile)
		if _, err := client.Call(p); err != nil {
			t.Fatal(err)
		}
	}
	h := client.History()
	if len(h) != 3 {
		t.Fatalf("history has %d entries", len(h))
	}
	for _, info := range h {
		if info.Total < info.Compute {
			t.Errorf("total %v < compute %v", info.Total, info.Compute)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	rpc.ResetLocal()
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-cc", LAs: []string{"LA1"},
		SeDs: []SeDSpec{
			{Name: "SeD-cc-1", Parent: "LA1", Capacity: 2, Services: []ServiceSpec{sleepService("double", 0, nil)}},
			{Name: "SeD-cc-2", Parent: "LA1", Capacity: 2, Services: []ServiceSpec{sleepService("double", 0, nil)}},
		},
		Local: true,
	})
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client, err := d.Client()
			if err != nil {
				errs[c] = err
				return
			}
			for i := 0; i < 5; i++ {
				p, _ := NewProfile("double", 0, 0, 1)
				p.SetScalarInt(0, int64(i), Volatile)
				if _, err := client.Call(p); err != nil {
					errs[c] = err
					return
				}
				if v, _ := p.ScalarInt(1); v != int64(2*i) {
					errs[c] = fmt.Errorf("client %d: got %d want %d", c, v, 2*i)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestSolveErrorSurfacesWhenAllServersFail(t *testing.T) {
	rpc.ResetLocal()
	desc, _ := NewProfileDesc("broken", 0, 0, 1)
	desc.Set(0, Scalar, Int)
	desc.Set(1, Scalar, Int)
	spec := ServiceSpec{
		Desc:  desc,
		Solve: func(p *Profile) error { return fmt.Errorf("solver exploded") },
	}
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-br", LAs: []string{"LA1"},
		SeDs:  []SeDSpec{{Name: "SeD-br", Parent: "LA1", Services: []ServiceSpec{spec}}},
		Local: true,
	})
	client, _ := d.Client()
	p, _ := NewProfile("broken", 0, 0, 1)
	p.SetScalarInt(0, 1, Volatile)
	_, err := client.Call(p)
	if err == nil || !strings.Contains(err.Error(), "solver exploded") {
		t.Errorf("got %v", err)
	}
}
