package diet

import (
	"fmt"
	"math"
	"time"

	"repro/internal/cori"
	"repro/internal/naming"
	"repro/internal/rpc"
)

// This file is the live-migration protocol: the online counterpart of
// re-deploying from a deploy.Replan. A long-lived Master Agent periodically
// re-derives the measured-power plan (AgentConfig.Replanner), diffs it
// against the live topology, and applies the changes without restarting
// anything — each moving SeD drains its in-flight solves, re-registers under
// its new parent carrying its cluster label, and keeps its CoRI monitor (the
// model history lives in the SeD process, so a move never retrains), while
// the old parent forwards the mover's gossip-registry contribution to the
// new parent so the receiving subtree trusts the mover's forecasts
// immediately.

// Migration is one live placement change, the executable form of a
// deploy.Change: move a SeD under a new parent agent and/or refresh the
// effective power it advertises to the schedulers.
type Migration struct {
	SeD       string
	NewParent string  // target agent; may equal the current parent
	NewPower  float64 // >0: advertise this effective power after the move; 0 keeps it
}

// MigrationResult reports one executed (or failed) migration.
type MigrationResult struct {
	Migration
	OldParent string
	Err       string // empty on success
	// PowerChanged reports that a power-only refresh actually moved the
	// SeD's advertised power (false when the pass was a no-op at the fixed
	// point).
	PowerChanged bool
}

// OK reports whether the migration succeeded.
func (r MigrationResult) OK() bool { return r.Err == "" }

// Moved reports whether the migration changed the SeD's parent (as opposed
// to a power-only refresh).
func (r MigrationResult) Moved() bool { return r.Err == "" && r.OldParent != r.NewParent }

// ReparentRequest asks a SeD to re-register under a new parent agent.
type ReparentRequest struct {
	Parent     string // new parent agent name
	ParentAddr string
	NewPower   float64 // >0: re-advertise this power after the move
}

// ReparentReply answers a Reparent call.
type ReparentReply struct {
	OK     bool
	Parent string // the parent now serving this SeD
}

// MigrateChildRequest asks an agent to hand one of its SeD children to a new
// parent (Agent.MigrateChild).
type MigrateChildRequest struct {
	Child         string
	NewParent     string
	NewParentAddr string
	NewPower      float64
}

// MigrateChildReply answers a MigrateChild call.
type MigrateChildReply struct {
	OK bool
}

// reparentDrainTimeout bounds how long a Reparent waits for in-flight solves
// to finish before giving up (the solve keeps its slot for its full
// duration, so a long-running computation can legitimately stall a move).
var reparentDrainTimeout = 30 * time.Second

// reparentRegisterTimeout bounds the ChildRegister call to the new parent —
// issued while the SeD holds every solve slot, so it must never hang on an
// unresponsive peer.
var reparentRegisterTimeout = 10 * time.Second

// Reparent drains the SeD and re-registers it under a new parent agent: the
// SeD takes every capacity slot — so no solve is mid-execution and no queued
// job can be granted while the parent switches — registers with the new
// parent (carrying its cluster label, exactly like a fresh join), then
// releases the slots. Queued and newly arriving solves keep accumulating
// during the drain and are granted unchanged afterwards: no solve is lost,
// dropped or re-run by a move. The CoRI monitor is untouched — it lives in
// this process, so the model history travels with the SeD by construction.
func (s *SeD) Reparent(req ReparentRequest) (ReparentReply, error) {
	if req.Parent == "" || req.ParentAddr == "" {
		return ReparentReply{}, fmt.Errorf("diet: SeD %s: reparent needs a parent name and address", s.cfg.Name)
	}
	// Pause the dispatcher for the duration of the drain: freed slots must
	// come to us, not seed new solves that would stretch the drain past its
	// timeout on a busy SeD.
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	deadline := time.After(reparentDrainTimeout)
	taken := 0
	release := func() {
		for i := 0; i < taken; i++ {
			s.slots <- struct{}{}
		}
	}
	for taken < s.cfg.Capacity {
		select {
		case <-s.slots:
			taken++
		case <-s.stop:
			release()
			return ReparentReply{}, fmt.Errorf("diet: SeD %s closed during reparent", s.cfg.Name)
		case <-deadline:
			release()
			return ReparentReply{}, fmt.Errorf("diet: SeD %s: reparent timed out draining in-flight solves", s.cfg.Name)
		}
	}
	defer release()

	// Commit to the new parent *before* registering there: the SeD's Stats
	// answer is what heartbeat sweeps trust, and once the new parent lists
	// this SeD it must never hear it claim the old one — a sweep acting on
	// that transient would drop a freshly registered child. Claiming first
	// is safe the other way round: until the registration lands, only the
	// old parent lists the SeD, and if its sweep acts on the new claim it
	// merely completes the handoff early.
	s.statMu.Lock()
	old := s.parent
	s.parent = req.Parent
	s.statMu.Unlock()
	rollback := func() {
		s.statMu.Lock()
		s.parent = old
		s.statMu.Unlock()
		// The old parent may have acted on the transient claim and dropped
		// this SeD; re-registering there is idempotent, so make sure it
		// still lists us (best effort — a failure here is healed like any
		// lost handoff, by heartbeats).
		if old != "" {
			nc := &naming.Client{Addr: s.cfg.Naming}
			if entry, err := nc.Resolve(old); err == nil {
				var reply ChildRegisterReply
				_ = rpc.Call(entry.Addr, "agent:"+old, "ChildRegister",
					ChildInfo{Name: s.cfg.Name, Addr: s.addr, Kind: "SeD", Cluster: s.cfg.Cluster}, &reply)
			}
		}
	}

	// The re-registration RPC is bounded: the SeD is holding every solve
	// slot here, and rpc.Call has only a dial timeout — a new parent that
	// accepts the connection but never replies must not wedge the SeD
	// forever. On timeout the registration may still land at the parent
	// later; that parent's heartbeat sweep then sees a child answering to
	// someone else and drops it (the lost-handoff healing).
	regErr := make(chan error, 1)
	go func() {
		var reply ChildRegisterReply
		regErr <- rpc.Call(req.ParentAddr, "agent:"+req.Parent, "ChildRegister",
			ChildInfo{Name: s.cfg.Name, Addr: s.addr, Kind: "SeD", Cluster: s.cfg.Cluster}, &reply)
	}()
	select {
	case err := <-regErr:
		if err != nil {
			rollback()
			return ReparentReply{}, fmt.Errorf("diet: SeD %s re-registering under %q: %w", s.cfg.Name, req.Parent, err)
		}
	case <-time.After(reparentRegisterTimeout):
		rollback()
		return ReparentReply{}, fmt.Errorf("diet: SeD %s: re-registration under %q timed out", s.cfg.Name, req.Parent)
	case <-s.stop:
		return ReparentReply{}, fmt.Errorf("diet: SeD %s closed during reparent", s.cfg.Name)
	}
	// Unlike a fresh join, the cluster prior in the ChildRegister reply is
	// deliberately ignored: this SeD carries its own trained monitor across
	// the move, and blending a borrowed prior in would dilute measured
	// history.
	if req.NewPower > 0 {
		s.SetPower(req.NewPower)
	}
	publish(s.cfg.Events, "SeD:"+s.cfg.Name, "reparent", old+" -> "+req.Parent)
	return ReparentReply{OK: true, Parent: req.Parent}, nil
}

// SetPower re-advertises the SeD's effective processing power — the
// power-only half of a live replan, applied without draining. Non-positive
// and non-finite values are ignored: this is an RPC surface, and a NaN
// would silently corrupt every scheduler ranking built on it. It reports
// whether the advertised power actually moved (beyond a relative epsilon),
// so a steady-state replan pass can tell a real refresh from a no-op.
func (s *SeD) SetPower(p float64) bool {
	if p <= 0 || math.IsNaN(p) || math.IsInf(p, 0) {
		return false
	}
	s.statMu.Lock()
	defer s.statMu.Unlock()
	if math.Abs(p-s.power) <= 1e-9*math.Max(1, s.power) {
		return false
	}
	s.power = p
	return true
}

// Power reports the power the SeD currently advertises.
func (s *SeD) Power() float64 {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	return s.power
}

// Parent reports the agent currently serving this SeD.
func (s *SeD) Parent() string {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	return s.parent
}

// MigrateChild executes one migration step at the child's current parent:
// ask the SeD to reparent, drop it from this agent's child table once it has
// re-registered, and forward its gossip-registry contribution to the new
// parent so the mover's models are trusted there before the next gossip
// round. Between the re-registration and the local removal both parents
// briefly list the child; a Collect in that window may see its estimate
// twice, which is harmless — the client still dispatches exactly one solve.
func (a *Agent) MigrateChild(req MigrateChildRequest) (MigrateChildReply, error) {
	a.mu.RLock()
	c, ok := a.children[req.Child]
	a.mu.RUnlock()
	if !ok {
		return MigrateChildReply{}, fmt.Errorf("diet: agent %s has no child %q", a.cfg.Name, req.Child)
	}
	if c.Kind != "SeD" {
		return MigrateChildReply{}, fmt.Errorf("diet: agent %s: child %q is a %s; only SeDs migrate", a.cfg.Name, req.Child, c.Kind)
	}
	if req.NewParent == a.cfg.Name {
		// Already here: a reparent-to-self would re-register the child and
		// then drop it below. Treat it as the power-only refresh it is.
		if req.NewPower > 0 {
			if err := rpc.Call(c.Addr, "sed:"+c.Name, "SetPower", req.NewPower, nil); err != nil {
				return MigrateChildReply{}, fmt.Errorf("diet: refreshing %s power: %w", req.Child, err)
			}
		}
		return MigrateChildReply{OK: true}, nil
	}
	var rep ReparentReply
	err := rpc.Call(c.Addr, "sed:"+c.Name, "Reparent",
		ReparentRequest{Parent: req.NewParent, ParentAddr: req.NewParentAddr, NewPower: req.NewPower}, &rep)
	if err != nil {
		return MigrateChildReply{}, fmt.Errorf("diet: migrating %s to %s: %w", req.Child, req.NewParent, err)
	}
	a.mu.Lock()
	delete(a.children, req.Child)
	delete(a.missed, req.Child)
	delete(a.claims, req.Child)
	a.mu.Unlock()
	// Forward the mover's registry contribution. The reply snapshot is merged
	// back, like any down-gossip exchange; a failure here only delays the new
	// parent's knowledge until its next gossip round.
	if contrib, ok := a.registry.SourceSnapshot(req.Child); ok {
		var back cori.RegistrySnapshot
		if err := rpc.Call(req.NewParentAddr, "agent:"+req.NewParent, "GossipRegistry", contrib, &back); err == nil {
			_ = a.registry.Merge(back)
		}
	}
	publish(a.cfg.Events, a.cfg.Kind.String()+":"+a.cfg.Name, "migrate_out", req.Child+" -> "+req.NewParent)
	return MigrateChildReply{OK: true}, nil
}

// ApplyPlan executes a set of migrations against the live hierarchy rooted
// at this agent: for each one it locates the SeD's current parent in the
// topology, then either forwards a MigrateChild to that parent (placement
// changed) or pushes the power refresh straight to the SeD (placement
// already right). Failures are per-migration — one unreachable SeD never
// blocks the rest of the plan.
func (a *Agent) ApplyPlan(migs []Migration) []MigrationResult {
	if len(migs) == 0 {
		return nil
	}
	return a.applyPlanOn(a.Topology(), migs)
}

// applyPlanOn is ApplyPlan against an already-collected topology snapshot,
// so ReplanOnce resolves migrations against the same view it planned from
// (and pays the recursive Topology RPC fan-out once, not twice).
func (a *Agent) applyPlanOn(topo TopologyNode, migs []Migration) []MigrationResult {
	if len(migs) == 0 {
		return nil
	}
	parentOf, sedAddr, agentAddr := topo.Index()
	out := make([]MigrationResult, 0, len(migs))
	for _, m := range migs {
		r := MigrationResult{Migration: m, OldParent: parentOf[m.SeD]}
		cur, known := parentOf[m.SeD]
		switch {
		case !known:
			r.Err = fmt.Sprintf("no SeD %q in the live hierarchy", m.SeD)
		case m.NewParent == "":
			r.Err = "migration has no target parent"
		case agentAddr[m.NewParent] == "":
			r.Err = fmt.Sprintf("no agent %q in the live hierarchy", m.NewParent)
		case cur == m.NewParent:
			// Placement already right: refresh the advertised power without a
			// drain (a no-op migration when NewPower is 0 too).
			if m.NewPower > 0 {
				if err := rpc.Call(sedAddr[m.SeD], "sed:"+m.SeD, "SetPower", m.NewPower, &r.PowerChanged); err != nil {
					r.Err = fmt.Sprintf("refreshing %s power: %v", m.SeD, err)
				}
			}
		default:
			req := MigrateChildRequest{
				Child: m.SeD, NewParent: m.NewParent,
				NewParentAddr: agentAddr[m.NewParent], NewPower: m.NewPower,
			}
			var rep MigrateChildReply
			if err := rpc.Call(agentAddr[cur], "agent:"+cur, "MigrateChild", req, &rep); err != nil {
				r.Err = fmt.Sprintf("migrating %s from %s: %v", m.SeD, cur, err)
			}
		}
		out = append(out, r)
	}
	return out
}

// ReplanOnce runs one live replanning pass: hand the current topology to the
// configured Replanner and apply whatever migrations it returns. The
// heartbeat monitor calls this every ReplanInterval; tests and tools drive
// it directly for determinism. Nil Replanner → no-op.
func (a *Agent) ReplanOnce() []MigrationResult {
	if a.cfg.Replanner == nil {
		return nil
	}
	topo := a.Topology()
	res := a.applyPlanOn(topo, a.cfg.Replanner(topo, a.registry))
	moved, refreshed := 0, 0
	for _, r := range res {
		if r.Moved() {
			moved++
		}
		if r.PowerChanged {
			refreshed++
		}
	}
	a.statMu.Lock()
	a.replans++
	a.migrated += moved
	a.statMu.Unlock()
	if a.metrics != nil {
		a.metrics.replans.With(a.cfg.Name).Inc()
		a.metrics.migrations.With(a.cfg.Name).Add(float64(moved))
	}
	// A pass that changed nothing (the fixed point) stays silent.
	if moved > 0 || refreshed > 0 {
		publish(a.cfg.Events, a.cfg.Kind.String()+":"+a.cfg.Name, "replan",
			fmt.Sprintf("%d move(s), %d power refresh(es)", moved, refreshed))
	}
	return res
}

// ReplanCount reports how many replanning passes this agent has run.
func (a *Agent) ReplanCount() int {
	a.statMu.Lock()
	defer a.statMu.Unlock()
	return a.replans
}

// MigratedCount reports how many successful parent moves replanning applied.
func (a *Agent) MigratedCount() int {
	a.statMu.Lock()
	defer a.statMu.Unlock()
	return a.migrated
}
