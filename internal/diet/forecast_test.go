package diet

import (
	"testing"
	"time"

	"repro/internal/cori"
	"repro/internal/rpc"
	"repro/internal/scheduler"
)

// waitFor polls cond until it holds or the test deadline budget runs out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSeDEstimateCarriesForecast checks the full CoRI plumbing on one SeD:
// the client's work estimate rides the profile to the server, completed
// solves land in the monitor, and the next estimation vector carries the
// forecast extension.
func TestSeDEstimateCarriesForecast(t *testing.T) {
	rpc.ResetLocal()
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-fc1", LAs: []string{"LA1"},
		SeDs: []SeDSpec{{
			Name: "SeD-fc1", Parent: "LA1", PowerGFlops: 50,
			Services: []ServiceSpec{sleepService("double", 2*time.Millisecond, nil)},
		}},
		Local: true,
	})
	sed := d.SeDs[0]

	// Before any solve: a plain estimate, no forecast.
	if est := sed.Estimate("double").Est; est.HasForecast {
		t.Fatal("fresh SeD must not claim a forecast")
	}

	client, err := d.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Finalize()
	for i := 0; i < 3; i++ {
		p, _ := NewProfile("double", 0, 0, 1)
		p.SetScalarInt(0, int64(i), Volatile)
		if _, err := client.Call(p, WithWork(float64(1000*(i+1)))); err != nil {
			t.Fatal(err)
		}
	}

	est := sed.Estimate("double").Est
	if !est.HasForecast || est.ForecastSamples != 3 {
		t.Fatalf("estimate after 3 solves: HasForecast=%v samples=%d, want true/3", est.HasForecast, est.ForecastSamples)
	}
	if est.EWMASolveSeconds <= 0 {
		t.Fatalf("EWMASolveSeconds = %g, want > 0", est.EWMASolveSeconds)
	}
	if est.ForecastConfidence <= 0 || est.ForecastConfidence > 1 {
		t.Fatalf("confidence %g out of range", est.ForecastConfidence)
	}
	if est.PendingWorkSeconds != 0 {
		t.Fatalf("idle SeD must forecast zero pending work, got %g", est.PendingWorkSeconds)
	}
	// The work estimates arrived with the profiles.
	model, ok := sed.Monitor().Model("double")
	if !ok {
		t.Fatal("monitor must hold the service model")
	}
	if model.Samples != 3 {
		t.Fatalf("monitor samples = %d, want 3", model.Samples)
	}
	met := sed.Monitor().Metrics("double")
	if met["EST_NBSAMPLES"] != 3 {
		t.Fatalf("EST_NBSAMPLES = %g, want 3", met["EST_NBSAMPLES"])
	}
}

// TestSubmitRanksByMeasuredSpeed deploys two SeDs whose advertised powers
// lie (the fast one advertises 1 GFlops, the slow one 100) under a
// forecast-aware MA. Cold, the ranking trusts the advertisement; after one
// warm-up solve on each server, the measured history must flip it.
func TestSubmitRanksByMeasuredSpeed(t *testing.T) {
	rpc.ResetLocal()
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-fc2", LAs: []string{"LA1"},
		Policy: scheduler.NewForecastAware(),
		SeDs: []SeDSpec{
			{Name: "SeD-fc2-slow", Parent: "LA1", PowerGFlops: 100,
				Services: []ServiceSpec{sleepService("double", 80*time.Millisecond, nil)}},
			{Name: "SeD-fc2-fast", Parent: "LA1", PowerGFlops: 1,
				Services: []ServiceSpec{sleepService("double", time.Millisecond, nil)}},
		},
		Local: true,
	})

	cold, err := d.MA.Submit(SubmitRequest{Service: "double", WorkGFlops: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Servers[0].Name != "SeD-fc2-slow" {
		t.Fatalf("cold ranking must trust advertised power: got %s first", cold.Servers[0].Name)
	}

	// One observed solve per SeD (bypassing the scheduler so both learn).
	for _, sed := range d.SeDs {
		p, _ := NewProfile("double", 0, 0, 1)
		p.SetScalarInt(0, 1, Volatile)
		if _, err := sed.Solve(p); err != nil {
			t.Fatal(err)
		}
	}

	warm, err := d.MA.Submit(SubmitRequest{Service: "double", WorkGFlops: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Servers[0].Name != "SeD-fc2-fast" {
		t.Fatalf("measured history must outrank the advertisement: got %s first", warm.Servers[0].Name)
	}
}

// TestEstimateDrainPricesOtherServices regression-tests the multi-service
// drain: a SeD busy with a slow service must not advertise a near-zero
// pending-work forecast for its fast service.
func TestEstimateDrainPricesOtherServices(t *testing.T) {
	rpc.ResetLocal()
	release := make(chan struct{})
	blocking := sleepService("slowsvc", 0, nil)
	innerSolve := blocking.Solve
	blocking.Solve = func(p *Profile) error { <-release; return innerSolve(p) }
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-fc4", LAs: []string{"LA1"},
		SeDs: []SeDSpec{{
			Name: "SeD-fc4", Parent: "LA1", PowerGFlops: 50,
			Services: []ServiceSpec{sleepService("fastsvc", time.Millisecond, nil), blocking},
		}},
		Local: true,
	})
	sed := d.SeDs[0]

	// History for both services: fastsvc ~1ms, slowsvc trained with a long
	// observed duration injected directly into the monitor.
	p, _ := NewProfile("fastsvc", 0, 0, 1)
	p.SetScalarInt(0, 1, Volatile)
	if _, err := sed.Solve(p); err != nil {
		t.Fatal(err)
	}
	sed.Monitor().Observe(cori.Sample{Service: "slowsvc", Duration: time.Hour})

	// Occupy the SeD with a slowsvc job (it blocks until released).
	go func() {
		q, _ := NewProfile("slowsvc", 0, 0, 1)
		q.SetScalarInt(0, 1, Volatile)
		sed.Solve(q)
	}()
	waitFor(t, func() bool { return sed.Stats().Running == 1 })

	est := sed.Estimate("fastsvc").Est
	close(release)
	if !est.HasForecast {
		t.Fatal("estimate must carry a forecast")
	}
	// The pending slowsvc job must be priced at ~1h, not at fastsvc's ~1ms.
	if est.PendingWorkSeconds < 1800 {
		t.Fatalf("PendingWorkSeconds = %g, want ≈3600 (the slow service's EWMA)", est.PendingWorkSeconds)
	}
}

// TestTruncatePrefersForecastDrain unit-tests the agent's distributed
// truncation: under a CollectN cap, a server whose drain forecast is short
// must survive over one with a shorter queue but a huge predicted drain.
func TestTruncatePrefersForecastDrain(t *testing.T) {
	a, err := NewAgent(AgentConfig{Name: "MA-fc3", Kind: MasterAgent})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id string, queue int, pendingS float64) scheduler.Estimate {
		return scheduler.Estimate{
			ServerID: id, Service: "svc", Capacity: 1, QueueLen: queue,
			PowerGFlops: 10, HasForecast: true, ForecastSamples: 5,
			EWMASolveSeconds: 1, ForecastConfidence: 1, PendingWorkSeconds: pendingS,
		}
	}
	ests := []scheduler.Estimate{
		mk("A", 1, 5000), // short queue hiding one huge job
		mk("B", 3, 20),   // longer queue of tiny jobs
	}
	got := a.truncate(CollectRequest{Service: "svc", Limit: 1}, ests)
	if len(got) != 1 || got[0].ServerID != "B" {
		t.Fatalf("truncation must keep the fast-draining B, kept %+v", got)
	}

	// Without forecasts, a loaded server of unknown speed loses to one with
	// measured history.
	ests = []scheduler.Estimate{
		{ServerID: "C", Service: "svc", Capacity: 1, QueueLen: 1, PowerGFlops: 50, LastSolveSeconds: -1},
		{ServerID: "D", Service: "svc", Capacity: 1, QueueLen: 2, PowerGFlops: 10, LastSolveSeconds: 3},
	}
	got = a.truncate(CollectRequest{Service: "svc", Limit: 1}, ests)
	if len(got) != 1 || got[0].ServerID != "D" {
		t.Fatalf("predictable D must survive over unknown-speed C, kept %+v", got)
	}
}
