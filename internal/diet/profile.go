// Package diet implements the GridRPC middleware of the paper: a
// client/agent/server architecture in which clients submit problem profiles
// to a Master Agent, a hierarchy of agents collects computation abilities
// from Server Daemons (SeDs), a scheduling policy picks the best server, and
// the client then ships its data to the chosen SeD for solving.
//
// The data model mirrors DIET's: a problem is described by a profile with
// IN, INOUT and OUT arguments of scalar/vector/matrix/string/file types and
// volatile/persistent/sticky persistence modes.
package diet

import (
	"encoding/binary"
	"fmt"
	"math"
)

// BaseType enumerates element types of profile arguments.
type BaseType int

// Base types (DIET_CHAR, DIET_INT, DIET_DOUBLE of the C API).
const (
	Char BaseType = iota
	Int
	Double
)

// String implements fmt.Stringer.
func (b BaseType) String() string {
	switch b {
	case Char:
		return "char"
	case Int:
		return "int"
	case Double:
		return "double"
	}
	return fmt.Sprintf("BaseType(%d)", int(b))
}

// ArgKind enumerates argument container types.
type ArgKind int

// Argument kinds (DIET_SCALAR, DIET_VECTOR, ... of the C API).
const (
	Scalar ArgKind = iota
	Vector
	Matrix
	Text
	File
)

// String implements fmt.Stringer.
func (k ArgKind) String() string {
	switch k {
	case Scalar:
		return "scalar"
	case Vector:
		return "vector"
	case Matrix:
		return "matrix"
	case Text:
		return "string"
	case File:
		return "file"
	}
	return fmt.Sprintf("ArgKind(%d)", int(k))
}

// Persistence enumerates DIET data persistence modes.
type Persistence int

// Persistence modes: volatile data moves with every call, persistent data
// stays on the server addressed by a DataID, sticky data stays and cannot be
// moved to another server.
const (
	Volatile Persistence = iota
	Persistent
	Sticky
)

// String implements fmt.Stringer.
func (p Persistence) String() string {
	switch p {
	case Volatile:
		return "volatile"
	case Persistent:
		return "persistent"
	case Sticky:
		return "sticky"
	}
	return fmt.Sprintf("Persistence(%d)", int(p))
}

// Direction classifies profile arguments.
type Direction int

// Argument directions.
const (
	In Direction = iota
	InOut
	Out
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case In:
		return "IN"
	case InOut:
		return "INOUT"
	}
	return "OUT"
}

// Arg is one profile argument. Data carries the encoded payload; for files
// FileName preserves the original name. A persistent argument may carry a
// DataID instead of inline data, referring to data already resident on the
// server.
type Arg struct {
	Kind       ArgKind
	Base       BaseType
	Persist    Persistence
	Data       []byte
	FileName   string
	Rows, Cols int
	DataID     string
}

// Profile is a problem description plus its argument values: the
// diet_profile_t of the C API. Args[0..LastIn] are IN, (LastIn..LastInOut]
// are INOUT, (LastInOut..LastOut] are OUT; LastIn == -1 means no IN args,
// and so on.
type Profile struct {
	Service                    string
	LastIn, LastInOut, LastOut int
	Args                       []Arg
	// WorkGFlops is the client's work estimate for this call (0 = unknown).
	// It travels to the SeD so the CoRI monitor can pair each observed solve
	// duration with its work size and fit a duration-vs-work model.
	WorkGFlops float64
	// RequestID is the trace identity diet.Client stamps on submission; it
	// rides the profile to the SeD so every span of one request — submit,
	// schedule, queue, reserve, solve, complete — shares an ID. Empty when
	// the caller bypasses Client.Call.
	RequestID string
}

// NewProfile allocates a profile for the named service with the DIET index
// convention, e.g. NewProfile("ramsesZoom2", 6, 6, 8) describes seven IN
// arguments (0–6), no INOUT, and two OUT arguments (7–8).
func NewProfile(service string, lastIn, lastInOut, lastOut int) (*Profile, error) {
	if service == "" {
		return nil, fmt.Errorf("diet: profile needs a service name")
	}
	if lastIn < -1 || lastInOut < lastIn || lastOut < lastInOut {
		return nil, fmt.Errorf("diet: invalid profile indices in=%d inout=%d out=%d", lastIn, lastInOut, lastOut)
	}
	return &Profile{
		Service: service,
		LastIn:  lastIn, LastInOut: lastInOut, LastOut: lastOut,
		Args: make([]Arg, lastOut+1),
	}, nil
}

// NArgs returns the number of arguments.
func (p *Profile) NArgs() int { return len(p.Args) }

// Direction returns the direction of argument i.
func (p *Profile) Direction(i int) Direction {
	switch {
	case i <= p.LastIn:
		return In
	case i <= p.LastInOut:
		return InOut
	default:
		return Out
	}
}

// checkIndex validates an argument index.
func (p *Profile) checkIndex(i int) error {
	if i < 0 || i >= len(p.Args) {
		return fmt.Errorf("diet: argument index %d out of range [0,%d)", i, len(p.Args))
	}
	return nil
}

// SetScalarInt stores a 64-bit integer scalar at index i.
func (p *Profile) SetScalarInt(i int, v int64, persist Persistence) error {
	if err := p.checkIndex(i); err != nil {
		return err
	}
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, uint64(v))
	p.Args[i] = Arg{Kind: Scalar, Base: Int, Persist: persist, Data: buf}
	return nil
}

// ScalarInt reads a 64-bit integer scalar from index i.
func (p *Profile) ScalarInt(i int) (int64, error) {
	if err := p.checkIndex(i); err != nil {
		return 0, err
	}
	a := &p.Args[i]
	if a.Kind != Scalar || a.Base != Int {
		return 0, fmt.Errorf("diet: argument %d is %s/%s, not scalar/int", i, a.Kind, a.Base)
	}
	if len(a.Data) != 8 {
		return 0, fmt.Errorf("diet: argument %d has %d payload bytes, want 8", i, len(a.Data))
	}
	return int64(binary.LittleEndian.Uint64(a.Data)), nil
}

// SetScalarDouble stores a float64 scalar at index i.
func (p *Profile) SetScalarDouble(i int, v float64, persist Persistence) error {
	if err := p.checkIndex(i); err != nil {
		return err
	}
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
	p.Args[i] = Arg{Kind: Scalar, Base: Double, Persist: persist, Data: buf}
	return nil
}

// ScalarDouble reads a float64 scalar from index i.
func (p *Profile) ScalarDouble(i int) (float64, error) {
	if err := p.checkIndex(i); err != nil {
		return 0, err
	}
	a := &p.Args[i]
	if a.Kind != Scalar || a.Base != Double {
		return 0, fmt.Errorf("diet: argument %d is %s/%s, not scalar/double", i, a.Kind, a.Base)
	}
	if len(a.Data) != 8 {
		return 0, fmt.Errorf("diet: argument %d has %d payload bytes, want 8", i, len(a.Data))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(a.Data)), nil
}

// SetVectorDouble stores a float64 vector at index i.
func (p *Profile) SetVectorDouble(i int, v []float64, persist Persistence) error {
	if err := p.checkIndex(i); err != nil {
		return err
	}
	buf := make([]byte, 8*len(v))
	for j, x := range v {
		binary.LittleEndian.PutUint64(buf[8*j:], math.Float64bits(x))
	}
	p.Args[i] = Arg{Kind: Vector, Base: Double, Persist: persist, Data: buf, Rows: len(v)}
	return nil
}

// VectorDouble reads a float64 vector from index i.
func (p *Profile) VectorDouble(i int) ([]float64, error) {
	if err := p.checkIndex(i); err != nil {
		return nil, err
	}
	a := &p.Args[i]
	if a.Kind != Vector || a.Base != Double {
		return nil, fmt.Errorf("diet: argument %d is %s/%s, not vector/double", i, a.Kind, a.Base)
	}
	if len(a.Data) != 8*a.Rows {
		return nil, fmt.Errorf("diet: argument %d has %d payload bytes, want %d", i, len(a.Data), 8*a.Rows)
	}
	out := make([]float64, a.Rows)
	for j := range out {
		out[j] = math.Float64frombits(binary.LittleEndian.Uint64(a.Data[8*j:]))
	}
	return out, nil
}

// SetMatrixDouble stores a rows×cols float64 matrix (row major) at index i.
func (p *Profile) SetMatrixDouble(i int, rows, cols int, v []float64, persist Persistence) error {
	if err := p.checkIndex(i); err != nil {
		return err
	}
	if rows*cols != len(v) {
		return fmt.Errorf("diet: matrix %dx%d needs %d values, got %d", rows, cols, rows*cols, len(v))
	}
	buf := make([]byte, 8*len(v))
	for j, x := range v {
		binary.LittleEndian.PutUint64(buf[8*j:], math.Float64bits(x))
	}
	p.Args[i] = Arg{Kind: Matrix, Base: Double, Persist: persist, Data: buf, Rows: rows, Cols: cols}
	return nil
}

// MatrixDouble reads a float64 matrix from index i.
func (p *Profile) MatrixDouble(i int) (rows, cols int, v []float64, err error) {
	if err := p.checkIndex(i); err != nil {
		return 0, 0, nil, err
	}
	a := &p.Args[i]
	if a.Kind != Matrix || a.Base != Double {
		return 0, 0, nil, fmt.Errorf("diet: argument %d is %s/%s, not matrix/double", i, a.Kind, a.Base)
	}
	if len(a.Data) != 8*a.Rows*a.Cols {
		return 0, 0, nil, fmt.Errorf("diet: argument %d has %d payload bytes, want %d", i, len(a.Data), 8*a.Rows*a.Cols)
	}
	v = make([]float64, a.Rows*a.Cols)
	for j := range v {
		v[j] = math.Float64frombits(binary.LittleEndian.Uint64(a.Data[8*j:]))
	}
	return a.Rows, a.Cols, v, nil
}

// SetString stores a string at index i.
func (p *Profile) SetString(i int, s string, persist Persistence) error {
	if err := p.checkIndex(i); err != nil {
		return err
	}
	p.Args[i] = Arg{Kind: Text, Base: Char, Persist: persist, Data: []byte(s)}
	return nil
}

// StringArg reads a string from index i.
func (p *Profile) StringArg(i int) (string, error) {
	if err := p.checkIndex(i); err != nil {
		return "", err
	}
	a := &p.Args[i]
	if a.Kind != Text {
		return "", fmt.Errorf("diet: argument %d is %s, not string", i, a.Kind)
	}
	return string(a.Data), nil
}

// SetFileBytes stores a file argument (name + content) at index i. DIET
// transfers volatile files with the call, which is what the paper's client
// does with <namelist.nml>.
func (p *Profile) SetFileBytes(i int, name string, content []byte, persist Persistence) error {
	if err := p.checkIndex(i); err != nil {
		return err
	}
	p.Args[i] = Arg{Kind: File, Base: Char, Persist: persist, Data: content, FileName: name}
	return nil
}

// SetFileRef stores a reference to a platform-resident file at index i: the
// argument carries only the DataID, no payload, and the solving server pulls
// the bytes from the data manager — free when a replica is already local,
// which is exactly what data-aware placement optimises for. References must
// be persistent or sticky; volatile data always travels inline.
func (p *Profile) SetFileRef(i int, name, id string, persist Persistence) error {
	if err := p.checkIndex(i); err != nil {
		return err
	}
	if id == "" {
		return fmt.Errorf("diet: file reference at %d needs a DataID", i)
	}
	if persist == Volatile {
		return fmt.Errorf("diet: file reference %q must be persistent or sticky", id)
	}
	p.Args[i] = Arg{Kind: File, Base: Char, Persist: persist, FileName: name, DataID: id}
	return nil
}

// FileBytes reads a file argument from index i.
func (p *Profile) FileBytes(i int) (name string, content []byte, err error) {
	if err := p.checkIndex(i); err != nil {
		return "", nil, err
	}
	a := &p.Args[i]
	if a.Kind != File {
		return "", nil, fmt.Errorf("diet: argument %d is %s, not file", i, a.Kind)
	}
	return a.FileName, a.Data, nil
}

// PayloadBytes sums the argument payload sizes with the given directions,
// used to model and measure transfer costs.
func (p *Profile) PayloadBytes(dirs ...Direction) int {
	want := make(map[Direction]bool, len(dirs))
	for _, d := range dirs {
		want[d] = true
	}
	total := 0
	for i := range p.Args {
		if want[p.Direction(i)] {
			total += len(p.Args[i].Data)
		}
	}
	return total
}

// ArgDesc is an argument's type signature.
type ArgDesc struct {
	Kind ArgKind
	Base BaseType
}

// ProfileDesc is a service signature: the diet_profile_desc_t a server
// registers in its service table and a client must match.
type ProfileDesc struct {
	Service                    string
	LastIn, LastInOut, LastOut int
	Args                       []ArgDesc
}

// NewProfileDesc allocates a descriptor with the DIET index convention.
func NewProfileDesc(service string, lastIn, lastInOut, lastOut int) (*ProfileDesc, error) {
	p, err := NewProfile(service, lastIn, lastInOut, lastOut)
	if err != nil {
		return nil, err
	}
	return &ProfileDesc{
		Service: service,
		LastIn:  lastIn, LastInOut: lastInOut, LastOut: lastOut,
		Args: make([]ArgDesc, len(p.Args)),
	}, nil
}

// Set records the type of argument i.
func (d *ProfileDesc) Set(i int, kind ArgKind, base BaseType) error {
	if i < 0 || i >= len(d.Args) {
		return fmt.Errorf("diet: descriptor index %d out of range [0,%d)", i, len(d.Args))
	}
	d.Args[i] = ArgDesc{Kind: kind, Base: base}
	return nil
}

// DescOf extracts the signature of a concrete profile.
func DescOf(p *Profile) *ProfileDesc {
	d := &ProfileDesc{
		Service: p.Service,
		LastIn:  p.LastIn, LastInOut: p.LastInOut, LastOut: p.LastOut,
		Args: make([]ArgDesc, len(p.Args)),
	}
	for i := range p.Args {
		d.Args[i] = ArgDesc{Kind: p.Args[i].Kind, Base: p.Args[i].Base}
	}
	return d
}

// Matches verifies a concrete profile against the descriptor. OUT arguments
// are not type-checked (the server fills them), matching DIET's behaviour of
// letting the client pass placeholder OUT arguments.
func (d *ProfileDesc) Matches(p *Profile) error {
	if p.Service != d.Service {
		return fmt.Errorf("diet: profile service %q does not match descriptor %q", p.Service, d.Service)
	}
	if p.LastIn != d.LastIn || p.LastInOut != d.LastInOut || p.LastOut != d.LastOut {
		return fmt.Errorf("diet: profile indices (%d,%d,%d) do not match descriptor (%d,%d,%d)",
			p.LastIn, p.LastInOut, p.LastOut, d.LastIn, d.LastInOut, d.LastOut)
	}
	for i := range d.Args {
		if p.Direction(i) == Out {
			continue
		}
		if p.Args[i].Kind != d.Args[i].Kind || p.Args[i].Base != d.Args[i].Base {
			return fmt.Errorf("diet: argument %d is %s/%s, descriptor wants %s/%s",
				i, p.Args[i].Kind, p.Args[i].Base, d.Args[i].Kind, d.Args[i].Base)
		}
	}
	return nil
}
