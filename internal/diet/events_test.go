package diet

import (
	"testing"

	"repro/internal/logsvc"
	"repro/internal/rpc"
)

func TestMonitoringTrace(t *testing.T) {
	// Deploy with a LogService bus attached to every component and verify
	// the VizDIET-style trace: starts, registrations, submission, solve.
	rpc.ResetLocal()
	defer rpc.ResetLocal()
	bus := logsvc.New(1000)

	d, err := Deploy(DeploymentSpec{MAName: "MA-ev", Local: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Attach the instrumented components by hand under the same naming
	// service, so only they publish to the bus (DeploymentSpec.Events would
	// instrument the whole platform).
	la, err := NewAgent(AgentConfig{
		Name: "LA-ev", Kind: LocalAgent, Parent: "MA-ev",
		Naming: d.NamingAddr, Local: true, Events: bus,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := la.Start(); err != nil {
		t.Fatal(err)
	}
	defer la.Close()
	sed, err := NewSeD(SeDConfig{
		Name: "SeD-ev", Parent: "LA-ev", Naming: d.NamingAddr, Local: true, Events: bus,
	})
	if err != nil {
		t.Fatal(err)
	}
	desc, _ := NewProfileDesc("double", 0, 0, 1)
	desc.Set(0, Scalar, Int)
	desc.Set(1, Scalar, Int)
	sed.AddService(desc, func(p *Profile) error {
		v, _ := p.ScalarInt(0)
		return p.SetScalarInt(1, 2*v, Volatile)
	})
	if err := sed.Start(); err != nil {
		t.Fatal(err)
	}
	defer sed.Close()

	client, err := d.Client()
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewProfile("double", 0, 0, 1)
	p.SetScalarInt(0, 4, Volatile)
	if _, err := client.Call(p); err != nil {
		t.Fatal(err)
	}

	counts := bus.CountsByKind()
	if counts["start"] != 2 { // LA + SeD (the MA was deployed without a sink)
		t.Errorf("start events %d, want 2", counts["start"])
	}
	if counts["child_register"] != 1 { // SeD under LA
		t.Errorf("child_register events %d, want 1", counts["child_register"])
	}
	if counts["solve_begin"] != 1 || counts["solve_end"] != 1 {
		t.Errorf("solve events begin=%d end=%d, want 1/1", counts["solve_begin"], counts["solve_end"])
	}
	comps := bus.Components()
	if len(comps) != 2 {
		t.Errorf("components %v", comps)
	}
}
