package diet

import (
	"testing"
	"time"

	"repro/internal/rpc"
	"repro/internal/scheduler"
)

// TestGossipWarmStartsJoiningSeD walks the full sharing loop through a
// two-level hierarchy: a veteran SeD trains its monitor, gossip rounds carry
// its models up to the MA and across to a second LA, and a fresh SeD
// registering on the same cluster under that *other* LA warm-starts — its
// very first estimate carries a forecast with nonzero confidence.
func TestGossipWarmStartsJoiningSeD(t *testing.T) {
	rpc.ResetLocal()
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-gsp", LAs: []string{"LA-g1", "LA-g2"},
		SeDs: []SeDSpec{{
			Name: "SeD-gsp-vet", Parent: "LA-g1", Cluster: "grillon", PowerGFlops: 50,
			Services: []ServiceSpec{sleepService("double", 2*time.Millisecond, nil)},
		}},
		Local: true,
	})
	veteran := d.SeDs[0]

	// Train the veteran with varied work sizes so its model carries a fit.
	client, err := d.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Finalize()
	for i := 0; i < 4; i++ {
		p, _ := NewProfile("double", 0, 0, 1)
		p.SetScalarInt(0, int64(i), Volatile)
		if _, err := client.Call(p, WithWork(float64(1000*(i+1)))); err != nil {
			t.Fatal(err)
		}
	}

	// Gossip rides the heartbeat sweeps: one LA round lifts the models into
	// LA-g1's registry, one MA round exchanges registries with both LAs —
	// after a second MA round every agent knows the grillon models.
	la1, la2 := d.LAs[0], d.LAs[1]
	la1.GossipRound()
	if _, ok := la1.Registry().Prior("grillon", "double"); !ok {
		t.Fatal("LA gossip round must lift the veteran's models into its registry")
	}
	d.MA.GossipRound()
	if _, ok := d.MA.Registry().Prior("grillon", "double"); !ok {
		t.Fatal("MA gossip round must merge the LA registry")
	}
	d.MA.GossipRound() // second round pushes the merged view down to LA-g2
	prior, ok := la2.Registry().Prior("grillon", "double")
	if !ok {
		t.Fatal("down-gossip must reach the sibling LA")
	}
	if prior.Samples != 4 || prior.EWMASeconds <= 0 {
		t.Fatalf("gossiped prior looks untrained: %+v", prior)
	}

	// A fresh SeD joins the characterized cluster under LA-g2: registration
	// hands it the prior and its first estimate already carries a forecast.
	joiner, err := NewSeD(SeDConfig{
		Name: "SeD-gsp-join", Parent: "LA-g2", Naming: d.NamingAddr,
		Cluster: "grillon", PowerGFlops: 50, Local: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := sleepService("double", 2*time.Millisecond, nil)
	if err := joiner.AddService(spec.Desc, spec.Solve); err != nil {
		t.Fatal(err)
	}
	if err := joiner.Start(); err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()

	est := joiner.Estimate("double").Est
	if !est.HasForecast || est.ForecastSamples <= 0 {
		t.Fatalf("warm-started SeD must forecast before its first solve: %+v", est)
	}
	if est.ForecastConfidence < scheduler.DefaultMinConfidence {
		t.Fatalf("warm forecast confidence %g below the trust floor", est.ForecastConfidence)
	}
	model, ok := joiner.Monitor().Model("double")
	if !ok || !model.Warm {
		t.Fatalf("joiner's model must be flagged Warm, got ok=%v %+v", ok, model)
	}
	// The joiner holds only borrowed models, so it contributes nothing back
	// to gossip — the prior cannot echo through the registry.
	if got := joiner.Models(); len(got) != 0 {
		t.Fatalf("a warm-only SeD must withhold borrowed models from gossip, got %d", len(got))
	}
	// The warm model is the veteran's, not the advertised-power fallback.
	vet, _ := veteran.Monitor().Model("double")
	if got, want := model.SolveSeconds(2500), vet.SolveSeconds(2500); got <= 0 || want <= 0 ||
		got/want > 1.2 || want/got > 1.2 {
		t.Fatalf("warm forecast %gs diverges from the veteran's %gs", got, want)
	}

	// A SeD joining an *unknown* cluster stays cold.
	cold, err := NewSeD(SeDConfig{
		Name: "SeD-gsp-cold", Parent: "LA-g2", Naming: d.NamingAddr,
		Cluster: "violette", PowerGFlops: 50, Local: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec2 := sleepService("double", 2*time.Millisecond, nil)
	if err := cold.AddService(spec2.Desc, spec2.Solve); err != nil {
		t.Fatal(err)
	}
	if err := cold.Start(); err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	if est := cold.Estimate("double").Est; est.HasForecast {
		t.Fatalf("a SeD on an unknown cluster must stay cold, got %+v", est)
	}
}

// TestGossipRoundSkipsDeadChildren checks gossip degrades like a missed
// heartbeat: a closed SeD contributes nothing and does not stall the round.
func TestGossipRoundSkipsDeadChildren(t *testing.T) {
	rpc.ResetLocal()
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-gsp2", LAs: []string{"LA1"},
		SeDs: []SeDSpec{
			{Name: "SeD-gsp2-a", Parent: "LA1", Cluster: "grillon", PowerGFlops: 50,
				Services: []ServiceSpec{sleepService("double", time.Millisecond, nil)}},
			{Name: "SeD-gsp2-b", Parent: "LA1", Cluster: "grillon", PowerGFlops: 50,
				Services: []ServiceSpec{sleepService("double", time.Millisecond, nil)}},
		},
		Local: true,
	})
	for _, sed := range d.SeDs {
		p, _ := NewProfile("double", 0, 0, 1)
		p.SetScalarInt(0, 1, Volatile)
		if _, err := sed.Solve(p); err != nil {
			t.Fatal(err)
		}
	}
	d.SeDs[1].Close()
	d.LAs[0].GossipRound()
	prior, ok := d.LAs[0].Registry().Prior("grillon", "double")
	if !ok {
		t.Fatal("the live SeD's models must still arrive")
	}
	if prior.Samples != 1 {
		t.Fatalf("prior must hold only the live SeD's sample, got %d", prior.Samples)
	}
}
