package diet

// GridRPC compatibility layer. The paper (§5.3.1) notes that "the client API
// follows the GridRPC definition: all diet_ functions are 'duplicated' with
// grpc_ functions". This file provides the same duplication in Go: the
// standard GridRPC verbs expressed over the Client and a FunctionHandle that
// binds a server to a service name, per Seymour et al. 2002.

import "fmt"

// FunctionHandle associates a server with a service name, the GridRPC
// grpc_function_handle_t. A default handle lets the middleware pick the
// server on each call; a bound handle pins one server.
type FunctionHandle struct {
	client  *Client
	Service string
	Bound   *ServerRef // nil = let the MA choose per call
}

// GrpcInitialize opens a session from a configuration file
// (grpc_initialize).
func GrpcInitialize(configPath string) (*Client, error) { return Initialize(configPath) }

// GrpcFinalize closes the session (grpc_finalize).
func GrpcFinalize(c *Client) { c.Finalize() }

// FunctionHandleDefault creates a handle that lets the middleware choose the
// server for every call (grpc_function_handle_default).
func (c *Client) FunctionHandleDefault(service string) (*FunctionHandle, error) {
	if service == "" {
		return nil, fmt.Errorf("diet: function handle needs a service name")
	}
	return &FunctionHandle{client: c, Service: service}, nil
}

// FunctionHandleInit creates a handle bound to a specific server
// (grpc_function_handle_init).
func (c *Client) FunctionHandleInit(service string, server ServerRef) (*FunctionHandle, error) {
	h, err := c.FunctionHandleDefault(service)
	if err != nil {
		return nil, err
	}
	h.Bound = &server
	return h, nil
}

// GrpcCall performs a blocking call through the handle (grpc_call).
func (h *FunctionHandle) GrpcCall(p *Profile, opts ...CallOption) (*CallInfo, error) {
	if p.Service != h.Service {
		return nil, fmt.Errorf("diet: profile is for %q, handle is for %q", p.Service, h.Service)
	}
	if h.Bound == nil {
		return h.client.Call(p, opts...)
	}
	return h.client.callOn(*h.Bound, p)
}

// GrpcCallAsync performs a non-blocking call through the handle
// (grpc_call_async); the returned AsyncCall is the GridRPC session ID.
func (h *FunctionHandle) GrpcCallAsync(p *Profile, opts ...CallOption) *AsyncCall {
	if h.Bound == nil {
		return h.client.CallAsync(p, opts...)
	}
	a := &AsyncCall{done: make(chan struct{})}
	go func() {
		defer close(a.done)
		a.info, a.err = h.client.callOn(*h.Bound, p)
	}()
	return a
}

// GrpcWait blocks on one async call (grpc_wait).
func GrpcWait(a *AsyncCall) (*CallInfo, error) { return a.Wait() }

// GrpcWaitAll blocks on a set of async calls (grpc_wait_all).
func GrpcWaitAll(calls []*AsyncCall) error { return WaitAll(calls) }

// GrpcWaitAny blocks until any one of the calls completes and returns its
// index (grpc_wait_any).
func GrpcWaitAny(calls []*AsyncCall) (int, *CallInfo, error) {
	if len(calls) == 0 {
		return -1, nil, fmt.Errorf("diet: GrpcWaitAny on empty set")
	}
	type done struct {
		idx  int
		info *CallInfo
		err  error
	}
	ch := make(chan done, len(calls))
	for i, a := range calls {
		go func(i int, a *AsyncCall) {
			info, err := a.Wait()
			ch <- done{i, info, err}
		}(i, a)
	}
	d := <-ch
	return d.idx, d.info, d.err
}
