package diet

import (
	"testing"

	"repro/internal/rpc"
)

func grpcDeployment(t *testing.T) *Deployment {
	t.Helper()
	rpc.ResetLocal()
	return newTestDeployment(t, DeploymentSpec{
		MAName: "MA-grpc", LAs: []string{"LA1"},
		SeDs: []SeDSpec{
			{Name: "SeD-grpc-a", Parent: "LA1", Services: []ServiceSpec{sleepService("double", 0, nil)}},
			{Name: "SeD-grpc-b", Parent: "LA1", Services: []ServiceSpec{sleepService("double", 0, nil)}},
		},
		Local: true,
	})
}

func TestFunctionHandleDefault(t *testing.T) {
	d := grpcDeployment(t)
	client, _ := d.Client()
	h, err := client.FunctionHandleDefault("double")
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewProfile("double", 0, 0, 1)
	p.SetScalarInt(0, 10, Volatile)
	info, err := h.GrpcCall(p)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := p.ScalarInt(1); v != 20 {
		t.Errorf("result %d, want 20", v)
	}
	if info.Server == "" {
		t.Error("no server recorded")
	}
	// Service mismatch is rejected.
	wrong, _ := NewProfile("other", 0, 0, 1)
	if _, err := h.GrpcCall(wrong); err == nil {
		t.Error("profile/handle service mismatch should fail")
	}
	if _, err := client.FunctionHandleDefault(""); err == nil {
		t.Error("empty service should fail")
	}
}

func TestFunctionHandleBound(t *testing.T) {
	d := grpcDeployment(t)
	client, _ := d.Client()
	// Bind explicitly to the second SeD; every call must land there.
	h, err := client.FunctionHandleInit("double", ServerRef{
		Name: "SeD-grpc-b", Addr: d.SeDs[1].Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p, _ := NewProfile("double", 0, 0, 1)
		p.SetScalarInt(0, int64(i), Volatile)
		info, err := h.GrpcCall(p)
		if err != nil {
			t.Fatal(err)
		}
		if info.Server != "SeD-grpc-b" {
			t.Fatalf("bound handle used %q", info.Server)
		}
	}
}

func TestGrpcAsyncAndWaitAny(t *testing.T) {
	d := grpcDeployment(t)
	client, _ := d.Client()
	h, _ := client.FunctionHandleDefault("double")
	var calls []*AsyncCall
	var profiles []*Profile
	for i := 0; i < 4; i++ {
		p, _ := NewProfile("double", 0, 0, 1)
		p.SetScalarInt(0, int64(i), Volatile)
		profiles = append(profiles, p)
		calls = append(calls, h.GrpcCallAsync(p))
	}
	idx, info, err := GrpcWaitAny(calls)
	if err != nil {
		t.Fatal(err)
	}
	if idx < 0 || idx >= 4 || info == nil {
		t.Fatalf("GrpcWaitAny = %d, %v", idx, info)
	}
	if err := GrpcWaitAll(calls); err != nil {
		t.Fatal(err)
	}
	for i, p := range profiles {
		if v, _ := p.ScalarInt(1); v != int64(2*i) {
			t.Errorf("call %d result %d, want %d", i, v, 2*i)
		}
	}
	if _, _, err := GrpcWaitAny(nil); err == nil {
		t.Error("GrpcWaitAny on empty set should fail")
	}
}

func TestGrpcAsyncBoundHandle(t *testing.T) {
	d := grpcDeployment(t)
	client, _ := d.Client()
	h, _ := client.FunctionHandleInit("double", ServerRef{
		Name: "SeD-grpc-a", Addr: d.SeDs[0].Addr(),
	})
	p, _ := NewProfile("double", 0, 0, 1)
	p.SetScalarInt(0, 21, Volatile)
	info, err := GrpcWait(h.GrpcCallAsync(p))
	if err != nil {
		t.Fatal(err)
	}
	if info.Server != "SeD-grpc-a" {
		t.Errorf("bound async used %q", info.Server)
	}
	if v, _ := p.ScalarInt(1); v != 42 {
		t.Errorf("result %d", v)
	}
}

func TestGrpcInitializeAliases(t *testing.T) {
	// The alias entry points must behave like their diet_ counterparts.
	d := grpcDeployment(t)
	client, err := InitializeConfig(ClientConfig{Naming: d.NamingAddr, MAName: "MA-grpc"})
	if err != nil {
		t.Fatal(err)
	}
	GrpcFinalize(client) // must not invalidate anything
	p, _ := NewProfile("double", 0, 0, 1)
	p.SetScalarInt(0, 2, Volatile)
	if _, err := client.Call(p); err != nil {
		t.Fatal(err)
	}
}
