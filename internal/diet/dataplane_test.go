package diet

import (
	"bytes"
	"testing"

	"repro/internal/cori"
	"repro/internal/dataman"
	"repro/internal/rpc"
	"repro/internal/scheduler"
)

// ingestService consumes a persistent file reference (index 0) and produces
// a persistent derived file (index 2) plus the input length (index 1) — the
// shape of a zoom stage reading a platform-resident GRAFIC snapshot.
func ingestService(t *testing.T) ServiceSpec {
	t.Helper()
	desc, err := NewProfileDesc("ingest", 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	desc.Set(0, File, Char)
	desc.Set(1, Scalar, Int)
	desc.Set(2, File, Char)
	return ServiceSpec{
		Desc: desc,
		Solve: func(p *Profile) error {
			_, content, err := p.FileBytes(0)
			if err != nil {
				return err
			}
			if err := p.SetScalarInt(1, int64(len(content)), Volatile); err != nil {
				return err
			}
			return p.SetFileBytes(2, "derived.dat", append([]byte("halo:"), content...), Persistent)
		},
	}
}

// TestDataPlaneEndToEnd drives the live data plane through a data-wired
// deployment: a snapshot published on a staging node is referenced by DataID,
// EstimateFor prices the pull for every SeD, the solve fetches it through the
// catalog (training the shared TransferMonitor and minting a local replica),
// the persistent product is published platform-wide, and the follow-up call
// lands on the replica holder because its transfer term is zero.
func TestDataPlaneEndToEnd(t *testing.T) {
	rpc.ResetLocal()
	catalog := dataman.NewCatalog()

	// A staging node outside the hierarchy holds the published input, like
	// the NFS server the paper's namelists and GRAFIC files live on.
	staging := dataman.NewStore("staging")
	ss := rpc.NewServer()
	ss.Register(dataman.ObjectName, staging.Handler())
	stagingAddr, err := rpc.ServeLocal("dataplane-staging", ss)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if err := catalog.AddNode("staging", stagingAddr); err != nil {
		t.Fatal(err)
	}

	snapshot := bytes.Repeat([]byte("grafic"), 16)
	const snapID = "snap/zoom1"
	if err := catalog.Put(snapID, "staging", dataman.Persistent, snapshot); err != nil {
		t.Fatal(err)
	}
	// Pretend the snapshot is GB-scale so the fallback-priced pull dominates
	// ranking; the payload stays tiny so the test moves only bytes.
	catalog.SetSizeMB(snapID, 800)

	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-data",
		Policy: scheduler.NewForecastAware(),
		LAs:    []string{"LA1"},
		SeDs: []SeDSpec{
			{Name: "SeD-d1", Parent: "LA1", Capacity: 1, PowerGFlops: 4,
				Services: []ServiceSpec{ingestService(t)}},
			{Name: "SeD-d2", Parent: "LA1", Capacity: 1, PowerGFlops: 4,
				Services: []ServiceSpec{ingestService(t)}},
		},
		Local: true,
		Data:  catalog,
	})
	if d.Transfers == nil {
		t.Fatal("Deploy must create the shared TransferMonitor when Data is set")
	}

	// Before any transfer is measured every SeD prices the pull at the
	// fallback bandwidth (800 MB / 100 MB/s), and a query without data
	// references keeps the data-blind estimate untouched.
	for _, sed := range d.SeDs {
		reply := sed.EstimateFor(EstimateQuery{Service: "ingest", DataIDs: []string{snapID}})
		if got := reply.Est.InputTransferSeconds; got != 8 {
			t.Errorf("%s cold transfer price = %v s, want 8", sed.cfg.Name, got)
		}
		if got := sed.EstimateFor(EstimateQuery{Service: "ingest"}).Est.InputTransferSeconds; got != 0 {
			t.Errorf("%s prices a no-data query at %v s, want 0", sed.cfg.Name, got)
		}
	}

	client, err := d.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Finalize()

	call := func() (*Profile, *CallInfo) {
		p, err := NewProfile("ingest", 0, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.SetFileRef(0, "snapshot.dat", snapID, Persistent); err != nil {
			t.Fatal(err)
		}
		info, err := client.Call(p)
		if err != nil {
			t.Fatal(err)
		}
		if n, err := p.ScalarInt(1); err != nil || n != int64(len(snapshot)) {
			t.Fatalf("solve saw %d input bytes (%v), want %d", n, err, len(snapshot))
		}
		return p, info
	}

	p1, info1 := call()

	// The demand fetch minted a replica beside the solver and trained the
	// staging↔solver pair model.
	if got := catalog.ReplicaCount(snapID); got != 2 {
		t.Errorf("replicas after first solve = %d, want 2 (staging + %s)", got, info1.Server)
	}
	if !catalog.HasReplica(snapID, info1.Server) {
		t.Errorf("solver %s must hold a minted replica", info1.Server)
	}
	if pairs := d.Transfers.Pairs(); len(pairs) == 0 {
		t.Error("measured fetch must train the shared TransferMonitor")
	} else if want := cori.PairKey("staging", info1.Server); pairs[0] != want {
		t.Errorf("trained pair %q, want %q", pairs[0], want)
	}

	// The persistent product was published platform-wide under its minted ID.
	outID := p1.Args[2].DataID
	if outID == "" {
		t.Fatal("persistent OUT file should get a DataID")
	}
	if it, err := catalog.Fetch(outID); err != nil || !bytes.Equal(it.Data, append([]byte("halo:"), snapshot...)) {
		t.Errorf("product %q not fetchable through the catalog: %v", outID, err)
	}

	// Data-aware ranking now has an 8 s spread: the holder prices the input
	// at zero, the other SeD still pays the fallback pull, so the follow-up
	// call must land back on the replica.
	for _, sed := range d.SeDs {
		want := 8.0
		if sed.cfg.Name == info1.Server {
			want = 0
		}
		reply := sed.EstimateFor(EstimateQuery{Service: "ingest", DataIDs: []string{snapID}})
		if got := reply.Est.InputTransferSeconds; got != want {
			t.Errorf("%s transfer price after first solve = %v s, want %v", sed.cfg.Name, got, want)
		}
	}
	if _, info2 := call(); info2.Server != info1.Server {
		t.Errorf("second call served by %s, want the replica holder %s", info2.Server, info1.Server)
	}
}
