package diet

import (
	"math"
	"time"

	"repro/internal/metrics"
)

// This file is the diet side of the observability stack: per-solve forecast
// records (predicted vs measured duration, the live counterpart of
// simgrid.RequestRecord) and the Prometheus instruments SeDs and agents feed
// from their hot paths. Instrumentation is opt-in — a nil registry costs a
// single nil check per site.

// SolveRecord pairs one completed solve with the duration forecast the SeD
// held when the request was admitted. It is the live-stack twin of
// simgrid.RequestRecord, so misprediction accounting works identically on
// real deployments and in virtual time.
type SolveRecord struct {
	RequestID  string
	Service    string
	WorkGFlops float64
	// PredictedS is the solve duration the SeD's view implied at admission:
	// the CoRI model forecast when one was trusted (PredictedByModel true),
	// else the advertised-power estimate work/power.
	PredictedS       float64
	PredictedByModel bool
	MeasuredS        float64 // observed compute time, excluding queue wait
	WaitS            float64 // observed wait (FIFO + batch reservation)
	When             time.Time
}

// MispredictPct is the relative forecast error of this solve, in percent —
// the same definition as simgrid.RequestRecord.MispredictPct.
func (r SolveRecord) MispredictPct() float64 {
	if r.MeasuredS <= 0 {
		return 0
	}
	return 100 * math.Abs(r.PredictedS-r.MeasuredS) / r.MeasuredS
}

// ForecastAccuracy summarises a SeD's recent forecast quality for one
// service, computed over the bounded SolveRecord ring.
type ForecastAccuracy struct {
	Service string
	Solves  int
	// MeanAbsPct is the mean |predicted − measured| relative error, percent.
	MeanAbsPct float64
	// ModelShare is the fraction of solves whose prediction came from a
	// trusted CoRI model rather than the advertised-power fallback.
	ModelShare float64
}

// sedSolveRecordCap bounds the per-SeD solve-record ring; old records
// rotate out, so accuracy reflects recent behaviour, not all history.
const sedSolveRecordCap = 512

// mispredictBuckets grade relative forecast error: a few percent is a good
// model, triple digits is a cold or lying one.
var mispredictBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 200, 400}

// sedMetrics are a SeD's instruments, labelled by SeD and service so one
// registry can serve a whole deployment. Nil when no registry is configured.
type sedMetrics struct {
	sed              string
	started          metrics.CounterVec
	completed        metrics.CounterVec
	failed           metrics.CounterVec
	queueWait        metrics.HistogramVec
	solveSeconds     metrics.HistogramVec
	mispredictPct    metrics.HistogramVec
	forecastAbsPct   metrics.GaugeVec
	queueDepth       metrics.GaugeVec
	batchKills       metrics.CounterVec
	batchRequeues    metrics.CounterVec
	batchReserveWait metrics.HistogramVec
	parentFailovers  metrics.CounterVec
}

func newSedMetrics(reg *metrics.Registry, sed string) *sedMetrics {
	if reg == nil {
		return nil
	}
	return &sedMetrics{
		sed: sed,
		started: reg.NewCounter("diet_sed_solves_started_total",
			"solve requests admitted to the SeD queue", "sed", "service"),
		completed: reg.NewCounter("diet_sed_solves_completed_total",
			"solves finished successfully", "sed", "service"),
		failed: reg.NewCounter("diet_sed_solves_failed_total",
			"solves that returned an error", "sed", "service"),
		queueWait: reg.NewHistogram("diet_sed_queue_wait_seconds",
			"observed wait between admission and compute start (FIFO + batch reservation)",
			nil, "sed", "service"),
		solveSeconds: reg.NewHistogram("diet_sed_solve_seconds",
			"solve compute time, excluding queue wait", nil, "sed", "service"),
		mispredictPct: reg.NewHistogram("diet_sed_forecast_mispredict_pct",
			"relative error between predicted and measured solve duration, percent",
			mispredictBuckets, "sed", "service"),
		forecastAbsPct: reg.NewGauge("diet_sed_forecast_mean_abs_pct",
			"mean absolute forecast error over the recent solve-record window, percent",
			"sed", "service"),
		queueDepth: reg.NewGauge("diet_sed_queue_depth",
			"queued plus running solves", "sed"),
		batchKills: reg.NewCounter("diet_sed_batch_overrun_kills_total",
			"batch reservation attempts killed at walltime expiry", "sed"),
		batchRequeues: reg.NewCounter("diet_sed_batch_requeues_total",
			"batch reservations resubmitted with a widened grant after a kill", "sed"),
		batchReserveWait: reg.NewHistogram("diet_sed_batch_reserve_wait_seconds",
			"batch-queue wait of one reservation attempt (submit to start)", nil, "sed"),
		parentFailovers: reg.NewCounter("diet_sed_parent_failovers_total",
			"re-adoptions by a fallback parent after the SeD's agent went silent", "sed"),
	}
}

// agentMetrics are an agent's instruments, labelled by agent name. Nil when
// no registry is configured.
type agentMetrics struct {
	agent            string
	requests         metrics.CounterVec
	scheduleSeconds  metrics.HistogramVec
	collectSeconds   metrics.HistogramVec
	gossipRounds     metrics.CounterVec
	evictions        metrics.CounterVec
	collectEvictions metrics.CounterVec
	replans          metrics.CounterVec
	migrations       metrics.CounterVec
	peerForwards     metrics.CounterVec
	peerForwardDrops metrics.CounterVec
}

func newAgentMetrics(reg *metrics.Registry, agent string) *agentMetrics {
	if reg == nil {
		return nil
	}
	return &agentMetrics{
		agent: agent,
		requests: reg.NewCounter("diet_agent_requests_total",
			"client submissions ranked by this agent", "agent"),
		scheduleSeconds: reg.NewHistogram("diet_agent_schedule_seconds",
			"submit handling time: collect, rank, resolve", nil, "agent"),
		collectSeconds: reg.NewHistogram("diet_agent_collect_seconds",
			"subtree estimate collection time answering a parent", nil, "agent"),
		gossipRounds: reg.NewCounter("diet_agent_gossip_rounds_total",
			"CoRI model gossip rounds run", "agent"),
		evictions: reg.NewCounter("diet_agent_evictions_total",
			"children evicted by the heartbeat monitor", "agent"),
		collectEvictions: reg.NewCounter("diet_agent_collect_evictions_total",
			"children evicted after consecutive failed collect probes", "agent"),
		replans: reg.NewCounter("diet_agent_replans_total",
			"replanning passes applied to the live hierarchy", "agent"),
		migrations: reg.NewCounter("diet_agent_migrations_total",
			"SeD children migrated by replanning", "agent"),
		peerForwards: reg.NewCounter("diet_agent_peer_forwards_total",
			"locally unsatisfiable requests forwarded to federated peer MAs", "agent"),
		peerForwardDrops: reg.NewCounter("diet_agent_peer_forward_drops_total",
			"forwarded requests dropped by the federation loop guard", "agent"),
	}
}
