package diet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gwproto"
	"repro/internal/logsvc"
	"repro/internal/naming"
	"repro/internal/rpc"
)

// ClientConfig is the parsed client configuration file. The file format is
// the DIET cfg style: one "key = value" per line, '#' comments. Recognised
// keys: namingAddr (required), MAName (default "MA1"), traceLevel.
type ClientConfig struct {
	Naming     string
	MAName     string
	TraceLevel int
	// Events is an optional monitoring sink; set programmatically, not from
	// the configuration file. The client publishes the submit and complete
	// spans of every call through it.
	Events EventSink
}

// ParseClientConfig reads a DIET-style client configuration file.
func ParseClientConfig(path string) (ClientConfig, error) {
	f, err := os.Open(path)
	if err != nil {
		return ClientConfig{}, err
	}
	defer f.Close()
	cfg := ClientConfig{MAName: "MA1"}
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		eq := strings.IndexByte(line, '=')
		if eq < 0 {
			return ClientConfig{}, fmt.Errorf("diet: %s:%d: expected key = value, got %q", path, lineNo, line)
		}
		key := strings.TrimSpace(line[:eq])
		val := strings.TrimSpace(line[eq+1:])
		switch key {
		case "namingAddr":
			cfg.Naming = val
		case "MAName":
			cfg.MAName = val
		case "traceLevel":
			fmt.Sscanf(val, "%d", &cfg.TraceLevel)
		default:
			return ClientConfig{}, fmt.Errorf("diet: %s:%d: unknown key %q", path, lineNo, key)
		}
	}
	if err := sc.Err(); err != nil {
		return ClientConfig{}, err
	}
	if cfg.Naming == "" {
		return ClientConfig{}, fmt.Errorf("diet: %s: namingAddr is required", path)
	}
	return cfg, nil
}

// CallInfo reports the timing decomposition of one completed call, the
// quantities of the paper's Figure 6: finding time (MA round trip) and
// latency (everything between submission and the start of computation:
// transfer, queue wait, service initialisation).
type CallInfo struct {
	Seq       int
	RequestID string        // trace identity shared by every span of this call
	Server    string        // chosen SeD
	Finding   time.Duration // time to get the ranked server list from the MA
	QueueWait time.Duration // time the request waited in the SeD queue
	Compute   time.Duration // solve execution time
	Latency   time.Duration // total − finding − compute: transfer + queue + init
	Total     time.Duration
}

// Client is the application's handle on a DIET platform (diet_initialize /
// diet_call / diet_finalize). It is safe for concurrent Call invocations.
type Client struct {
	cfg    ClientConfig
	maAddr string
	id     string // session identity prefixing every request ID
	seq    atomic.Int64

	mu    sync.Mutex
	calls []CallInfo
}

// clientSessions distinguishes sessions within one process; the random part
// distinguishes processes sharing a logsvc bus.
var clientSessions atomic.Int64

// newClientID mints a session identity like "c3-9f21".
func newClientID() string {
	return fmt.Sprintf("c%d-%04x", clientSessions.Add(1), rand.Uint32()&0xffff)
}

// requestID names one call of this session, e.g. "c3-9f21-17".
func (c *Client) requestID(seq int) string {
	return fmt.Sprintf("%s-%d", c.id, seq)
}

// Initialize opens a DIET session from a configuration file.
func Initialize(configPath string) (*Client, error) {
	cfg, err := ParseClientConfig(configPath)
	if err != nil {
		return nil, err
	}
	return InitializeConfig(cfg)
}

// InitializeConfig opens a DIET session from an in-memory configuration.
func InitializeConfig(cfg ClientConfig) (*Client, error) {
	if cfg.MAName == "" {
		cfg.MAName = "MA1"
	}
	nc := &naming.Client{Addr: cfg.Naming}
	entry, err := nc.Resolve(cfg.MAName)
	if err != nil {
		return nil, fmt.Errorf("diet: resolving master agent %q: %w", cfg.MAName, err)
	}
	return &Client{cfg: cfg, maAddr: entry.Addr, id: newClientID()}, nil
}

// Finalize closes the session. Like diet_finalize it does not invalidate
// data the application still holds; it only drops the platform handle.
func (c *Client) Finalize() {}

// FindServers asks the Master Agent for the ranked server list and estimate
// vectors for a service without dispatching a solve — the "finding" phase of
// Figure 6 on its own. The workflow runner prices DAG nodes from the
// returned estimates (each carries the SeD's CoRI forecast extension)
// before launching any solve.
func (c *Client) FindServers(service string, workGFlops float64) (*SubmitReply, time.Duration, error) {
	var found findResult
	p := &Profile{Service: service}
	if _, err := c.Call(p, WithWork(workGFlops), withFindOnly(&found)); err != nil {
		return nil, 0, err
	}
	return found.reply, found.finding, nil
}

// Submit asks the Master Agent for the ranked server list for a service.
//
// Deprecated: Submit is the historical name of FindServers; new code should
// use FindServers (or Call directly). Kept so existing callers and examples
// compile unchanged.
func (c *Client) Submit(service string, workGFlops float64) (*SubmitReply, time.Duration, error) {
	return c.FindServers(service, workGFlops)
}

func (c *Client) submit(service string, workGFlops float64, seq int, requestID string, dataIDs []string) (*SubmitReply, time.Duration, error) {
	t0 := time.Now()
	var reply SubmitReply
	err := rpc.Call(c.maAddr, "agent:"+c.cfg.MAName, "Submit",
		SubmitRequest{Service: service, WorkGFlops: workGFlops, Seq: seq, RequestID: requestID, DataIDs: dataIDs}, &reply)
	if err != nil {
		return nil, 0, err
	}
	found := time.Now()
	publishSpan(c.cfg.Events, span(requestID, "client:"+c.id, logsvc.KindSubmit, service,
		fmt.Sprintf("%d servers ranked", len(reply.Servers)), t0, found))
	return &reply, found.Sub(t0), nil
}

// inputDataIDs lists the persistent IN/INOUT references the profile carries
// by DataID only, with no bytes attached — the inputs the chosen server will
// have to fetch, which data-aware scheduling prices per candidate. A profile
// without such references returns nil and the submission is wire-identical
// to the data-blind one.
func inputDataIDs(p *Profile) []string {
	var ids []string
	for i := range p.Args {
		a := &p.Args[i]
		if p.Direction(i) == Out || a.Persist == Volatile {
			continue
		}
		if a.DataID != "" && len(a.Data) == 0 {
			ids = append(ids, a.DataID)
		}
	}
	return ids
}

// CallOption tweaks a Call.
type CallOption func(*callOptions)

// findResult receives the finding-phase outcome of a find-only Call (the
// Submit shim's out-parameters).
type findResult struct {
	reply   *SubmitReply
	finding time.Duration
}

type callOptions struct {
	workGFlops float64
	async      **AsyncCall
	gateway    string
	servers    *SubmitReply
	rotate     int
	findOnly   *findResult
}

// WithWork passes a work estimate (GFlops) to the scheduler, used by the
// power-aware plug-in policy.
func WithWork(gflops float64) CallOption {
	return func(o *callOptions) { o.workGFlops = gflops }
}

// WithAsync makes Call return immediately with (nil, nil) and deliver the
// outcome through the handle stored in *h — the one code path behind the
// deprecated CallAsync. The profile must not be touched until Wait returns.
func WithAsync(h **AsyncCall) CallOption {
	return func(o *callOptions) { o.async = h }
}

// WithGateway routes the call through a gateway's HTTP JSON API (POST
// baseURL/api/v1/solve) instead of submitting to this client's Master Agent
// directly: the gateway does the finding phase (pooled, sticky-routed,
// batched, admission-controlled) and the solve, and ships the solved
// arguments back. An admission-control shed surfaces as gwproto.ErrOverload.
func WithGateway(baseURL string) CallOption {
	return func(o *callOptions) { o.gateway = strings.TrimRight(baseURL, "/") }
}

// WithServers skips the finding phase and reuses an already-ranked server
// list, starting the failover walk rotate positions in (wrapping). The
// gateway's submission batching uses it: one batch leader pays the MA round
// trip, the followers ride its reply with rotated starting servers so a
// batch does not pile onto one SeD.
func WithServers(reply *SubmitReply, rotate int) CallOption {
	return func(o *callOptions) { o.servers, o.rotate = reply, rotate }
}

// withFindOnly stops the call after the finding phase, recording the ranked
// reply into res — the Submit shim. Unexported: find-only is not a shape new
// code should reach for.
func withFindOnly(res *findResult) CallOption {
	return func(o *callOptions) { o.findOnly = res }
}

// Call performs a complete GridRPC call: find a server through the MA, ship
// the profile to the chosen SeD, execute, and bring the INOUT/OUT arguments
// back into p. On failure of the best server it falls over to the next
// servers in the ranked list. Options select the variants — WithAsync for a
// background call (outcome on the handle), WithGateway to route through a
// gateway, WithWork to hint the scheduler — all sharing this one retry and
// trace path.
func (c *Client) Call(p *Profile, opts ...CallOption) (*CallInfo, error) {
	var o callOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.async != nil {
		a := &AsyncCall{done: make(chan struct{})}
		*o.async = a
		inner := o
		inner.async = nil
		go func() {
			defer close(a.done)
			a.info, a.err = c.call(p, inner)
		}()
		return nil, nil
	}
	return c.call(p, o)
}

// call is the single synchronous code path behind every submission variant.
func (c *Client) call(p *Profile, o callOptions) (*CallInfo, error) {
	// The work hint rides the profile to the SeD for the CoRI monitor. Set
	// unconditionally: a call without WithWork must ship 0 (unknown), not a
	// stale hint from an earlier call reusing this profile, or the monitor
	// would pair this solve's duration with the wrong work size.
	p.WorkGFlops = o.workGFlops
	if o.gateway != "" {
		return c.callGateway(p, o)
	}
	seq := int(c.seq.Add(1))
	requestID := c.requestID(seq)
	p.RequestID = requestID
	t0 := time.Now()
	reply := o.servers
	var finding time.Duration
	if reply == nil {
		var err error
		reply, finding, err = c.submit(p.Service, o.workGFlops, seq, requestID, inputDataIDs(p))
		if err != nil {
			return nil, fmt.Errorf("diet: submission of %q failed: %w", p.Service, err)
		}
	}
	if o.findOnly != nil {
		o.findOnly.reply, o.findOnly.finding = reply, finding
		return nil, nil
	}
	n := len(reply.Servers)
	if n == 0 {
		return nil, fmt.Errorf("diet: no servers offered for %q", p.Service)
	}
	var lastErr error
	for i := 0; i < n; i++ {
		srv := reply.Servers[(i+o.rotate)%n]
		attempt := time.Now()
		var solved SolveReply
		err := rpc.Call(srv.Addr, "sed:"+srv.Name, "Solve", p, &solved)
		if err != nil {
			lastErr = err
			// The kill-and-requeue of the live stack: the request's work on
			// the lost server is abandoned and resubmitted to the next ranked
			// server; the requeue span brackets the failed attempt.
			if i+1 < n {
				next := reply.Servers[(i+1+o.rotate)%n]
				publishSpan(c.cfg.Events, span(requestID, "client:"+c.id, logsvc.KindRequeue,
					p.Service, fmt.Sprintf("%s failed, retrying on %s", srv.Name, next.Name),
					attempt, time.Now()))
			}
			continue // fault tolerance: try the next ranked server
		}
		*p = *solved.Profile
		done := time.Now()
		total := done.Sub(t0)
		compute := time.Duration(solved.Timing.ComputeMS * float64(time.Millisecond))
		queue := time.Duration(solved.Timing.QueueWaitMS * float64(time.Millisecond))
		publishSpan(c.cfg.Events, span(requestID, "client:"+c.id, logsvc.KindComplete,
			p.Service, "server "+srv.Name, t0, done))
		info := CallInfo{
			Seq:       seq,
			RequestID: requestID,
			Server:    srv.Name,
			Finding:   finding,
			QueueWait: queue,
			Compute:   compute,
			Latency:   total - finding - compute,
			Total:     total,
		}
		c.mu.Lock()
		c.calls = append(c.calls, info)
		c.mu.Unlock()
		return &info, nil
	}
	return nil, fmt.Errorf("diet: all %d servers failed for %q: %w", n, p.Service, lastErr)
}

// callGateway is the WithGateway leg of the single call path: ship the
// profile to a gateway as JSON, let it find and solve, decode the solved
// arguments back into p.
func (c *Client) callGateway(p *Profile, o callOptions) (*CallInfo, error) {
	req, err := p.WireRequest()
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	seq := int(c.seq.Add(1))
	t0 := time.Now()
	resp, err := http.Post(o.gateway+"/api/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("diet: gateway call for %q failed: %w", p.Service, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eRep gwproto.ErrorReply
		if err := json.NewDecoder(resp.Body).Decode(&eRep); err == nil && eRep.Error != "" {
			if eRep.Overloaded {
				return nil, fmt.Errorf("diet: gateway shed %q: %w", p.Service, gwproto.ErrOverload)
			}
			return nil, fmt.Errorf("diet: gateway rejected %q: %s", p.Service, eRep.Error)
		}
		return nil, fmt.Errorf("diet: gateway rejected %q: HTTP %d", p.Service, resp.StatusCode)
	}
	var rep gwproto.SolveReply
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, fmt.Errorf("diet: decoding gateway reply for %q: %w", p.Service, err)
	}
	if rep.SchemaVersion != gwproto.Version {
		return nil, fmt.Errorf("diet: gateway speaks schema v%d, client v%d", rep.SchemaVersion, gwproto.Version)
	}
	if err := p.ApplyWireArgs(rep.Args); err != nil {
		return nil, err
	}
	p.RequestID = rep.RequestID
	total := time.Since(t0)
	finding := time.Duration(rep.Timing.FindingMS * float64(time.Millisecond))
	compute := time.Duration(rep.Timing.ComputeMS * float64(time.Millisecond))
	info := CallInfo{
		Seq:       seq,
		RequestID: rep.RequestID,
		Server:    rep.Server,
		Finding:   finding,
		QueueWait: time.Duration(rep.Timing.QueueMS * float64(time.Millisecond)),
		Compute:   compute,
		Latency:   total - finding - compute,
		Total:     total,
	}
	c.mu.Lock()
	c.calls = append(c.calls, info)
	c.mu.Unlock()
	return &info, nil
}

// AsyncCall is a handle on an in-flight asynchronous call.
type AsyncCall struct {
	done chan struct{}
	info *CallInfo
	err  error
}

// Wait blocks until the call completes and returns its outcome.
func (a *AsyncCall) Wait() (*CallInfo, error) {
	<-a.done
	return a.info, a.err
}

// CallAsync launches Call in the background, the diet_call_async of the C
// API. The profile must not be touched until Wait returns.
//
// Deprecated: CallAsync is a thin wrapper over Call with WithAsync; new
// code should use that option directly.
func (c *Client) CallAsync(p *Profile, opts ...CallOption) *AsyncCall {
	var a *AsyncCall
	c.Call(p, append(append([]CallOption(nil), opts...), WithAsync(&a))...)
	return a
}

// WaitAll blocks until all the given async calls complete and returns the
// first error encountered (grpc_wait_all).
func WaitAll(calls []*AsyncCall) error {
	var first error
	for _, a := range calls {
		if _, err := a.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// History returns the timing records of every completed call in completion
// order; the experiment harness turns these into the Figure 6 series.
func (c *Client) History() []CallInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CallInfo, len(c.calls))
	copy(out, c.calls)
	return out
}
