package diet

import (
	"testing"
	"time"

	"repro/internal/rpc"
)

func TestSweepEvictsDeadSeD(t *testing.T) {
	rpc.ResetLocal()
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-hb", LAs: []string{"LA1"},
		SeDs: []SeDSpec{
			{Name: "SeD-hb-a", Parent: "LA1", Services: []ServiceSpec{sleepService("double", 0, nil)}},
			{Name: "SeD-hb-b", Parent: "LA1", Services: []ServiceSpec{sleepService("double", 0, nil)}},
		},
		Local: true,
	})
	la := d.LAs[0]
	if got := len(la.Children()); got != 2 {
		t.Fatalf("LA starts with %d children", got)
	}

	// Kill one SeD, then drive the monitor by hand (MaxMissed defaults 3).
	d.SeDs[0].Close()
	for i := 0; i < 3; i++ {
		la.SweepChildren()
	}
	kids := la.Children()
	if len(kids) != 1 || kids[0].Name != "SeD-hb-b" {
		t.Fatalf("after sweeps children = %+v, want only SeD-hb-b", kids)
	}
	if la.EvictedCount() != 1 {
		t.Errorf("evicted count %d, want 1", la.EvictedCount())
	}
	// Scheduling now never sees the dead SeD.
	ests := d.MA.Collect("double")
	if len(ests) != 1 || ests[0].ServerID != "SeD-hb-b" {
		t.Errorf("collect after eviction: %+v", ests)
	}
}

func TestSweepForgivesTransientMisses(t *testing.T) {
	rpc.ResetLocal()
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-hb2", LAs: []string{"LA1"},
		SeDs: []SeDSpec{
			{Name: "SeD-hb2", Parent: "LA1", Services: []ServiceSpec{sleepService("double", 0, nil)}},
		},
		Local: true,
	})
	la := d.LAs[0]
	// Two misses, then the SeD "recovers" (it was never down — simulate the
	// miss counter by direct sweeps against a live SeD: all pass).
	la.SweepChildren()
	la.SweepChildren()
	if len(la.Children()) != 1 {
		t.Fatal("healthy SeD evicted")
	}
	// Manually age the counter to MaxMissed-1 and verify one good beat heals.
	la.mu.Lock()
	la.missed["SeD-hb2"] = 2
	la.mu.Unlock()
	la.SweepChildren() // live SeD answers: counter resets
	la.mu.RLock()
	missed := la.missed["SeD-hb2"]
	la.mu.RUnlock()
	if missed != 0 {
		t.Errorf("missed counter %d after a good beat, want 0", missed)
	}
}

func TestMonitorLoopEvicts(t *testing.T) {
	// End-to-end with the background loop: a dead SeD disappears within a
	// few heartbeat intervals.
	rpc.ResetLocal()
	defer rpc.ResetLocal()
	naming := DeploymentSpec{
		MAName: "MA-hb3", LAs: nil, Local: true,
	}
	d, err := Deploy(naming)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	la, err := NewAgent(AgentConfig{
		Name: "LA-hb3", Kind: LocalAgent, Parent: "MA-hb3", Naming: d.NamingAddr,
		Local: true, HeartbeatInterval: 5 * time.Millisecond, MaxMissed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := la.Start(); err != nil {
		t.Fatal(err)
	}
	defer la.Close()
	sed, err := NewSeD(SeDConfig{Name: "SeD-hb3", Parent: "LA-hb3", Naming: d.NamingAddr, Local: true})
	if err != nil {
		t.Fatal(err)
	}
	desc, _ := NewProfileDesc("noop", 0, 0, 0)
	sed.AddService(desc, func(*Profile) error { return nil })
	if err := sed.Start(); err != nil {
		t.Fatal(err)
	}
	if len(la.Children()) != 1 {
		t.Fatal("SeD did not attach")
	}
	sed.Close()
	deadline := time.After(2 * time.Second)
	for len(la.Children()) != 0 {
		select {
		case <-deadline:
			t.Fatal("monitor loop did not evict the dead SeD in time")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if la.EvictedCount() != 1 {
		t.Errorf("evicted %d, want 1", la.EvictedCount())
	}
}
