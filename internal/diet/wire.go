package diet

import (
	"fmt"

	"repro/internal/gwproto"
)

// This file converts between the in-memory Profile and the gateway's JSON
// wire contract (gwproto). Both ends of the HTTP API use it: the client's
// WithGateway path encodes its profile and decodes the solved reply; the
// gateway decodes incoming requests and encodes results.

// wireKind maps ArgKind to its wire tag.
func wireKind(k ArgKind) string {
	switch k {
	case Scalar:
		return "scalar"
	case Vector:
		return "vector"
	case Matrix:
		return "matrix"
	case Text:
		return "string"
	case File:
		return "file"
	}
	return ""
}

// wirePersist maps Persistence to its wire tag ("" for the volatile
// default, so steady-state JSON stays small).
func wirePersist(p Persistence) string {
	switch p {
	case Persistent:
		return "persistent"
	case Sticky:
		return "sticky"
	}
	return ""
}

// parsePersist maps a wire persistence tag back.
func parsePersist(s string) (Persistence, error) {
	switch s {
	case "", "volatile":
		return Volatile, nil
	case "persistent":
		return Persistent, nil
	case "sticky":
		return Sticky, nil
	}
	return Volatile, fmt.Errorf("diet: unknown persistence %q", s)
}

// WireArgs encodes the profile's arguments for the gateway API.
func (p *Profile) WireArgs() ([]gwproto.Arg, error) {
	out := make([]gwproto.Arg, len(p.Args))
	for i := range p.Args {
		a := &p.Args[i]
		w := gwproto.Arg{Persist: wirePersist(a.Persist), DataID: a.DataID}
		if a.DataID != "" && len(a.Data) == 0 {
			// A persistent reference travels as just its ID.
			w.Kind = wireKind(a.Kind)
			out[i] = w
			continue
		}
		switch {
		case a.Kind == Scalar && a.Base == Int:
			v, err := p.ScalarInt(i)
			if err != nil {
				return nil, err
			}
			w.Kind, w.Base, w.Int = "scalar", "int", &v
		case a.Kind == Scalar && a.Base == Double:
			v, err := p.ScalarDouble(i)
			if err != nil {
				return nil, err
			}
			w.Kind, w.Base, w.Double = "scalar", "double", &v
		case a.Kind == Vector && a.Base == Double:
			v, err := p.VectorDouble(i)
			if err != nil {
				return nil, err
			}
			w.Kind, w.Base, w.Vector = "vector", "double", v
		case a.Kind == Matrix && a.Base == Double:
			rows, cols, v, err := p.MatrixDouble(i)
			if err != nil {
				return nil, err
			}
			w.Kind, w.Base, w.Matrix, w.Rows, w.Cols = "matrix", "double", v, rows, cols
		case a.Kind == Text:
			s := string(a.Data)
			w.Kind, w.Str = "string", &s
		case a.Kind == File:
			w.Kind, w.FileName, w.File = "file", a.FileName, a.Data
		case len(a.Data) == 0:
			// Untyped placeholder (an OUT argument awaiting the server).
		default:
			return nil, fmt.Errorf("diet: argument %d (%s/%s) has no wire representation", i, a.Kind, a.Base)
		}
		out[i] = w
	}
	return out, nil
}

// applyWireArg decodes one wire argument into profile slot i.
func (p *Profile) applyWireArg(i int, w gwproto.Arg) error {
	persist, err := parsePersist(w.Persist)
	if err != nil {
		return err
	}
	switch w.Kind {
	case "":
		p.Args[i] = Arg{} // placeholder OUT slot
		return nil
	case "scalar":
		switch {
		case w.Int != nil:
			return p.SetScalarInt(i, *w.Int, persist)
		case w.Double != nil:
			return p.SetScalarDouble(i, *w.Double, persist)
		case w.DataID != "":
			p.Args[i] = Arg{Kind: Scalar, Persist: persist, DataID: w.DataID}
			return nil
		}
		return fmt.Errorf("diet: argument %d: scalar needs an int or double payload", i)
	case "vector":
		return p.SetVectorDouble(i, w.Vector, persist)
	case "matrix":
		return p.SetMatrixDouble(i, w.Rows, w.Cols, w.Matrix, persist)
	case "string":
		s := ""
		if w.Str != nil {
			s = *w.Str
		}
		return p.SetString(i, s, persist)
	case "file":
		return p.SetFileBytes(i, w.FileName, w.File, persist)
	}
	return fmt.Errorf("diet: argument %d: unknown kind %q", i, w.Kind)
}

// ApplyWireArgs decodes a full wire argument list into the profile (the
// client's view of a solved reply). The list length must match.
func (p *Profile) ApplyWireArgs(args []gwproto.Arg) error {
	if len(args) != len(p.Args) {
		return fmt.Errorf("diet: wire reply has %d args, profile has %d", len(args), len(p.Args))
	}
	for i, w := range args {
		if err := p.applyWireArg(i, w); err != nil {
			return err
		}
	}
	return nil
}

// ProfileFromWire builds a Profile from a gateway solve request.
func ProfileFromWire(req gwproto.SolveRequest) (*Profile, error) {
	p, err := NewProfile(req.Service, req.LastIn, req.LastInOut, req.LastOut)
	if err != nil {
		return nil, err
	}
	p.WorkGFlops = req.WorkGFlops
	if len(req.Args) > len(p.Args) {
		return nil, fmt.Errorf("diet: wire request has %d args, indices allow %d", len(req.Args), len(p.Args))
	}
	for i, w := range req.Args {
		if err := p.applyWireArg(i, w); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// WireRequest encodes the profile (plus its work hint) as a gateway solve
// request.
func (p *Profile) WireRequest() (gwproto.SolveRequest, error) {
	args, err := p.WireArgs()
	if err != nil {
		return gwproto.SolveRequest{}, err
	}
	return gwproto.SolveRequest{
		SchemaVersion: gwproto.Version,
		Service:       p.Service,
		WorkGFlops:    p.WorkGFlops,
		LastIn:        p.LastIn,
		LastInOut:     p.LastInOut,
		LastOut:       p.LastOut,
		Args:          args,
	}, nil
}
