package diet

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/naming"
	"repro/internal/rpc"
)

// startLocalNaming brings up an in-process naming service for manual wiring
// (the federation tests need two MAs sharing one naming service, which
// Deploy — one MA per call, own naming each — cannot express).
func startLocalNaming(t *testing.T, name string) string {
	t.Helper()
	ns := rpc.NewServer()
	ns.Register(naming.ObjectName, naming.NewService().Handler())
	addr, err := rpc.ServeLocal(name, ns)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ns.Close() })
	return addr
}

// startMA wires and starts one Master Agent on the shared naming service.
func startMA(t *testing.T, namingAddr, name string, peers []string, hops int) *Agent {
	t.Helper()
	ma, err := NewAgent(AgentConfig{
		Name: name, Kind: MasterAgent, Naming: namingAddr, Local: true,
		Peers: peers, ForwardHops: hops,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ma.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ma.Close() })
	return ma
}

// startSubtree hangs an LA and one SeD serving the given service under a
// parent MA.
func startSubtree(t *testing.T, namingAddr, la, sed, parent, service string) {
	t.Helper()
	a, err := NewAgent(AgentConfig{
		Name: la, Kind: LocalAgent, Parent: parent, Naming: namingAddr, Local: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	s, err := NewSeD(SeDConfig{
		Name: sed, Parent: la, Naming: namingAddr,
		Capacity: 1, PowerGFlops: 4, Local: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := sleepService(service, 0, nil)
	if err := s.AddService(spec.Desc, spec.Solve); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
}

// TestFederationForwardResolvesForeignService is the acceptance-criteria
// integration test: a live 2-MA federation resolves (and solves) a service
// registered only under the peer MA, via peer forwarding.
func TestFederationForwardResolvesForeignService(t *testing.T) {
	rpc.ResetLocal()
	t.Cleanup(rpc.ResetLocal)
	namingAddr := startLocalNaming(t, "naming-fed2ma")

	ma1 := startMA(t, namingAddr, "MA-fed1", []string{"MA-fed2"}, 0)
	ma2 := startMA(t, namingAddr, "MA-fed2", []string{"MA-fed1"}, 0)
	// Drive the federation heartbeat deterministically (Start also seeds it
	// in the background; SweepPeers is idempotent).
	ma1.SweepPeers()
	ma2.SweepPeers()

	// The service lives only under MA2's hierarchy.
	startSubtree(t, namingAddr, "LA-fed2", "SeD-fed2", "MA-fed2", "fedsvc")

	client, err := InitializeConfig(ClientConfig{Naming: namingAddr, MAName: "MA-fed1"})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Finalize()

	p, _ := NewProfile("fedsvc", 0, 0, 1)
	p.SetScalarInt(0, 21, Volatile)
	info, err := client.Call(p)
	if err != nil {
		t.Fatalf("call through the federation failed: %v", err)
	}
	if info.Server != "SeD-fed2" {
		t.Errorf("served by %q, want the peer MA's SeD-fed2", info.Server)
	}
	if v, err := p.ScalarInt(1); err != nil || v != 42 {
		t.Errorf("result = %d, %v; want 42", v, err)
	}
	if fwd, _, _ := ma1.ForwardStats(); fwd < 1 {
		t.Errorf("origin MA forwarded %d requests, want >= 1", fwd)
	}
	if _, served, _ := ma2.ForwardStats(); served < 1 {
		t.Errorf("peer MA served %d forwards, want >= 1", served)
	}
	if peers := ma1.Peers(); len(peers) != 1 || peers[0].Name != "MA-fed2" {
		t.Errorf("MA-fed1 peers = %+v, want exactly MA-fed2", peers)
	}
}

// TestFederationBoundedHops proves the hop budget is enforced end to end: a
// service two forwards away is unreachable with a one-hop budget and
// reachable with two.
func TestFederationBoundedHops(t *testing.T) {
	rpc.ResetLocal()
	t.Cleanup(rpc.ResetLocal)
	namingAddr := startLocalNaming(t, "naming-fedchain")

	// Chain: A → B → C; the service lives only under C. A's sticky peer list
	// holds only B, so reaching C needs B to relay (hop 2).
	maA := startMA(t, namingAddr, "MA-chainA", []string{"MA-chainB"}, 1)
	maB := startMA(t, namingAddr, "MA-chainB", []string{"MA-chainC"}, 0)
	maC := startMA(t, namingAddr, "MA-chainC", nil, 0)
	maA.SweepPeers()
	maB.SweepPeers()
	startSubtree(t, namingAddr, "LA-chainC", "SeD-chainC", "MA-chainC", "chainsvc")

	clientA, err := InitializeConfig(ClientConfig{Naming: namingAddr, MAName: "MA-chainA"})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewProfile("chainsvc", 0, 0, 1)
	p.SetScalarInt(0, 1, Volatile)
	if _, err := clientA.Call(p); err == nil {
		t.Fatal("one-hop budget reached a service two forwards away")
	}
	if _, served, _ := maC.ForwardStats(); served != 0 {
		t.Errorf("MA-chainC served %d forwards despite the exhausted budget", served)
	}

	// A second origin with a two-hop budget reaches C through B.
	maA2 := startMA(t, namingAddr, "MA-chainA2", []string{"MA-chainB"}, 2)
	maA2.SweepPeers()
	clientA2, err := InitializeConfig(ClientConfig{Naming: namingAddr, MAName: "MA-chainA2"})
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := NewProfile("chainsvc", 0, 0, 1)
	p2.SetScalarInt(0, 5, Volatile)
	info, err := clientA2.Call(p2)
	if err != nil {
		t.Fatalf("two-hop budget failed to reach the service: %v", err)
	}
	if info.Server != "SeD-chainC" {
		t.Errorf("served by %q, want SeD-chainC", info.Server)
	}
	if _, served, _ := maC.ForwardStats(); served < 1 {
		t.Error("MA-chainC never served the two-hop forward")
	}
}

// TestFederationForwardLoopGuard exercises the loop guard at the RPC
// surface: a request ID seen twice is dropped, as is a request that lists
// this MA in its visited set or arrives with no hop budget.
func TestFederationForwardLoopGuard(t *testing.T) {
	a, err := NewAgent(AgentConfig{Name: "MA-loop", Kind: MasterAgent})
	if err != nil {
		t.Fatal(err)
	}
	req := PeerForwardRequest{
		SchemaVersion: PeerSchemaVersion, Service: "x", RequestID: "req-1", Hops: 2,
	}
	reply, err := a.peerForward(req)
	if err != nil || reply.Dropped {
		t.Fatalf("first delivery dropped (%v, %+v)", err, reply)
	}
	reply, err = a.peerForward(req)
	if err != nil || !reply.Dropped {
		t.Fatalf("request ID seen twice was not dropped (%v, %+v)", err, reply)
	}

	visited := PeerForwardRequest{
		SchemaVersion: PeerSchemaVersion, Service: "x", RequestID: "req-2",
		Hops: 2, Visited: []string{"MA-other", "MA-loop"},
	}
	if reply, _ = a.peerForward(visited); !reply.Dropped {
		t.Error("request listing this MA as visited was not dropped")
	}

	spent := PeerForwardRequest{SchemaVersion: PeerSchemaVersion, Service: "x", RequestID: "req-3"}
	if reply, _ = a.peerForward(spent); !reply.Dropped {
		t.Error("request with no hop budget was not dropped")
	}

	if _, _, dropped := a.ForwardStats(); dropped != 3 {
		t.Errorf("loop guard dropped %d, want 3", dropped)
	}

	wrong := req
	wrong.SchemaVersion = PeerSchemaVersion + 1
	wrong.RequestID = "req-4"
	if _, err := a.peerForward(wrong); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("wrong schema version accepted (err=%v)", err)
	}
}

// captureSink records published events for assertions.
type captureSink struct {
	mu     sync.Mutex
	events []string // "kind detail"
}

func (c *captureSink) Publish(component, kind, detail string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, kind+" "+detail)
}

func (c *captureSink) count(kind string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.events {
		if strings.HasPrefix(e, kind+" ") {
			n++
		}
	}
	return n
}

// TestFederationPeerRegisterDedup is the PR-7 childRegister guard applied
// to peers: re-announcements on every heartbeat must not spam the span bus;
// only a new peer or a moved address is an event.
func TestFederationPeerRegisterDedup(t *testing.T) {
	sink := &captureSink{}
	a, err := NewAgent(AgentConfig{Name: "MA-dedup", Kind: MasterAgent, Events: sink})
	if err != nil {
		t.Fatal(err)
	}
	peer := PeerInfo{Name: "MA-peer", Addr: "local:1"}
	for i := 0; i < 5; i++ { // five heartbeats, one event
		if err := a.peerRegister(peer); err != nil {
			t.Fatal(err)
		}
	}
	if n := sink.count("peer_register"); n != 1 {
		t.Errorf("5 identical announcements published %d events, want 1", n)
	}
	peer.Addr = "local:2" // the peer moved: that is news
	if err := a.peerRegister(peer); err != nil {
		t.Fatal(err)
	}
	if n := sink.count("peer_register"); n != 2 {
		t.Errorf("address change published %d events total, want 2", n)
	}

	if err := a.peerRegister(PeerInfo{Name: "MA-dedup", Addr: "local:3"}); err == nil {
		t.Error("self-peering accepted")
	}
	la, err := NewAgent(AgentConfig{Name: "LA-dedup", Kind: LocalAgent, Parent: "MA-dedup"})
	if err != nil {
		t.Fatal(err)
	}
	if err := la.peerRegister(peer); err == nil {
		t.Error("a local agent accepted a peer registration")
	}
	if _, err := NewAgent(AgentConfig{
		Name: "LA-peered", Kind: LocalAgent, Parent: "MA-dedup", Peers: []string{"MA-x"},
	}); err == nil {
		t.Error("NewAgent accepted Peers on a local agent")
	}
}
