package diet

import (
	"time"

	"repro/internal/cori"
	"repro/internal/rpc"
)

// This file carries CoRI model gossip through the agent hierarchy. Every
// agent maintains a cluster-keyed cori.Registry of the models its subtree's
// SeDs have trained. The exchange piggybacks on existing agent traffic: each
// heartbeat sweep also runs a gossip round (SeD children report their models
// up, agent children exchange registry snapshots both ways), and the
// ChildRegister reply hands a fresh SeD the merged prior of its cluster so a
// restarted or newly deployed SeD on a known cluster warm-starts instead of
// falling back to advertised power.

// ModelsReply is a SeD's answer to a Models gossip query: which cluster it
// runs on and its current per-service CoRI models.
type ModelsReply struct {
	Cluster string
	At      time.Time
	Models  []cori.Model
}

// ChildRegisterReply answers a ChildRegister call. Prior carries the merged
// cluster models for a registering SeD's cluster (empty when the registry
// knows nothing about it), so the SeD can warm-start its monitor.
type ChildRegisterReply struct {
	OK    bool
	Prior []cori.Model
}

// Registry exposes the agent's cluster-keyed model registry (for tests and
// tools).
func (a *Agent) Registry() *cori.Registry { return a.registry }

// GossipRound performs one gossip exchange with every child: SeD children
// report their per-service models into the registry; agent children receive
// this agent's snapshot and answer with their own, which is merged back —
// one round therefore moves models both up and down one level of the
// hierarchy. The heartbeat monitor runs a round after every sweep, so gossip
// rides the existing keepalive traffic; tests and tools can drive it
// directly. Children that fail are skipped, like a missed heartbeat.
func (a *Agent) GossipRound() {
	if a.metrics != nil {
		a.metrics.gossipRounds.With(a.cfg.Name).Inc()
	}
	// Expire contributions whose confidence has fully decayed before
	// spreading the registry any further: a long-lived agent must not gossip
	// dead SeDs forever. Peers sweeping with the same rule converge to the
	// evicted state even if a merge briefly resurrects a stale source.
	if a.cfg.EvictConfidenceFloor > 0 {
		hl := a.cfg.EvictHalfLife
		if hl <= 0 {
			hl = time.Hour
		}
		for _, src := range a.registry.EvictStale(time.Now(), hl, a.cfg.EvictConfidenceFloor) {
			publish(a.cfg.Events, a.cfg.Kind.String()+":"+a.cfg.Name, "registry_evict", src)
		}
	}
	snap := a.registry.Snapshot()
	for _, c := range a.Children() {
		switch c.Kind {
		case "SeD":
			var reply ModelsReply
			if err := rpc.Call(c.Addr, "sed:"+c.Name, "Models", struct{}{}, &reply); err != nil {
				continue
			}
			cluster := reply.Cluster
			if cluster == "" {
				cluster = c.Cluster
			}
			a.registry.Update(c.Name, cluster, reply.At, reply.Models)
		default:
			var childSnap cori.RegistrySnapshot
			if err := rpc.Call(c.Addr, "agent:"+c.Name, "GossipRegistry", snap, &childSnap); err != nil {
				continue
			}
			// A version-mismatched reply is skipped like a failed child; the
			// next round retries.
			_ = a.registry.Merge(childSnap)
		}
	}
}
