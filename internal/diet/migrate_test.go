package diet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cori"
	"repro/internal/rpc"
	"repro/internal/scheduler"
)

// hasChild reports whether the named agent's subtree lists the SeD directly.
func hasChild(a *Agent, sed string) bool {
	for _, c := range a.Children() {
		if c.Name == sed {
			return true
		}
	}
	return false
}

// TestApplyPlanMigratesSeDWithModels walks the whole live-migration path: a
// trained SeD moves from one LA to another via MA.ApplyPlan, keeps solving,
// keeps its CoRI model (no retraining), re-advertises the planned power, and
// its registry contribution arrives at the new parent without waiting for a
// gossip round.
func TestApplyPlanMigratesSeDWithModels(t *testing.T) {
	rpc.ResetLocal()
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-mig", LAs: []string{"LA-mig-a", "LA-mig-b"},
		SeDs: []SeDSpec{{
			Name: "SeD-mig", Parent: "LA-mig-a", Cluster: "grillon", PowerGFlops: 50,
			Services: []ServiceSpec{sleepService("double", time.Millisecond, nil)},
		}},
		Local: true,
	})
	sed := d.SeDs[0]
	client, err := d.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Finalize()

	// Train the SeD with varied work sizes, then gossip its models up.
	for i := 0; i < 4; i++ {
		p, _ := NewProfile("double", 0, 0, 1)
		p.SetScalarInt(0, int64(i), Volatile)
		if _, err := client.Call(p, WithWork(float64(1000*(i+1)))); err != nil {
			t.Fatal(err)
		}
	}
	d.LAs[0].GossipRound()
	d.MA.GossipRound()
	modelBefore, ok := sed.Monitor().Model("double")
	if !ok || modelBefore.Samples != 4 {
		t.Fatalf("training failed: %+v ok=%v", modelBefore, ok)
	}

	res := d.MA.ApplyPlan([]Migration{{SeD: "SeD-mig", NewParent: "LA-mig-b", NewPower: 99}})
	if len(res) != 1 || !res[0].OK() || !res[0].Moved() {
		t.Fatalf("migration failed: %+v", res)
	}
	if res[0].OldParent != "LA-mig-a" {
		t.Fatalf("OldParent = %q, want LA-mig-a", res[0].OldParent)
	}

	// The live topology moved the SeD.
	if hasChild(d.LAs[0], "SeD-mig") {
		t.Fatal("old parent still lists the migrated SeD")
	}
	if !hasChild(d.LAs[1], "SeD-mig") {
		t.Fatal("new parent does not list the migrated SeD")
	}
	if got := sed.Parent(); got != "LA-mig-b" {
		t.Fatalf("SeD.Parent() = %q, want LA-mig-b", got)
	}

	// The planned power is what estimates now advertise.
	est := sed.Estimate("double").Est
	if est.PowerGFlops != 99 {
		t.Fatalf("advertised power %g after migration, want 99", est.PowerGFlops)
	}
	// The model traveled: the first post-move estimate still carries the full
	// trained forecast — no cold restart.
	if !est.HasForecast || est.ForecastSamples != 4 {
		t.Fatalf("post-move estimate lost the model: %+v", est)
	}
	if est.ForecastConfidence < scheduler.DefaultMinConfidence {
		t.Fatalf("post-move forecast confidence %g below the trust floor", est.ForecastConfidence)
	}
	modelAfter, _ := sed.Monitor().Model("double")
	if modelAfter.Samples != modelBefore.Samples || modelAfter.Warm {
		t.Fatalf("migration disturbed the monitor: before %+v after %+v", modelBefore, modelAfter)
	}

	// The registry contribution was forwarded with the move — the new parent
	// knows the mover's models before any gossip round of its own.
	if _, ok := d.LAs[1].Registry().SourceModel("SeD-mig", "double"); !ok {
		t.Fatal("new parent's registry lacks the migrated SeD's contribution")
	}

	// The hierarchy still solves through the new placement.
	p, _ := NewProfile("double", 0, 0, 1)
	p.SetScalarInt(0, 21, Volatile)
	if _, err := client.Call(p); err != nil {
		t.Fatalf("post-migration solve failed: %v", err)
	}
	if v, _ := p.ScalarInt(1); v != 42 {
		t.Fatalf("post-migration solve returned %d, want 42", v)
	}
}

// TestApplyPlanPowerOnlyRefresh checks the fast path: a migration whose
// target parent equals the current one only refreshes the advertised power.
func TestApplyPlanPowerOnlyRefresh(t *testing.T) {
	rpc.ResetLocal()
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-pow", LAs: []string{"LA-pow"},
		SeDs: []SeDSpec{{
			Name: "SeD-pow", Parent: "LA-pow", PowerGFlops: 50,
			Services: []ServiceSpec{sleepService("double", 0, nil)},
		}},
		Local: true,
	})
	res := d.MA.ApplyPlan([]Migration{{SeD: "SeD-pow", NewParent: "LA-pow", NewPower: 77}})
	if len(res) != 1 || !res[0].OK() || res[0].Moved() || !res[0].PowerChanged {
		t.Fatalf("power refresh misreported: %+v", res)
	}
	if got := d.SeDs[0].Power(); got != 77 {
		t.Fatalf("power = %g, want 77", got)
	}
	if got := d.SeDs[0].Parent(); got != "LA-pow" {
		t.Fatalf("parent changed on a power-only refresh: %q", got)
	}
	// Re-applying the same power is a reported no-op — the fixed point a
	// steady-state replan pass must recognize to stay quiet.
	res = d.MA.ApplyPlan([]Migration{{SeD: "SeD-pow", NewParent: "LA-pow", NewPower: 77}})
	if len(res) != 1 || !res[0].OK() || res[0].PowerChanged {
		t.Fatalf("repeat refresh must report no power change: %+v", res)
	}
}

// TestApplyPlanReportsFailures checks per-migration error isolation: unknown
// SeDs and unknown target agents fail their own migration without blocking
// the rest of the plan.
func TestApplyPlanReportsFailures(t *testing.T) {
	rpc.ResetLocal()
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-err", LAs: []string{"LA-err-a", "LA-err-b"},
		SeDs: []SeDSpec{{
			Name: "SeD-err", Parent: "LA-err-a", PowerGFlops: 50,
			Services: []ServiceSpec{sleepService("double", 0, nil)},
		}},
		Local: true,
	})
	res := d.MA.ApplyPlan([]Migration{
		{SeD: "SeD-ghost", NewParent: "LA-err-b"},
		{SeD: "SeD-err", NewParent: "LA-ghost"},
		{SeD: "SeD-err", NewParent: "LA-err-b"},
	})
	if len(res) != 3 {
		t.Fatalf("want 3 results, got %d", len(res))
	}
	if res[0].OK() || res[1].OK() {
		t.Fatalf("ghost migrations must fail: %+v", res[:2])
	}
	if !res[2].OK() || !res[2].Moved() {
		t.Fatalf("valid migration must survive earlier failures: %+v", res[2])
	}
	if !hasChild(d.LAs[1], "SeD-err") {
		t.Fatal("valid migration did not land")
	}
}

// TestReplanRidesHeartbeat checks the live loop end to end: an MA with a
// heartbeat-driven replanner migrates a SeD without anyone calling the
// protocol explicitly.
func TestReplanRidesHeartbeat(t *testing.T) {
	rpc.ResetLocal()
	// Deploy the hierarchy manually so the MA can carry the replanner config.
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-hb-seed", LAs: []string{}, SeDs: nil, Local: true,
	})
	ma, err := NewAgent(AgentConfig{
		Name: "MA-hb", Kind: MasterAgent, Naming: d.NamingAddr, Local: true,
		HeartbeatInterval: 2 * time.Millisecond,
		ReplanInterval:    time.Millisecond,
		Replanner: func(live TopologyNode, _ *cori.Registry) []Migration {
			// Steady-state plan: SeD-hb belongs under LA-hb-b at power 88.
			return []Migration{{SeD: "SeD-hb", NewParent: "LA-hb-b", NewPower: 88}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ma.Start(); err != nil {
		t.Fatal(err)
	}
	defer ma.Close()
	for _, la := range []string{"LA-hb-a", "LA-hb-b"} {
		ag, err := NewAgent(AgentConfig{
			Name: la, Kind: LocalAgent, Parent: "MA-hb", Naming: d.NamingAddr, Local: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := ag.Start(); err != nil {
			t.Fatal(err)
		}
		defer ag.Close()
	}
	sed, err := NewSeD(SeDConfig{
		Name: "SeD-hb", Parent: "LA-hb-a", Naming: d.NamingAddr, PowerGFlops: 50, Local: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc := sleepService("double", 0, nil)
	if err := sed.AddService(svc.Desc, svc.Solve); err != nil {
		t.Fatal(err)
	}
	if err := sed.Start(); err != nil {
		t.Fatal(err)
	}
	defer sed.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if sed.Parent() == "LA-hb-b" && sed.Power() == 88 {
			if ma.ReplanCount() == 0 || ma.MigratedCount() != 1 {
				t.Fatalf("replan stats off: replans=%d migrated=%d", ma.ReplanCount(), ma.MigratedCount())
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("heartbeat-driven replan never migrated the SeD (parent %q, power %g)",
		sed.Parent(), sed.Power())
}

// TestMigrationChaosConcurrentSolves is the race/chaos test the migration
// protocol must survive: clients hammer the hierarchy with solves while the
// MA flips a SeD between two LAs and every agent runs gossip and heartbeat
// sweeps concurrently. Every submitted solve must execute exactly once —
// nothing lost in a drain, nothing double-granted after a reparent. Run
// under -race this also guards the protocol's locking.
func TestMigrationChaosConcurrentSolves(t *testing.T) {
	rpc.ResetLocal()
	var executed atomic.Int64
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-chaos", LAs: []string{"LA-chaos-a", "LA-chaos-b"},
		SeDs: []SeDSpec{
			{Name: "SeD-chaos-mover", Parent: "LA-chaos-a", Cluster: "grillon", PowerGFlops: 50, Capacity: 2,
				Services: []ServiceSpec{sleepService("double", 200*time.Microsecond, &executed)}},
			{Name: "SeD-chaos-anchor", Parent: "LA-chaos-b", Cluster: "grillon", PowerGFlops: 40,
				Services: []ServiceSpec{sleepService("double", 200*time.Microsecond, &executed)}},
		},
		Local: true,
	})
	client, err := d.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Finalize()

	const (
		solvers       = 8
		solvesEach    = 25
		migrations    = 20
		gossipSpinner = 60
	)
	var wg sync.WaitGroup
	errs := make(chan error, solvers*solvesEach)

	// Solver goroutines: every Call must succeed and double its input.
	for g := 0; g < solvers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < solvesEach; i++ {
				p, _ := NewProfile("double", 0, 0, 1)
				in := int64(g*1000 + i)
				p.SetScalarInt(0, in, Volatile)
				if _, err := client.Call(p, WithWork(float64(500+i))); err != nil {
					errs <- fmt.Errorf("solver %d call %d: %w", g, i, err)
					return
				}
				if out, _ := p.ScalarInt(1); out != 2*in {
					errs <- fmt.Errorf("solver %d call %d: got %d want %d", g, i, out, 2*in)
					return
				}
			}
		}(g)
	}

	// Migration goroutine: flip the mover between the LAs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		targets := [2]string{"LA-chaos-b", "LA-chaos-a"}
		for i := 0; i < migrations; i++ {
			res := d.MA.ApplyPlan([]Migration{{
				SeD: "SeD-chaos-mover", NewParent: targets[i%2], NewPower: float64(50 + i),
			}})
			for _, r := range res {
				if !r.OK() {
					errs <- fmt.Errorf("migration %d: %s (LA-a children %v, LA-b children %v, sed parent %q)",
						i, r.Err, d.LAs[0].Children(), d.LAs[1].Children(), d.SeDs[0].Parent())
					return
				}
			}
		}
	}()

	// Gossip/heartbeat chaos across every agent.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < gossipSpinner; i++ {
			d.MA.SweepChildren()
			d.MA.GossipRound()
			for _, la := range d.LAs {
				la.SweepChildren()
				la.GossipRound()
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	want := int64(solvers * solvesEach)
	if got := executed.Load(); got != want {
		t.Fatalf("executed %d solves, want exactly %d (lost or double-executed under migration)", got, want)
	}
	// The mover really moved: the last flip (i=19) targeted LA-chaos-a, and
	// it must still serve solves there.
	if got := d.SeDs[0].Parent(); got != "LA-chaos-a" {
		t.Fatalf("mover finished under %q, want LA-chaos-a", got)
	}
	p, _ := NewProfile("double", 0, 0, 1)
	p.SetScalarInt(0, 7, Volatile)
	if _, err := client.Call(p); err != nil {
		t.Fatalf("post-chaos solve failed: %v", err)
	}
}

// TestSweepHealsLostMigrationHandoff covers the dropped-reply edge of the
// protocol: the SeD reparents successfully but the old parent never sees the
// MigrateChild completion (simulated by reparenting behind its back), so it
// still lists the child. The next heartbeat sweep probes the SeD's Stats,
// notices it answers to another parent, and drops it — the dual-parent
// window closes without any eviction timeout.
func TestSweepHealsLostMigrationHandoff(t *testing.T) {
	rpc.ResetLocal()
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-heal", LAs: []string{"LA-heal-a", "LA-heal-b"},
		SeDs: []SeDSpec{{
			Name: "SeD-heal", Parent: "LA-heal-a", PowerGFlops: 50,
			Services: []ServiceSpec{sleepService("double", 0, nil)},
		}},
		Local: true,
	})
	// Reparent behind the old parent's back — as if its MigrateChild call
	// lost the reply after the SeD had re-registered.
	if _, err := d.SeDs[0].Reparent(ReparentRequest{
		Parent: "LA-heal-b", ParentAddr: d.LAs[1].Addr(),
	}); err != nil {
		t.Fatal(err)
	}
	if !hasChild(d.LAs[0], "SeD-heal") || !hasChild(d.LAs[1], "SeD-heal") {
		t.Fatal("precondition: both parents should list the child before the sweep")
	}
	// A parent mismatch gets the missed-beat grace (a reparent may be in
	// flight), so the first sweep must not drop the child yet.
	d.LAs[0].SweepChildren()
	if !hasChild(d.LAs[0], "SeD-heal") {
		t.Fatal("one mismatched probe must not drop the child (reparent grace)")
	}
	for i := 0; i < 3; i++ { // default MaxMissed
		d.LAs[0].SweepChildren()
	}
	if hasChild(d.LAs[0], "SeD-heal") {
		t.Fatal("persistent parent mismatch must drop the child")
	}
	if !hasChild(d.LAs[1], "SeD-heal") {
		t.Fatal("the true parent must keep the child")
	}
	if d.LAs[0].EvictedCount() != 0 {
		t.Fatal("healing a handoff is not an eviction")
	}
}

// TestNewAgentRejectsDanglingReplanConfig guards the config contract: a
// replan interval without the heartbeat that drives it (or a replanner to
// run) would silently never fire.
func TestNewAgentRejectsDanglingReplanConfig(t *testing.T) {
	if _, err := NewAgent(AgentConfig{
		Name: "MA-cfg", Kind: MasterAgent, ReplanInterval: time.Minute,
		Replanner: func(TopologyNode, *cori.Registry) []Migration { return nil },
	}); err == nil {
		t.Fatal("ReplanInterval without HeartbeatInterval must be rejected")
	}
	if _, err := NewAgent(AgentConfig{
		Name: "MA-cfg", Kind: MasterAgent, ReplanInterval: time.Minute,
		HeartbeatInterval: time.Second,
	}); err == nil {
		t.Fatal("ReplanInterval without a Replanner must be rejected")
	}
}

// TestReparentDrainWaitsForRunningSolve proves the drain semantics directly:
// a Reparent issued while a slow solve is running completes only after the
// solve does, and the queued work behind it is not lost.
func TestReparentDrainWaitsForRunningSolve(t *testing.T) {
	rpc.ResetLocal()
	var executed atomic.Int64
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-drain", LAs: []string{"LA-drain-a", "LA-drain-b"},
		SeDs: []SeDSpec{{
			Name: "SeD-drain", Parent: "LA-drain-a", PowerGFlops: 50,
			Services: []ServiceSpec{sleepService("double", 60*time.Millisecond, &executed)},
		}},
		Local: true,
	})
	sed := d.SeDs[0]

	// Start a slow solve directly on the SeD, plus one queued behind it.
	solveDone := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			p, _ := NewProfile("double", 0, 0, 1)
			p.SetScalarInt(0, int64(i), Volatile)
			_, err := sed.Solve(p)
			solveDone <- err
		}(i)
	}
	// Wait until the first solve is actually running.
	deadline := time.Now().Add(2 * time.Second)
	for sed.Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("solve never started")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	res := d.MA.ApplyPlan([]Migration{{SeD: "SeD-drain", NewParent: "LA-drain-b"}})
	if len(res) != 1 || !res[0].OK() {
		t.Fatalf("migration failed: %+v", res)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("reparent returned in %v — it cannot have drained the 60ms solve", elapsed)
	}
	for i := 0; i < 2; i++ {
		if err := <-solveDone; err != nil {
			t.Fatalf("solve across migration failed: %v", err)
		}
	}
	if got := executed.Load(); got != 2 {
		t.Fatalf("executed %d solves, want 2", got)
	}
	if got := sed.Parent(); got != "LA-drain-b" {
		t.Fatalf("parent = %q, want LA-drain-b", got)
	}
}
