package diet

import (
	"testing"
	"time"

	"repro/internal/cori"
	"repro/internal/rpc"
	"repro/internal/scheduler"
)

// sizedRecorder records what the SeD hands a SizedExecutor per solve.
type sizedRecorder struct {
	services []string
	works    []float64
	bound    *cori.Monitor
}

func (r *sizedRecorder) Execute(run func() error) error { return run() }
func (r *sizedRecorder) ExecuteSized(service string, workGFlops float64, run func() error) error {
	r.services = append(r.services, service)
	r.works = append(r.works, workGFlops)
	return run()
}
func (r *sizedRecorder) BindMonitor(m *cori.Monitor) { r.bound = m }

// TestSeDRoutesSolvesThroughSizedExecutor checks the forecast-sized
// reservation plumbing: the SeD hands the executor the service name and the
// client's work estimate, and binds its own CoRI monitor so walltime sizing
// reads the same history the estimates do.
func TestSeDRoutesSolvesThroughSizedExecutor(t *testing.T) {
	rpc.ResetLocal()
	defer rpc.ResetLocal()

	rec := &sizedRecorder{}
	spec := DeploymentSpec{
		MAName: "MA1",
		Policy: scheduler.NewRoundRobin(),
		LAs:    []string{"LA1"},
		Local:  true,
	}
	desc, _ := NewProfileDesc("echo", 0, 0, 1)
	desc.Set(0, Scalar, Int)
	desc.Set(1, Scalar, Int)
	svc := ServiceSpec{Desc: desc, Solve: func(p *Profile) error {
		v, err := p.ScalarInt(0)
		if err != nil {
			return err
		}
		return p.SetScalarInt(1, v+1, Volatile)
	}}
	spec.SeDs = []SeDSpec{{
		Name: "SeD1", Parent: "LA1", Capacity: 1, PowerGFlops: 50,
		Services: []ServiceSpec{svc}, Executor: rec,
	}}
	d, err := Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if rec.bound == nil || rec.bound != d.SeDs[0].Monitor() {
		t.Fatal("deploy must bind the SeD's monitor to the sized executor")
	}

	client, err := d.Client()
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewProfile("echo", 0, 0, 1)
	p.SetScalarInt(0, 41, Volatile)
	if _, err := client.Call(p, WithWork(1234)); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.ScalarInt(1); got != 42 {
		t.Fatalf("solve result %d, want 42", got)
	}
	if len(rec.services) != 1 || rec.services[0] != "echo" {
		t.Fatalf("executor saw services %v, want [echo]", rec.services)
	}
	if len(rec.works) != 1 || rec.works[0] != 1234 {
		t.Fatalf("executor saw work %v, want the client's 1234 GFlop estimate", rec.works)
	}
}

// waitReporter is a WaitReportingExecutor that claims every reservation
// waited a fixed, large time in the batch queue.
type waitReporter struct {
	sizedRecorder
	reportWait time.Duration
}

func (r *waitReporter) ExecuteSizedWait(service string, workGFlops float64, run func() error) (time.Duration, error) {
	return r.reportWait, r.ExecuteSized(service, workGFlops, run)
}

// TestSeDFeedsReportedBatchWaitToMonitor checks the queue-wait plumbing
// behind the wait-on-depth regression: when the executor measures its batch
// queue wait, the CoRI sample's Wait carries that measurement — backfilled
// reservations train the regression with the waits they actually saw — not
// just the wall-clock gap inside the SeD.
func TestSeDFeedsReportedBatchWaitToMonitor(t *testing.T) {
	rpc.ResetLocal()
	defer rpc.ResetLocal()

	rec := &waitReporter{reportWait: 5 * time.Second}
	spec := DeploymentSpec{
		MAName: "MA1",
		Policy: scheduler.NewRoundRobin(),
		LAs:    []string{"LA1"},
		Local:  true,
	}
	desc, _ := NewProfileDesc("echo", 0, 0, 1)
	desc.Set(0, Scalar, Int)
	desc.Set(1, Scalar, Int)
	svc := ServiceSpec{Desc: desc, Solve: func(p *Profile) error {
		return p.SetScalarInt(1, 1, Volatile)
	}}
	spec.SeDs = []SeDSpec{{
		Name: "SeD1", Parent: "LA1", Capacity: 1, PowerGFlops: 50,
		Services: []ServiceSpec{svc}, Executor: rec,
	}}
	d, err := Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	client, err := d.Client()
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewProfile("echo", 0, 0, 1)
	p.SetScalarInt(0, 1, Volatile)
	if _, err := client.Call(p); err != nil {
		t.Fatal(err)
	}

	snap := d.SeDs[0].Monitor().Snapshot()
	for _, svc := range snap.Services {
		if svc.Service != "echo" {
			continue
		}
		if len(svc.Samples) != 1 {
			t.Fatalf("one observed sample expected, got %d", len(svc.Samples))
		}
		// The solve itself is instantaneous; the sample's wait must be
		// dominated by the executor's reported 5 s reservation wait.
		if w := svc.Samples[0].Wait; w < rec.reportWait || w > rec.reportWait+time.Second {
			t.Fatalf("sample wait %v, want ≈ the reported %v batch wait", w, rec.reportWait)
		}
		return
	}
	t.Fatal("no echo history observed")
}
