package diet

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewProfileIndices(t *testing.T) {
	// The paper's ramsesZoom2 layout: 7 IN, 0 INOUT, 2 OUT.
	p, err := NewProfile("ramsesZoom2", 6, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.NArgs() != 9 {
		t.Fatalf("NArgs = %d, want 9", p.NArgs())
	}
	for i := 0; i <= 6; i++ {
		if p.Direction(i) != In {
			t.Errorf("arg %d direction %s, want IN", i, p.Direction(i))
		}
	}
	for i := 7; i <= 8; i++ {
		if p.Direction(i) != Out {
			t.Errorf("arg %d direction %s, want OUT", i, p.Direction(i))
		}
	}
}

func TestNewProfileValidation(t *testing.T) {
	if _, err := NewProfile("", 0, 0, 1); err == nil {
		t.Error("empty service should fail")
	}
	if _, err := NewProfile("s", -2, 0, 1); err == nil {
		t.Error("lastIn < -1 should fail")
	}
	if _, err := NewProfile("s", 2, 1, 3); err == nil {
		t.Error("lastInOut < lastIn should fail")
	}
	if _, err := NewProfile("s", 0, 1, 0); err == nil {
		t.Error("lastOut < lastInOut should fail")
	}
	// No IN args at all is legal.
	p, err := NewProfile("s", -1, -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Direction(0) != Out {
		t.Error("single arg should be OUT")
	}
}

func TestInOutDirection(t *testing.T) {
	p, _ := NewProfile("s", 0, 1, 2)
	if p.Direction(0) != In || p.Direction(1) != InOut || p.Direction(2) != Out {
		t.Errorf("directions: %s %s %s", p.Direction(0), p.Direction(1), p.Direction(2))
	}
}

func TestScalarRoundTrips(t *testing.T) {
	p, _ := NewProfile("s", 3, 3, 4)
	if err := p.SetScalarInt(0, -12345, Volatile); err != nil {
		t.Fatal(err)
	}
	if v, err := p.ScalarInt(0); err != nil || v != -12345 {
		t.Errorf("ScalarInt = %d, %v", v, err)
	}
	if err := p.SetScalarDouble(1, math.Pi, Persistent); err != nil {
		t.Fatal(err)
	}
	if v, err := p.ScalarDouble(1); err != nil || v != math.Pi {
		t.Errorf("ScalarDouble = %g, %v", v, err)
	}
	if p.Args[1].Persist != Persistent {
		t.Error("persistence not recorded")
	}
	// Type confusion is rejected.
	if _, err := p.ScalarDouble(0); err == nil {
		t.Error("reading int as double should fail")
	}
	if _, err := p.ScalarInt(1); err == nil {
		t.Error("reading double as int should fail")
	}
}

func TestScalarIntProperty(t *testing.T) {
	f := func(v int64) bool {
		p, _ := NewProfile("s", 0, 0, 1)
		if p.SetScalarInt(0, v, Volatile) != nil {
			return false
		}
		got, err := p.ScalarInt(0)
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVectorMatrixRoundTrips(t *testing.T) {
	p, _ := NewProfile("s", 1, 1, 2)
	vec := []float64{1.5, -2.5, 1e300}
	if err := p.SetVectorDouble(0, vec, Volatile); err != nil {
		t.Fatal(err)
	}
	got, err := p.VectorDouble(0)
	if err != nil || len(got) != 3 {
		t.Fatalf("VectorDouble = %v, %v", got, err)
	}
	for i := range vec {
		if got[i] != vec[i] {
			t.Errorf("vec[%d] = %g", i, got[i])
		}
	}
	mat := []float64{1, 2, 3, 4, 5, 6}
	if err := p.SetMatrixDouble(1, 2, 3, mat, Volatile); err != nil {
		t.Fatal(err)
	}
	r, c, gm, err := p.MatrixDouble(1)
	if err != nil || r != 2 || c != 3 {
		t.Fatalf("MatrixDouble dims %dx%d, %v", r, c, err)
	}
	for i := range mat {
		if gm[i] != mat[i] {
			t.Errorf("mat[%d] = %g", i, gm[i])
		}
	}
	if err := p.SetMatrixDouble(1, 2, 2, mat, Volatile); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestStringAndFile(t *testing.T) {
	p, _ := NewProfile("s", 1, 1, 2)
	if err := p.SetString(0, "namelist content", Volatile); err != nil {
		t.Fatal(err)
	}
	if s, err := p.StringArg(0); err != nil || s != "namelist content" {
		t.Errorf("StringArg = %q, %v", s, err)
	}
	content := []byte{0, 1, 2, 255}
	if err := p.SetFileBytes(1, "data.bin", content, Volatile); err != nil {
		t.Fatal(err)
	}
	name, got, err := p.FileBytes(1)
	if err != nil || name != "data.bin" || len(got) != 4 {
		t.Errorf("FileBytes = %q, %v, %v", name, got, err)
	}
	if _, _, err := p.FileBytes(0); err == nil {
		t.Error("reading string as file should fail")
	}
}

func TestIndexOutOfRange(t *testing.T) {
	p, _ := NewProfile("s", 0, 0, 1)
	if err := p.SetScalarInt(5, 1, Volatile); err == nil {
		t.Error("out-of-range set should fail")
	}
	if _, err := p.ScalarInt(-1); err == nil {
		t.Error("negative index should fail")
	}
}

func TestPayloadBytes(t *testing.T) {
	p, _ := NewProfile("s", 0, 0, 1)
	p.SetFileBytes(0, "in.dat", make([]byte, 100), Volatile)
	p.SetFileBytes(1, "out.dat", make([]byte, 7), Volatile)
	if n := p.PayloadBytes(In); n != 100 {
		t.Errorf("IN payload %d, want 100", n)
	}
	if n := p.PayloadBytes(Out); n != 7 {
		t.Errorf("OUT payload %d, want 7", n)
	}
	if n := p.PayloadBytes(In, Out); n != 107 {
		t.Errorf("IN+OUT payload %d, want 107", n)
	}
}

func TestProfileDescMatching(t *testing.T) {
	d, err := NewProfileDesc("svc", 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	d.Set(0, Scalar, Int)
	d.Set(1, File, Char)

	good, _ := NewProfile("svc", 0, 0, 1)
	good.SetScalarInt(0, 7, Volatile)
	if err := d.Matches(good); err != nil {
		t.Errorf("matching profile rejected: %v", err)
	}

	wrongService, _ := NewProfile("other", 0, 0, 1)
	wrongService.SetScalarInt(0, 7, Volatile)
	if err := d.Matches(wrongService); err == nil {
		t.Error("wrong service should fail")
	}

	wrongShape, _ := NewProfile("svc", 1, 1, 2)
	if err := d.Matches(wrongShape); err == nil {
		t.Error("wrong index layout should fail")
	}

	wrongType, _ := NewProfile("svc", 0, 0, 1)
	wrongType.SetString(0, "x", Volatile)
	if err := d.Matches(wrongType); err == nil {
		t.Error("wrong IN type should fail")
	}

	// OUT arguments are not type-checked: the client's placeholder is fine.
	outPlaceholder, _ := NewProfile("svc", 0, 0, 1)
	outPlaceholder.SetScalarInt(0, 7, Volatile)
	outPlaceholder.SetString(1, "", Volatile) // "wrong" type in an OUT slot
	if err := d.Matches(outPlaceholder); err != nil {
		t.Errorf("OUT placeholder should be accepted: %v", err)
	}
}

func TestDescOf(t *testing.T) {
	p, _ := NewProfile("svc", 0, 0, 1)
	p.SetScalarDouble(0, 1.5, Volatile)
	p.SetFileBytes(1, "x", nil, Volatile)
	d := DescOf(p)
	if d.Service != "svc" || d.Args[0].Kind != Scalar || d.Args[1].Kind != File {
		t.Errorf("DescOf = %+v", d)
	}
	if err := d.Matches(p); err != nil {
		t.Errorf("profile must match its own descriptor: %v", err)
	}
}

func TestDescSetValidation(t *testing.T) {
	d, _ := NewProfileDesc("svc", 0, 0, 1)
	if err := d.Set(9, Scalar, Int); err == nil {
		t.Error("out-of-range Set should fail")
	}
}

func TestStringerCoverage(t *testing.T) {
	// The String methods feed error messages; keep them total.
	for _, b := range []BaseType{Char, Int, Double, BaseType(99)} {
		if b.String() == "" {
			t.Error("empty BaseType string")
		}
	}
	for _, k := range []ArgKind{Scalar, Vector, Matrix, Text, File, ArgKind(99)} {
		if k.String() == "" {
			t.Error("empty ArgKind string")
		}
	}
	for _, p := range []Persistence{Volatile, Persistent, Sticky, Persistence(99)} {
		if p.String() == "" {
			t.Error("empty Persistence string")
		}
	}
	for _, d := range []Direction{In, InOut, Out} {
		if d.String() == "" {
			t.Error("empty Direction string")
		}
	}
}
