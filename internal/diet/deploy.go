package diet

import (
	"fmt"
	"time"

	"repro/internal/cori"
	"repro/internal/dataman"
	"repro/internal/logsvc"
	"repro/internal/metrics"
	"repro/internal/naming"
	"repro/internal/rpc"
	"repro/internal/scheduler"
)

// callOn ships a profile straight to one server, used by bound function
// handles. The call skips the MA, so its trace has no submit or schedule
// span — just the SeD-side spans plus the complete span emitted here.
func (c *Client) callOn(srv ServerRef, p *Profile) (*CallInfo, error) {
	seq := int(c.seq.Add(1))
	requestID := c.requestID(seq)
	p.RequestID = requestID
	t0 := time.Now()
	var solved SolveReply
	if err := rpc.Call(srv.Addr, "sed:"+srv.Name, "Solve", p, &solved); err != nil {
		return nil, err
	}
	*p = *solved.Profile
	done := time.Now()
	total := done.Sub(t0)
	compute := time.Duration(solved.Timing.ComputeMS * float64(time.Millisecond))
	queue := time.Duration(solved.Timing.QueueWaitMS * float64(time.Millisecond))
	publishSpan(c.cfg.Events, span(requestID, "client:"+c.id, logsvc.KindComplete,
		p.Service, "bound call, server "+srv.Name, t0, done))
	info := CallInfo{
		Seq:       seq,
		RequestID: requestID,
		Server:    srv.Name,
		QueueWait: queue,
		Compute:   compute,
		Latency:   total - compute,
		Total:     total,
	}
	c.mu.Lock()
	c.calls = append(c.calls, info)
	c.mu.Unlock()
	return &info, nil
}

// SeDSpec describes one SeD of a deployment.
type SeDSpec struct {
	Name        string
	Parent      string // LA name
	Cluster     string
	Capacity    int
	PowerGFlops float64
	Services    []ServiceSpec
	// Executor optionally routes this SeD's solves through a batch system
	// (e.g. batch.Executor for fixed grants, batch.ForecastExecutor for
	// forecast-sized reservations). Nil executes solves inline.
	Executor Executor
}

// ServiceSpec binds a descriptor to its solve function for deployment.
type ServiceSpec struct {
	Desc  *ProfileDesc
	Solve SolveFunc
}

// DeploymentSpec describes a whole platform: one MA, its LAs, their SeDs —
// the shape of the paper's Grid'5000 deployment (1 MA, 6 LA, 11 SeD).
type DeploymentSpec struct {
	MAName string
	Policy scheduler.Policy
	LAs    []string // LA names; every LA hangs off the MA
	SeDs   []SeDSpec
	Local  bool // in-process transport (tests, experiments); false = TCP
	// Events, when set, is wired into every component of the deployment (and
	// into clients opened with Deployment.Client), so one sink sees the whole
	// platform's events and request traces — the LogService topology.
	Events EventSink
	// Metrics, when set, is shared by every component: one registry scrapes
	// the whole deployment, with per-component labels telling SeDs apart.
	Metrics *metrics.Registry
	// Data, when set, wires every SeD into the platform data manager: each
	// SeD joins the catalog as a node with its own store, estimates price
	// input transfers, solves fetch missing persistent inputs, and produced
	// persistent data is published platform-wide.
	Data *dataman.Catalog
	// Transfers is the shared per-pair bandwidth forecaster. When nil and
	// Data is set, Deploy creates one and subscribes it to the catalog's
	// measured transfers; supply both to control the wiring yourself.
	Transfers *cori.TransferMonitor
}

// Deployment is a running platform handle.
type Deployment struct {
	Naming     *naming.Service
	NamingAddr string
	MA         *Agent
	LAs        []*Agent
	SeDs       []*SeD
	// Data and Transfers echo the spec's data plane (Transfers is the
	// Deploy-created monitor when the spec left it nil).
	Data      *dataman.Catalog
	Transfers *cori.TransferMonitor

	events  EventSink
	servers []*rpc.Server
}

// Deploy brings up a complete DIET platform: naming service, master agent,
// local agents, SeDs with their services, all wired through the hierarchy.
func Deploy(spec DeploymentSpec) (*Deployment, error) {
	if spec.MAName == "" {
		spec.MAName = "MA1"
	}
	if spec.Data != nil && spec.Transfers == nil {
		spec.Transfers = cori.NewTransferMonitor(cori.Config{})
		monitor := spec.Transfers
		spec.Data.AddTransferObserver(func(from, to string, sizeMB float64, dur time.Duration) {
			monitor.Observe(cori.TransferSample{From: from, To: to, SizeMB: sizeMB, Duration: dur})
		})
	}
	d := &Deployment{Naming: naming.NewService(), Data: spec.Data, Transfers: spec.Transfers}

	// Naming service first; everything else registers through it.
	ns := rpc.NewServer()
	ns.Register(naming.ObjectName, d.Naming.Handler())
	var err error
	if spec.Local {
		d.NamingAddr, err = rpc.ServeLocal(fmt.Sprintf("naming-%s", spec.MAName), ns)
	} else {
		d.NamingAddr, err = ns.Start(":0")
	}
	if err != nil {
		return nil, fmt.Errorf("diet: starting naming service: %w", err)
	}
	d.servers = append(d.servers, ns)

	d.events = spec.Events
	ma, err := NewAgent(AgentConfig{
		Name: spec.MAName, Kind: MasterAgent, Naming: d.NamingAddr,
		Policy: spec.Policy, Local: spec.Local,
		Events: spec.Events, Metrics: spec.Metrics,
	})
	if err != nil {
		d.Close()
		return nil, err
	}
	if err := ma.Start(); err != nil {
		d.Close()
		return nil, err
	}
	d.MA = ma

	for _, laName := range spec.LAs {
		la, err := NewAgent(AgentConfig{
			Name: laName, Kind: LocalAgent, Parent: spec.MAName,
			Naming: d.NamingAddr, Local: spec.Local,
			Events: spec.Events, Metrics: spec.Metrics,
		})
		if err != nil {
			d.Close()
			return nil, err
		}
		if err := la.Start(); err != nil {
			d.Close()
			return nil, err
		}
		d.LAs = append(d.LAs, la)
	}

	for _, ss := range spec.SeDs {
		cfg := SeDConfig{
			Name: ss.Name, Parent: ss.Parent, Naming: d.NamingAddr,
			Capacity: ss.Capacity, PowerGFlops: ss.PowerGFlops,
			Cluster: ss.Cluster, Local: spec.Local, Executor: ss.Executor,
			Events: spec.Events, Metrics: spec.Metrics,
			Transfers: spec.Transfers,
		}
		if spec.Data != nil {
			cfg.Data = spec.Data
		}
		sed, err := NewSeD(cfg)
		if err != nil {
			d.Close()
			return nil, err
		}
		for _, svc := range ss.Services {
			if err := sed.AddService(svc.Desc, svc.Solve); err != nil {
				d.Close()
				return nil, err
			}
		}
		if err := sed.Start(); err != nil {
			d.Close()
			return nil, err
		}
		d.SeDs = append(d.SeDs, sed)
	}
	return d, nil
}

// Client opens a session against the deployment, sharing its event sink.
func (d *Deployment) Client() (*Client, error) {
	return InitializeConfig(ClientConfig{Naming: d.NamingAddr, MAName: d.MA.Name(), Events: d.events})
}

// Close tears the platform down: SeDs, agents, then the naming service.
func (d *Deployment) Close() {
	for _, s := range d.SeDs {
		s.Close()
	}
	for _, a := range d.LAs {
		a.Close()
	}
	if d.MA != nil {
		d.MA.Close()
	}
	for _, s := range d.servers {
		s.Close()
	}
}
