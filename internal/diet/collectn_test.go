package diet

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/rpc"
)

func TestCollectNTruncatesPerAgent(t *testing.T) {
	// MA over 2 LAs × 3 SeDs: with Limit 1 each LA returns its single best
	// SeD, so the MA sees exactly 2 estimates from 6 servers — bounded
	// reply traffic, DIET's distributed-scheduling scalability claim.
	rpc.ResetLocal()
	var seds []SeDSpec
	for la := 1; la <= 2; la++ {
		for i := 1; i <= 3; i++ {
			seds = append(seds, SeDSpec{
				Name:   fmt.Sprintf("SeD-cn-%d-%d", la, i),
				Parent: fmt.Sprintf("LA%d", la),
				// Power rises with i so the "best" per LA is predictable.
				PowerGFlops: float64(10 * i),
				Services:    []ServiceSpec{sleepService("double", 0, nil)},
			})
		}
	}
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-cn", LAs: []string{"LA1", "LA2"}, SeDs: seds, Local: true,
	})

	all := d.MA.Collect("double")
	if len(all) != 6 {
		t.Fatalf("unbounded collect returned %d, want 6", len(all))
	}
	top := d.MA.CollectN("double", 1)
	// The MA's own truncation keeps 1 overall; each LA already truncated
	// to 1 before replying.
	if len(top) != 1 {
		t.Fatalf("CollectN(1) returned %d, want 1", len(top))
	}
	// With equal (zero) queues the local rank prefers highest power: the
	// survivor must be one of the i=3 SeDs.
	if top[0].PowerGFlops != 30 {
		t.Errorf("survivor %s has power %g, want the 30-GFlops SeD",
			top[0].ServerID, top[0].PowerGFlops)
	}
}

func TestCollectNPrefersIdleServers(t *testing.T) {
	rpc.ResetLocal()
	d := newTestDeployment(t, DeploymentSpec{
		MAName: "MA-cn2", LAs: []string{"LA1"},
		SeDs: []SeDSpec{
			{Name: "SeD-cn2-a", Parent: "LA1", PowerGFlops: 100, Services: []ServiceSpec{sleepService("double", 0, nil)}},
			{Name: "SeD-cn2-b", Parent: "LA1", PowerGFlops: 10, Services: []ServiceSpec{sleepService("double", 0, nil)}},
		},
		Local: true,
	})
	// Jam the powerful SeD's queue with a slow call so it reports load.
	block := make(chan struct{})
	descSlow, _ := NewProfileDesc("block", 0, 0, 0)
	d.SeDs[0].AddService(descSlow, func(*Profile) error { <-block; return nil })
	pBlock, _ := NewProfile("block", 0, 0, 0)
	go d.SeDs[0].Solve(pBlock)
	defer close(block)

	// Wait until the SeD reports the running solve (a spin without sleeping
	// can win the race against the dispatcher goroutine under load).
	deadline := time.Now().Add(5 * time.Second)
	for d.SeDs[0].Estimate("double").Est.Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("blocking solve never started")
		}
		time.Sleep(time.Millisecond)
	}
	top := d.MA.CollectN("double", 1)
	if len(top) != 1 || top[0].ServerID != "SeD-cn2-b" {
		t.Errorf("busy server survived truncation: %+v", top)
	}
}
