package diet

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/logsvc"
	"repro/internal/naming"
	"repro/internal/rpc"
	"repro/internal/scheduler"
)

// This file federates Master Agents. Real DIET avoids the single-MA
// bottleneck by running a multi-MA mesh in which each MA owns its own child
// hierarchy and forwards service requests it cannot satisfy to its peers.
// Here each MA keeps its normal child registry and answers Submit locally
// whenever the local collect finds candidates; only a local miss crosses the
// federation, bounded by a hop count and loop-guarded by request ID, and the
// peer estimates merge into the same policy ranking a local answer uses.
//
// The peer wire contract is versioned (PeerSchemaVersion): both RPCs carry an
// explicit SchemaVersion so MAs built at different times can refuse — rather
// than misparse — each other. Bump the constant on any incompatible change.

// PeerSchemaVersion is the wire schema of the PeerRegister and PeerForward
// RPCs. A receiving MA rejects any other version.
const PeerSchemaVersion = 1

// DefaultForwardHops bounds how many federation hops a request may take when
// AgentConfig.ForwardHops is unset: the origin's forward plus one relay.
const DefaultForwardHops = 2

// forwardSeenCap bounds the loop-guard memory; beyond it, entries older than
// forwardSeenTTL are pruned (and the oldest beyond that, so the map cannot
// grow without bound under a flood of distinct request IDs).
const (
	forwardSeenCap = 4096
	forwardSeenTTL = time.Minute
)

// PeerInfo identifies one federated Master Agent.
type PeerInfo struct {
	Name string
	Addr string
}

// PeerRegisterRequest announces one MA to a peer MA. Re-announcements ride
// the heartbeat sweeps, so receivers must treat them as idempotent.
type PeerRegisterRequest struct {
	SchemaVersion int
	Peer          PeerInfo
}

// PeerRegisterReply acknowledges a peer announcement.
type PeerRegisterReply struct {
	SchemaVersion int
	OK            bool
	// Name lets the announcer confirm who answered (useful when an address
	// was recycled between resolve and register).
	Name string
}

// PeerForwardRequest asks a peer MA for candidate servers its hierarchy can
// offer for a service the origin could not satisfy locally.
type PeerForwardRequest struct {
	SchemaVersion int
	Service       string
	WorkGFlops    float64
	Seq           int
	// RequestID is the client-minted trace identity; the federation's loop
	// guard keys on it, and every peer's collect span joins the trace.
	RequestID string
	// Hops is the remaining forward budget including this delivery: a peer
	// receiving Hops=1 answers from its own subtree only; Hops>1 lets it
	// relay a local miss onward.
	Hops int
	// Visited lists the MAs this request has already consulted (the origin
	// included); relays skip them even when the request ID is absent.
	Visited []string
}

// PeerForwardReply carries a peer subtree's estimates back to the origin.
type PeerForwardReply struct {
	SchemaVersion int
	Estimates     []scheduler.Estimate
	// Dropped reports that the loop guard rejected the request (ID already
	// seen, or this MA was already in Visited) — the origin counts it but
	// treats the reply as empty.
	Dropped bool
}

// Peers returns a snapshot of the MAs this agent currently federates with,
// sorted by name.
func (a *Agent) Peers() []PeerInfo {
	a.peerMu.RLock()
	defer a.peerMu.RUnlock()
	out := make([]PeerInfo, 0, len(a.peers))
	for _, p := range a.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ForwardStats reports the federation counters: requests this MA forwarded
// to peers, requests it answered for peers, and forwards its loop guard
// dropped.
func (a *Agent) ForwardStats() (forwarded, served, dropped int) {
	a.statMu.Lock()
	defer a.statMu.Unlock()
	return a.forwarded, a.peerServed, a.forwardDropped
}

// peerRegister records a peer MA. Peer announcements re-arrive on every
// heartbeat sweep, so — like childRegister for SeD parent probes — only an
// actual change (a new peer, a moved address) publishes an event; the
// steady-state stream stays off the span bus.
func (a *Agent) peerRegister(p PeerInfo) error {
	if a.cfg.Kind != MasterAgent {
		return fmt.Errorf("diet: agent %s is not a master agent; only MAs federate", a.cfg.Name)
	}
	if p.Name == "" || p.Addr == "" {
		return fmt.Errorf("diet: invalid peer registration %+v", p)
	}
	if p.Name == a.cfg.Name {
		return fmt.Errorf("diet: MA %s cannot peer with itself", a.cfg.Name)
	}
	a.peerMu.Lock()
	prev, held := a.peers[p.Name]
	a.peers[p.Name] = p
	a.peerMissed[p.Name] = 0
	a.peerMu.Unlock()
	if !held || prev.Addr != p.Addr {
		publish(a.cfg.Events, a.cfg.Kind.String()+":"+a.cfg.Name, "peer_register", p.Name+" @ "+p.Addr)
	}
	return nil
}

// SweepPeers performs one federation heartbeat round: resolve configured
// peers that are not yet connected, and re-announce this MA to every known
// peer. The announcement doubles as the liveness probe — a peer that fails
// MaxMissed consecutive announcements is dropped (and re-resolved on a later
// sweep if it is a configured peer). Exported so tests can drive the
// federation deterministically without a ticker.
func (a *Agent) SweepPeers() {
	if a.cfg.Kind != MasterAgent || len(a.cfg.Peers) == 0 && len(a.Peers()) == 0 {
		return
	}
	nc := &naming.Client{Addr: a.cfg.Naming}
	a.peerMu.RLock()
	known := make(map[string]PeerInfo, len(a.peers))
	for n, p := range a.peers {
		known[n] = p
	}
	a.peerMu.RUnlock()
	// Configured peers that are missing (never resolved, or dropped after
	// misses) are re-resolved through naming.
	for _, name := range a.cfg.Peers {
		if name == a.cfg.Name {
			continue
		}
		if _, ok := known[name]; ok {
			continue
		}
		entry, err := nc.Resolve(name)
		if err != nil {
			continue // not up yet; the next sweep retries
		}
		known[name] = PeerInfo{Name: name, Addr: entry.Addr}
		_ = a.peerRegister(known[name])
	}
	self := PeerInfo{Name: a.cfg.Name, Addr: a.addr}
	for name, p := range known {
		var reply PeerRegisterReply
		err := rpc.Call(p.Addr, "agent:"+name, "PeerRegister",
			PeerRegisterRequest{SchemaVersion: PeerSchemaVersion, Peer: self}, &reply)
		a.peerMu.Lock()
		if err != nil || !reply.OK {
			a.peerMissed[name]++
			if a.peerMissed[name] >= a.cfg.MaxMissed {
				delete(a.peers, name)
				delete(a.peerMissed, name)
				a.peerMu.Unlock()
				publish(a.cfg.Events, a.cfg.Kind.String()+":"+a.cfg.Name, "peer_evict", name)
				continue
			}
		} else {
			a.peerMissed[name] = 0
		}
		a.peerMu.Unlock()
	}
}

// forwardSeen records a request ID in the loop guard and reports whether it
// was already there. An empty ID is never recorded (the Visited list is the
// only guard for untraced requests).
func (a *Agent) forwardSeen(requestID string) bool {
	if requestID == "" {
		return false
	}
	now := time.Now()
	a.seenMu.Lock()
	defer a.seenMu.Unlock()
	if _, dup := a.seenForward[requestID]; dup {
		return true
	}
	if len(a.seenForward) >= forwardSeenCap {
		oldestID, oldestAt := "", now
		for id, at := range a.seenForward {
			if now.Sub(at) > forwardSeenTTL {
				delete(a.seenForward, id)
				continue
			}
			if at.Before(oldestAt) {
				oldestID, oldestAt = id, at
			}
		}
		if len(a.seenForward) >= forwardSeenCap && oldestID != "" {
			delete(a.seenForward, oldestID)
		}
	}
	a.seenForward[requestID] = now
	return false
}

// forwardToPeers fans a locally unsatisfiable request out to every peer not
// yet visited, in parallel, bounded by CollectTimeout per peer, and merges
// their estimates. hops is the remaining budget handed to each peer
// (including its own delivery).
func (a *Agent) forwardToPeers(req PeerForwardRequest) []scheduler.Estimate {
	visited := make(map[string]bool, len(req.Visited)+1)
	for _, v := range req.Visited {
		visited[v] = true
	}
	visited[a.cfg.Name] = true
	var targets []PeerInfo
	for _, p := range a.Peers() {
		if !visited[p.Name] {
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 || req.Hops <= 0 {
		return nil
	}
	out := PeerForwardRequest{
		SchemaVersion: PeerSchemaVersion,
		Service:       req.Service,
		WorkGFlops:    req.WorkGFlops,
		Seq:           req.Seq,
		RequestID:     req.RequestID,
		Hops:          req.Hops,
		Visited:       append(append([]string(nil), req.Visited...), a.cfg.Name),
	}
	results := make(chan []scheduler.Estimate, len(targets))
	for _, p := range targets {
		go func(p PeerInfo) {
			done := make(chan []scheduler.Estimate, 1)
			go func() {
				var reply PeerForwardReply
				err := rpc.Call(p.Addr, "agent:"+p.Name, "PeerForward", out, &reply)
				if err != nil || reply.Dropped {
					done <- nil
					return
				}
				done <- reply.Estimates
			}()
			select {
			case ests := <-done:
				results <- ests
			case <-time.After(a.cfg.CollectTimeout):
				results <- nil
			}
		}(p)
	}
	var merged []scheduler.Estimate
	for range targets {
		merged = append(merged, <-results...)
	}
	a.statMu.Lock()
	a.forwarded++
	a.statMu.Unlock()
	if a.metrics != nil {
		a.metrics.peerForwards.With(a.cfg.Name).Inc()
	}
	publish(a.cfg.Events, a.cfg.Kind.String()+":"+a.cfg.Name, "peer_forward",
		fmt.Sprintf("%s -> %d peer(s), %d estimates", req.Service, len(targets), len(merged)))
	sortEstimates(merged)
	return merged
}

// peerForward answers a forwarded request from a peer MA: loop-guard, collect
// from the local subtree, and — when the local subtree has nothing and hops
// remain — relay to further peers. The origin's MA merges whatever comes back
// into its normal ranking.
func (a *Agent) peerForward(req PeerForwardRequest) (PeerForwardReply, error) {
	reply := PeerForwardReply{SchemaVersion: PeerSchemaVersion}
	if req.SchemaVersion != PeerSchemaVersion {
		return reply, fmt.Errorf("diet: MA %s speaks peer schema v%d, got v%d",
			a.cfg.Name, PeerSchemaVersion, req.SchemaVersion)
	}
	if a.cfg.Kind != MasterAgent {
		return reply, fmt.Errorf("diet: agent %s is not a master agent", a.cfg.Name)
	}
	dropped := a.forwardSeen(req.RequestID)
	if !dropped {
		for _, v := range req.Visited {
			if v == a.cfg.Name {
				dropped = true
				break
			}
		}
	}
	if dropped || req.Hops <= 0 {
		a.statMu.Lock()
		a.forwardDropped++
		a.statMu.Unlock()
		if a.metrics != nil {
			a.metrics.peerForwardDrops.With(a.cfg.Name).Inc()
		}
		reply.Dropped = true
		return reply, nil
	}
	t0 := time.Now()
	ests := a.collect(CollectRequest{Service: req.Service, RequestID: req.RequestID})
	if len(ests) == 0 && req.Hops > 1 {
		relay := req
		relay.Hops = req.Hops - 1
		ests = a.forwardToPeers(relay)
	}
	a.statMu.Lock()
	a.peerServed++
	a.statMu.Unlock()
	if req.RequestID != "" {
		publishSpan(a.cfg.Events, span(req.RequestID, a.cfg.Kind.String()+":"+a.cfg.Name,
			logsvc.KindCollect, req.Service,
			fmt.Sprintf("peer forward: %d estimates", len(ests)), t0, time.Now()))
	}
	reply.Estimates = ests
	return reply, nil
}

// forwardHops resolves the configured forward budget.
func (a *Agent) forwardHops() int {
	if a.cfg.ForwardHops > 0 {
		return a.cfg.ForwardHops
	}
	return DefaultForwardHops
}

// peerSeed connects the configured peers once at Start (best-effort; the
// heartbeat sweeps keep retrying the ones that are not up yet).
func (a *Agent) peerSeed() {
	if a.cfg.Kind != MasterAgent || len(a.cfg.Peers) == 0 {
		return
	}
	a.SweepPeers()
}

// peerState is the Agent-embedded federation state; split into its own struct
// so NewAgent initialises it in one place.
type peerState struct {
	peerMu     sync.RWMutex
	peers      map[string]PeerInfo
	peerMissed map[string]int

	seenMu      sync.Mutex
	seenForward map[string]time.Time
}

func newPeerState() peerState {
	return peerState{
		peers:       make(map[string]PeerInfo),
		peerMissed:  make(map[string]int),
		seenForward: make(map[string]time.Time),
	}
}
