package diet

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/cori"
	"repro/internal/dataman"
	"repro/internal/logsvc"
	"repro/internal/metrics"
	"repro/internal/naming"
	"repro/internal/rpc"
	"repro/internal/scheduler"
)

// SolveFunc computes one service request: it reads the profile's IN/INOUT
// arguments and fills its INOUT/OUT arguments, like the C API's
// solve_serviceName functions.
type SolveFunc func(p *Profile) error

// Executor runs a solve body. The default executes inline; the batch package
// provides an Executor that routes solves through an OAR-style reservation,
// the "batch submission manager" of the paper's conclusion.
type Executor interface {
	Execute(run func() error) error
}

// SizedExecutor is an Executor that sizes its reservation from the solve's
// service name and work estimate — batch.ForecastExecutor implements it to
// derive each walltime from the SeD's CoRI forecast instead of a fixed
// grant. SeDs probe for it and fall back to plain Execute.
type SizedExecutor interface {
	Executor
	ExecuteSized(service string, workGFlops float64, run func() error) error
}

// WaitReportingExecutor is a SizedExecutor that also measures how long the
// solve's reservation waited in the batch queue (submit→start, summed over
// attempts). SeDs probe for it so the wait they feed the CoRI wait-on-depth
// regression is the queue wait the batch scheduler actually imposed —
// shortened when the reservation was backfilled, and excluding the compute
// a killed attempt threw away — rather than the raw wall-clock gap between
// admission and compute start. batch.ForecastExecutor implements it.
type WaitReportingExecutor interface {
	SizedExecutor
	ExecuteSizedWait(service string, workGFlops float64, run func() error) (time.Duration, error)
}

// TracingExecutor is a WaitReportingExecutor that also reports the lifecycle
// of every reservation attempt — submit stamp, measured batch-queue wait,
// whether the attempt was killed at its walltime, and when it ended. SeDs
// probe for it so each attempt becomes a reserve span (and each kill an
// overrun_kill span) in the request's trace. The callback type is a plain
// func so batch can implement the contract without importing diet.
type TracingExecutor interface {
	WaitReportingExecutor
	ExecuteSizedTrace(service string, workGFlops float64, run func() error,
		trace func(attempt int, wait time.Duration, killed bool, start, end time.Time)) (time.Duration, error)
}

// MonitorBinder is an Executor that wants the SeD's CoRI monitor — NewSeD
// probes for it and hands its monitor over, so walltime sizing reads the
// same solve history the SeD's estimates are built from.
type MonitorBinder interface {
	BindMonitor(*cori.Monitor)
}

// directExecutor runs the solve in the calling goroutine.
type directExecutor struct{}

func (directExecutor) Execute(run func() error) error { return run() }

// SeDConfig configures a Server Daemon.
type SeDConfig struct {
	Name        string  // unique component name
	Parent      string  // name of the parent agent (LA or MA)
	Naming      string  // address of the naming service
	Capacity    int     // concurrent solves; the paper's SeDs run 1
	PowerGFlops float64 // advertised processing power of the backing machines
	MemMB       float64 // advertised memory
	Cluster     string  // cluster label, e.g. "Toulouse" — the model-gossip resource class
	WorkDir     string  // scratch directory for services that write files
	Local       bool    // serve in-process instead of TCP
	ListenAddr  string  // TCP listen address when Local is false ("" = :0)
	Executor    Executor
	// ParentProbe enables the orphan watchdog: every interval the SeD pings
	// its current parent agent and, after ParentMaxMissed consecutive silent
	// probes, walks FallbackParents (typically a sibling LA and the MA) and
	// re-registers under the first that answers — LA failover without an
	// operator. The original parent stays a candidate: if it restarts before
	// any fallback adopts the SeD, re-registration heals the old edge. Zero
	// disables the watchdog.
	ParentProbe time.Duration
	// ParentMaxMissed is the orphan threshold (default 3, like the agents'
	// heartbeat eviction).
	ParentMaxMissed int
	// FallbackParents are tried in order when the parent is declared dead.
	FallbackParents []string
	Events          EventSink // optional LogService-style monitoring sink
	// Metrics is an optional Prometheus registry; when set the SeD feeds
	// solve counters, queue-wait and solve-duration histograms, forecast
	// misprediction and batch kill/requeue counters into it.
	Metrics *metrics.Registry
	// CoRI tunes the resource-information monitor every SeD hosts (window
	// size, EWMA weight, staleness half-life, injectable clock). The zero
	// value selects the cori package defaults.
	CoRI cori.Config
	// Data connects the SeD to the platform data manager (DTM/DAGDA): the
	// SeD hosts a node store under its own name, estimates price the
	// predicted input-transfer time of DataID-referenced inputs, solves
	// fetch missing persistent inputs through the catalog (minting local
	// replicas for reuse), and produced persistent data is published. Nil
	// keeps the SeD data-blind, exactly as before the data plane existed.
	Data dataman.Access
	// Transfers is the per-node-pair bandwidth forecaster transfer pricing
	// reads; typically one monitor shared platform-wide, trained by the
	// catalog's transfer observer. Nil means every transfer is priced at
	// DataFallbackMBps.
	Transfers *cori.TransferMonitor
	// DataFallbackMBps prices transfers over links with no trusted model
	// yet (default 100 MB/s, a conservative WAN figure).
	DataFallbackMBps float64
}

// defaultDataFallbackMBps is the assumed bandwidth for unmodelled links.
const defaultDataFallbackMBps = 100

// solveTiming is returned to the client alongside the solved profile so the
// experiment harness can split queue wait from compute time.
type solveTiming struct {
	QueueWaitMS float64
	ComputeMS   float64
}

// SolveReply is the wire reply of a Solve call.
type SolveReply struct {
	Profile *Profile
	Timing  solveTiming
}

// EstimateReply answers a monitoring query from the parent agent.
type EstimateReply struct {
	OK  bool // whether this SeD can solve the service
	Est scheduler.Estimate
}

// serviceEntry is one row of the SeD's service table.
type serviceEntry struct {
	desc  *ProfileDesc
	solve SolveFunc
}

// SeD is a Server Daemon: it encapsulates a computational server, keeps the
// list of problems it can solve, answers monitoring queries from its parent
// agent, and executes solve requests through a FIFO queue of configurable
// width (paper: "each server cannot compute more than one simulation at the
// same time").
type SeD struct {
	cfg    SeDConfig
	server *rpc.Server
	addr   string

	mu        sync.Mutex
	services  map[string]serviceEntry
	dataStore map[string][]byte // persistent data, by DataID

	monitor *cori.Monitor
	// dataNode is this SeD's dataman store, created when cfg.Data is set and
	// served on the SeD's own rpc server so catalog replicas can land here.
	dataNode *dataman.Store

	jobs     chan *sedJob
	slots    chan struct{}
	stop     chan struct{}
	stopOnce sync.Once
	// drainMu arbitrates slot ownership between the dispatcher (reader) and
	// a draining Reparent (writer): while a reparent drains, freed slots go
	// to the drain exclusively instead of being raffled against new grants,
	// so a busy SeD's drain completes in one solve duration, not unbounded.
	drainMu sync.RWMutex

	metrics *sedMetrics // nil unless cfg.Metrics is set

	statMu     sync.Mutex
	queued     int
	running    int
	pending    map[string]int // accepted-but-unfinished solves, by service
	lastSolveS float64
	solved     int
	busySecs   float64
	// records is the bounded per-solve forecast ring (predicted vs measured
	// durations); recNext is the rotation cursor once the ring is full.
	records []SolveRecord
	recNext int
	// power and parent start from the config and are mutated by the live
	// migration protocol (Reparent, SetPower).
	power  float64
	parent string
	// parentFailovers counts watchdog re-adoptions (see SeDConfig.ParentProbe).
	parentFailovers int
}

type sedJob struct {
	grant chan struct{}
}

// NewSeD creates a SeD; call AddService then Start.
func NewSeD(cfg SeDConfig) (*SeD, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("diet: SeD needs a name")
	}
	if cfg.Capacity < 1 {
		cfg.Capacity = 1
	}
	if cfg.PowerGFlops <= 0 {
		cfg.PowerGFlops = 1
	}
	if cfg.Executor == nil {
		cfg.Executor = directExecutor{}
	}
	s := &SeD{
		cfg:       cfg,
		monitor:   cori.NewMonitor(cfg.CoRI),
		server:    rpc.NewServer(),
		services:  make(map[string]serviceEntry),
		dataStore: make(map[string][]byte),
		jobs:      make(chan *sedJob, 16384),
		slots:     make(chan struct{}, cfg.Capacity),
		stop:      make(chan struct{}),
		pending:   make(map[string]int),
		power:     cfg.PowerGFlops,
		parent:    cfg.Parent,
		metrics:   newSedMetrics(cfg.Metrics, cfg.Name),
	}
	for i := 0; i < cfg.Capacity; i++ {
		s.slots <- struct{}{}
	}
	if b, ok := cfg.Executor.(MonitorBinder); ok {
		b.BindMonitor(s.monitor)
	}
	return s, nil
}

// AddService registers a service in the table (diet_service_table_add).
func (s *SeD) AddService(desc *ProfileDesc, solve SolveFunc) error {
	if desc == nil || solve == nil {
		return fmt.Errorf("diet: AddService needs a descriptor and a solve function")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.services[desc.Service]; dup {
		return fmt.Errorf("diet: service %q already registered", desc.Service)
	}
	s.services[desc.Service] = serviceEntry{desc: desc, solve: solve}
	return nil
}

// ServiceNames lists the registered services (diet_print_service_table).
func (s *SeD) ServiceNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.services))
	for name := range s.services {
		out = append(out, name)
	}
	return out
}

// Name returns the SeD's component name.
func (s *SeD) Name() string { return s.cfg.Name }

// Addr returns the address the SeD serves on (valid after Start).
func (s *SeD) Addr() string { return s.addr }

// objectName is the rpc object identity of this SeD.
func (s *SeD) objectName() string { return "sed:" + s.cfg.Name }

// Start exposes the SeD (in-process or TCP), registers it with the naming
// service and with its parent agent, and starts the FIFO dispatcher. It is
// the moral equivalent of diet_SeD(), except it returns instead of blocking.
func (s *SeD) Start() error {
	s.server.Register(s.objectName(), s.handler())
	if s.cfg.Data != nil {
		// The SeD is a data node: its store answers on the same server, and
		// the catalog learns the node so fetched replicas can land here.
		s.dataNode = dataman.NewStore(s.cfg.Name)
		s.server.Register(dataman.ObjectName, s.dataNode.Handler())
	}
	var err error
	if s.cfg.Local {
		s.addr, err = rpc.ServeLocal("sed-"+s.cfg.Name, s.server)
	} else {
		s.addr, err = s.server.Start(s.cfg.ListenAddr)
	}
	if err != nil {
		return fmt.Errorf("diet: starting SeD %s: %w", s.cfg.Name, err)
	}
	if s.cfg.Data != nil {
		if err := s.cfg.Data.AddNode(s.cfg.Name, s.addr); err != nil {
			return fmt.Errorf("diet: SeD %s joining the data catalog: %w", s.cfg.Name, err)
		}
	}
	go s.dispatch()

	nc := &naming.Client{Addr: s.cfg.Naming}
	if err := nc.Register(naming.Entry{Name: s.cfg.Name, Addr: s.addr, Kind: "SeD"}); err != nil {
		return fmt.Errorf("diet: registering SeD %s: %w", s.cfg.Name, err)
	}
	if s.cfg.Parent != "" {
		parent, err := nc.Resolve(s.cfg.Parent)
		if err != nil {
			return fmt.Errorf("diet: SeD %s resolving parent %q: %w", s.cfg.Name, s.cfg.Parent, err)
		}
		var reply ChildRegisterReply
		err = rpc.Call(parent.Addr, "agent:"+s.cfg.Parent, "ChildRegister",
			ChildInfo{Name: s.cfg.Name, Addr: s.addr, Kind: "SeD", Cluster: s.cfg.Cluster}, &reply)
		if err != nil {
			return fmt.Errorf("diet: SeD %s attaching to parent %q: %w", s.cfg.Name, s.cfg.Parent, err)
		}
		if len(reply.Prior) > 0 {
			// The parent knows this cluster: warm-start the monitor from the
			// gossiped cluster models so the first estimates already carry a
			// confident forecast.
			s.WarmStart(reply.Prior)
			publish(s.cfg.Events, "SeD:"+s.cfg.Name, "warm_start", fmt.Sprintf("%d cluster models", len(reply.Prior)))
		}
	}
	if s.cfg.ParentProbe > 0 && s.cfg.Parent != "" {
		go s.parentWatch()
	}
	publish(s.cfg.Events, "SeD:"+s.cfg.Name, "start", s.addr)
	return nil
}

// parentWatch is the orphan watchdog: probe the current parent every
// ParentProbe, and after ParentMaxMissed silent probes re-home under the
// first answering fallback parent (or the original, if it restarted first).
func (s *SeD) parentWatch() {
	maxMissed := s.cfg.ParentMaxMissed
	if maxMissed <= 0 {
		maxMissed = 3
	}
	ticker := time.NewTicker(s.cfg.ParentProbe)
	defer ticker.Stop()
	missed := 0
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		}
		s.statMu.Lock()
		parent := s.parent
		s.statMu.Unlock()
		if parent == "" {
			continue
		}
		if s.registerWith(parent) == nil {
			missed = 0
			continue
		}
		missed++
		if missed < maxMissed {
			continue
		}
		publish(s.cfg.Events, "SeD:"+s.cfg.Name, "orphaned",
			fmt.Sprintf("parent %s silent for %d probes", parent, missed))
		// Walk the fallbacks (skipping the dead parent); the first answering
		// agent adopts this SeD. On failure keep probing: the original parent
		// may yet restart, and registerWith above heals that edge.
		for _, cand := range s.cfg.FallbackParents {
			if cand == parent || cand == "" {
				continue
			}
			if s.registerWith(cand) != nil {
				continue
			}
			s.statMu.Lock()
			s.parent = cand
			s.parentFailovers++
			s.statMu.Unlock()
			if s.metrics != nil {
				s.metrics.parentFailovers.With(s.cfg.Name).Inc()
			}
			publish(s.cfg.Events, "SeD:"+s.cfg.Name, "adopted", "by "+cand)
			missed = 0
			break
		}
	}
}

// registerWith resolves an agent and (re-)registers this SeD as its child.
// The probe doubles as the registration: an answering agent that lost this
// child (an LA restart, an eviction during a partition) re-adopts it in the
// same call, and the ChildRegister reply is cheap for an agent that already
// holds it.
func (s *SeD) registerWith(agent string) error {
	nc := &naming.Client{Addr: s.cfg.Naming}
	entry, err := nc.Resolve(agent)
	if err != nil {
		return err
	}
	var reply ChildRegisterReply
	return rpc.Call(entry.Addr, "agent:"+agent, "ChildRegister",
		ChildInfo{Name: s.cfg.Name, Addr: s.addr, Kind: "SeD", Cluster: s.cfg.Cluster}, &reply)
}

// ParentFailoverCount reports how many times the orphan watchdog re-homed
// this SeD under a fallback parent.
func (s *SeD) ParentFailoverCount() int {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	return s.parentFailovers
}

// Close stops serving. Queued requests fail with closed-connection errors.
// Close is idempotent.
func (s *SeD) Close() error {
	s.stopOnce.Do(func() { close(s.stop) })
	return s.server.Close()
}

// dispatch grants queued jobs strictly in arrival order, one token per
// concurrent slot — a true FIFO even under heavy concurrency. Slot
// acquisition happens under drainMu's read side, so a draining Reparent
// (write side) pauses new grants instead of racing them for freed slots.
func (s *SeD) dispatch() {
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.jobs:
			s.drainMu.RLock()
			select {
			case <-s.stop:
				s.drainMu.RUnlock()
				return
			case <-s.slots:
				close(j.grant)
			}
			s.drainMu.RUnlock()
		}
	}
}

// Monitor exposes the SeD's CoRI resource monitor (for tests and tools).
func (s *SeD) Monitor() *cori.Monitor { return s.monitor }

// Models snapshots the monitor's per-service models — the SeD's contribution
// to the agent hierarchy's gossip registry. Models still carrying gossiped-
// prior influence (Warm) are withheld: a SeD only contributes what it has
// measured itself, so borrowed cluster models cannot echo back into the
// registry as independent confirmation.
func (s *SeD) Models() []cori.Model {
	services := s.monitor.Services()
	out := make([]cori.Model, 0, len(services))
	for _, svc := range services {
		if model, ok := s.monitor.Model(svc); ok && !model.Warm {
			out = append(out, model)
		}
	}
	return out
}

// WarmStart seeds the SeD's monitor with gossiped cluster models (see
// cori.Monitor.WarmStart); estimates for the seeded services carry a
// forecast with nonzero confidence before the SeD has solved anything.
func (s *SeD) WarmStart(models []cori.Model) {
	for _, m := range models {
		s.monitor.WarmStart(m)
	}
}

// Estimate builds this SeD's estimation vector for a service, including the
// CoRI forecast extension when the monitor has history for it.
func (s *SeD) Estimate(service string) EstimateReply {
	s.mu.Lock()
	_, ok := s.services[service]
	s.mu.Unlock()
	s.statMu.Lock()
	running, queued, lastSolve := s.running, s.queued, s.lastSolveS
	power := s.power
	pending := make(map[string]int, len(s.pending))
	for svc, n := range s.pending {
		pending[svc] = n
	}
	s.statMu.Unlock()
	est := scheduler.Estimate{
		ServerID:         s.cfg.Name,
		Service:          service,
		Capacity:         s.cfg.Capacity,
		Running:          running,
		QueueLen:         queued,
		PowerGFlops:      power,
		FreeMemMB:        s.cfg.MemMB,
		LastSolveSeconds: lastSolve,
	}
	if model, okM := s.monitor.Model(service); okM {
		// Drain from the queue-wait regression when the model has one (wait
		// measured directly on this server), else priced per pending service
		// — five queued hour-long solves of another service must not be
		// forecast at this service's EWMA.
		model.ApplyToEstimate(&est, s.monitor.DrainEstimate(model, pending, queued+running, s.cfg.Capacity))
	}
	return EstimateReply{OK: ok, Est: est}
}

// EstimateQuery is the data-aware estimate request: the service plus the
// persistent inputs the call references by DataID.
type EstimateQuery struct {
	Service string
	DataIDs []string
}

// EstimateFor builds the estimation vector for a request that carries input
// data references: Estimate plus the predicted seconds to move the non-local
// inputs here from their nearest replicas. A data-local SeD reports 0 and
// wins the ties it used to lose.
func (s *SeD) EstimateFor(q EstimateQuery) EstimateReply {
	reply := s.Estimate(q.Service)
	reply.Est.InputTransferSeconds = s.inputTransferSeconds(q.DataIDs)
	return reply
}

// inputTransferSeconds prices pulling the given inputs to this SeD: for each
// dataset not already local, the cheapest predicted transfer from any
// replica. Unknown datasets (unpublished, or with no recorded size) price as
// free — the catalog cannot say what moving them costs.
func (s *SeD) inputTransferSeconds(dataIDs []string) float64 {
	if s.cfg.Data == nil || len(dataIDs) == 0 {
		return 0
	}
	var total float64
	for _, id := range dataIDs {
		if id == "" {
			continue
		}
		s.mu.Lock()
		_, inLocal := s.dataStore[id]
		s.mu.Unlock()
		if inLocal || s.cfg.Data.HasReplica(id, s.cfg.Name) {
			continue
		}
		nodes, _, err := s.cfg.Data.Locate(id)
		if err != nil || len(nodes) == 0 {
			continue
		}
		sizeMB, ok := s.cfg.Data.SizeMB(id)
		if !ok || sizeMB <= 0 {
			continue
		}
		best := math.MaxFloat64
		for _, n := range nodes {
			if sec := s.predictTransfer(n, sizeMB); sec < best {
				best = sec
			}
		}
		if best < math.MaxFloat64 {
			total += best
		}
	}
	return total
}

// predictTransfer prices moving sizeMB from a node to this SeD: the trusted
// per-pair bandwidth model when one exists, else the fallback bandwidth.
func (s *SeD) predictTransfer(from string, sizeMB float64) float64 {
	if s.cfg.Transfers != nil {
		if sec, conf, ok := s.cfg.Transfers.Predict(from, s.cfg.Name, sizeMB); ok &&
			conf >= scheduler.DefaultMinConfidence {
			return sec
		}
	}
	mbps := s.cfg.DataFallbackMBps
	if mbps <= 0 {
		mbps = defaultDataFallbackMBps
	}
	return sizeMB / mbps
}

// Solve queues the profile, waits for a slot, runs the solve function and
// returns the profile with its OUT arguments filled.
func (s *SeD) Solve(p *Profile) (*SolveReply, error) {
	s.mu.Lock()
	entry, ok := s.services[p.Service]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("diet: SeD %s cannot solve %q", s.cfg.Name, p.Service)
	}
	if err := entry.desc.Matches(p); err != nil {
		return nil, err
	}
	s.resolvePersistent(p)

	enq := time.Now()
	// Snapshot the duration forecast the SeD holds at admission — the view
	// the scheduler's estimate reflected when it routed the request here.
	// The completed solve is judged against this prediction (SolveRecord),
	// which is how MispredictPct accounting works on the live stack.
	predS, predByModel := s.predictSolve(p.Service, p.WorkGFlops)
	job := &sedJob{grant: make(chan struct{})}
	s.statMu.Lock()
	depthAtAdmission := s.queued + s.running
	s.queued++
	s.pending[p.Service]++
	s.statMu.Unlock()
	if s.metrics != nil {
		s.metrics.started.With(s.cfg.Name, p.Service).Inc()
		s.metrics.queueDepth.With(s.cfg.Name).Set(float64(depthAtAdmission + 1))
	}
	select {
	case s.jobs <- job:
	default:
		s.statMu.Lock()
		s.queued--
		s.pending[p.Service]--
		s.statMu.Unlock()
		return nil, fmt.Errorf("diet: SeD %s queue full", s.cfg.Name)
	}
	select {
	case <-job.grant:
	case <-s.stop:
		// The SeD died under this queued solve. Failing the call (instead of
		// waiting for a grant that will never come) is what lets the client
		// kill-and-requeue the work on the next ranked server.
		select {
		case <-job.grant:
			// Granted in the same instant the SeD stopped: run this last solve.
		default:
			s.statMu.Lock()
			s.queued--
			s.pending[p.Service]--
			s.statMu.Unlock()
			return nil, fmt.Errorf("diet: SeD %s stopped before solving %q", s.cfg.Name, p.Service)
		}
	}
	granted := time.Now()

	s.statMu.Lock()
	s.queued--
	s.running++
	s.statMu.Unlock()
	if p.RequestID != "" {
		// The FIFO wait: admission to slot grant. Batch reservation wait, if
		// any, appears as reserve spans inside the executor below.
		publishSpan(s.cfg.Events, span(p.RequestID, "SeD:"+s.cfg.Name, logsvc.KindQueue,
			p.Service, fmt.Sprintf("depth %d at admission", depthAtAdmission), enq, granted))
	}
	publish(s.cfg.Events, "SeD:"+s.cfg.Name, "solve_begin", p.Service)

	// Compute time is clocked inside the body, not around the Executor call:
	// a batch executor adds grant delay, batch-queue wait and possibly killed
	// attempts around it, none of which predicts service time (the cori
	// Sample contract is "compute time, excluding queue wait"). The executor
	// serialises body invocations, so on requeue the last run's stamps win.
	var solveStart, solveEnd time.Time
	body := func() error {
		solveStart = time.Now()
		err := entry.solve(p)
		solveEnd = time.Now()
		return err
	}
	var err error
	var batchWait time.Duration
	var batchWaitMeasured bool
	switch ex := s.cfg.Executor.(type) {
	case TracingExecutor:
		// Like WaitReportingExecutor below, plus a per-attempt callback that
		// turns each reservation into a reserve span and each walltime kill
		// into an overrun_kill span carrying the wasted compute.
		batchWait, err = ex.ExecuteSizedTrace(p.Service, p.WorkGFlops, body, s.attemptTrace(p))
		batchWaitMeasured = true
	case WaitReportingExecutor:
		// Forecast-sized reservations with measured queue wait: the batch
		// scheduler reports how long the reservation really waited (a
		// backfilled job reports its shortened wait), so the wait sample
		// below reflects backfill behaviour instead of wall-clock gaps.
		batchWait, err = ex.ExecuteSizedWait(p.Service, p.WorkGFlops, body)
		batchWaitMeasured = true
	case SizedExecutor:
		// Forecast-sized reservations: the executor sees which service and
		// how much work, so it can derive the walltime from the CoRI model.
		err = ex.ExecuteSized(p.Service, p.WorkGFlops, body)
	default:
		err = s.cfg.Executor.Execute(body)
	}

	end := time.Now()
	var compute time.Duration
	if err == nil && !solveStart.IsZero() {
		compute = solveEnd.Sub(solveStart)
	}
	s.statMu.Lock()
	s.running--
	s.pending[p.Service]--
	if s.pending[p.Service] <= 0 {
		delete(s.pending, p.Service)
	}
	if compute > 0 {
		s.lastSolveS = compute.Seconds()
		s.busySecs += compute.Seconds()
	}
	s.solved++
	depthNow := s.queued + s.running
	s.statMu.Unlock()
	s.slots <- struct{}{} // release the slot
	publish(s.cfg.Events, "SeD:"+s.cfg.Name, "solve_end", p.Service)
	if s.metrics != nil {
		s.metrics.queueDepth.With(s.cfg.Name).Set(float64(depthNow))
	}

	if err != nil {
		if s.metrics != nil {
			s.metrics.failed.With(s.cfg.Name, p.Service).Inc()
		}
		return nil, fmt.Errorf("diet: solve %s on %s: %w", p.Service, s.cfg.Name, err)
	}
	if p.RequestID != "" && !solveStart.IsZero() {
		publishSpan(s.cfg.Events, span(p.RequestID, "SeD:"+s.cfg.Name, logsvc.KindSolve,
			p.Service, "", solveStart, solveEnd))
	}
	// Feed the CoRI monitor so the next Estimate carries a fitted forecast.
	// Failed solves are excluded: their durations do not predict service time.
	// The observed wait (everything between admission and compute start,
	// clamped positive so it reads as known) trains the wait-on-depth
	// regression behind Model.WaitAtDepth. When the executor measures its
	// reservation wait, the batch component is that measurement — the SeD
	// FIFO wait plus the queue wait the batch scheduler actually imposed,
	// which credits backfill and excludes killed attempts' wasted compute —
	// so Estimate's drain forecast learns real backfill behaviour.
	wait := solveStart.Sub(enq)
	if batchWaitMeasured {
		wait = granted.Sub(enq) + batchWait
	}
	if wait <= 0 {
		wait = time.Microsecond
	}
	if s.metrics != nil {
		s.metrics.completed.With(s.cfg.Name, p.Service).Inc()
		s.metrics.queueWait.With(s.cfg.Name, p.Service).Observe(wait.Seconds())
		s.metrics.solveSeconds.With(s.cfg.Name, p.Service).Observe(compute.Seconds())
	}
	s.monitor.Observe(cori.Sample{
		Service:    p.Service,
		WorkGFlops: p.WorkGFlops,
		Duration:   compute,
		QueueDepth: depthAtAdmission,
		Wait:       wait,
	})
	s.recordSolve(SolveRecord{
		RequestID: p.RequestID, Service: p.Service, WorkGFlops: p.WorkGFlops,
		PredictedS: predS, PredictedByModel: predByModel,
		MeasuredS: compute.Seconds(), WaitS: wait.Seconds(), When: end,
	})
	s.storePersistent(p)
	return &SolveReply{
		Profile: p,
		Timing: solveTiming{
			// Queue wait is everything that was not computing: the SeD FIFO
			// plus any batch reservation wait inside the executor.
			QueueWaitMS: float64((end.Sub(enq) - compute).Microseconds()) / 1000,
			ComputeMS:   float64(compute.Microseconds()) / 1000,
		},
	}, nil
}

// predictSolve mirrors the simulator's prediction (sedState.predict): the
// CoRI model forecast when the model is trusted, else the advertised-power
// estimate work/power. The bool reports which path produced the prediction.
func (s *SeD) predictSolve(service string, work float64) (float64, bool) {
	if model, ok := s.monitor.Model(service); ok && model.Confidence >= scheduler.DefaultMinConfidence {
		if p := model.SolveSeconds(work); p > 0 {
			return p, true
		}
	}
	s.statMu.Lock()
	power := s.power
	s.statMu.Unlock()
	if power <= 0 {
		power = 1
	}
	return work / power, false
}

// attemptTrace builds the per-attempt callback a TracingExecutor invokes:
// every reservation attempt becomes a reserve span (submit to start, the
// batch-queue wait) and every walltime kill an overrun_kill span covering
// the compute the kill threw away. Returns nil when nothing would consume
// the trace, so the executor skips the bookkeeping entirely.
func (s *SeD) attemptTrace(p *Profile) func(attempt int, wait time.Duration, killed bool, start, end time.Time) {
	if s.cfg.Events == nil && s.metrics == nil {
		return nil
	}
	return func(attempt int, wait time.Duration, killed bool, start, end time.Time) {
		if s.metrics != nil {
			s.metrics.batchReserveWait.With(s.cfg.Name).Observe(wait.Seconds())
			if killed {
				s.metrics.batchKills.With(s.cfg.Name).Inc()
			}
			if attempt > 1 {
				s.metrics.batchRequeues.With(s.cfg.Name).Inc()
			}
		}
		if p.RequestID == "" {
			return
		}
		started := start.Add(wait)
		if attempt > 1 {
			// A resubmission after a walltime kill: the batch requeue path,
			// marked with the shared recovery span kind.
			publishSpan(s.cfg.Events, span(p.RequestID, "SeD:"+s.cfg.Name, logsvc.KindRequeue,
				p.Service, fmt.Sprintf("attempt %d resubmitted", attempt), start, start))
		}
		publishSpan(s.cfg.Events, span(p.RequestID, "SeD:"+s.cfg.Name, logsvc.KindReserve,
			p.Service, fmt.Sprintf("attempt %d", attempt), start, started))
		if killed {
			publishSpan(s.cfg.Events, span(p.RequestID, "SeD:"+s.cfg.Name, logsvc.KindKill,
				p.Service, fmt.Sprintf("attempt %d killed at walltime", attempt), started, end))
		}
	}
}

// recordSolve appends one completed solve to the bounded forecast ring and
// refreshes the per-service accuracy gauge.
func (s *SeD) recordSolve(rec SolveRecord) {
	s.statMu.Lock()
	if len(s.records) < sedSolveRecordCap {
		s.records = append(s.records, rec)
	} else {
		s.records[s.recNext] = rec
		s.recNext = (s.recNext + 1) % sedSolveRecordCap
	}
	s.statMu.Unlock()
	if s.metrics != nil {
		s.metrics.mispredictPct.With(s.cfg.Name, rec.Service).Observe(rec.MispredictPct())
		if acc, ok := s.ForecastAccuracy()[rec.Service]; ok {
			s.metrics.forecastAbsPct.With(s.cfg.Name, rec.Service).Set(acc.MeanAbsPct)
		}
	}
}

// SolveRecords returns the recent per-solve forecast records, oldest first.
func (s *SeD) SolveRecords() []SolveRecord {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	out := make([]SolveRecord, 0, len(s.records))
	out = append(out, s.records[s.recNext:]...)
	out = append(out, s.records[:s.recNext]...)
	return out
}

// ForecastAccuracy summarises live forecast quality per service over the
// solve-record window — what `dietsed -cori-stats` prints and the
// diet_sed_forecast_mean_abs_pct gauge exposes.
func (s *SeD) ForecastAccuracy() map[string]ForecastAccuracy {
	out := make(map[string]ForecastAccuracy)
	byModel := make(map[string]int)
	for _, r := range s.SolveRecords() {
		acc := out[r.Service]
		acc.Service = r.Service
		acc.Solves++
		acc.MeanAbsPct += r.MispredictPct()
		if r.PredictedByModel {
			byModel[r.Service]++
		}
		out[r.Service] = acc
	}
	for svc, acc := range out {
		acc.MeanAbsPct /= float64(acc.Solves)
		acc.ModelShare = float64(byModel[svc]) / float64(acc.Solves)
		out[svc] = acc
	}
	return out
}

// resolvePersistent fills IN/INOUT arguments that reference server-resident
// data by DataID: from this SeD's own store first, then — when the SeD is
// data-wired — fetched through the platform catalog. The catalog fetch
// measures the transfer (training the bandwidth models) and mints a local
// replica for persistent-data reuse, so a parameter sweep pays the movement
// once. Fetches run outside the service-table lock: they are rpc calls.
func (s *SeD) resolvePersistent(p *Profile) {
	var fetchIdx []int
	s.mu.Lock()
	for i := range p.Args {
		a := &p.Args[i]
		if p.Direction(i) == Out || a.Persist == Volatile {
			continue
		}
		if a.DataID != "" && len(a.Data) == 0 {
			if stored, ok := s.dataStore[a.DataID]; ok {
				a.Data = stored
			} else if s.cfg.Data != nil {
				fetchIdx = append(fetchIdx, i)
			}
		}
	}
	s.mu.Unlock()
	for _, i := range fetchIdx {
		id := p.Args[i].DataID
		it, err := s.cfg.Data.FetchTo(id, s.cfg.Name)
		if err != nil {
			// Leave the argument unresolved; the solve function decides
			// whether it can proceed without the bytes.
			publish(s.cfg.Events, "SeD:"+s.cfg.Name, "data_fetch_failed", id+": "+err.Error())
			continue
		}
		s.mu.Lock()
		p.Args[i].Data = it.Data
		s.dataStore[id] = it.Data
		s.mu.Unlock()
	}
}

// storePersistent keeps persistent/sticky INOUT and OUT data on the server,
// addressable by DataID in later calls. When the SeD is data-wired the datum
// also lands in its node store and is published to the catalog, so later
// requests anywhere on the platform can locate, price and fetch it.
func (s *SeD) storePersistent(p *Profile) {
	type produced struct {
		id   string
		mode dataman.Mode
		data []byte
	}
	var out []produced
	s.mu.Lock()
	for i := range p.Args {
		a := &p.Args[i]
		if a.Persist == Volatile || p.Direction(i) == In {
			continue
		}
		if a.DataID == "" {
			a.DataID = fmt.Sprintf("%s/%s/%d/%d", s.cfg.Name, p.Service, s.solved, i)
		}
		s.dataStore[a.DataID] = a.Data
		if s.cfg.Data != nil {
			mode := dataman.Persistent
			if a.Persist == Sticky {
				mode = dataman.Sticky
			}
			out = append(out, produced{id: a.DataID, mode: mode, data: a.Data})
		}
	}
	s.mu.Unlock()
	for _, d := range out {
		// Best-effort: a catalog refusal (e.g. the ID was repinned sticky
		// elsewhere) leaves the datum server-resident like before.
		if err := s.dataNode.Put(d.id, d.mode, d.data); err != nil {
			continue
		}
		if err := s.cfg.Data.Publish(d.id, s.cfg.Name, d.mode); err != nil {
			s.dataNode.Delete(d.id)
			publish(s.cfg.Events, "SeD:"+s.cfg.Name, "data_publish_failed", d.id+": "+err.Error())
		}
	}
}

// StoredData returns a copy of a persistent datum (for tests and tools).
func (s *SeD) StoredData(id string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.dataStore[id]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(d))
	copy(out, d)
	return out, true
}

// Stats is a snapshot of SeD activity.
type Stats struct {
	Name      string
	Cluster   string
	Parent    string  // current parent agent (changes under live migration)
	Power     float64 // currently advertised power
	Queued    int
	Running   int
	Solved    int
	BusySecs  float64
	LastSolve float64
}

// Stats returns an activity snapshot.
func (s *SeD) Stats() Stats {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	return Stats{
		Name:      s.cfg.Name,
		Cluster:   s.cfg.Cluster,
		Parent:    s.parent,
		Power:     s.power,
		Queued:    s.queued,
		Running:   s.running,
		Solved:    s.solved,
		BusySecs:  s.busySecs,
		LastSolve: s.lastSolveS,
	}
}

// handler exposes the SeD over rpc.
func (s *SeD) handler() rpc.Handler {
	return rpc.HandlerFunc(map[string]func([]byte) ([]byte, error){
		"Estimate": func(body []byte) ([]byte, error) {
			var service string
			if err := rpc.Decode(body, &service); err != nil {
				return nil, err
			}
			return rpc.Encode(s.Estimate(service))
		},
		"EstimateFor": func(body []byte) ([]byte, error) {
			var q EstimateQuery
			if err := rpc.Decode(body, &q); err != nil {
				return nil, err
			}
			return rpc.Encode(s.EstimateFor(q))
		},
		"Solve": func(body []byte) ([]byte, error) {
			var p Profile
			if err := rpc.Decode(body, &p); err != nil {
				return nil, err
			}
			reply, err := s.Solve(&p)
			if err != nil {
				return nil, err
			}
			return rpc.Encode(reply)
		},
		"Ping": func([]byte) ([]byte, error) {
			return rpc.Encode("pong")
		},
		"Reparent": func(body []byte) ([]byte, error) {
			var req ReparentRequest
			if err := rpc.Decode(body, &req); err != nil {
				return nil, err
			}
			reply, err := s.Reparent(req)
			if err != nil {
				return nil, err
			}
			return rpc.Encode(reply)
		},
		"SetPower": func(body []byte) ([]byte, error) {
			var p float64
			if err := rpc.Decode(body, &p); err != nil {
				return nil, err
			}
			return rpc.Encode(s.SetPower(p))
		},
		"Stats": func([]byte) ([]byte, error) {
			return rpc.Encode(s.Stats())
		},
		"Services": func([]byte) ([]byte, error) {
			return rpc.Encode(s.ServiceNames())
		},
		"Models": func([]byte) ([]byte, error) {
			return rpc.Encode(ModelsReply{Cluster: s.cfg.Cluster, At: time.Now(), Models: s.Models()})
		},
	})
}
