package diet

import (
	"testing"

	"repro/internal/rpc"
)

// The unified submission API: Call is the single code path, Submit and
// CallAsync are thin shims over it, and CallOptions swap behavior without
// forking the retry/trace logic.

func newAPIDeployment(t *testing.T, ma string) *Deployment {
	t.Helper()
	rpc.ResetLocal()
	return newTestDeployment(t, DeploymentSpec{
		MAName: ma,
		LAs:    []string{"LA1"},
		SeDs: []SeDSpec{
			{
				Name: "SeD-a", Parent: "LA1", Capacity: 1, PowerGFlops: 4,
				Services: []ServiceSpec{sleepService("double", 0, nil)},
			},
			{
				Name: "SeD-b", Parent: "LA1", Capacity: 1, PowerGFlops: 2,
				Services: []ServiceSpec{sleepService("double", 0, nil)},
			},
		},
		Local: true,
	})
}

func TestSubmitShimRanksServers(t *testing.T) {
	d := newAPIDeployment(t, "MA-api-submit")
	client, err := d.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Finalize()

	reply, finding, err := client.Submit("double", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Servers) != 2 {
		t.Fatalf("Submit found %d servers, want 2", len(reply.Servers))
	}
	if finding <= 0 {
		t.Error("Submit reported a non-positive finding time")
	}
	// The shim must not solve anything — only find.
	if n := len(client.History()); n != 0 {
		t.Errorf("Submit recorded %d calls in history, want 0", n)
	}
}

func TestCallWithServersRotation(t *testing.T) {
	d := newAPIDeployment(t, "MA-api-rotate")
	client, err := d.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Finalize()

	reply, _, err := client.Submit("double", 1)
	if err != nil {
		t.Fatal(err)
	}
	// rotate=1 starts the failover walk at the runner-up, the batching
	// mechanism the gateway uses to spread a joined finding across the
	// ranked list.
	p, _ := NewProfile("double", 0, 0, 1)
	p.SetScalarInt(0, 7, Volatile)
	info, err := client.Call(p, WithServers(reply, 1))
	if err != nil {
		t.Fatal(err)
	}
	if want := reply.Servers[1].Name; info.Server != want {
		t.Errorf("rotated call went to %q, want runner-up %q", info.Server, want)
	}
	if info.Finding != 0 {
		t.Errorf("call with pre-found servers still paid %v finding time", info.Finding)
	}
	if v, _ := p.ScalarInt(1); v != 14 {
		t.Errorf("result = %d, want 14", v)
	}
}

func TestCallWithAsyncAndShim(t *testing.T) {
	d := newAPIDeployment(t, "MA-api-async")
	client, err := d.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Finalize()

	// The option form: Call returns immediately, the outcome lands on the
	// handle.
	p1, _ := NewProfile("double", 0, 0, 1)
	p1.SetScalarInt(0, 3, Volatile)
	var h *AsyncCall
	if info, err := client.Call(p1, WithAsync(&h)); info != nil || err != nil {
		t.Fatalf("async Call returned (%v, %v), want (nil, nil)", info, err)
	}
	if h == nil {
		t.Fatal("WithAsync left the handle nil")
	}
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	if v, _ := p1.ScalarInt(1); v != 6 {
		t.Errorf("async result = %d, want 6", v)
	}

	// The deprecated shim routes through the same path.
	p2, _ := NewProfile("double", 0, 0, 1)
	p2.SetScalarInt(0, 4, Volatile)
	h2 := client.CallAsync(p2)
	if _, err := h2.Wait(); err != nil {
		t.Fatal(err)
	}
	if v, _ := p2.ScalarInt(1); v != 8 {
		t.Errorf("shim async result = %d, want 8", v)
	}
	if n := len(client.History()); n != 2 {
		t.Errorf("history has %d calls, want 2", n)
	}
}
