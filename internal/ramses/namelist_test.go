package ramses

import (
	"strings"
	"testing"
)

const sampleNML = `
! RAMSES run parameters
&RUN_PARAMS
  ncpu = 4
  nsteps = 10
/
&AMR_PARAMS
  levelmin = 5
  levelmax = 12
  m_refine = 8
/
&INIT_PARAMS
  aexp_ini = 0.05
  seed = 99
  cx = 12
  cy = 20
  cz = 7
  nlevels = 2
/
&OUTPUT_PARAMS
  aout = 0.3, 0.6, 1.0
/
&COSMO_PARAMS
  omega_m = 0.24
  omega_l = 0.76
  omega_b = 0.042
  h0 = 73.0
  sigma8 = 0.74
  n_s = 0.95
  boxlen = 100.0
/
`

func TestParseNamelist(t *testing.T) {
	nl, err := ParseNamelist(strings.NewReader(sampleNML))
	if err != nil {
		t.Fatal(err)
	}
	if got := nl.Groups(); len(got) != 5 {
		t.Fatalf("%d groups: %v", len(got), got)
	}
	if v, err := nl.Int("run_params", "ncpu"); err != nil || v != 4 {
		t.Errorf("ncpu = %d, %v", v, err)
	}
	// Case insensitivity.
	if v, err := nl.Int("RUN_PARAMS", "NCPU"); err != nil || v != 4 {
		t.Errorf("case-insensitive lookup failed: %d, %v", v, err)
	}
	if v, err := nl.Float("cosmo_params", "omega_m"); err != nil || v != 0.24 {
		t.Errorf("omega_m = %g, %v", v, err)
	}
	aout, err := nl.Floats("output_params", "aout")
	if err != nil || len(aout) != 3 || aout[1] != 0.6 {
		t.Errorf("aout = %v, %v", aout, err)
	}
	if !nl.Has("init_params", "seed") || nl.Has("init_params", "nope") {
		t.Error("Has misbehaves")
	}
}

func TestParseNamelistFortranisms(t *testing.T) {
	src := `
&TEST
  d_exp = 1.5d-3
  quoted = 'hello world'
  flag = .true.
  off = .false.
/
`
	nl, err := ParseNamelist(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := nl.Float("test", "d_exp"); err != nil || v != 1.5e-3 {
		t.Errorf("d exponent: %g, %v", v, err)
	}
	if s, err := nl.String("test", "quoted"); err != nil || s != "hello world" {
		t.Errorf("quoted: %q, %v", s, err)
	}
	if b, err := nl.Bool("test", "flag"); err != nil || !b {
		t.Errorf("flag: %v, %v", b, err)
	}
	if b, err := nl.Bool("test", "off"); err != nil || b {
		t.Errorf("off: %v, %v", b, err)
	}
}

func TestParseNamelistErrors(t *testing.T) {
	bad := []string{
		"&A\nkey=1\n",           // unclosed group
		"key = 1\n",             // assignment outside group
		"/\n",                   // close without open
		"&A\nnoequals\n/\n",     // missing '='
		"&A\nkey=1\n/\n&A\n/\n", // duplicate group
		"&A\n&B\n/\n/\n",        // nested group
		"&\nkey=1\n/\n",         // empty group name
		"&A\n = 2\n/\n",         // empty key
	}
	for i, src := range bad {
		if _, err := ParseNamelist(strings.NewReader(src)); err == nil {
			t.Errorf("case %d should fail: %q", i, src)
		}
	}
}

func TestMissingLookups(t *testing.T) {
	nl, _ := ParseNamelist(strings.NewReader("&A\nx = 1\n/\n"))
	if _, err := nl.Int("nope", "x"); err == nil {
		t.Error("missing group should error")
	}
	if _, err := nl.Int("a", "nope"); err == nil {
		t.Error("missing key should error")
	}
	if _, err := nl.Float("a", "x"); err != nil {
		t.Error("int should parse as float")
	}
	nl2, _ := ParseNamelist(strings.NewReader("&A\nx = 1, 2\n/\n"))
	if _, err := nl2.Int("a", "x"); err == nil {
		t.Error("list value should not read as scalar")
	}
}

func TestConfigFromNamelist(t *testing.T) {
	nl, err := ParseNamelist(strings.NewReader(sampleNML))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ConfigFromNamelist(nl)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NPart != 32 { // levelmin 5
		t.Errorf("NPart = %d, want 32", cfg.NPart)
	}
	if cfg.NCPU != 4 || cfg.StepsPerOutput != 10 {
		t.Errorf("run params: %+v", cfg)
	}
	if cfg.Astart != 0.05 || cfg.Seed != 99 {
		t.Errorf("init params: %+v", cfg)
	}
	if cfg.ZoomLevels != 2 || cfg.ZoomCenter != [3]float64{12, 20, 7} {
		t.Errorf("zoom params: %+v", cfg)
	}
	if len(cfg.Aout) != 3 || cfg.Aout[2] != 1.0 {
		t.Errorf("aout: %v", cfg.Aout)
	}
	if cfg.Cosmo.H != 0.73 || cfg.Cosmo.OmegaM != 0.24 {
		t.Errorf("cosmo: %+v", cfg.Cosmo)
	}
	if cfg.Box != 100 {
		t.Errorf("box: %g", cfg.Box)
	}
	if cfg.AMR.MaxLevel != 12 || cfg.AMR.MRefine != 8 {
		t.Errorf("amr: %+v", cfg.AMR)
	}
}

func TestNamelistConfigRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NPart = 16
	cfg.Seed = 1234
	cfg.ZoomCenter = [3]float64{0.25, 0.5, 0.75}
	cfg.ZoomLevels = 3
	cfg.Aout = []float64{0.4, 0.8}
	text := NamelistFromConfig(cfg)
	nl, err := ParseNamelist(strings.NewReader(text))
	if err != nil {
		t.Fatalf("generated namelist does not parse: %v\n%s", err, text)
	}
	got, err := ConfigFromNamelist(nl)
	if err != nil {
		t.Fatal(err)
	}
	if got.NPart != cfg.NPart || got.Seed != cfg.Seed ||
		got.ZoomLevels != cfg.ZoomLevels || got.ZoomCenter != cfg.ZoomCenter {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, cfg)
	}
	if len(got.Aout) != 2 || got.Aout[0] != 0.4 {
		t.Errorf("aout round trip: %v", got.Aout)
	}
	if got.Cosmo.Sigma8 != cfg.Cosmo.Sigma8 {
		t.Errorf("cosmo round trip: %+v", got.Cosmo)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := map[string]func(*Config){
		"no cosmo":        func(c *Config) { c.Cosmo = nil },
		"bad box":         func(c *Config) { c.Box = -1 },
		"npart not pow2":  func(c *Config) { c.NPart = 12 },
		"bad astart":      func(c *Config) { c.Astart = 0 },
		"no outputs":      func(c *Config) { c.Aout = nil },
		"aout descending": func(c *Config) { c.Aout = []float64{0.5, 0.3} },
		"aout before a0":  func(c *Config) { c.Aout = []float64{0.01} },
		"aout beyond 1":   func(c *Config) { c.Aout = []float64{1.5} },
		"zero steps":      func(c *Config) { c.StepsPerOutput = 0 },
		"negative zoom":   func(c *Config) { c.ZoomLevels = -1 },
	}
	for name, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}
