package ramses

import (
	"math"
	"strings"
	"testing"
)

// tinyConfig is a fast configuration for integration tests.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.NPart = 8
	cfg.Astart = 0.1
	cfg.Aout = []float64{0.5, 1.0}
	cfg.StepsPerOutput = 4
	cfg.AMR.MaxLevel = 6
	return cfg
}

func TestRunProducesOutputs(t *testing.T) {
	res, err := Run(tinyConfig(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 2 {
		t.Fatalf("%d outputs, want 2", len(res.Outputs))
	}
	for i, out := range res.Outputs {
		if out.Snap == nil {
			t.Fatalf("output %d has no snapshot", i)
		}
		if err := out.Snap.Parts.Validate(); err != nil {
			t.Errorf("output %d particles invalid: %v", i, err)
		}
		if out.Tree.Leaves == 0 {
			t.Errorf("output %d has no AMR stats", i)
		}
		if out.Path != "" {
			t.Errorf("in-memory run should not write files, got %q", out.Path)
		}
	}
	if res.Outputs[0].A != 0.5 || res.Outputs[1].A != 1.0 {
		t.Errorf("output epochs: %v, %v", res.Outputs[0].A, res.Outputs[1].A)
	}
	if res.FinalSnapshot() != res.Outputs[1].Snap {
		t.Error("FinalSnapshot should be the last output")
	}
}

func TestRunWritesFiles(t *testing.T) {
	dir := t.TempDir()
	res, err := Run(tinyConfig(), dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Outputs {
		snap, err := LoadSnapshot(dir, i+1)
		if err != nil {
			t.Fatalf("loading output %d: %v", i+1, err)
		}
		if len(snap.Parts) != len(res.Outputs[i].Snap.Parts) {
			t.Errorf("output %d: file has %d particles, memory %d",
				i+1, len(snap.Parts), len(res.Outputs[i].Snap.Parts))
		}
	}
}

func TestRunMassConservation(t *testing.T) {
	cfg := tinyConfig()
	res, err := Run(cfg, "")
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Cosmo.OmegaM * 2.77536627e11 * cfg.Box * cfg.Box * cfg.Box
	for i, out := range res.Outputs {
		got := out.Snap.Parts.TotalMass()
		if math.Abs(got-want)/want > 1e-9 {
			t.Errorf("output %d: mass %g, want %g", i, got, want)
		}
	}
}

func TestRunStructureGrows(t *testing.T) {
	// Gravitational collapse must deepen the AMR tree over time.
	cfg := tinyConfig()
	cfg.NPart = 16
	cfg.StepsPerOutput = 6
	res, err := Run(cfg, "")
	if err != nil {
		t.Fatal(err)
	}
	first := res.Outputs[0].Tree
	last := res.Outputs[len(res.Outputs)-1].Tree
	if last.MaxDepth < first.MaxDepth {
		t.Errorf("AMR depth shrank: %d -> %d", first.MaxDepth, last.MaxDepth)
	}
}

func TestRunParallelConfig(t *testing.T) {
	cfg := tinyConfig()
	cfg.NCPU = 3
	res, err := Run(cfg, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 2 {
		t.Fatalf("%d outputs", len(res.Outputs))
	}
	if err := res.FinalSnapshot().Parts.Validate(); err != nil {
		t.Errorf("parallel run output invalid: %v", err)
	}
}

func TestRunZoomConfig(t *testing.T) {
	cfg := tinyConfig()
	cfg.ZoomLevels = 2
	cfg.ZoomCenter = [3]float64{0.5, 0.5, 0.5}
	res, err := Run(cfg, "")
	if err != nil {
		t.Fatal(err)
	}
	n := cfg.NPart
	want := 2*n*n*n - (n/2)*(n/2)*(n/2)
	if got := len(res.FinalSnapshot().Parts); got != want {
		t.Errorf("zoom run has %d particles, want %d", got, want)
	}
}

func TestRunInvalidConfig(t *testing.T) {
	cfg := tinyConfig()
	cfg.NPart = 12
	if _, err := Run(cfg, ""); err == nil {
		t.Error("expected validation error")
	}
}

func TestProjectedDensityAndRender(t *testing.T) {
	cfg := tinyConfig()
	res, err := Run(cfg, "")
	if err != nil {
		t.Fatal(err)
	}
	snap := res.FinalSnapshot()
	m, err := ProjectedDensity(snap, cfg.Cosmo, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 256 {
		t.Fatalf("map size %d", len(m))
	}
	pic := RenderASCII(m, 16)
	lines := strings.Split(strings.TrimRight(pic, "\n"), "\n")
	if len(lines) != 16 || len(lines[0]) != 16 {
		t.Errorf("ASCII render %dx%d, want 16x16", len(lines), len(lines[0]))
	}
}
