package ramses

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/galics"
	"repro/internal/halo"
	"repro/internal/mergertree"
)

// This file implements the two services of the paper: ramsesZoom1 (the
// low-resolution survey that yields the halo catalog) and ramsesZoom2 (the
// per-halo zoom re-simulation followed by the GALICS post-processing chain,
// packed into a tarball for the client).

// Phase1Result bundles the survey run with its halo catalog.
type Phase1Result struct {
	Run     *Result
	Catalog *halo.Catalog
}

// Phase1 runs the first, low-resolution simulation and extracts the dark-
// matter halo catalog from its final snapshot — the list of high-density
// peaks from which zoom targets are chosen.
func Phase1(cfg Config, dir string) (*Phase1Result, error) {
	cfg.ZoomLevels = 1 // phase 1 is always a plain single-level run
	res, err := Run(cfg, dir)
	if err != nil {
		return nil, fmt.Errorf("ramses: phase 1 run: %w", err)
	}
	final := res.FinalSnapshot()
	cat, err := halo.FindHalos(final.Parts, final.A, final.Box, cfg.FoF)
	if err != nil {
		return nil, fmt.Errorf("ramses: phase 1 halo finding: %w", err)
	}
	if dir != "" {
		if err := halo.SaveCatalog(filepath.Join(dir, "halos.dat"), cat); err != nil {
			return nil, err
		}
	}
	return &Phase1Result{Run: res, Catalog: cat}, nil
}

// Phase2Result is everything a zoom re-simulation produces: the run itself,
// the per-snapshot halo catalogs, the merger forest, the galaxy catalog and
// (when a directory was given) the results tarball the DIET service returns.
type Phase2Result struct {
	Run      *Result
	Catalogs []*halo.Catalog
	Forest   *mergertree.Forest
	Galaxies *galics.Catalog
	TarPath  string
}

// Phase2 re-simulates the region around `center` with nLevels nested boxes
// and applies the full GALICS chain: HaloMaker on each snapshot (one
// goroutine per snapshot, as the paper's workflow runs one HaloMaker per
// process), TreeMaker across snapshots, then GalaxyMaker.
func Phase2(cfg Config, center [3]float64, nLevels int, dir string) (*Phase2Result, error) {
	cfg.ZoomCenter = center
	cfg.ZoomLevels = nLevels
	res, err := Run(cfg, dir)
	if err != nil {
		return nil, fmt.Errorf("ramses: phase 2 run: %w", err)
	}

	// HaloMaker on each snapshot, in parallel.
	cats := make([]*halo.Catalog, len(res.Outputs))
	errs := make([]error, len(res.Outputs))
	var wg sync.WaitGroup
	for i := range res.Outputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			snap := res.Outputs[i].Snap
			cats[i], errs[i] = halo.FindHalos(snap.Parts, snap.A, snap.Box, cfg.FoF)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("ramses: HaloMaker on snapshot %d: %w", i+1, err)
		}
	}

	forest, err := mergertree.Build(cats, mergertree.DefaultParams())
	if err != nil {
		return nil, fmt.Errorf("ramses: TreeMaker: %w", err)
	}
	gals, err := galics.Run(forest, cfg.Cosmo, galics.DefaultParams())
	if err != nil {
		return nil, fmt.Errorf("ramses: GalaxyMaker: %w", err)
	}

	out := &Phase2Result{Run: res, Catalogs: cats, Forest: forest, Galaxies: gals}
	if dir != "" {
		tarPath := filepath.Join(dir, "results.tar.gz")
		if err := out.WriteTarball(tarPath); err != nil {
			return nil, err
		}
		out.TarPath = tarPath
	}
	return out, nil
}

// WriteTarball packs the phase-2 products the way the paper's service does
// ("the results of the simulation are packed into a tarball file"): the halo
// catalogs, a merger-tree summary and the galaxy catalog.
func (p *Phase2Result) WriteTarball(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	gz := gzip.NewWriter(f)
	tw := tar.NewWriter(gz)

	addFile := func(name string, content []byte) error {
		hdr := &tar.Header{Name: name, Mode: 0o644, Size: int64(len(content))}
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		_, err := tw.Write(content)
		return err
	}

	for i, cat := range p.Catalogs {
		var buf bytes.Buffer
		if err := halo.WriteCatalog(&buf, cat); err != nil {
			return fmt.Errorf("ramses: packing catalog %d: %w", i, err)
		}
		if err := addFile(fmt.Sprintf("halos_%03d.dat", i+1), buf.Bytes()); err != nil {
			return err
		}
	}

	var tree bytes.Buffer
	st := p.Forest.Stats()
	fmt.Fprintf(&tree, "snapshots %d\nhalos %d\nlinks %d\nmergers %d\nmax_branch %d\nfinal_halos %d\n",
		st.Snapshots, st.Halos, st.Links, st.Mergers, st.MaxBranch, st.FinalHalos)
	if err := addFile("mergertree.txt", tree.Bytes()); err != nil {
		return err
	}

	var gal bytes.Buffer
	fmt.Fprintf(&gal, "# halo_id stellar_mass cold_gas hot_gas sfr mergers bursts\n")
	for _, g := range p.Galaxies.Galaxies {
		fmt.Fprintf(&gal, "%d %.6e %.6e %.6e %.6e %d %d\n",
			g.HaloID, g.StellarMass, g.ColdGas, g.HotGas, g.SFR, g.Mergers, g.Bursts)
	}
	if err := addFile("galaxies.txt", gal.Bytes()); err != nil {
		return err
	}

	if err := tw.Close(); err != nil {
		return err
	}
	if err := gz.Close(); err != nil {
		return err
	}
	return f.Close()
}

// ReadTarballIndex lists the file names inside a phase-2 tarball; the client
// uses it to check the returned archive really contains results.
func ReadTarballIndex(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return nil, err
	}
	defer gz.Close()
	tr := tar.NewReader(gz)
	var names []string
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		names = append(names, hdr.Name)
	}
	return names, nil
}
