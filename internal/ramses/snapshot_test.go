package ramses

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/particles"
)

func randomSnapshot(n int, seed int64) *Snapshot {
	rng := rand.New(rand.NewSource(seed))
	s := &Snapshot{A: 0.5, Box: 100}
	for i := 0; i < n; i++ {
		s.Parts = append(s.Parts, particles.Particle{
			Pos:  [3]float64{rng.Float64(), rng.Float64(), rng.Float64()},
			Vel:  [3]float64{rng.NormFloat64() * 100, rng.NormFloat64() * 100, rng.NormFloat64() * 100},
			Mass: 1e10 * (1 + rng.Float64()),
			ID:   int64(i),
		})
	}
	return s
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := randomSnapshot(100, 3)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.A != s.A || got.Box != s.Box || len(got.Parts) != len(s.Parts) {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	for i := range s.Parts {
		if got.Parts[i] != s.Parts[i] {
			t.Fatalf("particle %d differs:\n got %+v\nwant %+v", i, got.Parts[i], s.Parts[i])
		}
	}
}

func TestSnapshotEmptyRoundTrip(t *testing.T) {
	s := &Snapshot{A: 1, Box: 50}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Parts) != 0 {
		t.Errorf("expected empty snapshot")
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := randomSnapshot(50, 7)
	path, err := SaveSnapshot(dir, 3, s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(path, "output_00003") {
		t.Errorf("unexpected path %q", path)
	}
	got, err := LoadSnapshot(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Parts) != 50 {
		t.Errorf("%d particles, want 50", len(got.Parts))
	}
	if _, err := LoadSnapshot(dir, 4); err == nil {
		t.Error("missing snapshot should error")
	}
}

func TestReadSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("garbage")); err == nil {
		t.Error("expected error for garbage")
	}
	// Truncated after header.
	s := randomSnapshot(10, 1)
	var buf bytes.Buffer
	WriteSnapshot(&buf, s)
	raw := buf.Bytes()
	if _, err := ReadSnapshot(bytes.NewReader(raw[:40])); err == nil {
		t.Error("expected error for truncated snapshot")
	}
}

func TestSnapshotPath(t *testing.T) {
	p := SnapshotPath("/work", 12)
	want := filepath.Join("/work", "output_00012", "part.dat")
	if p != want {
		t.Errorf("SnapshotPath = %q, want %q", p, want)
	}
}
