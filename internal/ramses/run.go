package ramses

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/amr"
	"repro/internal/cosmo"
	"repro/internal/grafic"
	"repro/internal/halo"
	"repro/internal/nbody"
	"repro/internal/particles"
)

// Config collects everything one RAMSES run needs. It is the in-memory
// equivalent of the namelist file the paper's client ships to the service.
type Config struct {
	Cosmo          *cosmo.Params
	Box            float64     // comoving box size, Mpc/h
	NPart          int         // particles per axis (the paper's "resolution")
	Ng             int         // PM mesh per axis; 0 means NPart
	Seed           int64       // white-noise seed
	Astart         float64     // starting expansion factor
	Aout           []float64   // output epochs, strictly increasing, > Astart
	StepsPerOutput int         // leapfrog steps between consecutive outputs
	NCPU           int         // MPI ranks; <=1 runs the serial solver
	ZoomCenter     [3]float64  // centre of the nested boxes, top-box units
	ZoomLevels     int         // total nested levels; <=1 is a standard run
	AMR            amr.Params  // refinement policy for per-output tree stats
	FoF            halo.Params // HaloMaker configuration for post-processing
}

// DefaultConfig returns a small but representative configuration.
func DefaultConfig() Config {
	return Config{
		Cosmo:          cosmo.WMAP3(),
		Box:            100, // the paper's 100 Mpc/h survey box
		NPart:          32,
		Seed:           42,
		Astart:         0.05,
		Aout:           []float64{0.3, 0.6, 1.0},
		StepsPerOutput: 8,
		NCPU:           1,
		ZoomLevels:     1,
		AMR:            amr.DefaultParams(),
		FoF:            halo.DefaultParams(),
	}
}

// Validate checks the configuration for consistency.
func (c *Config) Validate() error {
	if c.Cosmo == nil {
		return fmt.Errorf("ramses: config needs a cosmology")
	}
	if err := c.Cosmo.Validate(); err != nil {
		return err
	}
	if c.Box <= 0 {
		return fmt.Errorf("ramses: box size must be positive, got %g", c.Box)
	}
	if c.NPart < 2 || c.NPart&(c.NPart-1) != 0 {
		return fmt.Errorf("ramses: NPart must be a power of two >= 2, got %d", c.NPart)
	}
	if c.Ng != 0 && (c.Ng < 2 || c.Ng&(c.Ng-1) != 0) {
		return fmt.Errorf("ramses: Ng must be a power of two >= 2, got %d", c.Ng)
	}
	if c.Astart <= 0 || c.Astart >= 1 {
		return fmt.Errorf("ramses: Astart must be in (0,1), got %g", c.Astart)
	}
	if len(c.Aout) == 0 {
		return fmt.Errorf("ramses: at least one output epoch required")
	}
	prev := c.Astart
	for i, a := range c.Aout {
		if a <= prev {
			return fmt.Errorf("ramses: Aout[%d]=%g must exceed %g", i, a, prev)
		}
		if a > 1 {
			return fmt.Errorf("ramses: Aout[%d]=%g beyond a=1", i, a)
		}
		prev = a
	}
	if c.StepsPerOutput < 1 {
		return fmt.Errorf("ramses: StepsPerOutput must be >= 1, got %d", c.StepsPerOutput)
	}
	if c.ZoomLevels < 0 {
		return fmt.Errorf("ramses: ZoomLevels must be >= 0, got %d", c.ZoomLevels)
	}
	if c.FoF.LinkingLength <= 0 || c.FoF.MinParticles < 1 {
		return fmt.Errorf("ramses: invalid FoF parameters %+v", c.FoF)
	}
	return nil
}

// mesh returns the PM mesh size.
func (c *Config) mesh() int {
	if c.Ng > 0 {
		return c.Ng
	}
	return c.NPart
}

// Output is one snapshot produced by a run, with its AMR statistics.
type Output struct {
	Index int
	A     float64
	Path  string // empty when the run kept snapshots in memory only
	Snap  *Snapshot
	Tree  amr.Stats
}

// Result is a completed RAMSES run.
type Result struct {
	Config  Config
	Dir     string
	Outputs []Output
}

// FinalSnapshot returns the last output's snapshot.
func (r *Result) FinalSnapshot() *Snapshot { return r.Outputs[len(r.Outputs)-1].Snap }

// Run executes a full simulation: initial conditions, time integration with
// snapshots at each requested epoch, and AMR statistics per output. When dir
// is non-empty, snapshots are also written there in the output_NNNNN layout.
func Run(cfg Config, dir string) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	gen, err := grafic.New(cfg.Cosmo, cfg.Seed)
	if err != nil {
		return nil, err
	}
	var ics *grafic.ICs
	if cfg.ZoomLevels > 1 {
		ics, err = gen.MultiLevel(cfg.NPart, cfg.Box, cfg.Astart, cfg.ZoomCenter, cfg.ZoomLevels)
	} else {
		ics, err = gen.SingleLevel(cfg.NPart, cfg.Box, cfg.Astart)
	}
	if err != nil {
		return nil, fmt.Errorf("ramses: generating initial conditions: %w", err)
	}
	return RunFromICs(cfg, ics.Parts, dir)
}

// RunFromICs runs the time integration from an existing particle set (e.g.
// initial conditions generated separately, as in the Figure 4 workflow).
func RunFromICs(cfg Config, parts particles.Set, dir string) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Config: cfg, Dir: dir}
	nb := nbody.Params{Ng: cfg.mesh(), Box: cfg.Box, Cosmo: cfg.Cosmo}

	var solver *nbody.Solver
	if cfg.NCPU <= 1 {
		var err error
		solver, err = nbody.New(nb)
		if err != nil {
			return nil, err
		}
	}

	current := parts.Clone()
	a := cfg.Astart
	for i, aout := range cfg.Aout {
		if cfg.NCPU <= 1 {
			if err := solver.Run(current, a, aout, cfg.StepsPerOutput, nil); err != nil {
				return nil, err
			}
		} else {
			evolved, err := nbody.SimulateParallel(cfg.NCPU, nb, current, a, aout, cfg.StepsPerOutput)
			if err != nil {
				return nil, err
			}
			current = evolved
		}
		a = aout
		snap := &Snapshot{A: aout, Box: cfg.Box, Parts: current.Clone()}
		snap.Parts.SortByID()
		tree, err := amr.Build(snap.Parts, cfg.AMR)
		if err != nil {
			return nil, err
		}
		out := Output{Index: i + 1, A: aout, Snap: snap, Tree: tree.Stats()}
		if dir != "" {
			path, err := SaveSnapshot(dir, i+1, snap)
			if err != nil {
				return nil, fmt.Errorf("ramses: writing output %d: %w", i+1, err)
			}
			out.Path = path
		}
		res.Outputs = append(res.Outputs, out)
	}
	return res, nil
}

// ProjectedDensity returns the surface-density map of a snapshot along the
// given axis on an n×n grid, normalised to mean 1 (Figure 2's quantity).
func ProjectedDensity(s *Snapshot, c *cosmo.Params, n, axis int) ([]float64, error) {
	solver, err := nbody.New(nbody.Params{Ng: n, Box: s.Box, Cosmo: c})
	if err != nil {
		return nil, err
	}
	return solver.ProjectDensity(s.Parts, axis)
}

// RenderASCII renders a density map as a log-scaled ASCII picture, n columns
// wide — enough to eyeball Figure 2's time sequence in a terminal.
func RenderASCII(m []float64, n int) string {
	const ramp = " .:-=+*#%@"
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range m {
		lv := math.Log10(v + 1e-3)
		if lv < lo {
			lo = lv
		}
		if lv > hi {
			hi = lv
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	var b strings.Builder
	for iy := 0; iy < n; iy++ {
		for ix := 0; ix < n; ix++ {
			lv := math.Log10(m[iy*n+ix] + 1e-3)
			k := int((lv - lo) / (hi - lo) * float64(len(ramp)-1))
			if k < 0 {
				k = 0
			}
			if k >= len(ramp) {
				k = len(ramp) - 1
			}
			b.WriteByte(ramp[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ConfigFromNamelist builds a Config from a parsed RAMSES-style namelist.
// Recognised groups/keys (all optional, falling back to DefaultConfig):
//
//	&RUN_PARAMS    ncpu, nsteps
//	&AMR_PARAMS    levelmin (NPart = 2^levelmin), levelmax, m_refine
//	&INIT_PARAMS   aexp_ini, seed, cx, cy, cz, nlevels
//	&OUTPUT_PARAMS aout (list)
//	&COSMO_PARAMS  omega_m, omega_l, omega_b, h0 (km/s/Mpc), sigma8, n_s, boxlen (Mpc/h)
func ConfigFromNamelist(nl *Namelist) (Config, error) {
	cfg := DefaultConfig()
	if nl.Has("cosmo_params", "omega_m") {
		c := *cfg.Cosmo
		read := func(key string, dst *float64) error {
			if !nl.Has("cosmo_params", key) {
				return nil
			}
			v, err := nl.Float("cosmo_params", key)
			if err != nil {
				return err
			}
			*dst = v
			return nil
		}
		if err := read("omega_m", &c.OmegaM); err != nil {
			return cfg, err
		}
		if err := read("omega_l", &c.OmegaL); err != nil {
			return cfg, err
		}
		if err := read("omega_b", &c.OmegaB); err != nil {
			return cfg, err
		}
		if err := read("sigma8", &c.Sigma8); err != nil {
			return cfg, err
		}
		if err := read("n_s", &c.Ns); err != nil {
			return cfg, err
		}
		if nl.Has("cosmo_params", "h0") {
			h0, err := nl.Float("cosmo_params", "h0")
			if err != nil {
				return cfg, err
			}
			c.H = h0 / 100
		}
		cfg.Cosmo = &c
	}
	if nl.Has("cosmo_params", "boxlen") {
		v, err := nl.Float("cosmo_params", "boxlen")
		if err != nil {
			return cfg, err
		}
		cfg.Box = v
	}
	if nl.Has("amr_params", "levelmin") {
		lv, err := nl.Int("amr_params", "levelmin")
		if err != nil {
			return cfg, err
		}
		if lv < 1 || lv > 10 {
			return cfg, fmt.Errorf("ramses: levelmin %d out of supported range [1,10]", lv)
		}
		cfg.NPart = 1 << uint(lv)
	}
	if nl.Has("amr_params", "levelmax") {
		lv, err := nl.Int("amr_params", "levelmax")
		if err != nil {
			return cfg, err
		}
		cfg.AMR.MaxLevel = lv
	}
	if nl.Has("amr_params", "m_refine") {
		m, err := nl.Int("amr_params", "m_refine")
		if err != nil {
			return cfg, err
		}
		cfg.AMR.MRefine = m
	}
	if nl.Has("run_params", "ncpu") {
		v, err := nl.Int("run_params", "ncpu")
		if err != nil {
			return cfg, err
		}
		cfg.NCPU = v
	}
	if nl.Has("run_params", "nsteps") {
		v, err := nl.Int("run_params", "nsteps")
		if err != nil {
			return cfg, err
		}
		cfg.StepsPerOutput = v
	}
	if nl.Has("init_params", "aexp_ini") {
		v, err := nl.Float("init_params", "aexp_ini")
		if err != nil {
			return cfg, err
		}
		cfg.Astart = v
	}
	if nl.Has("init_params", "seed") {
		v, err := nl.Int("init_params", "seed")
		if err != nil {
			return cfg, err
		}
		cfg.Seed = int64(v)
	}
	for d, key := range []string{"cx", "cy", "cz"} {
		if nl.Has("init_params", key) {
			v, err := nl.Float("init_params", key)
			if err != nil {
				return cfg, err
			}
			cfg.ZoomCenter[d] = v
		}
	}
	if nl.Has("init_params", "nlevels") {
		v, err := nl.Int("init_params", "nlevels")
		if err != nil {
			return cfg, err
		}
		cfg.ZoomLevels = v
	}
	if nl.Has("output_params", "aout") {
		v, err := nl.Floats("output_params", "aout")
		if err != nil {
			return cfg, err
		}
		cfg.Aout = v
	}
	if nl.Has("fof_params", "b") {
		v, err := nl.Float("fof_params", "b")
		if err != nil {
			return cfg, err
		}
		cfg.FoF.LinkingLength = v
	}
	if nl.Has("fof_params", "minpart") {
		v, err := nl.Int("fof_params", "minpart")
		if err != nil {
			return cfg, err
		}
		cfg.FoF.MinParticles = v
	}
	return cfg, cfg.Validate()
}

// NamelistFromConfig renders cfg as namelist text, the inverse of
// ConfigFromNamelist; the DIET client uses it to produce the <namelist.nml>
// file it ships as the first service argument.
func NamelistFromConfig(cfg Config) string {
	nl := NewNamelist()
	nl.Set("run_params", "ncpu", strconv.Itoa(cfg.NCPU))
	nl.Set("run_params", "nsteps", strconv.Itoa(cfg.StepsPerOutput))
	levelmin := int(math.Round(math.Log2(float64(cfg.NPart))))
	nl.Set("amr_params", "levelmin", strconv.Itoa(levelmin))
	nl.Set("amr_params", "levelmax", strconv.Itoa(cfg.AMR.MaxLevel))
	nl.Set("amr_params", "m_refine", strconv.Itoa(cfg.AMR.MRefine))
	nl.Set("init_params", "aexp_ini", fmt.Sprintf("%g", cfg.Astart))
	nl.Set("init_params", "seed", strconv.FormatInt(cfg.Seed, 10))
	nl.Set("init_params", "cx", fmt.Sprintf("%g", cfg.ZoomCenter[0]))
	nl.Set("init_params", "cy", fmt.Sprintf("%g", cfg.ZoomCenter[1]))
	nl.Set("init_params", "cz", fmt.Sprintf("%g", cfg.ZoomCenter[2]))
	nl.Set("init_params", "nlevels", strconv.Itoa(cfg.ZoomLevels))
	aout := make([]string, len(cfg.Aout))
	for i, a := range cfg.Aout {
		aout[i] = fmt.Sprintf("%g", a)
	}
	nl.Set("output_params", "aout", aout...)
	nl.Set("fof_params", "b", fmt.Sprintf("%g", cfg.FoF.LinkingLength))
	nl.Set("fof_params", "minpart", strconv.Itoa(cfg.FoF.MinParticles))
	nl.Set("cosmo_params", "omega_m", fmt.Sprintf("%g", cfg.Cosmo.OmegaM))
	nl.Set("cosmo_params", "omega_l", fmt.Sprintf("%g", cfg.Cosmo.OmegaL))
	nl.Set("cosmo_params", "omega_b", fmt.Sprintf("%g", cfg.Cosmo.OmegaB))
	nl.Set("cosmo_params", "h0", fmt.Sprintf("%g", 100*cfg.Cosmo.H))
	nl.Set("cosmo_params", "sigma8", fmt.Sprintf("%g", cfg.Cosmo.Sigma8))
	nl.Set("cosmo_params", "n_s", fmt.Sprintf("%g", cfg.Cosmo.Ns))
	nl.Set("cosmo_params", "boxlen", fmt.Sprintf("%g", cfg.Box))
	var b strings.Builder
	nl.Write(&b)
	return b.String()
}
