// Package ramses is the application layer of the reproduction: it ties the
// GRAFIC initial-conditions generator, the particle-mesh/AMR N-body solver
// and the GALICS post-processing chain into the two simulation phases the
// paper runs through DIET — the low-resolution survey (ramsesZoom1) and the
// per-halo zoom re-simulations (ramsesZoom2).
package ramses

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Namelist is a parsed Fortran namelist file: group name → key → raw values.
// RAMSES reads all its run parameters from such a file (the paper's client
// ships a <namelist.nml> as the first service argument).
type Namelist struct {
	groups map[string]map[string][]string
	order  []string
}

// ParseNamelist reads Fortran namelist syntax:
//
//	&GROUP_NAME
//	  key = value
//	  list = 1.0, 2.0, 3.0
//	  flag = .true.   ! comment
//	/
//
// Group and key lookups are case-insensitive, as in Fortran.
func ParseNamelist(r io.Reader) (*Namelist, error) {
	nl := &Namelist{groups: make(map[string]map[string][]string)}
	scanner := bufio.NewScanner(r)
	var current string
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if i := strings.IndexByte(line, '!'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "&"):
			if current != "" {
				return nil, fmt.Errorf("ramses: line %d: group %q not closed before new group", lineNo, current)
			}
			current = strings.ToLower(strings.TrimSpace(line[1:]))
			if current == "" {
				return nil, fmt.Errorf("ramses: line %d: empty group name", lineNo)
			}
			if _, dup := nl.groups[current]; dup {
				return nil, fmt.Errorf("ramses: line %d: duplicate group %q", lineNo, current)
			}
			nl.groups[current] = make(map[string][]string)
			nl.order = append(nl.order, current)
		case line == "/":
			if current == "" {
				return nil, fmt.Errorf("ramses: line %d: '/' outside a group", lineNo)
			}
			current = ""
		default:
			if current == "" {
				return nil, fmt.Errorf("ramses: line %d: assignment outside a group: %q", lineNo, line)
			}
			eq := strings.IndexByte(line, '=')
			if eq < 0 {
				return nil, fmt.Errorf("ramses: line %d: expected key=value, got %q", lineNo, line)
			}
			key := strings.ToLower(strings.TrimSpace(line[:eq]))
			if key == "" {
				return nil, fmt.Errorf("ramses: line %d: empty key", lineNo)
			}
			var values []string
			for _, v := range strings.Split(line[eq+1:], ",") {
				v = strings.TrimSpace(v)
				if v != "" {
					values = append(values, v)
				}
			}
			nl.groups[current][key] = values
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if current != "" {
		return nil, fmt.Errorf("ramses: group %q not closed at end of file", current)
	}
	return nl, nil
}

// ParseNamelistFile parses the namelist at path.
func ParseNamelistFile(path string) (*Namelist, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseNamelist(f)
}

// Groups returns the group names in file order.
func (nl *Namelist) Groups() []string { return append([]string(nil), nl.order...) }

// Has reports whether group/key exists.
func (nl *Namelist) Has(group, key string) bool {
	g, ok := nl.groups[strings.ToLower(group)]
	if !ok {
		return false
	}
	_, ok = g[strings.ToLower(key)]
	return ok
}

// raw returns the value list for group/key.
func (nl *Namelist) raw(group, key string) ([]string, error) {
	g, ok := nl.groups[strings.ToLower(group)]
	if !ok {
		return nil, fmt.Errorf("ramses: namelist group %q not found", group)
	}
	v, ok := g[strings.ToLower(key)]
	if !ok {
		return nil, fmt.Errorf("ramses: key %q not found in group %q", key, group)
	}
	return v, nil
}

// String returns a scalar string value, stripping Fortran quotes.
func (nl *Namelist) String(group, key string) (string, error) {
	v, err := nl.raw(group, key)
	if err != nil {
		return "", err
	}
	if len(v) != 1 {
		return "", fmt.Errorf("ramses: %s/%s has %d values, want 1", group, key, len(v))
	}
	return strings.Trim(v[0], "'\""), nil
}

// Int returns a scalar integer value.
func (nl *Namelist) Int(group, key string) (int, error) {
	s, err := nl.String(group, key)
	if err != nil {
		return 0, err
	}
	i, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("ramses: %s/%s: %w", group, key, err)
	}
	return i, nil
}

// Float returns a scalar float value, accepting Fortran 'd' exponents.
func (nl *Namelist) Float(group, key string) (float64, error) {
	s, err := nl.String(group, key)
	if err != nil {
		return 0, err
	}
	return parseFortranFloat(group, key, s)
}

// Floats returns a list-valued float entry.
func (nl *Namelist) Floats(group, key string) ([]float64, error) {
	v, err := nl.raw(group, key)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(v))
	for i, s := range v {
		f, err := parseFortranFloat(group, key, s)
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}

// Bool returns a scalar logical value (.true./.false., t/f, true/false).
func (nl *Namelist) Bool(group, key string) (bool, error) {
	s, err := nl.String(group, key)
	if err != nil {
		return false, err
	}
	switch strings.ToLower(strings.Trim(s, ".")) {
	case "true", "t":
		return true, nil
	case "false", "f":
		return false, nil
	}
	return false, fmt.Errorf("ramses: %s/%s: invalid logical %q", group, key, s)
}

// Set stores a value list, creating the group if needed. Used by writers.
func (nl *Namelist) Set(group, key string, values ...string) {
	group = strings.ToLower(group)
	if _, ok := nl.groups[group]; !ok {
		nl.groups[group] = make(map[string][]string)
		nl.order = append(nl.order, group)
	}
	nl.groups[group][strings.ToLower(key)] = values
}

// NewNamelist returns an empty namelist ready for Set calls.
func NewNamelist() *Namelist {
	return &Namelist{groups: make(map[string]map[string][]string)}
}

// Write emits the namelist in canonical Fortran syntax with sorted keys.
func (nl *Namelist) Write(w io.Writer) error {
	for _, g := range nl.order {
		if _, err := fmt.Fprintf(w, "&%s\n", strings.ToUpper(g)); err != nil {
			return err
		}
		keys := make([]string, 0, len(nl.groups[g]))
		for k := range nl.groups[g] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if _, err := fmt.Fprintf(w, "  %s=%s\n", k, strings.Join(nl.groups[g][k], ",")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w, "/"); err != nil {
			return err
		}
	}
	return nil
}

func parseFortranFloat(group, key, s string) (float64, error) {
	s = strings.ReplaceAll(strings.ReplaceAll(s, "d", "e"), "D", "e")
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("ramses: %s/%s: %w", group, key, err)
	}
	return f, nil
}
