package ramses

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/particles"
)

// TestSnapshotRoundTripProperty round-trips randomly generated snapshots
// through the Fortran-record codec.
func TestSnapshotRoundTripProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz % 64)
		s := &Snapshot{A: rng.Float64(), Box: 1 + 500*rng.Float64()}
		for i := 0; i < n; i++ {
			s.Parts = append(s.Parts, particles.Particle{
				Pos:  [3]float64{rng.Float64(), rng.Float64(), rng.Float64()},
				Vel:  [3]float64{rng.NormFloat64() * 500, rng.NormFloat64() * 500, rng.NormFloat64() * 500},
				Mass: rng.Float64() * 1e12,
				ID:   rng.Int63(),
			})
		}
		var buf bytes.Buffer
		if WriteSnapshot(&buf, s) != nil {
			return false
		}
		got, err := ReadSnapshot(&buf)
		if err != nil || got.A != s.A || got.Box != s.Box || len(got.Parts) != n {
			return false
		}
		for i := range s.Parts {
			if got.Parts[i] != s.Parts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestNamelistRoundTripProperty renders random configs to namelist text and
// parses them back.
func TestNamelistRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		cfg.NPart = 1 << (2 + rng.Intn(4))
		cfg.Seed = rng.Int63()
		cfg.Astart = 0.01 + 0.2*rng.Float64()
		cfg.StepsPerOutput = 1 + rng.Intn(20)
		cfg.NCPU = 1 + rng.Intn(8)
		cfg.ZoomLevels = rng.Intn(4)
		cfg.ZoomCenter = [3]float64{rng.Float64(), rng.Float64(), rng.Float64()}
		cfg.Aout = []float64{cfg.Astart + 0.3, cfg.Astart + 0.5}
		nl, err := ParseNamelist(bytes.NewBufferString(NamelistFromConfig(cfg)))
		if err != nil {
			return false
		}
		got, err := ConfigFromNamelist(nl)
		if err != nil {
			return false
		}
		return got.NPart == cfg.NPart &&
			got.Seed == cfg.Seed &&
			got.StepsPerOutput == cfg.StepsPerOutput &&
			got.NCPU == cfg.NCPU &&
			got.ZoomLevels == cfg.ZoomLevels &&
			got.FoF == cfg.FoF &&
			len(got.Aout) == len(cfg.Aout)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
