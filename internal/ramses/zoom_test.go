package ramses

import (
	"path/filepath"
	"testing"

	"repro/internal/halo"
)

// permissive applies FoF settings suited to tiny test boxes.
func permissive(cfg Config) Config {
	cfg.FoF = halo.Params{LinkingLength: 0.25, MinParticles: 8}
	return cfg
}

func TestPhase1ProducesCatalog(t *testing.T) {
	cfg := tinyConfig()
	cfg.NPart = 16
	cfg.StepsPerOutput = 6
	dir := t.TempDir()
	res, err := Phase1(permissive(cfg), dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Catalog == nil {
		t.Fatal("no catalog")
	}
	if len(res.Catalog.Halos) == 0 {
		t.Fatal("phase 1 found no halos; collapse failed or FoF broken")
	}
	// The catalog must be persisted for the zoom step.
	loaded, err := halo.LoadCatalog(filepath.Join(dir, "halos.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Halos) != len(res.Catalog.Halos) {
		t.Errorf("saved catalog has %d halos, memory %d", len(loaded.Halos), len(res.Catalog.Halos))
	}
	// Phase 1 ignores any zoom settings.
	cfg2 := cfg
	cfg2.ZoomLevels = 3
	res2, err := Phase1(permissive(cfg2), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Run.FinalSnapshot().Parts) != cfg.NPart*cfg.NPart*cfg.NPart {
		t.Error("phase 1 must run single-level")
	}
}

func TestPhase2FullChain(t *testing.T) {
	cfg := tinyConfig()
	cfg.NPart = 8
	cfg.Aout = []float64{0.4, 0.7, 1.0}
	dir := t.TempDir()

	p1, err := Phase1(permissive(cfg), "")
	if err != nil {
		t.Fatal(err)
	}
	center := [3]float64{0.5, 0.5, 0.5}
	if len(p1.Catalog.Halos) > 0 {
		center = p1.Catalog.Halos[0].Pos
	}
	res, err := Phase2(permissive(cfg), center, 2, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Catalogs) != 3 {
		t.Fatalf("%d per-snapshot catalogs, want 3", len(res.Catalogs))
	}
	if res.Forest == nil || len(res.Forest.Nodes) != 3 {
		t.Fatal("merger forest missing or wrong depth")
	}
	if res.Galaxies == nil {
		t.Fatal("no galaxy catalog")
	}
	if res.TarPath == "" {
		t.Fatal("no results tarball")
	}
	names, err := ReadTarballIndex(res.TarPath)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"halos_001.dat": false, "halos_002.dat": false, "halos_003.dat": false,
		"mergertree.txt": false, "galaxies.txt": false,
	}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("tarball missing %s (has %v)", n, names)
		}
	}
}

func TestPhase2InMemory(t *testing.T) {
	cfg := tinyConfig()
	cfg.NPart = 8
	res, err := Phase2(permissive(cfg), [3]float64{0.25, 0.25, 0.25}, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.TarPath != "" {
		t.Error("in-memory phase 2 should not write a tarball")
	}
	if len(res.Catalogs) != len(cfg.Aout) {
		t.Errorf("%d catalogs, want %d", len(res.Catalogs), len(cfg.Aout))
	}
}

func TestReadTarballIndexMissing(t *testing.T) {
	if _, err := ReadTarballIndex(filepath.Join(t.TempDir(), "nope.tar.gz")); err == nil {
		t.Error("expected error for missing tarball")
	}
}
