package ramses

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/fortranio"
	"repro/internal/particles"
)

// Snapshot is "the current state of the universe" RAMSES outputs at each
// requested expansion factor (paper §4): the particle set plus metadata.
type Snapshot struct {
	A     float64       // expansion factor
	Box   float64       // box size, Mpc/h
	Parts particles.Set // particle states at this epoch
}

// WriteSnapshot writes the snapshot as Fortran unformatted records: a header
// (a, box, npart) followed by blocks of positions, velocities, masses and
// IDs — the same block structure as RAMSES part files.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	fw := fortranio.NewWriter(w)
	if err := fw.WriteFloat64s([]float64{s.A, s.Box, float64(len(s.Parts))}); err != nil {
		return err
	}
	n := len(s.Parts)
	buf := make([]float64, n)
	for d := 0; d < 3; d++ {
		for i := range s.Parts {
			buf[i] = s.Parts[i].Pos[d]
		}
		if err := fw.WriteFloat64s(buf); err != nil {
			return err
		}
	}
	for d := 0; d < 3; d++ {
		for i := range s.Parts {
			buf[i] = s.Parts[i].Vel[d]
		}
		if err := fw.WriteFloat64s(buf); err != nil {
			return err
		}
	}
	for i := range s.Parts {
		buf[i] = s.Parts[i].Mass
	}
	if err := fw.WriteFloat64s(buf); err != nil {
		return err
	}
	ids := make([]byte, 8*n)
	for i := range s.Parts {
		id := uint64(s.Parts[i].ID)
		for b := 0; b < 8; b++ {
			ids[8*i+b] = byte(id >> (8 * b))
		}
	}
	return fw.WriteRecord(ids)
}

// ReadSnapshot reads a snapshot written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	fr := fortranio.NewReader(r)
	head, err := fr.ReadFloat64s()
	if err != nil {
		return nil, err
	}
	if len(head) != 3 {
		return nil, fmt.Errorf("ramses: snapshot header has %d fields, want 3", len(head))
	}
	s := &Snapshot{A: head[0], Box: head[1]}
	n := int(head[2])
	if n < 0 {
		return nil, fmt.Errorf("ramses: negative particle count %d", n)
	}
	s.Parts = make(particles.Set, n)
	for d := 0; d < 3; d++ {
		col, err := fr.ReadFloat64s()
		if err != nil {
			return nil, fmt.Errorf("ramses: reading position block %d: %w", d, err)
		}
		if len(col) != n {
			return nil, fmt.Errorf("ramses: position block %d has %d entries, want %d", d, len(col), n)
		}
		for i := range col {
			s.Parts[i].Pos[d] = col[i]
		}
	}
	for d := 0; d < 3; d++ {
		col, err := fr.ReadFloat64s()
		if err != nil {
			return nil, fmt.Errorf("ramses: reading velocity block %d: %w", d, err)
		}
		if len(col) != n {
			return nil, fmt.Errorf("ramses: velocity block %d has %d entries, want %d", d, len(col), n)
		}
		for i := range col {
			s.Parts[i].Vel[d] = col[i]
		}
	}
	masses, err := fr.ReadFloat64s()
	if err != nil {
		return nil, fmt.Errorf("ramses: reading mass block: %w", err)
	}
	if len(masses) != n {
		return nil, fmt.Errorf("ramses: mass block has %d entries, want %d", len(masses), n)
	}
	for i := range masses {
		s.Parts[i].Mass = masses[i]
	}
	raw, err := fr.ReadRecord()
	if err != nil {
		return nil, fmt.Errorf("ramses: reading ID block: %w", err)
	}
	if len(raw) != 8*n {
		return nil, fmt.Errorf("ramses: ID block has %d bytes, want %d", len(raw), 8*n)
	}
	for i := 0; i < n; i++ {
		var v uint64
		for b := 0; b < 8; b++ {
			v |= uint64(raw[8*i+b]) << (8 * b)
		}
		s.Parts[i].ID = int64(v)
	}
	return s, nil
}

// SnapshotPath returns the canonical output path for snapshot number i under
// dir, following the RAMSES output_00001/part convention.
func SnapshotPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("output_%05d", i), "part.dat")
}

// SaveSnapshot writes the snapshot to the canonical path for index i.
func SaveSnapshot(dir string, i int, s *Snapshot) (string, error) {
	path := SnapshotPath(dir, i)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", err
	}
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	bw := bufio.NewWriter(f)
	if err := WriteSnapshot(bw, s); err != nil {
		f.Close()
		return "", err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// LoadSnapshot reads the snapshot at the canonical path for index i.
func LoadSnapshot(dir string, i int) (*Snapshot, error) {
	f, err := os.Open(SnapshotPath(dir, i))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(bufio.NewReader(f))
}
