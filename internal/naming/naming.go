// Package naming is the omniORB-style naming service of the deployment: a
// small registry mapping component names (master agent, local agents, SeDs)
// to transport addresses. A DIET client "can be connected to a MA by a
// specific name server" (paper §3.1) — this is that name server.
package naming

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/rpc"
)

// ObjectName is the rpc object under which the service is exposed.
const ObjectName = "naming"

// Entry is one name → address binding.
type Entry struct {
	Name string
	Addr string
	Kind string // "MA", "LA", "SeD", or free-form
}

// Service is the registry implementation.
type Service struct {
	mu      sync.RWMutex
	entries map[string]Entry
}

// NewService returns an empty naming service.
func NewService() *Service {
	return &Service{entries: make(map[string]Entry)}
}

// Register binds a name; rebinding an existing name is an error so that two
// components cannot silently claim the same identity — unless the current
// holder is dead. A restarted component comes back on a fresh address, so a
// conflicting registration probes the old holder (a Ping on its component
// object) and takes the binding over only when nothing answers there. Kinds
// the prober cannot address keep the strict no-rebind rule.
func (s *Service) Register(e Entry) error {
	if e.Name == "" || e.Addr == "" {
		return fmt.Errorf("naming: name and addr are required, got %+v", e)
	}
	s.mu.Lock()
	old, dup := s.entries[e.Name]
	if !dup || old.Addr == e.Addr {
		s.entries[e.Name] = e
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	// Probe outside the lock: liveness checks must not serialise the registry.
	if holderAlive(old) {
		return fmt.Errorf("naming: %q already bound to %s", e.Name, old.Addr)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.entries[e.Name]; !ok || cur == old {
		// The stale holder is gone (or unchanged since the probe): take over.
		s.entries[e.Name] = e
		return nil
	}
	return fmt.Errorf("naming: %q re-bound concurrently", e.Name)
}

// holderAlive pings the component behind an entry. Only the kinds whose rpc
// object name is derivable ("SeD", "LA", "MA") can be probed; anything else
// is reported alive, preserving the strict rebind rule for free-form kinds.
func holderAlive(e Entry) bool {
	var object string
	switch e.Kind {
	case "SeD":
		object = "sed:" + e.Name
	case "LA", "MA":
		object = "agent:" + e.Name
	default:
		return true
	}
	var pong string
	return rpc.Call(e.Addr, object, "Ping", struct{}{}, &pong) == nil
}

// Unregister removes a binding (idempotent).
func (s *Service) Unregister(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.entries, name)
}

// Resolve returns the binding for name.
func (s *Service) Resolve(name string) (Entry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[name]
	if !ok {
		return Entry{}, fmt.Errorf("naming: %q not bound", name)
	}
	return e, nil
}

// List returns all bindings whose name starts with prefix, sorted by name.
func (s *Service) List(prefix string) []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Entry
	for _, e := range s.entries {
		if strings.HasPrefix(e.Name, prefix) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Handler exposes the service over rpc.
func (s *Service) Handler() rpc.Handler {
	return rpc.HandlerFunc(map[string]func([]byte) ([]byte, error){
		"Register": func(body []byte) ([]byte, error) {
			var e Entry
			if err := rpc.Decode(body, &e); err != nil {
				return nil, err
			}
			if err := s.Register(e); err != nil {
				return nil, err
			}
			return rpc.Encode(true)
		},
		"Unregister": func(body []byte) ([]byte, error) {
			var name string
			if err := rpc.Decode(body, &name); err != nil {
				return nil, err
			}
			s.Unregister(name)
			return rpc.Encode(true)
		},
		"Resolve": func(body []byte) ([]byte, error) {
			var name string
			if err := rpc.Decode(body, &name); err != nil {
				return nil, err
			}
			e, err := s.Resolve(name)
			if err != nil {
				return nil, err
			}
			return rpc.Encode(e)
		},
		"List": func(body []byte) ([]byte, error) {
			var prefix string
			if err := rpc.Decode(body, &prefix); err != nil {
				return nil, err
			}
			return rpc.Encode(s.List(prefix))
		},
	})
}

// Client is a typed remote handle on a naming service.
type Client struct {
	Addr string
}

// Register binds a name remotely.
func (c *Client) Register(e Entry) error {
	var ok bool
	return rpc.Call(c.Addr, ObjectName, "Register", e, &ok)
}

// Unregister removes a binding remotely.
func (c *Client) Unregister(name string) error {
	var ok bool
	return rpc.Call(c.Addr, ObjectName, "Unregister", name, &ok)
}

// Resolve looks a name up remotely.
func (c *Client) Resolve(name string) (Entry, error) {
	var e Entry
	err := rpc.Call(c.Addr, ObjectName, "Resolve", name, &e)
	return e, err
}

// List enumerates bindings remotely.
func (c *Client) List(prefix string) ([]Entry, error) {
	var out []Entry
	err := rpc.Call(c.Addr, ObjectName, "List", prefix, &out)
	return out, err
}
