package naming

import (
	"fmt"
	"testing"

	"repro/internal/rpc"
)

func TestServiceBasics(t *testing.T) {
	s := NewService()
	if err := s.Register(Entry{Name: "MA1", Addr: "a:1", Kind: "MA"}); err != nil {
		t.Fatal(err)
	}
	e, err := s.Resolve("MA1")
	if err != nil || e.Addr != "a:1" {
		t.Fatalf("Resolve = %+v, %v", e, err)
	}
	if _, err := s.Resolve("ghost"); err == nil {
		t.Error("missing name should fail")
	}
	s.Unregister("MA1")
	if _, err := s.Resolve("MA1"); err == nil {
		t.Error("unregistered name should fail")
	}
	s.Unregister("MA1") // idempotent
}

func TestRegisterConflicts(t *testing.T) {
	s := NewService()
	if err := s.Register(Entry{Name: "X", Addr: "a:1"}); err != nil {
		t.Fatal(err)
	}
	// Same name, same address: fine (re-registration after restart).
	if err := s.Register(Entry{Name: "X", Addr: "a:1"}); err != nil {
		t.Errorf("idempotent rebind rejected: %v", err)
	}
	// Same name, different address: identity theft, rejected.
	if err := s.Register(Entry{Name: "X", Addr: "b:2"}); err == nil {
		t.Error("conflicting rebind should fail")
	}
	if err := s.Register(Entry{Name: "", Addr: "a:1"}); err == nil {
		t.Error("empty name should fail")
	}
	if err := s.Register(Entry{Name: "Y", Addr: ""}); err == nil {
		t.Error("empty addr should fail")
	}
}

func TestListSortedAndFiltered(t *testing.T) {
	s := NewService()
	for i := 3; i >= 1; i-- {
		s.Register(Entry{Name: fmt.Sprintf("SeD%d", i), Addr: fmt.Sprintf("a:%d", i), Kind: "SeD"})
	}
	s.Register(Entry{Name: "MA1", Addr: "m:1", Kind: "MA"})
	got := s.List("SeD")
	if len(got) != 3 {
		t.Fatalf("%d entries", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Name >= got[i].Name {
			t.Error("list not sorted")
		}
	}
	if all := s.List(""); len(all) != 4 {
		t.Errorf("List(\"\") = %d entries", len(all))
	}
}

func TestRemoteClient(t *testing.T) {
	defer rpc.ResetLocal()
	svc := NewService()
	server := rpc.NewServer()
	server.Register(ObjectName, svc.Handler())
	addr, err := rpc.ServeLocal("naming-test", server)
	if err != nil {
		t.Fatal(err)
	}
	c := &Client{Addr: addr}
	if err := c.Register(Entry{Name: "SeD-a", Addr: "x:1", Kind: "SeD"}); err != nil {
		t.Fatal(err)
	}
	e, err := c.Resolve("SeD-a")
	if err != nil || e.Addr != "x:1" {
		t.Fatalf("Resolve = %+v, %v", e, err)
	}
	list, err := c.List("SeD")
	if err != nil || len(list) != 1 {
		t.Fatalf("List = %v, %v", list, err)
	}
	if err := c.Unregister("SeD-a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Resolve("SeD-a"); err == nil {
		t.Error("resolve after unregister should fail")
	}
	// Conflicting remote rebind surfaces the server error.
	c.Register(Entry{Name: "Z", Addr: "1"})
	if err := c.Register(Entry{Name: "Z", Addr: "2"}); err == nil {
		t.Error("conflicting rebind should fail through rpc")
	}
}

func TestRemoteClientOverTCP(t *testing.T) {
	svc := NewService()
	server := rpc.NewServer()
	server.Register(ObjectName, svc.Handler())
	addr, err := server.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	c := &Client{Addr: addr}
	if err := c.Register(Entry{Name: "MA1", Addr: "tcp:somewhere:1", Kind: "MA"}); err != nil {
		t.Fatal(err)
	}
	e, err := c.Resolve("MA1")
	if err != nil || e.Kind != "MA" {
		t.Fatalf("Resolve over TCP = %+v, %v", e, err)
	}
}
