// Package hilbert implements the 3-D Peano–Hilbert space-filling curve and
// the Hilbert-ordered domain decomposition RAMSES uses to partition the
// computational volume among processes (Teyssier 2002, §2.3).
//
// The encoding follows Skilling's transpose algorithm: a point on a 2^order
// grid per axis maps to a curve index in [0, 2^(3*order)), such that points
// adjacent along the curve are adjacent in space. Contiguous index ranges
// therefore correspond to compact spatial domains, which is what makes the
// curve a good mesh-partitioning key.
package hilbert

import "fmt"

// MaxOrder is the largest supported curve order; 3*21 = 63 index bits fit a
// uint64 with a sign bit to spare.
const MaxOrder = 21

// Encode maps grid coordinates (x, y, z) on a 2^order per-axis grid to the
// Peano–Hilbert curve index. Coordinates must lie in [0, 2^order).
func Encode(x, y, z uint32, order uint) uint64 {
	coords := [3]uint32{x, y, z}
	// Inverse undo excess work: convert Hilbert transpose to index later.
	m := uint32(1) << (order - 1)
	// Gray-code style rotation pass (Skilling's algorithm, forward direction).
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < 3; i++ {
			if coords[i]&q != 0 {
				coords[0] ^= p // invert
			} else {
				t := (coords[0] ^ coords[i]) & p
				coords[0] ^= t
				coords[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < 3; i++ {
		coords[i] ^= coords[i-1]
	}
	t := uint32(0)
	for q := m; q > 1; q >>= 1 {
		if coords[2]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < 3; i++ {
		coords[i] ^= t
	}
	return interleave(coords, order)
}

// Decode maps a Peano–Hilbert curve index back to grid coordinates on a
// 2^order per-axis grid. It is the exact inverse of Encode.
func Decode(d uint64, order uint) (x, y, z uint32) {
	coords := deinterleave(d, order)
	n := uint32(2) << (order - 1)
	// Gray decode by H ^ (H/2).
	t := coords[2] >> 1
	for i := 2; i > 0; i-- {
		coords[i] ^= coords[i-1]
	}
	coords[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != n; q <<= 1 {
		p := q - 1
		for i := 2; i >= 0; i-- {
			if coords[i]&q != 0 {
				coords[0] ^= p
			} else {
				t := (coords[0] ^ coords[i]) & p
				coords[0] ^= t
				coords[i] ^= t
			}
		}
	}
	return coords[0], coords[1], coords[2]
}

// interleave packs the transpose-form coordinates into a single curve index,
// taking bit b of x, y, z in turn from the most significant plane down.
func interleave(coords [3]uint32, order uint) uint64 {
	var d uint64
	for b := int(order) - 1; b >= 0; b-- {
		for i := 0; i < 3; i++ {
			d = d<<1 | uint64((coords[i]>>uint(b))&1)
		}
	}
	return d
}

// deinterleave unpacks a curve index into transpose-form coordinates.
func deinterleave(d uint64, order uint) [3]uint32 {
	var coords [3]uint32
	for b := int(order) - 1; b >= 0; b-- {
		for i := 0; i < 3; i++ {
			shift := uint(3*b + (2 - i))
			coords[i] = coords[i]<<1 | uint32((d>>shift)&1)
		}
	}
	return coords
}

// Domain is a contiguous half-open range [Lo, Hi) of Hilbert indices owned by
// one process.
type Domain struct {
	Rank int    // owning process rank
	Lo   uint64 // first Hilbert index owned (inclusive)
	Hi   uint64 // last Hilbert index owned (exclusive)
}

// Contains reports whether Hilbert index d belongs to the domain.
func (dom Domain) Contains(d uint64) bool { return d >= dom.Lo && d < dom.Hi }

// Decompose splits the full curve [0, 2^(3*order)) into nranks contiguous
// domains with near-equal cell counts. This is the load-oblivious split used
// at simulation start-up, before any particle weights are known.
func Decompose(order uint, nranks int) ([]Domain, error) {
	if nranks <= 0 {
		return nil, fmt.Errorf("hilbert: nranks must be positive, got %d", nranks)
	}
	if order == 0 || order > MaxOrder {
		return nil, fmt.Errorf("hilbert: order must be in [1,%d], got %d", MaxOrder, order)
	}
	total := uint64(1) << (3 * order)
	if uint64(nranks) > total {
		return nil, fmt.Errorf("hilbert: %d ranks exceed %d curve cells", nranks, total)
	}
	domains := make([]Domain, nranks)
	for r := 0; r < nranks; r++ {
		lo := total * uint64(r) / uint64(nranks)
		hi := total * uint64(r+1) / uint64(nranks)
		domains[r] = Domain{Rank: r, Lo: lo, Hi: hi}
	}
	return domains, nil
}

// DecomposeWeighted splits the curve into nranks contiguous domains so that
// each carries a near-equal share of the given per-cell weights (e.g. particle
// counts per coarse cell in Hilbert order). weights[i] is the load of curve
// cell i; len(weights) must be 2^(3*order). This is the load-balancing step
// RAMSES performs at each coarse time step.
func DecomposeWeighted(order uint, nranks int, weights []float64) ([]Domain, error) {
	if nranks <= 0 {
		return nil, fmt.Errorf("hilbert: nranks must be positive, got %d", nranks)
	}
	total := uint64(1) << (3 * order)
	if uint64(len(weights)) != total {
		return nil, fmt.Errorf("hilbert: got %d weights, want %d for order %d", len(weights), total, order)
	}
	var sum float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("hilbert: negative weight %g at cell %d", w, i)
		}
		sum += w
	}
	domains := make([]Domain, 0, nranks)
	target := sum / float64(nranks)
	var acc float64
	lo := uint64(0)
	for i := uint64(0); i < total; i++ {
		acc += weights[i]
		// Close the current domain once it reaches its proportional share,
		// keeping enough cells for the remaining ranks.
		remainingRanks := nranks - len(domains)
		if acc >= target && total-i-1 >= uint64(remainingRanks-1) && remainingRanks > 1 {
			domains = append(domains, Domain{Rank: len(domains), Lo: lo, Hi: i + 1})
			lo = i + 1
			acc = 0
		}
	}
	domains = append(domains, Domain{Rank: len(domains), Lo: lo, Hi: total})
	// Pad with empty trailing domains if weights were so skewed we closed early.
	for len(domains) < nranks {
		domains = append(domains, Domain{Rank: len(domains), Lo: total, Hi: total})
	}
	return domains, nil
}

// OwnerOf returns the rank owning Hilbert index d in a sorted domain list.
func OwnerOf(domains []Domain, d uint64) int {
	lo, hi := 0, len(domains)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case d < domains[mid].Lo:
			hi = mid
		case d >= domains[mid].Hi:
			lo = mid + 1
		default:
			return domains[mid].Rank
		}
	}
	return -1
}

// CellIndex quantises a position in the unit box [0,1)^3 onto the 2^order
// grid and returns its Hilbert index. Positions are wrapped periodically.
func CellIndex(px, py, pz float64, order uint) uint64 {
	n := float64(uint64(1) << order)
	wrap := func(v float64) uint32 {
		v -= float64(int(v)) // cheap floor toward zero for v in (-1, 2)
		if v < 0 {
			v++
		}
		i := uint32(v * n)
		if i >= uint32(n) {
			i = uint32(n) - 1
		}
		return i
	}
	return Encode(wrap(px), wrap(py), wrap(pz), order)
}
