package hilbert

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTripSmall(t *testing.T) {
	const order = 3
	n := uint32(1) << order
	seen := make(map[uint64]bool)
	for x := uint32(0); x < n; x++ {
		for y := uint32(0); y < n; y++ {
			for z := uint32(0); z < n; z++ {
				d := Encode(x, y, z, order)
				if d >= 1<<(3*order) {
					t.Fatalf("Encode(%d,%d,%d) = %d out of range", x, y, z, d)
				}
				if seen[d] {
					t.Fatalf("Encode(%d,%d,%d) = %d collides", x, y, z, d)
				}
				seen[d] = true
				gx, gy, gz := Decode(d, order)
				if gx != x || gy != y || gz != z {
					t.Fatalf("Decode(Encode(%d,%d,%d)) = (%d,%d,%d)", x, y, z, gx, gy, gz)
				}
			}
		}
	}
	if len(seen) != int(n*n*n) {
		t.Fatalf("curve visits %d cells, want %d", len(seen), n*n*n)
	}
}

func TestCurveAdjacency(t *testing.T) {
	// The defining property: consecutive curve indices are grid neighbours
	// (Manhattan distance exactly 1).
	const order = 4
	total := uint64(1) << (3 * order)
	px, py, pz := Decode(0, order)
	for d := uint64(1); d < total; d++ {
		x, y, z := Decode(d, order)
		dist := absDiff(x, px) + absDiff(y, py) + absDiff(z, pz)
		if dist != 1 {
			t.Fatalf("indices %d and %d map to cells (%d,%d,%d) and (%d,%d,%d): distance %d",
				d-1, d, px, py, pz, x, y, z, dist)
		}
		px, py, pz = x, y, z
	}
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(x, y, z uint32, ord uint8) bool {
		order := uint(ord%MaxOrder) + 1
		mask := uint32(1)<<order - 1
		x, y, z = x&mask, y&mask, z&mask
		gx, gy, gz := Decode(Encode(x, y, z, order), order)
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecomposeCoversCurve(t *testing.T) {
	for _, nranks := range []int{1, 2, 3, 7, 11, 64} {
		domains, err := Decompose(3, nranks)
		if err != nil {
			t.Fatalf("Decompose(3, %d): %v", nranks, err)
		}
		if len(domains) != nranks {
			t.Fatalf("got %d domains, want %d", len(domains), nranks)
		}
		var prev uint64
		for i, d := range domains {
			if d.Lo != prev {
				t.Errorf("nranks=%d: domain %d starts at %d, want %d", nranks, i, d.Lo, prev)
			}
			if d.Hi < d.Lo {
				t.Errorf("nranks=%d: domain %d inverted [%d,%d)", nranks, i, d.Lo, d.Hi)
			}
			prev = d.Hi
		}
		if prev != 512 {
			t.Errorf("nranks=%d: coverage ends at %d, want 512", nranks, prev)
		}
	}
}

func TestDecomposeBalance(t *testing.T) {
	domains, err := Decompose(4, 11)
	if err != nil {
		t.Fatal(err)
	}
	total := uint64(1) << 12
	ideal := float64(total) / 11
	for _, d := range domains {
		size := float64(d.Hi - d.Lo)
		if size < ideal-1 || size > ideal+1 {
			t.Errorf("domain %d has %g cells, ideal %g", d.Rank, size, ideal)
		}
	}
}

func TestDecomposeErrors(t *testing.T) {
	if _, err := Decompose(3, 0); err == nil {
		t.Error("expected error for 0 ranks")
	}
	if _, err := Decompose(0, 2); err == nil {
		t.Error("expected error for order 0")
	}
	if _, err := Decompose(1, 9); err == nil {
		t.Error("expected error when ranks exceed cells")
	}
}

func TestDecomposeWeighted(t *testing.T) {
	const order = 2 // 64 cells
	weights := make([]float64, 64)
	// All the load in the first 16 cells.
	for i := 0; i < 16; i++ {
		weights[i] = 1
	}
	domains, err := DecomposeWeighted(order, 4, weights)
	if err != nil {
		t.Fatal(err)
	}
	if len(domains) != 4 {
		t.Fatalf("got %d domains, want 4", len(domains))
	}
	// Coverage invariants hold regardless of skew.
	var prev uint64
	for _, d := range domains {
		if d.Lo != prev {
			t.Fatalf("gap: domain %d starts at %d, want %d", d.Rank, d.Lo, prev)
		}
		prev = d.Hi
	}
	if prev != 64 {
		t.Fatalf("coverage ends at %d, want 64", prev)
	}
	// Load balance: each of the first three domains should carry ~4 loaded
	// cells (the skewed load is split, not dumped on rank 0).
	load := func(d Domain) (sum float64) {
		for i := d.Lo; i < d.Hi; i++ {
			sum += weights[i]
		}
		return
	}
	for r := 0; r < 3; r++ {
		if l := load(domains[r]); l < 3 || l > 6 {
			t.Errorf("rank %d carries load %g, want ≈4", r, l)
		}
	}
}

func TestDecomposeWeightedErrors(t *testing.T) {
	if _, err := DecomposeWeighted(2, 2, make([]float64, 63)); err == nil {
		t.Error("expected error for wrong weight count")
	}
	w := make([]float64, 64)
	w[3] = -1
	if _, err := DecomposeWeighted(2, 2, w); err == nil {
		t.Error("expected error for negative weight")
	}
	if _, err := DecomposeWeighted(2, 0, make([]float64, 64)); err == nil {
		t.Error("expected error for 0 ranks")
	}
}

func TestOwnerOf(t *testing.T) {
	domains, _ := Decompose(3, 5)
	for d := uint64(0); d < 512; d++ {
		r := OwnerOf(domains, d)
		if r < 0 || !domains[r].Contains(d) {
			t.Fatalf("OwnerOf(%d) = %d, domain [%d,%d)", d, r, domains[r].Lo, domains[r].Hi)
		}
	}
	if r := OwnerOf(domains[:2], 511); r != -1 {
		t.Errorf("OwnerOf outside coverage = %d, want -1", r)
	}
}

func TestOwnerOfProperty(t *testing.T) {
	domains, _ := Decompose(4, 7)
	f := func(d uint64) bool {
		d %= 1 << 12
		r := OwnerOf(domains, d)
		return r >= 0 && domains[r].Contains(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCellIndexWraps(t *testing.T) {
	const order = 4
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		x, y, z := rng.Float64(), rng.Float64(), rng.Float64()
		base := CellIndex(x, y, z, order)
		wrapped := CellIndex(x+1, y-1, z+1, order)
		if base != wrapped {
			t.Fatalf("CellIndex not periodic at (%g,%g,%g): %d vs %d", x, y, z, base, wrapped)
		}
	}
	// Boundary: exactly 1.0 must not index out of the grid.
	if d := CellIndex(1.0, 1.0, 1.0, order); d >= 1<<(3*order) {
		t.Errorf("CellIndex(1,1,1) = %d out of range", d)
	}
}

func TestCellIndexLocality(t *testing.T) {
	// Two points in the same grid cell share an index.
	const order = 3
	a := CellIndex(0.101, 0.201, 0.301, order)
	b := CellIndex(0.102, 0.202, 0.302, order)
	if a != b {
		t.Errorf("same-cell positions map to different indices: %d vs %d", a, b)
	}
}
