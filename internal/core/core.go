// Package core is the paper's primary contribution surface in one import:
// the DIET GridRPC middleware (client, agent hierarchy, server daemons,
// profiles) together with the plug-in scheduler policies — everything a
// downstream application needs to "gridify" a service the way §5 gridifies
// RAMSES. The implementation lives in the focused packages internal/diet and
// internal/scheduler; this package re-exports their public API so examples
// and tools read as a single coherent library.
package core

import (
	"repro/internal/dataman"
	"repro/internal/diet"
	"repro/internal/scheduler"
)

// Middleware data model (diet_profile_t and friends).
type (
	// Profile is a problem description plus argument values.
	Profile = diet.Profile
	// ProfileDesc is the service signature a SeD registers.
	ProfileDesc = diet.ProfileDesc
	// Arg is one profile argument.
	Arg = diet.Arg
	// BaseType enumerates element types (Char, Int, Double).
	BaseType = diet.BaseType
	// ArgKind enumerates container types (Scalar … File).
	ArgKind = diet.ArgKind
	// Persistence enumerates data persistence modes.
	Persistence = diet.Persistence
	// Direction classifies arguments (In, InOut, Out).
	Direction = diet.Direction
)

// Components.
type (
	// Client is the application's handle on the platform.
	Client = diet.Client
	// ClientConfig is the parsed client configuration file.
	ClientConfig = diet.ClientConfig
	// CallInfo carries per-call timing (finding time, latency, compute).
	CallInfo = diet.CallInfo
	// AsyncCall is an in-flight asynchronous request.
	AsyncCall = diet.AsyncCall
	// FunctionHandle is the GridRPC server/service binding.
	FunctionHandle = diet.FunctionHandle
	// Agent is a Master or Local Agent.
	Agent = diet.Agent
	// AgentConfig configures an agent.
	AgentConfig = diet.AgentConfig
	// SeD is a Server Daemon.
	SeD = diet.SeD
	// SeDConfig configures a SeD.
	SeDConfig = diet.SeDConfig
	// SolveFunc computes one service request.
	SolveFunc = diet.SolveFunc
	// ServerRef identifies a chosen server.
	ServerRef = diet.ServerRef
	// Deployment is a running platform.
	Deployment = diet.Deployment
	// DeploymentSpec describes a platform to deploy.
	DeploymentSpec = diet.DeploymentSpec
	// SeDSpec describes one SeD of a deployment.
	SeDSpec = diet.SeDSpec
	// ServiceSpec binds a descriptor to a solve function.
	ServiceSpec = diet.ServiceSpec
)

// Data management (the paper's DTM/DAGDA role: persistent data published
// platform-wide, located by ID, fetched to wherever the solve runs).
type (
	// DataCatalog tracks replica locations and sizes for the platform;
	// wire one into DeploymentSpec.Data to data-enable every SeD.
	DataCatalog = dataman.Catalog
	// DataStore is one node's byte store.
	DataStore = dataman.Store
)

// Scheduling plug-ins.
type (
	// Estimate is a server's estimation vector.
	Estimate = scheduler.Estimate
	// Policy ranks candidate servers for a request.
	Policy = scheduler.Policy
)

// Re-exported enumerations.
const (
	Char   = diet.Char
	Int    = diet.Int
	Double = diet.Double

	Scalar = diet.Scalar
	Vector = diet.Vector
	Matrix = diet.Matrix
	Text   = diet.Text
	File   = diet.File

	Volatile   = diet.Volatile
	Persistent = diet.Persistent
	Sticky     = diet.Sticky

	In    = diet.In
	InOut = diet.InOut
	Out   = diet.Out

	MasterAgent = diet.MasterAgent
	LocalAgent  = diet.LocalAgent
)

// Constructors and session verbs.
var (
	// NewProfile allocates a profile with the DIET index convention.
	NewProfile = diet.NewProfile
	// NewProfileDesc allocates a service signature.
	NewProfileDesc = diet.NewProfileDesc
	// DescOf extracts the signature of a concrete profile.
	DescOf = diet.DescOf
	// Initialize opens a session from a configuration file (diet_initialize).
	Initialize = diet.Initialize
	// InitializeConfig opens a session from an in-memory configuration.
	InitializeConfig = diet.InitializeConfig
	// NewAgent creates a Master or Local Agent.
	NewAgent = diet.NewAgent
	// NewSeD creates a Server Daemon.
	NewSeD = diet.NewSeD
	// Deploy brings up a whole platform (naming, MA, LAs, SeDs).
	Deploy = diet.Deploy
	// WaitAll blocks on a set of asynchronous calls.
	WaitAll = diet.WaitAll
	// WithWork passes a work estimate to the scheduler.
	WithWork = diet.WithWork

	// NewDataCatalog creates a platform data catalog; NewDataStore a node
	// store to register on it.
	NewDataCatalog = dataman.NewCatalog
	NewDataStore   = dataman.NewStore

	// GridRPC-compatible aliases (the paper §5.3.1: every diet_ function is
	// duplicated with a grpc_ function).
	GrpcInitialize = diet.GrpcInitialize
	GrpcFinalize   = diet.GrpcFinalize
	GrpcWait       = diet.GrpcWait
	GrpcWaitAll    = diet.GrpcWaitAll
	GrpcWaitAny    = diet.GrpcWaitAny

	// Scheduling policies. The forecast-aware pair ranks on the CoRI
	// history every SeD collects (internal/cori) and degrades to
	// power-aware behaviour until history exists.
	NewRoundRobin      = scheduler.NewRoundRobin
	NewRandom          = scheduler.NewRandom
	NewMCT             = scheduler.NewMCT
	NewPowerAware      = scheduler.NewPowerAware
	NewForecastAware   = scheduler.NewForecastAware
	NewContentionAware = scheduler.NewContentionAware
	PolicyByName       = scheduler.ByName
)
