package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rpc"
)

// TestFacadeEndToEnd drives a whole platform through the core facade alone,
// proving the re-exported surface is sufficient for a downstream user.
func TestFacadeEndToEnd(t *testing.T) {
	rpc.ResetLocal()
	defer rpc.ResetLocal()

	desc, err := core.NewProfileDesc("triple", 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	desc.Set(0, core.Scalar, core.Int)
	desc.Set(1, core.Scalar, core.Int)

	d, err := core.Deploy(core.DeploymentSpec{
		MAName: "MA-facade",
		LAs:    []string{"LA1"},
		SeDs: []core.SeDSpec{{
			Name: "SeD-facade", Parent: "LA1", Capacity: 1, PowerGFlops: 4,
			Services: []core.ServiceSpec{{
				Desc: desc,
				Solve: func(p *core.Profile) error {
					v, err := p.ScalarInt(0)
					if err != nil {
						return err
					}
					return p.SetScalarInt(1, 3*v, core.Volatile)
				},
			}},
		}},
		Policy: core.NewPowerAware(),
		Local:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	client, err := d.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer core.GrpcFinalize(client)

	p, err := core.NewProfile("triple", 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.SetScalarInt(0, 14, core.Volatile)
	info, err := client.Call(p, core.WithWork(100))
	if err != nil {
		t.Fatal(err)
	}
	if info.Server != "SeD-facade" {
		t.Errorf("server %q", info.Server)
	}
	if v, _ := p.ScalarInt(1); v != 42 {
		t.Errorf("result %d, want 42", v)
	}
}

func TestPolicyByName(t *testing.T) {
	p, err := core.PolicyByName("poweraware", 1)
	if err != nil || p.Name() != "poweraware" {
		t.Errorf("PolicyByName: %v, %v", p, err)
	}
}
