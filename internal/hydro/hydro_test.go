package hydro

import (
	"math"
	"testing"
)

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(2, 1.4); err == nil {
		t.Error("tiny grid should fail")
	}
	if _, err := NewGrid(8, 1.0); err == nil {
		t.Error("gamma=1 should fail")
	}
}

func TestPrimitiveRoundTrip(t *testing.T) {
	g, err := NewGrid(8, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	g.SetPrimitive(0, 2.0, 0.5, -0.25, 1.0, 3.0)
	if math.Abs(g.Pressure(0)-3.0) > 1e-12 {
		t.Errorf("pressure %g, want 3", g.Pressure(0))
	}
	wantC := math.Sqrt(1.4 * 3.0 / 2.0)
	if math.Abs(g.SoundSpeed(0)-wantC) > 1e-12 {
		t.Errorf("sound speed %g, want %g", g.SoundSpeed(0), wantC)
	}
}

func TestUniformGasIsSteady(t *testing.T) {
	g, _ := NewGrid(8, 1.4)
	for i := range g.Rho {
		g.SetPrimitive(i, 1.0, 0, 0, 0, 1.0)
	}
	s := NewSolver(g)
	for k := 0; k < 10; k++ {
		if err := s.Step(s.MaxDt()); err != nil {
			t.Fatal(err)
		}
	}
	for i := range g.Rho {
		if math.Abs(g.Rho[i]-1) > 1e-12 || math.Abs(g.Pressure(i)-1) > 1e-12 {
			t.Fatalf("uniform gas drifted at cell %d: rho=%g p=%g", i, g.Rho[i], g.Pressure(i))
		}
		if g.Mx[i] != 0 || g.My[i] != 0 || g.Mz[i] != 0 {
			t.Fatalf("uniform gas gained momentum at cell %d", i)
		}
	}
}

func TestUniformAdvection(t *testing.T) {
	// A uniform gas moving at constant velocity stays uniform.
	g, _ := NewGrid(8, 1.4)
	for i := range g.Rho {
		g.SetPrimitive(i, 1.0, 0.7, -0.3, 0.1, 1.0)
	}
	s := NewSolver(g)
	if _, err := s.Run(0.1); err != nil {
		t.Fatal(err)
	}
	for i := range g.Rho {
		if math.Abs(g.Rho[i]-1) > 1e-10 {
			t.Fatalf("advected gas density %g at cell %d", g.Rho[i], i)
		}
		if math.Abs(g.Mx[i]-0.7) > 1e-10 {
			t.Fatalf("advected gas momentum %g at cell %d", g.Mx[i], i)
		}
	}
}

func TestConservation(t *testing.T) {
	// A random-ish smooth initial condition: totals are conserved exactly
	// (periodic box, conservative scheme).
	g, _ := NewGrid(16, 1.4)
	n := g.NX
	for iz := 0; iz < n; iz++ {
		for iy := 0; iy < n; iy++ {
			for ix := 0; ix < n; ix++ {
				i := g.Idx(ix, iy, iz)
				rho := 1 + 0.3*math.Sin(2*math.Pi*float64(ix)/float64(n))
				vx := 0.2 * math.Cos(2*math.Pi*float64(iy)/float64(n))
				p := 1 + 0.2*math.Sin(2*math.Pi*float64(iz)/float64(n))
				g.SetPrimitive(i, rho, vx, 0, 0, p)
			}
		}
	}
	m0, px0, py0, pz0, e0 := g.Totals()
	s := NewSolver(g)
	if _, err := s.Run(0.2); err != nil {
		t.Fatal(err)
	}
	m1, px1, py1, pz1, e1 := g.Totals()
	rel := func(a, b float64) float64 { return math.Abs(a-b) / (math.Abs(b) + 1e-300) }
	if rel(m1, m0) > 1e-12 {
		t.Errorf("mass not conserved: %g -> %g", m0, m1)
	}
	if math.Abs(px1-px0) > 1e-12 || math.Abs(py1-py0) > 1e-12 || math.Abs(pz1-pz0) > 1e-12 {
		t.Errorf("momentum not conserved: (%g,%g,%g) -> (%g,%g,%g)", px0, py0, pz0, px1, py1, pz1)
	}
	if rel(e1, e0) > 1e-12 {
		t.Errorf("energy not conserved: %g -> %g", e0, e1)
	}
}

func TestSodShockTube(t *testing.T) {
	// The classic 1-D Riemann problem run through the 3-D solver on a thin
	// 256×4×4 box. Exact solution at t=0.1 (γ=1.4, Toro ch. 4): contact
	// density 0.4263 at x≈0.593, post-shock density 0.2656, shock at
	// x≈0.675, plateau pressure 0.3031 and velocity 0.9274. The periodic
	// wrap fires a mirror problem at x=0 whose waves reach x≈0.118 (right-
	// going rarefaction) and x≈0.825 (left-going shock) by t=0.1; all
	// samples stay inside the untouched window.
	g, err := NewBox(256, 4, 4, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	SodX(g)
	s := NewSolver(g)
	if _, err := s.Run(0.1); err != nil {
		t.Fatal(err)
	}
	line := make([]float64, g.NX)
	pres := make([]float64, g.NX)
	velx := make([]float64, g.NX)
	for ix := 0; ix < g.NX; ix++ {
		i := g.Idx(ix, g.NY/2, g.NZ/2)
		line[ix] = g.Rho[i]
		pres[ix] = g.Pressure(i)
		velx[ix] = g.Mx[i] / g.Rho[i]
	}
	at := func(x float64) int { return int(x * float64(g.NX)) }

	// Left state undisturbed between the boundary wave and the rarefaction.
	if math.Abs(line[at(0.25)]-1.0) > 0.01 {
		t.Errorf("left state disturbed: rho(0.25)=%g", line[at(0.25)])
	}
	// Contact-side plateau (HLL smears the contact; generous tolerance).
	if got := line[at(0.55)]; math.Abs(got-0.4263) > 0.06 {
		t.Errorf("contact plateau density %g, want ≈ 0.426", got)
	}
	// Post-shock plateau.
	if got := line[at(0.64)]; math.Abs(got-0.2656) > 0.03 {
		t.Errorf("post-shock density %g, want ≈ 0.266", got)
	}
	if got := pres[at(0.60)]; math.Abs(got-0.3031) > 0.03 {
		t.Errorf("plateau pressure %g, want ≈ 0.303", got)
	}
	if got := velx[at(0.60)]; math.Abs(got-0.9274) > 0.05 {
		t.Errorf("plateau velocity %g, want ≈ 0.927", got)
	}
	// Right state undisturbed between the shock and the boundary wave.
	if math.Abs(line[at(0.75)]-0.125) > 0.01 {
		t.Errorf("pre-shock state disturbed: rho(0.75)=%g", line[at(0.75)])
	}
	// Shock position: density drops through 0.19 near x=0.675.
	shock := 0
	for ix := at(0.60); ix < at(0.80); ix++ {
		if line[ix] > 0.19 && line[ix+1] <= 0.19 {
			shock = ix
			break
		}
	}
	if pos := float64(shock) / float64(g.NX); math.Abs(pos-0.675) > 0.02 {
		t.Errorf("shock at x=%.3f, want ≈ 0.675", pos)
	}
}

func TestSodSymmetryAcrossAxes(t *testing.T) {
	// The dimensional splitting must treat all axes alike: a Sod tube along
	// y gives the same profile as along x.
	gx, _ := NewBox(64, 4, 4, 1.4)
	SodX(gx)
	sx := NewSolver(gx)
	if _, err := sx.Run(0.05); err != nil {
		t.Fatal(err)
	}
	gy, _ := NewBox(4, 64, 4, 1.4)
	for iz := 0; iz < gy.NZ; iz++ {
		for iy := 0; iy < gy.NY; iy++ {
			for ix := 0; ix < gy.NX; ix++ {
				i := gy.Idx(ix, iy, iz)
				if iy < gy.NY/2 {
					gy.SetPrimitive(i, 1, 0, 0, 0, 1)
				} else {
					gy.SetPrimitive(i, 0.125, 0, 0, 0, 0.1)
				}
			}
		}
	}
	sy := NewSolver(gy)
	if _, err := sy.Run(0.05); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 64; k++ {
		a := gx.Rho[gx.Idx(k, 2, 2)]
		b := gy.Rho[gy.Idx(2, k, 2)]
		if math.Abs(a-b) > 1e-10 {
			t.Fatalf("axis asymmetry at k=%d: %g vs %g", k, a, b)
		}
	}
	// And the y-tube's momentum lives in My, not Mx/Mz.
	var mx, mz float64
	for i := range gy.Rho {
		mx += math.Abs(gy.Mx[i])
		mz += math.Abs(gy.Mz[i])
	}
	if mx > 1e-12 || mz > 1e-12 {
		t.Errorf("transverse momentum leaked: |Mx|=%g |Mz|=%g", mx, mz)
	}
}

func TestApplyGravity(t *testing.T) {
	g, _ := NewGrid(8, 1.4)
	for i := range g.Rho {
		g.SetPrimitive(i, 2.0, 0, 0, 0, 1.0)
	}
	s := NewSolver(g)
	size := 8 * 8 * 8
	gx := make([]float64, size)
	gy := make([]float64, size)
	gz := make([]float64, size)
	for i := range gx {
		gx[i] = 0.5
	}
	if err := s.ApplyGravity(gx, gy, gz, 0.1); err != nil {
		t.Fatal(err)
	}
	for i := range g.Rho {
		// dv = g dt = 0.05; momentum = rho dv = 0.1.
		if math.Abs(g.Mx[i]-0.1) > 1e-12 {
			t.Fatalf("momentum %g after gravity kick, want 0.1", g.Mx[i])
		}
	}
	if err := s.ApplyGravity(gx[:3], gy, gz, 0.1); err == nil {
		t.Error("wrong-size acceleration grid should fail")
	}
}

func TestStepValidation(t *testing.T) {
	g, _ := NewGrid(8, 1.4)
	s := NewSolver(g)
	if err := s.Step(0); err == nil {
		t.Error("dt=0 should fail")
	}
	if err := s.Step(-1); err == nil {
		t.Error("negative dt should fail")
	}
}

func TestPositivityUnderStrongShock(t *testing.T) {
	// A strong blast: density and pressure must stay positive.
	g, _ := NewGrid(32, 1.4)
	for i := range g.Rho {
		g.SetPrimitive(i, 1, 0, 0, 0, 0.01)
	}
	c := g.Idx(16, 16, 16)
	g.SetPrimitive(c, 1, 0, 0, 0, 100)
	s := NewSolver(g)
	if _, err := s.Run(0.05); err != nil {
		t.Fatal(err)
	}
	for i := range g.Rho {
		if g.Rho[i] <= 0 {
			t.Fatalf("negative density %g at cell %d", g.Rho[i], i)
		}
		if g.Pressure(i) < -1e-10 {
			t.Fatalf("negative pressure %g at cell %d", g.Pressure(i), i)
		}
	}
}
