// Package hydro implements the finite-volume Euler solver RAMSES couples to
// its N-body core (paper §4: "a state-of-the-art 'N body solver', coupled to
// a finite volume Euler solver"): compressible gas dynamics on a periodic
// 3-D grid with a MUSCL (minmod-limited) reconstruction, an HLL Riemann
// solver and Strang-style dimensional splitting, plus the gravity source
// hook the coupled solver uses.
//
// Conserved variables are density ρ, momentum density (mx,my,mz) and total
// energy density E, with the ideal-gas closure p = (γ−1)(E − ½ρv²).
package hydro

import (
	"fmt"
	"math"
)

// Grid holds the conserved fields on a periodic NX×NY×NZ mesh covering the
// unit box, flattened in (iz*NY+iy)*NX+ix order. Cell sizes are 1/NX, 1/NY,
// 1/NZ per axis; shock-tube tests use thin boxes like 256×4×4.
type Grid struct {
	NX, NY, NZ int
	Gamma      float64 // adiabatic index (5/3 for the cosmological gas)
	Rho        []float64
	Mx         []float64
	My         []float64
	Mz         []float64
	E          []float64
}

// NewGrid allocates a cubic n×n×n grid.
func NewGrid(n int, gamma float64) (*Grid, error) { return NewBox(n, n, n, gamma) }

// NewBox allocates an NX×NY×NZ grid filled with vacuum.
func NewBox(nx, ny, nz int, gamma float64) (*Grid, error) {
	if nx < 4 || ny < 4 || nz < 4 {
		return nil, fmt.Errorf("hydro: box %dx%dx%d too small (need >= 4 per axis)", nx, ny, nz)
	}
	if gamma <= 1 {
		return nil, fmt.Errorf("hydro: gamma must exceed 1, got %g", gamma)
	}
	size := nx * ny * nz
	return &Grid{
		NX: nx, NY: ny, NZ: nz, Gamma: gamma,
		Rho: make([]float64, size),
		Mx:  make([]float64, size),
		My:  make([]float64, size),
		Mz:  make([]float64, size),
		E:   make([]float64, size),
	}, nil
}

// Size returns the cell count.
func (g *Grid) Size() int { return g.NX * g.NY * g.NZ }

// Idx returns the flat index of (ix, iy, iz).
func (g *Grid) Idx(ix, iy, iz int) int { return (iz*g.NY+iy)*g.NX + ix }

// SetPrimitive stores a cell from primitive variables (ρ, v, p).
func (g *Grid) SetPrimitive(i int, rho, vx, vy, vz, p float64) {
	g.Rho[i] = rho
	g.Mx[i] = rho * vx
	g.My[i] = rho * vy
	g.Mz[i] = rho * vz
	g.E[i] = p/(g.Gamma-1) + 0.5*rho*(vx*vx+vy*vy+vz*vz)
}

// Pressure returns the gas pressure of cell i.
func (g *Grid) Pressure(i int) float64 {
	rho := g.Rho[i]
	if rho <= 0 {
		return 0
	}
	kin := 0.5 * (g.Mx[i]*g.Mx[i] + g.My[i]*g.My[i] + g.Mz[i]*g.Mz[i]) / rho
	return (g.Gamma - 1) * (g.E[i] - kin)
}

// SoundSpeed returns the adiabatic sound speed of cell i.
func (g *Grid) SoundSpeed(i int) float64 {
	p := g.Pressure(i)
	if p <= 0 || g.Rho[i] <= 0 {
		return 0
	}
	return math.Sqrt(g.Gamma * p / g.Rho[i])
}

// Totals returns the domain-integrated conserved quantities, the solver's
// conservation invariants.
func (g *Grid) Totals() (mass, momX, momY, momZ, energy float64) {
	for i := range g.Rho {
		mass += g.Rho[i]
		momX += g.Mx[i]
		momY += g.My[i]
		momZ += g.Mz[i]
		energy += g.E[i]
	}
	vol := 1.0 / float64(g.Size())
	return mass * vol, momX * vol, momY * vol, momZ * vol, energy * vol
}

// Solver advances a Grid in time.
type Solver struct {
	G   *Grid
	CFL float64 // Courant number, default 0.4
}

// NewSolver wraps a grid with the standard CFL number.
func NewSolver(g *Grid) *Solver { return &Solver{G: g, CFL: 0.4} }

// MaxDt returns the largest stable time step under the CFL condition, using
// the smallest cell extent.
func (s *Solver) MaxDt() float64 {
	g := s.G
	dx := math.Min(1.0/float64(g.NX), math.Min(1.0/float64(g.NY), 1.0/float64(g.NZ)))
	maxSpeed := 1e-12
	for i := range g.Rho {
		if g.Rho[i] <= 0 {
			continue
		}
		v := math.Sqrt(g.Mx[i]*g.Mx[i]+g.My[i]*g.My[i]+g.Mz[i]*g.Mz[i]) / g.Rho[i]
		if sp := v + g.SoundSpeed(i); sp > maxSpeed {
			maxSpeed = sp
		}
	}
	return s.CFL * dx / maxSpeed
}

// cell1d is the 1-D state in a sweep: (ρ, parallel momentum, two transverse
// momenta, E).
type cell1d [5]float64

// flux1d computes the physical flux of a 1-D state.
func flux1d(u cell1d, gamma float64) cell1d {
	rho := u[0]
	if rho <= 0 {
		return cell1d{}
	}
	v := u[1] / rho
	kin := 0.5 * (u[1]*u[1] + u[2]*u[2] + u[3]*u[3]) / rho
	p := (gamma - 1) * (u[4] - kin)
	if p < 0 {
		p = 0
	}
	return cell1d{
		u[1],
		u[1]*v + p,
		u[2] * v,
		u[3] * v,
		(u[4] + p) * v,
	}
}

// hll returns the HLL flux between left and right states.
func hll(l, r cell1d, gamma float64) cell1d {
	speeds := func(u cell1d) (v, c float64) {
		rho := u[0]
		if rho <= 0 {
			return 0, 0
		}
		v = u[1] / rho
		kin := 0.5 * (u[1]*u[1] + u[2]*u[2] + u[3]*u[3]) / rho
		p := (gamma - 1) * (u[4] - kin)
		if p < 0 {
			p = 0
		}
		c = math.Sqrt(gamma * p / rho)
		return
	}
	vl, cl := speeds(l)
	vr, cr := speeds(r)
	sl := math.Min(vl-cl, vr-cr)
	sr := math.Max(vl+cl, vr+cr)
	fl := flux1d(l, gamma)
	fr := flux1d(r, gamma)
	switch {
	case sl >= 0:
		return fl
	case sr <= 0:
		return fr
	default:
		var out cell1d
		inv := 1 / (sr - sl)
		for k := 0; k < 5; k++ {
			out[k] = (sr*fl[k] - sl*fr[k] + sl*sr*(r[k]-l[k])) * inv
		}
		return out
	}
}

// minmod is the slope limiter of the MUSCL reconstruction.
func minmod(a, b float64) float64 {
	if a*b <= 0 {
		return 0
	}
	if math.Abs(a) < math.Abs(b) {
		return a
	}
	return b
}

// sweep advances every grid line along one axis by dt with a MUSCL-HLL
// update. index maps (line, position) to flat indices; perm names the
// parallel momentum component first.
func (s *Solver) sweep(dt float64, lineLen, nLines int, dx float64, index func(line, k int) int, perm [3]int) {
	g := s.G
	lam := dt / dx
	u := make([]cell1d, lineLen)
	fluxes := make([]cell1d, lineLen+1)
	mom := [3][]float64{g.Mx, g.My, g.Mz}

	for line := 0; line < nLines; line++ {
		for k := 0; k < lineLen; k++ {
			i := index(line, k)
			u[k] = cell1d{g.Rho[i], mom[perm[0]][i], mom[perm[1]][i], mom[perm[2]][i], g.E[i]}
		}
		mod := func(k int) int {
			k %= lineLen
			if k < 0 {
				k += lineLen
			}
			return k
		}
		// MUSCL: limited linear states at each interface, then HLL.
		for k := 0; k <= lineLen; k++ {
			kl, kr := mod(k-1), mod(k)
			var left, right cell1d
			for c := 0; c < 5; c++ {
				sl := minmod(u[kl][c]-u[mod(k-2)][c], u[kr][c]-u[kl][c])
				sr := minmod(u[kr][c]-u[kl][c], u[mod(k+1)][c]-u[kr][c])
				left[c] = u[kl][c] + 0.5*sl
				right[c] = u[kr][c] - 0.5*sr
			}
			fluxes[k] = hll(left, right, g.Gamma)
		}
		for k := 0; k < lineLen; k++ {
			i := index(line, k)
			g.Rho[i] -= lam * (fluxes[k+1][0] - fluxes[k][0])
			mom[perm[0]][i] -= lam * (fluxes[k+1][1] - fluxes[k][1])
			mom[perm[1]][i] -= lam * (fluxes[k+1][2] - fluxes[k][2])
			mom[perm[2]][i] -= lam * (fluxes[k+1][3] - fluxes[k][3])
			g.E[i] -= lam * (fluxes[k+1][4] - fluxes[k][4])
		}
	}
}

// Step advances the gas by dt using dimensionally split sweeps (x, y, z).
func (s *Solver) Step(dt float64) error {
	if dt <= 0 {
		return fmt.Errorf("hydro: dt must be positive, got %g", dt)
	}
	g := s.G
	nx, ny, nz := g.NX, g.NY, g.NZ
	s.sweep(dt, nx, ny*nz, 1.0/float64(nx), func(line, k int) int {
		iy, iz := line%ny, line/ny
		return (iz*ny+iy)*nx + k
	}, [3]int{0, 1, 2})
	s.sweep(dt, ny, nx*nz, 1.0/float64(ny), func(line, k int) int {
		ix, iz := line%nx, line/nx
		return (iz*ny+k)*nx + ix
	}, [3]int{1, 0, 2})
	s.sweep(dt, nz, nx*ny, 1.0/float64(nz), func(line, k int) int {
		ix, iy := line%nx, line/nx
		return (k*ny+iy)*nx + ix
	}, [3]int{2, 0, 1})
	return nil
}

// ApplyGravity adds the momentum and energy source terms of a gravitational
// acceleration field over dt — the hook through which the coupled RAMSES
// solver feeds the PM force into the gas.
func (s *Solver) ApplyGravity(gx, gy, gz []float64, dt float64) error {
	g := s.G
	size := g.Size()
	if len(gx) != size || len(gy) != size || len(gz) != size {
		return fmt.Errorf("hydro: acceleration grids must have %d cells", size)
	}
	for i := 0; i < size; i++ {
		rho := g.Rho[i]
		if rho <= 0 {
			continue
		}
		g.E[i] += dt * (g.Mx[i]*gx[i] + g.My[i]*gy[i] + g.Mz[i]*gz[i]) / rho
		g.Mx[i] += dt * rho * gx[i]
		g.My[i] += dt * rho * gy[i]
		g.Mz[i] += dt * rho * gz[i]
	}
	return nil
}

// Run advances the gas to tEnd with CFL-limited steps, returning the number
// of steps taken.
func (s *Solver) Run(tEnd float64) (int, error) {
	t, steps := 0.0, 0
	for t < tEnd {
		dt := s.MaxDt()
		if dt <= 0 {
			return steps, fmt.Errorf("hydro: vanishing time step at t=%g", t)
		}
		if t+dt > tEnd {
			dt = tEnd - t
		}
		if err := s.Step(dt); err != nil {
			return steps, err
		}
		t += dt
		steps++
		if steps > 1_000_000 {
			return steps, fmt.Errorf("hydro: step limit reached at t=%g", t)
		}
	}
	return steps, nil
}

// SodX initialises the classic Sod shock tube along x: left state
// (ρ=1, p=1), right state (ρ=0.125, p=0.1), gas at rest, interface at x=0.5.
// In the periodic box a mirror Riemann problem also fires at the x=0 wrap;
// tests sample regions those boundary waves have not reached.
func SodX(g *Grid) {
	for iz := 0; iz < g.NZ; iz++ {
		for iy := 0; iy < g.NY; iy++ {
			for ix := 0; ix < g.NX; ix++ {
				i := g.Idx(ix, iy, iz)
				if ix < g.NX/2 {
					g.SetPrimitive(i, 1, 0, 0, 0, 1)
				} else {
					g.SetPrimitive(i, 0.125, 0, 0, 0, 0.1)
				}
			}
		}
	}
}
