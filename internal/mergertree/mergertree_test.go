package mergertree

import (
	"testing"

	"repro/internal/halo"
)

// mkCatalog builds a catalog from (id, particle-IDs) pairs.
func mkCatalog(a float64, groups ...[]int64) *halo.Catalog {
	cat := &halo.Catalog{A: a, Box: 100}
	for i, ids := range groups {
		cat.Halos = append(cat.Halos, halo.Halo{
			ID: i, NPart: len(ids), Mass: float64(len(ids)), IDs: ids,
		})
	}
	return cat
}

func seq(lo, hi int64) []int64 {
	var out []int64
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, DefaultParams()); err == nil {
		t.Error("expected error for no catalogs")
	}
	if _, err := Build([]*halo.Catalog{mkCatalog(1)}, Params{MinSharedFraction: 2}); err == nil {
		t.Error("expected error for fraction > 1")
	}
}

func TestSimpleContinuity(t *testing.T) {
	// One halo keeps all its particles across two snapshots.
	cats := []*halo.Catalog{
		mkCatalog(0.5, seq(0, 100)),
		mkCatalog(1.0, seq(0, 100)),
	}
	f, err := Build(cats, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Nodes) != 2 {
		t.Fatalf("%d snapshots", len(f.Nodes))
	}
	early, late := f.Nodes[0][0], f.Nodes[1][0]
	if early.Descendant != late {
		t.Error("descendant link missing")
	}
	if len(late.Progenitors) != 1 || late.Progenitors[0] != early {
		t.Error("progenitor link missing")
	}
	if early.Shared != 100 {
		t.Errorf("shared = %d, want 100", early.Shared)
	}
}

func TestMergerDetected(t *testing.T) {
	// Two halos at t0 merge into one at t1.
	cats := []*halo.Catalog{
		mkCatalog(0.5, seq(0, 60), seq(100, 140)),
		mkCatalog(1.0, append(seq(0, 60), seq(100, 140)...)),
	}
	f, err := Build(cats, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	final := f.Nodes[1][0]
	if len(final.Progenitors) != 2 {
		t.Fatalf("%d progenitors, want 2", len(final.Progenitors))
	}
	// Main progenitor is the larger (60 shared > 40 shared).
	if final.Progenitors[0].Shared != 60 || final.Progenitors[1].Shared != 40 {
		t.Errorf("progenitors ordered %d,%d; want 60,40",
			final.Progenitors[0].Shared, final.Progenitors[1].Shared)
	}
	st := f.Stats()
	if st.Mergers != 1 {
		t.Errorf("Mergers = %d, want 1", st.Mergers)
	}
}

func TestFragmentationPicksMaxOverlap(t *testing.T) {
	// A halo splits: 70 particles to halo A, 30 to halo B. The progenitor
	// follows the majority.
	cats := []*halo.Catalog{
		mkCatalog(0.5, seq(0, 100)),
		mkCatalog(1.0, seq(0, 70), seq(70, 100)),
	}
	f, err := Build(cats, Params{MinSharedFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	early := f.Nodes[0][0]
	if early.Descendant != f.Nodes[1][0] {
		t.Error("descendant should be the 70-particle fragment")
	}
	if early.Shared != 70 {
		t.Errorf("shared = %d, want 70", early.Shared)
	}
}

func TestMinSharedFractionCutsWeakLinks(t *testing.T) {
	// Only 10 of 100 particles carry over: below the 0.5 threshold the halo
	// counts as dissolved.
	cats := []*halo.Catalog{
		mkCatalog(0.5, seq(0, 100)),
		mkCatalog(1.0, append(seq(0, 10), seq(500, 590)...)),
	}
	f, err := Build(cats, Params{MinSharedFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if f.Nodes[0][0].Descendant != nil {
		t.Error("weak link should be cut")
	}
	if st := f.Stats(); st.Dissolved != 1 {
		t.Errorf("Dissolved = %d, want 1", st.Dissolved)
	}
	// With threshold 0, the link survives.
	f2, err := Build(cats, Params{MinSharedFraction: 0})
	if err != nil {
		t.Fatal(err)
	}
	if f2.Nodes[0][0].Descendant == nil {
		t.Error("link should survive with zero threshold")
	}
}

func TestMainBranch(t *testing.T) {
	// Three snapshots: halo grows, absorbs a smaller one at the last step.
	cats := []*halo.Catalog{
		mkCatalog(0.3, seq(0, 50), seq(100, 120)),
		mkCatalog(0.6, seq(0, 50), seq(100, 120)),
		mkCatalog(1.0, append(seq(0, 50), seq(100, 120)...)),
	}
	f, err := Build(cats, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	root := f.Nodes[2][0]
	branch := MainBranch(root)
	if len(branch) != 3 {
		t.Fatalf("main branch length %d, want 3", len(branch))
	}
	if branch[len(branch)-1] != root {
		t.Error("main branch must end at the root")
	}
	for i := 1; i < len(branch); i++ {
		if branch[i-1].Snap >= branch[i].Snap {
			t.Error("main branch must be chronological")
		}
	}
	st := f.Stats()
	if st.MaxBranch != 3 {
		t.Errorf("MaxBranch = %d, want 3", st.MaxBranch)
	}
	if st.FinalHalos != 1 {
		t.Errorf("FinalHalos = %d, want 1", st.FinalHalos)
	}
}

func TestSingleSnapshotForest(t *testing.T) {
	f, err := Build([]*halo.Catalog{mkCatalog(1.0, seq(0, 30))}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Roots()) != 1 {
		t.Errorf("%d roots", len(f.Roots()))
	}
	st := f.Stats()
	if st.Links != 0 || st.Mergers != 0 {
		t.Errorf("unexpected links in single snapshot: %+v", st)
	}
}

func TestStatsCounts(t *testing.T) {
	cats := []*halo.Catalog{
		mkCatalog(0.5, seq(0, 40), seq(50, 90), seq(100, 140)),
		mkCatalog(1.0, append(seq(0, 40), seq(50, 90)...), seq(100, 140)),
	}
	f, err := Build(cats, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Halos != 5 {
		t.Errorf("Halos = %d, want 5", st.Halos)
	}
	if st.Links != 3 {
		t.Errorf("Links = %d, want 3", st.Links)
	}
	if st.Mergers != 1 {
		t.Errorf("Mergers = %d, want 1", st.Mergers)
	}
}
