// Package mergertree implements TreeMaker, the second GALICS stage: given
// the halo catalogs of successive snapshots it links each halo to its
// progenitors by shared member particles and "follows the position, the
// mass, the velocity of the different particles present in the halos through
// cosmic time" (paper §4), producing the merger forest GalaxyMaker consumes.
package mergertree

import (
	"fmt"
	"sort"

	"repro/internal/halo"
)

// Node is one halo at one snapshot, linked into its merger tree.
type Node struct {
	Snap        int     // snapshot index (chronological)
	HaloID      int     // ID within that snapshot's catalog
	Mass        float64 // M☉/h
	NPart       int
	Pos         [3]float64
	Vel         [3]float64
	Progenitors []*Node // ordered by shared-particle count descending
	Descendant  *Node   // nil for z=0 (final snapshot) halos
	Shared      int     // particles shared with the descendant
}

// Forest is the full set of merger trees across a snapshot sequence.
type Forest struct {
	Snaps []float64 // expansion factor per snapshot
	Nodes [][]*Node // Nodes[s][h] is halo h at snapshot s
}

// Params configures progenitor matching.
type Params struct {
	// MinSharedFraction is the minimum fraction of a progenitor's particles
	// that must end up in the descendant for the link to be kept.
	MinSharedFraction float64
}

// DefaultParams keeps any link carrying at least half the progenitor.
func DefaultParams() Params { return Params{MinSharedFraction: 0.5} }

// Build links the catalogs (in chronological order) into a merger forest.
func Build(cats []*halo.Catalog, params Params) (*Forest, error) {
	if len(cats) == 0 {
		return nil, fmt.Errorf("mergertree: need at least one catalog")
	}
	if params.MinSharedFraction < 0 || params.MinSharedFraction > 1 {
		return nil, fmt.Errorf("mergertree: MinSharedFraction must be in [0,1], got %g", params.MinSharedFraction)
	}
	f := &Forest{}
	for s, cat := range cats {
		f.Snaps = append(f.Snaps, cat.A)
		nodes := make([]*Node, len(cat.Halos))
		for h := range cat.Halos {
			hh := &cat.Halos[h]
			nodes[h] = &Node{
				Snap: s, HaloID: hh.ID, Mass: hh.Mass, NPart: hh.NPart,
				Pos: hh.Pos, Vel: hh.Vel,
			}
		}
		f.Nodes = append(f.Nodes, nodes)
		if s == 0 {
			continue
		}
		if err := link(cats[s-1], cat, f.Nodes[s-1], nodes, params); err != nil {
			return nil, fmt.Errorf("mergertree: linking snapshots %d→%d: %w", s-1, s, err)
		}
	}
	return f, nil
}

// link matches halos of the earlier catalog to descendants in the later one
// by maximum shared particle count.
func link(prev, next *halo.Catalog, prevNodes, nextNodes []*Node, params Params) error {
	// Map particle ID -> halo index in next.
	owner := make(map[int64]int)
	for h := range next.Halos {
		for _, id := range next.Halos[h].IDs {
			owner[id] = h
		}
	}
	for h := range prev.Halos {
		ph := &prev.Halos[h]
		counts := make(map[int]int)
		for _, id := range ph.IDs {
			if d, ok := owner[id]; ok {
				counts[d]++
			}
		}
		best, bestCount := -1, 0
		for d, c := range counts {
			if c > bestCount || (c == bestCount && (best == -1 || d < best)) {
				best, bestCount = d, c
			}
		}
		if best < 0 {
			continue // halo dissolved
		}
		if float64(bestCount) < params.MinSharedFraction*float64(ph.NPart) {
			continue // too little continuity to call it the same object
		}
		prevNodes[h].Descendant = nextNodes[best]
		prevNodes[h].Shared = bestCount
		nextNodes[best].Progenitors = append(nextNodes[best].Progenitors, prevNodes[h])
	}
	// Order progenitor lists by shared count (main progenitor first).
	for _, n := range nextNodes {
		sort.Slice(n.Progenitors, func(i, j int) bool {
			if n.Progenitors[i].Shared != n.Progenitors[j].Shared {
				return n.Progenitors[i].Shared > n.Progenitors[j].Shared
			}
			return n.Progenitors[i].HaloID < n.Progenitors[j].HaloID
		})
	}
	return nil
}

// Roots returns the nodes of the final snapshot — the tips of the trees.
func (f *Forest) Roots() []*Node {
	if len(f.Nodes) == 0 {
		return nil
	}
	return f.Nodes[len(f.Nodes)-1]
}

// MainBranch walks the main-progenitor line back in time from n, returning
// the chain ordered from earliest progenitor to n itself.
func MainBranch(n *Node) []*Node {
	var rev []*Node
	for cur := n; cur != nil; {
		rev = append(rev, cur)
		if len(cur.Progenitors) == 0 {
			break
		}
		cur = cur.Progenitors[0]
	}
	out := make([]*Node, len(rev))
	for i, v := range rev {
		out[len(rev)-1-i] = v
	}
	return out
}

// Stats summarises a forest.
type Stats struct {
	Snapshots  int
	Halos      int // total nodes
	Links      int // progenitor→descendant links
	Mergers    int // nodes with more than one progenitor
	MaxBranch  int // longest main branch
	Dissolved  int // halos with no descendant (except final snapshot)
	FinalHalos int
}

// Stats computes summary statistics for the forest.
func (f *Forest) Stats() Stats {
	var s Stats
	s.Snapshots = len(f.Nodes)
	for si, nodes := range f.Nodes {
		s.Halos += len(nodes)
		for _, n := range nodes {
			if len(n.Progenitors) > 1 {
				s.Mergers++
			}
			s.Links += len(n.Progenitors)
			if n.Descendant == nil && si != len(f.Nodes)-1 {
				s.Dissolved++
			}
		}
	}
	if len(f.Nodes) > 0 {
		s.FinalHalos = len(f.Nodes[len(f.Nodes)-1])
		for _, n := range f.Roots() {
			if b := len(MainBranch(n)); b > s.MaxBranch {
				s.MaxBranch = b
			}
		}
	}
	return s
}
