// Package galics implements GalaxyMaker, the third GALICS stage: a
// semi-analytical model (SAM) applied to the merger trees that turns
// dark-matter halo histories into a catalog of galaxies (paper §4). The
// recipe is the classic one: hot gas accretes with the halo, cools onto a
// disc, forms stars on a dynamical time, supernova feedback reheats cold
// gas, and mergers combine galaxies (with a starburst for major mergers).
package galics

import (
	"fmt"
	"math"

	"repro/internal/cosmo"
	"repro/internal/mergertree"
)

// Params holds the SAM efficiencies. Defaults are in the range the original
// GALICS papers (Hatton et al. 2003) explored.
type Params struct {
	BaryonFraction   float64 // Ωb/Ωm share of accreted mass entering the hot phase
	CoolingFraction  float64 // fraction of hot gas cooling per halo dynamical time
	SFEfficiency     float64 // fraction of cold gas turned to stars per dynamical time
	FeedbackEta      float64 // cold gas reheated per unit stellar mass formed
	MajorMergerRatio float64 // mass ratio above which a merger triggers a burst
	BurstEfficiency  float64 // fraction of cold gas consumed in a burst
	RecycleFraction  float64 // stellar mass instantaneously recycled to cold gas
}

// DefaultParams returns a reasonable GALICS-like parameter set.
func DefaultParams() Params {
	return Params{
		BaryonFraction:   0.17,
		CoolingFraction:  0.5,
		SFEfficiency:     0.1,
		FeedbackEta:      0.3,
		MajorMergerRatio: 0.25,
		BurstEfficiency:  0.6,
		RecycleFraction:  0.3,
	}
}

// Validate checks the parameters are in physical ranges.
func (p Params) Validate() error {
	frac := map[string]float64{
		"BaryonFraction":  p.BaryonFraction,
		"CoolingFraction": p.CoolingFraction,
		"SFEfficiency":    p.SFEfficiency,
		"BurstEfficiency": p.BurstEfficiency,
		"RecycleFraction": p.RecycleFraction,
	}
	for name, v := range frac {
		if v < 0 || v > 1 {
			return fmt.Errorf("galics: %s must be in [0,1], got %g", name, v)
		}
	}
	if p.FeedbackEta < 0 {
		return fmt.Errorf("galics: FeedbackEta must be >= 0, got %g", p.FeedbackEta)
	}
	if p.MajorMergerRatio <= 0 || p.MajorMergerRatio > 1 {
		return fmt.Errorf("galics: MajorMergerRatio must be in (0,1], got %g", p.MajorMergerRatio)
	}
	return nil
}

// Galaxy is the model galaxy hosted by one halo node.
type Galaxy struct {
	HaloID      int
	Snap        int
	Pos         [3]float64
	Vel         [3]float64
	HaloMass    float64 // M☉/h
	HotGas      float64 // M☉/h
	ColdGas     float64 // M☉/h
	StellarMass float64 // M☉/h
	SFR         float64 // M☉/h per Gyr, averaged over the last interval
	Bursts      int     // major-merger starbursts experienced
	Mergers     int     // total mergers absorbed
}

// Catalog is the galaxy population at the final snapshot.
type Catalog struct {
	A        float64
	Galaxies []Galaxy
}

// Run applies the SAM over the forest in chronological order and returns the
// galaxy catalog at the final snapshot.
func Run(f *mergertree.Forest, c *cosmo.Params, p Params) (*Catalog, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(f.Nodes) == 0 {
		return nil, fmt.Errorf("galics: empty forest")
	}
	// state[node] accumulates the galaxy through time.
	state := make(map[*mergertree.Node]*Galaxy)

	for s, nodes := range f.Nodes {
		a := f.Snaps[s]
		var dtGyr float64
		if s > 0 {
			dtGyr = c.AgeGyr(a) - c.AgeGyr(f.Snaps[s-1])
		}
		tdyn := dynamicalTimeGyr(c, a)
		for _, n := range nodes {
			g := &Galaxy{HaloID: n.HaloID, Snap: s, Pos: n.Pos, Vel: n.Vel, HaloMass: n.Mass}

			// Inherit baryons from progenitors; count mergers and bursts.
			var inheritedHalo float64
			var burst bool
			for i, prog := range n.Progenitors {
				pg := state[prog]
				if pg == nil {
					continue
				}
				g.HotGas += pg.HotGas
				g.ColdGas += pg.ColdGas
				g.StellarMass += pg.StellarMass
				g.Bursts += pg.Bursts
				g.Mergers += pg.Mergers
				inheritedHalo += pg.HaloMass
				if i > 0 {
					g.Mergers++
					main := state[n.Progenitors[0]]
					if main != nil && main.HaloMass > 0 &&
						pg.HaloMass/main.HaloMass >= p.MajorMergerRatio {
						burst = true
					}
				}
			}
			// Newly accreted halo mass brings baryons into the hot phase.
			if dm := n.Mass - inheritedHalo; dm > 0 {
				g.HotGas += p.BaryonFraction * dm
			}
			if s > 0 && dtGyr > 0 {
				steps := dtGyr / tdyn
				// Cooling: hot → cold.
				cool := g.HotGas * (1 - math.Pow(1-p.CoolingFraction, steps))
				g.HotGas -= cool
				g.ColdGas += cool
				// Star formation on the dynamical time.
				stars := g.ColdGas * (1 - math.Pow(1-p.SFEfficiency, steps))
				g.ColdGas -= stars
				// Feedback reheats cold gas proportionally to stars formed.
				reheat := math.Min(p.FeedbackEta*stars, g.ColdGas)
				g.ColdGas -= reheat
				g.HotGas += reheat
				// Instantaneous recycling.
				recycled := p.RecycleFraction * stars
				g.StellarMass += stars - recycled
				g.ColdGas += recycled
				g.SFR = stars / dtGyr
			}
			if burst {
				burstStars := p.BurstEfficiency * g.ColdGas
				g.ColdGas -= burstStars
				g.StellarMass += burstStars * (1 - p.RecycleFraction)
				g.ColdGas += burstStars * p.RecycleFraction
				g.Bursts++
			}
			state[n] = g
		}
	}

	final := f.Roots()
	cat := &Catalog{A: f.Snaps[len(f.Snaps)-1]}
	for _, n := range final {
		if g := state[n]; g != nil {
			cat.Galaxies = append(cat.Galaxies, *g)
		}
	}
	return cat, nil
}

// dynamicalTimeGyr is the halo dynamical time ~ 0.1/H(a), in Gyr.
func dynamicalTimeGyr(c *cosmo.Params, a float64) float64 {
	return 0.1 * c.HubbleTimeGyr() / c.E(a)
}

// StellarMassFunction bins the catalog's stellar masses into dex-wide bins of
// log10(M*) and returns bin centres and counts — a standard SAM diagnostic
// used in tests and examples.
func (cat *Catalog) StellarMassFunction(lo, hi float64, nbins int) (centers []float64, counts []int) {
	centers = make([]float64, nbins)
	counts = make([]int, nbins)
	width := (hi - lo) / float64(nbins)
	for i := range centers {
		centers[i] = lo + (float64(i)+0.5)*width
	}
	for _, g := range cat.Galaxies {
		if g.StellarMass <= 0 {
			continue
		}
		lm := math.Log10(g.StellarMass)
		if lm < lo || lm >= hi {
			continue
		}
		counts[int((lm-lo)/width)]++
	}
	return centers, counts
}

// TotalStellarMass sums the stellar mass of the catalog.
func (cat *Catalog) TotalStellarMass() float64 {
	var m float64
	for _, g := range cat.Galaxies {
		m += g.StellarMass
	}
	return m
}
