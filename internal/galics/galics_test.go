package galics

import (
	"math"
	"testing"

	"repro/internal/cosmo"
	"repro/internal/halo"
	"repro/internal/mergertree"
)

func mkForest(t *testing.T, cats []*halo.Catalog) *mergertree.Forest {
	t.Helper()
	f, err := mergertree.Build(cats, mergertree.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func catWith(a float64, groups ...[]int64) *halo.Catalog {
	cat := &halo.Catalog{A: a, Box: 100}
	for i, ids := range groups {
		cat.Halos = append(cat.Halos, halo.Halo{
			ID: i, NPart: len(ids), Mass: 1e12 * float64(len(ids)) / 100, IDs: ids,
		})
	}
	return cat
}

func seq(lo, hi int64) []int64 {
	var out []int64
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("defaults must validate: %v", err)
	}
	bad := DefaultParams()
	bad.SFEfficiency = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("SFEfficiency > 1 should fail")
	}
	bad = DefaultParams()
	bad.FeedbackEta = -0.1
	if err := bad.Validate(); err == nil {
		t.Error("negative FeedbackEta should fail")
	}
	bad = DefaultParams()
	bad.MajorMergerRatio = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero MajorMergerRatio should fail")
	}
}

func TestRunValidation(t *testing.T) {
	c := cosmo.WMAP3()
	f := &mergertree.Forest{}
	if _, err := Run(f, c, DefaultParams()); err == nil {
		t.Error("empty forest should fail")
	}
	good := mkForest(t, []*halo.Catalog{catWith(1.0, seq(0, 100))})
	bad := DefaultParams()
	bad.BaryonFraction = 2
	if _, err := Run(good, c, bad); err == nil {
		t.Error("invalid params should fail")
	}
}

func TestStarsFormOverTime(t *testing.T) {
	c := cosmo.WMAP3()
	// One halo persisting over five snapshots.
	var cats []*halo.Catalog
	for _, a := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		cats = append(cats, catWith(a, seq(0, 100)))
	}
	f := mkForest(t, cats)
	cat, err := Run(f, c, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Galaxies) != 1 {
		t.Fatalf("%d galaxies, want 1", len(cat.Galaxies))
	}
	g := cat.Galaxies[0]
	if g.StellarMass <= 0 {
		t.Error("no stars formed over 5 snapshots")
	}
	if g.ColdGas < 0 || g.HotGas < 0 {
		t.Errorf("negative gas reservoirs: cold %g hot %g", g.ColdGas, g.HotGas)
	}
}

func TestBaryonBudgetClosed(t *testing.T) {
	c := cosmo.WMAP3()
	var cats []*halo.Catalog
	for _, a := range []float64{0.25, 0.5, 0.75, 1.0} {
		cats = append(cats, catWith(a, seq(0, 200)))
	}
	f := mkForest(t, cats)
	p := DefaultParams()
	cat, err := Run(f, c, p)
	if err != nil {
		t.Fatal(err)
	}
	g := cat.Galaxies[0]
	// Total baryons = accreted fraction of the (constant-mass) halo.
	baryons := g.HotGas + g.ColdGas + g.StellarMass
	want := p.BaryonFraction * g.HaloMass
	if math.Abs(baryons-want)/want > 1e-9 {
		t.Errorf("baryon budget %g, want %g", baryons, want)
	}
}

func TestGrowingHaloAccretesMore(t *testing.T) {
	c := cosmo.WMAP3()
	constant := []*halo.Catalog{
		catWith(0.5, seq(0, 100)),
		catWith(1.0, seq(0, 100)),
	}
	growing := []*halo.Catalog{
		catWith(0.5, seq(0, 100)),
		catWith(1.0, seq(0, 200)), // doubled mass, same particles kept
	}
	// Keep particle continuity for the link.
	growing[1].Halos[0].IDs = seq(0, 200)
	pc, err := Run(mkForest(t, constant), c, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	pg, err := Run(mkForest(t, growing), c, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	bc := pc.Galaxies[0].HotGas + pc.Galaxies[0].ColdGas + pc.Galaxies[0].StellarMass
	bg := pg.Galaxies[0].HotGas + pg.Galaxies[0].ColdGas + pg.Galaxies[0].StellarMass
	if bg <= bc {
		t.Errorf("growing halo baryons %g should exceed constant halo's %g", bg, bc)
	}
}

func TestMajorMergerTriggersBurst(t *testing.T) {
	c := cosmo.WMAP3()
	// Two comparable halos merging -> major merger, burst.
	major := []*halo.Catalog{
		catWith(0.5, seq(0, 100), seq(200, 290)),
		catWith(1.0, append(seq(0, 100), seq(200, 290)...)),
	}
	// A tiny halo absorbed -> minor merger, no burst.
	minor := []*halo.Catalog{
		catWith(0.5, seq(0, 100), seq(200, 210)),
		catWith(1.0, append(seq(0, 100), seq(200, 210)...)),
	}
	gm, err := Run(mkForest(t, major), c, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	gn, err := Run(mkForest(t, minor), c, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if gm.Galaxies[0].Bursts != 1 {
		t.Errorf("major merger bursts = %d, want 1", gm.Galaxies[0].Bursts)
	}
	if gn.Galaxies[0].Bursts != 0 {
		t.Errorf("minor merger bursts = %d, want 0", gn.Galaxies[0].Bursts)
	}
	if gm.Galaxies[0].Mergers != 1 || gn.Galaxies[0].Mergers != 1 {
		t.Error("both cases absorb exactly one merger")
	}
}

func TestMergerCombinesBaryons(t *testing.T) {
	c := cosmo.WMAP3()
	merged := []*halo.Catalog{
		catWith(0.5, seq(0, 100), seq(200, 300)),
		catWith(1.0, append(seq(0, 100), seq(200, 300)...)),
	}
	cat, err := Run(mkForest(t, merged), c, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Galaxies) != 1 {
		t.Fatalf("%d galaxies after merger, want 1", len(cat.Galaxies))
	}
	g := cat.Galaxies[0]
	baryons := g.HotGas + g.ColdGas + g.StellarMass
	want := DefaultParams().BaryonFraction * g.HaloMass
	if math.Abs(baryons-want)/want > 1e-9 {
		t.Errorf("post-merger baryons %g, want %g", baryons, want)
	}
}

func TestFeedbackSuppressesStars(t *testing.T) {
	c := cosmo.WMAP3()
	var cats []*halo.Catalog
	for _, a := range []float64{0.25, 0.5, 0.75, 1.0} {
		cats = append(cats, catWith(a, seq(0, 100)))
	}
	weak := DefaultParams()
	weak.FeedbackEta = 0
	strong := DefaultParams()
	strong.FeedbackEta = 1.0
	gw, err := Run(mkForest(t, cats), c, weak)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := Run(mkForest(t, cats), c, strong)
	if err != nil {
		t.Fatal(err)
	}
	if gs.Galaxies[0].StellarMass >= gw.Galaxies[0].StellarMass {
		t.Errorf("stronger feedback should suppress stars: %g vs %g",
			gs.Galaxies[0].StellarMass, gw.Galaxies[0].StellarMass)
	}
}

func TestStellarMassFunction(t *testing.T) {
	cat := &Catalog{Galaxies: []Galaxy{
		{StellarMass: 1e9}, {StellarMass: 2e9}, {StellarMass: 5e10}, {StellarMass: 0},
	}}
	centers, counts := cat.StellarMassFunction(8, 12, 4)
	if len(centers) != 4 || len(counts) != 4 {
		t.Fatal("wrong bin count")
	}
	// 1e9 and 2e9 land in [9,10); 5e10 in [10,11); 0 is skipped.
	if counts[1] != 2 || counts[2] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if total := counts[0] + counts[1] + counts[2] + counts[3]; total != 3 {
		t.Errorf("binned %d galaxies, want 3", total)
	}
}

func TestTotalStellarMass(t *testing.T) {
	cat := &Catalog{Galaxies: []Galaxy{{StellarMass: 1}, {StellarMass: 2.5}}}
	if m := cat.TotalStellarMass(); m != 3.5 {
		t.Errorf("TotalStellarMass = %g", m)
	}
}
