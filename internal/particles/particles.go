// Package particles defines the dark-matter macro-particle representation
// shared by the initial-conditions generator, the N-body solver, and the
// post-processing pipeline (HaloMaker/TreeMaker/GalaxyMaker).
//
// Positions are comoving and expressed in top-level box units, i.e. each
// coordinate lives in [0, 1) with periodic wrapping. Velocities are peculiar
// velocities in km/s. Masses are in M☉/h.
package particles

import (
	"fmt"
	"math"
	"sort"
)

// Particle is one dark-matter macro-particle.
type Particle struct {
	Pos  [3]float64 // comoving position, box units [0,1)
	Vel  [3]float64 // peculiar velocity, km/s
	Mass float64    // M☉/h
	ID   int64      // unique, stable across snapshots (used by TreeMaker)
}

// Set is a collection of particles.
type Set []Particle

// TotalMass returns the summed mass of the set.
func (s Set) TotalMass() float64 {
	var m float64
	for i := range s {
		m += s[i].Mass
	}
	return m
}

// CenterOfMass returns the mass-weighted mean position. It does not attempt
// to unwrap periodic images; callers holding a compact group (e.g. a halo)
// should recentre with WrapAround first.
func (s Set) CenterOfMass() [3]float64 {
	var c [3]float64
	var m float64
	for i := range s {
		for d := 0; d < 3; d++ {
			c[d] += s[i].Mass * s[i].Pos[d]
		}
		m += s[i].Mass
	}
	if m > 0 {
		for d := 0; d < 3; d++ {
			c[d] /= m
		}
	}
	return c
}

// MeanVelocity returns the mass-weighted mean peculiar velocity.
func (s Set) MeanVelocity() [3]float64 {
	var v [3]float64
	var m float64
	for i := range s {
		for d := 0; d < 3; d++ {
			v[d] += s[i].Mass * s[i].Vel[d]
		}
		m += s[i].Mass
	}
	if m > 0 {
		for d := 0; d < 3; d++ {
			v[d] /= m
		}
	}
	return v
}

// Wrap maps a coordinate into [0, 1) periodically.
func Wrap(x float64) float64 {
	x -= math.Floor(x)
	if x >= 1 { // guard against -1e-18 flooring to -0 then 1.0
		x = 0
	}
	return x
}

// WrapAll wraps every particle position into the unit box.
func (s Set) WrapAll() {
	for i := range s {
		for d := 0; d < 3; d++ {
			s[i].Pos[d] = Wrap(s[i].Pos[d])
		}
	}
}

// PeriodicDelta returns the minimum-image separation a-b in a unit periodic
// box, a value in [-0.5, 0.5).
func PeriodicDelta(a, b float64) float64 {
	d := a - b
	d -= math.Round(d)
	return d
}

// Dist2 returns the squared minimum-image distance between two positions in
// the unit periodic box.
func Dist2(a, b [3]float64) float64 {
	var sum float64
	for d := 0; d < 3; d++ {
		dd := PeriodicDelta(a[d], b[d])
		sum += dd * dd
	}
	return sum
}

// SortByID orders the set by particle ID; snapshot writers use it so files
// are deterministic regardless of domain-decomposition order.
func (s Set) SortByID() {
	sort.Slice(s, func(i, j int) bool { return s[i].ID < s[j].ID })
}

// Validate checks structural invariants: wrapped positions, positive masses,
// unique IDs. Intended for tests and post-I/O sanity checks.
func (s Set) Validate() error {
	seen := make(map[int64]struct{}, len(s))
	for i := range s {
		p := &s[i]
		for d := 0; d < 3; d++ {
			if p.Pos[d] < 0 || p.Pos[d] >= 1 || math.IsNaN(p.Pos[d]) {
				return fmt.Errorf("particles: particle %d coordinate %d out of unit box: %g", p.ID, d, p.Pos[d])
			}
			if math.IsNaN(p.Vel[d]) || math.IsInf(p.Vel[d], 0) {
				return fmt.Errorf("particles: particle %d velocity %d not finite: %g", p.ID, d, p.Vel[d])
			}
		}
		if p.Mass <= 0 || math.IsNaN(p.Mass) {
			return fmt.Errorf("particles: particle %d has non-positive mass %g", p.ID, p.Mass)
		}
		if _, dup := seen[p.ID]; dup {
			return fmt.Errorf("particles: duplicate particle ID %d", p.ID)
		}
		seen[p.ID] = struct{}{}
	}
	return nil
}

// Clone returns a deep copy of the set.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// SelectSphere returns the particles within comoving radius r (box units) of
// center, using minimum-image distances. HaloMaker uses it to cut out the
// Lagrangian region around a halo for re-simulation.
func (s Set) SelectSphere(center [3]float64, r float64) Set {
	var out Set
	r2 := r * r
	for i := range s {
		if Dist2(s[i].Pos, center) <= r2 {
			out = append(out, s[i])
		}
	}
	return out
}
