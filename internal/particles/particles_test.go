package particles

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWrap(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {0.5, 0.5}, {1, 0}, {1.25, 0.25}, {-0.25, 0.75}, {-1, 0}, {2.5, 0.5},
	}
	for _, c := range cases {
		if got := Wrap(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Wrap(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestWrapProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
			return true // out of modelling range
		}
		w := Wrap(x)
		return w >= 0 && w < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPeriodicDelta(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0.1, 0.2, -0.1},
		{0.9, 0.1, -0.2}, // wraps around
		{0.1, 0.9, 0.2},
		{0.5, 0.5, 0},
	}
	for _, c := range cases {
		if got := PeriodicDelta(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PeriodicDelta(%g,%g) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestPeriodicDeltaRange(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = Wrap(math.Abs(math.Mod(a, 10))), Wrap(math.Abs(math.Mod(b, 10)))
		d := PeriodicDelta(a, b)
		return d >= -0.5 && d <= 0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDist2MinimumImage(t *testing.T) {
	a := [3]float64{0.95, 0.5, 0.5}
	b := [3]float64{0.05, 0.5, 0.5}
	if d := Dist2(a, b); math.Abs(d-0.01) > 1e-12 {
		t.Errorf("Dist2 across boundary = %g, want 0.01", d)
	}
	if d := Dist2(a, a); d != 0 {
		t.Errorf("Dist2(a,a) = %g", d)
	}
}

func TestTotalMassAndCOM(t *testing.T) {
	s := Set{
		{Pos: [3]float64{0.25, 0.5, 0.5}, Mass: 1, ID: 1},
		{Pos: [3]float64{0.75, 0.5, 0.5}, Mass: 3, ID: 2},
	}
	if m := s.TotalMass(); m != 4 {
		t.Errorf("TotalMass = %g, want 4", m)
	}
	com := s.CenterOfMass()
	if math.Abs(com[0]-0.625) > 1e-12 {
		t.Errorf("COM x = %g, want 0.625", com[0])
	}
}

func TestMeanVelocity(t *testing.T) {
	s := Set{
		{Pos: [3]float64{0.1, 0.1, 0.1}, Vel: [3]float64{100, 0, 0}, Mass: 1, ID: 1},
		{Pos: [3]float64{0.2, 0.2, 0.2}, Vel: [3]float64{-100, 50, 0}, Mass: 1, ID: 2},
	}
	v := s.MeanVelocity()
	if v[0] != 0 || v[1] != 25 {
		t.Errorf("MeanVelocity = %v, want [0 25 0]", v)
	}
}

func TestValidate(t *testing.T) {
	good := Set{
		{Pos: [3]float64{0.1, 0.2, 0.3}, Mass: 1, ID: 1},
		{Pos: [3]float64{0.4, 0.5, 0.6}, Mass: 2, ID: 2},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	cases := map[string]Set{
		"out of box":    {{Pos: [3]float64{1.5, 0, 0}, Mass: 1, ID: 1}},
		"negative mass": {{Pos: [3]float64{0.1, 0, 0}, Mass: -1, ID: 1}},
		"zero mass":     {{Pos: [3]float64{0.1, 0, 0}, Mass: 0, ID: 1}},
		"nan velocity":  {{Pos: [3]float64{0.1, 0, 0}, Vel: [3]float64{math.NaN(), 0, 0}, Mass: 1, ID: 1}},
		"duplicate id": {
			{Pos: [3]float64{0.1, 0, 0}, Mass: 1, ID: 7},
			{Pos: [3]float64{0.2, 0, 0}, Mass: 1, ID: 7},
		},
	}
	for name, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestWrapAll(t *testing.T) {
	s := Set{{Pos: [3]float64{1.5, -0.25, 0.5}, Mass: 1, ID: 1}}
	s.WrapAll()
	want := [3]float64{0.5, 0.75, 0.5}
	for d := 0; d < 3; d++ {
		if math.Abs(s[0].Pos[d]-want[d]) > 1e-12 {
			t.Errorf("dim %d: %g, want %g", d, s[0].Pos[d], want[d])
		}
	}
	if err := s.Validate(); err != nil {
		t.Errorf("wrapped set should validate: %v", err)
	}
}

func TestSortByID(t *testing.T) {
	s := Set{{ID: 3, Mass: 1}, {ID: 1, Mass: 1}, {ID: 2, Mass: 1}}
	s.SortByID()
	for i, want := range []int64{1, 2, 3} {
		if s[i].ID != want {
			t.Errorf("position %d: ID %d, want %d", i, s[i].ID, want)
		}
	}
}

func TestClone(t *testing.T) {
	s := Set{{Pos: [3]float64{0.1, 0.2, 0.3}, Mass: 1, ID: 1}}
	c := s.Clone()
	c[0].Pos[0] = 0.9
	if s[0].Pos[0] != 0.1 {
		t.Error("Clone shares backing storage with the original")
	}
}

func TestSelectSphere(t *testing.T) {
	s := Set{
		{Pos: [3]float64{0.5, 0.5, 0.5}, Mass: 1, ID: 1},
		{Pos: [3]float64{0.58, 0.5, 0.5}, Mass: 1, ID: 2},
		{Pos: [3]float64{0.9, 0.5, 0.5}, Mass: 1, ID: 3},
	}
	got := s.SelectSphere([3]float64{0.5, 0.5, 0.5}, 0.1)
	if len(got) != 2 {
		t.Fatalf("selected %d particles, want 2", len(got))
	}
	// Periodic selection: a sphere at the origin catches particles near 1.
	edge := Set{{Pos: [3]float64{0.98, 0.0, 0.0}, Mass: 1, ID: 4}}
	if got := edge.SelectSphere([3]float64{0.01, 0, 0}, 0.05); len(got) != 1 {
		t.Error("SelectSphere must use minimum-image distances")
	}
}
