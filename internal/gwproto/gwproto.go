// Package gwproto is the versioned wire contract of the client gateway's
// HTTP JSON API. It is a leaf package: the diet client imports it to speak
// to a gateway (WithGateway), and the gateway imports it to serve, so the
// two cannot drift apart — and neither import direction cycles.
//
// Every request and reply carries an explicit SchemaVersion (the same idiom
// as cori snapshots and the diet peer-forward RPCs); a server rejects any
// version it does not speak with HTTP 400 rather than misparsing it. Bump
// Version on any incompatible change.
package gwproto

import "errors"

// Version is the wire schema of the gateway HTTP API (/api/v1).
const Version = 1

// ErrOverload is returned (and mapped to HTTP 503) when the gateway's
// admission queue is full and the request is shed instead of queued. Typed
// so callers can back off on exactly this condition:
//
//	if errors.Is(err, gwproto.ErrOverload) { backoff() }
var ErrOverload = errors.New("gateway: overloaded, request shed")

// Arg is one profile argument on the wire, a tagged union keyed by Kind.
// Exactly one payload field is meaningful per kind: Int for scalar/int,
// Double for scalar/double, Vector for vector/double, Matrix (+Rows/Cols)
// for matrix/double, Str for string, FileName+File for file. A Kind of ""
// is an untyped placeholder (an OUT argument the server will fill).
type Arg struct {
	Kind    string `json:"kind,omitempty"`    // "scalar"|"vector"|"matrix"|"string"|"file"
	Base    string `json:"base,omitempty"`    // "char"|"int"|"double"
	Persist string `json:"persist,omitempty"` // "volatile" (default)|"persistent"|"sticky"

	Int    *int64    `json:"int,omitempty"`
	Double *float64  `json:"double,omitempty"`
	Vector []float64 `json:"vector,omitempty"`
	Matrix []float64 `json:"matrix,omitempty"` // row major, Rows×Cols
	Rows   int       `json:"rows,omitempty"`
	Cols   int       `json:"cols,omitempty"`
	Str    *string   `json:"string,omitempty"`

	FileName string `json:"file_name,omitempty"`
	File     []byte `json:"file,omitempty"` // JSON base64

	// DataID refers to persistent data already resident on a server, in
	// place of an inline payload.
	DataID string `json:"data_id,omitempty"`
}

// SolveRequest is the body of POST /api/v1/solve: a full problem profile in
// the DIET index convention (args[0..last_in] IN, (last_in..last_inout]
// INOUT, (last_inout..last_out] OUT).
type SolveRequest struct {
	SchemaVersion int     `json:"schema_version"`
	Service       string  `json:"service"`
	WorkGFlops    float64 `json:"work_gflops,omitempty"`
	LastIn        int     `json:"last_in"`
	LastInOut     int     `json:"last_inout"`
	LastOut       int     `json:"last_out"`
	Args          []Arg   `json:"args,omitempty"`
}

// SolveReply is the success body of POST /api/v1/solve. Args is the full
// post-solve argument list (INOUT and OUT filled by the server).
type SolveReply struct {
	SchemaVersion int    `json:"schema_version"`
	Server        string `json:"server"`     // chosen SeD
	RequestID     string `json:"request_id"` // trace identity across the span bus
	LastIn        int    `json:"last_in"`
	LastInOut     int    `json:"last_inout"`
	LastOut       int    `json:"last_out"`
	Args          []Arg  `json:"args,omitempty"`
	Timing        Timing `json:"timing"`
}

// Timing decomposes one gateway call, the Figure-6 quantities in
// milliseconds plus the gateway's own admission wait.
type Timing struct {
	AdmissionMS float64 `json:"admission_ms"` // wait in the gateway queue
	FindingMS   float64 `json:"finding_ms"`   // MA round trip (0 for batch followers)
	QueueMS     float64 `json:"queue_ms"`     // SeD queue wait
	ComputeMS   float64 `json:"compute_ms"`
	TotalMS     float64 `json:"total_ms"`
}

// ErrorReply is the body of any non-2xx API response. Overloaded marks an
// admission-control shed (HTTP 503): the client should back off, the
// request was never submitted.
type ErrorReply struct {
	SchemaVersion int    `json:"schema_version"`
	Error         string `json:"error"`
	Overloaded    bool   `json:"overloaded,omitempty"`
}

// MAStatus is one upstream Master Agent's slice of the gateway status.
type MAStatus struct {
	Name      string `json:"name"`
	Submitted int64  `json:"submitted"` // finding-phase submissions routed here
	Failed    int64  `json:"failed"`    // submissions that errored
}

// StatusReply is the body of GET /api/v1/status.
type StatusReply struct {
	SchemaVersion int        `json:"schema_version"`
	MAs           []MAStatus `json:"mas"`
	QueueDepth    int        `json:"queue_depth"` // requests currently admitted or queued
	QueueCap      int        `json:"queue_cap"`
	Submitted     int64      `json:"submitted"` // calls admitted since start
	Shed          int64      `json:"shed"`      // calls rejected with ErrOverload
	Batched       int64      `json:"batched"`   // calls that rode another call's finding phase
	Batches       int64      `json:"batches"`   // finding phases shared by >1 call
	Solved        int64      `json:"solved"`
	Errors        int64      `json:"errors"`
}
