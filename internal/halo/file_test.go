package halo

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleCatalog(t *testing.T) *Catalog {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	parts := clump(rng, [3]float64{0.3, 0.3, 0.3}, 120, 0.004, 0)
	parts = append(parts, clump(rng, [3]float64{0.7, 0.7, 0.7}, 60, 0.004, 1000)...)
	cat, err := FindHalos(parts, 0.5, 100, Params{LinkingLength: 0.3, MinParticles: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Halos) < 2 {
		t.Fatalf("sample catalog has %d halos", len(cat.Halos))
	}
	return cat
}

func TestCatalogRoundTrip(t *testing.T) {
	cat := sampleCatalog(t)
	var buf bytes.Buffer
	if err := WriteCatalog(&buf, cat); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCatalog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.A != cat.A || got.Box != cat.Box || got.BValue != cat.BValue || got.NPart != cat.NPart {
		t.Errorf("metadata mismatch: %+v vs %+v", got, cat)
	}
	if len(got.Halos) != len(cat.Halos) {
		t.Fatalf("%d halos, want %d", len(got.Halos), len(cat.Halos))
	}
	for i := range cat.Halos {
		if !reflect.DeepEqual(got.Halos[i], cat.Halos[i]) {
			t.Errorf("halo %d differs:\n got %+v\nwant %+v", i, got.Halos[i], cat.Halos[i])
		}
	}
}

func TestCatalogFileRoundTrip(t *testing.T) {
	cat := sampleCatalog(t)
	path := filepath.Join(t.TempDir(), "out", "halos.dat")
	if err := SaveCatalog(path, cat); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCatalog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Halos) != len(cat.Halos) {
		t.Errorf("%d halos, want %d", len(got.Halos), len(cat.Halos))
	}
}

func TestReadCatalogRejectsGarbage(t *testing.T) {
	if _, err := ReadCatalog(bytes.NewReader([]byte("not a catalog"))); err == nil {
		t.Error("expected error for garbage input")
	}
	var empty bytes.Buffer
	if _, err := ReadCatalog(&empty); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestEmptyCatalogRoundTrip(t *testing.T) {
	cat := &Catalog{A: 1, Box: 100, BValue: 0.2}
	var buf bytes.Buffer
	if err := WriteCatalog(&buf, cat); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCatalog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Halos) != 0 {
		t.Errorf("expected empty catalog, got %d halos", len(got.Halos))
	}
}
