package halo

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/fortranio"
)

// The catalog file layout follows the GALICS "tree_brick" spirit: a header
// record with snapshot metadata, then per-halo records (properties followed
// by the member particle ID list). Everything is framed as Fortran
// unformatted records so the files round-trip through the same fortranio
// layer the simulation snapshots use.

// WriteCatalog writes the catalog to w.
func WriteCatalog(w io.Writer, c *Catalog) error {
	fw := fortranio.NewWriter(w)
	if err := fw.WriteFloat64s([]float64{c.A, c.Box, c.BValue, float64(c.NPart)}); err != nil {
		return err
	}
	if err := fw.WriteInt32(int32(len(c.Halos))); err != nil {
		return err
	}
	for i := range c.Halos {
		h := &c.Halos[i]
		props := []float64{
			float64(h.ID), float64(h.NPart), h.Mass,
			h.Pos[0], h.Pos[1], h.Pos[2],
			h.Vel[0], h.Vel[1], h.Vel[2],
			h.R,
		}
		if err := fw.WriteFloat64s(props); err != nil {
			return err
		}
		ids := make([]byte, 8*len(h.IDs))
		for j, id := range h.IDs {
			for b := 0; b < 8; b++ {
				ids[8*j+b] = byte(id >> (8 * b))
			}
		}
		if err := fw.WriteRecord(ids); err != nil {
			return err
		}
	}
	return nil
}

// ReadCatalog reads a catalog written by WriteCatalog.
func ReadCatalog(r io.Reader) (*Catalog, error) {
	fr := fortranio.NewReader(r)
	head, err := fr.ReadFloat64s()
	if err != nil {
		return nil, err
	}
	if len(head) != 4 {
		return nil, fmt.Errorf("halo: catalog header has %d fields, want 4", len(head))
	}
	c := &Catalog{A: head[0], Box: head[1], BValue: head[2], NPart: int(head[3])}
	nh, err := fr.ReadInt32()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(nh); i++ {
		props, err := fr.ReadFloat64s()
		if err != nil {
			return nil, fmt.Errorf("halo: reading halo %d properties: %w", i, err)
		}
		if len(props) != 10 {
			return nil, fmt.Errorf("halo: halo %d has %d properties, want 10", i, len(props))
		}
		h := Halo{
			ID:    int(props[0]),
			NPart: int(props[1]),
			Mass:  props[2],
			Pos:   [3]float64{props[3], props[4], props[5]},
			Vel:   [3]float64{props[6], props[7], props[8]},
			R:     props[9],
		}
		raw, err := fr.ReadRecord()
		if err != nil {
			return nil, fmt.Errorf("halo: reading halo %d member IDs: %w", i, err)
		}
		if len(raw)%8 != 0 {
			return nil, fmt.Errorf("halo: halo %d ID record length %d not multiple of 8", i, len(raw))
		}
		h.IDs = make([]int64, len(raw)/8)
		for j := range h.IDs {
			var v uint64
			for b := 0; b < 8; b++ {
				v |= uint64(raw[8*j+b]) << (8 * b)
			}
			h.IDs[j] = int64(v)
		}
		c.Halos = append(c.Halos, h)
	}
	return c, nil
}

// SaveCatalog writes the catalog to path, creating parent directories.
func SaveCatalog(path string, c *Catalog) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := WriteCatalog(bw, c); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCatalog reads a catalog from path.
func LoadCatalog(path string) (*Catalog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCatalog(bufio.NewReader(f))
}
