package halo

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/particles"
)

// clump drops n particles in a Gaussian ball of width sigma at center.
func clump(rng *rand.Rand, center [3]float64, n int, sigma float64, idBase int64) particles.Set {
	var out particles.Set
	for i := 0; i < n; i++ {
		var p particles.Particle
		for d := 0; d < 3; d++ {
			p.Pos[d] = particles.Wrap(center[d] + sigma*rng.NormFloat64())
			p.Vel[d] = 100 * rng.NormFloat64()
		}
		p.Mass = 1
		p.ID = idBase + int64(i)
		out = append(out, p)
	}
	return out
}

func TestFindHalosValidation(t *testing.T) {
	if _, err := FindHalos(nil, 1, 100, Params{LinkingLength: 0, MinParticles: 20}); err == nil {
		t.Error("expected error for zero linking length")
	}
	if _, err := FindHalos(nil, 1, 100, Params{LinkingLength: 0.2, MinParticles: 0}); err == nil {
		t.Error("expected error for MinParticles 0")
	}
}

func TestEmptySet(t *testing.T) {
	cat, err := FindHalos(nil, 1, 100, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Halos) != 0 || cat.NPart != 0 {
		t.Errorf("empty catalog expected, got %+v", cat)
	}
}

func TestTwoClumpsFound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Background of 4000 scattered particles gives a mean separation of
	// ~0.063, so the linking length is ~0.0126; clumps of width 0.003 link.
	var parts particles.Set
	for i := 0; i < 4000; i++ {
		parts = append(parts, particles.Particle{
			Pos:  [3]float64{rng.Float64(), rng.Float64(), rng.Float64()},
			Mass: 1, ID: int64(i),
		})
	}
	parts = append(parts, clump(rng, [3]float64{0.25, 0.25, 0.25}, 200, 0.003, 10000)...)
	parts = append(parts, clump(rng, [3]float64{0.75, 0.75, 0.75}, 100, 0.003, 20000)...)

	cat, err := FindHalos(parts, 1, 100, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Halos) < 2 {
		t.Fatalf("found %d halos, want at least the two planted clumps", len(cat.Halos))
	}
	// The two most massive halos are the planted clumps, ordered by mass.
	h0, h1 := cat.Halos[0], cat.Halos[1]
	if h0.Mass < h1.Mass {
		t.Error("catalog not sorted by mass")
	}
	if h0.NPart < 180 {
		t.Errorf("main clump has %d members, want ≈200", h0.NPart)
	}
	near := func(h Halo, want [3]float64) bool {
		return particles.Dist2(h.Pos, want) < 0.02*0.02
	}
	if !near(h0, [3]float64{0.25, 0.25, 0.25}) {
		t.Errorf("main halo at %v, want near 0.25³", h0.Pos)
	}
	if !near(h1, [3]float64{0.75, 0.75, 0.75}) {
		t.Errorf("second halo at %v, want near 0.75³", h1.Pos)
	}
}

func TestMinParticlesFilters(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	parts := clump(rng, [3]float64{0.5, 0.5, 0.5}, 10, 0.001, 0)
	cat, err := FindHalos(parts, 1, 100, Params{LinkingLength: 0.2, MinParticles: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Halos) != 0 {
		t.Errorf("10-particle group passed a MinParticles=20 filter")
	}
	cat, err = FindHalos(parts, 1, 100, Params{LinkingLength: 0.2, MinParticles: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Halos) != 1 {
		t.Errorf("expected 1 halo with MinParticles=5, got %d", len(cat.Halos))
	}
}

func TestPeriodicHalo(t *testing.T) {
	// A clump straddling the box corner must come out as one halo with its
	// centre near the corner, not averaged to the box middle.
	rng := rand.New(rand.NewSource(13))
	parts := clump(rng, [3]float64{0.001, 0.001, 0.001}, 150, 0.004, 0)
	cat, err := FindHalos(parts, 1, 100, Params{LinkingLength: 0.3, MinParticles: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Halos) != 1 {
		t.Fatalf("corner clump found as %d halos, want 1", len(cat.Halos))
	}
	h := cat.Halos[0]
	d2 := particles.Dist2(h.Pos, [3]float64{0.001, 0.001, 0.001})
	if d2 > 0.01*0.01 {
		t.Errorf("corner halo centre %v, want near the origin corner", h.Pos)
	}
}

func TestHaloProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	parts := clump(rng, [3]float64{0.4, 0.6, 0.5}, 300, 0.005, 0)
	cat, err := FindHalos(parts, 0.5, 100, Params{LinkingLength: 0.3, MinParticles: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Halos) != 1 {
		t.Fatalf("%d halos, want 1", len(cat.Halos))
	}
	h := cat.Halos[0]
	if h.Mass != float64(h.NPart) {
		t.Errorf("unit-mass halo mass %g != npart %d", h.Mass, h.NPart)
	}
	if h.R <= 0 || h.R > 0.05 {
		t.Errorf("halo radius %g implausible for sigma=0.005", h.R)
	}
	if len(h.IDs) != h.NPart {
		t.Errorf("%d IDs for %d members", len(h.IDs), h.NPart)
	}
	for i := 1; i < len(h.IDs); i++ {
		if h.IDs[i] <= h.IDs[i-1] {
			t.Fatal("member IDs must be sorted and unique")
		}
	}
	if cat.A != 0.5 || cat.Box != 100 {
		t.Errorf("catalog metadata %+v", cat)
	}
}

func TestMembershipInvariants(t *testing.T) {
	// Every particle belongs to at most one halo; halo sizes respect the
	// minimum; total catalogued particles <= input particles.
	rng := rand.New(rand.NewSource(31))
	var parts particles.Set
	for i := 0; i < 1000; i++ {
		parts = append(parts, particles.Particle{
			Pos:  [3]float64{rng.Float64(), rng.Float64(), rng.Float64()},
			Mass: 1, ID: int64(i),
		})
	}
	parts = append(parts, clump(rng, [3]float64{0.3, 0.3, 0.3}, 80, 0.002, 5000)...)
	cat, err := FindHalos(parts, 1, 100, Params{LinkingLength: 0.2, MinParticles: 10})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	total := 0
	for _, h := range cat.Halos {
		if h.NPart < 10 {
			t.Errorf("halo %d smaller than MinParticles", h.ID)
		}
		total += h.NPart
		for _, id := range h.IDs {
			if seen[id] {
				t.Fatalf("particle %d in two halos", id)
			}
			seen[id] = true
		}
	}
	if total > len(parts) {
		t.Errorf("catalogued %d members from %d particles", total, len(parts))
	}
}

func TestLinkingLengthMonotonicity(t *testing.T) {
	// A larger linking length can only merge groups, never create more
	// top-level halos out of the same particle set.
	rng := rand.New(rand.NewSource(41))
	var parts particles.Set
	for i := 0; i < 3000; i++ {
		parts = append(parts, particles.Particle{
			Pos:  [3]float64{rng.Float64(), rng.Float64(), rng.Float64()},
			Mass: 1, ID: int64(i),
		})
	}
	catSmall, err := FindHalos(parts, 1, 100, Params{LinkingLength: 0.15, MinParticles: 2})
	if err != nil {
		t.Fatal(err)
	}
	catBig, err := FindHalos(parts, 1, 100, Params{LinkingLength: 0.4, MinParticles: 2})
	if err != nil {
		t.Fatal(err)
	}
	countMembers := func(c *Catalog) int {
		n := 0
		for _, h := range c.Halos {
			n += h.NPart
		}
		return n
	}
	if countMembers(catBig) < countMembers(catSmall) {
		t.Error("larger linking length should link at least as many particles")
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	parts := clump(rng, [3]float64{0.5, 0.5, 0.5}, 100, 0.01, 0)
	a, err := FindHalos(parts, 1, 100, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := FindHalos(parts, 1, 100, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Halos) != len(b.Halos) {
		t.Fatal("halo count differs between runs")
	}
	for i := range a.Halos {
		if a.Halos[i].NPart != b.Halos[i].NPart ||
			math.Abs(a.Halos[i].Mass-b.Halos[i].Mass) > 0 {
			t.Fatal("catalog not deterministic")
		}
	}
}
