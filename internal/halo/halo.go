// Package halo implements HaloMaker, the first GALICS post-processing stage:
// it detects dark-matter halos in a RAMSES snapshot with the friends-of-
// friends (FoF) algorithm and produces the catalog of halo positions, masses
// and velocities from which the zoom targets are selected (paper §4).
package halo

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/particles"
)

// Params configures the FoF finder.
type Params struct {
	LinkingLength float64 // b, in units of the mean inter-particle separation (standard 0.2)
	MinParticles  int     // discard groups smaller than this (standard 20)
}

// DefaultParams returns the community-standard FoF configuration.
func DefaultParams() Params { return Params{LinkingLength: 0.2, MinParticles: 20} }

// Halo is one detected dark-matter halo.
type Halo struct {
	ID    int        // catalog index, densest first
	NPart int        // member particle count
	Mass  float64    // total member mass, M☉/h
	Pos   [3]float64 // centre of mass, box units (periodically unwrapped)
	Vel   [3]float64 // mass-weighted mean peculiar velocity, km/s
	R     float64    // RMS member distance from centre, box units
	IDs   []int64    // member particle IDs, sorted (TreeMaker matches on these)
}

// Catalog is a set of halos found in one snapshot, sorted by mass descending.
type Catalog struct {
	A      float64 // expansion factor of the snapshot
	Box    float64 // box size, Mpc/h
	Halos  []Halo
	NPart  int // particles in the searched snapshot
	BValue float64
}

// FindHalos runs friends-of-friends on the particle set. The linking length
// is params.LinkingLength × n^(−1/3) in box units, where n is the particle
// count: two particles are friends when closer than that, and halos are the
// transitive closures. A cell grid of the linking length's size reduces the
// pair search to the 27 neighbouring cells.
func FindHalos(parts particles.Set, a, box float64, params Params) (*Catalog, error) {
	if params.LinkingLength <= 0 {
		return nil, fmt.Errorf("halo: linking length must be positive, got %g", params.LinkingLength)
	}
	if params.MinParticles < 1 {
		return nil, fmt.Errorf("halo: MinParticles must be >= 1, got %d", params.MinParticles)
	}
	n := len(parts)
	cat := &Catalog{A: a, Box: box, NPart: n, BValue: params.LinkingLength}
	if n == 0 {
		return cat, nil
	}
	link := params.LinkingLength / math.Cbrt(float64(n))
	link2 := link * link

	// Bin particles on a grid with cell >= linking length so that all
	// friends of a particle lie in the 27 surrounding cells.
	ncell := int(1 / link)
	if ncell < 1 {
		ncell = 1
	}
	if ncell > 256 {
		ncell = 256
	}
	cellOf := func(pos [3]float64) int {
		ix := int(particles.Wrap(pos[0]) * float64(ncell))
		iy := int(particles.Wrap(pos[1]) * float64(ncell))
		iz := int(particles.Wrap(pos[2]) * float64(ncell))
		if ix >= ncell {
			ix = ncell - 1
		}
		if iy >= ncell {
			iy = ncell - 1
		}
		if iz >= ncell {
			iz = ncell - 1
		}
		return (iz*ncell+iy)*ncell + ix
	}
	cells := make(map[int][]int)
	for i := range parts {
		c := cellOf(parts[i].Pos)
		cells[c] = append(cells[c], i)
	}

	uf := newUnionFind(n)
	mod := func(v int) int {
		v %= ncell
		if v < 0 {
			v += ncell
		}
		return v
	}
	for i := range parts {
		pi := parts[i].Pos
		ix := int(particles.Wrap(pi[0]) * float64(ncell))
		iy := int(particles.Wrap(pi[1]) * float64(ncell))
		iz := int(particles.Wrap(pi[2]) * float64(ncell))
		for dz := -1; dz <= 1; dz++ {
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					c := (mod(iz+dz)*ncell+mod(iy+dy))*ncell + mod(ix+dx)
					for _, j := range cells[c] {
						if j <= i {
							continue // each pair once
						}
						if particles.Dist2(pi, parts[j].Pos) <= link2 {
							uf.union(i, j)
						}
					}
				}
			}
		}
	}

	// Collect groups.
	groups := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := uf.find(i)
		groups[r] = append(groups[r], i)
	}
	for _, members := range groups {
		if len(members) < params.MinParticles {
			continue
		}
		cat.Halos = append(cat.Halos, makeHalo(parts, members))
	}
	sort.Slice(cat.Halos, func(i, j int) bool {
		if cat.Halos[i].Mass != cat.Halos[j].Mass {
			return cat.Halos[i].Mass > cat.Halos[j].Mass
		}
		return cat.Halos[i].IDs[0] < cat.Halos[j].IDs[0] // deterministic tie-break
	})
	for i := range cat.Halos {
		cat.Halos[i].ID = i
	}
	return cat, nil
}

// makeHalo aggregates the member particles into a Halo, unwrapping periodic
// images around the first member so the centre of mass is meaningful for
// groups straddling the box edge.
func makeHalo(parts particles.Set, members []int) Halo {
	ref := parts[members[0]].Pos
	var h Halo
	h.NPart = len(members)
	var com [3]float64
	for _, idx := range members {
		p := &parts[idx]
		h.Mass += p.Mass
		for d := 0; d < 3; d++ {
			com[d] += p.Mass * (ref[d] + particles.PeriodicDelta(p.Pos[d], ref[d]))
			h.Vel[d] += p.Mass * p.Vel[d]
		}
		h.IDs = append(h.IDs, p.ID)
	}
	for d := 0; d < 3; d++ {
		com[d] /= h.Mass
		h.Vel[d] /= h.Mass
		com[d] = particles.Wrap(com[d])
	}
	h.Pos = com
	var r2sum float64
	for _, idx := range members {
		r2sum += parts[idx].Mass * particles.Dist2(parts[idx].Pos, com)
	}
	h.R = math.Sqrt(r2sum / h.Mass)
	sort.Slice(h.IDs, func(i, j int) bool { return h.IDs[i] < h.IDs[j] })
	return h
}

// unionFind is a weighted quick-union with path compression.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
}
