// Package platform models the hardware the paper ran on: Grid'5000, the
// French research grid — sites connected by the RENATER network, clusters of
// AMD Opteron nodes, and the paper's exact deployment of 1 Master Agent, 6
// Local Agents and 11 SeDs each controlling 16 machines (§6.1). The
// discrete-event simulator consumes this model to regenerate the paper's
// measurements at full scale.
package platform

import (
	"fmt"
	"time"
)

// CPU is a processor model with its sustained floating-point rate.
type CPU struct {
	Model  string
	GHz    float64
	GFlops float64 // sustained per-core rate for the PM workload
}

// The Opteron SKUs the paper lists (§6.1). Sustained GFlops follow the
// 2 flop/cycle SSE2 peak of the K8 core scaled by clock; the 275 is the
// dual-core part, which helps the MPI solver and is credited accordingly.
var (
	Opteron246 = CPU{Model: "Opteron 246", GHz: 2.0, GFlops: 4.0}
	Opteron248 = CPU{Model: "Opteron 248", GHz: 2.2, GFlops: 4.4}
	Opteron250 = CPU{Model: "Opteron 250", GHz: 2.4, GFlops: 4.8}
	Opteron252 = CPU{Model: "Opteron 252", GHz: 2.6, GFlops: 5.2}
	Opteron275 = CPU{Model: "Opteron 275", GHz: 2.2, GFlops: 5.7} // 2×2.2 GHz cores, MPI-efficiency ~0.65
)

// Cluster is one homogeneous set of nodes at a site.
type Cluster struct {
	Name  string
	Site  string
	Nodes int
	CPU   CPU
}

// Site is one Grid'5000 location.
type Site struct {
	Name     string
	Clusters []Cluster
}

// Platform is the full grid: sites plus the wide-area network between them.
type Platform struct {
	Sites []Site
	// WANLatency is the one-way latency between two distinct sites.
	WANLatency time.Duration
	// LANLatency is the one-way latency inside a site.
	LANLatency time.Duration
	// WANBandwidthMbps is the RENATER backbone rate (1 Gb/s in 2007).
	WANBandwidthMbps float64
}

// Grid5000 returns the five-site, six-cluster platform of the experiment:
// two clusters in Lyon (capricorne: Opteron 246, sagittaire: Opteron 250)
// and one each in Lille (248), Nancy (275), Toulouse (246) and Sophia (252).
// CPU assignments follow the Grid'5000 inventory of the era, arranged so the
// fastest cluster (Nancy) and the slowest (Toulouse) match the paper's
// Figure 5 ordering.
func Grid5000() *Platform {
	return &Platform{
		Sites: []Site{
			{Name: "Lyon", Clusters: []Cluster{
				{Name: "capricorne", Site: "Lyon", Nodes: 56, CPU: Opteron246},
				{Name: "sagittaire", Site: "Lyon", Nodes: 79, CPU: Opteron250},
			}},
			{Name: "Lille", Clusters: []Cluster{
				{Name: "chti", Site: "Lille", Nodes: 53, CPU: Opteron248},
			}},
			{Name: "Nancy", Clusters: []Cluster{
				{Name: "grillon", Site: "Nancy", Nodes: 47, CPU: Opteron275},
			}},
			{Name: "Toulouse", Clusters: []Cluster{
				{Name: "violette", Site: "Toulouse", Nodes: 57, CPU: Opteron246},
			}},
			{Name: "Sophia", Clusters: []Cluster{
				{Name: "helios", Site: "Sophia", Nodes: 56, CPU: Opteron252},
			}},
		},
		WANLatency:       8 * time.Millisecond,
		LANLatency:       100 * time.Microsecond,
		WANBandwidthMbps: 1000,
	}
}

// ClusterByName finds a cluster.
func (p *Platform) ClusterByName(name string) (*Cluster, error) {
	for si := range p.Sites {
		for ci := range p.Sites[si].Clusters {
			if p.Sites[si].Clusters[ci].Name == name {
				return &p.Sites[si].Clusters[ci], nil
			}
		}
	}
	return nil, fmt.Errorf("platform: no cluster %q", name)
}

// Latency returns the one-way latency between two sites.
func (p *Platform) Latency(siteA, siteB string) time.Duration {
	if siteA == siteB {
		return p.LANLatency
	}
	return p.WANLatency
}

// TransferTime returns the time to move sizeMB across the WAN between two
// sites (latency + size/bandwidth).
func (p *Platform) TransferTime(siteA, siteB string, sizeMB float64) time.Duration {
	lat := p.Latency(siteA, siteB)
	secs := sizeMB * 8 / p.WANBandwidthMbps
	return lat + time.Duration(secs*float64(time.Second))
}

// SeDPlacement places one SeD on a cluster with a machine reservation.
type SeDPlacement struct {
	Name     string
	Site     string
	Cluster  string
	Machines int // machines under this SeD (paper: 16 per SeD)
	CPU      CPU
}

// PowerGFlops is the aggregate power this SeD brings to one MPI solve: the
// per-core rate times the machines it controls, derated by a parallel
// efficiency of 0.7 (communication and AMR load imbalance).
func (s SeDPlacement) PowerGFlops() float64 {
	const parallelEfficiency = 0.7
	return s.CPU.GFlops * float64(s.Machines) * parallelEfficiency
}

// LAPlacement describes one Local Agent.
type LAPlacement struct {
	Name string
	Site string
}

// Deployment is a DIET hierarchy placed on the platform.
type Deployment struct {
	MASite string
	LAs    []LAPlacement
	SeDs   []SeDPlacement
}

// PaperDeployment reproduces §6.1 exactly: the MA (with omniORB, monitoring
// tools and the client) on one node in Lyon; one LA per cluster — two in
// Lyon, one each in Lille, Nancy, Toulouse, Sophia; and eleven SeDs, two per
// cluster except Lyon capricorne which could only host one due to
// reservation restrictions, each controlling 16 machines. The SeD names are
// the Figure 5 legend labels.
func PaperDeployment() Deployment {
	g5k := Grid5000()
	mk := func(name, cluster string) SeDPlacement {
		c, err := g5k.ClusterByName(cluster)
		if err != nil {
			panic(err) // deployment tables are static; a typo is a programmer error
		}
		return SeDPlacement{Name: name, Site: c.Site, Cluster: cluster, Machines: 16, CPU: c.CPU}
	}
	return Deployment{
		MASite: "Lyon",
		LAs: []LAPlacement{
			{Name: "LA-Lyon-capricorne", Site: "Lyon"},
			{Name: "LA-Lyon-sagittaire", Site: "Lyon"},
			{Name: "LA-Lille", Site: "Lille"},
			{Name: "LA-Nancy", Site: "Nancy"},
			{Name: "LA-Toulouse", Site: "Toulouse"},
			{Name: "LA-Sophia", Site: "Sophia"},
		},
		SeDs: []SeDPlacement{
			mk("Nancy1", "grillon"),
			mk("Nancy2", "grillon"),
			mk("Sophia1", "helios"),
			mk("Sophia2", "helios"),
			mk("Lille1", "chti"),
			mk("Lille2", "chti"),
			mk("Toulouse1", "violette"),
			mk("Toulouse2", "violette"),
			mk("Lyon1-cap", "capricorne"),
			mk("Lyon1-sag", "sagittaire"),
			mk("Lyon2-sag", "sagittaire"),
		},
	}
}

// SiteOfSeD returns the site hosting the named SeD.
func (d Deployment) SiteOfSeD(name string) (string, error) {
	for _, s := range d.SeDs {
		if s.Name == name {
			return s.Site, nil
		}
	}
	return "", fmt.Errorf("platform: no SeD %q in deployment", name)
}
