package platform

import (
	"testing"
	"time"
)

func TestGrid5000Shape(t *testing.T) {
	p := Grid5000()
	if len(p.Sites) != 5 {
		t.Fatalf("%d sites, want 5 (paper §6.1)", len(p.Sites))
	}
	clusters := 0
	for _, s := range p.Sites {
		clusters += len(s.Clusters)
		for _, c := range s.Clusters {
			if c.Nodes <= 0 || c.CPU.GFlops <= 0 {
				t.Errorf("cluster %s badly sized: %+v", c.Name, c)
			}
			if c.Site != s.Name {
				t.Errorf("cluster %s claims site %s inside %s", c.Name, c.Site, s.Name)
			}
		}
	}
	if clusters != 6 {
		t.Errorf("%d clusters, want 6", clusters)
	}
	// Lyon has the two clusters.
	lyon := p.Sites[0]
	if lyon.Name != "Lyon" || len(lyon.Clusters) != 2 {
		t.Errorf("Lyon should host 2 clusters, got %+v", lyon)
	}
}

func TestClusterByName(t *testing.T) {
	p := Grid5000()
	c, err := p.ClusterByName("violette")
	if err != nil || c.Site != "Toulouse" {
		t.Errorf("violette: %+v, %v", c, err)
	}
	if _, err := p.ClusterByName("ghost"); err == nil {
		t.Error("unknown cluster should fail")
	}
}

func TestLatencyModel(t *testing.T) {
	p := Grid5000()
	if l := p.Latency("Lyon", "Lyon"); l != p.LANLatency {
		t.Errorf("intra-site latency %v", l)
	}
	if l := p.Latency("Lyon", "Nancy"); l != p.WANLatency {
		t.Errorf("inter-site latency %v", l)
	}
}

func TestTransferTime(t *testing.T) {
	p := Grid5000()
	// Zero bytes = pure latency.
	if tt := p.TransferTime("Lyon", "Nancy", 0); tt != p.WANLatency {
		t.Errorf("zero-size transfer %v", tt)
	}
	// 125 MB over 1 Gb/s ≈ 1 s + latency.
	tt := p.TransferTime("Lyon", "Nancy", 125)
	want := p.WANLatency + time.Second
	if tt < want-10*time.Millisecond || tt > want+10*time.Millisecond {
		t.Errorf("125MB transfer %v, want ≈ %v", tt, want)
	}
	// Bigger payloads take longer.
	if p.TransferTime("Lyon", "Nancy", 200) <= tt {
		t.Error("transfer time must grow with size")
	}
}

func TestPaperDeployment(t *testing.T) {
	d := PaperDeployment()
	if d.MASite != "Lyon" {
		t.Errorf("MA at %s, want Lyon", d.MASite)
	}
	if len(d.LAs) != 6 {
		t.Errorf("%d LAs, want 6", len(d.LAs))
	}
	if len(d.SeDs) != 11 {
		t.Errorf("%d SeDs, want 11", len(d.SeDs))
	}
	// The Figure 5 legend names, each controlling 16 machines.
	wantNames := map[string]bool{
		"Nancy1": true, "Nancy2": true, "Sophia1": true, "Sophia2": true,
		"Lille1": true, "Lille2": true, "Toulouse1": true, "Toulouse2": true,
		"Lyon1-cap": true, "Lyon1-sag": true, "Lyon2-sag": true,
	}
	capCount := 0
	for _, s := range d.SeDs {
		if !wantNames[s.Name] {
			t.Errorf("unexpected SeD %q", s.Name)
		}
		if s.Machines != 16 {
			t.Errorf("SeD %s controls %d machines, want 16", s.Name, s.Machines)
		}
		if s.Cluster == "capricorne" {
			capCount++
		}
	}
	// Lyon capricorne hosts only one SeD (reservation restrictions, §6.1).
	if capCount != 1 {
		t.Errorf("capricorne hosts %d SeDs, want 1", capCount)
	}
}

func TestPowerOrdering(t *testing.T) {
	// The Figure 5 shape: Toulouse slowest, Nancy fastest.
	d := PaperDeployment()
	var toulouse, nancy float64
	for _, s := range d.SeDs {
		switch s.Name {
		case "Toulouse1":
			toulouse = s.PowerGFlops()
		case "Nancy1":
			nancy = s.PowerGFlops()
		}
	}
	if toulouse <= 0 || nancy <= 0 {
		t.Fatal("missing SeDs")
	}
	if nancy <= toulouse {
		t.Errorf("Nancy (%g) must out-power Toulouse (%g)", nancy, toulouse)
	}
	ratio := toulouse / nancy
	// Paper: ~10.5h vs ~15h → ratio ≈ 0.7.
	if ratio < 0.6 || ratio > 0.85 {
		t.Errorf("power ratio %g outside the Figure 5 range [0.6, 0.85]", ratio)
	}
}

func TestSiteOfSeD(t *testing.T) {
	d := PaperDeployment()
	site, err := d.SiteOfSeD("Lyon1-cap")
	if err != nil || site != "Lyon" {
		t.Errorf("SiteOfSeD = %q, %v", site, err)
	}
	if _, err := d.SiteOfSeD("ghost"); err == nil {
		t.Error("unknown SeD should fail")
	}
}

func TestCPUTable(t *testing.T) {
	cpus := []CPU{Opteron246, Opteron248, Opteron250, Opteron252, Opteron275}
	for i := 1; i < len(cpus)-1; i++ {
		if cpus[i].GFlops <= cpus[i-1].GFlops {
			t.Errorf("%s should out-perform %s", cpus[i].Model, cpus[i-1].Model)
		}
	}
	// The dual-core 275 beats the single-core parts.
	if Opteron275.GFlops <= Opteron252.GFlops {
		t.Error("Opteron 275 (dual core) should lead the table")
	}
}
