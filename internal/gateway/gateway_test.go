package gateway

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/diet"
	"repro/internal/gwproto"
	"repro/internal/naming"
	"repro/internal/rpc"
)

// doubler is the canonical test service: out = 2*in, optionally slowed to
// hold worker slots open.
func doubler(name string, delay time.Duration) diet.ServiceSpec {
	desc, err := diet.NewProfileDesc(name, 0, 0, 1)
	if err != nil {
		panic(err)
	}
	desc.Set(0, diet.Scalar, diet.Int)
	desc.Set(1, diet.Scalar, diet.Int)
	return diet.ServiceSpec{
		Desc: desc,
		Solve: func(p *diet.Profile) error {
			v, err := p.ScalarInt(0)
			if err != nil {
				return err
			}
			if delay > 0 {
				time.Sleep(delay)
			}
			return p.SetScalarInt(1, 2*v, diet.Volatile)
		},
	}
}

// deployOneMA boots a single-MA platform serving the given services and
// returns it; the gateway under test fronts it.
func deployOneMA(t *testing.T, ma string, services ...diet.ServiceSpec) *diet.Deployment {
	t.Helper()
	rpc.ResetLocal()
	d, err := diet.Deploy(diet.DeploymentSpec{
		MAName: ma,
		LAs:    []string{"LA1"},
		SeDs: []diet.SeDSpec{{
			Name: "SeD1", Parent: "LA1", Capacity: 4, PowerGFlops: 4,
			Services: services,
		}},
		Local: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		d.Close()
		rpc.ResetLocal()
	})
	return d
}

func newGateway(t *testing.T, cfg Config) *Gateway {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

func intProfile(t *testing.T, service string, in int64) *diet.Profile {
	t.Helper()
	p, err := diet.NewProfile(service, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.SetScalarInt(0, in, diet.Volatile)
	return p
}

// TestGatewayAdmissionControl floods a tiny admission queue: the overflow is
// shed with the typed ErrOverload, the admitted burst completes, and once the
// queue drains new calls are admitted again.
func TestGatewayAdmissionControl(t *testing.T) {
	d := deployOneMA(t, "MA-gw-adm", doubler("slow", 100*time.Millisecond))
	g := newGateway(t, Config{
		Naming: d.NamingAddr, MAs: []string{"MA-gw-adm"},
		QueueCap: 2, Workers: 1,
	})

	const burst = 8
	var wg sync.WaitGroup
	var solved, shed, other int
	var mu sync.Mutex
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := g.Solve(intProfile(t, "slow", int64(i)))
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				solved++
			case errors.Is(err, ErrOverload):
				shed++
			default:
				other++
			}
		}(i)
	}
	wg.Wait()

	if other != 0 {
		t.Fatalf("%d calls failed with something other than ErrOverload", other)
	}
	if shed == 0 {
		t.Error("a burst of 8 against a queue of 2 shed nothing")
	}
	if solved < 2 || solved+shed != burst {
		t.Errorf("solved=%d shed=%d, want solved >= 2 and solved+shed = %d", solved, shed, burst)
	}
	st := g.Status()
	if st.Shed != int64(shed) || st.Solved != int64(solved) {
		t.Errorf("status (shed=%d solved=%d) disagrees with observed (%d, %d)",
			st.Shed, st.Solved, shed, solved)
	}

	// The burst is over: the queue has drained and admission works again.
	if _, _, err := g.Solve(intProfile(t, "slow", 9)); err != nil {
		t.Errorf("call after the burst still rejected: %v", err)
	}
	if depth := g.Status().QueueDepth; depth != 0 {
		t.Errorf("queue depth %d after all calls returned, want 0", depth)
	}
}

// startFederation boots a 2-MA federation sharing one naming service, each MA
// with its own LA+SeD serving every named service, and returns the naming
// address.
func startFederation(t *testing.T, tag string, services ...string) string {
	t.Helper()
	rpc.ResetLocal()
	t.Cleanup(rpc.ResetLocal)
	ns := rpc.NewServer()
	ns.Register(naming.ObjectName, naming.NewService().Handler())
	namingAddr, err := rpc.ServeLocal("naming-"+tag, ns)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ns.Close() })

	ma1, ma2 := tag+"-MA1", tag+"-MA2"
	for i, ma := range []string{ma1, ma2} {
		peer := ma2
		if i == 1 {
			peer = ma1
		}
		a, err := diet.NewAgent(diet.AgentConfig{
			Name: ma, Kind: diet.MasterAgent, Naming: namingAddr, Local: true,
			Peers: []string{peer},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { a.Close() })

		la := fmt.Sprintf("%s-LA%d", tag, i+1)
		ag, err := diet.NewAgent(diet.AgentConfig{
			Name: la, Kind: diet.LocalAgent, Parent: ma, Naming: namingAddr, Local: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := ag.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ag.Close() })

		sed, err := diet.NewSeD(diet.SeDConfig{
			Name: fmt.Sprintf("%s-SeD%d", tag, i+1), Parent: la, Naming: namingAddr,
			Capacity: 2, PowerGFlops: 4, Local: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, svc := range services {
			spec := doubler(svc, 0)
			if err := sed.AddService(spec.Desc, spec.Solve); err != nil {
				t.Fatal(err)
			}
		}
		if err := sed.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sed.Close() })
	}
	return namingAddr
}

// TestGatewayStickyRouting runs a service many times through a gateway over a
// 2-MA federation where both MAs could serve it: every finding must land on
// the one sticky-routed MA, the other must see none.
func TestGatewayStickyRouting(t *testing.T) {
	namingAddr := startFederation(t, "gwsticky", "alpha", "beta")
	g := newGateway(t, Config{
		Naming: namingAddr, MAs: []string{"gwsticky-MA1", "gwsticky-MA2"},
	})

	for _, svc := range []string{"alpha", "beta"} {
		home := g.RouteMA(svc)
		for i := 0; i < 5; i++ {
			if _, _, err := g.Solve(intProfile(t, svc, int64(i))); err != nil {
				t.Fatalf("solve %s #%d: %v", svc, i, err)
			}
		}
		var homeSubs, awaySubs int64
		for _, ma := range g.Status().MAs {
			if ma.Name == home {
				homeSubs = ma.Submitted
			} else {
				awaySubs += ma.Submitted
			}
		}
		if homeSubs < 1 {
			t.Errorf("%s: sticky MA %s saw %d submissions, want >= 1", svc, home, homeSubs)
		}
		_ = awaySubs // checked cumulatively below
	}
	// Stickiness: total submissions must equal the sum over each service's
	// home MA — nothing strayed. With both services we just compare the
	// global count against per-MA sums attributed by RouteMA.
	st := g.Status()
	var total int64
	for _, ma := range st.MAs {
		total += ma.Submitted
	}
	if total != st.Submitted-st.Batched {
		t.Errorf("per-MA submissions %d != unbatched findings %d: a service strayed off its MA",
			total, st.Submitted-st.Batched)
	}
	for _, ma := range st.MAs {
		if ma.Name != g.RouteMA("alpha") && ma.Name != g.RouteMA("beta") && ma.Submitted != 0 {
			t.Errorf("MA %s is home to neither service yet saw %d submissions", ma.Name, ma.Submitted)
		}
	}
}

// TestGatewayBatchingJoinsInflight pins the batching contract without
// timing: followers arriving while a finding is in flight join it, get
// distinct rotated batch positions, and share the leader's reply.
func TestGatewayBatchingJoinsInflight(t *testing.T) {
	g := &Gateway{
		cfg:      Config{MAs: []string{"MA-batch"}},
		inflight: make(map[string]*finding),
		perMA:    make([]maCounters, 1),
	}
	f := &finding{done: make(chan struct{})}
	g.mu.Lock()
	g.inflight["svc"] = f
	g.mu.Unlock()

	const followers = 3
	rotations := make(chan int, followers)
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reply, rotate, err := g.findServers(0, "svc", 0)
			if err != nil {
				t.Errorf("follower errored: %v", err)
			}
			if reply != f.reply {
				t.Error("follower did not share the leader's reply")
			}
			rotations <- rotate
		}()
	}
	// Wait until all followers joined, then complete the leader's finding.
	deadline := time.Now().Add(5 * time.Second)
	for {
		g.mu.Lock()
		joined := f.joined
		g.mu.Unlock()
		if joined == followers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d followers joined", joined, followers)
		}
		time.Sleep(time.Millisecond)
	}
	f.reply = &diet.SubmitReply{}
	g.mu.Lock()
	delete(g.inflight, "svc")
	g.mu.Unlock()
	close(f.done)
	wg.Wait()

	seen := map[int]bool{}
	for i := 0; i < followers; i++ {
		r := <-rotations
		if r < 1 || r > followers || seen[r] {
			t.Errorf("rotation %d out of range or duplicated", r)
		}
		seen[r] = true
	}
	if got := g.batched.Load(); got != followers {
		t.Errorf("batched counter %d, want %d", got, followers)
	}
}

// TestGatewayHTTPAPI drives the full wire path: diet.Client with WithGateway
// posts a versioned SolveRequest over real HTTP, the gateway solves it
// through the deployment, and /api/v1/status reports the traffic.
func TestGatewayHTTPAPI(t *testing.T) {
	d := deployOneMA(t, "MA-gw-http", doubler("double", 0))
	g := newGateway(t, Config{Naming: d.NamingAddr, MAs: []string{"MA-gw-http"}})
	addr, shutdown, err := g.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { shutdown() })
	base := "http://" + addr

	client, err := d.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Finalize()

	p := intProfile(t, "double", 21)
	info, err := client.Call(p, diet.WithGateway(base))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := p.ScalarInt(1); err != nil || v != 42 {
		t.Errorf("result = %d, %v; want 42", v, err)
	}
	if info.Server == "" || p.RequestID == "" {
		t.Errorf("reply missing server (%q) or request ID (%q)", info.Server, p.RequestID)
	}

	resp, err := http.Get(base + "/api/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st gwproto.StatusReply
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.SchemaVersion != gwproto.Version {
		t.Errorf("status schema version %d, want %d", st.SchemaVersion, gwproto.Version)
	}
	if st.Solved < 1 {
		t.Errorf("status reports %d solved, want >= 1", st.Solved)
	}

	// A request speaking a future schema is rejected up front.
	body, _ := json.Marshal(gwproto.SolveRequest{SchemaVersion: gwproto.Version + 1, Service: "double"})
	resp2, err := http.Post(base+"/api/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("future schema got HTTP %d, want 400", resp2.StatusCode)
	}
	var er gwproto.ErrorReply
	if err := json.NewDecoder(resp2.Body).Decode(&er); err != nil || er.Error == "" {
		t.Errorf("error reply not decodable (%v, %+v)", err, er)
	}

	if resp3, err := http.Get(base + "/metrics"); err != nil || resp3.StatusCode != http.StatusOK {
		t.Errorf("/metrics: %v, %v", resp3, err)
	} else {
		resp3.Body.Close()
	}
}
